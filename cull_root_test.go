package inplacehull

import (
	"context"
	"errors"
	"sort"
	"testing"

	"inplacehull/internal/geom"
	"inplacehull/internal/hullerr"
	"inplacehull/internal/rng"
	"inplacehull/internal/shard"
	"inplacehull/internal/workload"
)

// TestRunCullParity pins the RunConfig.Cull contract: for every filter
// policy, backend, and supervision mode, the culled run answers for the
// full input. Native chains are canonical, so culled==unculled is
// bit-identical there; counted chains may subdivide collinear hull edges
// differently depending on which interior points the run saw, so counted
// runs are compared in canonical form and their EdgeOf is checked as a
// valid covering of every original point.
func TestRunCullParity(t *testing.T) {
	workloads := map[string][]Point{
		"disk":      workload.Disk(5, 4000),
		"circle":    workload.Circle(5, 2000), // nothing cullable: filter must be a no-op
		"grid":      workload.Grid(5, 3000),
		"collinear": workload.Collinear(5, 500),
	}
	policies := []CullPolicy{CullQuad, CullOctagon, CullCoarse}
	for name, pts := range workloads {
		for _, be := range []Backend{BackendNative, BackendCounted} {
			base, baseRep, err := RunAuto2D(context.Background(), rng.New(1), pts,
				RunConfig{Backend: be})
			if err != nil {
				t.Fatalf("%s/%v baseline: %v", name, be, err)
			}
			if baseRep.Backend() != be {
				t.Fatalf("%s baseline ran on %v, want %v", name, baseRep.Backend(), be)
			}
			for _, pol := range policies {
				got, rep, err := RunAuto2D(context.Background(), rng.New(1), pts,
					RunConfig{Backend: be, Cull: pol})
				if err != nil {
					t.Fatalf("%s/%v/%v: %v", name, be, pol, err)
				}
				if rep.Backend() != be {
					t.Fatalf("%s/%v culled run ran on %v", name, pol, rep.Backend())
				}
				label := name + "/" + be.String() + "/" + pol.String()
				if be == BackendNative {
					assertBitIdentical(t, label, base, got, pts)
				} else {
					assertCanonicalParity(t, label, base, got, pts)
				}
			}
		}
		// Direct counted runs cull identically.
		for _, pol := range policies {
			m := NewMachine()
			base, _, err := Run2D(context.Background(), m, rng.New(2), pts, RunConfig{Direct: true})
			if err != nil {
				m.Close()
				t.Fatal(err)
			}
			got, _, err := Run2D(context.Background(), m, rng.New(2), pts, RunConfig{Direct: true, Cull: pol})
			m.Close()
			if err != nil {
				t.Fatalf("%s/direct/%v: %v", name, pol, err)
			}
			assertCanonicalParity(t, name+"/direct/"+pol.String(), base, got, pts)
		}
	}
}

// assertBitIdentical requires the culled run's answer to equal the
// unculled baseline field for field.
func assertBitIdentical(t *testing.T, label string, base, got Run2DResult, pts []Point) {
	t.Helper()
	samePoints(t, label+" chain", base.Chain, got.Chain)
	if len(got.Edges) != len(base.Edges) {
		t.Fatalf("%s: %d edges, want %d", label, len(got.Edges), len(base.Edges))
	}
	for i := range base.Edges {
		if got.Edges[i] != base.Edges[i] {
			t.Fatalf("%s: edge[%d] = %v, want %v", label, i, got.Edges[i], base.Edges[i])
		}
	}
	if len(got.EdgeOf) != len(pts) {
		t.Fatalf("%s: EdgeOf covers %d/%d points", label, len(got.EdgeOf), len(pts))
	}
	for i := range base.EdgeOf {
		if got.EdgeOf[i] != base.EdgeOf[i] {
			t.Fatalf("%s: EdgeOf[%d] = %d, want %d", label, i, got.EdgeOf[i], base.EdgeOf[i])
		}
	}
	checkRecord(t, label, got, len(base.Chain), len(pts))
}

// assertCanonicalParity requires the culled counted run to describe the
// same hull as the baseline in canonical form, with a valid full-input
// EdgeOf covering.
func assertCanonicalParity(t *testing.T, label string, base, got Run2DResult, pts []Point) {
	t.Helper()
	sorted := append([]Point(nil), pts...)
	sort.Slice(sorted, func(i, j int) bool { return geom.LexLess(sorted[i], sorted[j]) })
	want := shard.Canonical(sorted, base.Chain)
	have := shard.Canonical(sorted, got.Chain)
	samePoints(t, label+" canonical chain", want, have)
	// Edges must pair the chain's consecutive vertices.
	if len(got.Edges) != max(0, len(got.Chain)-1) {
		t.Fatalf("%s: %d edges for a %d-vertex chain", label, len(got.Edges), len(got.Chain))
	}
	for i, e := range got.Edges {
		if e.U != got.Chain[i] || e.W != got.Chain[i+1] {
			t.Fatalf("%s: edge[%d] = %v does not pair chain vertices", label, i, e)
		}
	}
	if len(got.EdgeOf) != len(pts) {
		t.Fatalf("%s: EdgeOf covers %d/%d points", label, len(got.EdgeOf), len(pts))
	}
	for i, ei := range got.EdgeOf {
		if ei < 0 {
			continue // vertex cap / uncovered column: no spanning edge
		}
		if ei >= len(got.Edges) {
			t.Fatalf("%s: EdgeOf[%d] = %d out of range", label, i, ei)
		}
		e := got.Edges[ei]
		if !e.Covers(pts[i].X) || e.AboveAt(pts[i]) {
			t.Fatalf("%s: EdgeOf[%d] = %d is not a covering edge of %v", label, i, ei, pts[i])
		}
	}
	checkRecord(t, label, got, len(got.Chain), len(pts))
}

func samePoints(t *testing.T, label string, want, have []Point) {
	t.Helper()
	if len(have) != len(want) {
		t.Fatalf("%s: %d vertices, want %d", label, len(have), len(want))
	}
	for i := range want {
		if have[i] != want[i] {
			t.Fatalf("%s: [%d] = %v, want %v", label, i, have[i], want[i])
		}
	}
}

func checkRecord(t *testing.T, label string, got Run2DResult, chainLen, n int) {
	t.Helper()
	if got.Unsorted == nil {
		t.Fatalf("%s: missing Unsorted record", label)
	}
	if len(got.Unsorted.Chain) != chainLen || len(got.Unsorted.EdgeOf) != n {
		t.Fatalf("%s: record fields not lifted (chain %d, edgeof %d)",
			label, len(got.Unsorted.Chain), len(got.Unsorted.EdgeOf))
	}
}

// TestRunCullSkipsSortedAlgorithms: the filter never runs for the
// sorted-input algorithms — an unsorted input still fails typed instead
// of being accidentally reduced to a sorted survivor set.
func TestRunCullSkipsSortedAlgorithms(t *testing.T) {
	pts := workload.Disk(9, 500) // unsorted
	for _, algo := range []Algo{AlgoPresorted, AlgoLogStar} {
		_, _, err := RunAuto2D(context.Background(), rng.New(1), pts,
			RunConfig{Algorithm: algo, Cull: CullOctagon, Backend: BackendCounted})
		if !errors.Is(err, hullerr.ErrUnsorted) {
			t.Fatalf("%v with cull on unsorted input: got %v, want typed UnsortedInput", algo, err)
		}
	}
}

// TestRunCullNonFinite: culling never hides a bad coordinate — the
// typed non-finite failure survives the filter.
func TestRunCullNonFinite(t *testing.T) {
	pts := workload.Disk(3, 400)
	pts[137].Y = nan()
	_, _, err := RunAuto2D(context.Background(), rng.New(1), pts, RunConfig{Cull: CullOctagon})
	if !errors.Is(err, hullerr.ErrNonFinite) {
		t.Fatalf("got %v, want typed non-finite", err)
	}
}

func nan() float64 {
	z := 0.0
	return z / z
}
