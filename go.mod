module inplacehull

go 1.22
