// 3-d pipeline: run the §4.3 parallel algorithm next to the exact
// sequential baselines and compare costs across hull-size regimes
// (Theorem 6's min{n log² h, n log n} work bound).
package main

import (
	"context"
	"fmt"
	"math"
	"time"

	"inplacehull"
	"inplacehull/internal/workload"
)

func main() {
	const n = 1 << 11
	gens := []workload.Gen3D{
		{Name: "ballfew32 (h small)", Gen: workload.BallFew(32)},
		{Name: "ball (h sublinear)", Gen: workload.Ball},
		{Name: "sphere (h=n)", Gen: workload.Sphere},
	}
	fmt.Printf("n = %d\n\n", n)
	fmt.Printf("%-20s %8s %10s %12s %12s %12s %10s\n",
		"workload", "facets", "steps", "work", "work/bound", "incr. time", "gift time")
	for _, g := range gens {
		pts := g.Gen(5, n)

		m := inplacehull.NewMachine()
		res, _, err := inplacehull.Run3D(context.Background(), m, inplacehull.NewRand(5), pts,
			inplacehull.RunConfig{Direct: true})
		if err != nil {
			fmt.Printf("%-20s ERROR %v\n", g.Name, err)
			continue
		}
		lgn := math.Log2(float64(n))
		lgh := math.Log2(float64(len(res.Facets)) + 2)
		bound := math.Min(float64(n)*lgh*lgh, float64(n)*lgn)

		t0 := time.Now()
		if _, err := inplacehull.Incremental3D(inplacehull.NewRand(5), pts); err != nil {
			panic(err)
		}
		incr := time.Since(t0)

		t0 = time.Now()
		giftStr := "-"
		if len(res.Facets) < 300 { // gift wrapping is O(n·h): only cheap regimes
			if _, err := inplacehull.GiftWrap3D(pts); err == nil {
				giftStr = time.Since(t0).Round(time.Millisecond).String()
			}
		}
		fmt.Printf("%-20s %8d %10d %12d %12.1f %12v %10s\n",
			g.Name, len(res.Facets), m.Time(), m.Work(),
			float64(m.Work())/bound, incr.Round(time.Millisecond), giftStr)
	}
	fmt.Println("\nwork/bound flat across regimes is Theorem 6's work claim;")
	fmt.Println("gift wrapping (O(n·h)) is only viable when h is small — the")
	fmt.Println("regime where output-sensitive bounds beat n log n.")
}
