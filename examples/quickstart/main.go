// Quickstart: compute the upper hull of unsorted points on the simulated
// CRCW PRAM through the unified Run API, check it against the sequential
// reference, and read off the model costs the paper's Theorem 5 is about
// — with a phase-attributed breakdown of where the work went.
package main

import (
	"context"
	"fmt"
	"log"
	"math"
	"os"

	"inplacehull"
	"inplacehull/internal/workload"
)

func main() {
	// 50k points uniform in a disk: the expected hull size is ≈ n^(1/3).
	pts := workload.Disk(42, 50_000)

	m := inplacehull.NewMachine()
	rnd := inplacehull.NewRand(42)
	phases := inplacehull.NewCollector()
	res, _, err := inplacehull.Run2D(context.Background(), m, rnd, pts, inplacehull.RunConfig{
		Algorithm: inplacehull.AlgoHull2D, // the §4.1 output-sensitive algorithm
		Direct:    true,                   // one attempt, no supervisor
		Observer:  phases,                 // attribute every unit of work to a paper phase
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := inplacehull.VerifyHull2D(pts, *res.Unsorted); err != nil {
		log.Fatalf("verification failed: %v", err)
	}

	n := float64(len(pts))
	h := float64(len(res.Chain))
	fmt.Printf("points                 %d\n", len(pts))
	fmt.Printf("upper-hull vertices    %d\n", len(res.Chain))
	fmt.Printf("PRAM steps (time)      %d   (log2 n = %.1f)\n", m.Time(), math.Log2(n))
	fmt.Printf("PRAM work              %d\n", m.Work())
	fmt.Printf("work / (n·log2 h)      %.2f  (Theorem 5's O(1) ratio)\n",
		float64(m.Work())/(n*math.Log2(h+2)))
	fmt.Printf("recursion levels       %d\n", res.Unsorted.Stats.Levels)
	fmt.Printf("bridges failure-swept  %d\n", res.Unsorted.Stats.BridgeFailures)

	// Every input point knows the hull edge above it — the paper's output
	// contract. Spot-check one point.
	p := 12345
	e := res.Edges[res.EdgeOf[p]]
	fmt.Printf("point %v lies under edge %v–%v\n", pts[p], e.U, e.W)

	// Where the work went, by paper phase (the bottom row's work column
	// sums to Machine.Work exactly — experiment E16's invariant).
	fmt.Println()
	inplacehull.WritePhaseTable(os.Stdout, phases)
}
