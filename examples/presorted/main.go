// Pre-sorted hulls: the Section 2 algorithms side by side. The
// constant-time algorithm holds its step count flat as n grows (Lemma
// 2.5) at the price of O(n log n) processors; the log* algorithm stays
// within O(n) processors and a near-flat (log* n) step count (Theorem 2).
package main

import (
	"context"
	"fmt"
	"sort"

	"inplacehull"
	"inplacehull/internal/workload"
)

func main() {
	fmt.Printf("%8s | %s constant-time (§2.2) %s | %s log* (§2.5)\n",
		"n", "", "", "")
	fmt.Printf("%8s | %8s %12s %12s | %8s %12s %12s\n",
		"", "steps", "work", "peak procs", "steps", "work", "peak procs")
	for _, n := range []int{1 << 10, 1 << 12, 1 << 14, 1 << 16} {
		pts := prep(workload.Gaussian(11, n))

		m1 := inplacehull.NewMachine()
		r1, _, err := inplacehull.Run2D(context.Background(), m1, inplacehull.NewRand(3), pts,
			inplacehull.RunConfig{Algorithm: inplacehull.AlgoPresorted, Direct: true})
		if err != nil {
			panic(err)
		}
		m2 := inplacehull.NewMachine()
		r2, _, err := inplacehull.Run2D(context.Background(), m2, inplacehull.NewRand(3), pts,
			inplacehull.RunConfig{Algorithm: inplacehull.AlgoLogStar, Direct: true})
		if err != nil {
			panic(err)
		}
		if len(r1.Chain) != len(r2.Chain) {
			panic("algorithms disagree")
		}
		fmt.Printf("%8d | %8d %12d %12d | %8d %12d %12d\n",
			len(pts), m1.Time(), m1.Work(), m1.PeakProcessors(),
			m2.Time(), m2.Work(), m2.PeakProcessors())
	}
	fmt.Println("\nconstant-time: flat steps, n·log n-scale processors")
	fmt.Println("log*:          near-flat steps, linear-scale processors")
}

func prep(pts []inplacehull.Point) []inplacehull.Point {
	s := append([]inplacehull.Point(nil), pts...)
	sort.Slice(s, func(i, j int) bool {
		if s[i].X != s[j].X {
			return s[i].X < s[j].X
		}
		return s[i].Y < s[j].Y
	})
	out := s[:0]
	for i, p := range s {
		if i > 0 && p.X == out[len(out)-1].X {
			if p.Y > out[len(out)-1].Y {
				out[len(out)-1] = p
			}
			continue
		}
		out = append(out, p)
	}
	return out
}
