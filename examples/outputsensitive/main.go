// Output-sensitivity: the story of the paper's introduction. At a fixed
// n, the work of the §4.1 algorithm tracks n·log h as the hull size h
// ranges from O(1) to n — matching the sequential Kirkpatrick–Seidel
// bound in parallel — while the O(n log n) algorithms pay the same price
// regardless of h.
package main

import (
	"context"
	"fmt"
	"math"

	"inplacehull"
	"inplacehull/internal/hull2d"
	"inplacehull/internal/workload"
)

func main() {
	const n = 1 << 15
	gens := []workload.Gen2D{
		{Name: "poly8 (h=8)", Gen: workload.PolygonFew(8)},
		{Name: "poly64 (h=64)", Gen: workload.PolygonFew(64)},
		{Name: "gauss (h≈√log n)", Gen: workload.Gaussian},
		{Name: "disk (h≈n^1/3)", Gen: workload.Disk},
		{Name: "circle (h=n)", Gen: workload.Circle},
	}

	fmt.Printf("n = %d\n\n", n)
	fmt.Printf("%-18s %6s %12s %14s %12s %12s\n",
		"workload", "h", "PRAM work", "work/(n·lg h)", "KS ops", "work/KS")
	for _, g := range gens {
		pts := g.Gen(7, n)
		m := inplacehull.NewMachine()
		res, _, err := inplacehull.Run2D(context.Background(), m, inplacehull.NewRand(7), pts,
			inplacehull.RunConfig{Direct: true})
		if err != nil {
			fmt.Printf("%-18s ERROR %v\n", g.Name, err)
			continue
		}
		h := len(res.Chain)
		_, ksOps := hull2d.KirkpatrickSeidelOps(pts)
		norm := float64(m.Work()) / (float64(n) * math.Log2(float64(h)+2))
		fmt.Printf("%-18s %6d %12d %14.1f %12d %12.1f\n",
			g.Name, h, m.Work(), norm, ksOps, float64(m.Work())/float64(ksOps))
	}
	fmt.Println("\nwork/(n·lg h) staying flat across five orders of magnitude of h")
	fmt.Println("is Theorem 5's output-sensitive work bound, measured.")
}
