// Processor allocation (§5, Lemma 7): record a real run's per-step
// live-processor profile and simulate it on p real processors — the
// schedule follows T = t + w/p + t_c·log t, near-ideal speedup until p
// reaches the program's parallelism w/t, then saturation.
package main

import (
	"context"
	"fmt"

	"inplacehull"
	"inplacehull/internal/alloc"
	"inplacehull/internal/workload"
)

func main() {
	pts := workload.Disk(3, 1<<14)
	m := inplacehull.NewMachine(inplacehull.WithProfile())
	if _, _, err := inplacehull.Run2D(context.Background(), m, inplacehull.NewRand(3), pts,
		inplacehull.RunConfig{Direct: true}); err != nil {
		panic(err)
	}
	profile := m.Profile()
	t := int64(len(profile))
	w := alloc.Work(profile)
	fmt.Printf("recorded profile: t = %d steps, w = %d work, parallelism w/t = %d\n\n",
		t, w, w/t)
	fmt.Printf("%10s %14s %14s %10s\n", "p", "simulated T", "Lemma 7 bound", "speedup")
	for _, p := range []int{1, 2, 4, 8, 16, 32, 64, 128, 256, 1024, 4096, 1 << 16} {
		sim := alloc.SimulatedTime(profile, p, alloc.DefaultTc)
		bound := alloc.Bounds(profile, p, alloc.DefaultTc)
		fmt.Printf("%10d %14d %14d %10.1f\n", p, sim, bound,
			alloc.Speedup(profile, p, alloc.DefaultTc))
	}
	fmt.Println("\nspeedup is ~p until p approaches w/t, then flattens at the")
	fmt.Println("program's parallelism — the envelope Lemma 7 describes.")
}
