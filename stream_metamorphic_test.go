package inplacehull

import (
	"context"
	"encoding/binary"
	"sort"
	"testing"

	"inplacehull/internal/rng"
	"inplacehull/internal/stream"
	"inplacehull/internal/workload"
)

// Metamorphic contract of the streaming subsystem, checked through the
// public entry points: after ANY interleaving of appends and deletes the
// maintained hull is the hull a from-scratch run computes on the
// surviving multiset. 2-d is bit-identical (the maintained chain and the
// native RunAuto2D chain are both canonical); 3-d compares the hull
// vertex set (facet decomposition is seed/order-dependent repo-wide, so
// vertex-set equality against RunAuto3D is the parity contract).

// rebuildChain2 is the from-scratch oracle: the canonical chain of the
// surviving multiset via the public RunAuto2D.
func rebuildChain2(t *testing.T, live []Point) []Point {
	t.Helper()
	if len(live) == 0 {
		return nil
	}
	res, _, err := RunAuto2D(context.Background(), rng.New(99), live, RunConfig{})
	if err != nil {
		t.Fatalf("from-scratch rebuild (%d pts): %v", len(live), err)
	}
	return res.Chain
}

func sameChain2(a, b []Point) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestStreamMetamorphic2D(t *testing.T) {
	ctx := context.Background()
	for _, seed := range []uint64{3, 41, 271} {
		st := stream.NewStore(stream.Config{Seed: seed})
		init := workload.Disk(seed, 300)
		d, _, err := st.Register2("meta", init)
		if err != nil {
			t.Fatal(err)
		}
		live := append([]Point(nil), init...)
		fresh := workload.Grid(seed+1, 400) // grid: duplicates of hull abscissae, collinear runs
		fi := 0
		s := rng.New(seed)
		for step := 0; step < 160; step++ {
			switch {
			case len(live) == 0 || (s.Intn(3) != 0 && fi < len(fresh)):
				p := fresh[fi]
				fi++
				live = append(live, p)
				if _, err := d.Append2(ctx, []Point{p}); err != nil {
					t.Fatalf("seed %d step %d append: %v", seed, step, err)
				}
			case s.Intn(4) == 0: // duplicate an existing point, then delete one copy
				p := live[s.Intn(len(live))]
				live = append(live, p)
				if _, err := d.Append2(ctx, []Point{p}); err != nil {
					t.Fatalf("seed %d step %d dup append: %v", seed, step, err)
				}
			default:
				i := s.Intn(len(live))
				p := live[i]
				live[i] = live[len(live)-1]
				live = live[:len(live)-1]
				if _, err := d.Delete2(ctx, []Point{p}); err != nil {
					t.Fatalf("seed %d step %d delete: %v", seed, step, err)
				}
			}
			chain, _, _, err := d.Hull2()
			if err != nil {
				t.Fatal(err)
			}
			if want := rebuildChain2(t, live); !sameChain2(chain, want) {
				t.Fatalf("seed %d step %d: maintained chain diverged from RunAuto2D\n got: %v\nwant: %v",
					seed, step, chain, want)
			}
		}
	}
}

func TestStreamMetamorphic3D(t *testing.T) {
	ctx := context.Background()
	st := stream.NewStore(stream.Config{})
	init := workload.Ball(7, 160)
	d, _, err := st.Register3("meta3", init)
	if err != nil {
		t.Fatal(err)
	}
	live := append([]Point3(nil), init...)
	fresh := workload.Sphere(8, 200)
	fi := 0
	s := rng.New(7)
	for step := 0; step < 100; step++ {
		if len(live) < 8 || (s.Intn(2) == 0 && fi < len(fresh)) {
			p := fresh[fi]
			fi++
			live = append(live, p)
			if _, err := d.Append3(ctx, []Point3{p}); err != nil {
				t.Fatalf("step %d append: %v", step, err)
			}
		} else {
			i := s.Intn(len(live))
			p := live[i]
			live[i] = live[len(live)-1]
			live = live[:len(live)-1]
			if _, err := d.Delete3(ctx, []Point3{p}); err != nil {
				t.Fatalf("step %d delete: %v", step, err)
			}
		}
		if step%10 != 9 { // full 3-d rebuilds are costly; spot-check every 10th commit
			continue
		}
		verts, _, _, err := d.Hull3()
		if err != nil {
			t.Fatal(err)
		}
		res, _, err := RunAuto3D(ctx, rng.New(99), live, RunConfig{})
		if err != nil {
			t.Fatalf("step %d from-scratch 3-d rebuild: %v", step, err)
		}
		want := facetVerts3(live, res)
		if !sameVerts3(verts, want) {
			t.Fatalf("step %d: maintained 3-d vertex set diverged from RunAuto3D\n got: %v\nwant: %v",
				step, verts, want)
		}
	}
}

// facetVerts3 extracts the lex-sorted hull vertex set the stream layer
// maintains from a from-scratch Result3D, restricted to live points (a
// degenerate cap can reference the synthetic global top).
func facetVerts3(live []Point3, res Hull3DResult) []Point3 {
	in := map[Point3]bool{}
	for _, p := range live {
		in[p] = true
	}
	set := map[Point3]bool{}
	for _, f := range res.Facets {
		for _, p := range []Point3{f.A, f.B, f.C} {
			if in[p] {
				set[p] = true
			}
		}
	}
	out := make([]Point3, 0, len(set))
	for p := range set {
		out = append(out, p)
	}
	sort.Slice(out, func(i, k int) bool {
		a, b := out[i], out[k]
		if a.X != b.X {
			return a.X < b.X
		}
		if a.Y != b.Y {
			return a.Y < b.Y
		}
		return a.Z < b.Z
	})
	return out
}

func sameVerts3(a, b []Point3) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// FuzzStreamParity2D decodes fuzz bytes into an append/delete op tape
// and replays it against a dataset, checking the maintained chain stays
// bit-identical to the from-scratch canonical hull of the surviving
// multiset. Ops use the int16-eighth grid of the other fuzz harnesses so
// the fuzzer explores combinatorial degeneracies, not float extremes.
func FuzzStreamParity2D(f *testing.F) {
	f.Add(encodeOps([]Point{{X: 0, Y: 0}, {X: 4, Y: 4}, {X: 8, Y: 0}, {X: 4, Y: 1}}))
	f.Add(encodeOps(workload.Grid(3, 40)))
	f.Add([]byte{0, 1, 0, 0, 0, 0, 3, 255, 255, 255, 255})
	f.Fuzz(func(t *testing.T, data []byte) {
		ctx := context.Background()
		st := stream.NewStore(stream.Config{MinChurn: 4}) // tiny threshold: exercise the rebuild fallback too
		d, _, err := st.Register2("fuzz", nil)
		if err != nil {
			t.Fatal(err)
		}
		var live []Point
		for len(data) >= 5 {
			op, rec := data[0], data[1:5]
			data = data[5:]
			if op&1 == 0 || len(live) == 0 { // append
				p := Point{
					X: float64(int16(binary.LittleEndian.Uint16(rec[0:]))) / 8,
					Y: float64(int16(binary.LittleEndian.Uint16(rec[2:]))) / 8,
				}
				live = append(live, p)
				if _, err := d.Append2(ctx, []Point{p}); err != nil {
					t.Fatalf("append %v: %v", p, err)
				}
			} else { // delete a surviving point picked by the record
				i := int(binary.LittleEndian.Uint32(rec)) % len(live)
				p := live[i]
				live[i] = live[len(live)-1]
				live = live[:len(live)-1]
				if _, err := d.Delete2(ctx, []Point{p}); err != nil {
					t.Fatalf("delete %v: %v", p, err)
				}
			}
			chain, _, _, err := d.Hull2()
			if err != nil {
				t.Fatal(err)
			}
			want := fuzzOracle2(t, live)
			if !sameChain2(chain, want) {
				t.Fatalf("maintained chain diverged (%d live)\n got: %v\nwant: %v", len(live), chain, want)
			}
		}
	})
}

// fuzzOracle2 is rebuildChain2 without the testing.T fatal indirection
// cost on hot fuzz paths — same public-entry oracle.
func fuzzOracle2(t *testing.T, live []Point) []Point {
	if len(live) == 0 {
		return nil
	}
	res, _, err := RunAuto2D(context.Background(), rng.New(99), live, RunConfig{})
	if err != nil {
		t.Fatalf("oracle rebuild: %v", err)
	}
	return res.Chain
}

// encodeOps builds an all-append op tape from a point set.
func encodeOps(pts []Point) []byte {
	var out []byte
	for _, p := range pts {
		var b [5]byte
		b[0] = 0
		binary.LittleEndian.PutUint16(b[1:], uint16(int16(p.X*8)))
		binary.LittleEndian.PutUint16(b[3:], uint16(int16(p.Y*8)))
		out = append(out, b[:]...)
	}
	return out
}
