package inplacehull

import (
	"context"
	"reflect"
	"sort"
	"testing"

	"inplacehull/internal/geom"
	"inplacehull/internal/hull2d"
	"inplacehull/internal/shard"
	"inplacehull/internal/unsorted"
	"inplacehull/internal/workload"
)

// The native backend's output contract (internal/native package doc): in
// 2-d the vertex chain and edge list are bit-identical to the library's
// canonical form (hull2d.UpperHull) for every algorithm. The counted
// engine's chains reach the same canonical form through the two repairs
// its contract permits (collinear hull edges may arrive subdivided, an
// extreme vertical column as a vertex cap — shard.Canonical is exactly
// that repair), and on inputs free of those degeneracies the two engines'
// chains are literally bit-identical. EdgeOf agrees everywhere except at
// chain-vertex abscissas, where two edges meet and either incident edge
// is a correct answer (the counted algorithms themselves differ there —
// presorted assigns the right-incident edge, logstar the left). In 3-d
// the cap structures are not comparable facet-by-facet (facet identity is
// seed-dependent even within the counted engine), so both backends gate
// on the CheckCaps3D oracle instead. This suite pins that whole contract
// across degenerate and random inputs.

// eqPts compares point slices treating nil and empty as equal (the two
// backends legitimately differ in how they spell "no hull").
func eqPts(a, b []Point) bool {
	if len(a) == 0 && len(b) == 0 {
		return true
	}
	return reflect.DeepEqual(a, b)
}

func eqEdges(a, b []Edge) bool {
	if len(a) == 0 && len(b) == 0 {
		return true
	}
	return reflect.DeepEqual(a, b)
}

// edgeOfCompatible: the native assignment b may replace the counted
// assignment a only where the located abscissa is a chain vertex and a, b
// are its two incident edges.
func edgeOfCompatible(edges []Edge, x float64, a, b int) bool {
	if a == b {
		return true
	}
	if a < 0 || b < 0 || a >= len(edges) || b >= len(edges) {
		return false
	}
	lo, hi := a, b
	if lo > hi {
		lo, hi = hi, lo
	}
	return hi == lo+1 && edges[lo].W.X == x && edges[hi].U.X == x
}

// assertParity2D checks one (counted, native) result pair against the
// contract above: the native chain is bit-identical to the canonical
// oracle hull2d.UpperHull, the counted chain canonicalizes (collinear
// subdivision removed, extreme vertical columns repaired — the two
// deviations its contract permits, see unsorted.CheckAgainstReference and
// shard.Canonical) to exactly that chain, and wherever the counted chain
// is already canonical the edge lists and EdgeOf assignments compare
// strictly.
func assertParity2D(t *testing.T, pts []Point, counted, native Run2DResult) {
	t.Helper()
	canon := hull2d.UpperHull(pts)
	if !eqPts(native.Chain, canon) {
		t.Fatalf("native chain not canonical:\nnative %v\noracle %v", native.Chain, canon)
	}
	for i := range native.Edges {
		if native.Edges[i].U != native.Chain[i] || native.Edges[i].W != native.Chain[i+1] {
			t.Fatalf("native edge %d does not follow the chain: %+v", i, native.Edges[i])
		}
	}
	if len(pts) > 0 {
		sorted := append([]Point(nil), pts...)
		sort.Slice(sorted, func(i, j int) bool { return geom.LexLess(sorted[i], sorted[j]) })
		if !eqPts(shard.Canonical(sorted, counted.Chain), canon) {
			t.Fatalf("counted chain does not canonicalize to the native chain:\ncounted %v\nnative  %v",
				counted.Chain, native.Chain)
		}
	}
	if !eqPts(counted.Chain, native.Chain) {
		return // subdivided collinear edges: EdgeOf indices are incomparable
	}
	if !eqEdges(counted.Edges, native.Edges) {
		t.Fatalf("edges diverge:\ncounted %v\nnative  %v", counted.Edges, native.Edges)
	}
	if len(counted.EdgeOf) != len(native.EdgeOf) {
		t.Fatalf("EdgeOf lengths diverge: %d vs %d", len(counted.EdgeOf), len(native.EdgeOf))
	}
	for i := range counted.EdgeOf {
		if !edgeOfCompatible(counted.Edges, pts[i].X, counted.EdgeOf[i], native.EdgeOf[i]) {
			t.Fatalf("EdgeOf[%d] (x=%v): counted %d, native %d — not incident edges of a shared vertex",
				i, pts[i].X, counted.EdgeOf[i], native.EdgeOf[i])
		}
	}
}

// parityInputs2D are the unsorted 2-d inputs of the suite: every
// degeneracy the scan and the dedupe rules special-case, plus random
// workloads.
func parityInputs2D() map[string][]Point {
	column := func(x float64, n int) []Point {
		pts := make([]Point, n)
		for i := range pts {
			pts[i] = Point{X: x, Y: float64(i % (n/2 + 1))}
		}
		return pts
	}
	twoCols := append(column(0, 6), column(1, 6)...)
	dupCollinear := append(collinear(20), collinear(20)...)
	withEnds := append([]Point{{X: 0, Y: 0}, {X: 0, Y: 5}, {X: 0, Y: 2}}, workload.Disk(3, 200)...)
	withEnds = append(withEnds, Point{X: 100, Y: 1}, Point{X: 100, Y: 7})
	return map[string][]Point{
		"empty":          nil,
		"singleton":      {{X: 1, Y: 2}},
		"pair":           {{X: 0, Y: 0}, {X: 1, Y: 1}},
		"identical":      identical(40),
		"collinear":      collinear(40),
		"dup-collinear":  dupCollinear,
		"column":         column(3, 9),
		"two-columns":    twoCols,
		"extreme-cols":   withEnds,
		"grid":           workload.Grid(5, 400),
		"disk":           workload.Disk(11, 1500),
		"circle":         workload.Circle(13, 800),
		"gaussian":       workload.Gaussian(17, 1200),
		"disk-large-dc":  workload.Disk(19, 20000), // crosses the native sort/chain fork grains
		"sorted-already": workload.Sorted(workload.Disk(23, 600)),
	}
}

// TestBackendParity2D: AlgoHull2D counted vs native across all inputs.
func TestBackendParity2D(t *testing.T) {
	ctx := context.Background()
	for name, pts := range parityInputs2D() {
		t.Run(name, func(t *testing.T) {
			counted, crep, err := Run2D(ctx, NewMachine(), NewRand(7), pts, RunConfig{Direct: true})
			if err != nil {
				t.Fatal(err)
			}
			native, nrep, err := RunAuto2D(ctx, NewRand(7), pts, RunConfig{})
			if err != nil {
				t.Fatal(err)
			}
			assertParity2D(t, pts, counted, native)
			if crep.Backend() != BackendCounted || nrep.Backend() != BackendNative {
				t.Fatalf("backend stamps: counted %v, native %v", crep.Backend(), nrep.Backend())
			}
			if err := VerifyHull2D(pts, Hull2DResult{Chain: native.Chain, Edges: native.Edges, EdgeOf: native.EdgeOf}); err != nil {
				t.Fatalf("native hull fails the sequential oracle: %v", err)
			}
		})
	}
}

// TestBackendParityPresortedFamily: AlgoPresorted, AlgoLogStar and
// AlgoOptimal agree between backends on the sorted projections.
func TestBackendParityPresortedFamily(t *testing.T) {
	ctx := context.Background()
	for name, raw := range parityInputs2D() {
		pts := prepSorted(raw)
		for _, algo := range []Algo{AlgoPresorted, AlgoLogStar, AlgoOptimal} {
			t.Run(name+"/"+algo.String(), func(t *testing.T) {
				cfg := RunConfig{Algorithm: algo, Direct: algo != AlgoOptimal}
				counted, _, err := Run2D(ctx, NewMachine(), NewRand(5), pts, cfg)
				if err != nil {
					t.Fatal(err)
				}
				native, rep, err := RunAuto2D(ctx, NewRand(5), pts, RunConfig{Algorithm: algo})
				if err != nil {
					t.Fatal(err)
				}
				assertParity2D(t, pts, counted, native)
				if rep.Backend() != BackendNative {
					t.Fatalf("native report backend = %v", rep.Backend())
				}
				if algo == AlgoOptimal && native.Optimal == nil {
					t.Fatal("native optimal run did not populate the Optimal record")
				}
			})
		}
	}
}

// TestBackendParityUnsortedRejection: the native presorted family keeps
// the typed UnsortedInput contract.
func TestBackendParityUnsortedRejection(t *testing.T) {
	pts := []Point{{X: 2, Y: 0}, {X: 1, Y: 0}}
	for _, algo := range []Algo{AlgoPresorted, AlgoLogStar, AlgoOptimal} {
		_, _, err := RunAuto2D(context.Background(), NewRand(1), pts, RunConfig{Algorithm: algo})
		if err == nil || !IsTyped(err) {
			t.Fatalf("%v: err=%v, want typed unsorted-input error", algo, err)
		}
	}
}

// TestBackendParity3D: native caps pass the same oracle the counted
// engine gates on, on both backends' reports, across degeneracies.
func TestBackendParity3D(t *testing.T) {
	ctx := context.Background()
	flat := make([]Point3, 30)
	for i := range flat {
		flat[i] = Point3{X: float64(i % 6), Y: float64(i / 6), Z: 0}
	}
	inputs := map[string][]Point3{
		"empty":     nil,
		"singleton": {{X: 1, Y: 2, Z: 3}},
		"triangle":  {{X: 0, Y: 0, Z: 0}, {X: 1, Y: 0, Z: 0}, {X: 0, Y: 1, Z: 0}},
		"coplanar":  flat,
		"ball":      workload.Ball(29, 400),
		"sphere":    workload.Sphere(31, 300),
	}
	for name, pts := range inputs {
		t.Run(name, func(t *testing.T) {
			counted, _, err := Run3D(ctx, NewMachine(), NewRand(9), pts, RunConfig{Direct: true})
			if err != nil {
				t.Fatal(err)
			}
			native, rep, err := RunAuto3D(ctx, NewRand(9), pts, RunConfig{})
			if err != nil {
				t.Fatal(err)
			}
			if rep.Backend() != BackendNative {
				t.Fatalf("native report backend = %v", rep.Backend())
			}
			if len(native.FacetOf) != len(pts) || len(counted.FacetOf) != len(pts) {
				t.Fatalf("FacetOf lengths: counted %d, native %d, want %d",
					len(counted.FacetOf), len(native.FacetOf), len(pts))
			}
			// Facet identity is seed-dependent even within one backend;
			// the shared contract is the cap oracle.
			if err := unsorted.CheckCaps3D(pts, native); err != nil {
				t.Fatalf("native caps fail the oracle: %v", err)
			}
			if err := unsorted.CheckCaps3D(pts, counted); err != nil {
				t.Fatalf("counted caps fail the oracle: %v", err)
			}
		})
	}
}

// TestRunAutoBackendSelection: the RunAuto wrappers resolve BackendAuto
// to native, honor an explicit BackendCounted (bit-identical to a Run2D
// call on a fresh machine), and Run2D honors an explicit BackendNative
// without touching the machine's counters.
func TestRunAutoBackendSelection(t *testing.T) {
	ctx := context.Background()
	pts := workload.Disk(37, 900)

	auto, arep, err := RunAuto2D(ctx, NewRand(3), pts, RunConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if arep.Backend() != BackendNative {
		t.Fatalf("auto resolved to %v, want native", arep.Backend())
	}

	counted, crep, err := RunAuto2D(ctx, NewRand(3), pts, RunConfig{Backend: BackendCounted})
	if err != nil {
		t.Fatal(err)
	}
	ref, _, err := Run2D(ctx, NewMachine(), NewRand(3), pts, RunConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if crep.Backend() != BackendCounted {
		t.Fatalf("explicit counted resolved to %v", crep.Backend())
	}
	if !reflect.DeepEqual(counted, ref) {
		t.Fatal("RunAuto2D{BackendCounted} differs from Run2D on a fresh machine")
	}
	assertParity2D(t, pts, counted, auto)

	m := NewMachine()
	nat, nrep, err := Run2D(ctx, m, NewRand(3), pts, RunConfig{Backend: BackendNative})
	if err != nil {
		t.Fatal(err)
	}
	if nrep.Backend() != BackendNative || nrep.TotalSteps != 0 || nrep.TotalWork != 0 {
		t.Fatalf("native-on-machine report = %+v, want native backend with zero counted cost", nrep)
	}
	if m.Time() != 0 || m.Work() != 0 {
		t.Fatalf("native run touched machine counters: time %d work %d", m.Time(), m.Work())
	}
	assertParity2D(t, pts, ref, nat)

	// The native engine still observes: the wall-time spans land on an
	// installed Collector with zero steps (see internal/obs for the
	// phantom-bucket regression).
	c := NewCollector()
	if _, _, err := RunAuto2D(ctx, NewRand(3), pts, RunConfig{Observer: c}); err != nil {
		t.Fatal(err)
	}
	if c.SpanCount("native-chain") == 0 || c.SpanCount("native-locate") == 0 {
		t.Fatalf("native spans missing from the observer: %+v", c.Phases())
	}
	if c.Total().Steps != 0 || c.Total().Work == 0 {
		t.Fatalf("native observation total = %+v, want zero steps, nonzero item work", c.Total())
	}
}

// TestBackendParityMetamorphic: native hulls are invariant under the same
// transformations the counted metamorphic suite pins — input permutation
// and duplication never change the canonical chain.
func TestBackendParityMetamorphic(t *testing.T) {
	ctx := context.Background()
	pts := workload.Disk(41, 2000)
	base, _, err := RunAuto2D(ctx, NewRand(1), pts, RunConfig{})
	if err != nil {
		t.Fatal(err)
	}
	// Reverse the input order.
	rev := make([]Point, len(pts))
	for i, p := range pts {
		rev[len(pts)-1-i] = p
	}
	r1, _, err := RunAuto2D(ctx, NewRand(2), rev, RunConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if !eqPts(base.Chain, r1.Chain) || !eqEdges(base.Edges, r1.Edges) {
		t.Fatal("native hull changed under input reversal")
	}
	// Duplicate every point.
	dup := append(append([]Point(nil), pts...), pts...)
	r2, _, err := RunAuto2D(ctx, NewRand(3), dup, RunConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if !eqPts(base.Chain, r2.Chain) || !eqEdges(base.Edges, r2.Edges) {
		t.Fatal("native hull changed under point duplication")
	}
}

// FuzzNativeParity2D: arbitrary inputs through both backends — the native
// chain and edges must match the counted engine bit for bit, EdgeOf up to
// vertex incidence, and errors must stay typed on both sides.
func FuzzNativeParity2D(f *testing.F) {
	corpus2D(f)
	f.Fuzz(func(t *testing.T, data []byte) {
		pts := decodePoints(data)
		counted, _, cerr := Run2D(context.Background(), NewMachine(), NewRand(1), pts, RunConfig{Direct: true})
		native, _, nerr := RunAuto2D(context.Background(), NewRand(1), pts, RunConfig{})
		if (cerr == nil) != (nerr == nil) {
			t.Fatalf("error parity broke: counted=%v native=%v", cerr, nerr)
		}
		if cerr != nil {
			if !IsTyped(cerr) || !IsTyped(nerr) {
				t.Fatalf("untyped error: counted=%v native=%v", cerr, nerr)
			}
			return
		}
		assertParity2D(t, pts, counted, native)
		if err := VerifyHull2D(pts, Hull2DResult{Chain: native.Chain, Edges: native.Edges, EdgeOf: native.EdgeOf}); err != nil {
			t.Fatalf("native hull of %d points fails the oracle: %v", len(pts), err)
		}
	})
}
