package inplacehull

import (
	"bytes"
	"flag"
	"fmt"
	"go/ast"
	"go/parser"
	"go/printer"
	"go/token"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
)

var updateAPIGolden = flag.Bool("update", false, "rewrite testdata/api_golden.txt from the current source")

// TestExportedAPIGolden pins the package's exported surface against a
// committed golden file. The run redesign deliberately shrank the public
// API to the Run entry points plus deprecated wrappers; this test makes
// any future drift — an accidental export, a removed wrapper, a changed
// signature — a reviewed diff instead of a silent change. Regenerate
// with `go test -run ExportedAPIGolden -update .`.
func TestExportedAPIGolden(t *testing.T) {
	got := strings.Join(exportedAPI(t), "\n") + "\n"
	const golden = "testdata/api_golden.txt"
	if *updateAPIGolden {
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("missing golden file (run with -update to create): %v", err)
	}
	if got != string(want) {
		t.Fatalf("exported API drifted from %s (run with -update after review):\n%s",
			golden, diffLines(string(want), got))
	}
}

// exportedAPI parses the root package's non-test files and renders one
// sorted line per exported declaration.
func exportedAPI(t *testing.T) []string {
	t.Helper()
	fset := token.NewFileSet()
	files, err := filepath.Glob("*.go")
	if err != nil {
		t.Fatal(err)
	}
	var lines []string
	for _, name := range files {
		if strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(fset, name, nil, 0)
		if err != nil {
			t.Fatal(err)
		}
		for _, decl := range f.Decls {
			lines = append(lines, renderDecl(fset, decl)...)
		}
	}
	sort.Strings(lines)
	return lines
}

func renderDecl(fset *token.FileSet, decl ast.Decl) []string {
	var out []string
	switch d := decl.(type) {
	case *ast.FuncDecl:
		if !d.Name.IsExported() {
			return nil
		}
		recv := ""
		if d.Recv != nil && len(d.Recv.List) == 1 {
			rt := typeString(fset, d.Recv.List[0].Type)
			if !ast.IsExported(strings.TrimPrefix(rt, "*")) {
				return nil
			}
			recv = "(" + rt + ") "
		}
		sig := typeString(fset, d.Type) // "func(params) results"
		out = append(out, "func "+recv+d.Name.Name+strings.TrimPrefix(sig, "func"))
	case *ast.GenDecl:
		for _, spec := range d.Specs {
			switch s := spec.(type) {
			case *ast.TypeSpec:
				if s.Name.IsExported() {
					kind := typeKind(s.Type)
					if s.Assign.IsValid() {
						kind = "= " + typeString(fset, s.Type)
					}
					out = append(out, fmt.Sprintf("type %s %s", s.Name.Name, kind))
				}
			case *ast.ValueSpec:
				for _, name := range s.Names {
					if !name.IsExported() {
						continue
					}
					kw := "var"
					if d.Tok == token.CONST {
						kw = "const"
					}
					line := kw + " " + name.Name
					if s.Type != nil {
						line += " " + typeString(fset, s.Type)
					}
					out = append(out, line)
				}
			}
		}
	}
	return out
}

func typeString(fset *token.FileSet, expr ast.Node) string {
	var b bytes.Buffer
	if err := printer.Fprint(&b, fset, expr); err != nil {
		return "<?>"
	}
	// Collapse any multi-line rendering to one canonical line.
	return strings.Join(strings.Fields(b.String()), " ")
}

func typeKind(expr ast.Expr) string {
	switch expr.(type) {
	case *ast.StructType:
		return "struct"
	case *ast.InterfaceType:
		return "interface"
	case *ast.FuncType:
		return "func"
	default:
		var b bytes.Buffer
		_ = printer.Fprint(&b, token.NewFileSet(), expr)
		return strings.Join(strings.Fields(b.String()), " ")
	}
}

// diffLines renders a minimal line diff (golden files are small).
func diffLines(want, got string) string {
	wantSet := map[string]bool{}
	for _, l := range strings.Split(want, "\n") {
		wantSet[l] = true
	}
	gotSet := map[string]bool{}
	for _, l := range strings.Split(got, "\n") {
		gotSet[l] = true
	}
	var b strings.Builder
	for _, l := range strings.Split(want, "\n") {
		if l != "" && !gotSet[l] {
			fmt.Fprintf(&b, "- %s\n", l)
		}
	}
	for _, l := range strings.Split(got, "\n") {
		if l != "" && !wantSet[l] {
			fmt.Fprintf(&b, "+ %s\n", l)
		}
	}
	if b.Len() == 0 {
		return "(ordering difference)"
	}
	return b.String()
}
