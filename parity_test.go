package inplacehull

import (
	"context"
	"reflect"
	"testing"

	"inplacehull/internal/workload"
)

// The legacy entry points are one-line wrappers over Run2D/Run3D; these
// tests pin the contract that motivated keeping them: with the same seed
// each wrapper returns bit-identical hulls (and reports, for the
// supervised variants) to the corresponding Run invocation on a fresh
// machine. A drift here means Run consumed randomness or machine state
// differently from the pre-redesign entry points.

func TestParityHull2D(t *testing.T) {
	pts := workload.Disk(21, 800)
	a, err := Hull2D(NewMachine(), NewRand(99), pts)
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := Run2D(context.Background(), NewMachine(), NewRand(99), pts, RunConfig{Direct: true})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, *b.Unsorted) {
		t.Fatal("Hull2D differs from Run2D{Direct}")
	}
	if !reflect.DeepEqual(a.Edges, b.Edges) || !reflect.DeepEqual(a.Chain, b.Chain) || !reflect.DeepEqual(a.EdgeOf, b.EdgeOf) {
		t.Fatal("unified Run2DResult fields differ from the algorithm record")
	}
}

func TestParityHull2DWithOptions(t *testing.T) {
	pts := workload.Gaussian(4, 600)
	opt := Hull2DOptions{PhaseIters: 3, MaxK: 12}
	a, err := Hull2DWithOptions(NewMachine(), NewRand(7), pts, opt)
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := Run2D(context.Background(), NewMachine(), NewRand(7), pts, RunConfig{Options2D: opt, Direct: true})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, *b.Unsorted) {
		t.Fatal("Hull2DWithOptions differs from Run2D{Options2D, Direct}")
	}
}

func TestParityHull2DCtx(t *testing.T) {
	pts := workload.Circle(5, 400)
	pol := Policy{MaxAttempts: 2}
	a, arep, err := Hull2DCtx(context.Background(), NewMachine(), NewRand(3), pts, pol)
	if err != nil {
		t.Fatal(err)
	}
	b, brep, err := Run2D(context.Background(), NewMachine(), NewRand(3), pts, RunConfig{Policy: pol})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, *b.Unsorted) || !reflect.DeepEqual(arep, brep) {
		t.Fatal("Hull2DCtx differs from supervised Run2D")
	}
}

func TestParityPresorted(t *testing.T) {
	pts := prepSorted(workload.Gaussian(8, 500))
	a, err := PresortedHull(NewMachine(), NewRand(11), pts)
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := Run2D(context.Background(), NewMachine(), NewRand(11), pts, RunConfig{Algorithm: AlgoPresorted, Direct: true})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, *b.Presorted) {
		t.Fatal("PresortedHull differs from Run2D{AlgoPresorted, Direct}")
	}
	as, arep, err := PresortedHullCtx(context.Background(), NewMachine(), NewRand(11), pts, Policy{})
	if err != nil {
		t.Fatal(err)
	}
	bs, brep, err := Run2D(context.Background(), NewMachine(), NewRand(11), pts, RunConfig{Algorithm: AlgoPresorted})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(as, *bs.Presorted) || !reflect.DeepEqual(arep, brep) {
		t.Fatal("PresortedHullCtx differs from supervised Run2D")
	}
}

func TestParityLogStarAndOptimal(t *testing.T) {
	pts := prepSorted(workload.Disk(13, 700))
	a, err := LogStarHull(NewMachine(), NewRand(5), pts)
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := Run2D(context.Background(), NewMachine(), NewRand(5), pts, RunConfig{Algorithm: AlgoLogStar, Direct: true})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, *b.Presorted) {
		t.Fatal("LogStarHull differs from Run2D{AlgoLogStar, Direct}")
	}
	ao, err := OptimalHull(NewMachine(), NewRand(5), pts)
	if err != nil {
		t.Fatal(err)
	}
	bo, _, err := Run2D(context.Background(), NewMachine(), NewRand(5), pts, RunConfig{Algorithm: AlgoOptimal})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ao, *bo.Optimal) {
		t.Fatal("OptimalHull differs from Run2D{AlgoOptimal}")
	}
}

func TestParityHull3D(t *testing.T) {
	pts := workload.Ball(17, 250)
	a, err := Hull3D(NewMachine(), NewRand(23), pts)
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := Run3D(context.Background(), NewMachine(), NewRand(23), pts, RunConfig{Direct: true})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("Hull3D differs from Run3D{Direct}")
	}
	as, arep, err := Hull3DCtx(context.Background(), NewMachine(), NewRand(23), pts, Policy{})
	if err != nil {
		t.Fatal(err)
	}
	bs, brep, err := Run3D(context.Background(), NewMachine(), NewRand(23), pts, RunConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(as, bs) || !reflect.DeepEqual(arep, brep) {
		t.Fatal("Hull3DCtx differs from supervised Run3D")
	}
}

// An observer must not perturb the computation: the same run with and
// without a Collector installed returns identical results and identical
// machine counters.
func TestObserverDoesNotPerturbRun(t *testing.T) {
	pts := workload.Disk(31, 900)
	m1, m2 := NewMachine(), NewMachine()
	c := NewCollector()
	a, _, err := Run2D(context.Background(), m1, NewRand(77), pts, RunConfig{})
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := Run2D(context.Background(), m2, NewRand(77), pts, RunConfig{Observer: c})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("observed run differs from unobserved run")
	}
	if m1.Work() != m2.Work() || m1.Time() != m2.Time() {
		t.Fatalf("observed counters differ: work %d/%d time %d/%d", m1.Work(), m2.Work(), m1.Time(), m2.Time())
	}
	// And the collector accounted that work exactly.
	if c.Total().Work != m2.Work() {
		t.Fatalf("collector total %d != machine work %d", c.Total().Work, m2.Work())
	}
	// The run restored the (nil) sink afterwards.
	if m2.Sink() != nil {
		t.Fatal("Run2D leaked its observer onto the machine")
	}
}
