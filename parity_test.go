package inplacehull

import (
	"context"
	"reflect"
	"runtime"
	"testing"

	"inplacehull/internal/fault"
	"inplacehull/internal/pram"
	"inplacehull/internal/workload"
)

// The legacy entry points are one-line wrappers over Run2D/Run3D; these
// tests pin the contract that motivated keeping them: with the same seed
// each wrapper returns bit-identical hulls (and reports, for the
// supervised variants) to the corresponding Run invocation on a fresh
// machine. A drift here means Run consumed randomness or machine state
// differently from the pre-redesign entry points.

func TestParityHull2D(t *testing.T) {
	pts := workload.Disk(21, 800)
	a, err := Hull2D(NewMachine(), NewRand(99), pts)
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := Run2D(context.Background(), NewMachine(), NewRand(99), pts, RunConfig{Direct: true})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, *b.Unsorted) {
		t.Fatal("Hull2D differs from Run2D{Direct}")
	}
	if !reflect.DeepEqual(a.Edges, b.Edges) || !reflect.DeepEqual(a.Chain, b.Chain) || !reflect.DeepEqual(a.EdgeOf, b.EdgeOf) {
		t.Fatal("unified Run2DResult fields differ from the algorithm record")
	}
}

func TestParityHull2DWithOptions(t *testing.T) {
	pts := workload.Gaussian(4, 600)
	opt := Hull2DOptions{PhaseIters: 3, MaxK: 12}
	a, err := Hull2DWithOptions(NewMachine(), NewRand(7), pts, opt)
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := Run2D(context.Background(), NewMachine(), NewRand(7), pts, RunConfig{Options2D: opt, Direct: true})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, *b.Unsorted) {
		t.Fatal("Hull2DWithOptions differs from Run2D{Options2D, Direct}")
	}
}

func TestParityHull2DCtx(t *testing.T) {
	pts := workload.Circle(5, 400)
	pol := Policy{MaxAttempts: 2}
	a, arep, err := Hull2DCtx(context.Background(), NewMachine(), NewRand(3), pts, pol)
	if err != nil {
		t.Fatal(err)
	}
	b, brep, err := Run2D(context.Background(), NewMachine(), NewRand(3), pts, RunConfig{Policy: pol})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, *b.Unsorted) || !reflect.DeepEqual(arep, brep) {
		t.Fatal("Hull2DCtx differs from supervised Run2D")
	}
}

func TestParityPresorted(t *testing.T) {
	pts := prepSorted(workload.Gaussian(8, 500))
	a, err := PresortedHull(NewMachine(), NewRand(11), pts)
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := Run2D(context.Background(), NewMachine(), NewRand(11), pts, RunConfig{Algorithm: AlgoPresorted, Direct: true})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, *b.Presorted) {
		t.Fatal("PresortedHull differs from Run2D{AlgoPresorted, Direct}")
	}
	as, arep, err := PresortedHullCtx(context.Background(), NewMachine(), NewRand(11), pts, Policy{})
	if err != nil {
		t.Fatal(err)
	}
	bs, brep, err := Run2D(context.Background(), NewMachine(), NewRand(11), pts, RunConfig{Algorithm: AlgoPresorted})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(as, *bs.Presorted) || !reflect.DeepEqual(arep, brep) {
		t.Fatal("PresortedHullCtx differs from supervised Run2D")
	}
}

func TestParityLogStarAndOptimal(t *testing.T) {
	pts := prepSorted(workload.Disk(13, 700))
	a, err := LogStarHull(NewMachine(), NewRand(5), pts)
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := Run2D(context.Background(), NewMachine(), NewRand(5), pts, RunConfig{Algorithm: AlgoLogStar, Direct: true})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, *b.Presorted) {
		t.Fatal("LogStarHull differs from Run2D{AlgoLogStar, Direct}")
	}
	ao, err := OptimalHull(NewMachine(), NewRand(5), pts)
	if err != nil {
		t.Fatal(err)
	}
	bo, _, err := Run2D(context.Background(), NewMachine(), NewRand(5), pts, RunConfig{Algorithm: AlgoOptimal})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ao, *bo.Optimal) {
		t.Fatal("OptimalHull differs from Run2D{AlgoOptimal}")
	}
}

func TestParityHull3D(t *testing.T) {
	pts := workload.Ball(17, 250)
	a, err := Hull3D(NewMachine(), NewRand(23), pts)
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := Run3D(context.Background(), NewMachine(), NewRand(23), pts, RunConfig{Direct: true})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("Hull3D differs from Run3D{Direct}")
	}
	as, arep, err := Hull3DCtx(context.Background(), NewMachine(), NewRand(23), pts, Policy{})
	if err != nil {
		t.Fatal(err)
	}
	bs, brep, err := Run3D(context.Background(), NewMachine(), NewRand(23), pts, RunConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(as, bs) || !reflect.DeepEqual(arep, brep) {
		t.Fatal("Hull3DCtx differs from supervised Run3D")
	}
}

// ---- Counted-semantics equivalence: workers=1 vs the pooled engine ----
//
// The persistent worker-pool engine (internal/pram/engine.go) may change
// how a step's virtual processors are executed — persistent workers,
// dynamic chunking, calibrated thresholds — but must never change what is
// counted. This suite runs all five algorithms on shared seeds under a
// single-worker machine (pure sequential loops) and under a pooled machine
// whose threshold is pinned low enough that essentially every step
// dispatches to the pool, and asserts the outputs, counter snapshots,
// per-step profiles and per-phase observability attribution are identical.

// equivCase is one (algorithm, input, seed) cell of the suite.
type equivCase struct {
	name string
	run  func(m *Machine, c *Collector) (any, error)
}

// equivMachines returns the workers=1 reference machine and the pooled
// machine under test. The pool runs max(4, GOMAXPROCS) workers so the
// engine path is genuinely concurrent even on small hosts, with the
// parallel threshold pinned at 64 so the algorithms' many small steps
// exercise the barrier rather than the sequential shortcut.
func equivMachines() (*Machine, *Machine) {
	workers := runtime.GOMAXPROCS(0)
	if workers < 4 {
		workers = 4
	}
	seq := NewMachine(WithWorkers(1), WithProfile())
	pool := NewMachine(WithWorkers(workers), WithProfile(), pram.WithParallelThreshold(64))
	return seq, pool
}

// phasesSansWall strips the wall-clock column (the one legitimately
// machine-dependent quantity) from a collector's per-phase account.
func phasesSansWall(c *Collector) []Phase {
	ph := c.Phases()
	for i := range ph {
		ph[i].Wall = 0
	}
	return ph
}

func TestCountedSemanticsEquivalence(t *testing.T) {
	ctx := context.Background()
	for _, seed := range []uint64{5, 29} {
		sorted := prepSorted(workload.Disk(seed, 3000))
		pts2 := workload.Disk(seed+1, 3000)
		pts3 := workload.Ball(seed+2, 700)
		cases := []equivCase{
			{"presorted", func(m *Machine, c *Collector) (any, error) {
				r, rep, err := Run2D(ctx, m, NewRand(seed), sorted, RunConfig{Algorithm: AlgoPresorted, Direct: true, Observer: c})
				return []any{r, rep}, err
			}},
			{"logstar", func(m *Machine, c *Collector) (any, error) {
				r, rep, err := Run2D(ctx, m, NewRand(seed), sorted, RunConfig{Algorithm: AlgoLogStar, Direct: true, Observer: c})
				return []any{r, rep}, err
			}},
			{"optimal", func(m *Machine, c *Collector) (any, error) {
				r, rep, err := Run2D(ctx, m, NewRand(seed), sorted, RunConfig{Algorithm: AlgoOptimal, Observer: c})
				return []any{r, rep}, err
			}},
			{"hull2d", func(m *Machine, c *Collector) (any, error) {
				r, rep, err := Run2D(ctx, m, NewRand(seed), pts2, RunConfig{Direct: true, Observer: c})
				return []any{r, rep}, err
			}},
			{"hull3d", func(m *Machine, c *Collector) (any, error) {
				r, rep, err := Run3D(ctx, m, NewRand(seed), pts3, RunConfig{Direct: true, Observer: c})
				return []any{r, rep}, err
			}},
		}
		for _, tc := range cases {
			t.Run(tc.name, func(t *testing.T) {
				seq, pool := equivMachines()
				defer pool.Close()
				cSeq, cPool := NewCollector(), NewCollector()
				a, errA := tc.run(seq, cSeq)
				b, errB := tc.run(pool, cPool)
				if (errA == nil) != (errB == nil) {
					t.Fatalf("seed %d: error parity broke: seq=%v pool=%v", seed, errA, errB)
				}
				if errA != nil {
					t.Fatalf("seed %d: run failed: %v", seed, errA)
				}
				if !reflect.DeepEqual(a, b) {
					t.Fatalf("seed %d: results diverge between workers=1 and pooled execution", seed)
				}
				if seq.Snap() != pool.Snap() {
					t.Fatalf("seed %d: snapshots diverge:\nseq  %+v\npool %+v", seed, seq.Snap(), pool.Snap())
				}
				if !reflect.DeepEqual(seq.Profile(), pool.Profile()) {
					t.Fatalf("seed %d: per-step profiles diverge (len %d vs %d)", seed, len(seq.Profile()), len(pool.Profile()))
				}
				if !reflect.DeepEqual(phasesSansWall(cSeq), phasesSansWall(cPool)) {
					t.Fatalf("seed %d: per-phase attribution diverges:\nseq  %+v\npool %+v",
						seed, phasesSansWall(cSeq), phasesSansWall(cPool))
				}
				if cSeq.Total().Work != seq.Work() || cPool.Total().Work != pool.Work() {
					t.Fatalf("seed %d: collector totals do not partition machine work", seed)
				}
			})
		}
	}
}

// TestEquivalencePooledForceFallback: the §4.1 fallback switch forced by
// fault injection runs its big parallel steps (radix sort + segmented
// hull) through the pool with the same counted semantics as workers=1, and
// the pool stays reusable afterwards — the regression for panic/fault
// unwinds through engine-dispatched steps.
func TestEquivalencePooledForceFallback(t *testing.T) {
	ctx := context.Background()
	pts := workload.Disk(7, 3000)
	plan := fault.Plan{Seed: 9, FallbackLevel: 1}
	run := func(m *Machine) Run2DResult {
		t.Helper()
		inj := fault.NewInjector(plan)
		r, _, err := Run2D(ctx, m, fault.Attach(NewRand(3), inj), pts, RunConfig{Direct: true})
		if err != nil {
			t.Fatalf("forced-fallback run failed: %v", err)
		}
		if inj.Counts()[fault.ForceFallback].Injected == 0 {
			t.Fatal("fallback injection did not fire")
		}
		return r
	}
	seq, pool := equivMachines()
	defer pool.Close()
	a, b := run(seq), run(pool)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("forced-fallback results diverge between workers=1 and pooled execution")
	}
	if seq.Snap() != pool.Snap() {
		t.Fatalf("forced-fallback snapshots diverge:\nseq  %+v\npool %+v", seq.Snap(), pool.Snap())
	}
	if err := VerifyHull2D(pts, *a.Unsorted); err != nil {
		t.Fatalf("fallback hull fails the oracle: %v", err)
	}
	// The pool must remain reusable for a clean (injector-free) run.
	pool.ResetCounters()
	r, _, err := Run2D(ctx, pool, NewRand(3), pts, RunConfig{Direct: true})
	if err != nil {
		t.Fatalf("clean run after forced fallback failed: %v", err)
	}
	if err := VerifyHull2D(pts, *r.Unsorted); err != nil {
		t.Fatalf("post-fallback reuse produced a bad hull: %v", err)
	}
}

// An observer must not perturb the computation: the same run with and
// without a Collector installed returns identical results and identical
// machine counters.
func TestObserverDoesNotPerturbRun(t *testing.T) {
	pts := workload.Disk(31, 900)
	m1, m2 := NewMachine(), NewMachine()
	c := NewCollector()
	a, _, err := Run2D(context.Background(), m1, NewRand(77), pts, RunConfig{})
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := Run2D(context.Background(), m2, NewRand(77), pts, RunConfig{Observer: c})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("observed run differs from unobserved run")
	}
	if m1.Work() != m2.Work() || m1.Time() != m2.Time() {
		t.Fatalf("observed counters differ: work %d/%d time %d/%d", m1.Work(), m2.Work(), m1.Time(), m2.Time())
	}
	// And the collector accounted that work exactly.
	if c.Total().Work != m2.Work() {
		t.Fatalf("collector total %d != machine work %d", c.Total().Work, m2.Work())
	}
	// The run restored the (nil) sink afterwards.
	if m2.Sink() != nil {
		t.Fatal("Run2D leaked its observer onto the machine")
	}
}
