// Benchmarks regenerating every experiment of DESIGN.md §6 — one bench
// target per table/figure-equivalent claim of the paper. Custom metrics
// report the model quantities the claims are about: PRAM steps, work, and
// the normalized ratios (work per n·log h etc.). Run all of them with
//
//	go test -bench=. -benchmem
//
// or a single experiment with e.g. -bench=BenchmarkE3. Full sweep tables
// (the "figures") are printed by cmd/hullbench.
package inplacehull

import (
	"math"
	"testing"

	"inplacehull/internal/alloc"
	"inplacehull/internal/bench"
	"inplacehull/internal/hull2d"
	"inplacehull/internal/pram"
	"inplacehull/internal/rng"
	"inplacehull/internal/unsorted"
	"inplacehull/internal/workload"
)

func prepSorted(pts []Point) []Point {
	s := workload.Sorted(pts)
	out := s[:0]
	for i, p := range s {
		if i > 0 && p.X == out[len(out)-1].X {
			if p.Y > out[len(out)-1].Y {
				out[len(out)-1] = p
			}
			continue
		}
		out = append(out, p)
	}
	return out
}

// BenchmarkE1PresortedConstTime measures Lemma 2.5: constant steps,
// O(n log n) work on pre-sorted input.
func BenchmarkE1PresortedConstTime(b *testing.B) {
	for _, n := range []int{1 << 12, 1 << 14, 1 << 16} {
		pts := prepSorted(workload.Disk(1, n))
		b.Run(sizeName(n), func(b *testing.B) {
			var steps, work int64
			for i := 0; i < b.N; i++ {
				m := NewMachine()
				if _, err := PresortedHull(m, NewRand(uint64(i)), pts); err != nil {
					b.Fatal(err)
				}
				steps, work = m.Time(), m.Work()
			}
			b.ReportMetric(float64(steps), "pram-steps")
			b.ReportMetric(float64(work)/(float64(n)*math.Log2(float64(n))), "work/nlgn")
		})
	}
}

// BenchmarkE2PresortedLogStar measures Theorem 2: O(log* n) steps, O(n)
// processors.
func BenchmarkE2PresortedLogStar(b *testing.B) {
	for _, n := range []int{1 << 12, 1 << 14, 1 << 16} {
		pts := prepSorted(workload.Disk(1, n))
		b.Run(sizeName(n), func(b *testing.B) {
			var steps, work int64
			for i := 0; i < b.N; i++ {
				m := NewMachine()
				if _, err := LogStarHull(m, NewRand(uint64(i)), pts); err != nil {
					b.Fatal(err)
				}
				steps, work = m.Time(), m.Work()
			}
			b.ReportMetric(float64(steps), "pram-steps")
			b.ReportMetric(float64(work)/float64(n), "work/n")
		})
	}
}

// BenchmarkE3Unsorted2D measures Theorem 5 across the h spectrum.
func BenchmarkE3Unsorted2D(b *testing.B) {
	n := 1 << 14
	for _, g := range []workload.Gen2D{
		{Name: "poly16", Gen: workload.PolygonFew(16)},
		{Name: "disk", Gen: workload.Disk},
		{Name: "circle", Gen: workload.Circle},
	} {
		pts := g.Gen(1, n)
		b.Run(g.Name, func(b *testing.B) {
			var steps, work int64
			var h int
			for i := 0; i < b.N; i++ {
				m := NewMachine()
				res, err := Hull2D(m, NewRand(uint64(i)), pts)
				if err != nil {
					b.Fatal(err)
				}
				steps, work, h = m.Time(), m.Work(), len(res.Chain)
			}
			b.ReportMetric(float64(steps)/math.Log2(float64(n)), "steps/lgn")
			b.ReportMetric(float64(work)/(float64(n)*math.Log2(float64(h)+2)), "work/nlgh")
		})
	}
}

// BenchmarkE4Unsorted3D measures Theorem 6 across the h spectrum.
func BenchmarkE4Unsorted3D(b *testing.B) {
	n := 1 << 11
	for _, g := range []workload.Gen3D{
		{Name: "ballfew", Gen: workload.BallFew(32)},
		{Name: "ball", Gen: workload.Ball},
		{Name: "sphere", Gen: workload.Sphere},
	} {
		pts := g.Gen(1, n)
		b.Run(g.Name, func(b *testing.B) {
			var steps, work int64
			var h int
			for i := 0; i < b.N; i++ {
				m := NewMachine()
				res, err := Hull3D(m, NewRand(uint64(i)), pts)
				if err != nil {
					b.Fatal(err)
				}
				steps, work, h = m.Time(), m.Work(), len(res.Facets)
			}
			lgn := math.Log2(float64(n))
			lgh := math.Log2(float64(h) + 2)
			bound := math.Min(float64(n)*lgh*lgh, float64(n)*lgn)
			b.ReportMetric(float64(steps)/(lgn*lgn), "steps/lg2n")
			b.ReportMetric(float64(work)/bound, "work/bound")
		})
	}
}

// BenchmarkE5SampleVote measures Lemma 3.1/Corollary 3.1.
func BenchmarkE5SampleVote(b *testing.B) {
	runExperiment(b, "E5")
}

// BenchmarkE6Compaction measures Lemma 3.2.
func BenchmarkE6Compaction(b *testing.B) {
	runExperiment(b, "E6")
}

// BenchmarkE7BridgeFinding measures Lemmas 4.1/4.2.
func BenchmarkE7BridgeFinding(b *testing.B) {
	runExperiment(b, "E7")
}

// BenchmarkE8SplitDecay measures Lemmas 5.1/6.1.
func BenchmarkE8SplitDecay(b *testing.B) {
	runExperiment(b, "E8")
}

// BenchmarkE9FailureSweep measures §2.3's confidence lift.
func BenchmarkE9FailureSweep(b *testing.B) {
	runExperiment(b, "E9")
}

// BenchmarkE10Allocation measures Lemma 7: T = t + w/p + t_c log t.
func BenchmarkE10Allocation(b *testing.B) {
	pts := workload.Disk(1, 1<<13)
	m := pram.New(pram.WithProfile())
	if _, err := unsorted.Hull2D(m, rng.New(1), pts); err != nil {
		b.Fatal(err)
	}
	profile := m.Profile()
	for _, p := range []int{1, 16, 256} {
		b.Run("p="+sizeName(p), func(b *testing.B) {
			var sim int64
			for i := 0; i < b.N; i++ {
				sim = alloc.SimulatedTime(profile, p, alloc.DefaultTc)
			}
			b.ReportMetric(float64(sim), "sim-T")
			b.ReportMetric(alloc.Speedup(profile, p, alloc.DefaultTc), "speedup")
		})
	}
}

// BenchmarkE11Baselines compares the parallel work with the sequential
// output-sensitive baselines the paper matches.
func BenchmarkE11Baselines(b *testing.B) {
	n := 1 << 14
	pts := workload.Disk(1, n)
	b.Run("pram-hull2d", func(b *testing.B) {
		var work int64
		for i := 0; i < b.N; i++ {
			m := NewMachine()
			if _, err := Hull2D(m, NewRand(uint64(i)), pts); err != nil {
				b.Fatal(err)
			}
			work = m.Work()
		}
		b.ReportMetric(float64(work), "pram-work")
	})
	b.Run("kirkpatrick-seidel", func(b *testing.B) {
		var ops int64
		for i := 0; i < b.N; i++ {
			_, ops = hull2d.KirkpatrickSeidelOps(pts)
		}
		b.ReportMetric(float64(ops), "seq-ops")
	})
	b.Run("chan", func(b *testing.B) {
		var ops int64
		for i := 0; i < b.N; i++ {
			var err error
			_, ops, err = hull2d.ChanUpperOps(pts)
			if err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(ops), "seq-ops")
	})
	b.Run("monotone-chain", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			hull2d.UpperHull(pts)
		}
	})
}

// BenchmarkE12Primitives measures the constant-time CRCW primitives.
func BenchmarkE12Primitives(b *testing.B) {
	runExperiment(b, "E12")
}

// BenchmarkE13Ablations measures the design-choice ablations (base size,
// phase length, fallback switch, base solver).
func BenchmarkE13Ablations(b *testing.B) {
	runExperiment(b, "E13")
}

// runExperiment executes a registered experiment once per benchmark
// iteration in quick mode; the sweep tables are the artifact, printed by
// cmd/hullbench.
func runExperiment(b *testing.B, id string) {
	e, ok := bench.Get(id)
	if !ok {
		b.Fatalf("experiment %s not registered", id)
	}
	for i := 0; i < b.N; i++ {
		tables := e.Run(bench.Config{Seed: uint64(i + 1), Quick: true})
		if len(tables) == 0 {
			b.Fatal("no tables")
		}
	}
}

func sizeName(n int) string {
	switch {
	case n >= 1<<20 && n%(1<<20) == 0:
		return itoa(n>>20) + "Mi"
	case n >= 1<<10 && n%(1<<10) == 0:
		return itoa(n>>10) + "Ki"
	default:
		return itoa(n)
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b [20]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}

// BenchmarkMachineWorkers measures the *wall-clock* effect of the
// goroutine worker pool executing the PRAM steps — the real-concurrency
// layer beneath the model counters (which are identical across runs).
func BenchmarkMachineWorkers(b *testing.B) {
	pts := workload.Disk(1, 1<<15)
	for _, w := range []int{1, 2, 4, 8} {
		b.Run("workers="+sizeName(w), func(b *testing.B) {
			var steps int64
			for i := 0; i < b.N; i++ {
				m := NewMachine(WithWorkers(w))
				if _, err := Hull2D(m, NewRand(7), pts); err != nil {
					b.Fatal(err)
				}
				steps = m.Time()
			}
			b.ReportMetric(float64(steps), "pram-steps")
		})
	}
}

// BenchmarkE17Dispatch times one PRAM step under the three dispatch
// strategies E17 compares: workers=1 sequential, the frozen
// spawn-per-step baseline, and the persistent worker-pool engine. The
// full structure-matched overhead analysis (and the regression gate) is
// cmd/hullbench -exp E17; this target is the raw ns/step material.
func BenchmarkE17Dispatch(b *testing.B) {
	const n = 1 << 14
	variants := []struct {
		name string
		mk   func() *pram.Machine
	}{
		{"seq", func() *pram.Machine { return pram.New(pram.WithWorkers(1)) }},
		{"spawn", func() *pram.Machine {
			return pram.New(pram.WithWorkers(8), pram.WithSpawnDispatch())
		}},
		{"engine", func() *pram.Machine {
			return pram.New(pram.WithWorkers(8), pram.WithParallelThreshold(1))
		}},
	}
	sum := make([]int64, n)
	for _, v := range variants {
		b.Run(v.name, func(b *testing.B) {
			m := v.mk()
			defer m.Close()
			m.Step(n, func(p int) bool { sum[p]++; return true }) // warm the pool
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				m.Step(n, func(p int) bool { sum[p]++; return true })
			}
		})
	}
}
