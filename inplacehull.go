// Package inplacehull is a Go reproduction of Ghouse & Goodrich,
// "In-Place Techniques for Parallel Convex Hull Algorithms" (SPAA 1991):
// randomized CRCW PRAM algorithms for 2- and 3-dimensional convex hulls,
// executed and measured on a simulated PRAM.
//
// The public API re-exports the library's building blocks:
//
//   - NewMachine creates the simulated CRCW PRAM every parallel algorithm
//     runs on; its counters report parallel time (steps), work (live
//     processor activations), peak processors and work space.
//   - PresortedHull (§2.2, O(1) steps, O(n log n) processors) and
//     LogStarHull (§2.5, O(log* n) steps, O(n) processors) take points
//     sorted by strictly increasing x.
//   - Hull2D (§4.1, O(log n) steps, O(n log h) work) and Hull3D (§4.3,
//     O(log² n) steps, O(min{n log² h, n log n}) work) take unsorted
//     points.
//   - The sequential baselines (UpperHull, KirkpatrickSeidel, ChanUpper,
//     QuickHullUpper, Jarvis, Graham, Incremental3D, GiftWrap3D) provide
//     reference results and comparison curves.
//
// A minimal session:
//
//	m := inplacehull.NewMachine()
//	rnd := inplacehull.NewRand(42)
//	res, err := inplacehull.Hull2D(m, rnd, points)
//	// res.Chain is the upper hull; res.EdgeOf[i] is the hull edge above
//	// point i; m.Time() and m.Work() are the measured PRAM costs.
//
// See DESIGN.md for the system inventory and EXPERIMENTS.md for the
// paper-versus-measured record.
package inplacehull

import (
	"context"

	"inplacehull/internal/geom"
	"inplacehull/internal/hull2d"
	"inplacehull/internal/hull3d"
	"inplacehull/internal/hullerr"
	"inplacehull/internal/pram"
	"inplacehull/internal/presorted"
	"inplacehull/internal/resilient"
	"inplacehull/internal/rng"
	"inplacehull/internal/unsorted"
)

// Core geometric types.
type (
	// Point is a point in the plane.
	Point = geom.Point
	// Point3 is a point in space.
	Point3 = geom.Point3
	// Edge is a directed upper-hull edge (U.X < W.X).
	Edge = geom.Edge
)

// Machine is the simulated CRCW PRAM (see internal/pram for the model).
type Machine = pram.Machine

// MachineOption configures NewMachine.
type MachineOption = pram.Option

// NewMachine returns a fresh simulated CRCW PRAM.
func NewMachine(opts ...MachineOption) *Machine { return pram.New(opts...) }

// WithWorkers bounds the OS-level parallelism used to execute PRAM steps.
func WithWorkers(w int) MachineOption { return pram.WithWorkers(w) }

// WithProfile records per-step live-processor counts for the §5
// processor-allocation analysis (package alloc).
func WithProfile() MachineOption { return pram.WithProfile() }

// Rand is the deterministic splittable random stream the randomized
// algorithms consume.
type Rand = rng.Stream

// NewRand returns a stream seeded deterministically from seed.
func NewRand(seed uint64) *Rand { return rng.New(seed) }

// Error taxonomy. Every error returned by the hull algorithms is (or wraps)
// an *Error; match on the sentinel values with errors.Is, which compares
// kinds:
//
//	if errors.Is(err, inplacehull.ErrUnsorted) { … }
type (
	// Error is the typed error every algorithm returns on failure.
	Error = hullerr.Error
	// ErrorKind classifies an Error.
	ErrorKind = hullerr.Kind
)

// Error kinds.
const (
	// ErrKindInvalidInput: the input violates a documented precondition
	// (non-finite coordinates, malformed segments, dimension mismatches).
	ErrKindInvalidInput = hullerr.InvalidInput
	// ErrKindUnsortedInput: a pre-sorted-input algorithm received input not
	// strictly increasing in x.
	ErrKindUnsortedInput = hullerr.UnsortedInput
	// ErrKindBudgetExhausted: a retry/recursion budget ran out (the typed
	// replacement for looping forever under adversarial randomness).
	ErrKindBudgetExhausted = hullerr.BudgetExhausted
	// ErrKindInternal: an invariant the algorithms guarantee was violated —
	// always a bug, never caused by user input.
	ErrKindInternal = hullerr.Internal
	// ErrKindCanceled: the context of a *Ctx entry point was canceled; the
	// machine stopped between PRAM steps with its counters consistent.
	ErrKindCanceled = hullerr.Canceled
	// ErrKindDeadline: the context deadline of a *Ctx entry point expired.
	ErrKindDeadline = hullerr.DeadlineExceeded
	// ErrKindOverloaded: the serving layer (internal/serve, cmd/hullserve)
	// shed the request — admission queue full or server closed. Retryable.
	ErrKindOverloaded = hullerr.Overloaded
	// ErrKindApproximateOnly: the caller demanded an exact answer
	// (Policy.RequireExact, or require_exact on the wire) but every exact
	// tier failed and only the certified ε-approximate tier could answer.
	// Retrying without the exactness demand would succeed.
	ErrKindApproximateOnly = hullerr.ApproximateOnly
	// ErrKindPartialHull: the sharded scatter-gather layer answered with
	// an exact hull of only the reachable shards; the error names the
	// missing ones. Retrying once the missing peers recover yields the
	// global hull.
	ErrKindPartialHull = hullerr.PartialHull
)

// Sentinel errors for errors.Is matching (kind-based).
var (
	// ErrNonFinite matches invalid-input errors (NaN/±Inf coordinates and
	// other precondition violations).
	ErrNonFinite = hullerr.ErrNonFinite
	// ErrUnsorted matches unsorted-input errors from PresortedHull,
	// LogStarHull and OptimalHull.
	ErrUnsorted = hullerr.ErrUnsorted
	// ErrBudget matches budget-exhaustion errors.
	ErrBudget = hullerr.ErrBudget
	// ErrCanceled matches context-cancellation errors from the *Ctx entry
	// points.
	ErrCanceled = hullerr.ErrCanceled
	// ErrDeadline matches context-deadline errors from the *Ctx entry
	// points.
	ErrDeadline = hullerr.ErrDeadline
	// ErrOverload matches admission-control shedding from the serving
	// layer; callers should back off and retry.
	ErrOverload = hullerr.ErrOverload
	// ErrApproximateOnly matches the refusal issued when exactness is
	// demanded but only the approximate degradation tier survives.
	ErrApproximateOnly = hullerr.ErrApproximateOnly
	// ErrPartialHull matches partial-coverage answers from the sharded
	// scatter-gather serving mode: the result is exact for the covered
	// shards and the error lists the missing ones.
	ErrPartialHull = hullerr.ErrPartialHull
)

// IsTyped reports whether err is (or wraps) a typed *Error — the guarantee
// checked by the E14 chaos soak: algorithms never fail with anything else.
func IsTyped(err error) bool { return hullerr.IsTyped(err) }

// Results of the parallel algorithms.
type (
	// PresortedResult is the output of PresortedHull and LogStarHull.
	PresortedResult = presorted.Result
	// Hull2DResult is the output of Hull2D.
	Hull2DResult = unsorted.Result2D
	// Hull2DOptions tunes the §4.1 constants.
	Hull2DOptions = unsorted.Options
	// Hull3DResult is the output of Hull3D.
	Hull3DResult = unsorted.Result3D
	// Hull3DOptions tunes the §4.3 constants.
	Hull3DOptions = unsorted.Options3D
)

// PresortedHull computes the upper hull of points sorted by strictly
// increasing x in O(1) measured PRAM steps with O(n log n) processors
// (§2.2, Lemma 2.5).
//
// Deprecated: use Run2D with RunConfig{Algorithm: AlgoPresorted, Direct: true}.
func PresortedHull(m *Machine, rnd *Rand, pts []Point) (PresortedResult, error) {
	r, _, err := Run2D(context.Background(), m, rnd, pts, RunConfig{Algorithm: AlgoPresorted, Direct: true})
	return *r.Presorted, err
}

// LogStarHull computes the upper hull of pre-sorted points in O(log* n)
// measured steps with O(n) processors (§2.5, Theorem 2).
//
// Deprecated: use Run2D with RunConfig{Algorithm: AlgoLogStar, Direct: true}.
func LogStarHull(m *Machine, rnd *Rand, pts []Point) (PresortedResult, error) {
	r, _, err := Run2D(context.Background(), m, rnd, pts, RunConfig{Algorithm: AlgoLogStar, Direct: true})
	return *r.Presorted, err
}

// OptimalReport is the output of AlgoOptimal runs (§2.6).
type OptimalReport = presorted.OptimalReport

// OptimalHull computes the upper hull of pre-sorted points with the §2.6
// processor budget: O(log* n) time scheduled on n/log*(n) processors via
// the Lemma 7 simulation (the paper defers the construction to its full
// version; see DESIGN.md §5).
//
// Deprecated: use Run2D with RunConfig{Algorithm: AlgoOptimal}.
func OptimalHull(m *Machine, rnd *Rand, pts []Point) (OptimalReport, error) {
	r, _, err := Run2D(context.Background(), m, rnd, pts, RunConfig{Algorithm: AlgoOptimal})
	return *r.Optimal, err
}

// Hull2D computes the upper hull of unsorted points in O(log n) measured
// steps and O(n log h) work (§4.1, Theorem 5).
//
// Deprecated: use Run2D with RunConfig{Direct: true} (or supervised with
// the zero RunConfig).
func Hull2D(m *Machine, rnd *Rand, pts []Point) (Hull2DResult, error) {
	r, _, err := Run2D(context.Background(), m, rnd, pts, RunConfig{Direct: true})
	return *r.Unsorted, err
}

// Hull2DWithOptions is Hull2D with explicit §4.1 constants.
//
// Deprecated: use Run2D with RunConfig{Options2D: opt, Direct: true}.
func Hull2DWithOptions(m *Machine, rnd *Rand, pts []Point, opt Hull2DOptions) (Hull2DResult, error) {
	r, _, err := Run2D(context.Background(), m, rnd, pts, RunConfig{Options2D: opt, Direct: true})
	return *r.Unsorted, err
}

// Hull3D computes the upper-hull cap structure of unsorted 3-d points in
// O(log² n) measured steps and O(min{n log² h, n log n}) work (§4.3,
// Theorem 6). See Hull3DResult for the output contract.
//
// Deprecated: use Run3D with RunConfig{Direct: true} (or supervised with
// the zero RunConfig).
func Hull3D(m *Machine, rnd *Rand, pts []Point3) (Hull3DResult, error) {
	r, _, err := Run3D(context.Background(), m, rnd, pts, RunConfig{Direct: true})
	return r, err
}

// Hull3DWithOptions is Hull3D with explicit §4.3 constants.
//
// Deprecated: use Run3D with RunConfig{Options3D: opt, Direct: true}.
func Hull3DWithOptions(m *Machine, rnd *Rand, pts []Point3, opt Hull3DOptions) (Hull3DResult, error) {
	r, _, err := Run3D(context.Background(), m, rnd, pts, RunConfig{Options3D: opt, Direct: true})
	return r, err
}

// Supervision layer (internal/resilient): the *Ctx entry points run the
// randomized algorithms under a supervisor combining cancellation/deadline
// propagation, reseeded retries with exponential budget escalation, and a
// deterministic sequential degradation ladder. Their contract is "a
// correct hull or a typed error, never a wrong answer": every ladder
// result is checked against the sequential oracle before it is returned.
type (
	// Policy tunes the supervisor (zero value = defaults: 3 attempts,
	// budget-escalation base 2, ladder enabled).
	Policy = resilient.Policy
	// RunReport is the supervisor's account of one run: attempts, tier,
	// cumulative PRAM cost across attempts (plus the vote schedule and
	// certified ε when the noisy or approximate tiers answered).
	RunReport = resilient.Report
	// ResultTier identifies the degradation-ladder rung that produced a
	// supervised result.
	ResultTier = resilient.Tier
	// NoisyPolicy opts the supervisor into the noisy-resilient tier with an
	// explicit flip-probability model and majority-vote schedule
	// (Policy.Noisy); see internal/geom.NoisyOracle for the primitive model.
	NoisyPolicy = resilient.NoisyPolicy
	// NoisyOracle evaluates the geometric primitives under the
	// Goodrich–Sridhar noisy-primitive model: each invocation repeats the
	// base predicate an odd number of times and takes the majority vote.
	NoisyOracle = geom.NoisyOracle
)

// VotesFor returns the smallest odd repetition count that drives a
// majority vote of primitives flipping with probability p (< 1/2) below
// failure probability delta per invocation (Hoeffding bound).
func VotesFor(p, delta float64) int { return geom.VotesFor(p, delta) }

// Degradation-ladder tiers, reported in RunReport.Tier.
const (
	// TierRandomized: the randomized parallel algorithm succeeded
	// (possibly after reseeded retries).
	TierRandomized = resilient.TierRandomized
	// TierNoisy: the noisy-resilient baseline answered — voted predicates
	// under the modeled flip probability, result checked exactly.
	TierNoisy = resilient.TierNoisy
	// TierApproximate: the certified ε-approximate tier answered; the
	// report's ApproxEps carries the a-posteriori certified bound.
	TierApproximate = resilient.TierApproximate
	// TierSequential: the deterministic sequential baseline answered.
	TierSequential = resilient.TierSequential
	// TierDegenerate: the last-resort 3-d degenerate-cap construction.
	TierDegenerate = resilient.TierDegenerate
)

// Hull2DCtx is Hull2D under the supervisor: it honors ctx cancellation and
// deadlines between PRAM steps, retries budget surrenders with fresh
// seeds, and degrades to the sequential baseline after the retry cap.
//
// Deprecated: use Run2D with RunConfig{Policy: pol}.
func Hull2DCtx(ctx context.Context, m *Machine, rnd *Rand, pts []Point, pol Policy) (Hull2DResult, RunReport, error) {
	r, rep, err := Run2D(ctx, m, rnd, pts, RunConfig{Policy: pol})
	return *r.Unsorted, rep, err
}

// Hull2DCtxOptions is Hull2DCtx with explicit §4.1 constants.
//
// Deprecated: use Run2D with RunConfig{Options2D: opt, Policy: pol}.
func Hull2DCtxOptions(ctx context.Context, m *Machine, rnd *Rand, pts []Point, opt Hull2DOptions, pol Policy) (Hull2DResult, RunReport, error) {
	r, rep, err := Run2D(ctx, m, rnd, pts, RunConfig{Options2D: opt, Policy: pol})
	return *r.Unsorted, rep, err
}

// Hull3DCtx is Hull3D under the supervisor (see Hull2DCtx).
//
// Deprecated: use Run3D with RunConfig{Policy: pol}.
func Hull3DCtx(ctx context.Context, m *Machine, rnd *Rand, pts []Point3, pol Policy) (Hull3DResult, RunReport, error) {
	return Run3D(ctx, m, rnd, pts, RunConfig{Policy: pol})
}

// Hull3DCtxOptions is Hull3DCtx with explicit §4.3 constants.
//
// Deprecated: use Run3D with RunConfig{Options3D: opt, Policy: pol}.
func Hull3DCtxOptions(ctx context.Context, m *Machine, rnd *Rand, pts []Point3, opt Hull3DOptions, pol Policy) (Hull3DResult, RunReport, error) {
	return Run3D(ctx, m, rnd, pts, RunConfig{Options3D: opt, Policy: pol})
}

// PresortedHullCtx is PresortedHull under the supervisor (see Hull2DCtx).
//
// Deprecated: use Run2D with RunConfig{Algorithm: AlgoPresorted, Policy: pol}.
func PresortedHullCtx(ctx context.Context, m *Machine, rnd *Rand, pts []Point, pol Policy) (PresortedResult, RunReport, error) {
	r, rep, err := Run2D(ctx, m, rnd, pts, RunConfig{Algorithm: AlgoPresorted, Policy: pol})
	return *r.Presorted, rep, err
}

// LogStarHullCtx is LogStarHull under the supervisor (see Hull2DCtx).
//
// Deprecated: use Run2D with RunConfig{Algorithm: AlgoLogStar, Policy: pol}.
func LogStarHullCtx(ctx context.Context, m *Machine, rnd *Rand, pts []Point, pol Policy) (PresortedResult, RunReport, error) {
	r, rep, err := Run2D(ctx, m, rnd, pts, RunConfig{Algorithm: AlgoLogStar, Policy: pol})
	return *r.Presorted, rep, err
}

// FullHullResult is the output of FullHull2DParallel.
type FullHullResult = unsorted.FullResult

// FullHull2DParallel computes the complete convex polygon by running the
// §4.1 algorithm on the points and their reflection and stitching the
// chains (the paper states its algorithms for upper hulls; this is the
// standard completion).
func FullHull2DParallel(m *Machine, rnd *Rand, pts []Point) (FullHullResult, error) {
	return unsorted.FullHull2D(m, rnd, pts)
}

// VerifyHull2D checks a Hull2D result against the sequential reference
// oracle; nil means the output satisfies the §4.1 contract.
func VerifyHull2D(pts []Point, res Hull2DResult) error {
	return unsorted.CheckAgainstReference(pts, res)
}

// Sequential baselines (see internal/hull2d and internal/hull3d).

// UpperHull is the O(n log n) monotone-chain reference.
func UpperHull(pts []Point) []Point { return hull2d.UpperHull(pts) }

// FullHull is the full convex polygon in CCW order.
func FullHull(pts []Point) []Point { return hull2d.FullHull(pts) }

// KirkpatrickSeidel is the sequential O(n log h) marriage-before-conquest
// algorithm [21] whose work bound Theorem 5 matches.
func KirkpatrickSeidel(pts []Point) []Point { return hull2d.KirkpatrickSeidel(pts) }

// ChanUpper is Chan's O(n log h) algorithm. The error is always nil for a
// correct build; it is typed Internal if the wrap fails at m = n (formerly
// a panic).
func ChanUpper(pts []Point) ([]Point, error) { return hull2d.ChanUpper(pts) }

// QuickHullUpper is the quickhull upper chain.
func QuickHullUpper(pts []Point) []Point { return hull2d.QuickHullUpper(pts) }

// Jarvis is the O(n·h) gift-wrapping full hull.
func Jarvis(pts []Point) []Point { return hull2d.Jarvis(pts) }

// Graham is the classic Graham scan full hull.
func Graham(pts []Point) []Point { return hull2d.Graham(pts) }

// Hull3DExact is the full 3-d hull structure from the randomized
// incremental baseline.
type Hull3DExact = hull3d.Hull

// Incremental3D computes the exact full 3-d hull in expected O(n log n).
func Incremental3D(rnd *Rand, pts []Point3) (Hull3DExact, error) {
	return hull3d.Incremental(rnd, pts)
}

// GiftWrap3D computes the full 3-d hull in O(n·h) (general position).
func GiftWrap3D(pts []Point3) (Hull3DExact, error) { return hull3d.GiftWrap(pts) }
