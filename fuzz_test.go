package inplacehull

import (
	"context"
	"encoding/binary"
	"errors"
	"math"
	"testing"

	"inplacehull/internal/approx"
	"inplacehull/internal/cull"
	"inplacehull/internal/hull2d"
	"inplacehull/internal/unsorted"
	"inplacehull/internal/workload"
)

// Fuzz harness: every byte string decodes to a point set, the supervised
// entry points run it, and the contract is checked mechanically — a hull
// the sequential oracle accepts or a typed error, never a panic, never an
// untyped error, never a wrong answer.
//
// Decoding uses a 4-byte-per-point int16 grid: coordinates stay exactly
// representable, so the fuzzer explores combinatorial degeneracies
// (duplicates, collinear runs, needle hulls) instead of floating-point
// extremes the input contract rejects anyway. A header bit injects a NaN
// to keep the ErrNonFinite path covered.

// decodePoints maps fuzz bytes to a 2-d point set.
func decodePoints(data []byte) []Point {
	if len(data) == 0 {
		return nil
	}
	head, body := data[0], data[1:]
	n := len(body) / 4
	if n > 512 {
		n = 512
	}
	pts := make([]Point, n)
	for i := 0; i < n; i++ {
		x := int16(binary.LittleEndian.Uint16(body[4*i:]))
		y := int16(binary.LittleEndian.Uint16(body[4*i+2:]))
		// Map a slice of the grid onto eighths so non-integer coordinates
		// (still exact in float64) occur too.
		pts[i] = Point{X: float64(x) / 8, Y: float64(y) / 8}
	}
	if head&1 != 0 && n > 0 {
		pts[n/2].Y = math.NaN()
	}
	return pts
}

// encodePoints builds a corpus entry from a point set (inverse of
// decodePoints for in-range integer-eighth coordinates).
func encodePoints(head byte, pts []Point) []byte {
	out := []byte{head}
	for _, p := range pts {
		var b [4]byte
		binary.LittleEndian.PutUint16(b[0:], uint16(int16(p.X*8)))
		binary.LittleEndian.PutUint16(b[2:], uint16(int16(p.Y*8)))
		out = append(out, b[:]...)
	}
	return out
}

// corpus2D seeds both fuzz targets with the degenerate shapes of
// degenerate_test.go.
func corpus2D(f *testing.F) {
	f.Add([]byte{})
	f.Add(encodePoints(0, nil))
	f.Add(encodePoints(0, []Point{{X: 1, Y: 2}}))
	f.Add(encodePoints(0, []Point{{X: 0, Y: 0}, {X: 1, Y: 1}}))
	f.Add(encodePoints(0, identical(64)))
	f.Add(encodePoints(0, collinear(64)))
	f.Add(encodePoints(1, []Point{{X: 0, Y: 0}, {X: 1, Y: 0}, {X: 2, Y: 0}})) // NaN header
	f.Add(encodePoints(0, []Point{{X: 5, Y: 0}, {X: 1, Y: 1}, {X: 3, Y: 2}}))
	f.Add(encodePoints(0, []Point{{X: 0, Y: 0}, {X: 1, Y: 1}, {X: 1, Y: 2}, {X: 2, Y: 0}}))
	f.Add(encodePoints(0, workload.Grid(3, 64)))
}

// FuzzHull2D: the supervised unsorted 2-d algorithm on arbitrary inputs.
func FuzzHull2D(f *testing.F) {
	corpus2D(f)
	f.Fuzz(func(t *testing.T, data []byte) {
		pts := decodePoints(data)
		res, rep, err := Hull2DCtx(context.Background(), NewMachine(), NewRand(1), pts, Policy{})
		if err != nil {
			if !IsTyped(err) {
				t.Fatalf("untyped error escaped the supervisor: %v", err)
			}
			return
		}
		if rep.Attempts < 1 {
			t.Fatalf("success with %d attempts", rep.Attempts)
		}
		if verr := unsorted.CheckAgainstReference(pts, res); verr != nil {
			t.Fatalf("oracle rejected supervised hull of %d points: %v", len(pts), verr)
		}
	})
}

// FuzzPresortedHull: raw decoded inputs must either satisfy the sorted
// contract or surrender with the typed ErrUnsorted; the sorted/deduped
// projection of the same input must always produce a verified hull.
func FuzzPresortedHull(f *testing.F) {
	corpus2D(f)
	f.Fuzz(func(t *testing.T, data []byte) {
		pts := decodePoints(data)

		res, _, err := PresortedHullCtx(context.Background(), NewMachine(), NewRand(1), pts, Policy{})
		if err != nil {
			if !IsTyped(err) {
				t.Fatalf("untyped error escaped the supervisor: %v", err)
			}
			if errors.Is(err, ErrUnsorted) && isStrictlySorted(pts) {
				t.Fatalf("in-contract input rejected as unsorted")
			}
		} else {
			if !isStrictlySorted(pts) {
				t.Fatalf("out-of-contract input accepted without ErrUnsorted")
			}
			if verr := unsorted.CheckAgainstReference(pts, unsorted.Result2D{
				Edges: res.Edges, Chain: res.Chain, EdgeOf: res.EdgeOf,
			}); verr != nil {
				t.Fatalf("oracle rejected supervised presorted hull: %v", verr)
			}
		}

		sorted := dedupeSorted(pts)
		if hasNonFinite(sorted) {
			return
		}
		res, _, err = PresortedHullCtx(context.Background(), NewMachine(), NewRand(1), sorted, Policy{})
		if err != nil {
			t.Fatalf("sorted projection of %d points failed: %v", len(sorted), err)
		}
		if verr := unsorted.CheckAgainstReference(sorted, unsorted.Result2D{
			Edges: res.Edges, Chain: res.Chain, EdgeOf: res.EdgeOf,
		}); verr != nil {
			t.Fatalf("oracle rejected hull of sorted projection: %v", verr)
		}
	})
}

// FuzzNoisyScanParity: the metamorphic anchor of the noisy-resilient
// tier on arbitrary inputs — the voted monotone scan with a flip-free
// oracle must match the exact scan bit for bit, for any vote schedule.
func FuzzNoisyScanParity(f *testing.F) {
	corpus2D(f)
	f.Fuzz(func(t *testing.T, data []byte) {
		pts := decodePoints(data)
		if hasNonFinite(pts) {
			return // the raw scans require finite inputs (validated upstream)
		}
		votes := 1
		if len(data) > 0 {
			votes = int(data[0]%5)*2 + 1 // 1..9, odd
		}
		o := &NoisyOracle{Flip: func() bool { return false }, Votes: votes}
		want := hull2d.UpperHull(pts)
		got := hull2d.UpperHullOracle(pts, o)
		if len(got) != len(want) {
			t.Fatalf("voted scan: %d vertices, exact scan %d (%d points, %d votes)",
				len(got), len(want), len(pts), votes)
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("voted scan vertex %d = %v, exact %v", i, got[i], want[i])
			}
		}
	})
}

// FuzzApproxCertificate: the approximate tier's certificate must be
// honest on arbitrary finite inputs — the re-derived certificate agrees
// and every input point (hence every exact hull vertex) lies within the
// certified ε above the returned chain.
func FuzzApproxCertificate(f *testing.F) {
	corpus2D(f)
	f.Fuzz(func(t *testing.T, data []byte) {
		pts := decodePoints(data)
		if hasNonFinite(pts) || len(pts) == 0 {
			return
		}
		eps := []float64{0.01, 0.05, 0.2}[len(data)%3]
		a, err := approx.Upper2D(pts, eps, nil)
		if err != nil {
			if !IsTyped(err) {
				t.Fatalf("untyped error from the approximate tier: %v", err)
			}
			return
		}
		if err := approx.Check2D(pts, a); err != nil {
			t.Fatalf("certificate re-check failed on %d points: %v", len(pts), err)
		}
		if !a.Met() {
			t.Fatalf("exact-oracle approximation missed its tolerance: eps=%g tol=%g", a.Eps, a.Tol)
		}
	})
}

// FuzzCullParity2D: the admission-side interior-point filter on arbitrary
// inputs — for every policy the survivors must be an in-order subsequence
// of the input, every non-finite point must survive (typed-error parity:
// validation over the culled set fails exactly when it fails over the full
// set), and on finite inputs the upper hull of the survivors must be
// bit-identical to the upper hull of the full input.
func FuzzCullParity2D(f *testing.F) {
	corpus2D(f)
	f.Fuzz(func(t *testing.T, data []byte) {
		pts := decodePoints(data)
		seed := uint64(1)
		if len(data) > 0 {
			seed = uint64(data[0])<<8 | uint64(len(data))
		}
		samePt := func(a, b Point) bool {
			return math.Float64bits(a.X) == math.Float64bits(b.X) &&
				math.Float64bits(a.Y) == math.Float64bits(b.Y)
		}
		countNonFinite := func(ps []Point) int {
			c := 0
			for _, p := range ps {
				if math.IsNaN(p.X) || math.IsInf(p.X, 0) || math.IsNaN(p.Y) || math.IsInf(p.Y, 0) {
					c++
				}
			}
			return c
		}
		finite := !hasNonFinite(pts)
		var want []Point
		if finite {
			want = hull2d.UpperHull(pts)
		}
		for _, pol := range []cull.Policy{cull.PolicyQuad, cull.PolicyOctagon, cull.PolicyCoarse} {
			culled := cull.Points2(pol, seed, pts)
			j := 0
			for _, p := range pts {
				if j < len(culled) && samePt(culled[j], p) {
					j++
				}
			}
			if j != len(culled) {
				t.Fatalf("%v: survivors are not an in-order subsequence (%d/%d matched)", pol, j, len(culled))
			}
			if !finite {
				if countNonFinite(pts) != countNonFinite(culled) {
					t.Fatalf("%v: a non-finite point was culled", pol)
				}
				continue
			}
			got := hull2d.UpperHull(culled)
			if len(got) != len(want) {
				t.Fatalf("%v: culled hull has %d vertices, full hull %d (n=%d, survivors=%d)",
					pol, len(got), len(want), len(pts), len(culled))
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("%v: culled hull vertex %d = %v, full hull %v", pol, i, got[i], want[i])
				}
			}
		}
	})
}

func isStrictlySorted(pts []Point) bool {
	for i := 1; i < len(pts); i++ {
		if !(pts[i-1].X < pts[i].X) {
			return false
		}
	}
	return true
}

func hasNonFinite(pts []Point) bool {
	for _, p := range pts {
		if math.IsNaN(p.X) || math.IsInf(p.X, 0) || math.IsNaN(p.Y) || math.IsInf(p.Y, 0) {
			return true
		}
	}
	return false
}

// dedupeSorted strictly x-sorts and keeps the topmost point per abscissa —
// the presorted input contract.
func dedupeSorted(pts []Point) []Point {
	s := workload.Sorted(pts)
	var out []Point
	for _, p := range s {
		if len(out) > 0 && out[len(out)-1].X == p.X {
			if p.Y > out[len(out)-1].Y {
				out[len(out)-1] = p
			}
			continue
		}
		out = append(out, p)
	}
	return out
}
