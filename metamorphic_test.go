package inplacehull

import (
	"context"
	"reflect"
	"sort"
	"testing"

	"inplacehull/internal/rng"
	"inplacehull/internal/unsorted"
	"inplacehull/internal/workload"
)

// Metamorphic properties of the public Run2D/Run3D API: the hull is
// invariant (or equivariant, for transforms that move the plane) under
// point shuffling, rotation, uniform scaling, and duplication of hull
// vertices. Every transformed run is additionally cross-checked against
// the sequential brute-force oracle, so a property violation distinguishes
// "the algorithm broke" from "the property was stated wrong". All
// transforms use exactly representable float operations (90° rotation,
// power-of-two scaling, permutation, duplication) so no rounding can blur
// the comparisons.

// run2dChain runs the §4.1 algorithm and returns its result after oracle
// verification.
func run2dChain(t *testing.T, seed uint64, pts []Point) Run2DResult {
	t.Helper()
	r, _, err := Run2D(context.Background(), NewMachine(), NewRand(seed), pts, RunConfig{Direct: true})
	if err != nil {
		t.Fatalf("Run2D: %v", err)
	}
	if err := VerifyHull2D(pts, *r.Unsorted); err != nil {
		t.Fatalf("oracle rejects Run2D output: %v", err)
	}
	return r
}

func TestMetamorphicRun2DShuffle(t *testing.T) {
	for _, gen := range []struct {
		name string
		pts  []Point
	}{
		{"disk", workload.Disk(3, 2500)},
		{"circle", workload.Circle(4, 800)},
		{"gauss", workload.Gaussian(5, 2500)},
	} {
		base := run2dChain(t, 11, gen.pts)
		for _, shufSeed := range []uint64{1, 2, 3} {
			shuffled := append([]Point(nil), gen.pts...)
			rng.Shuffle(rng.New(shufSeed), shuffled)
			got := run2dChain(t, 11, shuffled)
			if !reflect.DeepEqual(got.Chain, base.Chain) || !reflect.DeepEqual(got.Edges, base.Edges) {
				t.Fatalf("%s: upper hull changed under input shuffle (seed %d)", gen.name, shufSeed)
			}
		}
	}
}

func TestMetamorphicRun2DUniformScaling(t *testing.T) {
	pts := workload.Disk(6, 2500)
	base := run2dChain(t, 13, pts)
	for _, s := range []float64{2, 0.5, 4} { // powers of two: exact in floats
		scaled := make([]Point, len(pts))
		for i, p := range pts {
			scaled[i] = Point{X: s * p.X, Y: s * p.Y}
		}
		got := run2dChain(t, 13, scaled)
		want := make([]Point, len(base.Chain))
		for i, p := range base.Chain {
			want[i] = Point{X: s * p.X, Y: s * p.Y}
		}
		if !reflect.DeepEqual(got.Chain, want) {
			t.Fatalf("scale %v: upper hull is not the scaled base hull", s)
		}
	}
}

func TestMetamorphicRun2DDuplicateHullVertices(t *testing.T) {
	pts := workload.Disk(8, 2000)
	base := run2dChain(t, 17, pts)
	// Append a copy of every hull vertex (twice, for good measure): the
	// point set is unchanged, so the chain must be too.
	dup := append([]Point(nil), pts...)
	dup = append(dup, base.Chain...)
	dup = append(dup, base.Chain...)
	got := run2dChain(t, 17, dup)
	if !reflect.DeepEqual(got.Chain, base.Chain) {
		t.Fatalf("duplicating hull vertices changed the hull:\nbase %v\ngot  %v", base.Chain, got.Chain)
	}
}

// rot90 rotates a point a quarter turn counter-clockwise — exact in
// floating point.
func rot90(p Point) Point { return Point{X: -p.Y, Y: p.X} }

// polygonVertexSet returns the polygon's vertices sorted lexicographically
// (rotation moves the CCW starting vertex, so the cyclic sequences are
// compared as sets; convexity makes the set a faithful fingerprint).
func polygonVertexSet(poly []Point) []Point {
	out := append([]Point(nil), poly...)
	sort.Slice(out, func(i, j int) bool {
		if out[i].X != out[j].X {
			return out[i].X < out[j].X
		}
		return out[i].Y < out[j].Y
	})
	return out
}

func TestMetamorphicFullHullRotation(t *testing.T) {
	pts := workload.Disk(9, 2000)
	full := func(ps []Point) FullHullResult {
		t.Helper()
		r, err := FullHull2DParallel(NewMachine(), NewRand(19), ps)
		if err != nil {
			t.Fatalf("FullHull2DParallel: %v", err)
		}
		// Brute-force oracle: same vertex set as the sequential full hull.
		if want, got := polygonVertexSet(FullHull(ps)), polygonVertexSet(r.Polygon); !reflect.DeepEqual(want, got) {
			t.Fatalf("parallel full hull disagrees with sequential oracle:\noracle %v\ngot    %v", want, got)
		}
		return r
	}
	base := full(pts)
	rotated := pts
	want := base.Polygon
	for turn := 1; turn <= 3; turn++ { // 90°, 180°, 270°
		next := make([]Point, len(rotated))
		for i, p := range rotated {
			next[i] = rot90(p)
		}
		rotated = next
		w2 := make([]Point, len(want))
		for i, p := range want {
			w2[i] = rot90(p)
		}
		want = w2
		got := full(rotated)
		if !reflect.DeepEqual(polygonVertexSet(got.Polygon), polygonVertexSet(want)) {
			t.Fatalf("rotation by %d×90° is not equivariant", turn)
		}
	}
}

// rot90z rotates a 3-d point a quarter turn about the z axis, preserving
// "upper" (the z direction the §4.3 cap structure is stated for).
func rot90z(p Point3) Point3 { return Point3{X: -p.Y, Y: p.X, Z: p.Z} }

func TestMetamorphicRun3DInvariants(t *testing.T) {
	pts := workload.Ball(12, 600)
	check := func(name string, ps []Point3) {
		t.Helper()
		r, _, err := Run3D(context.Background(), NewMachine(), NewRand(23), ps, RunConfig{Direct: true})
		if err != nil {
			t.Fatalf("%s: Run3D: %v", name, err)
		}
		if err := unsorted.CheckCaps3D(ps, r); err != nil {
			t.Fatalf("%s: cap-facet contract violated: %v", name, err)
		}
	}
	check("base", pts)

	shuffled := append([]Point3(nil), pts...)
	rng.Shuffle(rng.New(2), shuffled)
	check("shuffle", shuffled)

	scaled := make([]Point3, len(pts))
	for i, p := range pts {
		scaled[i] = Point3{X: 2 * p.X, Y: 2 * p.Y, Z: 2 * p.Z}
	}
	check("scale2", scaled)

	rotated := make([]Point3, len(pts))
	for i, p := range pts {
		rotated[i] = rot90z(p)
	}
	check("rot90z", rotated)

	dup := append(append([]Point3(nil), pts...), pts[:100]...)
	check("duplicate", dup)
}
