package inplacehull

import (
	"context"
	"io"

	"inplacehull/internal/hullerr"
	"inplacehull/internal/obs"
	"inplacehull/internal/pram"
	"inplacehull/internal/presorted"
	"inplacehull/internal/resilient"
	"inplacehull/internal/unsorted"
)

// Observability layer (internal/obs), exposed through RunConfig.Observer.
type (
	// Observer consumes the machine's execution events (steps, charges,
	// phase spans, supervisor notes). Collector, Trace, Metrics-fed
	// collectors and MultiObserver compositions all satisfy it. With no
	// observer installed the machine pays one nil-check branch per event.
	Observer = obs.Observer
	// Collector attributes every unit of PRAM work to the paper-named
	// phase (span) that incurred it; the per-phase Work column always sums
	// exactly to Machine.Work (experiment E16's invariant).
	Collector = obs.Collector
	// Phase is one row of a Collector's per-phase account.
	Phase = obs.Phase
	// Trace records a Chrome trace-event timeline (chrome://tracing,
	// Perfetto); see cmd/hulldemo -trace and docs "Reading a trace".
	Trace = obs.Trace
	// Metrics aggregates finished Collectors into Prometheus
	// text-exposition format; see cmd/hullbench -metrics.
	Metrics = obs.Metrics
)

// NewCollector returns an empty phase-attribution collector.
func NewCollector() *Collector { return obs.NewCollector() }

// NewTrace returns an empty Chrome trace-event recorder.
func NewTrace() *Trace { return obs.NewTrace() }

// NewMetrics returns an empty Prometheus aggregator.
func NewMetrics() *Metrics { return obs.NewMetrics() }

// MultiObserver fans machine events out to several observers (e.g. a
// Collector for the table and a Trace for the timeline in one run).
func MultiObserver(observers ...Observer) Observer { return obs.Multi(observers...) }

// WritePhaseTable renders a Collector's per-phase account as an aligned
// text table; the final row's work column equals Machine.Work exactly.
func WritePhaseTable(w io.Writer, c *Collector) { obs.WriteTable(w, c) }

// Algo selects the hull algorithm a Run executes.
type Algo int

const (
	// AlgoHull2D (Run2D default): the §4.1 output-sensitive algorithm for
	// unsorted points — O(log n) steps, O(n log h) work (Theorem 5).
	AlgoHull2D Algo = iota
	// AlgoPresorted: the §2.2 constant-time algorithm; input must be
	// sorted by strictly increasing x.
	AlgoPresorted
	// AlgoLogStar: the §2.5 O(log* n)-step, O(n)-processor algorithm;
	// sorted input.
	AlgoLogStar
	// AlgoOptimal: the §2.6 processor-optimal schedule of the log* run;
	// sorted input. Runs direct only (there is no supervised variant —
	// the schedule is an accounting construction, not a retryable run).
	AlgoOptimal
)

// String names the algorithm the way benchmarks and metrics label it.
func (a Algo) String() string {
	switch a {
	case AlgoHull2D:
		return "hull2d"
	case AlgoPresorted:
		return "presorted"
	case AlgoLogStar:
		return "logstar"
	case AlgoOptimal:
		return "optimal"
	default:
		return "algo(?)"
	}
}

// RunConfig is the single configuration surface of the Run entry points,
// replacing the former matrix of per-algorithm × options × context
// function variants. The zero value runs the default algorithm supervised
// with default policy and no observer.
type RunConfig struct {
	// Algorithm selects what to run. Run2D accepts all Algo values
	// (default AlgoHull2D); Run3D has a single algorithm and ignores it.
	Algorithm Algo
	// Options2D tunes the §4.1 constants (AlgoHull2D only).
	Options2D Hull2DOptions
	// Options3D tunes the §4.3 constants (Run3D only).
	Options3D Hull3DOptions
	// Policy tunes the resilient supervisor (ignored when Direct).
	Policy Policy
	// Direct bypasses the supervisor: one unsupervised attempt, no
	// reseeded retries, no degradation ladder. The context still cancels
	// the machine between PRAM steps. Ignored by the native backend,
	// which has no supervisor to bypass.
	Direct bool
	// Observer, when non-nil, is installed on the machine for the
	// duration of the run (restoring the previous sink afterwards) and
	// receives every step, charge, phase span and supervisor note. Under
	// the native backend it receives wall-time spans and steps==0 item
	// charges instead of counted PRAM events.
	Observer Observer
	// Backend selects the execution engine. BackendAuto resolves to
	// BackendCounted in Run2D/Run3D — an explicit *Machine pins the
	// counted backend — and to BackendNative in RunAuto2D/RunAuto3D and
	// the serving layer. With BackendNative the machine's counters stay
	// untouched (the native path has no step barriers or work counters)
	// and Policy/Direct are ignored: native runs are deterministic and
	// need no supervisor.
	Backend Backend
}

// Run2DResult is the unified output of Run2D: the hull fields every
// algorithm shares, plus the algorithm-specific record that produced them
// (exactly one of Presorted/Unsorted/Optimal is non-nil, matching the
// configured Algorithm; Optimal runs also set Presorted's fields through
// the report's embedded result).
type Run2DResult struct {
	// Edges are the upper-hull edges in increasing x.
	Edges []Edge
	// Chain is the upper-hull vertex sequence in increasing x.
	Chain []Point
	// EdgeOf maps each input point to the index in Edges of the hull edge
	// above (or through) it; −1 where the algorithm's contract says so.
	EdgeOf []int
	// Presorted is the full §2 record (AlgoPresorted, AlgoLogStar).
	Presorted *PresortedResult
	// Unsorted is the full §4.1 record (AlgoHull2D).
	Unsorted *Hull2DResult
	// Optimal is the §2.6 scheduling report (AlgoOptimal).
	Optimal *OptimalReport
}

// direct runs fn with ctx attached to the machine and the supervisor's
// panic boundary, without retries or ladder — the Direct path of Run.
func direct[T any](ctx context.Context, m *Machine, op string, fn func() (T, error)) (out T, err error) {
	m.SetContext(ctx)
	defer m.SetContext(nil)
	defer func() {
		if r := recover(); r != nil {
			if c, ok := pram.AsCancellation(r); ok {
				err = hullerr.FromContext(op, c.Cause)
				return
			}
			panic(r)
		}
	}()
	return fn()
}

// Run2D is the unified 2-d entry point: it runs the algorithm selected by
// cfg on m, supervised by default (cancellation propagation, reseeded
// retries, sequential degradation ladder), observed when cfg.Observer is
// set. It subsumes the deprecated PresortedHull/LogStarHull/OptimalHull/
// Hull2D*/‍*Ctx* matrix:
//
//	res, rep, err := inplacehull.Run2D(ctx, m, rnd, pts, inplacehull.RunConfig{
//	    Algorithm: inplacehull.AlgoHull2D,
//	    Observer:  collector,
//	})
//
// Passing an explicit *Machine pins the counted backend by default: the
// machine is a measurement instrument, and BackendAuto resolves to
// BackendCounted here. Callers that only want the hull should prefer
// RunAuto2D, which needs no machine and runs native. An explicit
// RunConfig{Backend: BackendNative} still works on this entry point — the
// machine then only anchors the observer (wall-time spans, steps==0 item
// charges) and its counters stay untouched.
func Run2D(ctx context.Context, m *Machine, rnd *Rand, pts []Point, cfg RunConfig) (Run2DResult, RunReport, error) {
	if cfg.Observer != nil {
		prev := m.Sink()
		m.SetSink(cfg.Observer)
		defer m.SetSink(prev)
	}
	if cfg.Backend == BackendNative {
		return run2DNative(ctx, rnd, pts, cfg, m.Sink())
	}
	before := m.Snap()
	switch cfg.Algorithm {
	case AlgoPresorted:
		if cfg.Direct {
			r, err := direct(ctx, m, "Run2D/presorted", func() (PresortedResult, error) {
				return presorted.ConstantTime(m, rnd, pts)
			})
			return presortedRun(r), directReport(m, before), err
		}
		r, rep, err := resilient.PresortedHull(ctx, m, rnd, pts, cfg.Policy)
		return presortedRun(r), rep, err
	case AlgoLogStar:
		if cfg.Direct {
			r, err := direct(ctx, m, "Run2D/logstar", func() (PresortedResult, error) {
				return presorted.LogStar(m, rnd, pts)
			})
			return presortedRun(r), directReport(m, before), err
		}
		r, rep, err := resilient.LogStarHull(ctx, m, rnd, pts, cfg.Policy)
		return presortedRun(r), rep, err
	case AlgoOptimal:
		r, err := direct(ctx, m, "Run2D/optimal", func() (OptimalReport, error) {
			return presorted.Optimal(m, rnd, pts)
		})
		return Run2DResult{
			Edges: r.Result.Edges, Chain: r.Result.Chain, EdgeOf: r.Result.EdgeOf,
			Optimal: &r,
		}, directReport(m, before), err
	default: // AlgoHull2D
		if cfg.Direct {
			r, err := direct(ctx, m, "Run2D/hull2d", func() (Hull2DResult, error) {
				return unsorted.Hull2DOpts(m, rnd, pts, cfg.Options2D)
			})
			return unsortedRun(r), directReport(m, before), err
		}
		r, rep, err := resilient.Hull2DOpts(ctx, m, rnd, pts, cfg.Options2D, cfg.Policy)
		return unsortedRun(r), rep, err
	}
}

// Run3D is the unified 3-d entry point (the §4.3 algorithm; see Run2D for
// the supervision, observation and backend semantics — an explicit
// *Machine pins the counted backend unless cfg.Backend says otherwise).
// It subsumes the deprecated Hull3D/Hull3DWithOptions/Hull3DCtx/
// Hull3DCtxOptions variants. The result's cap-facet contract is
// documented on Hull3DResult.
func Run3D(ctx context.Context, m *Machine, rnd *Rand, pts []Point3, cfg RunConfig) (Hull3DResult, RunReport, error) {
	if cfg.Observer != nil {
		prev := m.Sink()
		m.SetSink(cfg.Observer)
		defer m.SetSink(prev)
	}
	if cfg.Backend == BackendNative {
		return run3DNative(ctx, rnd, pts, cfg, m.Sink())
	}
	before := m.Snap()
	if cfg.Direct {
		r, err := direct(ctx, m, "Run3D", func() (Hull3DResult, error) {
			return unsorted.Hull3DOpts(m, rnd, pts, cfg.Options3D)
		})
		return r, directReport(m, before), err
	}
	return resilient.Hull3DOpts(ctx, m, rnd, pts, cfg.Options3D, cfg.Policy)
}

// directReport synthesizes the supervisor report of a Direct run: one
// attempt at the randomized tier, costs from the machine delta.
func directReport(m *Machine, before pram.Snapshot) RunReport {
	d := m.Delta(before)
	return RunReport{Attempts: 1, Tier: TierRandomized, TotalSteps: d.Time, TotalWork: d.Work,
		ExecBackend: resilient.BackendCounted}
}

func presortedRun(r PresortedResult) Run2DResult {
	return Run2DResult{Edges: r.Edges, Chain: r.Chain, EdgeOf: r.EdgeOf, Presorted: &r}
}

func unsortedRun(r Hull2DResult) Run2DResult {
	return Run2DResult{Edges: r.Edges, Chain: r.Chain, EdgeOf: r.EdgeOf, Unsorted: &r}
}
