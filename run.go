package inplacehull

import (
	"context"
	"io"
	"sort"

	"inplacehull/internal/cull"
	"inplacehull/internal/geom"
	"inplacehull/internal/hullerr"
	"inplacehull/internal/native"
	"inplacehull/internal/obs"
	"inplacehull/internal/pram"
	"inplacehull/internal/presorted"
	"inplacehull/internal/resilient"
	"inplacehull/internal/shard"
	"inplacehull/internal/unsorted"
)

// Observability layer (internal/obs), exposed through RunConfig.Observer.
type (
	// Observer consumes the machine's execution events (steps, charges,
	// phase spans, supervisor notes). Collector, Trace, Metrics-fed
	// collectors and MultiObserver compositions all satisfy it. With no
	// observer installed the machine pays one nil-check branch per event.
	Observer = obs.Observer
	// Collector attributes every unit of PRAM work to the paper-named
	// phase (span) that incurred it; the per-phase Work column always sums
	// exactly to Machine.Work (experiment E16's invariant).
	Collector = obs.Collector
	// Phase is one row of a Collector's per-phase account.
	Phase = obs.Phase
	// Trace records a Chrome trace-event timeline (chrome://tracing,
	// Perfetto); see cmd/hulldemo -trace and docs "Reading a trace".
	Trace = obs.Trace
	// Metrics aggregates finished Collectors into Prometheus
	// text-exposition format; see cmd/hullbench -metrics.
	Metrics = obs.Metrics
)

// NewCollector returns an empty phase-attribution collector.
func NewCollector() *Collector { return obs.NewCollector() }

// NewTrace returns an empty Chrome trace-event recorder.
func NewTrace() *Trace { return obs.NewTrace() }

// NewMetrics returns an empty Prometheus aggregator.
func NewMetrics() *Metrics { return obs.NewMetrics() }

// MultiObserver fans machine events out to several observers (e.g. a
// Collector for the table and a Trace for the timeline in one run).
func MultiObserver(observers ...Observer) Observer { return obs.Multi(observers...) }

// WritePhaseTable renders a Collector's per-phase account as an aligned
// text table; the final row's work column equals Machine.Work exactly.
func WritePhaseTable(w io.Writer, c *Collector) { obs.WriteTable(w, c) }

// Algo selects the hull algorithm a Run executes.
type Algo int

const (
	// AlgoHull2D (Run2D default): the §4.1 output-sensitive algorithm for
	// unsorted points — O(log n) steps, O(n log h) work (Theorem 5).
	AlgoHull2D Algo = iota
	// AlgoPresorted: the §2.2 constant-time algorithm; input must be
	// sorted by strictly increasing x.
	AlgoPresorted
	// AlgoLogStar: the §2.5 O(log* n)-step, O(n)-processor algorithm;
	// sorted input.
	AlgoLogStar
	// AlgoOptimal: the §2.6 processor-optimal schedule of the log* run;
	// sorted input. Runs direct only (there is no supervised variant —
	// the schedule is an accounting construction, not a retryable run).
	AlgoOptimal
)

// String names the algorithm the way benchmarks and metrics label it.
func (a Algo) String() string {
	switch a {
	case AlgoHull2D:
		return "hull2d"
	case AlgoPresorted:
		return "presorted"
	case AlgoLogStar:
		return "logstar"
	case AlgoOptimal:
		return "optimal"
	default:
		return "algo(?)"
	}
}

// CullPolicy selects the admission-side interior-point filter of
// RunConfig.Cull (see internal/cull): a cheap pre-pass that discards
// points certainly strictly inside the hull before the backend runs.
type CullPolicy = cull.Policy

const (
	// CullAuto defers to the entry point's default — at the library
	// level, off (the serving layer resolves its own auto to octagon).
	CullAuto = cull.PolicyAuto
	// CullOff disables the filter explicitly.
	CullOff = cull.PolicyOff
	// CullQuad filters against the quadrilateral of the 4 axis extremes.
	CullQuad = cull.PolicyQuad
	// CullOctagon filters against the octagon of the 8 directional
	// extremes — the serving layer's default.
	CullOctagon = cull.PolicyOctagon
	// CullCoarse filters against an exact hull of a seeded ~√n sample.
	CullCoarse = cull.PolicyCoarse
)

// RunConfig is the single configuration surface of the Run entry points,
// replacing the former matrix of per-algorithm × options × context
// function variants. The zero value runs the default algorithm supervised
// with default policy and no observer.
type RunConfig struct {
	// Algorithm selects what to run. Run2D accepts all Algo values
	// (default AlgoHull2D); Run3D has a single algorithm and ignores it.
	Algorithm Algo
	// Options2D tunes the §4.1 constants (AlgoHull2D only).
	Options2D Hull2DOptions
	// Options3D tunes the §4.3 constants (Run3D only).
	Options3D Hull3DOptions
	// Policy tunes the resilient supervisor (ignored when Direct).
	Policy Policy
	// Direct bypasses the supervisor: one unsupervised attempt, no
	// reseeded retries, no degradation ladder. The context still cancels
	// the machine between PRAM steps. Ignored by the native backend,
	// which has no supervisor to bypass.
	Direct bool
	// Observer, when non-nil, is installed on the machine for the
	// duration of the run (restoring the previous sink afterwards) and
	// receives every step, charge, phase span and supervisor note. Under
	// the native backend it receives wall-time spans and steps==0 item
	// charges instead of counted PRAM events.
	Observer Observer
	// Backend selects the execution engine. BackendAuto resolves to
	// BackendCounted in Run2D/Run3D — an explicit *Machine pins the
	// counted backend — and to BackendNative in RunAuto2D/RunAuto3D and
	// the serving layer. With BackendNative the machine's counters stay
	// untouched (the native path has no step barriers or work counters)
	// and Policy/Direct are ignored: native runs are deterministic and
	// need no supervisor.
	Backend Backend
	// Cull applies the admission-side interior-point filter to AlgoHull2D
	// inputs before the backend runs. Unlike the serving layer — which
	// resolves its zero value to the octagon filter — the zero value here
	// (CullAuto) leaves culling OFF: the library computes over exactly
	// the points given unless a caller opts in. Culling never changes
	// the answer — the filter discards only points certainly strictly
	// interior (conv(survivors) == conv(pts) exactly, the internal/cull
	// invariant), EdgeOf is rebuilt over the full input with the
	// left-incident covering rule, and counted exact-tier chains are
	// canonicalized; the root cull parity test pins the culled and
	// unculled outputs bit-identical. Sorted-input algorithms
	// (AlgoPresorted, AlgoLogStar, AlgoOptimal) skip the filter so an
	// unsorted input still fails typed, never gets accidentally sorted.
	Cull CullPolicy
}

// Run2DResult is the unified output of Run2D: the hull fields every
// algorithm shares, plus the algorithm-specific record that produced them
// (exactly one of Presorted/Unsorted/Optimal is non-nil, matching the
// configured Algorithm; Optimal runs also set Presorted's fields through
// the report's embedded result).
type Run2DResult struct {
	// Edges are the upper-hull edges in increasing x.
	Edges []Edge
	// Chain is the upper-hull vertex sequence in increasing x.
	Chain []Point
	// EdgeOf maps each input point to the index in Edges of the hull edge
	// above (or through) it; −1 where the algorithm's contract says so.
	EdgeOf []int
	// Presorted is the full §2 record (AlgoPresorted, AlgoLogStar).
	Presorted *PresortedResult
	// Unsorted is the full §4.1 record (AlgoHull2D).
	Unsorted *Hull2DResult
	// Optimal is the §2.6 scheduling report (AlgoOptimal).
	Optimal *OptimalReport
}

// direct runs fn with ctx attached to the machine and the supervisor's
// panic boundary, without retries or ladder — the Direct path of Run.
func direct[T any](ctx context.Context, m *Machine, op string, fn func() (T, error)) (out T, err error) {
	m.SetContext(ctx)
	defer m.SetContext(nil)
	defer func() {
		if r := recover(); r != nil {
			if c, ok := pram.AsCancellation(r); ok {
				err = hullerr.FromContext(op, c.Cause)
				return
			}
			panic(r)
		}
	}()
	return fn()
}

// Run2D is the unified 2-d entry point: it runs the algorithm selected by
// cfg on m, supervised by default (cancellation propagation, reseeded
// retries, sequential degradation ladder), observed when cfg.Observer is
// set. It subsumes the deprecated PresortedHull/LogStarHull/OptimalHull/
// Hull2D*/‍*Ctx* matrix:
//
//	res, rep, err := inplacehull.Run2D(ctx, m, rnd, pts, inplacehull.RunConfig{
//	    Algorithm: inplacehull.AlgoHull2D,
//	    Observer:  collector,
//	})
//
// Passing an explicit *Machine pins the counted backend by default: the
// machine is a measurement instrument, and BackendAuto resolves to
// BackendCounted here. Callers that only want the hull should prefer
// RunAuto2D, which needs no machine and runs native. An explicit
// RunConfig{Backend: BackendNative} still works on this entry point — the
// machine then only anchors the observer (wall-time spans, steps==0 item
// charges) and its counters stay untouched.
func Run2D(ctx context.Context, m *Machine, rnd *Rand, pts []Point, cfg RunConfig) (Run2DResult, RunReport, error) {
	if cfg.Observer != nil {
		prev := m.Sink()
		m.SetSink(cfg.Observer)
		defer m.SetSink(prev)
	}
	if cfg.Backend == BackendNative {
		return run2DNative(ctx, rnd, pts, cfg, m.Sink())
	}
	before := m.Snap()
	switch cfg.Algorithm {
	case AlgoPresorted:
		if cfg.Direct {
			r, err := direct(ctx, m, "Run2D/presorted", func() (PresortedResult, error) {
				return presorted.ConstantTime(m, rnd, pts)
			})
			return presortedRun(r), directReport(m, before), err
		}
		r, rep, err := resilient.PresortedHull(ctx, m, rnd, pts, cfg.Policy)
		return presortedRun(r), rep, err
	case AlgoLogStar:
		if cfg.Direct {
			r, err := direct(ctx, m, "Run2D/logstar", func() (PresortedResult, error) {
				return presorted.LogStar(m, rnd, pts)
			})
			return presortedRun(r), directReport(m, before), err
		}
		r, rep, err := resilient.LogStarHull(ctx, m, rnd, pts, cfg.Policy)
		return presortedRun(r), rep, err
	case AlgoOptimal:
		r, err := direct(ctx, m, "Run2D/optimal", func() (OptimalReport, error) {
			return presorted.Optimal(m, rnd, pts)
		})
		return Run2DResult{
			Edges: r.Result.Edges, Chain: r.Result.Chain, EdgeOf: r.Result.EdgeOf,
			Optimal: &r,
		}, directReport(m, before), err
	default: // AlgoHull2D
		work, full := applyRootCull(cfg, rnd, pts)
		if cfg.Direct {
			r, err := direct(ctx, m, "Run2D/hull2d", func() (Hull2DResult, error) {
				return unsorted.Hull2DOpts(m, rnd, work, cfg.Options2D)
			})
			rep := directReport(m, before)
			if err != nil {
				return unsortedRun(r), rep, err
			}
			return liftRootCull(unsortedRun(r), rep, full), rep, nil
		}
		r, rep, err := resilient.Hull2DOpts(ctx, m, rnd, work, cfg.Options2D, cfg.Policy)
		if err != nil {
			return unsortedRun(r), rep, err
		}
		return liftRootCull(unsortedRun(r), rep, full), rep, nil
	}
}

// Run3D is the unified 3-d entry point (the §4.3 algorithm; see Run2D for
// the supervision, observation and backend semantics — an explicit
// *Machine pins the counted backend unless cfg.Backend says otherwise).
// It subsumes the deprecated Hull3D/Hull3DWithOptions/Hull3DCtx/
// Hull3DCtxOptions variants. The result's cap-facet contract is
// documented on Hull3DResult.
func Run3D(ctx context.Context, m *Machine, rnd *Rand, pts []Point3, cfg RunConfig) (Hull3DResult, RunReport, error) {
	if cfg.Observer != nil {
		prev := m.Sink()
		m.SetSink(cfg.Observer)
		defer m.SetSink(prev)
	}
	if cfg.Backend == BackendNative {
		return run3DNative(ctx, rnd, pts, cfg, m.Sink())
	}
	before := m.Snap()
	if cfg.Direct {
		r, err := direct(ctx, m, "Run3D", func() (Hull3DResult, error) {
			return unsorted.Hull3DOpts(m, rnd, pts, cfg.Options3D)
		})
		return r, directReport(m, before), err
	}
	return resilient.Hull3DOpts(ctx, m, rnd, pts, cfg.Options3D, cfg.Policy)
}

// cullSplit derives the coarse filter's sampling seed from the caller's
// Rand without disturbing the values the hull run draws — a Split off
// the main stream, the nativeSeed pattern.
const cullSplit = 0xC011

func cullSeed(rnd *Rand) uint64 {
	if rnd == nil {
		return 0
	}
	return rnd.Split(cullSplit).Uint64()
}

// applyRootCull runs the RunConfig.Cull admission filter for an
// AlgoHull2D run: it returns the working point set and, when anything
// was discarded, the original input (nil otherwise — the run then
// behaves bit-identically to an unculled one). Non-finite points are
// never culled, so a bad input still fails typed downstream.
func applyRootCull(cfg RunConfig, rnd *Rand, pts []Point) (work, full []Point) {
	if cfg.Algorithm != AlgoHull2D || cfg.Cull == CullAuto || cfg.Cull == CullOff {
		return pts, nil
	}
	survivors := cull.Points2(cfg.Cull, cullSeed(rnd), pts)
	if len(survivors) == len(pts) {
		return pts, nil
	}
	return survivors, pts
}

// liftRootCull maps a culled run's answer back onto the full input:
// counted exact-tier chains are canonicalized (the §4.1 counted path may
// subdivide collinear hull edges, and which subdivisions appear depends
// on the input subset), EdgeOf re-covers every submitted point with the
// left-incident rule, and the algorithm record mirrors the lifted
// fields. Approximate-tier chains pass through: their certified ε
// transfers to the full set — every discarded point lies strictly below
// the true upper hull, whose vertices are survivors the certificate
// measured.
func liftRootCull(res Run2DResult, rep RunReport, full []Point) Run2DResult {
	if full == nil {
		return res
	}
	if rep.Backend() == BackendCounted && rep.Tier != TierApproximate {
		sorted := append([]Point(nil), full...)
		sort.Slice(sorted, func(i, j int) bool { return geom.LexLess(sorted[i], sorted[j]) })
		res.Chain = shard.Canonical(sorted, res.Chain)
		res.Edges = nil
		for i := 1; i < len(res.Chain); i++ {
			res.Edges = append(res.Edges, Edge{U: res.Chain[i-1], W: res.Chain[i]})
		}
	}
	res.EdgeOf = native.Locate(full, res.Edges)
	if res.Unsorted != nil {
		u := *res.Unsorted
		u.Chain, u.Edges, u.EdgeOf = res.Chain, res.Edges, res.EdgeOf
		res.Unsorted = &u
	}
	return res
}

// directReport synthesizes the supervisor report of a Direct run: one
// attempt at the randomized tier, costs from the machine delta.
func directReport(m *Machine, before pram.Snapshot) RunReport {
	d := m.Delta(before)
	return RunReport{Attempts: 1, Tier: TierRandomized, TotalSteps: d.Time, TotalWork: d.Work,
		ExecBackend: resilient.BackendCounted}
}

func presortedRun(r PresortedResult) Run2DResult {
	return Run2DResult{Edges: r.Edges, Chain: r.Chain, EdgeOf: r.EdgeOf, Presorted: &r}
}

func unsortedRun(r Hull2DResult) Run2DResult {
	return Run2DResult{Edges: r.Edges, Chain: r.Chain, EdgeOf: r.EdgeOf, Unsorted: &r}
}
