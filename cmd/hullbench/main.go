// Command hullbench runs the experiments of DESIGN.md §6 and prints their
// tables — the reproduction's equivalent of regenerating the paper's
// evaluation figures. The registry spans E1–E21: the theorem-by-theorem
// measurements, the E14 chaos soak (with the E14c supervised-recovery
// re-run), the E15 resilience-overhead sweep, the E16 observability
// certification (exact phase attribution, Lemma 4.2 round bounds,
// disabled-path overhead), the E17 engine benchmarks (persistent
// worker-pool dispatch vs the frozen spawn-per-step baseline), the
// E18 serving-layer load test (batched fleet vs one-machine-per-request,
// cache-hit pricing), the E19 noisy-primitive soak (predicate-flip
// ladder), the E20 scatter-gather chaos soak (network-fault mixes
// against the distributed never-silently-wrong contract), and the E21
// execution-backend comparison (native vs counted serving throughput on
// cache-miss queries).
//
// Usage:
//
//	hullbench                 # run every experiment at full scale
//	hullbench -exp E3         # one experiment
//	hullbench -quick          # smaller sweeps (seconds instead of minutes)
//	hullbench -seed 7         # change the master seed
//	hullbench -list           # list experiments and claims
//	hullbench -exp E16 -metrics :9090   # per-phase table + Prometheus endpoint
//	hullbench -exp E17 -pramjson BENCH_pram.json   # regenerate the engine report
//	hullbench -quick -exp E17 -prambase BENCH_pram.json   # CI regression gate
//	hullbench -serve -servejson BENCH_serve.json   # serving-layer load test (E18)
//	hullbench -quick -serve -servebase BENCH_serve.json   # serving CI gate
//	hullbench -exp E21 -servejson BENCH_serve.json   # merge backend rows into the report
//	hullbench -quick -exp E21 -servebase BENCH_serve.json   # backend CI gate
//	hullbench -exp E22 -servejson BENCH_serve.json   # merge admission-culling rows
//	hullbench -quick -exp E22 -servebase BENCH_serve.json   # culling CI gate
package main

import (
	"flag"
	"fmt"
	"net/http"
	"os"

	"inplacehull/internal/bench"
	"inplacehull/internal/obs"
)

func main() {
	var (
		exp       = flag.String("exp", "", "experiment id to run (e.g. E3); empty = all")
		quick     = flag.Bool("quick", false, "shrink the sweeps")
		seed      = flag.Uint64("seed", 1, "master random seed")
		list      = flag.Bool("list", false, "list experiments and exit")
		csv       = flag.Bool("csv", false, "emit CSV instead of aligned tables")
		metrics   = flag.String("metrics", "", "after the runs, print the per-phase table and serve Prometheus metrics at this address (e.g. :9090) until interrupted")
		pramjson  = flag.String("pramjson", "", "write E17's machine-readable engine report (BENCH_pram.json schema) to this path")
		prambase  = flag.String("prambase", "", "gate E17 against this committed BENCH_pram.json; exit 1 on >10% regression")
		serveLoad = flag.Bool("serve", false, "run the serving-layer load test (shorthand for -exp E18)")
		servejson = flag.String("servejson", "", "write the machine-readable serving report (BENCH_serve.json schema) to this path; E18, E21 and E22 each merge their own section")
		servebase = flag.String("servebase", "", "gate E18/E21/E22 against this committed BENCH_serve.json (and the absolute acceptance contracts); exit 1 on failure")
	)
	flag.Parse()

	if *list {
		for _, e := range bench.All() {
			fmt.Printf("%-4s %s\n", e.ID, e.Claim)
		}
		return
	}

	if *serveLoad && *exp == "" {
		*exp = "E18"
	}

	var gateFails []string
	cfg := bench.Config{
		Seed: *seed, Quick: *quick,
		PramJSON: *pramjson, PramBaseline: *prambase,
		ServeJSON: *servejson, ServeBaseline: *servebase,
		Gate: func(msg string) { gateFails = append(gateFails, msg) },
	}
	if *metrics != "" {
		cfg.Metrics = obs.NewMetrics()
	}
	run := func(e bench.Experiment) {
		fmt.Printf("\n#### %s — %s\n", e.ID, e.Claim)
		for _, t := range e.Run(cfg) {
			if *csv {
				t.CSV(os.Stdout)
			} else {
				t.Fprint(os.Stdout)
			}
		}
	}
	if *exp != "" {
		e, ok := bench.Get(*exp)
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown experiment %q; use -list\n", *exp)
			os.Exit(2)
		}
		run(e)
	} else {
		for _, e := range bench.All() {
			run(e)
		}
	}

	if len(gateFails) > 0 {
		fmt.Fprintf(os.Stderr, "\nbenchmark gate: %d failure(s):\n", len(gateFails))
		for _, f := range gateFails {
			fmt.Fprintf(os.Stderr, "  - %s\n", f)
		}
		os.Exit(1)
	}

	if cfg.Metrics != nil {
		fmt.Println("\n== per-phase aggregate (observed runs) ==")
		cfg.Metrics.WriteTable(os.Stdout)
		fmt.Printf("\nserving Prometheus metrics at %s/metrics (ctrl-c to stop)\n", *metrics)
		http.Handle("/metrics", cfg.Metrics)
		if err := http.ListenAndServe(*metrics, nil); err != nil {
			fmt.Fprintf(os.Stderr, "metrics server: %v\n", err)
			os.Exit(1)
		}
	}
}
