// Command hullbench runs the experiments of DESIGN.md §6 and prints their
// tables — the reproduction's equivalent of regenerating the paper's
// evaluation figures. The registry spans E1–E15: the theorem-by-theorem
// measurements, the E14 chaos soak (with the E14c supervised-recovery
// re-run), and the E15 resilience-overhead sweep.
//
// Usage:
//
//	hullbench                 # run every experiment at full scale
//	hullbench -exp E3         # one experiment
//	hullbench -quick          # smaller sweeps (seconds instead of minutes)
//	hullbench -seed 7         # change the master seed
//	hullbench -list           # list experiments and claims
package main

import (
	"flag"
	"fmt"
	"os"

	"inplacehull/internal/bench"
)

func main() {
	var (
		exp   = flag.String("exp", "", "experiment id to run (e.g. E3); empty = all")
		quick = flag.Bool("quick", false, "shrink the sweeps")
		seed  = flag.Uint64("seed", 1, "master random seed")
		list  = flag.Bool("list", false, "list experiments and exit")
		csv   = flag.Bool("csv", false, "emit CSV instead of aligned tables")
	)
	flag.Parse()

	if *list {
		for _, e := range bench.All() {
			fmt.Printf("%-4s %s\n", e.ID, e.Claim)
		}
		return
	}

	cfg := bench.Config{Seed: *seed, Quick: *quick}
	run := func(e bench.Experiment) {
		fmt.Printf("\n#### %s — %s\n", e.ID, e.Claim)
		for _, t := range e.Run(cfg) {
			if *csv {
				t.CSV(os.Stdout)
			} else {
				t.Fprint(os.Stdout)
			}
		}
	}
	if *exp != "" {
		e, ok := bench.Get(*exp)
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown experiment %q; use -list\n", *exp)
			os.Exit(2)
		}
		run(e)
		return
	}
	for _, e := range bench.All() {
		run(e)
	}
}
