// Command hulldemo generates (or reads) a point set, runs a chosen hull
// algorithm, and prints the hull plus the PRAM cost counters.
//
// Usage:
//
//	hulldemo -algo hull2d -gen disk -n 10000
//	hulldemo -algo presorted -gen circle -n 4096
//	hulldemo -algo logstar -gen gauss -n 65536
//	hulldemo -algo hull3d -gen3 ball -n 2048
//	hulldemo -algo ks -gen disk -n 100000                # sequential baseline
//	hulldemo -algo hull2d -n 100000 -timeout 2s          # supervised, with deadline
//	hulldemo -algo hull3d -retries 5                     # supervised, 5 extra attempts
//	hulldemo -algo hull2d -trace out.json                # Chrome trace-event timeline
//	hulldemo -algo hull2d -flip-prob 0.1                 # noisy predicates, voted recovery
//	hulldemo -algo hull2d -flip-prob 0.3 -approx-eps .01 # approximate degradation tier armed
//	printf '0 0\n1 2\n2 1\n' | hulldemo -algo hull2d -stdin
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"os"
	"time"

	"inplacehull"
	"inplacehull/internal/fault"
	"inplacehull/internal/rng"
	"inplacehull/internal/viz"
	"inplacehull/internal/workload"
)

// supCfg carries the supervision and observability flags. Setting either
// -timeout or -retries routes the parallel algorithms through the
// resilient layer: the run honors the deadline, reseeds and retries typed
// failures, and degrades to the sequential baseline after the retry cap.
// -trace records the run as a Chrome trace-event timeline.
type supCfg struct {
	timeout   time.Duration
	retries   int
	flipProb  float64
	approxEps float64
	tracePath string
	trace     *inplacehull.Trace
}

func (s supCfg) enabled() bool {
	return s.timeout > 0 || s.retries > 0 || s.flipProb > 0 || s.approxEps > 0
}

// stream builds the run's random stream; with -flip-prob set it carries a
// predicate-flip fault plan, which the supervisor both injects from and
// reads back as the noise model for its voted noisy-resilient tier.
func (s supCfg) stream(seed uint64) *inplacehull.Rand {
	if s.flipProb <= 0 {
		return inplacehull.NewRand(seed)
	}
	var plan fault.Plan
	plan.Seed = seed
	plan.Rates[fault.PredicateFlip] = s.flipProb
	return fault.Attach(rng.New(seed), fault.NewInjector(plan))
}

// config assembles the RunConfig shared by the 2-d and 3-d paths.
func (s *supCfg) config() inplacehull.RunConfig {
	cfg := inplacehull.RunConfig{Direct: !s.enabled(), Policy: s.policy()}
	if s.tracePath != "" {
		s.trace = inplacehull.NewTrace()
		cfg.Observer = s.trace
	}
	return cfg
}

// flush writes the recorded trace, if one was requested.
func (s *supCfg) flush() {
	if s.trace == nil {
		return
	}
	f, err := os.Create(s.tracePath)
	if err != nil {
		fatalf("writing trace: %v", err)
	}
	if _, err := s.trace.WriteTo(f); err != nil {
		fatalf("writing trace: %v", err)
	}
	if err := f.Close(); err != nil {
		fatalf("writing trace: %v", err)
	}
	fmt.Printf("trace written  %s (%d events; open in chrome://tracing or ui.perfetto.dev)\n",
		s.tracePath, s.trace.Len())
}

// ctx returns the run context and its cancel func.
func (s supCfg) ctx() (context.Context, context.CancelFunc) {
	if s.timeout > 0 {
		return context.WithTimeout(context.Background(), s.timeout)
	}
	return context.Background(), func() {}
}

// policy maps -retries onto the supervisor policy, echoing retries on
// stderr so a degraded run explains itself.
func (s supCfg) policy() inplacehull.Policy {
	pol := inplacehull.Policy{OnRetry: func(attempt int, err error) {
		fmt.Fprintf(os.Stderr, "attempt %d failed (%v); reseeding and retrying\n", attempt, err)
	}}
	if s.retries > 0 {
		pol.MaxAttempts = s.retries + 1
	}
	pol.ApproxEps = s.approxEps
	return pol
}

func printReport(rep inplacehull.RunReport) {
	fmt.Printf("attempts       %d\n", rep.Attempts)
	fmt.Printf("result tier    %s\n", rep.Tier)
	if rep.Tier == inplacehull.TierNoisy && rep.Votes > 0 {
		fmt.Printf("vote schedule  %d per predicate\n", rep.Votes)
	}
	if rep.Tier == inplacehull.TierApproximate {
		fmt.Printf("certified eps  %g\n", rep.ApproxEps)
	}
}

func main() {
	var (
		algo    = flag.String("algo", "hull2d", "hull2d | presorted | logstar | hull3d | ks | chan | quickhull | monotone | incremental3d | giftwrap3d")
		gen     = flag.String("gen", "disk", "2-d generator: circle disk gauss poly16 poly64 onion64 collinear grid")
		gen3    = flag.String("gen3", "ball", "3-d generator: ball sphere cap ballfew64 moment")
		n       = flag.Int("n", 10000, "number of points")
		seed    = flag.Uint64("seed", 1, "random seed")
		stdin   = flag.Bool("stdin", false, "read 2-d points (x y per line) from stdin")
		show    = flag.Int("show", 8, "hull vertices to print (0 = all)")
		svg     = flag.String("svg", "", "write an SVG rendering of points + hull to this file (2-d only)")
		timeout = flag.Duration("timeout", 0, "supervised run deadline (0 = none; implies the resilient layer)")
		retries = flag.Int("retries", 0, "extra randomized attempts before degrading to the sequential baseline (implies the resilient layer)")
		tracef  = flag.String("trace", "", "write a Chrome trace-event JSON timeline of the run to this file")
		flipP   = flag.Float64("flip-prob", 0, "inject predicate flips at this probability; the supervisor recovers via the voted noisy tier (implies the resilient layer)")
		apxEps  = flag.Float64("approx-eps", 0, "arm the certified approximate degradation tier at this tolerance, relative to the bbox diagonal (implies the resilient layer)")
	)
	flag.Parse()
	sup := supCfg{timeout: *timeout, retries: *retries, flipProb: *flipP, approxEps: *apxEps, tracePath: *tracef}

	switch *algo {
	case "hull3d", "incremental3d", "giftwrap3d":
		pts := gen3D(*gen3, *seed, *n)
		run3D(*algo, *seed, pts, *show, &sup)
	default:
		var pts []inplacehull.Point
		if *stdin {
			pts = readPoints(os.Stdin)
		} else {
			pts = gen2D(*gen, *seed, *n)
		}
		chain := run2D(*algo, *seed, pts, *show, &sup)
		if *svg != "" {
			doc := viz.SVG2D(pts, chain, false)
			if err := os.WriteFile(*svg, []byte(doc), 0o644); err != nil {
				fatalf("writing svg: %v", err)
			}
			fmt.Printf("svg written   %s\n", *svg)
		}
	}
}

func gen2D(name string, seed uint64, n int) []inplacehull.Point {
	gens := map[string]func(uint64, int) []inplacehull.Point{
		"circle": workload.Circle, "disk": workload.Disk, "gauss": workload.Gaussian,
		"poly16": workload.PolygonFew(16), "poly64": workload.PolygonFew(64),
		"onion64": workload.Onion(64), "collinear": workload.Collinear, "grid": workload.Grid,
	}
	g, ok := gens[name]
	if !ok {
		fatalf("unknown 2-d generator %q", name)
	}
	return g(seed, n)
}

func gen3D(name string, seed uint64, n int) []inplacehull.Point3 {
	gens := map[string]func(uint64, int) []inplacehull.Point3{
		"ball": workload.Ball, "sphere": workload.Sphere, "cap": workload.Cap,
		"ballfew64": workload.BallFew(64), "moment": workload.MomentCurve,
	}
	g, ok := gens[name]
	if !ok {
		fatalf("unknown 3-d generator %q", name)
	}
	return g(seed, n)
}

func run2D(algo string, seed uint64, pts []inplacehull.Point, show int, sup *supCfg) []inplacehull.Point {
	start := time.Now()
	switch algo {
	case "hull2d", "presorted", "logstar":
		algos := map[string]inplacehull.Algo{
			"hull2d": inplacehull.AlgoHull2D, "presorted": inplacehull.AlgoPresorted, "logstar": inplacehull.AlgoLogStar,
		}
		cfg := sup.config()
		cfg.Algorithm = algos[algo]
		input := pts
		if cfg.Algorithm != inplacehull.AlgoHull2D {
			input = dedupeSorted(pts)
		}
		ctx, cancel := sup.ctx()
		defer cancel()
		m := inplacehull.NewMachine()
		res, rep, err := inplacehull.Run2D(ctx, m, sup.stream(seed), input, cfg)
		if err != nil {
			fatalf("%v", err)
		}
		chain := res.Chain
		fmt.Printf("algorithm      %s\n", algo)
		fmt.Printf("points         %d\n", len(pts))
		fmt.Printf("hull vertices  %d\n", len(chain))
		fmt.Printf("PRAM steps     %d\n", m.Time())
		fmt.Printf("PRAM work      %d\n", m.Work())
		fmt.Printf("peak procs     %d\n", m.PeakProcessors())
		fmt.Printf("wall time      %v\n", time.Since(start).Round(time.Microsecond))
		if sup.enabled() {
			printReport(rep)
		}
		sup.flush()
		printChain(chain, show)
		return chain
	case "ks", "chan", "quickhull", "monotone":
		algos := map[string]func([]inplacehull.Point) []inplacehull.Point{
			"ks":        inplacehull.KirkpatrickSeidel,
			"quickhull": inplacehull.QuickHullUpper, "monotone": inplacehull.UpperHull,
		}
		var chain []inplacehull.Point
		if algo == "chan" {
			var err error
			chain, err = inplacehull.ChanUpper(pts)
			if err != nil {
				fatalf("%v", err)
			}
		} else {
			chain = algos[algo](pts)
		}
		fmt.Printf("algorithm      %s (sequential)\n", algo)
		fmt.Printf("points         %d\n", len(pts))
		fmt.Printf("hull vertices  %d\n", len(chain))
		fmt.Printf("wall time      %v\n", time.Since(start).Round(time.Microsecond))
		printChain(chain, show)
		return chain
	default:
		fatalf("unknown algorithm %q", algo)
	}
	return nil
}

func run3D(algo string, seed uint64, pts []inplacehull.Point3, show int, sup *supCfg) {
	start := time.Now()
	switch algo {
	case "hull3d":
		m := inplacehull.NewMachine()
		ctx, cancel := sup.ctx()
		defer cancel()
		res, rep, err := inplacehull.Run3D(ctx, m, sup.stream(seed), pts, sup.config())
		if err != nil {
			fatalf("%v", err)
		}
		fmt.Printf("algorithm      hull3d\n")
		fmt.Printf("points         %d\n", len(pts))
		fmt.Printf("cap facets     %d\n", len(res.Facets))
		fmt.Printf("PRAM steps     %d\n", m.Time())
		fmt.Printf("PRAM work      %d\n", m.Work())
		fmt.Printf("3d levels      %d (total depth %d)\n", res.Stats.Levels, res.Stats.TotalDepth)
		fmt.Printf("wall time      %v\n", time.Since(start).Round(time.Microsecond))
		if sup.enabled() {
			printReport(rep)
		}
		sup.flush()
	case "incremental3d", "giftwrap3d":
		var h inplacehull.Hull3DExact
		var err error
		if algo == "incremental3d" {
			h, err = inplacehull.Incremental3D(inplacehull.NewRand(seed), pts)
		} else {
			h, err = inplacehull.GiftWrap3D(pts)
		}
		if err != nil {
			fatalf("%v", err)
		}
		fmt.Printf("algorithm      %s (sequential)\n", algo)
		fmt.Printf("points         %d\n", len(pts))
		fmt.Printf("hull vertices  %d\n", len(h.Vertices()))
		fmt.Printf("hull faces     %d\n", len(h.Faces))
		fmt.Printf("wall time      %v\n", time.Since(start).Round(time.Microsecond))
	}
}

func printChain(chain []inplacehull.Point, show int) {
	if show == 0 || show >= len(chain) {
		for _, p := range chain {
			fmt.Printf("  %g %g\n", p.X, p.Y)
		}
		return
	}
	for _, p := range chain[:show] {
		fmt.Printf("  %g %g\n", p.X, p.Y)
	}
	fmt.Printf("  … (%d more)\n", len(chain)-show)
}

func dedupeSorted(pts []inplacehull.Point) []inplacehull.Point {
	s := workload.Sorted(pts)
	out := s[:0]
	for i, p := range s {
		if i > 0 && p.X == out[len(out)-1].X {
			if p.Y > out[len(out)-1].Y {
				out[len(out)-1] = p
			}
			continue
		}
		out = append(out, p)
	}
	return out
}

func readPoints(f *os.File) []inplacehull.Point {
	var pts []inplacehull.Point
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		var x, y float64
		if _, err := fmt.Sscan(sc.Text(), &x, &y); err == nil {
			pts = append(pts, inplacehull.Point{X: x, Y: y})
		}
	}
	return pts
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, format+"\n", args...)
	os.Exit(1)
}
