// Command hullserve exposes the internal/serve hull-query service over
// HTTP: batched multi-tenant queries against a bounded fleet of pooled
// PRAM machines, with admission control, a content-addressed result
// cache, Prometheus counters, and — with -peers/-shards — a failure-aware
// scatter-gather mode that splits 2-d queries across shard workers
// (in-process fleets and remote hullserve peers) and merges the partial
// hulls by common tangents.
//
// Usage:
//
//	hullserve -addr :8080
//	hullserve -addr :8080 -fleet 4 -batch 32 -cache 1024
//	hullserve -addr :8080 -backend counted   # serve on the simulated PRAM
//	hullserve -addr :8080 -datasets disk:65536,circle:16384,ball:8192
//	hullserve -addr :8080 -peers http://hull-1:8080,http://hull-2:8080
//	hullserve -addr :8080 -shards 4          # local-only scatter workers
//
// Endpoints:
//
//	POST /v1/hull2d    {"points": [[x,y],...]} or {"dataset": "disk-65536"}; add "shards": k to scatter
//	POST /v1/hull3d    {"points": [[x,y,z],...]} or {"dataset": "ball-8192"}
//	POST /v1/scatter2d one shard of a peer coordinator's scatter
//	GET  /v1/datasets  registered dataset names
//	GET  /v1/peers     scatter-coordinator per-peer health (breaker states)
//	GET  /healthz      liveness
//	GET  /metrics      Prometheus (inplacehull_serve_*, inplacehull_shard_*, inplacehull_stream_* counters)
//
// Streaming (mutable) datasets — a maintained, monotonically versioned
// hull per dataset, updated incrementally on every mutation:
//
//	PUT    /v1/datasets/{name}        register ({"points": [[x,y],...]}; idempotent for identical content)
//	DELETE /v1/datasets/{name}        delete; evicts that dataset's cached answers by content hash
//	POST   /v1/datasets/{name}/append append points; answers the committed hull delta
//	POST   /v1/datasets/{name}/delete remove points (all-or-nothing)
//	GET    /v1/datasets/{name}/hull   current hull; ?since=V replays deltas, &wait_ms=D long-polls
//	GET    /v1/datasets/{name}/watch  hull-delta push over SSE
//
// Stream datasets are queryable through /v1/hull2d and /v1/hull3d by
// name exactly like preloaded ones; default-shape queries are answered
// straight from the maintained hull without a fleet dispatch.
//
// The -datasets flag preloads named point sets from the deterministic
// workload generators; each spec is kind:n with kind one of disk,
// circle, grid, sorted (2-d) or ball, sphere (3-d), registered as
// "kind-n". Dataset queries hit the O(1) cache-key path: the points are
// hashed and validated once at startup. -stream-datasets preregisters
// the same specs as mutable stream datasets named "kind-n-stream".
package main

import (
	"context"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"strconv"
	"strings"
	"syscall"
	"time"

	"inplacehull/internal/cull"
	"inplacehull/internal/obs"
	"inplacehull/internal/pram"
	"inplacehull/internal/resilient"
	"inplacehull/internal/serve"
	"inplacehull/internal/shard"
	"inplacehull/internal/stream"
	"inplacehull/internal/workload"
)

func main() {
	var (
		addr     = flag.String("addr", ":8080", "listen address")
		fleet    = flag.Int("fleet", 0, "fleet size (pooled machines); 0 = min(GOMAXPROCS, 4)")
		workers  = flag.Int("workers", 0, "worker-pool width per machine; 0 = GOMAXPROCS")
		queue    = flag.Int("queue", 256, "admission queue bound; full queue sheds with 503 + Retry-After")
		batch    = flag.Int("batch", 32, "max queries coalesced per machine dispatch; 1 disables batching")
		window   = flag.Duration("window", 200*time.Microsecond, "how long a lone small query holds its batch open for stragglers")
		cache    = flag.Int("cache", 1024, "result-cache entries; 0 disables caching")
		datasets = flag.String("datasets", "disk:4096,circle:4096,ball:4096", "comma-separated kind:n dataset specs to preload (empty for none)")
		approx   = flag.Float64("approx-eps", 0, "server-default approximate-tier tolerance (relative to bbox diagonal); 0 keeps the tier off unless a query opts in via approx_eps")
		peers    = flag.String("peers", "", "comma-separated base URLs of hullserve peers for scatter-gather (e.g. http://hull-1:8080,http://hull-2:8080)")
		shards   = flag.Int("shards", 0, "default scatter width; > 0 with no -peers builds that many in-process shard workers")
		hedge    = flag.Duration("hedge", 20*time.Millisecond, "scatter straggler threshold before a hedged shard request launches; 0 disables hedging")
		partial  = flag.Bool("allow-partial", true, "answer scattered queries partially (HTTP 206 + typed PartialHull) when shards stay unreachable")
		backend  = flag.String("backend", "native", "default execution engine: native (direct, host-speed) or counted (simulated PRAM); queries may override per request")
		cullFlag = flag.String("cull", "auto", "default admission-side interior-point filter: auto (octagon), off, quad, octagon, or coarse; queries may override per request")
		streamDS = flag.String("stream-datasets", "", "comma-separated kind:n specs preregistered as mutable stream datasets named kind-n-stream (empty for none)")
		churn    = flag.Int("stream-churn", 0, "stream delete-repair churn threshold in live points; past it a repair falls back to a full rebuild (0 = default 256)")
	)
	flag.Parse()

	be, ok := resilient.ParseBackend(*backend)
	if !ok {
		fmt.Fprintf(os.Stderr, "hullserve: unknown -backend %q (want native or counted)\n", *backend)
		os.Exit(2)
	}
	cp, ok := cull.ParsePolicy(*cullFlag)
	if !ok {
		fmt.Fprintf(os.Stderr, "hullserve: unknown -cull %q (want auto, off, quad, octagon, or coarse)\n", *cullFlag)
		os.Exit(2)
	}

	ds, err := buildDatasets(*datasets)
	if err != nil {
		fmt.Fprintf(os.Stderr, "hullserve: %v\n", err)
		os.Exit(2)
	}

	metrics := obs.NewMetrics()
	sharder, closeSharder, err := buildSharder(*peers, *shards, *hedge, *partial, be, metrics)
	if err != nil {
		fmt.Fprintf(os.Stderr, "hullserve: %v\n", err)
		os.Exit(2)
	}
	defer closeSharder()

	store := stream.NewStore(stream.Config{
		Metrics:  metrics,
		MinChurn: *churn,
		Logf: func(format string, args ...any) {
			fmt.Printf("hullserve: "+format+"\n", args...)
		},
	})
	if err := buildStreamDatasets(store, *streamDS); err != nil {
		fmt.Fprintf(os.Stderr, "hullserve: %v\n", err)
		os.Exit(2)
	}

	srv := serve.NewServer(serve.Config{
		FleetSize:   *fleet,
		Workers:     *workers,
		MaxQueue:    *queue,
		MaxBatch:    *batch,
		BatchWindow: *window,
		CacheSize:   *cache,
		Metrics:     metrics,
		Datasets:    ds,
		Policy:      resilient.Policy{ApproxEps: *approx},
		Backend:     be,
		Cull:        cp,
		Sharder:     sharder,
		Streams:     store,
	})

	hs := &http.Server{Addr: *addr, Handler: srv.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- hs.ListenAndServe() }()

	names := srv.Datasets()
	fmt.Printf("hullserve: listening on %s (backend: %s; datasets: %s)\n", *addr, be, strings.Join(names, ", "))
	if sharder != nil {
		fmt.Printf("hullserve: scatter-gather enabled, %d-way default split\n", sharder.Shards())
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errc:
		fmt.Fprintf(os.Stderr, "hullserve: %v\n", err)
		srv.Close()
		os.Exit(1)
	case s := <-sig:
		fmt.Printf("hullserve: %v — draining\n", s)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := hs.Shutdown(ctx); err != nil {
		fmt.Fprintf(os.Stderr, "hullserve: shutdown: %v\n", err)
	}
	srv.Close()
}

// buildSharder assembles the scatter-gather coordinator: one HTTPWorker
// per -peers URL plus a local worker backed by a small dedicated machine
// fleet (dedicated so scattered sub-hulls never compete with the serving
// fleet's admission queue). Returns nil when scatter is not configured.
func buildSharder(peerSpec string, shards int, hedge time.Duration, allowPartial bool, backend resilient.Backend, metrics *obs.Metrics) (*shard.Coordinator, func(), error) {
	var peerURLs []string
	for _, p := range strings.Split(peerSpec, ",") {
		if p = strings.TrimSpace(p); p != "" {
			if !strings.HasPrefix(p, "http://") && !strings.HasPrefix(p, "https://") {
				return nil, func() {}, fmt.Errorf("peer %q: want an http(s) base URL", p)
			}
			peerURLs = append(peerURLs, strings.TrimRight(p, "/"))
		}
	}
	if len(peerURLs) == 0 && shards <= 0 {
		return nil, func() {}, nil
	}
	localN := 1
	if len(peerURLs) == 0 {
		// Local-only scatter: all k shard workers are in-process.
		localN = shards
	}
	fleetSize := localN
	if max := runtime.GOMAXPROCS(0); fleetSize > max {
		fleetSize = max
	}
	fleet := pram.NewFleet(fleetSize)
	var ws []shard.Worker
	for i := 0; i < localN; i++ {
		ws = append(ws, &shard.LocalWorker{ID: fmt.Sprintf("local-%d", i), Fleet: fleet, Backend: backend})
	}
	for _, u := range peerURLs {
		ws = append(ws, &shard.HTTPWorker{Base: u})
	}
	coord := shard.New(shard.Config{
		Workers:      ws,
		Shards:       shards,
		HedgeAfter:   hedge,
		AllowPartial: allowPartial,
		Metrics:      metrics,
	})
	return coord, fleet.Close, nil
}

// buildStreamDatasets preregisters mutable stream datasets from the same
// kind:n spec grammar as -datasets, named "kind-n-stream" so the mutable
// and immutable registrations of one workload never collide.
func buildStreamDatasets(store *stream.Store, spec string) error {
	if strings.TrimSpace(spec) == "" {
		return nil
	}
	ds, err := buildDatasets(spec)
	if err != nil {
		return err
	}
	for name, d := range ds {
		if d.Points3 != nil {
			_, _, err = store.Register3(name+"-stream", d.Points3)
		} else {
			_, _, err = store.Register2(name+"-stream", d.Points2)
		}
		if err != nil {
			return fmt.Errorf("stream dataset %q: %w", name, err)
		}
	}
	return nil
}

// buildDatasets parses "kind:n,kind:n" specs into preloaded datasets
// named "kind-n", generated with the deterministic workload generators
// (seed 1, so a restarted server serves identical point sets).
func buildDatasets(spec string) (map[string]serve.Dataset, error) {
	out := map[string]serve.Dataset{}
	if strings.TrimSpace(spec) == "" {
		return out, nil
	}
	for _, part := range strings.Split(spec, ",") {
		kind, ns, ok := strings.Cut(strings.TrimSpace(part), ":")
		if !ok {
			return nil, fmt.Errorf("dataset spec %q: want kind:n", part)
		}
		n, err := strconv.Atoi(ns)
		if err != nil || n <= 0 {
			return nil, fmt.Errorf("dataset spec %q: bad point count", part)
		}
		const seed = 1
		var d serve.Dataset
		switch kind {
		case "disk":
			d.Points2 = workload.Disk(seed, n)
		case "circle":
			d.Points2 = workload.Circle(seed, n)
		case "grid":
			d.Points2 = workload.Grid(seed, n)
		case "sorted":
			d.Points2 = workload.Sorted(workload.Disk(seed, n))
		case "ball":
			d.Points3 = workload.Ball(seed, n)
		case "sphere":
			d.Points3 = workload.Sphere(seed, n)
		default:
			return nil, fmt.Errorf("dataset spec %q: unknown kind (disk|circle|grid|sorted|ball|sphere)", part)
		}
		out[kind+"-"+ns] = d
	}
	return out, nil
}
