// Command hullserve exposes the internal/serve hull-query service over
// HTTP: batched multi-tenant queries against a bounded fleet of pooled
// PRAM machines, with admission control, a content-addressed result
// cache, and Prometheus counters.
//
// Usage:
//
//	hullserve -addr :8080
//	hullserve -addr :8080 -fleet 4 -batch 32 -cache 1024
//	hullserve -addr :8080 -datasets disk:65536,circle:16384,ball:8192
//
// Endpoints:
//
//	POST /v1/hull2d    {"points": [[x,y],...]} or {"dataset": "disk-65536"}
//	POST /v1/hull3d    {"points": [[x,y,z],...]} or {"dataset": "ball-8192"}
//	GET  /v1/datasets  registered dataset names
//	GET  /healthz      liveness
//	GET  /metrics      Prometheus (inplacehull_serve_* counters)
//
// The -datasets flag preloads named point sets from the deterministic
// workload generators; each spec is kind:n with kind one of disk,
// circle, grid, sorted (2-d) or ball, sphere (3-d), registered as
// "kind-n". Dataset queries hit the O(1) cache-key path: the points are
// hashed and validated once at startup.
package main

import (
	"context"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"inplacehull/internal/obs"
	"inplacehull/internal/resilient"
	"inplacehull/internal/serve"
	"inplacehull/internal/workload"
)

func main() {
	var (
		addr     = flag.String("addr", ":8080", "listen address")
		fleet    = flag.Int("fleet", 0, "fleet size (pooled machines); 0 = min(GOMAXPROCS, 4)")
		workers  = flag.Int("workers", 0, "worker-pool width per machine; 0 = GOMAXPROCS")
		queue    = flag.Int("queue", 256, "admission queue bound; full queue sheds with 429")
		batch    = flag.Int("batch", 32, "max queries coalesced per machine dispatch; 1 disables batching")
		window   = flag.Duration("window", 200*time.Microsecond, "how long a lone small query holds its batch open for stragglers")
		cache    = flag.Int("cache", 1024, "result-cache entries; 0 disables caching")
		datasets = flag.String("datasets", "disk:4096,circle:4096,ball:4096", "comma-separated kind:n dataset specs to preload (empty for none)")
		approx   = flag.Float64("approx-eps", 0, "server-default approximate-tier tolerance (relative to bbox diagonal); 0 keeps the tier off unless a query opts in via approx_eps")
	)
	flag.Parse()

	ds, err := buildDatasets(*datasets)
	if err != nil {
		fmt.Fprintf(os.Stderr, "hullserve: %v\n", err)
		os.Exit(2)
	}

	srv := serve.NewServer(serve.Config{
		FleetSize:   *fleet,
		Workers:     *workers,
		MaxQueue:    *queue,
		MaxBatch:    *batch,
		BatchWindow: *window,
		CacheSize:   *cache,
		Metrics:     obs.NewMetrics(),
		Datasets:    ds,
		Policy:      resilient.Policy{ApproxEps: *approx},
	})

	hs := &http.Server{Addr: *addr, Handler: srv.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- hs.ListenAndServe() }()

	names := srv.Datasets()
	fmt.Printf("hullserve: listening on %s (datasets: %s)\n", *addr, strings.Join(names, ", "))

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errc:
		fmt.Fprintf(os.Stderr, "hullserve: %v\n", err)
		srv.Close()
		os.Exit(1)
	case s := <-sig:
		fmt.Printf("hullserve: %v — draining\n", s)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := hs.Shutdown(ctx); err != nil {
		fmt.Fprintf(os.Stderr, "hullserve: shutdown: %v\n", err)
	}
	srv.Close()
}

// buildDatasets parses "kind:n,kind:n" specs into preloaded datasets
// named "kind-n", generated with the deterministic workload generators
// (seed 1, so a restarted server serves identical point sets).
func buildDatasets(spec string) (map[string]serve.Dataset, error) {
	out := map[string]serve.Dataset{}
	if strings.TrimSpace(spec) == "" {
		return out, nil
	}
	for _, part := range strings.Split(spec, ",") {
		kind, ns, ok := strings.Cut(strings.TrimSpace(part), ":")
		if !ok {
			return nil, fmt.Errorf("dataset spec %q: want kind:n", part)
		}
		n, err := strconv.Atoi(ns)
		if err != nil || n <= 0 {
			return nil, fmt.Errorf("dataset spec %q: bad point count", part)
		}
		const seed = 1
		var d serve.Dataset
		switch kind {
		case "disk":
			d.Points2 = workload.Disk(seed, n)
		case "circle":
			d.Points2 = workload.Circle(seed, n)
		case "grid":
			d.Points2 = workload.Grid(seed, n)
		case "sorted":
			d.Points2 = workload.Sorted(workload.Disk(seed, n))
		case "ball":
			d.Points3 = workload.Ball(seed, n)
		case "sphere":
			d.Points3 = workload.Sphere(seed, n)
		default:
			return nil, fmt.Errorf("dataset spec %q: unknown kind (disk|circle|grid|sorted|ball|sphere)", part)
		}
		out[kind+"-"+ns] = d
	}
	return out, nil
}
