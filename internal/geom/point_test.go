package geom

import (
	"math"
	"testing"
)

func TestEdgeAboveAt(t *testing.T) {
	e := Edge{U: Point{0, 0}, W: Point{4, 4}}
	if !e.AboveAt(Point{2, 3}) {
		t.Fatal("above not detected")
	}
	if e.AboveAt(Point{2, 2}) {
		t.Fatal("on-line reported above")
	}
	if e.AboveAt(Point{2, 1}) {
		t.Fatal("below reported above")
	}
}

func TestEdgeLine(t *testing.T) {
	e := Edge{U: Point{1, 1}, W: Point{3, 5}}
	l := e.Line()
	if l.M != 2 || l.B != -1 {
		t.Fatalf("line = %+v", l)
	}
}

func TestIsFinite(t *testing.T) {
	if !(Point{1, 2}).IsFinite() {
		t.Fatal("finite point rejected")
	}
	if (Point{math.NaN(), 0}).IsFinite() {
		t.Fatal("NaN accepted")
	}
	if (Point{0, math.Inf(1)}).IsFinite() {
		t.Fatal("Inf accepted")
	}
}

func TestDist2(t *testing.T) {
	if Dist2(Point{0, 0}, Point{3, 4}) != 25 {
		t.Fatal("dist2")
	}
}

func TestSub(t *testing.T) {
	if (Point{3, 4}).Sub(Point{1, 1}) != (Point{2, 3}) {
		t.Fatal("2d sub")
	}
	if (Point3{3, 4, 5}).Sub(Point3{1, 1, 1}) != (Point3{2, 3, 4}) {
		t.Fatal("3d sub")
	}
}

func TestStringers(t *testing.T) {
	if (Point{1, 2}).String() != "(1, 2)" {
		t.Fatalf("2d string: %s", (Point{1, 2}).String())
	}
	if (Point3{1, 2, 3}).String() != "(1, 2, 3)" {
		t.Fatalf("3d string: %s", (Point3{1, 2, 3}).String())
	}
}

func TestBelowOrOnLine(t *testing.T) {
	u, w := Point{0, 0}, Point{2, 0}
	if !BelowOrOnLine(Point{1, 0}, u, w) || !BelowOrOnLine(Point{1, -1}, u, w) {
		t.Fatal("on/below rejected")
	}
	if BelowOrOnLine(Point{1, 1}, u, w) {
		t.Fatal("above accepted")
	}
}

func TestCollinearPredicate(t *testing.T) {
	if !Collinear(Point{0, 0}, Point{1, 1}, Point{2, 2}) {
		t.Fatal("collinear rejected")
	}
	if Collinear(Point{0, 0}, Point{1, 1}, Point{2, 3}) {
		t.Fatal("non-collinear accepted")
	}
}
