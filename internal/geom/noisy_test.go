package geom

import (
	"math"
	"testing"
)

// splitmix-style test noise source: deterministic Bernoulli(p) sequence.
func testFlip(seed uint64, p float64) func() bool {
	state := seed
	return func() bool {
		state += 0x9e3779b97f4a7c15
		x := state
		x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
		x = (x ^ (x >> 27)) * 0x94d049bb133111eb
		x ^= x >> 31
		return float64(x>>11)/(1<<53) < p
	}
}

func TestVotesForSchedule(t *testing.T) {
	if got := VotesFor(0, 1e-9); got != 1 {
		t.Errorf("VotesFor(0) = %d, want 1", got)
	}
	if got := VotesFor(-0.1, 1e-9); got != 1 {
		t.Errorf("VotesFor(-0.1) = %d, want 1", got)
	}
	// Odd, and monotone in both p and 1/delta.
	prev := 0
	for _, p := range []float64{0.05, 0.1, 0.2, 0.3, 0.4} {
		k := VotesFor(p, 1e-6)
		if k%2 == 0 {
			t.Errorf("VotesFor(%g) = %d is even", p, k)
		}
		if k < prev {
			t.Errorf("VotesFor not monotone in p: %d after %d", k, prev)
		}
		prev = k
		if k2 := VotesFor(p, 1e-12); k2 < k {
			t.Errorf("VotesFor(%g) not monotone in confidence: %d < %d", p, k2, k)
		}
	}
	// The Hoeffding bound itself: exp(-2k(1/2-p)^2) <= delta, for rates
	// whose schedule fits under the cap.
	for _, p := range []float64{0.05, 0.2, 0.35} {
		for _, delta := range []float64{1e-3, 1e-9} {
			k := VotesFor(p, delta)
			gap := 0.5 - p
			if bound := math.Exp(-2 * float64(k) * gap * gap); bound > delta*1.0000001 {
				t.Errorf("VotesFor(%g,%g)=%d: bound %g > delta", p, delta, k, bound)
			}
		}
	}
	// Out-of-model error rates hit the cap instead of diverging.
	if got := VotesFor(0.5, 1e-9); got != 1001 {
		t.Errorf("VotesFor(0.5) = %d, want cap 1001", got)
	}
}

// TestExactPathBitIdentical: a nil oracle and a flip-free oracle (any vote
// count) must agree bit for bit with the raw predicates — the metamorphic
// anchor of the noisy tier.
func TestExactPathBitIdentical(t *testing.T) {
	var nilOracle *NoisyOracle
	voted := &NoisyOracle{Votes: 7} // Flip nil: still the exact path
	next := testFlip(42, 0.5)       // coordinate generator, not noise
	coord := func() float64 {
		v := 0.0
		for i := 0; i < 6; i++ {
			v *= 2
			if next() {
				v++
			}
		}
		return v - 32
	}
	for i := 0; i < 2000; i++ {
		a := Point{coord(), coord()}
		b := Point{coord(), coord()}
		c := Point{coord(), coord()}
		want := Orientation(a, b, c)
		if got := nilOracle.Orientation(a, b, c); got != want {
			t.Fatalf("nil oracle Orientation(%v,%v,%v) = %d, want %d", a, b, c, got, want)
		}
		if got := voted.Orientation(a, b, c); got != want {
			t.Fatalf("voted exact Orientation(%v,%v,%v) = %d, want %d", a, b, c, got, want)
		}
		if got, want := nilOracle.LexLess(a, b), LexLess(a, b); got != want {
			t.Fatalf("nil oracle LexLess(%v,%v) = %v, want %v", a, b, got, want)
		}
		d := Point3{coord(), coord(), coord()}
		e := Point3{coord(), coord(), coord()}
		f := Point3{coord(), coord(), coord()}
		g := Point3{coord(), coord(), coord()}
		if got, want := voted.Orientation3(d, e, f, g), Orientation3(d, e, f, g); got != want {
			t.Fatalf("voted exact Orientation3 = %d, want %d", got, want)
		}
	}
}

// TestVotingRecoversNoise: at flip rate p with the scheduled vote count,
// the voted predicate must agree with the exact predicate on every trial;
// a single unvoted evaluation at the same rate must show errors (sanity
// check that the noise source actually bites).
func TestVotingRecoversNoise(t *testing.T) {
	const trials = 3000
	for _, p := range []float64{0.05, 0.1, 0.2} {
		votes := VotesFor(p, 1e-9)
		voted := &NoisyOracle{Flip: testFlip(7, p), Votes: votes}
		single := &NoisyOracle{Flip: testFlip(7, p), Votes: 1}
		coordSrc := testFlip(99, 0.5)
		coord := func() float64 {
			v := 0.0
			for i := 0; i < 5; i++ {
				v *= 2
				if coordSrc() {
					v++
				}
			}
			return v
		}
		singleErrs := 0
		for i := 0; i < trials; i++ {
			a := Point{coord(), coord()}
			b := Point{coord(), coord()}
			c := Point{coord(), coord()}
			want := Orientation(a, b, c)
			if got := voted.Orientation(a, b, c); got != want {
				t.Fatalf("p=%g votes=%d: voted Orientation(%v,%v,%v) = %d, want %d (trial %d)",
					p, votes, a, b, c, got, want, i)
			}
			if single.Orientation(a, b, c) != want {
				singleErrs++
			}
		}
		if singleErrs == 0 {
			t.Errorf("p=%g: unvoted oracle made no errors in %d trials — noise source inert", p, trials)
		}
		// The unvoted error rate should be in the vicinity of p (wide
		// tolerance: this is a sanity band, not a statistical test).
		rate := float64(singleErrs) / trials
		if rate < p/3 || rate > 3*p {
			t.Errorf("p=%g: unvoted error rate %.3f outside sanity band", p, rate)
		}
	}
}

// TestCorruptionModel pins the deterministic corruption of outcomes.
func TestCorruptionModel(t *testing.T) {
	always := &NoisyOracle{Flip: func() bool { return true }, Votes: 1}
	a, b, c := Point{0, 0}, Point{2, 0}, Point{1, 1}
	if got := always.Orientation(a, b, c); got != -Orientation(a, b, c) {
		t.Errorf("always-flip nonzero sign: got %d", got)
	}
	if got := always.Orientation(a, b, Point{1, 0}); got != 1 {
		t.Errorf("always-flip zero sign: got %d, want +1", got)
	}
	if !always.LexLess(b, a) || always.LexLess(a, b) {
		t.Errorf("always-flip boolean not inverted")
	}
	// Odd voting over an always-wrong source stays wrong (p >= 1/2 is
	// outside the model) — but deterministically so, not a tie.
	always.Votes = 5
	if got := always.Orientation(a, b, c); got != -Orientation(a, b, c) {
		t.Errorf("always-flip voted sign: got %d", got)
	}
}
