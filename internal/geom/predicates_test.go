package geom

import (
	"math"
	"testing"
	"testing/quick"
)

func TestOrientationBasic(t *testing.T) {
	a, b := Point{0, 0}, Point{1, 0}
	if Orientation(a, b, Point{0.5, 1}) != 1 {
		t.Fatal("point above should be CCW (+1)")
	}
	if Orientation(a, b, Point{0.5, -1}) != -1 {
		t.Fatal("point below should be CW (−1)")
	}
	if Orientation(a, b, Point{2, 0}) != 0 {
		t.Fatal("collinear should be 0")
	}
}

func TestOrientationAntisymmetry(t *testing.T) {
	if err := quick.Check(func(ax, ay, bx, by, cx, cy float64) bool {
		a := Point{clamp(ax), clamp(ay)}
		b := Point{clamp(bx), clamp(by)}
		c := Point{clamp(cx), clamp(cy)}
		return Orientation(a, b, c) == -Orientation(b, a, c)
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestOrientationCyclicInvariance(t *testing.T) {
	if err := quick.Check(func(ax, ay, bx, by, cx, cy float64) bool {
		a := Point{clamp(ax), clamp(ay)}
		b := Point{clamp(bx), clamp(by)}
		c := Point{clamp(cx), clamp(cy)}
		o := Orientation(a, b, c)
		return o == Orientation(b, c, a) && o == Orientation(c, a, b)
	}, nil); err != nil {
		t.Fatal(err)
	}
}

// clamp maps arbitrary float64s into a finite range so quick-generated
// infinities/NaNs don't trivially break predicate contracts.
func clamp(x float64) float64 {
	if math.IsNaN(x) || math.IsInf(x, 0) {
		return 0
	}
	return math.Mod(x, 1e6)
}

func TestOrientationNearDegenerate(t *testing.T) {
	// Classic robustness stress: points nearly collinear at tiny offsets.
	// The exact fallback must classify them correctly.
	a := Point{0, 0}
	b := Point{1e-30, 1e-30}
	c := Point{2e-30, 2e-30}
	if Orientation(a, b, c) != 0 {
		t.Fatal("exactly collinear tiny points misclassified")
	}
	// Perturb c upward by one ulp-scale amount: must be strictly CCW.
	c2 := Point{2e-30, math.Nextafter(2e-30, 1)}
	if Orientation(a, b, c2) != 1 {
		t.Fatal("one-ulp perturbation not detected as CCW")
	}
	c3 := Point{2e-30, math.Nextafter(2e-30, -1)}
	if Orientation(a, b, c3) != -1 {
		t.Fatal("one-ulp perturbation not detected as CW")
	}
}

func TestOrientationMatchesExact(t *testing.T) {
	if err := quick.Check(func(ax, ay, bx, by, cx, cy float64) bool {
		a := Point{clamp(ax), clamp(ay)}
		b := Point{clamp(bx), clamp(by)}
		c := Point{clamp(cx), clamp(cy)}
		return Orientation(a, b, c) == orientationExact(a, b, c)
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestOrientation3Basic(t *testing.T) {
	a, b, c := Point3{0, 0, 0}, Point3{1, 0, 0}, Point3{0, 1, 0}
	if Orientation3(a, b, c, Point3{0, 0, 1}) != 1 {
		t.Fatal("above xy-plane should be +1")
	}
	if Orientation3(a, b, c, Point3{0, 0, -1}) != -1 {
		t.Fatal("below xy-plane should be −1")
	}
	if Orientation3(a, b, c, Point3{0.3, 0.3, 0}) != 0 {
		t.Fatal("coplanar should be 0")
	}
}

func TestOrientation3MatchesExact(t *testing.T) {
	if err := quick.Check(func(v [12]float64) bool {
		a := Point3{clamp(v[0]), clamp(v[1]), clamp(v[2])}
		b := Point3{clamp(v[3]), clamp(v[4]), clamp(v[5])}
		c := Point3{clamp(v[6]), clamp(v[7]), clamp(v[8])}
		d := Point3{clamp(v[9]), clamp(v[10]), clamp(v[11])}
		return Orientation3(a, b, c, d) == orientation3Exact(a, b, c, d)
	}, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestOrientation3SwapAntisymmetry(t *testing.T) {
	a, b, c, d := Point3{0, 0, 0}, Point3{1, 0.5, 0.25}, Point3{0.25, 1, 0.5}, Point3{0.5, 0.25, 1}
	if Orientation3(a, b, c, d) != -Orientation3(b, a, c, d) {
		t.Fatal("swapping two rows must flip the sign")
	}
}

func TestAboveLine(t *testing.T) {
	u, w := Point{0, 0}, Point{2, 2}
	if !AboveLine(Point{1, 2}, u, w) {
		t.Fatal("(1,2) should be above the line y=x")
	}
	if AboveLine(Point{1, 0}, u, w) {
		t.Fatal("(1,0) should not be above the line y=x")
	}
	if AboveLine(Point{1, 1}, u, w) {
		t.Fatal("point on the line is not strictly above")
	}
	// Order of u, w must not matter.
	if !AboveLine(Point{1, 2}, w, u) {
		t.Fatal("AboveLine must be symmetric in the segment endpoints")
	}
}

func TestLineThroughAndEval(t *testing.T) {
	l := LineThrough(Point{0, 1}, Point{2, 5})
	if l.M != 2 || l.B != 1 {
		t.Fatalf("line through (0,1),(2,5): got M=%v B=%v", l.M, l.B)
	}
	if l.Eval(3) != 7 {
		t.Fatalf("Eval(3) = %v, want 7", l.Eval(3))
	}
}

func TestLineIntersectX(t *testing.T) {
	l1 := Line{M: 1, B: 0}
	l2 := Line{M: -1, B: 4}
	if x := l1.IntersectX(l2); x != 2 {
		t.Fatalf("intersection x = %v, want 2", x)
	}
}

func TestPlaneThrough(t *testing.T) {
	p := PlaneThrough(Point3{0, 0, 1}, Point3{1, 0, 3}, Point3{0, 1, 4})
	// z = 2x + 3y + 1.
	if math.Abs(p.A-2) > 1e-12 || math.Abs(p.B-3) > 1e-12 || math.Abs(p.C-1) > 1e-12 {
		t.Fatalf("plane = %+v, want A=2 B=3 C=1", p)
	}
	if math.Abs(p.Eval(2, 2)-11) > 1e-12 {
		t.Fatalf("Eval(2,2) = %v, want 11", p.Eval(2, 2))
	}
}

func TestEdgeCovers(t *testing.T) {
	e := Edge{U: Point{1, 5}, W: Point{4, 2}}
	for _, tc := range []struct {
		x    float64
		want bool
	}{{0.9, false}, {1, true}, {2.5, true}, {4, true}, {4.1, false}} {
		if e.Covers(tc.x) != tc.want {
			t.Fatalf("Covers(%v) = %v, want %v", tc.x, !tc.want, tc.want)
		}
	}
}

func TestLexLess(t *testing.T) {
	if !LexLess(Point{1, 9}, Point{2, 0}) {
		t.Fatal("x order dominates")
	}
	if !LexLess(Point{1, 0}, Point{1, 1}) {
		t.Fatal("ties broken by y")
	}
	if LexLess(Point{1, 1}, Point{1, 1}) {
		t.Fatal("LexLess must be irreflexive")
	}
}

func TestCrossDot(t *testing.T) {
	if (Point{1, 0}).Cross(Point{0, 1}) != 1 {
		t.Fatal("unit cross")
	}
	if (Point{1, 2}).Dot(Point{3, 4}) != 11 {
		t.Fatal("dot product")
	}
	c := (Point3{1, 0, 0}).Cross(Point3{0, 1, 0})
	if c != (Point3{0, 0, 1}) {
		t.Fatalf("3d cross = %v", c)
	}
}

func TestFaceOrientationConsistency(t *testing.T) {
	f := Face{A: Point3{0, 0, 0}, B: Point3{1, 0, 0}, C: Point3{0, 1, 0}}
	pl := f.Plane()
	if pl.Eval(0.2, 0.2) != 0 {
		t.Fatal("face plane should pass through the face")
	}
}
