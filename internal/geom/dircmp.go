package geom

import (
	"math"
	"math/big"
)

// diffCrossSign returns the exact sign of
//
//	(a1−a2)·(b1−b2) − (c1−c2)·(d1−d2)
//
// for float64 inputs, using a floating-point filter with a math/big.Rat
// fallback. This is the common core of the slope- and direction-comparison
// predicates the Kirkpatrick–Seidel bridge search needs to be robust.
func diffCrossSign(a1, a2, b1, b2, c1, c2, d1, d2 float64) int {
	l := (a1 - a2) * (b1 - b2)
	r := (c1 - c2) * (d1 - d2)
	det := l - r
	sum := math.Abs(l) + math.Abs(r)
	const errBound = 8.8817841970012523e-16 // 4·eps, covers the two inexact subtractions per product
	if det > errBound*sum {
		return 1
	}
	if det < -errBound*sum {
		return -1
	}
	rat := func(x float64) *big.Rat { return new(big.Rat).SetFloat64(x) }
	sub := func(x, y float64) *big.Rat { return new(big.Rat).Sub(rat(x), rat(y)) }
	lr := new(big.Rat).Mul(sub(a1, a2), sub(b1, b2))
	rr := new(big.Rat).Mul(sub(c1, c2), sub(d1, d2))
	return lr.Cmp(rr)
}

// SlopeCmp compares the slope of segment (p, q) with the slope of segment
// (r, s), exactly: −1, 0, or +1. Both segments must have positive x-extent
// (p.X < q.X and r.X < s.X).
func SlopeCmp(p, q, r, s Point) int {
	// slope(pq) − slope(rs) has the sign of (qy−py)(sx−rx) − (sy−ry)(qx−px)
	// because both denominators are positive.
	return diffCrossSign(q.Y, p.Y, s.X, r.X, s.Y, r.Y, q.X, p.X)
}

// DirCmp compares points u and v along the direction orthogonal to segment
// (p, q): the sign of ⟨u − v, n⟩ where n = (−(q.Y−p.Y), q.X−p.X) is the
// upward normal of the segment. Positive means u is farther than v in the
// direction "above" the segment's slope — i.e. u.Y − K·u.X > v.Y − K·v.X
// for K = slope(p, q), evaluated exactly.
func DirCmp(u, v, p, q Point) int {
	// (uy−vy)(qx−px) − (ux−vx)(qy−py)
	return diffCrossSign(u.Y, v.Y, q.X, p.X, u.X, v.X, q.Y, p.Y)
}
