package geom

import (
	"testing"
	"testing/quick"
)

func TestSlopeCmpBasic(t *testing.T) {
	p, q := Point{0, 0}, Point{1, 1} // slope 1
	r, s := Point{0, 0}, Point{2, 1} // slope 0.5
	if SlopeCmp(p, q, r, s) != 1 {
		t.Fatal("slope 1 vs 0.5")
	}
	if SlopeCmp(r, s, p, q) != -1 {
		t.Fatal("slope 0.5 vs 1")
	}
	if SlopeCmp(p, q, Point{5, 5}, Point{7, 7}) != 0 {
		t.Fatal("equal slopes")
	}
}

func TestSlopeCmpMatchesFloat(t *testing.T) {
	if err := quick.Check(func(v [8]int8) bool {
		p := Point{float64(v[0]), float64(v[1])}
		q := Point{float64(v[2]), float64(v[3])}
		r := Point{float64(v[4]), float64(v[5])}
		s := Point{float64(v[6]), float64(v[7])}
		if p.X >= q.X || r.X >= s.X {
			return true // precondition
		}
		s1 := (q.Y - p.Y) / (q.X - p.X)
		s2 := (s.Y - r.Y) / (s.X - r.X)
		got := SlopeCmp(p, q, r, s)
		// Small-integer slopes are exact in float64, so the signs agree.
		switch {
		case s1 < s2:
			return got == -1
		case s1 > s2:
			return got == 1
		default:
			return got == 0
		}
	}, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestSlopeCmpAntisymmetric(t *testing.T) {
	if err := quick.Check(func(v [8]int8) bool {
		p := Point{float64(v[0]), float64(v[1])}
		q := Point{float64(v[2]), float64(v[3])}
		r := Point{float64(v[4]), float64(v[5])}
		s := Point{float64(v[6]), float64(v[7])}
		if p.X >= q.X || r.X >= s.X {
			return true
		}
		return SlopeCmp(p, q, r, s) == -SlopeCmp(r, s, p, q)
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDirCmpBasic(t *testing.T) {
	// Direction of segment (0,0)-(1,0): DirCmp compares y-offsets.
	p, q := Point{0, 0}, Point{1, 0}
	if DirCmp(Point{5, 3}, Point{7, 1}, p, q) != 1 {
		t.Fatal("higher point must compare greater")
	}
	if DirCmp(Point{5, 1}, Point{7, 3}, p, q) != -1 {
		t.Fatal("lower point must compare smaller")
	}
	if DirCmp(Point{5, 2}, Point{7, 2}, p, q) != 0 {
		t.Fatal("equal offsets")
	}
}

func TestDirCmpConsistentWithObjective(t *testing.T) {
	// DirCmp(u, v, p, q) must equal the sign of
	// (u.Y − K·u.X) − (v.Y − K·v.X) for K = slope(p, q), on exact inputs.
	if err := quick.Check(func(v [8]int8) bool {
		u := Point{float64(v[0]), float64(v[1])}
		w := Point{float64(v[2]), float64(v[3])}
		p := Point{float64(v[4]), float64(v[5])}
		q := Point{float64(v[6]), float64(v[7])}
		if p.X >= q.X {
			return true
		}
		got := DirCmp(u, w, p, q)
		// Denominator-cleared comparison; exact in float64 for
		// small-integer inputs.
		lhs := (u.Y-w.Y)*(q.X-p.X) - (u.X-w.X)*(q.Y-p.Y)
		switch {
		case lhs > 0:
			return got == 1
		case lhs < 0:
			return got == -1
		default:
			return got == 0
		}
	}, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestDirCmpIrreflexive(t *testing.T) {
	u := Point{3, 4}
	if DirCmp(u, u, Point{0, 0}, Point{1, 2}) != 0 {
		t.Fatal("DirCmp(u, u, …) must be 0")
	}
}

func TestDiffCrossSignExactNearTie(t *testing.T) {
	// Products that cancel exactly must give 0 through the exact path.
	if diffCrossSign(1e-30, 0, 2e-30, 0, 2e-30, 0, 1e-30, 0) != 0 {
		t.Fatal("exact tie misclassified")
	}
	// One-ulp perturbations must be detected.
	a := 1e-30
	b := 2e-30
	if diffCrossSign(a, 0, b, 0, b, 0, a, 0) != 0 {
		t.Fatal("symmetric product not zero")
	}
}
