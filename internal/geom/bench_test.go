package geom

import "testing"

func BenchmarkOrientationFastPath(b *testing.B) {
	p1, p2, p3 := Point{0.1, 0.2}, Point{0.9, 0.3}, Point{0.4, 0.8}
	for i := 0; i < b.N; i++ {
		Orientation(p1, p2, p3)
	}
}

func BenchmarkOrientationExactPath(b *testing.B) {
	// Exactly collinear: always takes the math/big fallback.
	p1, p2, p3 := Point{0.1, 0.1}, Point{0.2, 0.2}, Point{0.3, 0.3}
	for i := 0; i < b.N; i++ {
		Orientation(p1, p2, p3)
	}
}

func BenchmarkOrientation3FastPath(b *testing.B) {
	a := Point3{0.1, 0.2, 0.3}
	c := Point3{0.9, 0.1, 0.4}
	d := Point3{0.3, 0.8, 0.1}
	e := Point3{0.5, 0.5, 0.9}
	for i := 0; i < b.N; i++ {
		Orientation3(a, c, d, e)
	}
}

func BenchmarkSlopeCmp(b *testing.B) {
	p, q := Point{0, 0}, Point{1, 0.5}
	r, s := Point{0.2, 0.1}, Point{1.5, 0.9}
	for i := 0; i < b.N; i++ {
		SlopeCmp(p, q, r, s)
	}
}
