package geom

import (
	"math"
	"math/big"
)

// Orientation returns the sign of the signed area of triangle (a, b, c):
// +1 if c lies to the left of the directed line a→b (counter-clockwise),
// −1 if to the right (clockwise), 0 if the three points are collinear.
//
// A floating-point filter handles the overwhelmingly common certain cases;
// when the computed determinant is smaller than its forward error bound the
// predicate is re-evaluated exactly with math/big rationals, so the result
// is always the sign of the exact determinant.
func Orientation(a, b, c Point) int {
	detLeft := (a.X - c.X) * (b.Y - c.Y)
	detRight := (a.Y - c.Y) * (b.X - c.X)
	det := detLeft - detRight

	// Shewchuk-style static filter: the error of det is bounded by
	// errBound·(|detLeft|+|detRight|).
	detSum := math.Abs(detLeft) + math.Abs(detRight)
	const errBound = 3.3306690738754716e-16 // (3 + 16·eps)·eps, eps = 2^-53
	if det > errBound*detSum {
		return 1
	}
	if det < -errBound*detSum {
		return -1
	}
	// Coincident points make the determinant exactly zero; the check is
	// far cheaper than the big-float fallback and catches the common case
	// of a basis point tested against its own line.
	if a == b || a == c || b == c {
		return 0
	}
	return orientationExact(a, b, c)
}

func orientationExact(a, b, c Point) int {
	ax, ay := big.NewFloat(a.X), big.NewFloat(a.Y)
	bx, by := big.NewFloat(b.X), big.NewFloat(b.Y)
	cx, cy := big.NewFloat(c.X), big.NewFloat(c.Y)
	// Set precision high enough that every product and difference of
	// float64 inputs is exact: 53-bit inputs need ≤ 110 bits per product
	// and a few more for the additions; 256 is comfortably exact here.
	for _, f := range []*big.Float{ax, ay, bx, by, cx, cy} {
		f.SetPrec(256)
	}
	t1 := new(big.Float).SetPrec(256).Sub(ax, cx)
	t2 := new(big.Float).SetPrec(256).Sub(by, cy)
	t3 := new(big.Float).SetPrec(256).Sub(ay, cy)
	t4 := new(big.Float).SetPrec(256).Sub(bx, cx)
	l := new(big.Float).SetPrec(256).Mul(t1, t2)
	r := new(big.Float).SetPrec(256).Mul(t3, t4)
	return l.Cmp(r)
}

// Orientation3 returns the sign of the determinant
//
//	| b−a |
//	| c−a |
//	| d−a |
//
// i.e. +1 if d lies on the positive side of the plane through (a, b, c)
// oriented by the right-hand rule, −1 on the negative side, 0 if coplanar.
func Orientation3(a, b, c, d Point3) int {
	adx, ady, adz := a.X-d.X, a.Y-d.Y, a.Z-d.Z
	bdx, bdy, bdz := b.X-d.X, b.Y-d.Y, b.Z-d.Z
	cdx, cdy, cdz := c.X-d.X, c.Y-d.Y, c.Z-d.Z

	bdxcdy := bdx * cdy
	cdxbdy := cdx * bdy
	cdxady := cdx * ady
	adxcdy := adx * cdy
	adxbdy := adx * bdy
	bdxady := bdx * ady

	det := adz*(bdxcdy-cdxbdy) + bdz*(cdxady-adxcdy) + cdz*(adxbdy-bdxady)

	permanent := (math.Abs(bdxcdy)+math.Abs(cdxbdy))*math.Abs(adz) +
		(math.Abs(cdxady)+math.Abs(adxcdy))*math.Abs(bdz) +
		(math.Abs(adxbdy)+math.Abs(bdxady))*math.Abs(cdz)
	// The Shewchuk-style expression above is det(a−d, b−d, c−d), which is
	// the negative of the documented det(b−a, c−a, d−a); flip the sign.
	const errBound = 7.771561172376103e-16 // (7 + 56·eps)·eps
	if det > errBound*permanent {
		return -1
	}
	if det < -errBound*permanent {
		return 1
	}
	if a == b || a == c || a == d || b == c || b == d || c == d {
		return 0
	}
	return orientation3Exact(a, b, c, d)
}

func orientation3Exact(a, b, c, d Point3) int {
	// Rational arithmetic is exact for float64 inputs.
	rat := func(x float64) *big.Rat { return new(big.Rat).SetFloat64(x) }
	sub := func(x, y *big.Rat) *big.Rat { return new(big.Rat).Sub(x, y) }
	mul := func(x, y *big.Rat) *big.Rat { return new(big.Rat).Mul(x, y) }

	adx, ady, adz := sub(rat(a.X), rat(d.X)), sub(rat(a.Y), rat(d.Y)), sub(rat(a.Z), rat(d.Z))
	bdx, bdy, bdz := sub(rat(b.X), rat(d.X)), sub(rat(b.Y), rat(d.Y)), sub(rat(b.Z), rat(d.Z))
	cdx, cdy, cdz := sub(rat(c.X), rat(d.X)), sub(rat(c.Y), rat(d.Y)), sub(rat(c.Z), rat(d.Z))

	m1 := sub(mul(bdx, cdy), mul(cdx, bdy))
	m2 := sub(mul(cdx, ady), mul(adx, cdy))
	m3 := sub(mul(adx, bdy), mul(bdx, ady))

	det := new(big.Rat).Add(mul(adz, m1), mul(bdz, m2))
	det.Add(det, mul(cdz, m3))
	// Same sign flip as the filtered path: the expression is
	// det(a−d, b−d, c−d) = −det(b−a, c−a, d−a).
	return -det.Sign()
}

// Collinear reports whether a, b, c are exactly collinear.
func Collinear(a, b, c Point) bool { return Orientation(a, b, c) == 0 }

// AboveLine reports whether point p lies strictly above the line through u
// and w (u.X must differ from w.X). Equivalent to the exact comparison
// p.Y > l.Eval(p.X) but evaluated robustly via the orientation predicate.
func AboveLine(p, u, w Point) bool {
	if u.X < w.X {
		return Orientation(u, w, p) > 0
	}
	return Orientation(w, u, p) > 0
}

// BelowOrOnLine reports whether p lies on or below the line through u, w.
func BelowOrOnLine(p, u, w Point) bool { return !AboveLine(p, u, w) }
