// Package geom provides the geometric primitives shared by every hull
// algorithm in the library: 2-d and 3-d points, robust orientation
// predicates (fast floating-point filter with an exact math/big fallback),
// lines, planes, and the bridge/facet types the paper's algorithms produce.
package geom

import (
	"fmt"
	"math"
)

// Point is a point in the plane.
type Point struct {
	X, Y float64
}

// Point3 is a point in three-dimensional space.
type Point3 struct {
	X, Y, Z float64
}

func (p Point) String() string    { return fmt.Sprintf("(%g, %g)", p.X, p.Y) }
func (p Point3) String() string   { return fmt.Sprintf("(%g, %g, %g)", p.X, p.Y, p.Z) }
func (p Point) Sub(q Point) Point { return Point{p.X - q.X, p.Y - q.Y} }

// Sub returns the componentwise difference p − q.
func (p Point3) Sub(q Point3) Point3 { return Point3{p.X - q.X, p.Y - q.Y, p.Z - q.Z} }

// Cross returns the 2-d cross product p × q.
func (p Point) Cross(q Point) float64 { return p.X*q.Y - p.Y*q.X }

// Dot returns the dot product p · q.
func (p Point) Dot(q Point) float64 { return p.X*q.X + p.Y*q.Y }

// Cross returns the 3-d cross product p × q.
func (p Point3) Cross(q Point3) Point3 {
	return Point3{
		p.Y*q.Z - p.Z*q.Y,
		p.Z*q.X - p.X*q.Z,
		p.X*q.Y - p.Y*q.X,
	}
}

// Dot returns the dot product p · q.
func (p Point3) Dot(q Point3) float64 { return p.X*q.X + p.Y*q.Y + p.Z*q.Z }

// Dist2 returns the squared Euclidean distance between p and q.
func Dist2(p, q Point) float64 {
	dx, dy := p.X-q.X, p.Y-q.Y
	return dx*dx + dy*dy
}

// LexLess reports whether p precedes q in (x, y) lexicographic order — the
// order "pre-sorted input" means throughout the paper.
func LexLess(p, q Point) bool {
	if p.X != q.X {
		return p.X < q.X
	}
	return p.Y < q.Y
}

// Line is the line y = M·x + B. Vertical lines are not representable; the
// algorithms that use Line (bridge finding via LP duality) only ever
// construct lines through two points of distinct x-coordinates.
type Line struct {
	M, B float64
}

// LineThrough returns the line through points p and q, which must have
// distinct x-coordinates.
func LineThrough(p, q Point) Line {
	m := (q.Y - p.Y) / (q.X - p.X)
	return Line{M: m, B: p.Y - m*p.X}
}

// Eval returns the y-value of the line at x.
func (l Line) Eval(x float64) float64 { return l.M*x + l.B }

// IntersectX returns the x-coordinate where lines l and o intersect. The
// lines must not be parallel.
func (l Line) IntersectX(o Line) float64 { return (o.B - l.B) / (l.M - o.M) }

// Edge is a directed upper-hull edge from U to W with U.X < W.X.
type Edge struct {
	U, W Point
}

// Covers reports whether x lies within the closed x-extent of the edge.
func (e Edge) Covers(x float64) bool { return e.U.X <= x && x <= e.W.X }

// Line returns the supporting line of the edge.
func (e Edge) Line() Line { return LineThrough(e.U, e.W) }

// AboveAt reports whether point p lies strictly above the edge's supporting
// line, evaluated robustly.
func (e Edge) AboveAt(p Point) bool { return Orientation(e.U, e.W, p) > 0 }

// Face is an upper-hull facet in 3-d: the triangle (A, B, C) oriented so its
// outward normal has positive z-component.
type Face struct {
	A, B, C Point3
}

// Plane is the plane z = A·x + B·y + C.
type Plane struct {
	A, B, C float64
}

// PlaneThrough returns the (non-vertical) plane through three points. The
// points must not be collinear when projected to the xy-plane.
func PlaneThrough(p, q, r Point3) Plane {
	// Solve the 2×2 system for the gradient (A, B):
	//   A·(q.X−p.X) + B·(q.Y−p.Y) = q.Z−p.Z
	//   A·(r.X−p.X) + B·(r.Y−p.Y) = r.Z−p.Z
	a1, b1, c1 := q.X-p.X, q.Y-p.Y, q.Z-p.Z
	a2, b2, c2 := r.X-p.X, r.Y-p.Y, r.Z-p.Z
	det := a1*b2 - a2*b1
	A := (c1*b2 - c2*b1) / det
	B := (a1*c2 - a2*c1) / det
	return Plane{A: A, B: B, C: p.Z - A*p.X - B*p.Y}
}

// Eval returns the z-value of the plane at (x, y).
func (pl Plane) Eval(x, y float64) float64 { return pl.A*x + pl.B*y + pl.C }

// Plane returns the supporting plane of the face.
func (f Face) Plane() Plane { return PlaneThrough(f.A, f.B, f.C) }

// IsFinite reports whether all coordinates of p are finite.
func (p Point) IsFinite() bool {
	return !math.IsNaN(p.X) && !math.IsInf(p.X, 0) && !math.IsNaN(p.Y) && !math.IsInf(p.Y, 0)
}

// IsFinite reports whether all coordinates of p are finite.
func (p Point3) IsFinite() bool {
	return !math.IsNaN(p.X) && !math.IsInf(p.X, 0) &&
		!math.IsNaN(p.Y) && !math.IsInf(p.Y, 0) &&
		!math.IsNaN(p.Z) && !math.IsInf(p.Z, 0)
}
