// Noisy-primitive model (Goodrich–Sridhar): every geometric primitive —
// an orientation test or a coordinate comparison — errs independently with
// some constant probability p < 1/2, and the algorithm must still answer
// correctly with high probability. The classical remedy is repetition: ask
// the primitive an odd number of times and take the majority; by a
// Chernoff bound, k ≥ ln(1/δ) / (2·(1/2 − p)²) repetitions push the
// per-predicate failure probability below δ.
//
// NoisyOracle packages that remedy around this package's exact predicates.
// The noise itself is simulated: a pluggable Flip source (in production
// wiring, the predicate-flip fault-injection site riding the random
// stream) decides per evaluation whether the outcome is corrupted. With a
// nil Flip source the oracle collapses to the raw exact predicates — the
// bit-identity the metamorphic tests pin down.

package geom

import "math"

// NoisyOracle evaluates sign and boolean predicates under simulated
// primitive noise with majority-vote repetition. The zero value (and a nil
// *NoisyOracle) is the exact oracle: no noise, single evaluation,
// bit-identical to calling the package predicates directly.
//
// Concurrency: the oracle itself is stateless; it is as safe as its Flip
// source. The fault-injector source is atomic, so one oracle may be shared
// across goroutines.
type NoisyOracle struct {
	// Flip, when non-nil, is consulted once per primitive evaluation;
	// returning true corrupts that evaluation's outcome (sign negated,
	// zero perturbed to +1, boolean inverted). Nil means exact evaluation
	// regardless of Votes.
	Flip func() bool
	// Votes is the repetition count per predicate; even values are rounded
	// up to the next odd number, values below 1 mean a single evaluation.
	// Size it with VotesFor to meet a target confidence.
	Votes int
}

// VotesFor returns the smallest odd repetition count k such that a
// majority vote over k evaluations, each independently wrong with
// probability p, is wrong with probability at most delta (Hoeffding:
// exp(−2k(1/2−p)²) ≤ delta). Out-of-model arguments are clamped: p ≤ 0
// yields 1 (no repetition needed), delta outside (0,1) defaults to 1e-9,
// and p ≥ 1/2 — for which no schedule exists — yields the cap.
func VotesFor(p, delta float64) int {
	const maxVotes = 1001 // beyond any in-model schedule; keeps p→1/2 finite
	if p <= 0 {
		return 1
	}
	if delta <= 0 || delta >= 1 {
		delta = 1e-9
	}
	if p >= 0.5 {
		return maxVotes
	}
	gap := 0.5 - p
	k := int(math.Ceil(math.Log(1/delta) / (2 * gap * gap)))
	if k < 1 {
		k = 1
	}
	if k%2 == 0 {
		k++
	}
	if k > maxVotes {
		return maxVotes
	}
	return k
}

// exact reports whether the oracle is on its exact fast path.
func (o *NoisyOracle) exact() bool { return o == nil || o.Flip == nil }

// votes returns the effective odd repetition count.
func (o *NoisyOracle) votes() int {
	if o == nil || o.Votes <= 1 {
		return 1
	}
	if o.Votes%2 == 0 {
		return o.Votes + 1
	}
	return o.Votes
}

// VoteCount reports the effective per-predicate vote count of the oracle:
// 0 for a nil oracle (no noise modeled), the odd-rounded repetition count
// otherwise — what a supervision report records.
func (o *NoisyOracle) VoteCount() int {
	if o == nil {
		return 0
	}
	return o.votes()
}

// corruptSign is the deterministic corruption of a sign outcome: a nonzero
// sign is negated, an exact zero is perturbed to +1 (any nonzero answer is
// wrong for a degenerate configuration).
func corruptSign(v int) int {
	if v != 0 {
		return -v
	}
	return 1
}

// Sign evaluates an arbitrary sign predicate (−1/0/+1) under the oracle's
// noise and voting. eval is called once per vote; on the exact path it is
// called exactly once and its result returned unchanged.
func (o *NoisyOracle) Sign(eval func() int) int {
	if o.exact() {
		return eval()
	}
	k := o.votes()
	var count [3]int // index sign+1
	for i := 0; i < k; i++ {
		v := eval()
		if o.Flip() {
			v = corruptSign(v)
		}
		count[v+1]++
	}
	// Majority. Under the corruption model each evaluation yields one of
	// at most two values, so an odd k cannot tie; the explicit preference
	// order (0, +1, −1) keeps the reduction deterministic regardless.
	best, bestIdx := count[1], 1
	if count[2] > best {
		best, bestIdx = count[2], 2
	}
	if count[0] > best {
		bestIdx = 0
	}
	return bestIdx - 1
}

// Bool evaluates an arbitrary boolean predicate under noise and voting.
func (o *NoisyOracle) Bool(eval func() bool) bool {
	if o.exact() {
		return eval()
	}
	k := o.votes()
	trues := 0
	for i := 0; i < k; i++ {
		v := eval()
		if o.Flip() {
			v = !v
		}
		if v {
			trues++
		}
	}
	return trues*2 > k
}

// Orientation is the voted form of Orientation.
func (o *NoisyOracle) Orientation(a, b, c Point) int {
	if o.exact() {
		return Orientation(a, b, c)
	}
	return o.Sign(func() int { return Orientation(a, b, c) })
}

// Orientation3 is the voted form of Orientation3.
func (o *NoisyOracle) Orientation3(a, b, c, d Point3) int {
	if o.exact() {
		return Orientation3(a, b, c, d)
	}
	return o.Sign(func() int { return Orientation3(a, b, c, d) })
}

// SlopeCmp is the voted form of SlopeCmp.
func (o *NoisyOracle) SlopeCmp(p, q, r, s Point) int {
	if o.exact() {
		return SlopeCmp(p, q, r, s)
	}
	return o.Sign(func() int { return SlopeCmp(p, q, r, s) })
}

// DirCmp is the voted form of DirCmp.
func (o *NoisyOracle) DirCmp(u, v, p, q Point) int {
	if o.exact() {
		return DirCmp(u, v, p, q)
	}
	return o.Sign(func() int { return DirCmp(u, v, p, q) })
}

// LexLess is the voted form of the lexicographic comparison primitive.
func (o *NoisyOracle) LexLess(p, q Point) bool {
	if o.exact() {
		return LexLess(p, q)
	}
	return o.Bool(func() bool { return LexLess(p, q) })
}

// YLess is the voted y-coordinate comparison (the strip-maximum selection
// primitive of the approximate tier).
func (o *NoisyOracle) YLess(p, q Point) bool {
	if o.exact() {
		return p.Y < q.Y
	}
	return o.Bool(func() bool { return p.Y < q.Y })
}

// ZLess is the voted z-coordinate comparison (the 3-d cell-maximum
// selection primitive of the approximate tier).
func (o *NoisyOracle) ZLess(p, q Point3) bool {
	if o.exact() {
		return p.Z < q.Z
	}
	return o.Bool(func() bool { return p.Z < q.Z })
}

// AboveLine is the voted form of AboveLine: it reduces to a single voted
// orientation evaluation, not a vote over AboveLine outcomes, so its noise
// behaviour matches the primitive it is derived from.
func (o *NoisyOracle) AboveLine(p, u, w Point) bool {
	if u.X < w.X {
		return o.Orientation(u, w, p) > 0
	}
	return o.Orientation(w, u, p) > 0
}

// BelowOrOnLine is the complement of AboveLine under the same oracle.
func (o *NoisyOracle) BelowOrOnLine(p, u, w Point) bool { return !o.AboveLine(p, u, w) }
