package hull3d

import (
	"testing"
	"testing/quick"

	"inplacehull/internal/geom"
	"inplacehull/internal/rng"
	"inplacehull/internal/workload"
)

func TestIncrementalTetrahedron(t *testing.T) {
	pts := []geom.Point3{
		{X: 0, Y: 0, Z: 0}, {X: 1, Y: 0, Z: 0}, {X: 0, Y: 1, Z: 0}, {X: 0, Y: 0, Z: 1},
	}
	h, err := Incremental(rng.New(1), pts)
	if err != nil {
		t.Fatal(err)
	}
	if len(h.Faces) != 4 {
		t.Fatalf("tetrahedron has %d faces", len(h.Faces))
	}
	if err := h.Verify(); err != nil {
		t.Fatal(err)
	}
}

func TestIncrementalInteriorPoint(t *testing.T) {
	pts := []geom.Point3{
		{X: 0, Y: 0, Z: 0}, {X: 4, Y: 0, Z: 0}, {X: 0, Y: 4, Z: 0}, {X: 0, Y: 0, Z: 4},
		{X: 0.5, Y: 0.5, Z: 0.5}, // interior
	}
	h, err := Incremental(rng.New(2), pts)
	if err != nil {
		t.Fatal(err)
	}
	if len(h.Vertices()) != 4 {
		t.Fatalf("interior point on hull: vertices %v", h.Vertices())
	}
	if err := h.Verify(); err != nil {
		t.Fatal(err)
	}
}

func TestIncrementalWorkloads(t *testing.T) {
	for _, g := range workload.Gens3D {
		for seed := uint64(1); seed <= 2; seed++ {
			pts := g.Gen(seed, 600)
			h, err := Incremental(rng.New(seed+5), pts)
			if err != nil {
				t.Fatalf("%s: %v", g.Name, err)
			}
			if err := h.Verify(); err != nil {
				t.Fatalf("%s: %v", g.Name, err)
			}
		}
	}
}

func TestIncrementalSphereAllVertices(t *testing.T) {
	pts := workload.Sphere(3, 300)
	h, err := Incremental(rng.New(3), pts)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(h.Vertices()); got != 300 {
		t.Fatalf("sphere hull has %d vertices, want 300", got)
	}
	// Euler: F = 2V − 4 for a triangulated sphere.
	if len(h.Faces) != 2*300-4 {
		t.Fatalf("faces %d, want %d", len(h.Faces), 2*300-4)
	}
}

func TestIncrementalDegenerateInputs(t *testing.T) {
	if _, err := Incremental(rng.New(1), []geom.Point3{{X: 1, Y: 1, Z: 1}, {X: 1, Y: 1, Z: 1}, {X: 1, Y: 1, Z: 1}, {X: 1, Y: 1, Z: 1}}); err == nil {
		t.Fatal("coincident points accepted")
	}
	line := make([]geom.Point3, 10)
	for i := range line {
		line[i] = geom.Point3{X: float64(i), Y: 2 * float64(i), Z: -float64(i)}
	}
	if _, err := Incremental(rng.New(1), line); err == nil {
		t.Fatal("collinear points accepted")
	}
	plane := make([]geom.Point3, 10)
	s := rng.New(9)
	for i := range plane {
		plane[i] = geom.Point3{X: s.Float64(), Y: s.Float64(), Z: 0}
	}
	if _, err := Incremental(rng.New(1), plane); err == nil {
		t.Fatal("coplanar points accepted")
	}
}

func TestIncrementalDeterministic(t *testing.T) {
	pts := workload.Ball(7, 500)
	h1, e1 := Incremental(rng.New(11), pts)
	h2, e2 := Incremental(rng.New(11), pts)
	if e1 != nil || e2 != nil {
		t.Fatal(e1, e2)
	}
	if len(h1.Faces) != len(h2.Faces) {
		t.Fatal("nondeterministic face count")
	}
}

func TestGiftWrapMatchesIncremental(t *testing.T) {
	for _, gen := range []func(uint64, int) []geom.Point3{workload.Ball, workload.BallFew(32)} {
		pts := gen(13, 200)
		gw, err := GiftWrap(pts)
		if err != nil {
			t.Fatal(err)
		}
		if err := gw.Verify(); err != nil {
			t.Fatal(err)
		}
		inc, err := Incremental(rng.New(13), pts)
		if err != nil {
			t.Fatal(err)
		}
		v1, v2 := gw.Vertices(), inc.Vertices()
		if len(v1) != len(v2) {
			t.Fatalf("vertex sets differ: %d vs %d", len(v1), len(v2))
		}
		for i := range v1 {
			if v1[i] != v2[i] {
				t.Fatalf("vertex sets differ at %d", i)
			}
		}
	}
}

func TestUpperFaces(t *testing.T) {
	pts := workload.Ball(17, 400)
	h, err := Incremental(rng.New(17), pts)
	if err != nil {
		t.Fatal(err)
	}
	up := h.UpperFaces()
	if len(up) == 0 || len(up) >= len(h.Faces) {
		t.Fatalf("upper faces %d of %d", len(up), len(h.Faces))
	}
	if err := VerifyUpper(pts, up); err != nil {
		t.Fatal(err)
	}
}

func TestFaceAbove(t *testing.T) {
	pts := []geom.Point3{
		{X: 0, Y: 0, Z: 0}, {X: 4, Y: 0, Z: 0}, {X: 0, Y: 4, Z: 0}, {X: 1, Y: 1, Z: 3},
	}
	h, err := Incremental(rng.New(1), pts)
	if err != nil {
		t.Fatal(err)
	}
	up := h.UpperFaces()
	if i := FaceAbove(pts, up, 1, 1); i < 0 {
		t.Fatal("no face above the centroid")
	}
	if i := FaceAbove(pts, up, 100, 100); i >= 0 {
		t.Fatal("face above a far-away point")
	}
}

func TestIncrementalQuick(t *testing.T) {
	if err := quick.Check(func(seed uint64, nRaw uint8) bool {
		n := int(nRaw)%60 + 8
		pts := workload.Ball(seed, n)
		h, err := Incremental(rng.New(seed^0x5555), pts)
		if err != nil {
			return false
		}
		return h.Verify() == nil
	}, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}
