package hull3d

import (
	"testing"

	"inplacehull/internal/geom"
	"inplacehull/internal/rng"
	"inplacehull/internal/workload"
)

func sameHull(a, b Hull) bool {
	if len(a.Faces) != len(b.Faces) {
		return false
	}
	for i := range a.Faces {
		if a.Faces[i] != b.Faces[i] {
			return false
		}
	}
	return true
}

// TestIncrementalOracleBitIdentical: the oracle-routed incremental build
// with a nil or flip-free voted oracle reproduces Incremental bit for bit
// (same stream seed → same insertion order → same face list).
func TestIncrementalOracleBitIdentical(t *testing.T) {
	for _, g := range workload.Gens3D {
		pts := g.Gen(17, 128)
		want, err := Incremental(rng.New(99), pts)
		if err != nil {
			continue // degenerate generator output; parity below still holds
		}
		for name, o := range map[string]*geom.NoisyOracle{
			"nil": nil, "voted-7": {Votes: 7}, "flip-free": {Flip: func() bool { return false }, Votes: 3},
		} {
			got, err := IncrementalOracle(rng.New(99), pts, o)
			if err != nil {
				t.Fatalf("%s oracle=%s: %v", g.Name, name, err)
			}
			if !sameHull(got, want) {
				t.Fatalf("%s oracle=%s: %d faces, want %d (or face lists differ)",
					g.Name, name, len(got.Faces), len(want.Faces))
			}
		}
	}
}

// TestIncrementalOracleUnderNoise: with real flips and a Hoeffding-sized
// schedule, the voted build still produces a verifying hull.
func TestIncrementalOracleUnderNoise(t *testing.T) {
	pts := workload.Ball(19, 160)
	for _, p := range []float64{0.05, 0.1} {
		noise := rng.New(uint64(1e3 * p))
		o := &geom.NoisyOracle{
			Flip:  func() bool { return noise.Float64() < p },
			Votes: geom.VotesFor(p, 1e-9),
		}
		h, err := IncrementalOracle(rng.New(7), pts, o)
		if err != nil {
			t.Fatalf("p=%g: %v", p, err)
		}
		if err := h.Verify(); err != nil {
			t.Fatalf("p=%g: voted hull fails verification: %v", p, err)
		}
	}
}
