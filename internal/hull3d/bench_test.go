package hull3d

import (
	"strconv"
	"testing"

	"inplacehull/internal/rng"
	"inplacehull/internal/workload"
)

func BenchmarkIncremental(b *testing.B) {
	for _, n := range []int{1 << 10, 1 << 13} {
		ball := workload.Ball(1, n)
		b.Run("ball/"+strconv.Itoa(n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := Incremental(rng.New(uint64(i)), ball); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkGiftWrapSmallH(b *testing.B) {
	pts := workload.BallFew(32)(1, 1<<12)
	for i := 0; i < b.N; i++ {
		if _, err := GiftWrap(pts); err != nil {
			b.Fatal(err)
		}
	}
}
