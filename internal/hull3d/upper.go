package hull3d

import (
	"fmt"

	"inplacehull/internal/geom"
)

// UpperFaces returns the facets of the upper hull: the faces of the full
// hull whose outward normal has strictly positive z-component ("the face
// above it" in §4.3's output contract). The faces are reoriented so their
// xy-projection is counter-clockwise.
func (h Hull) UpperFaces() []Tri {
	var out []Tri
	for _, f := range h.Faces {
		a, b, c := h.Pts[f.A], h.Pts[f.B], h.Pts[f.C]
		// The z-sign of the outward normal is exactly the 2-d orientation
		// of the face's xy-projection (outward + upward ⇔ CCW projection).
		if geom.Orientation(pxy(a), pxy(b), pxy(c)) > 0 {
			out = append(out, f)
		}
	}
	return out
}

func pxy(p geom.Point3) geom.Point { return geom.Point{X: p.X, Y: p.Y} }

// FaceAbove returns the index (into faces) of an upper face whose
// xy-projection contains (x, y), or −1 if none. Linear scan; used by the
// verification oracle and examples, not by the PRAM algorithms.
func FaceAbove(pts []geom.Point3, faces []Tri, x, y float64) int {
	q := geom.Point{X: x, Y: y}
	for i, f := range faces {
		a, b, c := pxy(pts[f.A]), pxy(pts[f.B]), pxy(pts[f.C])
		if geom.Orientation(a, b, q) >= 0 &&
			geom.Orientation(b, c, q) >= 0 &&
			geom.Orientation(c, a, q) >= 0 {
			return i
		}
	}
	return -1
}

// VerifyUpper checks the §4.3 output contract: every input point lies on
// or below the plane of every upper face... more precisely, every point is
// below (or on) the upper envelope: for the face above its xy-location,
// the point must not be above that face's plane, and no input point may be
// above any upper face's plane inside its projection.
func VerifyUpper(pts []geom.Point3, faces []Tri) error {
	for _, p := range pts {
		i := FaceAbove(pts, faces, p.X, p.Y)
		if i < 0 {
			continue // outside the hull's xy-shadow boundary only by fp-degeneracy
		}
		f := faces[i]
		a, b, c := pts[f.A], pts[f.B], pts[f.C]
		// Orient upward: projection CCW means Orientation3(a,b,c,·) > 0 is
		// above the plane.
		if geom.Orientation3(a, b, c, p) > 0 {
			return fmt.Errorf("hull3d: point %v above upper face (%d,%d,%d)", p, f.A, f.B, f.C)
		}
	}
	return nil
}
