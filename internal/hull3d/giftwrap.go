package hull3d

import (
	"fmt"

	"inplacehull/internal/geom"
)

// GiftWrap computes the full hull by 3-d gift wrapping: O(n) work per
// facet, O(n·h) total — the output-sensitive sequential comparator for
// experiment E4's small-h regime (the 3-d analogue of Jarvis's march the
// paper contrasts with Edelsbrunner–Shi). Requires points in general
// position (no 4 coplanar on the hull boundary).
func GiftWrap(pts []geom.Point3) (Hull, error) {
	n := len(pts)
	if n < 4 {
		return Hull{}, fmt.Errorf("hull3d: need at least 4 points")
	}
	first, err := firstFace(pts)
	if err != nil {
		return Hull{}, err
	}
	type edge struct{ u, v int }
	done := map[edge]bool{}
	var queue []edge
	h := Hull{Pts: pts}
	emit := func(t Tri) {
		h.Faces = append(h.Faces, t)
		for _, e := range []edge{{t.A, t.B}, {t.B, t.C}, {t.C, t.A}} {
			done[e] = true
			if !done[edge{e.v, e.u}] {
				queue = append(queue, edge{e.v, e.u})
			}
		}
	}
	emit(first)
	for len(queue) > 0 {
		e := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		if done[e] {
			continue
		}
		w := pivot(pts, e.u, e.v)
		if w < 0 {
			return Hull{}, fmt.Errorf("hull3d: pivot failed on edge (%d,%d)", e.u, e.v)
		}
		emit(Tri{A: e.u, B: e.v, C: w})
		if len(h.Faces) > 4*n {
			return Hull{}, fmt.Errorf("hull3d: gift wrapping runaway (degenerate input?)")
		}
	}
	return h, nil
}

// pivot returns the point w such that the face (u, v, w) has every other
// point on its non-positive side: one linear pass with exact orientation
// updates.
func pivot(pts []geom.Point3, u, v int) int {
	w := -1
	for i := range pts {
		if i == u || i == v {
			continue
		}
		if w < 0 {
			w = i
			continue
		}
		if geom.Orientation3(pts[u], pts[v], pts[w], pts[i]) > 0 {
			w = i
		}
	}
	return w
}

// firstFace finds one hull facet to seed the wrap: start from the
// lexicographically smallest point p0 (a hull vertex), take its neighbor on
// the 2-d hull of the xy-projection (the vertical supporting plane through
// both contains a hull edge in general position), then pivot the plane
// around that edge.
func firstFace(pts []geom.Point3) (Tri, error) {
	p0 := 0
	for i, p := range pts {
		if lex3Less(p, pts[p0]) {
			p0 = i
		}
	}
	// Projected-hull neighbor of p0: the point minimizing the CCW angle in
	// the xy-projection (ties in projection broken by the 3-d pivot below,
	// which re-checks global support).
	p1 := -1
	for i := range pts {
		if i == p0 || pxy(pts[i]) == pxy(pts[p0]) {
			continue
		}
		if p1 < 0 {
			p1 = i
			continue
		}
		o := geom.Orientation(pxy(pts[p0]), pxy(pts[p1]), pxy(pts[i]))
		if o < 0 {
			p1 = i
		}
	}
	if p1 < 0 {
		// All points share the same xy-projection: degenerate column.
		return Tri{}, fmt.Errorf("hull3d: all points on one vertical line")
	}
	w := pivot(pts, p0, p1)
	if w < 0 {
		return Tri{}, fmt.Errorf("hull3d: no seed face")
	}
	t := Tri{A: p0, B: p1, C: w}
	// Ensure outward orientation: no point on the positive side.
	for i := range pts {
		if geom.Orientation3(pts[t.A], pts[t.B], pts[t.C], pts[i]) > 0 {
			t.B, t.C = t.C, t.B
			break
		}
	}
	return t, nil
}

func lex3Less(a, b geom.Point3) bool {
	if a.X != b.X {
		return a.X < b.X
	}
	if a.Y != b.Y {
		return a.Y < b.Y
	}
	return a.Z < b.Z
}
