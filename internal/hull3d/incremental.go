// Package hull3d provides the three-dimensional convex hull substrate the
// 3-d algorithms of the paper need: a randomized incremental full-hull
// construction with conflict lists (the O(n log n) baseline, also standing
// in for the Reif–Sen fallback — see DESIGN.md), gift wrapping (the O(n·h)
// output-sensitive comparator), upper-hull facet extraction, and a
// verification oracle.
package hull3d

import (
	"fmt"

	"inplacehull/internal/geom"
	"inplacehull/internal/rng"
)

// Tri is a hull facet: indices into the input point slice, oriented so the
// outward normal follows the right-hand rule (Orientation3(A, B, C, inner)
// < 0 for interior points).
type Tri struct {
	A, B, C int
}

// Hull is a convex hull in three dimensions.
type Hull struct {
	Pts   []geom.Point3
	Faces []Tri
}

type face struct {
	v        [3]int
	dead     bool
	conflict []int // unprocessed points that see this face
}

// visible reports whether point p sees face f strictly from outside,
// evaluating the orientation through o (nil = exact).
func visible(o *geom.NoisyOracle, pts []geom.Point3, f *face, p int) bool {
	return o.Orientation3(pts[f.v[0]], pts[f.v[1]], pts[f.v[2]], pts[p]) > 0
}

// Incremental computes the full convex hull by randomized incremental
// insertion with conflict lists: expected O(n log n) for points in general
// position. Inputs where all points are coplanar yield an error (callers
// handle flat data with the 2-d algorithms).
func Incremental(rnd *rng.Stream, pts []geom.Point3) (Hull, error) {
	return IncrementalOracle(rnd, pts, nil)
}

// IncrementalOracle is Incremental with every orientation predicate
// evaluated through o — the noisy-resilient variant of the baseline. The
// structural degeneracy filters (coincidence, collinearity) stay exact:
// they compare stored coordinates, which the noisy-primitive model does
// not corrupt. Under noise the hull may be wrong; callers gate the output
// behind the exact verification oracle.
func IncrementalOracle(rnd *rng.Stream, pts []geom.Point3, o *geom.NoisyOracle) (Hull, error) {
	n := len(pts)
	if n < 4 {
		return Hull{}, fmt.Errorf("hull3d: need at least 4 points, have %d", n)
	}
	order := rnd.Perm(n)

	// Initial simplex: the first four affinely independent points of the
	// random order.
	i0 := order[0]
	i1 := -1
	for _, i := range order[1:] {
		if pts[i] != pts[i0] {
			i1 = i
			break
		}
	}
	if i1 < 0 {
		return Hull{}, fmt.Errorf("hull3d: all points coincide")
	}
	i2 := -1
	for _, i := range order {
		if i == i0 || i == i1 {
			continue
		}
		if !collinear3(pts[i0], pts[i1], pts[i]) {
			i2 = i
			break
		}
	}
	if i2 < 0 {
		return Hull{}, fmt.Errorf("hull3d: all points collinear")
	}
	i3 := -1
	for _, i := range order {
		if i == i0 || i == i1 || i == i2 {
			continue
		}
		if o.Orientation3(pts[i0], pts[i1], pts[i2], pts[i]) != 0 {
			i3 = i
			break
		}
	}
	if i3 < 0 {
		return Hull{}, fmt.Errorf("hull3d: all points coplanar")
	}

	// Orient the simplex: faces outward.
	if o.Orientation3(pts[i0], pts[i1], pts[i2], pts[i3]) > 0 {
		i1, i2 = i2, i1
	}
	// Now i3 is on the negative side of (i0, i1, i2): that face is outward.
	faces := []*face{
		{v: [3]int{i0, i1, i2}},
		{v: [3]int{i0, i3, i1}},
		{v: [3]int{i1, i3, i2}},
		{v: [3]int{i2, i3, i0}},
	}
	inSimplex := map[int]bool{i0: true, i1: true, i2: true, i3: true}

	// Bipartite conflict lists (de Berg et al.): every unprocessed point
	// is listed on *every* face it currently sees, and keeps its own list
	// of those faces. A point with no live listed face is interior — the
	// standard lemma guarantees any point seeing a new cone face saw one
	// of the two faces incident on its horizon edge before the update.
	processed := make([]bool, n)
	for i := range inSimplex {
		processed[i] = true
	}
	pt2faces := make([][]*face, n)
	link := func(p int, f *face) {
		f.conflict = append(f.conflict, p)
		pt2faces[p] = append(pt2faces[p], f)
	}
	for _, p := range order {
		if processed[p] {
			continue
		}
		for _, f := range faces {
			if visible(o, pts, f, p) {
				link(p, f)
			}
		}
	}

	// Directed-edge adjacency: edge (u, v) of a face maps to that face;
	// the neighbor across is edgeFace[(v, u)].
	type edge struct{ u, v int }
	edgeFace := make(map[edge]*face)
	register := func(f *face) {
		edgeFace[edge{f.v[0], f.v[1]}] = f
		edgeFace[edge{f.v[1], f.v[2]}] = f
		edgeFace[edge{f.v[2], f.v[0]}] = f
	}
	unregister := func(f *face) {
		delete(edgeFace, edge{f.v[0], f.v[1]})
		delete(edgeFace, edge{f.v[1], f.v[2]})
		delete(edgeFace, edge{f.v[2], f.v[0]})
	}
	for _, f := range faces {
		register(f)
	}

	for _, p := range order {
		if processed[p] {
			continue
		}
		processed[p] = true
		var start *face
		for _, f := range pt2faces[p] {
			if !f.dead {
				start = f
				break
			}
		}
		pt2faces[p] = nil
		if start == nil {
			continue // interior
		}
		// BFS over adjacent visible faces. visibleList preserves the
		// deterministic BFS discovery order; iterating the membership map
		// instead would randomize the horizon (and hence face) order run to
		// run, breaking the exact reproducibility the fault-injection soak
		// relies on.
		visibleSet := map[*face]bool{start: true}
		visibleList := []*face{start}
		for qi := 0; qi < len(visibleList); qi++ {
			f := visibleList[qi]
			for e := 0; e < 3; e++ {
				u, v := f.v[e], f.v[(e+1)%3]
				g := edgeFace[edge{v, u}]
				if g == nil || g.dead || visibleSet[g] {
					continue
				}
				if visible(o, pts, g, p) {
					visibleSet[g] = true
					visibleList = append(visibleList, g)
				}
			}
		}
		// Horizon: directed edges of visible faces whose across-neighbor
		// survives; remember that neighbor for conflict inheritance.
		type hEdge struct {
			u, v     int
			dead, ok *face // the dying face on the edge and its survivor
		}
		var horizon []hEdge
		for _, f := range visibleList {
			for e := 0; e < 3; e++ {
				u, v := f.v[e], f.v[(e+1)%3]
				g := edgeFace[edge{v, u}]
				if g == nil || !visibleSet[g] {
					horizon = append(horizon, hEdge{u: u, v: v, dead: f, ok: g})
				}
			}
		}
		// Kill visible faces (their conflict lists stay readable for the
		// inheritance step below, then are released).
		for _, f := range visibleList {
			f.dead = true
			unregister(f)
		}
		// New cone: one face per horizon edge, keeping the edge direction
		// so the across-neighbor relationship with the survivor holds.
		// Conflicts of the new face come from the union of the conflicts
		// of the two faces incident on its horizon edge.
		for _, he := range horizon {
			nf := &face{v: [3]int{he.u, he.v, p}}
			register(nf)
			faces = append(faces, nf)
			seen := map[int]bool{}
			inherit := func(src *face) {
				if src == nil {
					return
				}
				for _, q := range src.conflict {
					if q == p || processed[q] || seen[q] {
						continue
					}
					seen[q] = true
					if visible(o, pts, nf, q) {
						link(q, nf)
					}
				}
			}
			inherit(he.dead)
			inherit(he.ok)
		}
		for _, f := range visibleList {
			f.conflict = nil
		}
	}

	h := Hull{Pts: pts}
	for _, f := range faces {
		if !f.dead {
			h.Faces = append(h.Faces, Tri{A: f.v[0], B: f.v[1], C: f.v[2]})
		}
	}
	return h, nil
}

func collinear3(a, b, c geom.Point3) bool {
	cr := b.Sub(a).Cross(c.Sub(a))
	if cr.X != 0 || cr.Y != 0 || cr.Z != 0 {
		// Fast accept; confirm robustly only when the cross product is
		// suspiciously tiny relative to the inputs.
		const eps = 1e-18
		if cr.Dot(cr) > eps {
			return false
		}
	}
	// Exact confirmation via three projections.
	ab := geom.Orientation(geom.Point{X: a.X, Y: a.Y}, geom.Point{X: b.X, Y: b.Y}, geom.Point{X: c.X, Y: c.Y})
	ac := geom.Orientation(geom.Point{X: a.X, Y: a.Z}, geom.Point{X: b.X, Y: b.Z}, geom.Point{X: c.X, Y: c.Z})
	bc := geom.Orientation(geom.Point{X: a.Y, Y: a.Z}, geom.Point{X: b.Y, Y: b.Z}, geom.Point{X: c.Y, Y: c.Z})
	return ab == 0 && ac == 0 && bc == 0
}

// Vertices returns the sorted set of distinct vertex indices on the hull.
func (h Hull) Vertices() []int {
	seen := map[int]bool{}
	var out []int
	for _, f := range h.Faces {
		for _, v := range []int{f.A, f.B, f.C} {
			if !seen[v] {
				seen[v] = true
				out = append(out, v)
			}
		}
	}
	sortInts(out)
	return out
}

func sortInts(xs []int) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}

// Verify checks the hull invariants exactly: every input point lies on or
// inside every face's supporting plane, and every face edge is shared with
// exactly one other face with opposite direction (closed 2-manifold).
func (h Hull) Verify() error {
	if len(h.Faces) < 4 {
		return fmt.Errorf("hull3d: only %d faces", len(h.Faces))
	}
	for _, f := range h.Faces {
		a, b, c := h.Pts[f.A], h.Pts[f.B], h.Pts[f.C]
		for i, p := range h.Pts {
			if geom.Orientation3(a, b, c, p) > 0 {
				return fmt.Errorf("hull3d: point %d (%v) outside face (%d,%d,%d)", i, p, f.A, f.B, f.C)
			}
		}
	}
	type edge struct{ u, v int }
	count := map[edge]int{}
	for _, f := range h.Faces {
		count[edge{f.A, f.B}]++
		count[edge{f.B, f.C}]++
		count[edge{f.C, f.A}]++
	}
	for e, c := range count {
		if c != 1 {
			return fmt.Errorf("hull3d: directed edge (%d,%d) appears %d times", e.u, e.v, c)
		}
		if count[edge{e.v, e.u}] != 1 {
			return fmt.Errorf("hull3d: edge (%d,%d) has no twin", e.u, e.v)
		}
	}
	// Euler characteristic for a triangulated sphere: V − E + F = 2.
	v := len(h.Vertices())
	eCnt := len(count) / 2
	fCnt := len(h.Faces)
	if v-eCnt+fCnt != 2 {
		return fmt.Errorf("hull3d: Euler characteristic %d", v-eCnt+fCnt)
	}
	return nil
}
