package obs

import (
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
	"sync"
	"text/tabwriter"
)

// Metrics aggregates finished Collectors into Prometheus text-exposition
// format (hand-rolled; the repo has no client library and needs none for
// counters). One Metrics instance outlives many runs: cmd/hullbench feeds
// every benchmark run into it and serves it at -metrics ADDR.
type Metrics struct {
	mu     sync.Mutex
	runs   map[string]int64            // algo → completed runs
	phases map[string]map[string]Phase // algo → phase name → summed account
	notes  map[string]map[string]int64 // event → detail → count
	serve  map[string]int64            // serving-layer counters (internal/serve)
	tiers  map[string]int64            // serving-layer answers per ladder tier
	shards map[string]map[string]int64 // scatter-gather peer → event → count
	stream map[string]int64            // streaming-subsystem counters (internal/stream)
}

// NewMetrics returns an empty aggregator.
func NewMetrics() *Metrics { return &Metrics{} }

// Observe folds one finished run's collector into the aggregate under the
// given algorithm label ("presorted", "logstar", "hull2d", "hull3d", …).
func (x *Metrics) Observe(algo string, c *Collector) {
	if x == nil || c == nil {
		return
	}
	x.mu.Lock()
	defer x.mu.Unlock()
	if x.runs == nil {
		x.runs = make(map[string]int64)
		x.phases = make(map[string]map[string]Phase)
		x.notes = make(map[string]map[string]int64)
	}
	x.runs[algo]++
	byPhase := x.phases[algo]
	if byPhase == nil {
		byPhase = make(map[string]Phase)
		x.phases[algo] = byPhase
	}
	for _, ph := range c.Phases() {
		acc := byPhase[ph.Name]
		acc.Name = ph.Name
		acc.Ref = ph.Ref
		acc.Spans += ph.Spans
		acc.Steps += ph.Steps
		acc.Work += ph.Work
		acc.Wall += ph.Wall
		if ph.PeakProcs > acc.PeakProcs {
			acc.PeakProcs = ph.PeakProcs
		}
		byPhase[ph.Name] = acc
	}
	for event, m := range c.Notes() {
		if x.notes[event] == nil {
			x.notes[event] = make(map[string]int64)
		}
		for detail, n := range m {
			x.notes[event][detail] += n
		}
	}
}

// serveHelp documents the serving-layer counters internal/serve feeds in;
// unknown names fall back to a generic line so the exporter never drops a
// counter it has no prose for.
var serveHelp = map[string]string{
	"queries_total":         "Hull queries received by the serving layer (before admission).",
	"admitted_total":        "Queries admitted past the bounded queue.",
	"shed_total":            "Queries shed at admission with a typed overload error.",
	"deadline_shed_total":   "Queries shed unexecuted because their deadline had already passed.",
	"completed_total":       "Queries answered with a hull result.",
	"errors_total":          "Queries answered with a typed non-overload error.",
	"cache_hits_total":      "Result-cache hits (served without touching a machine).",
	"cache_misses_total":    "Result-cache misses.",
	"cache_evictions_total": "Result-cache LRU evictions.",
	"batches_total":         "Machine dispatches executed by the micro-batcher.",
	"batched_queries_total": "Queries executed inside those dispatches (total/batches = mean batch size).",

	// Scatter-gather coordinator counters (internal/shard).
	"shard_queries_total":          "Scatter-gather hull queries started by the coordinator.",
	"shard_attempts_total":         "Shard attempts launched (first tries, retries and hedges).",
	"shard_scatter_retries_total":  "Shard attempts beyond the first (retry/re-scatter rungs of the ladder).",
	"shard_hedges_total":           "Hedged shard requests launched against stragglers.",
	"shard_breaker_opens_total":    "Per-peer circuit-breaker open transitions.",
	"shard_corrupt_detected_total": "Shard responses rejected by merge-integrity verification.",
	"shard_exact_total":            "Scatter-gather queries answered with the exact global hull.",
	"shard_partial_total":          "Scatter-gather queries answered partially (typed PartialHull).",
	"shard_failed_total":           "Scatter-gather queries that failed below the partial-coverage floor.",
	"shard_latency_us_total":       "Summed per-shard attempt latency in microseconds (successful attempts).",

	// Request-tracing counters (internal/serve).
	"request_id_propagated_total": "HTTP queries that arrived with a caller-supplied X-Request-ID.",
	"request_id_generated_total":  "HTTP queries for which the server minted an X-Request-ID.",
}

// streamHelp documents the streaming-subsystem counters internal/stream
// feeds in; unknown names fall back to a generic line.
var streamHelp = map[string]string{
	"appends_total":        "Append mutations committed on streaming datasets.",
	"deletes_total":        "Delete mutations committed on streaming datasets.",
	"points_added_total":   "Points added across committed append mutations.",
	"points_removed_total": "Points removed across committed delete mutations.",
	"splices_total":        "Appended points absorbed by tangent-splice chain insertion.",
	"repairs_total":        "Hull-vertex deletions repaired by a bounded strip rebuild.",
	"rebuilds_total":       "Full hull rebuilds (churn threshold, injected fallback, or 3-d replay).",
	"fallbacks_total":      "Mutations that abandoned the incremental path for a full rebuild.",
	"rollbacks_total":      "Mutations rolled back atomically after a typed rebuild failure.",
	"deltas_total":         "Hull-delta notifications fanned out to subscribers.",
	"lagged_total":         "Subscriber notifications dropped because the subscriber buffer was full.",
}

// ShardEventAdd counts one scatter-gather event for a peer ("attempt",
// "ok", "fail", "timeout", "hedge", "corrupt", "breaker_open"). Exports as
// inplacehull_shard_events_total{peer="…",event="…"} — the per-peer twin
// of the flat shard_* counters, so a dashboard can tell WHICH peer is
// slow, lying, or broken.
func (x *Metrics) ShardEventAdd(peer, event string) {
	if x == nil {
		return
	}
	x.mu.Lock()
	if x.shards == nil {
		x.shards = make(map[string]map[string]int64)
	}
	if x.shards[peer] == nil {
		x.shards[peer] = make(map[string]int64)
	}
	x.shards[peer][event]++
	x.mu.Unlock()
}

// ShardEvent reads one per-peer event counter (0 if never incremented).
func (x *Metrics) ShardEvent(peer, event string) int64 {
	if x == nil {
		return 0
	}
	x.mu.Lock()
	defer x.mu.Unlock()
	return x.shards[peer][event]
}

// ServeCounterAdd accumulates a serving-layer counter by name; it is the
// hook internal/serve increments on its hot paths. Counters export as
// inplacehull_serve_<name>.
func (x *Metrics) ServeCounterAdd(name string, v int64) {
	if x == nil {
		return
	}
	x.mu.Lock()
	if x.serve == nil {
		x.serve = make(map[string]int64)
	}
	x.serve[name] += v
	x.mu.Unlock()
}

// ServeCounter reads one serving-layer counter (0 if never incremented) —
// the assertion surface of the serve smoke tests.
func (x *Metrics) ServeCounter(name string) int64 {
	if x == nil {
		return 0
	}
	x.mu.Lock()
	defer x.mu.Unlock()
	return x.serve[name]
}

// StreamCounterAdd accumulates a streaming-subsystem counter by name; it
// is the hook internal/stream increments on its mutation paths. Counters
// export as inplacehull_stream_<name>.
func (x *Metrics) StreamCounterAdd(name string, v int64) {
	if x == nil {
		return
	}
	x.mu.Lock()
	if x.stream == nil {
		x.stream = make(map[string]int64)
	}
	x.stream[name] += v
	x.mu.Unlock()
}

// StreamCounter reads one streaming-subsystem counter (0 if never
// incremented) — the assertion surface of the stream soak tests.
func (x *Metrics) StreamCounter(name string) int64 {
	if x == nil {
		return 0
	}
	x.mu.Lock()
	defer x.mu.Unlock()
	return x.stream[name]
}

// ServeTierAdd counts one served answer per degradation-ladder tier
// ("randomized", "noisy", "approximate", "sequential", "degenerate",
// "cached"). Exports as inplacehull_serve_tier_total{tier="…"}.
func (x *Metrics) ServeTierAdd(tier string) {
	if x == nil {
		return
	}
	x.mu.Lock()
	if x.tiers == nil {
		x.tiers = make(map[string]int64)
	}
	x.tiers[tier]++
	x.mu.Unlock()
}

// ServeTier reads one tier counter (0 if never incremented).
func (x *Metrics) ServeTier(tier string) int64 {
	if x == nil {
		return 0
	}
	x.mu.Lock()
	defer x.mu.Unlock()
	return x.tiers[tier]
}

// escapeLabel escapes a Prometheus label value.
func escapeLabel(v string) string {
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}

// WritePrometheus writes the aggregate in text exposition format, with
// series sorted for deterministic output.
func (x *Metrics) WritePrometheus(w io.Writer) error {
	x.mu.Lock()
	defer x.mu.Unlock()

	var b strings.Builder
	algos := make([]string, 0, len(x.runs))
	for a := range x.runs {
		algos = append(algos, a)
	}
	sort.Strings(algos)

	b.WriteString("# HELP inplacehull_runs_total Completed observed runs per algorithm.\n")
	b.WriteString("# TYPE inplacehull_runs_total counter\n")
	for _, a := range algos {
		fmt.Fprintf(&b, "inplacehull_runs_total{algo=%q} %d\n", escapeLabel(a), x.runs[a])
	}

	type series struct{ help, typ, suffix string }
	cols := []series{
		{"PRAM steps attributed to each paper phase.", "counter", "phase_steps_total"},
		{"PRAM work attributed to each paper phase; sums to machine work exactly.", "counter", "phase_work_total"},
		{"Closed spans per paper phase.", "counter", "phase_spans_total"},
		{"Host wall-clock seconds attributed to each paper phase.", "counter", "phase_wall_seconds_total"},
		{"Largest simultaneous processor count seen in any one phase step.", "gauge", "phase_peak_processors"},
	}
	for _, col := range cols {
		fmt.Fprintf(&b, "# HELP inplacehull_%s %s\n", col.suffix, col.help)
		fmt.Fprintf(&b, "# TYPE inplacehull_%s %s\n", col.suffix, col.typ)
		for _, a := range algos {
			names := make([]string, 0, len(x.phases[a]))
			for n := range x.phases[a] {
				names = append(names, n)
			}
			sort.Strings(names)
			for _, n := range names {
				ph := x.phases[a][n]
				label := fmt.Sprintf("{algo=%q,phase=%q}", escapeLabel(a), escapeLabel(n))
				switch col.suffix {
				case "phase_steps_total":
					fmt.Fprintf(&b, "inplacehull_%s%s %d\n", col.suffix, label, ph.Steps)
				case "phase_work_total":
					fmt.Fprintf(&b, "inplacehull_%s%s %d\n", col.suffix, label, ph.Work)
				case "phase_spans_total":
					fmt.Fprintf(&b, "inplacehull_%s%s %d\n", col.suffix, label, ph.Spans)
				case "phase_wall_seconds_total":
					fmt.Fprintf(&b, "inplacehull_%s%s %g\n", col.suffix, label, ph.Wall.Seconds())
				case "phase_peak_processors":
					fmt.Fprintf(&b, "inplacehull_%s%s %d\n", col.suffix, label, ph.PeakProcs)
				}
			}
		}
	}

	b.WriteString("# HELP inplacehull_events_total Supervisor annotations (retry, ladder, tier outcomes).\n")
	b.WriteString("# TYPE inplacehull_events_total counter\n")
	events := make([]string, 0, len(x.notes))
	for e := range x.notes {
		events = append(events, e)
	}
	sort.Strings(events)
	for _, e := range events {
		details := make([]string, 0, len(x.notes[e]))
		for d := range x.notes[e] {
			details = append(details, d)
		}
		sort.Strings(details)
		for _, d := range details {
			fmt.Fprintf(&b, "inplacehull_events_total{event=%q,detail=%q} %d\n",
				escapeLabel(e), escapeLabel(d), x.notes[e][d])
		}
	}

	if len(x.tiers) > 0 {
		b.WriteString("# HELP inplacehull_serve_tier_total Served hull answers per degradation-ladder tier.\n")
		b.WriteString("# TYPE inplacehull_serve_tier_total counter\n")
		tierNames := make([]string, 0, len(x.tiers))
		for t := range x.tiers {
			tierNames = append(tierNames, t)
		}
		sort.Strings(tierNames)
		for _, t := range tierNames {
			fmt.Fprintf(&b, "inplacehull_serve_tier_total{tier=%q} %d\n", escapeLabel(t), x.tiers[t])
		}
	}

	if len(x.shards) > 0 {
		b.WriteString("# HELP inplacehull_shard_events_total Scatter-gather events per shard peer.\n")
		b.WriteString("# TYPE inplacehull_shard_events_total counter\n")
		peers := make([]string, 0, len(x.shards))
		for p := range x.shards {
			peers = append(peers, p)
		}
		sort.Strings(peers)
		for _, p := range peers {
			events := make([]string, 0, len(x.shards[p]))
			for e := range x.shards[p] {
				events = append(events, e)
			}
			sort.Strings(events)
			for _, e := range events {
				fmt.Fprintf(&b, "inplacehull_shard_events_total{peer=%q,event=%q} %d\n",
					escapeLabel(p), escapeLabel(e), x.shards[p][e])
			}
		}
	}

	serveNames := make([]string, 0, len(x.serve))
	for n := range x.serve {
		serveNames = append(serveNames, n)
	}
	sort.Strings(serveNames)
	for _, n := range serveNames {
		help, ok := serveHelp[n]
		if !ok {
			help = "Serving-layer counter " + n + "."
		}
		fmt.Fprintf(&b, "# HELP inplacehull_serve_%s %s\n", n, help)
		fmt.Fprintf(&b, "# TYPE inplacehull_serve_%s counter\n", n)
		fmt.Fprintf(&b, "inplacehull_serve_%s %d\n", n, x.serve[n])
	}

	streamNames := make([]string, 0, len(x.stream))
	for n := range x.stream {
		streamNames = append(streamNames, n)
	}
	sort.Strings(streamNames)
	for _, n := range streamNames {
		help, ok := streamHelp[n]
		if !ok {
			help = "Streaming-subsystem counter " + n + "."
		}
		fmt.Fprintf(&b, "# HELP inplacehull_stream_%s %s\n", n, help)
		fmt.Fprintf(&b, "# TYPE inplacehull_stream_%s counter\n", n)
		fmt.Fprintf(&b, "inplacehull_stream_%s %d\n", n, x.stream[n])
	}

	_, err := io.WriteString(w, b.String())
	return err
}

// ServeHTTP serves the exposition text, making *Metrics an http.Handler
// for cmd/hullbench -metrics ADDR.
func (x *Metrics) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = x.WritePrometheus(w)
}

// WriteTable renders the aggregate per-phase account as an aligned text
// table, one block per algorithm — the human-readable twin of the
// Prometheus exposition, printed by cmd/hullbench after a -metrics run.
func (x *Metrics) WriteTable(w io.Writer) {
	x.mu.Lock()
	defer x.mu.Unlock()
	algos := make([]string, 0, len(x.runs))
	for a := range x.runs {
		algos = append(algos, a)
	}
	sort.Strings(algos)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	for _, a := range algos {
		fmt.Fprintf(tw, "\n%s (%d runs)\n", a, x.runs[a])
		fmt.Fprintln(tw, "  phase\tref\tspans\tsteps\twork\tpeak\twall")
		names := make([]string, 0, len(x.phases[a]))
		for n := range x.phases[a] {
			names = append(names, n)
		}
		sort.Strings(names)
		for _, n := range names {
			ph := x.phases[a][n]
			fmt.Fprintf(tw, "  %s\t%s\t%d\t%d\t%d\t%d\t%s\n",
				ph.Name, ph.Ref, ph.Spans, ph.Steps, ph.Work, ph.PeakProcs, ph.Wall.Round(1000))
		}
	}
	tw.Flush()
}
