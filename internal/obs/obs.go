// Package obs is the phase-attributed observability layer. The paper's
// theorems are claims about *where* time and work go — Lemma 4.1/4.2 bound
// the bridge-LP iterations, Lemma 5.1/6.1 bound subproblem decay, Lemma 7
// bounds allocation overhead — but the machine's aggregate Time/Work
// counters cannot attribute cost to the sub-procedure that incurred it.
// This package can:
//
//   - Span opens a named region around a paper-named phase (vote,
//     bridge-lp, sweep, …); the algorithms in internal/presorted and
//     internal/unsorted are annotated with ~15 such spans, each keyed to
//     its lemma in the Meta registry.
//   - Collector is a pram.Sink that attributes every unit of PRAM work to
//     the innermost open span, exactly: the per-phase Work column always
//     sums to Machine.Work (experiment E16 asserts this on every run).
//     Spans opened on Concurrent sub-machines fold into the parent's tree.
//   - Trace is a pram.Sink producing Chrome trace-event JSON
//     (chrome://tracing, Perfetto) with wall-clock span timing and PRAM
//     counters attached to every span boundary.
//   - Metrics aggregates finished Collectors into a Prometheus
//     text-exposition endpoint (cmd/hullbench -metrics).
//
// When no sink is installed the whole layer costs one nil-check branch per
// machine event — the ≤5% disabled-path contract benchmarked in
// internal/pram and recorded by E16.
package obs

import "inplacehull/internal/pram"

// Observer is the event-consumer contract, re-exported at the root package
// for RunConfig.Observer. Collector, Trace and Multi implement it.
type Observer = pram.Sink

// noop is the shared closed-over nothing returned on the disabled path, so
// an un-observed Span call allocates nothing.
var noop = func() {}

// Span opens the named phase region on m and returns the closure that
// closes it; idiomatic use is
//
//	defer obs.Span(m, "bridge-lp")()
//
// around the phase, or end := obs.Span(...) … end() when the region is not
// function-shaped. Spans nest; a span opened on a Concurrent sub-machine is
// folded into the parent machine's span tree by the Collector. With no sink
// installed the call returns a shared no-op without allocating.
func Span(m *pram.Machine, name string) func() {
	if m.Sink() == nil {
		return noop
	}
	m.SpanOpen(name)
	return func() { m.SpanClose(name) }
}

// Meta describes one span name: the paper reference (DESIGN.md §1 lemma
// index) it is keyed to and a one-line description. Exporters attach it to
// rendered spans; the E16 tables print the Ref column from it.
type Meta struct {
	Ref  string // lemma/section in the paper, e.g. "Cor 3.1"
	Desc string
}

// Untracked is the phase name under which the Collector reports work that
// was executed outside every span (entry validation, assembly glue).
const Untracked = "(untracked)"

// Registry maps every span name the algorithms open to its paper
// reference. Span callers are not required to register — an unknown name
// simply renders with an empty Ref — but all ~15 algorithm phases are
// listed here so tables and traces read like the paper.
var Registry = map[string]Meta{
	// §4.1 unsorted 2-d (Theorem 5).
	"vote":          {Ref: "Cor 3.1", Desc: "random splitter vote, doubling escalation"},
	"bridge-lp":     {Ref: "Lemma 4.1/4.2", Desc: "in-place batched bridge finding (§3.3)"},
	"sweep":         {Ref: "§2.3", Desc: "failure sweeping of timed-out subproblems"},
	"renumber":      {Ref: "§4.1 step 4", Desc: "kill points under the bridge, renumber 2j−1/2j"},
	"phase-compact": {Ref: "§4.1 step 3", Desc: "phase-end problem compaction and l-threshold check"},
	"fallback-sort": {Ref: "§4.1 step 3", Desc: "O(n log n) fallback: radix sort + segmented hull"},
	// §4.3 unsorted 3-d (Theorem 6).
	"facet-lp":     {Ref: "Lemma 6.1", Desc: "in-place batched facet finding (§3.3, d=3)"},
	"divide":       {Ref: "§4.3 step 3", Desc: "silhouette division: sheared 2-d subcalls"},
	"fallback-seq": {Ref: "§4.3 step 4", Desc: "Reif–Sen substitute: sequential incremental hulls"},
	// §2.2 pre-sorted constant time (Lemma 2.5).
	"tree-lp":      {Ref: "Lemma 2.5", Desc: "one batch of bridge LPs over the node tree"},
	"canonicalize": {Ref: "§2.2", Desc: "extend tied bridges to extreme on-line points"},
	"coverage":     {Ref: "§2.2", Desc: "ancestor coverage filtering (OR per node)"},
	"locate":       {Ref: "§2.2", Desc: "per-leaf lowest uncovered ancestor bridge"},
	// §2.5 log* (Theorem 2) and §2.6/§5 allocation.
	"groups": {Ref: "§2.5", Desc: "concurrent recursion on ⌈log² n⌉-point groups"},
	"merge":  {Ref: "Lemma 2.6", Desc: "point-hull-invariant constant-time merge"},
	"alloc":  {Ref: "Lemma 7", Desc: "Matias–Vishkin schedule of the recorded profile"},
	// §3.3 inner iterations (opened by internal/lp per solve round).
	"lp-iter": {Ref: "Lemma 4.2", Desc: "one sample/solve/survive round of the bridge LP"},
	// Native (wall-time) backend phases: spans carry elapsed time, charges
	// carry item counts with steps == 0 (internal/native).
	"native-sort":   {Ref: "native", Desc: "parallel merge sort + dedupe of the input copy"},
	"native-chain":  {Ref: "native", Desc: "divide-and-conquer monotone chain scan"},
	"native-locate": {Ref: "native", Desc: "parallel covering-edge binary search"},
	"native-caps":   {Ref: "native", Desc: "incremental 3-d hull lifted to caps, oracle-checked"},
	// Streaming mutation phases (internal/stream): wall-time spans, charges
	// carry touched-point counts.
	"stream-splice":  {Ref: "stream", Desc: "tangent-splice chain insertion of appended points"},
	"stream-repair":  {Ref: "stream", Desc: "bounded strip repair after a hull-vertex deletion"},
	"stream-rebuild": {Ref: "stream", Desc: "full native chain rebuild past the churn threshold"},
	"stream-caps":    {Ref: "stream", Desc: "3-d candidate replay through the incremental builder"},
	"stream-delta":   {Ref: "stream", Desc: "hull diff, version commit and subscriber notification"},
}

// Ref returns the paper reference of a span name ("" if unregistered).
func Ref(name string) string { return Registry[name].Ref }
