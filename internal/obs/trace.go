package obs

import (
	"encoding/json"
	"io"
	"sync"
	"time"

	"inplacehull/internal/pram"
)

// traceEvent is one record of the Chrome trace-event format (the JSON
// array flavour; see chrome://tracing or ui.perfetto.dev). ph is "B"/"E"
// for duration begin/end and "i" for instants; ts is microseconds.
type traceEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	S    string         `json:"s,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

// Trace is a pram.Sink that records a Chrome trace-event timeline: one
// duration slice per span (with the machine's PRAM counters attached to
// both boundaries), one slice per Concurrent sub-machine region, and one
// instant per NoteEvent. Serialize it with WriteTo; cmd/hulldemo -trace
// writes one per run.
type Trace struct {
	mu     sync.Mutex
	start  time.Time
	events []traceEvent
	now    func() time.Time // test seam; nil = time.Now
}

// NewTrace returns a trace whose timestamps are relative to now.
func NewTrace() *Trace { return &Trace{start: time.Now()} }

func (t *Trace) ts() float64 {
	now := time.Now()
	if t.now != nil {
		now = t.now()
	}
	if t.start.IsZero() {
		t.start = now
	}
	return float64(now.Sub(t.start)) / float64(time.Microsecond)
}

func (t *Trace) add(ev traceEvent) {
	ev.Pid = 1
	ev.Tid = 1
	t.events = append(t.events, ev)
}

func snapArgs(at pram.Snapshot) map[string]any {
	return map[string]any{
		"pram_time":  at.Time,
		"pram_work":  at.Work,
		"peak_procs": at.PeakProcessors,
		"peak_space": at.PeakSpace,
	}
}

// StepEvent implements pram.Sink. Individual steps are not rendered (a run
// has thousands); their cost is visible via the counters attached to the
// enclosing span boundaries.
func (t *Trace) StepEvent(k, live int64) {}

// ChargeEvent implements pram.Sink (not rendered, as StepEvent).
func (t *Trace) ChargeEvent(steps, work int64) {}

// SpanOpenEvent implements pram.Sink.
func (t *Trace) SpanOpenEvent(name string, at pram.Snapshot) {
	t.mu.Lock()
	args := snapArgs(at)
	if ref := Ref(name); ref != "" {
		args["ref"] = ref
	}
	t.add(traceEvent{Name: name, Cat: "phase", Ph: "B", Ts: t.ts(), Args: args})
	t.mu.Unlock()
}

// SpanCloseEvent implements pram.Sink.
func (t *Trace) SpanCloseEvent(name string, at pram.Snapshot) {
	t.mu.Lock()
	t.add(traceEvent{Name: name, Cat: "phase", Ph: "E", Ts: t.ts(), Args: snapArgs(at)})
	t.mu.Unlock()
}

// SubOpenEvent implements pram.Sink: a Concurrent sub-machine region.
func (t *Trace) SubOpenEvent(at pram.Snapshot) {
	t.mu.Lock()
	t.add(traceEvent{Name: "concurrent", Cat: "sub", Ph: "B", Ts: t.ts(), Args: snapArgs(at)})
	t.mu.Unlock()
}

// SubCloseEvent implements pram.Sink.
func (t *Trace) SubCloseEvent(sub pram.Snapshot) {
	t.mu.Lock()
	args := snapArgs(sub)
	args["sub_work"] = sub.Work
	t.add(traceEvent{Name: "concurrent", Cat: "sub", Ph: "E", Ts: t.ts(), Args: args})
	t.mu.Unlock()
}

// NoteEvent implements pram.Sink: one instant per annotation.
func (t *Trace) NoteEvent(event, detail string) {
	t.mu.Lock()
	t.add(traceEvent{
		Name: event, Cat: "note", Ph: "i", Ts: t.ts(), S: "t",
		Args: map[string]any{"detail": detail},
	})
	t.mu.Unlock()
}

// Len returns the number of recorded events.
func (t *Trace) Len() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.events)
}

// WriteTo serializes the timeline as Chrome trace-event JSON
// ({"traceEvents": [...]}; load it in chrome://tracing or Perfetto).
func (t *Trace) WriteTo(w io.Writer) (int64, error) {
	t.mu.Lock()
	events := make([]traceEvent, len(t.events))
	copy(events, t.events)
	t.mu.Unlock()
	cw := &countWriter{w: w}
	enc := json.NewEncoder(cw)
	enc.SetIndent("", " ")
	err := enc.Encode(map[string]any{
		"traceEvents":     events,
		"displayTimeUnit": "ms",
	})
	return cw.n, err
}

type countWriter struct {
	w io.Writer
	n int64
}

func (cw *countWriter) Write(p []byte) (int, error) {
	n, err := cw.w.Write(p)
	cw.n += int64(n)
	return n, err
}
