package obs

import (
	"strings"
	"testing"
)

// TestServeCountersExport: serving-layer counters accumulate and render as
// inplacehull_serve_* series with HELP/TYPE headers, sorted by name.
func TestServeCountersExport(t *testing.T) {
	x := NewMetrics()
	x.ServeCounterAdd("cache_hits_total", 3)
	x.ServeCounterAdd("cache_hits_total", 2)
	x.ServeCounterAdd("shed_total", 1)
	x.ServeCounterAdd("custom_thing", 7) // unknown name still exports

	if got := x.ServeCounter("cache_hits_total"); got != 5 {
		t.Fatalf("cache_hits_total = %d, want 5", got)
	}
	if got := x.ServeCounter("never_touched"); got != 0 {
		t.Fatalf("untouched counter = %d, want 0", got)
	}

	var b strings.Builder
	if err := x.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE inplacehull_serve_cache_hits_total counter",
		"inplacehull_serve_cache_hits_total 5",
		"inplacehull_serve_shed_total 1",
		"inplacehull_serve_custom_thing 7",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
	if strings.Index(out, "serve_cache_hits_total") > strings.Index(out, "serve_shed_total") {
		t.Fatal("serve counters not sorted by name")
	}

	// Nil receiver is a silent no-op (mirrors Observe's contract).
	var nilM *Metrics
	nilM.ServeCounterAdd("x", 1)
	if nilM.ServeCounter("x") != 0 {
		t.Fatal("nil Metrics should read 0")
	}
}
