package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"

	"inplacehull/internal/pram"
)

func TestCollectorAttributesToInnermostSpan(t *testing.T) {
	m := pram.New(pram.WithWorkers(1))
	c := NewCollector()
	m.SetSink(c)

	m.StepAll(5, func(p int) {}) // before any span → untracked

	end := Span(m, "vote")
	m.StepAll(10, func(p int) {})
	inner := Span(m, "bridge-lp")
	m.StepAll(3, func(p int) {})
	m.Charge(2, 8)
	inner()
	m.StepAll(1, func(p int) {})
	end()

	m.Charge(0, 4) // after all spans → untracked

	byName := map[string]Phase{}
	for _, ph := range c.Phases() {
		byName[ph.Name] = ph
	}
	if got := byName["vote"]; got.Work != 10+1 || got.Steps != 2 || got.Spans != 1 {
		t.Fatalf("vote = %+v, want work 11, steps 2, spans 1", got)
	}
	if got := byName["bridge-lp"]; got.Work != 3+8 || got.Steps != 1+2 || got.Spans != 1 {
		t.Fatalf("bridge-lp = %+v, want work 11, steps 3, spans 1", got)
	}
	if got := byName[Untracked]; got.Work != 5+4 {
		t.Fatalf("untracked = %+v, want work 9", got)
	}
	if got := byName["bridge-lp"].Ref; got != "Lemma 4.1/4.2" {
		t.Fatalf("bridge-lp ref = %q", got)
	}
	// The E16 invariant: phase works sum exactly to the machine's Work.
	var sum int64
	for _, ph := range c.Phases() {
		sum += ph.Work
	}
	if sum != m.Work() || c.Total().Work != m.Work() {
		t.Fatalf("Σphase work %d, Total %d, machine %d", sum, c.Total().Work, m.Work())
	}
	// Untracked renders last.
	phases := c.Phases()
	if phases[len(phases)-1].Name != Untracked {
		t.Fatalf("last phase = %q, want %q", phases[len(phases)-1].Name, Untracked)
	}
}

// TestCollectorWallTimeBackendEvents replays the native backend's event
// shape — spans with zero Snapshots and charges with steps == 0 —
// directly on a Collector. Regression guard for the phantom-bucket bug
// class: a zero-step charge must attribute its work without inventing
// steps or an implied processor count, and the exporters must render the
// resulting zero-step phases.
func TestCollectorWallTimeBackendEvents(t *testing.T) {
	c := NewCollector()
	c.SpanOpenEvent("native-chain", pram.Snapshot{})
	c.ChargeEvent(0, 4096)
	c.SpanCloseEvent("native-chain", pram.Snapshot{})
	c.ChargeEvent(0, 7) // outside every span → untracked

	byName := map[string]Phase{}
	for _, ph := range c.Phases() {
		byName[ph.Name] = ph
	}
	got := byName["native-chain"]
	if got.Work != 4096 || got.Steps != 0 || got.Spans != 1 {
		t.Fatalf("native-chain = %+v, want work 4096, steps 0, spans 1", got)
	}
	if got.PeakProcs != 0 {
		t.Fatalf("steps==0 charge implied PeakProcs %d, want 0 (phantom bucket)", got.PeakProcs)
	}
	if got.Ref != "native" {
		t.Fatalf("native-chain ref = %q, want registered", got.Ref)
	}
	if u := byName[Untracked]; u.Work != 7 || u.Steps != 0 {
		t.Fatalf("untracked = %+v, want work 7, steps 0", u)
	}
	if c.Total().Work != 4096+7 || c.Total().Steps != 0 {
		t.Fatalf("total = %+v", c.Total())
	}

	// Both exporters must digest zero-step phases.
	var table bytes.Buffer
	WriteTable(&table, c)
	if !strings.Contains(table.String(), "native-chain") {
		t.Fatalf("table:\n%s", table.String())
	}
	x := NewMetrics()
	x.Observe("native", c)
	var prom bytes.Buffer
	if err := x.WritePrometheus(&prom); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(prom.String(), `inplacehull_phase_work_total{algo="native",phase="native-chain"} 4096`) {
		t.Fatalf("exposition:\n%s", prom.String())
	}

	// The Trace sink must accept the same stream (charges are timeline
	// no-ops there).
	tr := NewTrace()
	tr.SpanOpenEvent("native-chain", pram.Snapshot{})
	tr.ChargeEvent(0, 4096)
	tr.SpanCloseEvent("native-chain", pram.Snapshot{})
	var buf bytes.Buffer
	if _, err := tr.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
}

func TestCollectorFoldsConcurrentSubMachines(t *testing.T) {
	m := pram.New(pram.WithWorkers(1))
	c := NewCollector()
	m.SetSink(c)

	end := Span(m, "divide")
	m.Concurrent(
		func(sub *pram.Machine) {
			// Work before the sub-machine opens its own span belongs to the
			// parent's "divide".
			sub.StepAll(4, func(p int) {})
			done := Span(sub, "sweep")
			sub.StepAll(6, func(p int) {})
			done()
		},
		func(sub *pram.Machine) {
			sub.Charge(1, 9)
		},
	)
	end()

	byName := map[string]Phase{}
	for _, ph := range c.Phases() {
		byName[ph.Name] = ph
	}
	if got := byName["divide"].Work; got != 4+9 {
		t.Fatalf("divide work = %d, want 13", got)
	}
	if got := byName["sweep"].Work; got != 6 {
		t.Fatalf("sweep work = %d, want 6", got)
	}
	if c.Total().Work != m.Work() {
		t.Fatalf("total %d != machine %d", c.Total().Work, m.Work())
	}
	if _, ok := byName[Untracked]; ok && byName[Untracked].Work != 0 {
		t.Fatalf("unexpected untracked work %d", byName[Untracked].Work)
	}
}

func TestCollectorNotesAndReset(t *testing.T) {
	m := pram.New(pram.WithWorkers(1))
	c := NewCollector()
	m.SetSink(c)
	m.Note("retry", "attempt")
	m.Note("retry", "attempt")
	m.Note("ladder", "exact-to-float")
	notes := c.Notes()
	if notes["retry"]["attempt"] != 2 || notes["ladder"]["exact-to-float"] != 1 {
		t.Fatalf("notes = %v", notes)
	}
	c.Reset()
	if len(c.Notes()) != 0 || c.Total().Work != 0 || len(c.Phases()) != 0 {
		t.Fatalf("reset did not clear state")
	}
}

func TestCollectorWallClockAttribution(t *testing.T) {
	c := NewCollector()
	tick := time.Unix(0, 0)
	c.now = func() time.Time {
		tick = tick.Add(10 * time.Millisecond)
		return tick
	}
	var snap pram.Snapshot
	c.SpanOpenEvent("vote", snap)  // t=10ms: starts clock
	c.SpanCloseEvent("vote", snap) // t=20ms: 10ms → vote
	c.SpanOpenEvent("sweep", snap) // t=30ms: 10ms → untracked
	c.SpanCloseEvent("sweep", snap)
	byName := map[string]Phase{}
	for _, ph := range c.Phases() {
		byName[ph.Name] = ph
	}
	if byName["vote"].Wall != 10*time.Millisecond {
		t.Fatalf("vote wall = %v", byName["vote"].Wall)
	}
	if byName[Untracked].Wall != 10*time.Millisecond {
		t.Fatalf("untracked wall = %v", byName[Untracked].Wall)
	}
}

func TestSpanNilSinkReturnsSharedNoop(t *testing.T) {
	m := pram.New(pram.WithWorkers(1))
	end := Span(m, "vote")
	end() // must not panic, and must not record anywhere
	n := testing.AllocsPerRun(100, func() {
		Span(m, "vote")()
	})
	if n != 0 {
		t.Fatalf("Span on nil sink allocates %v per call, want 0", n)
	}
}

func TestTraceWritesValidChromeJSON(t *testing.T) {
	m := pram.New(pram.WithWorkers(1))
	tr := NewTrace()
	m.SetSink(tr)
	end := Span(m, "vote")
	m.StepAll(4, func(p int) {})
	m.Concurrent(func(sub *pram.Machine) { sub.StepAll(2, func(p int) {}) })
	m.Note("retry", "attempt")
	end()

	var buf bytes.Buffer
	if _, err := tr.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, buf.String())
	}
	// Every B has a matching E, and the note instant is present.
	depth, instants := 0, 0
	for _, ev := range doc.TraceEvents {
		switch ev.Ph {
		case "B":
			depth++
		case "E":
			depth--
		case "i":
			instants++
		}
		if depth < 0 {
			t.Fatalf("unbalanced E before B: %v", doc.TraceEvents)
		}
	}
	if depth != 0 || instants != 1 {
		t.Fatalf("depth %d instants %d, want 0/1", depth, instants)
	}
	// The vote span carries its paper reference.
	found := false
	for _, ev := range doc.TraceEvents {
		if ev.Name == "vote" && ev.Ph == "B" {
			found = true
			if ev.Args["ref"] != "Cor 3.1" {
				t.Fatalf("vote args = %v", ev.Args)
			}
		}
	}
	if !found {
		t.Fatal("no vote begin event")
	}
}

func TestMetricsExposition(t *testing.T) {
	m := pram.New(pram.WithWorkers(1))
	c := NewCollector()
	m.SetSink(c)
	end := Span(m, "vote")
	m.StepAll(10, func(p int) {})
	end()
	m.Note("retry", "attempt")

	x := NewMetrics()
	x.Observe("hull2d", c)
	x.Observe("hull2d", c) // aggregation across runs

	var buf bytes.Buffer
	if err := x.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		`inplacehull_runs_total{algo="hull2d"} 2`,
		`inplacehull_phase_work_total{algo="hull2d",phase="vote"} 20`,
		`inplacehull_phase_spans_total{algo="hull2d",phase="vote"} 2`,
		`inplacehull_events_total{event="retry",detail="attempt"} 2`,
		"# TYPE inplacehull_phase_work_total counter",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestMultiFansOut(t *testing.T) {
	m := pram.New(pram.WithWorkers(1))
	c1, c2 := NewCollector(), NewCollector()
	m.SetSink(Multi(c1, c2))
	end := Span(m, "vote")
	m.StepAll(3, func(p int) {})
	end()
	if c1.Total().Work != 3 || c2.Total().Work != 3 {
		t.Fatalf("fan-out works = %d, %d", c1.Total().Work, c2.Total().Work)
	}
	if c1.SpanCount("vote") != 1 || c2.SpanCount("vote") != 1 {
		t.Fatalf("fan-out span counts = %d, %d", c1.SpanCount("vote"), c2.SpanCount("vote"))
	}
}

func TestWriteTable(t *testing.T) {
	m := pram.New(pram.WithWorkers(1))
	c := NewCollector()
	m.SetSink(c)
	end := Span(m, "vote")
	m.StepAll(3, func(p int) {})
	end()
	var buf bytes.Buffer
	WriteTable(&buf, c)
	out := buf.String()
	if !strings.Contains(out, "vote") || !strings.Contains(out, "Cor 3.1") || !strings.Contains(out, "(total)") {
		t.Fatalf("table:\n%s", out)
	}
}
