package obs

import (
	"sync"
	"time"

	"inplacehull/internal/pram"
)

// Phase is the aggregated account of one span name.
type Phase struct {
	Name string
	// Ref is the paper reference from the Registry ("" if unregistered).
	Ref string
	// Spans is the number of closed spans with this name.
	Spans int64
	// Steps and Work are the PRAM cost attributed to this phase: every
	// Step/Steps/Charge event lands on the innermost open span at the time
	// it fires, so ΣWork over phases (including Untracked) equals the
	// machine's Work counter exactly. Steps from Concurrent sub-machines
	// sum, whereas the machine charges their max — so ΣSteps may exceed
	// Machine.Time; Work has no such overlap.
	Steps int64
	Work  int64
	// PeakProcs is the largest simultaneous processor count observed in a
	// step (or implied by a charge) attributed to this phase.
	PeakProcs int64
	// Wall is the host wall-clock attributed to this phase (self time:
	// nested spans accrue to themselves).
	Wall time.Duration
}

// frame is one entry of the collector's region stack.
type frame struct {
	name string
	sub  bool // a Concurrent sub-machine boundary, not a named span
}

// Collector is a pram.Sink that attributes PRAM cost to phases. Install it
// with Machine.SetSink (or RunConfig.Observer at the root API), run, then
// read Phases/Notes. All methods are safe for the machine's host-side
// event stream; a zero Collector is ready to use.
type Collector struct {
	mu     sync.Mutex
	stack  []frame
	phases map[string]*Phase
	order  []string
	notes  map[string]map[string]int64
	total  Phase // event-accumulated totals across all phases

	lastMark time.Time
	started  bool
	now      func() time.Time // test seam; nil = time.Now
}

// NewCollector returns an empty collector.
func NewCollector() *Collector { return &Collector{} }

func (c *Collector) clock() time.Time {
	if c.now != nil {
		return c.now()
	}
	return time.Now()
}

// phase returns (creating if needed) the named phase record.
func (c *Collector) phase(name string) *Phase {
	if c.phases == nil {
		c.phases = make(map[string]*Phase)
	}
	ph, ok := c.phases[name]
	if !ok {
		ph = &Phase{Name: name, Ref: Ref(name)}
		c.phases[name] = ph
		c.order = append(c.order, name)
	}
	return ph
}

// current returns the attribution target: the innermost open span's name,
// looking through Concurrent sub-machine boundaries (work a sub-machine
// performs outside any of its own spans belongs to the parent's open
// span), or Untracked outside every span.
func (c *Collector) current() string {
	for i := len(c.stack) - 1; i >= 0; i-- {
		if !c.stack[i].sub {
			return c.stack[i].name
		}
	}
	return Untracked
}

// advance attributes the wall-clock since the last region transition to
// the currently open phase. Called before every stack mutation.
func (c *Collector) advance() {
	now := c.clock()
	if c.started {
		d := now.Sub(c.lastMark)
		if d > 0 {
			c.phase(c.current()).Wall += d
			c.total.Wall += d
		}
	}
	c.started = true
	c.lastMark = now
}

// StepEvent implements pram.Sink.
func (c *Collector) StepEvent(k, live int64) {
	c.mu.Lock()
	ph := c.phase(c.current())
	ph.Steps += k
	ph.Work += k * live
	if live > ph.PeakProcs {
		ph.PeakProcs = live
	}
	c.total.Steps += k
	c.total.Work += k * live
	c.mu.Unlock()
}

// ChargeEvent implements pram.Sink.
func (c *Collector) ChargeEvent(steps, work int64) {
	c.mu.Lock()
	ph := c.phase(c.current())
	ph.Steps += steps
	ph.Work += work
	if steps > 0 && work > 0 {
		if implied := (work + steps - 1) / steps; implied > ph.PeakProcs {
			ph.PeakProcs = implied
		}
	}
	c.total.Steps += steps
	c.total.Work += work
	c.mu.Unlock()
}

// SpanOpenEvent implements pram.Sink.
func (c *Collector) SpanOpenEvent(name string, at pram.Snapshot) {
	c.mu.Lock()
	c.advance()
	c.stack = append(c.stack, frame{name: name})
	c.mu.Unlock()
}

// SpanCloseEvent implements pram.Sink.
func (c *Collector) SpanCloseEvent(name string, at pram.Snapshot) {
	c.mu.Lock()
	c.advance()
	// Pop the matching span; defensively unwind past mismatches (a span
	// leaked by a panicking program) so one lost close cannot skew every
	// later attribution.
	for i := len(c.stack) - 1; i >= 0; i-- {
		if !c.stack[i].sub && c.stack[i].name == name {
			c.stack = c.stack[:i]
			break
		}
	}
	c.phase(name).Spans++
	c.mu.Unlock()
}

// SubOpenEvent implements pram.Sink: a Concurrent sub-machine boundary.
func (c *Collector) SubOpenEvent(at pram.Snapshot) {
	c.mu.Lock()
	c.stack = append(c.stack, frame{sub: true})
	c.mu.Unlock()
}

// SubCloseEvent implements pram.Sink.
func (c *Collector) SubCloseEvent(sub pram.Snapshot) {
	c.mu.Lock()
	for i := len(c.stack) - 1; i >= 0; i-- {
		if c.stack[i].sub {
			c.stack = c.stack[:i]
			break
		}
	}
	c.mu.Unlock()
}

// NoteEvent implements pram.Sink: host-level annotations (retry/ladder
// transitions) counted by (event, detail).
func (c *Collector) NoteEvent(event, detail string) {
	c.mu.Lock()
	if c.notes == nil {
		c.notes = make(map[string]map[string]int64)
	}
	if c.notes[event] == nil {
		c.notes[event] = make(map[string]int64)
	}
	c.notes[event][detail]++
	c.mu.Unlock()
}

// Phases returns the per-phase accounts in first-seen order, with the
// Untracked bucket moved last. The Work columns sum exactly to TotalWork.
func (c *Collector) Phases() []Phase {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]Phase, 0, len(c.order))
	var untracked *Phase
	for _, name := range c.order {
		ph := c.phases[name]
		if name == Untracked {
			untracked = ph
			continue
		}
		out = append(out, *ph)
	}
	if untracked != nil {
		out = append(out, *untracked)
	}
	return out
}

// Total returns the event-accumulated aggregate: Total().Work equals the
// observed machine's Work counter growth while the collector was
// installed, and equals the sum of the Phases() Work column — the E16
// invariant.
func (c *Collector) Total() Phase {
	c.mu.Lock()
	defer c.mu.Unlock()
	t := c.total
	t.Name = "(total)"
	return t
}

// SpanCount returns how many spans of the given name have closed.
func (c *Collector) SpanCount(name string) int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	if ph, ok := c.phases[name]; ok {
		return ph.Spans
	}
	return 0
}

// Notes returns a copy of the (event, detail) annotation counts.
func (c *Collector) Notes() map[string]map[string]int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make(map[string]map[string]int64, len(c.notes))
	for e, m := range c.notes {
		inner := make(map[string]int64, len(m))
		for d, n := range m {
			inner[d] = n
		}
		out[e] = inner
	}
	return out
}

// Reset clears all accumulated state (the region stack included).
func (c *Collector) Reset() {
	c.mu.Lock()
	c.stack, c.phases, c.order, c.notes = nil, nil, nil, nil
	c.total = Phase{}
	c.started = false
	c.mu.Unlock()
}

// Multi fans events out to several observers (e.g. a Collector and a
// Trace in one run).
func Multi(sinks ...Observer) Observer { return multi(sinks) }

type multi []Observer

func (ms multi) StepEvent(k, live int64) {
	for _, s := range ms {
		s.StepEvent(k, live)
	}
}
func (ms multi) ChargeEvent(steps, work int64) {
	for _, s := range ms {
		s.ChargeEvent(steps, work)
	}
}
func (ms multi) SpanOpenEvent(name string, at pram.Snapshot) {
	for _, s := range ms {
		s.SpanOpenEvent(name, at)
	}
}
func (ms multi) SpanCloseEvent(name string, at pram.Snapshot) {
	for _, s := range ms {
		s.SpanCloseEvent(name, at)
	}
}
func (ms multi) SubOpenEvent(at pram.Snapshot) {
	for _, s := range ms {
		s.SubOpenEvent(at)
	}
}
func (ms multi) SubCloseEvent(sub pram.Snapshot) {
	for _, s := range ms {
		s.SubCloseEvent(sub)
	}
}
func (ms multi) NoteEvent(event, detail string) {
	for _, s := range ms {
		s.NoteEvent(event, detail)
	}
}
