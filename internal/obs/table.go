package obs

import (
	"fmt"
	"io"
	"text/tabwriter"
)

// WriteTable renders the per-phase account as an aligned text table (the
// hullbench and E16 report format). The final row is the event total,
// whose Work column equals the machine's Work counter exactly.
func WriteTable(w io.Writer, c *Collector) {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "phase\tref\tspans\tsteps\twork\tpeak\twall")
	for _, ph := range c.Phases() {
		fmt.Fprintf(tw, "%s\t%s\t%d\t%d\t%d\t%d\t%s\n",
			ph.Name, ph.Ref, ph.Spans, ph.Steps, ph.Work, ph.PeakProcs, ph.Wall.Round(1000))
	}
	t := c.Total()
	fmt.Fprintf(tw, "%s\t\t\t%d\t%d\t\t%s\n", t.Name, t.Steps, t.Work, t.Wall.Round(1000))
	tw.Flush()
}
