package hull2d

import (
	"testing"

	"inplacehull/internal/workload"
)

func TestDivideAndConquerMatchesReference(t *testing.T) {
	for seed := uint64(1); seed <= 5; seed++ {
		for i, pts := range samplePointSets(seed) {
			want := UpperHull(pts)
			got := DivideAndConquerUpper(pts)
			if !equalChains(got, want) {
				t.Fatalf("seed %d set %d: dc %v != reference %v", seed, i, got, want)
			}
		}
	}
}

func TestDivideAndConquerLarge(t *testing.T) {
	pts := workload.Circle(9, 20000)
	want := UpperHull(pts)
	got := DivideAndConquerUpper(pts)
	if !equalChains(got, want) {
		t.Fatalf("dc disagrees on large circle: %d vs %d vertices", len(got), len(want))
	}
}
