package hull2d

import (
	"sort"

	"inplacehull/internal/geom"
)

// Graham returns the full convex hull (CCW from the lexicographic minimum)
// by the classic Graham scan [18]: sort by angle around the bottommost
// point, then a single stack pass. O(n log n).
func Graham(pts []geom.Point) []geom.Point {
	s := sortUnique(pts)
	n := len(s)
	if n <= 2 {
		return s
	}
	// Pivot: lowest y, then lowest x.
	piv := 0
	for i, p := range s {
		if p.Y < s[piv].Y || (p.Y == s[piv].Y && p.X < s[piv].X) {
			piv = i
		}
	}
	s[0], s[piv] = s[piv], s[0]
	origin := s[0]
	rest := s[1:]
	sort.Slice(rest, func(i, j int) bool {
		o := geom.Orientation(origin, rest[i], rest[j])
		if o != 0 {
			return o > 0 // smaller polar angle first (CCW order)
		}
		return geom.Dist2(origin, rest[i]) < geom.Dist2(origin, rest[j])
	})
	// Collinear points with the maximum angle must be in decreasing
	// distance so the scan closes the polygon correctly.
	i := len(rest) - 1
	for i > 0 && geom.Orientation(origin, rest[i-1], rest[len(rest)-1]) == 0 {
		i--
	}
	for l, r := i, len(rest)-1; l < r; l, r = l+1, r-1 {
		rest[l], rest[r] = rest[r], rest[l]
	}

	stack := []geom.Point{origin}
	for _, p := range rest {
		for len(stack) >= 2 && geom.Orientation(stack[len(stack)-2], stack[len(stack)-1], p) <= 0 {
			stack = stack[:len(stack)-1]
		}
		stack = append(stack, p)
	}
	// Pop trailing points collinear with the closing edge back to the
	// origin (the classic Graham closure fix-up).
	for len(stack) >= 3 && geom.Orientation(stack[len(stack)-2], stack[len(stack)-1], origin) <= 0 {
		stack = stack[:len(stack)-1]
	}
	// Rotate so the polygon starts at the lexicographic minimum, matching
	// FullHull's convention.
	start := 0
	for i, p := range stack {
		if geom.LexLess(p, stack[start]) {
			start = i
		}
	}
	out := make([]geom.Point, 0, len(stack))
	out = append(out, stack[start:]...)
	out = append(out, stack[:start]...)
	return out
}
