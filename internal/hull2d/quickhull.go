package hull2d

import "inplacehull/internal/geom"

// QuickHullUpper returns the upper hull by the quickhull recursion:
// repeatedly take the point farthest above the current chord and split.
// Expected O(n log n) on random inputs, O(n²) worst case.
func QuickHullUpper(pts []geom.Point) []geom.Point {
	s := sortUnique(pts)
	if len(s) <= 1 {
		return s
	}
	l, r := s[0], s[len(s)-1]
	if l.X == r.X {
		// All points on a vertical line: upper hull is the top point.
		return []geom.Point{s[len(s)-1]}
	}
	// The upper hull runs between the *topmost* points of the extreme
	// columns, not the lexicographic extremes.
	l, r = topOfVerticals(s, l, r)
	var above []geom.Point
	for _, p := range s {
		if geom.AboveLine(p, l, r) {
			above = append(above, p)
		}
	}
	chain := []geom.Point{l}
	quickUpper(l, r, above, &chain)
	chain = append(chain, r)
	return chain
}

// quickUpper appends to chain the hull vertices strictly between l and r,
// given the points strictly above segment (l, r).
func quickUpper(l, r geom.Point, pts []geom.Point, chain *[]geom.Point) {
	if len(pts) == 0 {
		return
	}
	// Farthest point above the chord; ties broken toward smaller x so the
	// recursion is deterministic.
	far := pts[0]
	base := geom.LineThrough(l, r)
	best := far.Y - base.Eval(far.X)
	for _, p := range pts[1:] {
		d := p.Y - base.Eval(p.X)
		if d > best || (d == best && p.X < far.X) {
			far, best = p, d
		}
	}
	var left, right []geom.Point
	for _, p := range pts {
		if p == far {
			continue
		}
		if geom.AboveLine(p, l, far) {
			left = append(left, p)
		} else if geom.AboveLine(p, far, r) {
			right = append(right, p)
		}
	}
	quickUpper(l, far, left, chain)
	*chain = append(*chain, far)
	quickUpper(far, r, right, chain)
}
