// Package hull2d implements the sequential planar convex hull algorithms
// the paper cites, compares against, or builds on: Andrew's monotone chain
// (the O(n log n) reference oracle), Graham scan, Jarvis march (gift
// wrapping), quickhull, Chan's O(n log h) algorithm, and the full
// Kirkpatrick–Seidel O(n log h) marriage-before-conquest algorithm whose
// bridge-finding step Observation 2.4 turns into the linear programs the
// parallel algorithms solve.
//
// Conventions: an *upper hull* is the chain of hull vertices from the
// leftmost point to the rightmost point, in increasing x, containing no
// three collinear vertices ("curves to the right", footnote 3 of the
// paper). A *full hull* is the strictly convex polygon in counter-clockwise
// order starting from the lexicographically smallest vertex. All algorithms
// in this package agree exactly on these outputs, so they can be
// cross-checked vertex for vertex.
package hull2d

import (
	"sort"

	"inplacehull/internal/geom"
)

// sortUnique returns the points sorted lexicographically with exact
// duplicates removed. It does not modify its argument.
func sortUnique(pts []geom.Point) []geom.Point {
	s := make([]geom.Point, len(pts))
	copy(s, pts)
	sort.Slice(s, func(i, j int) bool { return geom.LexLess(s[i], s[j]) })
	out := s[:0]
	for i, p := range s {
		if i == 0 || p != s[i-1] {
			out = append(out, p)
		}
	}
	return out
}

// UpperHull returns the upper hull of pts by Andrew's monotone chain scan.
// O(n log n); this is the reference oracle for the whole library.
func UpperHull(pts []geom.Point) []geom.Point {
	s := sortUnique(pts)
	return upperOfSorted(s)
}

// upperOfSorted computes the x-monotone upper hull of lexicographically
// sorted, duplicate-free points: the raw scan can retain a vertical edge at
// the ends (points sharing the extreme x), which the dedupe step collapses
// to the topmost point, giving a strictly x-increasing chain.
func upperOfSorted(s []geom.Point) []geom.Point {
	return dedupeVerticalEnds(rawUpper(s))
}

// rawUpper is the monotone-chain scan along the top of the point set with
// strict right turns; a vertical edge at the left end (several points with
// minimum x) is retained.
func rawUpper(s []geom.Point) []geom.Point {
	if len(s) <= 1 {
		return append([]geom.Point(nil), s...)
	}
	var h []geom.Point
	for _, p := range s {
		for len(h) >= 2 && geom.Orientation(h[len(h)-2], h[len(h)-1], p) >= 0 {
			h = h[:len(h)-1]
		}
		h = append(h, p)
	}
	return h
}

// rawLower is the symmetric scan along the bottom; a vertical edge at the
// right end is retained.
func rawLower(s []geom.Point) []geom.Point {
	if len(s) <= 1 {
		return append([]geom.Point(nil), s...)
	}
	var h []geom.Point
	for _, p := range s {
		for len(h) >= 2 && geom.Orientation(h[len(h)-2], h[len(h)-1], p) <= 0 {
			h = h[:len(h)-1]
		}
		h = append(h, p)
	}
	return h
}

// tinyUpper handles the ≤2-point upper hull, collapsing a vertical pair to
// its top point.
func tinyUpper(s []geom.Point) []geom.Point {
	if len(s) == 2 && s[0].X == s[1].X {
		if s[0].Y > s[1].Y {
			return s[:1]
		}
		return s[1:]
	}
	return s
}

// dedupeVerticalEnds removes a leading or trailing vertical step that can
// survive the scan when several input points share the extreme x.
func dedupeVerticalEnds(h []geom.Point) []geom.Point {
	for len(h) >= 2 && h[0].X == h[1].X {
		// Keep the higher of the two leftmost points.
		if h[0].Y < h[1].Y {
			h = h[1:]
		} else {
			h = append(h[:1], h[2:]...)
		}
	}
	for len(h) >= 2 && h[len(h)-1].X == h[len(h)-2].X {
		if h[len(h)-1].Y < h[len(h)-2].Y {
			h = h[:len(h)-1]
		} else {
			h = append(h[:len(h)-2], h[len(h)-1])
		}
	}
	return h
}

// LowerHull returns the lower hull of pts (leftmost to rightmost point,
// curving left).
func LowerHull(pts []geom.Point) []geom.Point {
	neg := make([]geom.Point, len(pts))
	for i, p := range pts {
		neg[i] = geom.Point{X: p.X, Y: -p.Y}
	}
	uh := UpperHull(neg)
	for i, p := range uh {
		uh[i] = geom.Point{X: p.X, Y: -p.Y}
	}
	return uh
}

// FullHull returns the strictly convex hull polygon of pts in CCW order,
// starting at the lexicographically smallest vertex, via monotone chain.
// Vertical hull edges (several extreme points sharing x) are preserved.
func FullHull(pts []geom.Point) []geom.Point {
	s := sortUnique(pts)
	if len(s) <= 2 {
		return s
	}
	upper := rawUpper(s)
	lower := rawLower(s)
	// Both raw chains start at the lexicographic minimum and end at the
	// maximum; the CCW polygon is the lower chain followed by the upper
	// chain's interior in reverse.
	hull := make([]geom.Point, 0, len(upper)+len(lower)-2)
	hull = append(hull, lower...)
	for i := len(upper) - 2; i >= 1; i-- {
		hull = append(hull, upper[i])
	}
	return hull
}

func lowerOfSorted(s []geom.Point) []geom.Point {
	h := rawLower(s)
	// Collapse vertical end edges toward the *bottom* points, giving a
	// strictly x-increasing lower chain.
	for len(h) >= 2 && h[0].X == h[1].X {
		if h[0].Y > h[1].Y {
			h = h[1:]
		} else {
			h = append(h[:1], h[2:]...)
		}
	}
	for len(h) >= 2 && h[len(h)-1].X == h[len(h)-2].X {
		if h[len(h)-1].Y > h[len(h)-2].Y {
			h = h[:len(h)-1]
		} else {
			h = append(h[:len(h)-2], h[len(h)-1])
		}
	}
	return h
}

// IsUpperHull reports whether chain is a valid strict upper hull of pts:
// x-monotone strictly increasing, strictly right-turning, containing the
// extreme points, with every input point on or below every chain edge's
// supporting line within its x-span. Used by tests and the verification
// harness.
func IsUpperHull(pts, chain []geom.Point) bool {
	if len(pts) == 0 {
		return len(chain) == 0
	}
	want := UpperHull(pts)
	if len(want) != len(chain) {
		return false
	}
	for i := range want {
		if want[i] != chain[i] {
			return false
		}
	}
	return true
}
