// The noisy-resilient monotone chain: the same scan as UpperHull, with
// every comparison and orientation test routed through a geom.NoisyOracle
// so the Goodrich–Sridhar majority-vote repetition absorbs predicate
// corruption. The structural clean-ups (duplicate removal, vertical-end
// collapse) use exact coordinate equality — equality of stored floats is
// not a geometric predicate in the noisy model.
package hull2d

import (
	"sort"

	"inplacehull/internal/geom"
)

// UpperHullOracle returns the upper hull of pts by the monotone chain
// scan with all predicates evaluated through o. A nil (or flip-free)
// oracle reproduces UpperHull bit for bit. Under noise the output may be
// wrong — callers gate it behind the exact verification oracle.
func UpperHullOracle(pts []geom.Point, o *geom.NoisyOracle) []geom.Point {
	s := make([]geom.Point, len(pts))
	copy(s, pts)
	sort.Slice(s, func(i, j int) bool { return o.LexLess(s[i], s[j]) })
	// Exact dedupe: a noisy sort may leave equal points non-adjacent, so
	// scan against the last kept point *and* let the hull scan drop any
	// stragglers (orientation of a repeated vertex votes to 0 ≥ 0).
	out := s[:0]
	for i, p := range s {
		if i == 0 || p != s[i-1] {
			out = append(out, p)
		}
	}
	if len(out) <= 1 {
		return append([]geom.Point(nil), out...)
	}
	var h []geom.Point
	for _, p := range out {
		for len(h) >= 2 && o.Orientation(h[len(h)-2], h[len(h)-1], p) >= 0 {
			h = h[:len(h)-1]
		}
		h = append(h, p)
	}
	return dedupeVerticalEnds(h)
}
