package hull2d

import (
	"testing"

	"inplacehull/internal/workload"
)

// Wall-clock comparison of the sequential baselines: on disk inputs
// (h ≈ n^(1/3)) all are n-log-ish; the output-sensitive algorithms pull
// ahead on PolygonFew inputs (h = 16).
func BenchmarkSequentialBaselines(b *testing.B) {
	n := 1 << 15
	disk := workload.Disk(1, n)
	few := workload.PolygonFew(16)(1, n)
	b.Run("monotone/disk", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			UpperHull(disk)
		}
	})
	b.Run("dc/disk", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			DivideAndConquerUpper(disk)
		}
	})
	b.Run("quickhull/disk", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			QuickHullUpper(disk)
		}
	})
	b.Run("ks/disk", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			KirkpatrickSeidel(disk)
		}
	})
	b.Run("ks/poly16", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			KirkpatrickSeidel(few)
		}
	})
	b.Run("chan/poly16", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			ChanUpper(few)
		}
	})
}
