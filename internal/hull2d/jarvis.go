package hull2d

import "inplacehull/internal/geom"

// Jarvis returns the full convex hull (CCW from the lexicographic minimum)
// by gift wrapping: O(n·h) time, the classic output-sensitive baseline the
// paper's introduction contrasts with Kirkpatrick–Seidel.
func Jarvis(pts []geom.Point) []geom.Point {
	s := sortUnique(pts)
	n := len(s)
	if n <= 2 {
		return s
	}
	start := 0 // lexicographically smallest after sortUnique
	hull := []geom.Point{s[start]}
	cur := start
	for {
		// Pick the point next such that every other point lies to the left
		// of (or behind on) the ray cur→next: the most clockwise candidate.
		next := -1
		for i := 0; i < n; i++ {
			if i == cur {
				continue
			}
			if next == -1 {
				next = i
				continue
			}
			o := geom.Orientation(s[cur], s[next], s[i])
			if o < 0 {
				next = i
			} else if o == 0 {
				// Collinear: keep the farther point so collinear interior
				// points never become hull vertices.
				if geom.Dist2(s[cur], s[i]) > geom.Dist2(s[cur], s[next]) {
					next = i
				}
			}
		}
		if next == start || next == -1 {
			break
		}
		hull = append(hull, s[next])
		cur = next
		if len(hull) > n {
			// Degenerate loop guard; cannot happen on valid input.
			break
		}
	}
	return hull
}

// JarvisUpper returns only the upper hull by wrapping from the leftmost to
// the rightmost point.
func JarvisUpper(pts []geom.Point) []geom.Point {
	full := Jarvis(pts)
	if len(full) <= 2 {
		return tinyUpper(sortUnique(full))
	}
	// full is CCW from lexicographic min; the upper hull is the portion
	// from the rightmost vertex back around to the leftmost, reversed.
	maxI := 0
	for i, p := range full {
		if !geom.LexLess(p, full[maxI]) {
			maxI = i
		}
	}
	var upper []geom.Point
	for i := maxI; ; i = (i + 1) % len(full) {
		upper = append(upper, full[i])
		if i == 0 {
			break
		}
	}
	// Reverse into increasing x, then collapse any vertical end edges to
	// their topmost points so the chain is strictly x-monotone.
	for i, j := 0, len(upper)-1; i < j; i, j = i+1, j-1 {
		upper[i], upper[j] = upper[j], upper[i]
	}
	return dedupeVerticalEnds(upper)
}
