package hull2d

import (
	"testing"

	"inplacehull/internal/geom"
	"inplacehull/internal/rng"
	"inplacehull/internal/workload"
)

// TestUpperHullOracleBitIdentical is the metamorphic anchor of the noisy
// scan: with a nil oracle, and with a voted flip-free oracle, the output
// must match UpperHull bit for bit on every generator.
func TestUpperHullOracleBitIdentical(t *testing.T) {
	oracles := map[string]*geom.NoisyOracle{
		"nil":       nil,
		"zero":      {},
		"voted-9":   {Votes: 9},
		"flip-free": {Flip: func() bool { return false }, Votes: 5},
	}
	for _, g := range workload.Gens2D {
		for _, n := range []int{0, 1, 2, 3, 17, 256} {
			pts := g.Gen(11, n)
			want := UpperHull(pts)
			for name, o := range oracles {
				got := UpperHullOracle(pts, o)
				if len(got) != len(want) {
					t.Fatalf("%s n=%d oracle=%s: %d vertices, want %d", g.Name, n, name, len(got), len(want))
				}
				for i := range got {
					if got[i] != want[i] {
						t.Fatalf("%s n=%d oracle=%s: vertex %d = %v, want %v", g.Name, n, name, i, got[i], want[i])
					}
				}
			}
		}
	}
}

// TestUpperHullOracleUnderNoise: with real flips and a schedule sized for
// the rate, the voted scan still recovers the exact hull (failure
// probability per predicate ≤ 1e-9).
func TestUpperHullOracleUnderNoise(t *testing.T) {
	pts := workload.Disk(13, 512)
	want := UpperHull(pts)
	for _, p := range []float64{0.05, 0.1, 0.2} {
		noise := rng.New(uint64(p * 1e4))
		o := &geom.NoisyOracle{
			Flip:  func() bool { return noise.Float64() < p },
			Votes: geom.VotesFor(p, 1e-9),
		}
		got := UpperHullOracle(pts, o)
		if len(got) != len(want) {
			t.Fatalf("p=%g: %d vertices, want %d", p, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("p=%g: vertex %d = %v, want %v", p, i, got[i], want[i])
			}
		}
	}
}
