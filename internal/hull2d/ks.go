package hull2d

import (
	"inplacehull/internal/geom"
	"inplacehull/internal/rng"
)

// KirkpatrickSeidel returns the upper hull in O(n log h) time by
// marriage-before-conquest [21]: find the bridge over the median first,
// discard the points under it, and only then recurse on the two sides.
// This is the sequential algorithm whose work bound Theorem 5 matches in
// parallel, and whose bridge step Observation 2.4 reduces to linear
// programming. The median-of-slopes pruning inside the bridge search uses
// randomized selection, making the bound expected rather than worst case
// (the deterministic variant needs median-of-medians; the work profile
// measured by E11 is unaffected).
func KirkpatrickSeidel(pts []geom.Point) []geom.Point {
	h, _ := KirkpatrickSeidelOps(pts)
	return h
}

// KirkpatrickSeidelOps additionally reports the number of elementary
// operations (point visits in bridge rounds) consumed, the quantity the
// benchmark harness compares against the n·log h curve.
func KirkpatrickSeidelOps(pts []geom.Point) ([]geom.Point, int64) {
	s := sortUnique(pts)
	var ops int64
	if len(s) <= 2 {
		return tinyUpper(s), ops
	}
	k := &ksState{rand: rng.New(0x9d5e), ops: &ops}
	l, r := s[0], s[len(s)-1]
	l, r = topOfVerticals(s, l, r)
	if l.X == r.X {
		return []geom.Point{r}, ops
	}
	var chain []geom.Point
	chain = append(chain, l)
	// Candidates strictly between the extremes plus the extremes.
	var mid []geom.Point
	for _, p := range s {
		if p.X > l.X && p.X < r.X && geom.AboveLine(p, l, r) {
			mid = append(mid, p)
		}
	}
	k.connect(l, r, append(mid, l, r), &chain)
	chain = append(chain, r)
	return chain, ops
}

// topOfVerticals replaces the lex-extremes with the topmost points on their
// vertical lines, the correct upper-hull endpoints.
func topOfVerticals(s []geom.Point, l, r geom.Point) (geom.Point, geom.Point) {
	for _, p := range s {
		if p.X == l.X && p.Y > l.Y {
			l = p
		}
		if p.X == r.X && p.Y > r.Y {
			r = p
		}
	}
	return l, r
}

type ksState struct {
	rand *rng.Stream
	ops  *int64
}

// connect emits, in x order, the upper-hull vertices strictly between l and
// r, given candidate points cand (all with l.X ≤ x ≤ r.X, including l, r).
func (k *ksState) connect(l, r geom.Point, cand []geom.Point, chain *[]geom.Point) {
	if l.X >= r.X {
		return
	}
	a := k.splitAbscissa(cand, l.X, r.X)
	u, w := k.bridge(cand, a)
	// Left subproblem: points left of u, plus u.
	if u != l {
		var left []geom.Point
		for _, p := range cand {
			*k.ops++
			if p.X < u.X && geom.AboveLine(p, l, u) {
				left = append(left, p)
			}
		}
		k.connect(l, u, append(left, l, u), chain)
		*chain = append(*chain, u)
	}
	if w != r {
		var right []geom.Point
		for _, p := range cand {
			*k.ops++
			if p.X > w.X && geom.AboveLine(p, w, r) {
				right = append(right, p)
			}
		}
		*chain = append(*chain, w)
		k.connect(w, r, append(right, w, r), chain)
	}
}

// splitAbscissa picks the median x of cand, clamped into [lo, hi) so the
// bridge always straddles it.
func (k *ksState) splitAbscissa(cand []geom.Point, lo, hi float64) float64 {
	xs := make([]float64, len(cand))
	for i, p := range cand {
		xs[i] = p.X
	}
	a := quickselect(k.rand, xs, len(xs)/2)
	if a < lo {
		a = lo
	}
	if a >= hi {
		// Use the largest x strictly below hi.
		best := lo
		for _, x := range xs {
			if x < hi && x > best {
				best = x
			}
		}
		a = best
	}
	return a
}

// bridge returns the upper-hull edge (u, w) of cand with u.X ≤ a < w.X,
// using the Kirkpatrick–Seidel median-of-slopes pruning.
func (k *ksState) bridge(cand []geom.Point, a float64) (geom.Point, geom.Point) {
	s := cand
	for {
		*k.ops += int64(len(s))
		if len(s) <= 8 {
			return bruteBridge(s, a)
		}
		var next []geom.Point // points that survive without pairing
		type pair struct {
			p, q  geom.Point
			slope float64
		}
		var pairs []pair
		for i := 0; i+1 < len(s); i += 2 {
			p, q := s[i], s[i+1]
			if p.X > q.X {
				p, q = q, p
			}
			if p.X == q.X {
				// The lower of two equal-x points is never an upper-hull
				// vertex; keep only the higher.
				if p.Y > q.Y {
					next = append(next, p)
				} else {
					next = append(next, q)
				}
				continue
			}
			pairs = append(pairs, pair{p, q, (q.Y - p.Y) / (q.X - p.X)})
		}
		if len(s)%2 == 1 {
			next = append(next, s[len(s)-1])
		}
		if len(pairs) == 0 {
			s = next
			continue
		}
		// Median pair by (floating) slope. The float median only steers the
		// pruning rate; every correctness-bearing comparison below is made
		// against this *pair* with exact predicates.
		slopes := make([]float64, len(pairs))
		for i, pr := range pairs {
			slopes[i] = pr.slope
		}
		K := quickselect(k.rand, slopes, len(slopes)/2)
		med := pairs[0]
		for _, pr := range pairs {
			if pr.slope == K {
				med = pr
				break
			}
		}

		// Extreme points in the direction orthogonal to the median pair:
		// maximize y − K·x, compared exactly via DirCmp.
		ext := s[0]
		for _, p := range s[1:] {
			if geom.DirCmp(p, ext, med.p, med.q) > 0 {
				ext = p
			}
		}
		pk, pm := ext, ext
		for _, p := range s {
			if geom.DirCmp(p, ext, med.p, med.q) == 0 {
				if p.X < pk.X {
					pk = p
				}
				if p.X > pm.X {
					pm = p
				}
			}
		}
		if pk.X <= a && pm.X > a {
			return pk, pm
		}
		if pm.X <= a {
			// Bridge slope < K: left points of pairs with slope ≥ K cannot
			// be bridge endpoints.
			for _, pr := range pairs {
				if geom.SlopeCmp(pr.p, pr.q, med.p, med.q) >= 0 {
					next = append(next, pr.q)
				} else {
					next = append(next, pr.p, pr.q)
				}
			}
		} else { // pk.X > a: bridge slope > K.
			for _, pr := range pairs {
				if geom.SlopeCmp(pr.p, pr.q, med.p, med.q) <= 0 {
					next = append(next, pr.p)
				} else {
					next = append(next, pr.p, pr.q)
				}
			}
		}
		s = next
	}
}

// bruteBridge finds the bridge over x = a among a small candidate set by
// trying all pairs.
func bruteBridge(s []geom.Point, a float64) (geom.Point, geom.Point) {
	// Deduplicate-by-x keeping top points to avoid vertical pairs.
	best := struct {
		u, w geom.Point
		ok   bool
	}{}
	for i := 0; i < len(s); i++ {
		for j := 0; j < len(s); j++ {
			u, w := s[i], s[j]
			if !(u.X <= a && a < w.X) {
				continue
			}
			valid := true
			for _, z := range s {
				if geom.AboveLine(z, u, w) {
					valid = false
					break
				}
			}
			if !valid {
				continue
			}
			// Among valid chords prefer the one whose endpoints are hull
			// vertices: the widest (then highest) valid chord.
			if !best.ok || w.X-u.X > best.w.X-best.u.X ||
				(w.X-u.X == best.w.X-best.u.X && u.Y+w.Y > best.u.Y+best.w.Y) {
				best.u, best.w, best.ok = u, w, true
			}
		}
	}
	if !best.ok {
		// Caller guarantees points on both sides of a; fall back to the
		// extreme points (happens only if every chord is dominated, which
		// valid inputs rule out).
		return s[0], s[len(s)-1]
	}
	return best.u, best.w
}

// quickselect returns the k-th smallest (0-based) of xs in expected linear
// time; xs is used as scratch.
func quickselect(r *rng.Stream, xs []float64, k int) float64 {
	lo, hi := 0, len(xs)
	for hi-lo > 1 {
		pivot := xs[lo+r.Intn(hi-lo)]
		// Three-way partition: [lo,lt) < pivot, [lt,gt) == pivot,
		// [gt,hi) > pivot.
		lt, i, gt := lo, lo, hi
		for i < gt {
			switch {
			case xs[i] < pivot:
				xs[i], xs[lt] = xs[lt], xs[i]
				lt++
				i++
			case xs[i] > pivot:
				gt--
				xs[i], xs[gt] = xs[gt], xs[i]
			default:
				i++
			}
		}
		switch {
		case k < lt:
			hi = lt
		case k >= gt:
			lo = gt
		default:
			return pivot
		}
	}
	return xs[lo]
}
