package hull2d

import (
	"testing"
	"testing/quick"

	"inplacehull/internal/geom"
	"inplacehull/internal/rng"
	"inplacehull/internal/workload"
)

// checkUpperChain verifies the structural upper-hull invariants: strictly
// increasing x, strict right turns, every input point on or below the
// chain, and every chain vertex an input point.
func checkUpperChain(t *testing.T, pts, chain []geom.Point) {
	t.Helper()
	if len(pts) == 0 {
		if len(chain) != 0 {
			t.Fatalf("hull of empty set is non-empty: %v", chain)
		}
		return
	}
	if len(chain) == 0 {
		t.Fatal("empty chain for non-empty input")
	}
	inSet := map[geom.Point]bool{}
	for _, p := range pts {
		inSet[p] = true
	}
	for i, v := range chain {
		if !inSet[v] {
			t.Fatalf("chain vertex %v not an input point", v)
		}
		if i > 0 && chain[i-1].X >= v.X {
			t.Fatalf("chain x not strictly increasing at %d: %v, %v", i, chain[i-1], v)
		}
		if i >= 2 && geom.Orientation(chain[i-2], chain[i-1], v) >= 0 {
			t.Fatalf("chain not strictly right-turning at %d", i)
		}
	}
	// Every point lies on or below the chain.
	for _, p := range pts {
		if p.X < chain[0].X || p.X > chain[len(chain)-1].X {
			t.Fatalf("point %v outside chain x-range [%v, %v]", p, chain[0], chain[len(chain)-1])
		}
		for i := 0; i+1 < len(chain); i++ {
			if chain[i].X <= p.X && p.X <= chain[i+1].X {
				if geom.AboveLine(p, chain[i], chain[i+1]) {
					t.Fatalf("point %v above chain edge %v-%v", p, chain[i], chain[i+1])
				}
			}
		}
	}
}

func samplePointSets(seed uint64) [][]geom.Point {
	var sets [][]geom.Point
	for _, g := range workload.Gens2D {
		sets = append(sets, g.Gen(seed, 300))
	}
	sets = append(sets,
		workload.Collinear(seed, 200),
		workload.Grid(seed, 200),
		[]geom.Point{{X: 0, Y: 0}},
		[]geom.Point{{X: 0, Y: 0}, {X: 1, Y: 1}},
		[]geom.Point{{X: 0, Y: 0}, {X: 1, Y: 1}, {X: 2, Y: 2}},
		[]geom.Point{{X: 0, Y: 0}, {X: 0, Y: 1}, {X: 0, Y: 2}}, // vertical line
		[]geom.Point{{X: 0, Y: 0}, {X: 0, Y: 0}, {X: 1, Y: 0}}, // duplicates
	)
	return sets
}

func TestUpperHullInvariants(t *testing.T) {
	for seed := uint64(1); seed <= 3; seed++ {
		for i, pts := range samplePointSets(seed) {
			chain := UpperHull(pts)
			if len(pts) > 0 && len(chain) == 0 {
				t.Fatalf("set %d: empty hull", i)
			}
			checkUpperChain(t, pts, chain)
		}
	}
}

func TestAllUpperAlgorithmsAgree(t *testing.T) {
	algos := map[string]func([]geom.Point) []geom.Point{
		"quickhull": QuickHullUpper,
		"jarvis":    JarvisUpper,
		"chan":      mustChan,
		"ks":        KirkpatrickSeidel,
	}
	for seed := uint64(1); seed <= 5; seed++ {
		for i, pts := range samplePointSets(seed) {
			want := UpperHull(pts)
			for name, algo := range algos {
				got := algo(pts)
				if !equalChains(got, want) {
					t.Fatalf("seed %d set %d: %s = %v, want %v", seed, i, name, got, want)
				}
			}
		}
	}
}

// mustChan adapts ChanUpper to the no-error baseline signature for the
// agreement tests; the error path is unreachable for a correct build.
func mustChan(pts []geom.Point) []geom.Point {
	h, err := ChanUpper(pts)
	if err != nil {
		panic(err)
	}
	return h
}

func equalChains(a, b []geom.Point) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestFullHullMatchesGraham(t *testing.T) {
	for seed := uint64(1); seed <= 5; seed++ {
		for i, pts := range samplePointSets(seed) {
			if len(pts) < 3 {
				continue
			}
			mc := FullHull(pts)
			gr := Graham(pts)
			if len(mc) <= 2 {
				continue // degenerate: Graham's conventions differ on lines
			}
			if !equalChains(mc, gr) {
				t.Fatalf("seed %d set %d: graham %v != monotone %v", seed, i, gr, mc)
			}
		}
	}
}

func TestJarvisFullHullInvariants(t *testing.T) {
	pts := workload.Disk(7, 500)
	hull := Jarvis(pts)
	want := FullHull(pts)
	if !equalChains(hull, want) {
		t.Fatalf("jarvis %v != monotone %v", hull, want)
	}
}

func TestUpperHullQuick(t *testing.T) {
	if err := quick.Check(func(seed uint64, nRaw uint8) bool {
		n := int(nRaw)%60 + 1
		s := rng.New(seed)
		pts := make([]geom.Point, n)
		for i := range pts {
			// Small integer coordinates: many degeneracies.
			pts[i] = geom.Point{X: float64(s.Intn(8)), Y: float64(s.Intn(8))}
		}
		want := UpperHull(pts)
		return equalChains(QuickHullUpper(pts), want) &&
			equalChains(KirkpatrickSeidel(pts), want) &&
			equalChains(mustChan(pts), want) &&
			equalChains(JarvisUpper(pts), want)
	}, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestCircleHullHasAllPoints(t *testing.T) {
	pts := workload.Circle(3, 200)
	hull := FullHull(pts)
	if len(hull) != 200 {
		t.Fatalf("hull of 200 circle points has %d vertices", len(hull))
	}
}

func TestPolygonFewHullSize(t *testing.T) {
	gen := workload.PolygonFew(16)
	pts := gen(5, 5000)
	hull := FullHull(pts)
	if len(hull) != 16 {
		t.Fatalf("hull size = %d, want 16", len(hull))
	}
}

func TestKSOpsOutputSensitive(t *testing.T) {
	// For fixed n, KS should do much less work on h=16 input than on
	// h=n input.
	n := 1 << 14
	few := workload.PolygonFew(16)(1, n)
	circ := workload.Circle(1, n)
	_, opsFew := KirkpatrickSeidelOps(few)
	_, opsCirc := KirkpatrickSeidelOps(circ)
	if opsFew*2 > opsCirc {
		t.Fatalf("KS not output sensitive: ops(h=16)=%d vs ops(h=n)=%d", opsFew, opsCirc)
	}
}

func TestUpperLowerConsistency(t *testing.T) {
	pts := workload.Disk(11, 400)
	up := UpperHull(pts)
	lo := LowerHull(pts)
	if up[0].X != lo[0].X || up[len(up)-1].X != lo[len(lo)-1].X {
		t.Fatal("upper and lower hulls must share extreme x-coordinates")
	}
	full := FullHull(pts)
	if len(full) != len(up)+len(lo)-2 {
		t.Fatalf("full hull size %d != upper %d + lower %d − 2", len(full), len(up), len(lo))
	}
}

func TestEmptyAndTiny(t *testing.T) {
	if h := UpperHull(nil); len(h) != 0 {
		t.Fatal("hull of nothing")
	}
	one := []geom.Point{{X: 1, Y: 2}}
	if h := UpperHull(one); len(h) != 1 || h[0] != one[0] {
		t.Fatal("hull of one point")
	}
	dup := []geom.Point{{X: 1, Y: 2}, {X: 1, Y: 2}}
	if h := UpperHull(dup); len(h) != 1 {
		t.Fatalf("hull of duplicate point: %v", h)
	}
}

func TestChanFailsOverToLargerM(t *testing.T) {
	// A circle forces h = n, so the first guesses (m = 4, 16, …) fail and
	// Chan must square m until it succeeds; result must still be correct.
	pts := workload.Circle(9, 600)
	got, err := ChanUpper(pts)
	if err != nil {
		t.Fatal(err)
	}
	checkUpperChain(t, pts, got)
}

func TestIsUpperHull(t *testing.T) {
	pts := workload.Disk(2, 100)
	if !IsUpperHull(pts, UpperHull(pts)) {
		t.Fatal("IsUpperHull rejected the reference hull")
	}
	bad := []geom.Point{{X: 0, Y: 0}}
	if IsUpperHull(pts, bad) {
		t.Fatal("IsUpperHull accepted a wrong chain")
	}
}
