package hull2d

import "inplacehull/internal/geom"

// DivideAndConquerUpper computes the upper hull by the divide-and-conquer
// scheme of Atallah–Goodrich [5,6]: split the sorted points in half,
// recurse, and merge the two sub-hulls with their common upper tangent.
// O(n log n) sequentially; the same merge tree is what their CREW
// algorithm evaluates level-parallel in O(log n) time. It cross-checks the
// tangent primitives of internal/chain at every merge.
func DivideAndConquerUpper(pts []geom.Point) []geom.Point {
	s := sortUnique(pts)
	if len(s) <= 2 {
		return tinyUpper(s)
	}
	// Collapse duplicate x-columns to their top point so every chain is
	// strictly x-monotone.
	cols := s[:0]
	for _, p := range s {
		if len(cols) > 0 && cols[len(cols)-1].X == p.X {
			if p.Y > cols[len(cols)-1].Y {
				cols[len(cols)-1] = p
			}
			continue
		}
		cols = append(cols, p)
	}
	return dcUpper(cols)
}

func dcUpper(s []geom.Point) []geom.Point {
	if len(s) <= 2 {
		return append([]geom.Point(nil), s...)
	}
	mid := len(s) / 2
	left := dcUpper(s[:mid])
	right := dcUpper(s[mid:])
	return mergeUpper(left, right)
}

// mergeUpper joins two x-disjoint upper chains with their common tangent.
func mergeUpper(a, b []geom.Point) []geom.Point {
	i, j := upperTangent(a, b)
	out := make([]geom.Point, 0, i+1+len(b)-j)
	out = append(out, a[:i+1]...)
	out = append(out, b[j:]...)
	return out
}

// upperTangent returns indices (i, j) of the common upper tangent between
// x-disjoint upper chains a (left) and b (right): every vertex of both
// chains lies on or below the line a[i]–b[j]. The classic two-pointer
// walk: advance each side while its neighbor improves the tangent.
func upperTangent(a, b []geom.Point) (int, int) {
	i, j := len(a)-1, 0
	for {
		moved := false
		// Retract i while its predecessor lies on or above the candidate
		// line (collinear predecessors also retract, keeping the hull
		// strict).
		for i > 0 && geom.Orientation(a[i], b[j], a[i-1]) >= 0 {
			i--
			moved = true
		}
		// Advance j while its successor lies on or above the candidate.
		for j < len(b)-1 && geom.Orientation(a[i], b[j], b[j+1]) >= 0 {
			j++
			moved = true
		}
		if !moved {
			return i, j
		}
	}
}
