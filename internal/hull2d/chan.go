package hull2d

import (
	"inplacehull/internal/geom"
	"inplacehull/internal/hullerr"
)

// ChanUpper returns the upper hull in O(n log h) time by Chan's algorithm:
// guess m, build ⌈n/m⌉ group hulls, gift-wrap across groups with
// binary-search tangent queries, and square the guess on failure. It is the
// second sequential output-sensitive comparator used by experiment E11.
// The error is non-nil only if the wrap fails with m = n, which a correct
// implementation never produces; it is reported (typed Internal) rather
// than panicking because the function is user-reachable through the root
// API.
func ChanUpper(pts []geom.Point) ([]geom.Point, error) {
	h, _, err := ChanUpperOps(pts)
	return h, err
}

// ChanUpperOps also reports elementary operation counts (points touched in
// group-hull construction plus tangent-probe steps).
func ChanUpperOps(pts []geom.Point) ([]geom.Point, int64, error) {
	s := sortUnique(pts)
	var ops int64
	if len(s) <= 2 {
		return tinyUpper(s), ops, nil
	}
	if s[0].X == s[len(s)-1].X {
		return []geom.Point{s[len(s)-1]}, ops, nil
	}
	for m := 4; ; m = min(m*m, len(s)) {
		if hull, ok := chanAttempt(s, m, &ops); ok {
			return hull, ops, nil
		}
		if m >= len(s) {
			// Cannot fail with m = n: one group, plain wrap.
			return nil, ops, hullerr.New(hullerr.Internal, "hull2d.Chan",
				"attempt failed with m = n = %d", len(s))
		}
	}
}

// chanAttempt tries to wrap the upper hull in at most m steps using groups
// of size m. s is sorted and duplicate-free.
func chanAttempt(s []geom.Point, m int, ops *int64) ([]geom.Point, bool) {
	n := len(s)
	ng := (n + m - 1) / m
	groups := make([][]geom.Point, 0, ng)
	for i := 0; i < n; i += m {
		end := min(i+m, n)
		g := upperOfSorted(s[i:end])
		*ops += int64(end - i)
		groups = append(groups, g)
	}
	start, end := topStart(s), topEnd(s)
	hull := []geom.Point{start}
	cur := start
	for step := 0; step < m+1; step++ {
		if cur == end {
			return hull, true
		}
		next, ok := wrapStep(groups, cur, ops)
		if !ok {
			return nil, false
		}
		hull = append(hull, next)
		cur = next
	}
	return nil, false
}

// topStart returns the topmost point with minimum x; topEnd the topmost
// point with maximum x.
func topStart(s []geom.Point) geom.Point {
	best := s[0]
	for _, p := range s {
		if p.X == best.X && p.Y > best.Y {
			best = p
		}
	}
	return best
}

func topEnd(s []geom.Point) geom.Point {
	best := s[len(s)-1]
	for _, p := range s {
		if p.X == best.X && p.Y > best.Y {
			best = p
		}
	}
	return best
}

// wrapStep returns the next upper-hull vertex after cur: the point q with
// q.X > cur.X maximizing the slope of cur→q (ties: the farthest). Each
// group hull is probed by a tangent search.
func wrapStep(groups [][]geom.Point, cur geom.Point, ops *int64) (geom.Point, bool) {
	bestSet := false
	var best geom.Point
	consider := func(q geom.Point) {
		if q.X <= cur.X {
			return
		}
		if !bestSet {
			best, bestSet = q, true
			return
		}
		o := geom.Orientation(cur, best, q)
		if o > 0 || (o == 0 && q.X > best.X) {
			best = q
		}
	}
	for _, g := range groups {
		if len(g) == 0 || g[len(g)-1].X <= cur.X {
			continue
		}
		i := tangentIndex(g, cur, ops)
		if i >= 0 {
			consider(g[i])
		}
	}
	return best, bestSet
}

// tangentIndex returns the index of the vertex of chain (an upper hull,
// increasing x) with x > cur.X that maximizes slope(cur, ·), ties broken
// toward larger x, or −1 if no vertex lies right of cur. The maximum-slope
// vertex is found by binary search over the strictly right-turning chain;
// small chains fall back to a linear scan.
func tangentIndex(chain []geom.Point, cur geom.Point, ops *int64) int {
	// Restrict to vertices with x > cur.X: chain is x-sorted.
	lo, hi := 0, len(chain)
	for lo < hi {
		mid := (lo + hi) / 2
		if chain[mid].X > cur.X {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	sub := chain[lo:]
	if len(sub) == 0 {
		return -1
	}
	if len(sub) <= 8 {
		return lo + linearTangent(sub, cur, ops)
	}
	// slope(cur, sub[i]) is strictly unimodal along a strictly convex chain
	// whose vertices all lie right of cur (at most one two-vertex plateau,
	// when cur is collinear with a chain edge). Ternary-search the peak on
	// pure slope order, then extend right across a possible plateau so ties
	// resolve toward larger x.
	slopeLess := func(i, j int) bool { // slope(cur,sub[i]) < slope(cur,sub[j])
		*ops++
		return geom.Orientation(cur, sub[i], sub[j]) > 0
	}
	a, b := 0, len(sub)-1
	for b-a > 2 {
		m1 := a + (b-a)/3
		m2 := b - (b-a)/3
		if slopeLess(m1, m2) {
			a = m1
		} else {
			b = m2
		}
	}
	bestI := a
	for i := a + 1; i <= b; i++ {
		if slopeLess(bestI, i) {
			bestI = i
		}
	}
	for bestI+1 < len(sub) && geom.Orientation(cur, sub[bestI], sub[bestI+1]) == 0 {
		bestI++
	}
	return lo + bestI
}

func linearTangent(sub []geom.Point, cur geom.Point, ops *int64) int {
	bestI := 0
	for i := 1; i < len(sub); i++ {
		*ops++
		o := geom.Orientation(cur, sub[bestI], sub[i])
		if o > 0 || (o == 0 && sub[i].X > sub[bestI].X) {
			bestI = i
		}
	}
	return bestI
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
