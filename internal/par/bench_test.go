package par

import (
	"testing"

	"inplacehull/internal/pram"
	"inplacehull/internal/rng"
)

func BenchmarkPrefixSum(b *testing.B) {
	n := 1 << 16
	src := make([]int64, n)
	for i := range src {
		src[i] = int64(i % 13)
	}
	xs := make([]int64, n)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		copy(xs, src)
		m := pram.New()
		PrefixSum(m, xs)
	}
}

func BenchmarkFirstOne(b *testing.B) {
	n := 1 << 16
	for i := 0; i < b.N; i++ {
		m := pram.New()
		FirstOne(m, n, func(p int) bool { return p == n/2 })
	}
}

func BenchmarkSortByKey(b *testing.B) {
	n := 1 << 14
	s := rng.New(1)
	keys := make([]float64, n)
	for i := range keys {
		keys[i] = s.Float64()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := pram.New()
		SortByKey(m, n, func(i int) float64 { return keys[i] })
	}
}

func BenchmarkListRank(b *testing.B) {
	n := 1 << 14
	next := make([]int, n)
	for i := range next {
		next[i] = i + 1
	}
	next[n-1] = -1
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := pram.New()
		ListRank(m, next)
	}
}
