// Package par implements the standard CRCW PRAM primitives the paper's
// algorithms invoke: constant-time first-one (Observation 2.1, the
// Eppstein–Galil √-block technique), work-efficient prefix sums, exact
// compaction, reductions via combining writes, and an order-preserving
// radix sort used by the fallback path of the unsorted algorithms.
//
// Every primitive takes the *pram.Machine it runs on and is charged
// honestly: the step and work counts reported by the machine are the counts
// the primitive actually incurs under the model.
package par

import (
	"math"

	"inplacehull/internal/pram"
)

// Or computes the disjunction of pred(p) over p in [0, n) in one step with
// n processors (Common CRCW concurrent write).
func Or(m *pram.Machine, n int, pred func(p int) bool) bool {
	var cell pram.OrCell
	m.StepAll(n, func(p int) {
		if pred(p) {
			cell.Set()
		}
	})
	return cell.Get()
}

// CountTrue counts the processors in [0, n) for which pred holds, using a
// prefix-sum tree: O(log n) steps, O(n) work.
func CountTrue(m *pram.Machine, n int, pred func(p int) bool) int {
	bits := make([]int64, n)
	m.StepAll(n, func(p int) {
		if pred(p) {
			bits[p] = 1
		}
	})
	return int(Sum(m, bits))
}

// Sum reduces xs by addition with a balanced tree: O(log n) steps, O(n)
// work. xs is consumed as scratch (its contents are destroyed).
func Sum(m *pram.Machine, xs []int64) int64 {
	n := len(xs)
	if n == 0 {
		return 0
	}
	for stride := 1; stride < n; stride <<= 1 {
		s := stride
		m.Step((n+2*s-1)/(2*s), func(p int) bool {
			i := 2 * s * p
			if i+s < n {
				xs[i] += xs[i+s]
				return true
			}
			return false
		})
	}
	return xs[0]
}

// MaxIndex returns the index of the maximum of key(p) over [0, n),
// resolving ties toward the lowest index. O(log n) steps, O(n) work.
func MaxIndex(m *pram.Machine, n int, key func(p int) float64) int {
	idx := make([]int64, n)
	m.StepAll(n, func(p int) { idx[p] = int64(p) })
	for stride := 1; stride < n; stride <<= 1 {
		s := stride
		m.Step((n+2*s-1)/(2*s), func(p int) bool {
			i := 2 * s * p
			if i+s < n {
				a, b := idx[i], idx[i+s]
				if key(int(b)) > key(int(a)) {
					idx[i] = b
				}
				return true
			}
			return false
		})
	}
	return int(idx[0])
}

// FirstOne returns the lowest p in [0, n) with bit(p) true, or −1 if none,
// in O(1) steps with O(n) processors — the constant-time CRCW technique of
// Observation 2.1: split into ⌈√n⌉ blocks; mark non-empty blocks; find the
// leftmost non-empty block by all-pairs elimination (≤ n processors); then
// find the leftmost one inside that block the same way.
func FirstOne(m *pram.Machine, n int, bit func(p int) bool) int {
	if n <= 0 {
		return -1
	}
	b := int(math.Ceil(math.Sqrt(float64(n))))
	nb := (n + b - 1) / b

	blockHas := make([]pram.OrCell, nb)
	// Step 1: mark non-empty blocks (one concurrent-write per set bit).
	any := false
	m.StepAll(n, func(p int) {
		if bit(p) {
			blockHas[p/b].Set()
		}
	})
	// Emptiness test: one OR step over the nb block flags in the model.
	m.Charge(1, int64(nb))
	for i := range blockHas {
		if blockHas[i].Get() {
			any = true
			break
		}
	}
	if !any {
		return -1
	}

	// Step 2: leftmost non-empty block by all-pairs elimination with
	// nb² ≤ n processors: pair (i, j), i < j, kills j if block i non-empty.
	winBlock := leftmostAllPairs(m, nb, func(i int) bool { return blockHas[i].Get() })

	// Step 3: leftmost set bit within the winning block, again all-pairs
	// with ≤ b² ≤ n processors.
	lo := winBlock * b
	hi := lo + b
	if hi > n {
		hi = n
	}
	w := leftmostAllPairs(m, hi-lo, func(i int) bool { return bit(lo + i) })
	return lo + w
}

// leftmostAllPairs finds the lowest i in [0, k) with set(i) true using the
// O(1)-step, k²-processor all-pairs elimination. At least one set(i) must
// be true.
func leftmostAllPairs(m *pram.Machine, k int, set func(i int) bool) int {
	killed := make([]pram.OrCell, k)
	m.StepAll(k*k, func(p int) {
		i, j := p/k, p%k
		if i < j && set(i) && set(j) {
			killed[j].Set()
		}
	})
	var win pram.MinCell
	win.InitMax()
	m.StepAll(k, func(i int) {
		if set(i) && !killed[i].Get() {
			win.Write(int64(i))
		}
	})
	return int(win.Get())
}

// PrefixSum replaces xs with its exclusive prefix sums and returns the
// total, using the work-efficient Blelloch scan: O(log n) steps, O(n) work.
// Internally the scan runs over a power-of-two padded copy; the padding
// adds at most a factor of two to the (already O(n)) work.
func PrefixSum(m *pram.Machine, xs []int64) int64 {
	n := len(xs)
	if n == 0 {
		return 0
	}
	pad := 1
	for pad < n {
		pad <<= 1
	}
	buf := make([]int64, pad)
	m.StepAll(n, func(p int) { buf[p] = xs[p] })
	// Up-sweep: buf[i] accumulates the sum of its subtree.
	for stride := 1; stride < pad; stride <<= 1 {
		s := stride
		m.StepAll(pad/(2*s), func(p int) {
			i := 2*s*(p+1) - 1
			buf[i] += buf[i-s]
		})
	}
	total := buf[pad-1]
	buf[pad-1] = 0
	m.Charge(1, 1) // the root clear is one write
	// Down-sweep: convert subtree sums to exclusive prefixes.
	for stride := pad / 2; stride >= 1; stride >>= 1 {
		s := stride
		m.StepAll(pad/(2*s), func(p int) {
			i := 2*s*(p+1) - 1
			l := i - s
			lv := buf[l]
			buf[l] = buf[i]
			buf[i] += lv
		})
	}
	m.StepAll(n, func(p int) { xs[p] = buf[p] })
	return total
}

// Compact returns the indices p in [0, n) with keep(p) true, in increasing
// order, using a prefix-sum scatter: O(log n) steps, O(n) work. This is the
// *exact* (non-approximate) compaction used at phase boundaries in §4.
func Compact(m *pram.Machine, n int, keep func(p int) bool) []int {
	flags := make([]int64, n)
	m.StepAll(n, func(p int) {
		if keep(p) {
			flags[p] = 1
		}
	})
	total := PrefixSum(m, flags)
	out := make([]int, total)
	m.StepAll(n, func(p int) {
		if keep(p) {
			out[flags[p]] = p
		}
	})
	return out
}
