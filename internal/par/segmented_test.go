package par

import (
	"testing"
	"testing/quick"

	"inplacehull/internal/pram"
	"inplacehull/internal/rng"
)

func TestSegmentedPrefixSumBasic(t *testing.T) {
	m := pram.New()
	xs := []int64{1, 2, 3, 4}
	seg := []bool{true, false, true, false}
	totals := SegmentedPrefixSum(m, xs, seg)
	want := []int64{0, 1, 0, 3}
	for i := range want {
		if xs[i] != want[i] {
			t.Fatalf("prefix[%d] = %d, want %d (all %v)", i, xs[i], want[i], xs)
		}
	}
	if len(totals) != 2 || totals[0] != 3 || totals[1] != 7 {
		t.Fatalf("totals = %v, want [3 7]", totals)
	}
}

func TestSegmentedPrefixSumSingleSegment(t *testing.T) {
	m := pram.New()
	xs := []int64{5, 1, 2}
	seg := []bool{true, false, false}
	totals := SegmentedPrefixSum(m, xs, seg)
	if xs[0] != 0 || xs[1] != 5 || xs[2] != 6 {
		t.Fatalf("prefix = %v", xs)
	}
	if len(totals) != 1 || totals[0] != 8 {
		t.Fatalf("totals = %v", totals)
	}
}

func TestSegmentedPrefixSumQuick(t *testing.T) {
	if err := quick.Check(func(seed uint64, nRaw uint8) bool {
		n := int(nRaw)%200 + 1
		s := rng.New(seed)
		xs := make([]int64, n)
		seg := make([]bool, n)
		seg[0] = true
		for i := range xs {
			xs[i] = int64(s.Intn(100))
			if i > 0 {
				seg[i] = s.Bernoulli(0.2)
			}
		}
		orig := append([]int64(nil), xs...)
		m := pram.New()
		totals := SegmentedPrefixSum(m, xs, seg)
		// Sequential reference.
		var run int64
		ti := -1
		var refTotals []int64
		for i := 0; i < n; i++ {
			if seg[i] {
				if ti >= 0 {
					refTotals = append(refTotals, run)
				}
				run = 0
				ti++
			}
			if xs[i] != run {
				return false
			}
			run += orig[i]
		}
		refTotals = append(refTotals, run)
		if len(totals) != len(refTotals) {
			return false
		}
		for i := range totals {
			if totals[i] != refTotals[i] {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestSegmentedPrefixSumSteps(t *testing.T) {
	m := pram.New()
	n := 1 << 14
	xs := make([]int64, n)
	seg := make([]bool, n)
	seg[0] = true
	for i := 0; i < n; i += 100 {
		seg[i] = true
	}
	SegmentedPrefixSum(m, xs, seg)
	if m.Time() > 80 {
		t.Fatalf("segmented scan took %d steps at n=2^14", m.Time())
	}
}

func TestSegmentedPrefixSumPanics(t *testing.T) {
	m := pram.New()
	defer func() {
		if recover() == nil {
			t.Fatal("seg[0]=false accepted")
		}
	}()
	SegmentedPrefixSum(m, []int64{1, 2}, []bool{false, true})
}

func TestBroadcast(t *testing.T) {
	m := pram.New()
	out := make([]int64, 1000)
	Broadcast(m, out, 42)
	for _, v := range out {
		if v != 42 {
			t.Fatal("broadcast missed a cell")
		}
	}
	if m.Time() != 1 {
		t.Fatalf("broadcast took %d steps", m.Time())
	}
}
