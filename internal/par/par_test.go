package par

import (
	"math"
	"sort"
	"testing"
	"testing/quick"

	"inplacehull/internal/pram"
	"inplacehull/internal/rng"
)

func TestOr(t *testing.T) {
	m := pram.New()
	if Or(m, 1000, func(p int) bool { return false }) {
		t.Fatal("all-false OR returned true")
	}
	if !Or(m, 1000, func(p int) bool { return p == 999 }) {
		t.Fatal("OR missed the set bit")
	}
	if m.Time() != 2 {
		t.Fatalf("Or must cost one step each, took %d total", m.Time())
	}
}

func TestCountTrue(t *testing.T) {
	m := pram.New()
	got := CountTrue(m, 10000, func(p int) bool { return p%3 == 0 })
	want := (10000 + 2) / 3
	if got != want {
		t.Fatalf("CountTrue = %d, want %d", got, want)
	}
}

func TestSum(t *testing.T) {
	for _, n := range []int{1, 2, 3, 100, 1023, 1024, 1025, 65536} {
		m := pram.New()
		xs := make([]int64, n)
		var want int64
		for i := range xs {
			xs[i] = int64(i % 17)
			want += xs[i]
		}
		if got := Sum(m, xs); got != want {
			t.Fatalf("n=%d: Sum = %d, want %d", n, got, want)
		}
	}
}

func TestSumStepsLogarithmic(t *testing.T) {
	m := pram.New()
	xs := make([]int64, 1<<16)
	Sum(m, xs)
	if m.Time() > 20 {
		t.Fatalf("Sum of 2^16 took %d steps; want ≤ log n + c", m.Time())
	}
}

func TestMaxIndex(t *testing.T) {
	m := pram.New()
	vals := []float64{3, 1, 4, 1, 5, 9, 2, 6, 5, 9}
	got := MaxIndex(m, len(vals), func(p int) float64 { return vals[p] })
	if got != 5 {
		t.Fatalf("MaxIndex = %d, want 5 (first of the ties)", got)
	}
}

func TestFirstOne(t *testing.T) {
	m := pram.New()
	for _, tc := range []struct {
		n    int
		set  []int
		want int
	}{
		{1, []int{0}, 0},
		{10, []int{7}, 7},
		{100, []int{99}, 99},
		{100, []int{3, 50, 99}, 3},
		{1000, nil, -1},
		{1 << 14, []int{12345, 12346}, 12345},
	} {
		isSet := map[int]bool{}
		for _, s := range tc.set {
			isSet[s] = true
		}
		got := FirstOne(m, tc.n, func(p int) bool { return isSet[p] })
		if got != tc.want {
			t.Fatalf("FirstOne(n=%d, set=%v) = %d, want %d", tc.n, tc.set, got, tc.want)
		}
	}
}

func TestFirstOneConstantSteps(t *testing.T) {
	// The step count must not grow with n — Observation 2.1.
	steps := func(n int) int64 {
		m := pram.New()
		FirstOne(m, n, func(p int) bool { return p == n-1 })
		return m.Time()
	}
	small, large := steps(1<<8), steps(1<<20)
	if large > small {
		t.Fatalf("FirstOne steps grew with n: %d → %d", small, large)
	}
}

func TestFirstOneQuick(t *testing.T) {
	if err := quick.Check(func(seed uint64, nRaw uint16, density uint8) bool {
		n := int(nRaw)%2000 + 1
		s := rng.New(seed)
		bits := make([]bool, n)
		want := -1
		for i := range bits {
			bits[i] = s.Bernoulli(float64(density) / 1024)
			if bits[i] && want == -1 {
				want = i
			}
		}
		m := pram.New()
		return FirstOne(m, n, func(p int) bool { return bits[p] }) == want
	}, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestPrefixSum(t *testing.T) {
	for _, n := range []int{1, 2, 3, 7, 8, 9, 1000, 4096, 10000} {
		m := pram.New()
		xs := make([]int64, n)
		orig := make([]int64, n)
		for i := range xs {
			xs[i] = int64((i * 7) % 13)
			orig[i] = xs[i]
		}
		total := PrefixSum(m, xs)
		var run int64
		for i := range xs {
			if xs[i] != run {
				t.Fatalf("n=%d: prefix[%d] = %d, want %d", n, i, xs[i], run)
			}
			run += orig[i]
		}
		if total != run {
			t.Fatalf("n=%d: total = %d, want %d", n, total, run)
		}
	}
}

func TestPrefixSumStepsLogarithmic(t *testing.T) {
	m := pram.New()
	xs := make([]int64, 1<<18)
	PrefixSum(m, xs)
	if m.Time() > 45 {
		t.Fatalf("PrefixSum of 2^18 took %d steps", m.Time())
	}
}

func TestCompact(t *testing.T) {
	m := pram.New()
	got := Compact(m, 100, func(p int) bool { return p%7 == 0 })
	want := []int{0, 7, 14, 21, 28, 35, 42, 49, 56, 63, 70, 77, 84, 91, 98}
	if len(got) != len(want) {
		t.Fatalf("Compact returned %d elements, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("Compact[%d] = %d, want %d", i, got[i], want[i])
		}
	}
}

func TestCompactEmpty(t *testing.T) {
	m := pram.New()
	if got := Compact(m, 50, func(p int) bool { return false }); len(got) != 0 {
		t.Fatalf("Compact of nothing returned %v", got)
	}
}

func TestSortByKey(t *testing.T) {
	s := rng.New(99)
	for _, n := range []int{0, 1, 2, 3, 100, 1000, 10000} {
		vals := make([]float64, n)
		for i := range vals {
			vals[i] = s.NormFloat64() * 1e6
		}
		// Include negatives, zeros and duplicates.
		if n > 10 {
			vals[3] = 0
			vals[4] = 0
			vals[5] = -vals[6]
		}
		m := pram.New()
		perm := SortByKey(m, n, func(i int) float64 { return vals[i] })
		if len(perm) != n {
			t.Fatalf("perm length %d, want %d", len(perm), n)
		}
		seen := make([]bool, n)
		for i := 0; i < n; i++ {
			if perm[i] < 0 || perm[i] >= n || seen[perm[i]] {
				t.Fatalf("not a permutation at %d", i)
			}
			seen[perm[i]] = true
			if i > 0 && vals[perm[i-1]] > vals[perm[i]] {
				t.Fatalf("n=%d: out of order at %d: %v > %v", n, i, vals[perm[i-1]], vals[perm[i]])
			}
		}
	}
}

func TestSortByKeyStability(t *testing.T) {
	vals := []float64{5, 3, 5, 3, 5, 3}
	m := pram.New()
	perm := SortByKey(m, len(vals), func(i int) float64 { return vals[i] })
	want := []int{1, 3, 5, 0, 2, 4}
	for i := range want {
		if perm[i] != want[i] {
			t.Fatalf("stability violated: perm=%v", perm)
		}
	}
}

func TestSortByKeyNegativeAndSpecial(t *testing.T) {
	vals := []float64{math.Inf(1), -math.Inf(1), 0, math.Copysign(0, -1), -1.5, 1.5, -1e-300, 1e-300}
	m := pram.New()
	perm := SortByKey(m, len(vals), func(i int) float64 { return vals[i] })
	got := make([]float64, len(vals))
	for i, p := range perm {
		got[i] = vals[p]
	}
	if !sort.Float64sAreSorted(got) {
		t.Fatalf("special values out of order: %v", got)
	}
}

func TestSortStepsLogarithmic(t *testing.T) {
	// Steps should scale like O(log n) (radixPasses · scan depth), so the
	// ratio of steps at n=2^16 vs n=2^10 must be far below the 64× size
	// ratio — it should be about 16/10.
	steps := func(n int) int64 {
		s := rng.New(7)
		vals := make([]float64, n)
		for i := range vals {
			vals[i] = s.Float64()
		}
		m := pram.New()
		SortByKey(m, n, func(i int) float64 { return vals[i] })
		return m.Time()
	}
	s10, s16 := steps(1<<10), steps(1<<16)
	if float64(s16) > 2.5*float64(s10) {
		t.Fatalf("sort steps not logarithmic: %d at 2^10 vs %d at 2^16", s10, s16)
	}
}
