package par

import (
	"testing"
	"testing/quick"

	"inplacehull/internal/pram"
	"inplacehull/internal/rng"
)

func TestListRankChain(t *testing.T) {
	// 0 → 1 → 2 → 3 → ⊥
	next := []int{1, 2, 3, -1}
	m := pram.New()
	rank := ListRank(m, next)
	want := []int64{3, 2, 1, 0}
	for i := range want {
		if rank[i] != want[i] {
			t.Fatalf("rank = %v, want %v", rank, want)
		}
	}
}

func TestListRankStepsLogarithmic(t *testing.T) {
	n := 1 << 14
	next := make([]int, n)
	for i := range next {
		next[i] = i + 1
	}
	next[n-1] = -1
	m := pram.New()
	ListRank(m, next)
	if m.Time() > 20 {
		t.Fatalf("list ranking took %d steps at n=2^14", m.Time())
	}
}

func TestListRankQuick(t *testing.T) {
	if err := quick.Check(func(seed uint64, nRaw uint8) bool {
		n := int(nRaw)%100 + 1
		// Random permutation list: perm[i] is the node after node i.
		s := rng.New(seed)
		order := s.Perm(n) // order[k] = k-th node from the head
		next := make([]int, n)
		for k := 0; k+1 < n; k++ {
			next[order[k]] = order[k+1]
		}
		next[order[n-1]] = -1
		m := pram.New()
		rank := ListRank(m, next)
		for k, node := range order {
			if rank[node] != int64(n-1-k) {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestListRankSingleton(t *testing.T) {
	m := pram.New()
	rank := ListRank(m, []int{-1})
	if len(rank) != 1 || rank[0] != 0 {
		t.Fatalf("rank = %v", rank)
	}
}
