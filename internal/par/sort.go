package par

import (
	"math"

	"inplacehull/internal/pram"
)

// The fallback path of the unsorted hull algorithm (§4.1 step 3) needs "any
// O(log n) time, n processor" hull algorithm. We substitute a parallel sort
// followed by the library's pre-sorted constant-time hull (see DESIGN.md).
// The sort is an order-preserving LSD radix sort on the IEEE-754 bit
// patterns of the keys: digits of radixBits bits, one stable
// counting-scatter pass per digit. Each pass is a single prefix sum over a
// radixSize×n indicator matrix stored column-major, so the pass costs
// O(log n) steps and O(radixSize·n) work; the whole sort is O(log n) steps
// and O(n) work with a radix-sized constant — the usual CRCW trade.

const radixBits = 4
const radixSize = 1 << radixBits
const radixPasses = 64 / radixBits

// floatKey maps a float64 to a uint64 whose unsigned order matches the
// float order (standard sign-flip trick; NaNs sort after +Inf).
func floatKey(f float64) uint64 {
	b := math.Float64bits(f)
	if b&(1<<63) != 0 {
		return ^b
	}
	return b | (1 << 63)
}

// SortByKey returns a permutation perm of [0, n) such that
// key(perm[0]) ≤ key(perm[1]) ≤ … The sort is stable with respect to the
// original indices, so equal keys keep index order.
func SortByKey(m *pram.Machine, n int, key func(i int) float64) []int {
	if n == 0 {
		return nil
	}
	keys := make([]uint64, n)
	perm := make([]int, n)
	m.StepAll(n, func(p int) {
		keys[p] = floatKey(key(p))
		perm[p] = p
	})
	tmpKeys := make([]uint64, n)
	tmpPerm := make([]int, n)
	// flat[d*n + p] = 1 iff element p has digit d in the current pass.
	// An exclusive prefix sum over flat, read column-major, is exactly the
	// stable destination of each element.
	flat := make([]int64, radixSize*n)

	for pass := 0; pass < radixPasses; pass++ {
		shift := uint(pass * radixBits)
		m.StepAll(radixSize*n, func(q int) { flat[q] = 0 })
		m.StepAll(n, func(p int) {
			d := int((keys[p] >> shift) & (radixSize - 1))
			flat[d*n+p] = 1
		})
		PrefixSum(m, flat)
		m.StepAll(n, func(p int) {
			d := int((keys[p] >> shift) & (radixSize - 1))
			dst := flat[d*n+p]
			tmpKeys[dst] = keys[p]
			tmpPerm[dst] = perm[p]
		})
		keys, tmpKeys = tmpKeys, keys
		perm, tmpPerm = tmpPerm, perm
	}
	return perm
}
