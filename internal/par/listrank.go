package par

import "inplacehull/internal/pram"

// ListRank computes, for every node of a linked list given by next
// pointers (next[i] = −1 at the tail), its distance to the tail — the
// classic pointer-jumping primitive: O(log n) steps, O(n log n) work on an
// EREW/CRCW PRAM. The paper's output structure ("the hull edges in a
// binary tree" with per-point pointers) is exactly the kind of linked
// structure list ranking linearizes.
func ListRank(m *pram.Machine, next []int) []int64 {
	n := len(next)
	rank := make([]int64, n)
	jump := make([]int, n)
	m.StepAll(n, func(p int) {
		jump[p] = next[p]
		if next[p] != -1 {
			rank[p] = 1
		}
	})
	// ⌈log₂ n⌉ pointer-jumping rounds; double buffers keep the
	// synchronous read-before-write discipline.
	nextJump := make([]int, n)
	nextRank := make([]int64, n)
	for stride := 1; stride < n; stride <<= 1 {
		m.StepAll(n, func(p int) {
			if jump[p] != -1 {
				nextRank[p] = rank[p] + rank[jump[p]]
				nextJump[p] = jump[jump[p]]
			} else {
				nextRank[p] = rank[p]
				nextJump[p] = -1
			}
		})
		jump, nextJump = nextJump, jump
		rank, nextRank = nextRank, rank
	}
	return rank
}
