package par

import "inplacehull/internal/pram"

// Segmented primitives: the phase-boundary bookkeeping of §4.1 step 3
// ("reassign the work space among the remaining problems") is, in PRAM
// folklore, a segmented prefix sum — each subproblem's points are counted
// and offset independently, all in one scan. These are the standard
// work-efficient constructions.

// SegmentedPrefixSum replaces xs with per-segment exclusive prefix sums:
// seg[i] marks the first element of each segment. Returns the per-segment
// totals in segment order. O(log n) steps, O(n) work — a Blelloch scan
// over (value, flag) pairs with the segmented-sum operator.
//
// The two panics below are programmer-error contracts, not recoverable
// failure modes: len(seg) == len(xs) and seg[0] == true are invariants
// every caller establishes structurally (segment flags are built alongside
// the value array, and the first element always opens a segment). They are
// never reachable from user input, so they stay panics rather than joining
// the hullerr taxonomy — a violation means the calling phase is broken and
// fail-fast is the right response.
func SegmentedPrefixSum(m *pram.Machine, xs []int64, seg []bool) []int64 {
	n := len(xs)
	if n == 0 {
		return nil
	}
	if len(seg) != n {
		panic("par: seg length mismatch")
	}
	if !seg[0] {
		panic("par: seg[0] must start the first segment")
	}
	pad := 1
	for pad < n {
		pad <<= 1
	}
	val := make([]int64, pad)
	flg := make([]bool, pad)
	m.StepAll(n, func(p int) {
		val[p] = xs[p]
		flg[p] = seg[p]
	})
	// Up-sweep with the segmented operator:
	// (v1,f1) ⊕ (v2,f2) = (f2 ? v2 : v1+v2, f1∨f2).
	type node struct {
		v int64
		f bool
	}
	// Save the up-sweep inputs per level for the down-sweep.
	levels := [][]node{}
	cur := make([]node, pad)
	m.StepAll(pad, func(p int) { cur[p] = node{val[p], flg[p]} })
	for width := pad; width > 1; width /= 2 {
		levels = append(levels, cur)
		next := make([]node, width/2)
		c := cur
		m.StepAll(width/2, func(p int) {
			l, r := c[2*p], c[2*p+1]
			v := l.v + r.v
			if r.f {
				v = r.v
			}
			next[p] = node{v, l.f || r.f}
		})
		cur = next
	}
	// Down-sweep: carry the prefix from the left, cut at segment flags.
	carry := make([]int64, 1)
	for li := len(levels) - 1; li >= 0; li-- {
		lvl := levels[li]
		nextCarry := make([]int64, len(lvl))
		cIn := carry
		m.StepAll(len(lvl)/2, func(p int) {
			l := lvl[2*p]
			nextCarry[2*p] = cIn[p]
			if l.f {
				nextCarry[2*p+1] = l.v
			} else {
				nextCarry[2*p+1] = cIn[p] + l.v
			}
		})
		carry = nextCarry
	}
	m.StepAll(n, func(p int) {
		if seg[p] {
			xs[p] = 0
		} else {
			xs[p] = carry[p]
		}
	})
	// Collect per-segment totals (exclusive prefix at the next segment
	// start, plus that segment's span): one compaction pass.
	startIdx := Compact(m, n, func(p int) bool { return seg[p] })
	totals := make([]int64, len(startIdx))
	m.StepAll(len(startIdx), func(s int) {
		end := n
		if s+1 < len(startIdx) {
			end = startIdx[s+1]
		}
		var t int64
		// Total = prefix at last element + its value; recover from the
		// original values — but xs was overwritten, so recompute from the
		// carries: prefix(last) + val(last).
		t = xs[end-1] + val[end-1]
		totals[s] = t
	})
	return totals
}

// Broadcast writes v to out[p] for every p in [0, n) in one step — the
// CRCW broadcast (a single concurrent-read in the model).
func Broadcast(m *pram.Machine, out []int64, v int64) {
	m.StepAll(len(out), func(p int) { out[p] = v })
}
