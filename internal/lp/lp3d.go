package lp

import (
	"math"

	"inplacehull/internal/compact"
	"inplacehull/internal/fault"
	"inplacehull/internal/geom"
	"inplacehull/internal/obs"
	"inplacehull/internal/pram"
	"inplacehull/internal/rng"
)

// Solution3D is the basis of a 3-d bridge LP: the supporting plane through
// A, B, C — the upper-hull facet above the splitter (Observation 2.4 in
// three variables: minimize a·xs + b·ys + c subject to a·x_i + b·y_i + c ≥
// z_i). Degenerate bases repeat points: a single point (horizontal plane)
// or an edge (the plane through the edge, horizontal in the orthogonal
// direction, realized by the top-point rule below).
type Solution3D struct {
	A, B, C geom.Point3
}

// Degenerate reports whether the basis has fewer than three distinct,
// xy-affinely-independent points.
func (s Solution3D) Degenerate() bool {
	if s.A == s.B || s.B == s.C || s.A == s.C {
		return true
	}
	return geom.Orientation(pxy(s.A), pxy(s.B), pxy(s.C)) == 0
}

func pxy(p geom.Point3) geom.Point { return geom.Point{X: p.X, Y: p.Y} }

// Violates reports whether point z lies strictly above the solution plane,
// evaluated exactly (Orientation3). For degenerate solutions the test is
// against the horizontal plane through the highest basis point.
func (s Solution3D) Violates(z geom.Point3) bool {
	if s.Degenerate() {
		top := math.Max(s.A.Z, math.Max(s.B.Z, s.C.Z))
		return z.Z > top
	}
	// Orient (A, B, C) counter-clockwise seen from above so that
	// Orientation3(A, B, C, z) > 0 means z strictly above the plane.
	a, b, c := s.A, s.B, s.C
	if geom.Orientation(pxy(a), pxy(b), pxy(c)) < 0 {
		b, c = c, b
	}
	return geom.Orientation3(a, b, c, z) > 0
}

// ValueAt returns the plane height at (x, y); degenerate solutions report
// the top basis z.
func (s Solution3D) ValueAt(x, y float64) float64 {
	if s.Degenerate() {
		return math.Max(s.A.Z, math.Max(s.B.Z, s.C.Z))
	}
	return geom.PlaneThrough(s.A, s.B, s.C).Eval(x, y)
}

// solveBase3D solves the 3-d bridge LP at the splitter's (x, y) over a
// small base by enumerating all triples (Observation 2.2 with d = 3). Pure
// host computation; drivers charge the |base|⁴ model cost.
func solveBase3D(base []geom.Point3, sx, sy float64) (Solution3D, bool) {
	b := len(base)
	if b == 0 {
		return Solution3D{}, false
	}
	bestSet := false
	var best Solution3D
	var bestV float64
	for i := 0; i < b; i++ {
		for j := i + 1; j < b; j++ {
			for l := j + 1; l < b; l++ {
				p1, p2, p3 := base[i], base[j], base[l]
				if geom.Orientation(pxy(p1), pxy(p2), pxy(p3)) == 0 {
					continue // xy-collinear: not a plane basis
				}
				cand := Solution3D{A: p1, B: p2, C: p3}
				// Feasible iff no base point lies strictly above. Basis
				// points are on the plane by construction; skipping them
				// avoids the exact-arithmetic zero-determinant path.
				feasible := true
				for _, z := range base {
					if z == p1 || z == p2 || z == p3 {
						continue
					}
					if cand.Violates(z) {
						feasible = false
						break
					}
				}
				if !feasible {
					continue
				}
				v := cand.ValueAt(sx, sy)
				if !bestSet || v < bestV {
					best, bestV, bestSet = cand, v, true
				}
			}
		}
	}
	if !bestSet {
		// All triples degenerate (or fewer than 3 points): the horizontal
		// plane through the topmost point.
		top := base[0]
		for _, p := range base[1:] {
			if p.Z > top.Z {
				top = p
			}
		}
		return Solution3D{A: top, B: top, C: top}, true
	}
	return best, true
}

// BruteForce3D is Observation 2.2 with d = 3 run end-to-end on the machine:
// O(1) steps with |base|⁴ processors.
func BruteForce3D(m *pram.Machine, base []geom.Point3, sx, sy float64) (Solution3D, bool) {
	b := int64(len(base))
	m.Charge(3, b*b*b*b)
	return solveBase3D(base, sx, sy)
}

// Problem3D describes one 3-d facet-finding problem of a batch.
type Problem3D struct {
	// Splitter is the point above which the facet is sought.
	Splitter geom.Point3
	// K is the base-problem size parameter (the paper's k = p^(1/4)).
	K int
	// MLive is the (estimated) number of live positions.
	MLive int
}

// Result3D is the outcome of one problem of a 3-d batch.
type Result3D struct {
	Sol           Solution3D
	OK            bool
	Iterations    int
	SurvivorTrace []int
	SweptIn       bool
}

// BatchBridge3D runs in-place facet finding (§3.3, 3-d case: base size
// k = p^(1/4)) for all problems simultaneously over n virtual processors.
// The structure is identical to BatchBridge2D; see that function.
func BatchBridge3D(m *pram.Machine, rnd *rng.Stream, n int, pt func(int) geom.Point3, probID func(int) int, problems []Problem3D) []Result3D {
	q := len(problems)
	res := make([]Result3D, q)
	if q == 0 {
		return res
	}
	// Injected non-convergence (Lemma 4.2's failure event): a poisoned
	// problem is never allowed to finish, so it exhausts the β-iteration
	// budget and returns OK = false for the caller's failure sweep.
	inj := fault.On(rnd)
	poisoned := make([]bool, q)
	for j := range problems {
		if inj.Hit(fault.LPTimeout) {
			poisoned[j] = true
		}
	}
	off := make([]int, q+1)
	for j, pr := range problems {
		k := pr.K
		if k < 3 {
			k = 3
		}
		off[j+1] = off[j] + SpaceFactor*k
	}
	totalCells := off[q]
	release := m.AllocScratch(int64(totalCells))
	defer release()

	cells := make([]pram.ClaimCell, totalCells)
	pram.ResetClaims(cells)
	frozen := make([]bool, totalCells)

	sols := make([]Solution3D, q)
	haveSol := make([]bool, q)
	finished := make([]bool, q)
	prob := make([]float64, q)
	for j, pr := range problems {
		k := float64(max(3, pr.K))
		prob[j] = math.Min(1, 2*k/math.Max(1, float64(pr.MLive)))
	}

	violates := func(v int) (int, bool) {
		j := probID(v)
		if j < 0 || finished[j] {
			return j, false
		}
		if !haveSol[j] {
			return j, true
		}
		s := sols[j]
		p := pt(v)
		if s.Degenerate() {
			// As in the 2-d case: a degenerate (top-point / xy-collinear)
			// solution is only terminal when every live point shares the
			// basis' xy-footprint.
			if s.Violates(p) {
				return j, true
			}
			off := pxy(p) != pxy(s.A) && pxy(p) != pxy(s.B) && pxy(p) != pxy(s.C)
			return j, off
		}
		return j, s.Violates(p)
	}

	solveRound := func(members [][]geom.Point3) {
		defer obs.Span(m, "lp-iter")()
		var work int64
		for j := range problems {
			if finished[j] {
				continue
			}
			base := members[j]
			base = append(base, problems[j].Splitter)
			if haveSol[j] {
				base = append(base, sols[j].A, sols[j].B, sols[j].C)
			}
			b := int64(len(base))
			work += b * b * b * b
			if s, ok := solveBase3D(base, problems[j].Splitter.X, problems[j].Splitter.Y); ok {
				sols[j] = s
				haveSol[j] = true
			}
			res[j].Iterations++
		}
		m.Charge(3, work)
	}

	surviveRound := func() {
		anyS := make([]pram.OrCell, q)
		m.Step(n, func(v int) bool {
			j, viol := violates(v)
			if j < 0 || finished[j] {
				return false
			}
			if viol {
				anyS[j].Set()
			}
			return true
		})
		if Trace {
			counts := make([]int, q)
			for v := 0; v < n; v++ {
				if j, viol := violates(v); j >= 0 && !finished[j] && viol {
					counts[j]++
				}
			}
			for j := range problems {
				if !finished[j] {
					res[j].SurvivorTrace = append(res[j].SurvivorTrace, counts[j])
				}
			}
		}
		for j := range problems {
			if finished[j] || poisoned[j] {
				continue
			}
			if !anyS[j].Get() {
				finished[j] = true
				res[j].Sol = sols[j]
				res[j].OK = true
			}
		}
	}

	placed := make([]bool, n)
	sampleRound := func(round uint64, forceProb bool) [][]geom.Point3 {
		// §3.1 steps 1–4 with claim retries, as in BatchBridge2D.
		if inj.Hit(fault.SampleStorm) {
			// Injected claim-collision storm: the whole round's samples come
			// back empty; the iteration is spent with nothing to show.
			m.Charge(2*sampleAttempts+2, int64(sampleAttempts)*int64(n)+int64(totalCells))
			return make([][]geom.Point3, q)
		}
		for c := range cells {
			frozen[c] = false
			cells[c].Reset()
		}
		for v := range placed {
			placed[v] = false
		}
		m.Charge(1, int64(totalCells)+int64(n))
		base := rnd.Split(0xabc + round)
		attempting := make([]bool, n)
		m.Step(n, func(v int) bool {
			j, viol := violates(v)
			if j < 0 || finished[j] || !viol {
				return false
			}
			p := prob[j]
			if forceProb {
				p = 1
			}
			attempting[v] = base.Split(uint64(v)).Bernoulli(p)
			return true
		})
		for a := 0; a < sampleAttempts; a++ {
			aa := uint64(a)
			m.Step(n, func(v int) bool {
				if !attempting[v] || placed[v] {
					return false
				}
				j := probID(v)
				s := base.Split(uint64(v)*sampleAttempts + aa + 0x9000)
				span := off[j+1] - off[j]
				slot := off[j] + s.Intn(span)
				if !frozen[slot] {
					cells[slot].Claim(int64(v))
				}
				return true
			})
			m.Step(totalCells, func(c int) bool {
				if frozen[c] {
					return false
				}
				owner := cells[c].Owner()
				if owner < 0 {
					return false
				}
				if cells[c].Contested() {
					cells[c].Reset()
				} else {
					frozen[c] = true
					placed[owner] = true
				}
				return true
			})
		}
		m.Charge(1, int64(totalCells))
		members := make([][]geom.Point3, q)
		for j := 0; j < q; j++ {
			capM := 4 * max(3, problems[j].K)
			for c := off[j]; c < off[j+1] && len(members[j]) < capM; c++ {
				if frozen[c] {
					members[j] = append(members[j], pt(int(cells[c].Owner())))
				}
			}
		}
		return members
	}

	for j := 0; j < DefaultBeta; j++ {
		members := sampleRound(uint64(j), false)
		solveRound(members)
		surviveRound()
		allDone := true
		for i := range finished {
			if !finished[i] {
				allDone = false
			}
			prob[i] = math.Min(1, 2*float64(max(3, problems[i].K))*prob[i])
		}
		if allDone {
			return res
		}
	}

	allDone := func() bool {
		for i := range finished {
			if !finished[i] {
				return false
			}
		}
		return true
	}
	for attempt := 0; attempt < terminalAttempts; attempt++ {
		members := make([][]geom.Point3, q)
		anyCompacted := false
		// Disjoint per-problem compactions run concurrently in the model.
		var fns []func(*pram.Machine)
		for j := range problems {
			if finished[j] {
				continue
			}
			k := max(3, problems[j].K)
			jj := j
			fns = append(fns, func(sub *pram.Machine) {
				ids, ok := compact.InPlaceCompactArea(sub, rnd.Split(0xf00+uint64(attempt)*64+uint64(jj)), n, SpaceFactor*k, SpaceFactor*k, 0.34, func(v int) bool {
					pj, viol := violates(v)
					return pj == jj && viol
				})
				if !ok {
					return
				}
				res[jj].SweptIn = true
				anyCompacted = true
				for _, v := range ids {
					members[jj] = append(members[jj], pt(v))
				}
			})
		}
		m.Concurrent(fns...)
		if anyCompacted {
			solveRound(members)
			surviveRound()
			if allDone() {
				return res
			}
		}
		members = sampleRound(0x40+uint64(attempt), true)
		solveRound(members)
		surviveRound()
		if allDone() {
			return res
		}
	}
	for j := range problems {
		if !finished[j] {
			res[j].Sol = sols[j]
			res[j].OK = false
		}
	}
	return res
}

// Bridge3D runs a single in-place facet-finding problem (a batch of one).
func Bridge3D(m *pram.Machine, rnd *rng.Stream, n int, pt func(int) geom.Point3, live func(int) bool, mLive int, splitter geom.Point3, k int) Result3D {
	pid := func(v int) int {
		if live(v) {
			return 0
		}
		return -1
	}
	res := BatchBridge3D(m, rnd, n, pt, pid, []Problem3D{{Splitter: splitter, K: k, MLive: mLive}})
	return res[0]
}
