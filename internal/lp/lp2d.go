// Package lp implements the linear-programming machinery the paper's hull
// algorithms are built from:
//
//   - Observation 2.4 — bridge finding reduces to linear programming: the
//     upper-hull edge crossing the vertical line x = a is the line y = Mx+B
//     minimizing M·a + B subject to M·x_i + B ≥ y_i for every point i. We
//     represent solutions by their defining points (the LP basis), so all
//     feasibility tests are exact orientation predicates.
//   - Observation 2.2 — brute-force LP: with |base|^(d+1) processors all
//     d-tuples of constraints are checked for feasibility in O(1) steps.
//   - §3.3 — in-place bridge finding, in its full generality: "finding the
//     bridge for each of q point sets (each with its own splitter), in an
//     array of n points, such that the points corresponding to any one
//     point-set cannot be assumed to be contiguous". BatchBridge2D runs all
//     q problems simultaneously with the escalating re-sampling schedule
//     p_j = min{1, 2k·p_{j−1}} and a terminal in-place compaction of each
//     problem's survivors into its base (Lemma 3.2).
//
// Positions are *virtual processor* indices: callers map them to points and
// problems however they like (the pre-sorted algorithm maps n·log n virtual
// processors onto (point, tree-level) pairs). Elements are never moved —
// the in-place property — and per-problem work space is Θ(k).
package lp

import (
	"math"

	"inplacehull/internal/compact"
	"inplacehull/internal/fault"
	"inplacehull/internal/geom"
	"inplacehull/internal/obs"
	"inplacehull/internal/pram"
	"inplacehull/internal/rng"
)

// Solution2D is the basis of a 2-d bridge LP: the supporting line through U
// and W (U.X ≤ W.X). If U == W the solution is degenerate — a single
// extreme point (every constraint shares its x) — and the supporting
// "line" is horizontal through U.
type Solution2D struct {
	U, W geom.Point
}

// Degenerate reports whether the solution is a single point.
func (s Solution2D) Degenerate() bool { return s.U == s.W }

// Violates reports whether point z lies strictly above the solution — the
// §3.3 survivor test, evaluated exactly.
func (s Solution2D) Violates(z geom.Point) bool {
	if s.Degenerate() {
		return z.Y > s.U.Y
	}
	return geom.AboveLine(z, s.U, s.W)
}

// ValueAt returns the solution line's height at x.
func (s Solution2D) ValueAt(x float64) float64 {
	if s.Degenerate() {
		return s.U.Y
	}
	return s.U.Y + (s.W.Y-s.U.Y)*(x-s.U.X)/(s.W.X-s.U.X)
}

// solveBase2D solves the bridge LP at abscissa a over a small base by
// enumerating all pairs (Observation 2.2); pure host computation — the
// drivers charge its model cost explicitly. The base must contain a point
// with x ≤ a and one with x ≥ a.
func solveBase2D(base []geom.Point, a float64) (Solution2D, bool) {
	b := len(base)
	if b == 0 {
		return Solution2D{}, false
	}
	bestSet := false
	var best Solution2D
	for i := 0; i < b; i++ {
		for j := i + 1; j < b; j++ {
			u, w := base[i], base[j]
			if u.X > w.X {
				u, w = w, u
			}
			if u.X == w.X || !(u.X <= a && a <= w.X) {
				continue
			}
			feasible := true
			for _, z := range base {
				if z == u || z == w {
					continue
				}
				if geom.AboveLine(z, u, w) {
					feasible = false
					break
				}
			}
			if !feasible {
				continue
			}
			cand := Solution2D{U: u, W: w}
			if !bestSet {
				best, bestSet = cand, true
				continue
			}
			cv, bv := cand.ValueAt(a), best.ValueAt(a)
			if cv < bv || (cv == bv && cand.W.X-cand.U.X > best.W.X-best.U.X) {
				best = cand
			}
		}
	}
	if !bestSet {
		// No straddling non-vertical pair: degenerate solution, the
		// topmost base point.
		top := base[0]
		for _, p := range base[1:] {
			if p.Y > top.Y {
				top = p
			}
		}
		return Solution2D{U: top, W: top}, true
	}
	return best, true
}

// BruteForce2D is Observation 2.2 run end-to-end on the machine: solve the
// bridge LP at a over the base in O(1) steps with |base|³ processors (the
// feasibility matrix is evaluated by one synchronous step; the minimum
// extraction over the |base|² candidates is charged as one further step).
func BruteForce2D(m *pram.Machine, base []geom.Point, a float64) (Solution2D, bool) {
	b := len(base)
	if b == 0 {
		return Solution2D{}, false
	}
	infeasible := make([]pram.OrCell, b*b)
	m.StepAll(b*b*b, func(q int) {
		pair := q / b
		z := base[q%b]
		i, j := pair/b, pair%b
		if i >= j {
			return
		}
		u, w := base[i], base[j]
		if u.X > w.X {
			u, w = w, u
		}
		if u.X == w.X || !(u.X <= a && a <= w.X) {
			infeasible[pair].Set()
			return
		}
		if geom.AboveLine(z, u, w) {
			infeasible[pair].Set()
		}
	})
	m.Charge(1, int64(b*b))
	bestSet := false
	var best Solution2D
	for i := 0; i < b; i++ {
		for j := i + 1; j < b; j++ {
			if infeasible[i*b+j].Get() {
				continue
			}
			u, w := base[i], base[j]
			if u.X > w.X {
				u, w = w, u
			}
			cand := Solution2D{U: u, W: w}
			if !bestSet {
				best, bestSet = cand, true
				continue
			}
			cv, bv := cand.ValueAt(a), best.ValueAt(a)
			if cv < bv || (cv == bv && cand.W.X-cand.U.X > best.W.X-best.U.X) {
				best = cand
			}
		}
	}
	if !bestSet {
		top := base[0]
		for _, p := range base[1:] {
			if p.Y > top.Y {
				top = p
			}
		}
		return Solution2D{U: top, W: top}, true
	}
	return best, true
}

// Problem2D describes one bridge-finding problem of a batch.
type Problem2D struct {
	// Splitter is a live point that joins every base problem, keeping the
	// LP bounded.
	Splitter geom.Point
	// A is the objective abscissa: the bridge minimizes its height at
	// x = A. Zero value means "use Splitter.X" (the §4.1 usage). The
	// pre-sorted algorithm instead aims at the midpoint of the gap
	// between the two points around the tree node's median, which makes
	// the optimum unique and guarantees the bridge crosses that boundary
	// — the property its coverage filter depends on.
	A float64
	// HasA distinguishes an explicit A from the zero value.
	HasA bool
	// Anchor, when HasAnchor is set, is a second live point joined to
	// every base problem. The pre-sorted algorithm anchors the point just
	// left of its gap so every base contains a pair straddling A and the
	// solution can never collapse to the degenerate top-point cap.
	Anchor    geom.Point
	HasAnchor bool
	// K is the base-problem size parameter (the paper's k = p^(1/3)).
	K int
	// MLive is the (estimated) number of live positions of this problem,
	// setting the initial write probability 2k/m.
	MLive int
}

// abscissa returns the objective abscissa of the problem.
func (p Problem2D) abscissa() float64 {
	if p.HasA {
		return p.A
	}
	return p.Splitter.X
}

// Result2D is the outcome of one problem of a batch.
type Result2D struct {
	Sol Solution2D
	// OK is false if the problem did not converge within the iteration
	// budget; the caller's failure sweeping (§2.3) must resolve it.
	OK bool
	// Iterations is the number of base problems solved for this problem.
	Iterations int
	// SurvivorTrace records the survivor count after each iteration
	// (instrumentation for experiment E7; gathered host-side, not charged).
	SurvivorTrace []int
	// SweptIn reports whether the terminal in-place compaction ran.
	SweptIn bool
}

// DefaultBeta is the constant β of §3.3 step 4: iterations before the
// survivors are compacted into the base problem.
const DefaultBeta = 4

// Trace enables host-side exact survivor counting per iteration
// (Result2D.SurvivorTrace / Result3D.SurvivorTrace). It is instrumentation
// for experiment E7 only and costs an O(n) host scan per round, so it is
// off by default.
var Trace = false

// SpaceFactor is the per-problem work space multiple (16k, as in §3.1).
const SpaceFactor = 16

// sampleAttempts is the constant d of §3.1 step 4: claim retry rounds
// within one sampling round.
const sampleAttempts = 3

// terminalAttempts bounds the §3.3 step 4 compact-then-resample loop.
const terminalAttempts = 3

// MaxRoundsPerBridge bounds the solveRound invocations (obs "lp-iter"
// spans) of one BatchBridge call: β deterministic rounds plus at most
// two per terminal attempt — Lemma 4.2's constant-iteration bound as it
// manifests in this implementation. Experiment E16 checks observed span
// counts against it.
const MaxRoundsPerBridge = DefaultBeta + 2*terminalAttempts

// BatchBridge2D runs the in-place bridge-finding procedure of §3.3 for all
// problems simultaneously over n virtual processors. pt(v) is the point
// virtual processor v stands by; probID(v) is the problem it belongs to
// (−1 if dead or unassigned). All per-round operations — sampling claims,
// base solving, survivor marking — are single synchronous steps across the
// whole array, so the step count is O(β) = O(1) regardless of q, exactly
// the property the paper's divide-and-conquer needs.
func BatchBridge2D(m *pram.Machine, rnd *rng.Stream, n int, pt func(int) geom.Point, probID func(int) int, problems []Problem2D) []Result2D {
	q := len(problems)
	res := make([]Result2D, q)
	if q == 0 {
		return res
	}
	// Fault injection (LPTimeout): a poisoned problem is never marked
	// finished, so it burns its full iteration budget and reports OK =
	// false — the Lemma 4.1/4.2 non-convergence event the caller's failure
	// sweeping must absorb.
	inj := fault.On(rnd)
	poisoned := make([]bool, q)
	for j := range problems {
		if inj.Hit(fault.LPTimeout) {
			poisoned[j] = true
		}
	}
	// Work-space layout: problem j owns cells [off[j], off[j+1]).
	off := make([]int, q+1)
	for j, pr := range problems {
		k := pr.K
		if k < 2 {
			k = 2
		}
		off[j+1] = off[j] + SpaceFactor*k
	}
	totalCells := off[q]
	release := m.AllocScratch(int64(totalCells))
	defer release()

	cells := make([]pram.ClaimCell, totalCells)
	pram.ResetClaims(cells)
	frozen := make([]bool, totalCells)

	sols := make([]Solution2D, q)
	haveSol := make([]bool, q)
	finished := make([]bool, q)
	prob := make([]float64, q)
	for j, pr := range problems {
		k := float64(max(2, pr.K))
		prob[j] = math.Min(1, 2*k/math.Max(1, float64(pr.MLive)))
	}

	violates := func(v int) (int, bool) {
		j := probID(v)
		if j < 0 || finished[j] {
			return j, false
		}
		if !haveSol[j] {
			return j, true
		}
		s := sols[j]
		p := pt(v)
		if s.Degenerate() {
			// A top-point solution is only terminal for a vertical-column
			// problem: any point off the column still needs a proper
			// bridge, so it counts as a survivor — otherwise a degenerate
			// solution through the problem's maximum would terminate
			// vacuously and strand the off-column points.
			return j, p.Y > s.U.Y || p.X != s.U.X
		}
		return j, s.Violates(p)
	}

	solveRound := func(members [][]geom.Point) {
		// Solve every unfinished problem's base; one O(1)-step round of
		// Σ|base|³ processors in the model. One "lp-iter" span per round
		// lets experiment E16 count rounds against Lemma 4.2's bound.
		defer obs.Span(m, "lp-iter")()
		var work int64
		for j := range problems {
			if finished[j] {
				continue
			}
			base := members[j]
			base = append(base, problems[j].Splitter)
			if problems[j].HasAnchor {
				base = append(base, problems[j].Anchor)
			}
			if haveSol[j] {
				base = append(base, sols[j].U, sols[j].W)
			}
			b := int64(len(base))
			work += b * b * b
			if s, ok := solveBase2D(base, problems[j].abscissa()); ok {
				sols[j] = s
				haveSol[j] = true
			}
			res[j].Iterations++
		}
		m.Charge(2, work)
	}

	surviveRound := func() {
		// Survivor marking and the per-problem "any survivor?" OR, one
		// step over the virtual array. When Trace is on, exact survivor
		// counts are also gathered host-side (instrumentation only, E7).
		anyS := make([]pram.OrCell, q)
		m.Step(n, func(v int) bool {
			j, viol := violates(v)
			if j < 0 || finished[j] {
				return false
			}
			if viol {
				anyS[j].Set()
			}
			return true
		})
		if Trace {
			counts := make([]int, q)
			for v := 0; v < n; v++ {
				if j, viol := violates(v); j >= 0 && !finished[j] && viol {
					counts[j]++
				}
			}
			for j := range problems {
				if !finished[j] {
					res[j].SurvivorTrace = append(res[j].SurvivorTrace, counts[j])
				}
			}
		}
		for j := range problems {
			if finished[j] || poisoned[j] {
				continue
			}
			if !anyS[j].Get() {
				finished[j] = true
				res[j].Sol = sols[j]
				res[j].OK = true
			}
		}
	}

	placed := make([]bool, n)
	sampleRound := func(round uint64, forceProb bool) [][]geom.Point {
		// Fault injection (SampleStorm): the whole sampling round
		// collides; every base comes back empty and the survivors stay
		// survivors for the next round.
		if inj.Hit(fault.SampleStorm) {
			m.Charge(2*sampleAttempts+2, int64(sampleAttempts)*int64(n)+int64(totalCells))
			return make([][]geom.Point, q)
		}
		// §3.1 steps 1–4: each writer claims a random cell of its
		// problem's block; collisions retry for sampleAttempts rounds.
		for c := range cells {
			frozen[c] = false
			cells[c].Reset()
		}
		for v := range placed {
			placed[v] = false
		}
		m.Charge(1, int64(totalCells)+int64(n)) // work-space reset step
		base := rnd.Split(0xabc + round)
		attempting := make([]bool, n)
		m.Step(n, func(v int) bool {
			j, viol := violates(v)
			if j < 0 || finished[j] || !viol {
				return false
			}
			p := prob[j]
			if forceProb {
				p = 1
			}
			attempting[v] = base.Split(uint64(v)).Bernoulli(p)
			return true
		})
		for a := 0; a < sampleAttempts; a++ {
			aa := uint64(a)
			m.Step(n, func(v int) bool {
				if !attempting[v] || placed[v] {
					return false
				}
				j := probID(v)
				s := base.Split(uint64(v)*sampleAttempts + aa + 0x9000)
				span := off[j+1] - off[j]
				slot := off[j] + s.Intn(span)
				if !frozen[slot] {
					cells[slot].Claim(int64(v))
				}
				return true
			})
			m.Step(totalCells, func(c int) bool {
				if frozen[c] {
					return false
				}
				owner := cells[c].Owner()
				if owner < 0 {
					return false
				}
				if cells[c].Contested() {
					cells[c].Reset()
				} else {
					frozen[c] = true
					placed[owner] = true
				}
				return true
			})
		}
		// Reading members out of the work space: one step of totalCells
		// processors. Bases are capped at Θ(k) members — the base problem
		// must stay brute-forceable with the problem's processor share;
		// excess survivors simply stay survivors for later rounds.
		m.Charge(1, int64(totalCells))
		members := make([][]geom.Point, q)
		for j := 0; j < q; j++ {
			capM := 4 * max(2, problems[j].K)
			for c := off[j]; c < off[j+1] && len(members[j]) < capM; c++ {
				if frozen[c] {
					members[j] = append(members[j], pt(int(cells[c].Owner())))
				}
			}
		}
		return members
	}

	for j := 0; j < DefaultBeta; j++ {
		members := sampleRound(uint64(j), false)
		solveRound(members)
		surviveRound()
		allDone := true
		for i := range finished {
			if !finished[i] {
				allDone = false
			}
			prob[i] = math.Min(1, 2*float64(max(2, problems[i].K))*prob[i])
		}
		if allDone {
			return res
		}
	}

	// §3.3 step 4: compact each unfinished problem's survivors into its
	// base problem; if too many, one more ordinary round, then retry.
	allDone := func() bool {
		for i := range finished {
			if !finished[i] {
				return false
			}
		}
		return true
	}
	for attempt := 0; attempt < terminalAttempts; attempt++ {
		members := make([][]geom.Point, q)
		anyCompacted := false
		// The per-problem compactions operate on disjoint work spaces and
		// run concurrently in the model: compose them with Concurrent so
		// the step cost is their maximum, not their sum.
		var fns []func(*pram.Machine)
		for j := range problems {
			if finished[j] {
				continue
			}
			k := max(2, problems[j].K)
			jj := j
			fns = append(fns, func(sub *pram.Machine) {
				// Compact this problem's survivors into its 16k base area
				// (§3.3 step 4): bound the count by the area, not k⁴.
				ids, ok := compact.InPlaceCompactArea(sub, rnd.Split(0xf00+uint64(attempt)*64+uint64(jj)), n, SpaceFactor*k, SpaceFactor*k, 0.34, func(v int) bool {
					pj, viol := violates(v)
					return pj == jj && viol
				})
				if !ok {
					return
				}
				res[jj].SweptIn = true
				anyCompacted = true
				for _, v := range ids {
					members[jj] = append(members[jj], pt(v))
				}
			})
		}
		m.Concurrent(fns...)
		if anyCompacted {
			solveRound(members)
			surviveRound()
			if allDone() {
				return res
			}
		}
		// Extra ordinary round for the stubborn problems ("repeat steps
		// 1–3 once more").
		members = sampleRound(0x40+uint64(attempt), true)
		solveRound(members)
		surviveRound()
		if allDone() {
			return res
		}
	}
	for j := range problems {
		if !finished[j] {
			res[j].Sol = sols[j]
			res[j].OK = false
		}
	}
	return res
}

// Bridge2D runs a single in-place bridge-finding problem (a batch of one):
// find the upper-hull edge above the splitter among the live positions.
func Bridge2D(m *pram.Machine, rnd *rng.Stream, n int, pt func(int) geom.Point, live func(int) bool, mLive int, splitter geom.Point, k int) Result2D {
	pid := func(v int) int {
		if live(v) {
			return 0
		}
		return -1
	}
	res := BatchBridge2D(m, rnd, n, pt, pid, []Problem2D{{Splitter: splitter, K: k, MLive: mLive}})
	return res[0]
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
