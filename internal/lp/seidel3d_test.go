package lp

import (
	"math"
	"testing"

	"inplacehull/internal/geom"
	"inplacehull/internal/rng"
	"inplacehull/internal/workload"
)

func TestIncFacet3DMatchesBruteForce(t *testing.T) {
	for seed := uint64(1); seed <= 15; seed++ {
		pts := workload.Ball(seed, 60)
		sx, sy := pts[0].X, pts[0].Y
		sol, ok := IncFacet3D(rng.New(seed+100), pts, sx, sy)
		if !ok {
			t.Fatalf("seed %d: failed", seed)
		}
		for _, p := range pts {
			if sol.Violates(p) {
				t.Fatalf("seed %d: point %v above solution", seed, p)
			}
		}
		ref, ok := solveBase3D(pts, sx, sy)
		if !ok {
			t.Fatal("reference failed")
		}
		v, rv := sol.ValueAt(sx, sy), ref.ValueAt(sx, sy)
		if math.Abs(v-rv) > 1e-9*math.Max(1, math.Abs(rv)) {
			t.Fatalf("seed %d: value %v != reference %v", seed, v, rv)
		}
	}
}

func TestIncFacet3DSphere(t *testing.T) {
	pts := workload.Sphere(7, 400)
	sx, sy := pts[5].X, pts[5].Y
	sol, ok := IncFacet3D(rng.New(7), pts, sx, sy)
	if !ok {
		t.Fatal("failed")
	}
	for _, p := range pts {
		if sol.Violates(p) {
			t.Fatalf("point %v above solution", p)
		}
	}
}

func TestIncFacet3DDegenerate(t *testing.T) {
	// All points xy-collinear: no plane basis exists.
	pts := make([]geom.Point3, 10)
	for i := range pts {
		x := float64(i)
		pts[i] = geom.Point3{X: x, Y: 2 * x, Z: x * x}
	}
	if _, ok := IncFacet3D(rng.New(2), pts, 1, 2); ok {
		t.Fatal("xy-collinear input accepted")
	}
	if _, ok := IncFacet3D(rng.New(2), pts[:2], 1, 2); ok {
		t.Fatal("two points accepted")
	}
}

func TestIncFacet3DDeterministic(t *testing.T) {
	pts := workload.Ball(9, 200)
	s1, ok1 := IncFacet3D(rng.New(5), pts, 0, 0)
	s2, ok2 := IncFacet3D(rng.New(5), pts, 0, 0)
	if !ok1 || !ok2 || s1 != s2 {
		t.Fatal("nondeterministic")
	}
}
