package lp

import (
	"strconv"
	"testing"

	"inplacehull/internal/geom"
	"inplacehull/internal/pram"
	"inplacehull/internal/rng"
	"inplacehull/internal/workload"
)

func BenchmarkBridge2D(b *testing.B) {
	for _, n := range []int{1 << 12, 1 << 16} {
		pts := workload.Disk(1, n)
		k := 1
		for k*k*k < n {
			k++
		}
		b.Run(strconv.Itoa(n), func(b *testing.B) {
			fails := 0
			for i := 0; i < b.N; i++ {
				m := pram.New()
				res := Bridge2D(m, rng.New(uint64(i)), n,
					func(v int) geom.Point { return pts[v] },
					func(v int) bool { return true }, n, pts[0], k)
				if !res.OK {
					fails++ // expected occasionally: callers failure-sweep
				}
			}
			b.ReportMetric(float64(fails)/float64(b.N), "fail-rate")
		})
	}
}

func BenchmarkSeidelBridge2D(b *testing.B) {
	for _, n := range []int{1 << 12, 1 << 16} {
		pts := workload.Disk(1, n)
		b.Run(strconv.Itoa(n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, ok := SeidelBridge2D(rng.New(uint64(i)), pts, pts[0].X); !ok {
					b.Fatal("failed")
				}
			}
		})
	}
}

func BenchmarkBridge3D(b *testing.B) {
	n := 1 << 12
	pts := workload.Ball(1, n)
	fails := 0
	for i := 0; i < b.N; i++ {
		m := pram.New()
		res := Bridge3D(m, rng.New(uint64(i)), n,
			func(v int) geom.Point3 { return pts[v] },
			func(v int) bool { return true }, n, pts[0], 8)
		if !res.OK {
			fails++ // expected occasionally: callers failure-sweep
		}
	}
	b.ReportMetric(float64(fails)/float64(b.N), "fail-rate")
}
