package lp

import (
	"inplacehull/internal/geom"
	"inplacehull/internal/rng"
)

// IncFacet3D solves the 3-d facet LP — minimize the plane height at
// (sx, sy) subject to the plane lying above every point — by randomized
// incremental insertion (the Seidel/Welzl scheme, with the violation
// subproblem solved by an exact quadratic scan): expected O(n²·P(violate))
// ≈ O(n·polylog) exact-predicate operations on random orders, worst case
// O(n²) per violation. It is the sequential 3-d comparator for §3.3's
// parallel facet finding, exact on all inputs in general position.
//
// Preconditions: the point set must contain three xy-affinely-independent
// points whose xy-triangle has (sx, sy) inside its convex hull's shadow —
// in practice, callers pass point sets containing the splitter, exactly as
// the parallel procedure anchors its bases. Degenerate inputs (all
// xy-collinear) return ok = false.
func IncFacet3D(rnd *rng.Stream, pts []geom.Point3, sx, sy float64) (Solution3D, bool) {
	n := len(pts)
	if n < 3 {
		return Solution3D{}, false
	}
	order := rnd.Perm(n)
	// Initial basis: the first xy-affinely-independent triple.
	i2 := -1
	for t := 2; t < n; t++ {
		if geom.Orientation(pxy(pts[order[0]]), pxy(pts[order[1]]), pxy(pts[order[t]])) != 0 {
			i2 = t
			break
		}
	}
	if i2 < 0 {
		return Solution3D{}, false
	}
	order[2], order[i2] = order[i2], order[2]
	sol := Solution3D{A: pts[order[0]], B: pts[order[1]], C: pts[order[2]]}

	for i := 3; i < n; i++ {
		z := pts[order[i]]
		if !sol.Violates(z) {
			continue
		}
		next, ok := tight3At(z, pts, order[:i+1], sx, sy)
		if !ok {
			return Solution3D{}, false
		}
		sol = next
	}
	return sol, true
}

// tight3At finds the lowest-at-(sx,sy) plane through z above every point of
// pts[order]: for each candidate second basis point w, the third point is
// found by an exact pivot around the line zw, and the best feasible
// candidate wins. O(len(order)²) exact predicates.
func tight3At(z geom.Point3, pts []geom.Point3, order []int, sx, sy float64) (Solution3D, bool) {
	bestSet := false
	var best Solution3D
	var bestV float64
	for _, oi := range order {
		w := pts[oi]
		if w == z || pxy(w) == pxy(z) {
			continue
		}
		u, ok := pivotAround(z, w, pts, order)
		if !ok {
			continue
		}
		cand := Solution3D{A: z, B: w, C: u}
		if cand.Degenerate() {
			continue
		}
		// Exact feasibility over the prefix.
		feasible := true
		for _, oj := range order {
			q := pts[oj]
			if q == z || q == w || q == u {
				continue
			}
			if cand.Violates(q) {
				feasible = false
				break
			}
		}
		if !feasible {
			continue
		}
		v := cand.ValueAt(sx, sy)
		if !bestSet || v < bestV {
			best, bestV, bestSet = cand, v, true
		}
	}
	return best, bestSet
}

// pivotAround returns the point u such that the plane (z, w, u) has every
// other prefix point on or below it: one linear pass of exact
// Orientation3 updates (the 3-d gift-wrap pivot, oriented so "above"
// means the positive side of the upward-oriented plane).
func pivotAround(z, w geom.Point3, pts []geom.Point3, order []int) (geom.Point3, bool) {
	var u geom.Point3
	have := false
	for _, oi := range order {
		c := pts[oi]
		if c == z || c == w {
			continue
		}
		if !have {
			if geom.Orientation(pxy(z), pxy(w), pxy(c)) == 0 {
				continue // xy-collinear with the axis: not a plane basis
			}
			u, have = c, true
			continue
		}
		cand := Solution3D{A: z, B: w, C: u}
		if !cand.Degenerate() && cand.Violates(c) {
			u = c
		}
	}
	return u, have
}
