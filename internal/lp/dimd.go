package lp

import (
	"math/big"

	"inplacehull/internal/hullerr"
)

// The paper closes with "it would be interesting to see how these results
// generalize to higher dimensions". The building block that generalizes
// immediately is Observation 2.2: brute-force linear programming in fixed
// dimension d — every d-tuple of constraints is a candidate basis, checked
// against all constraints, in O(1) time with n^(d+1) processors. This file
// provides that primitive for arbitrary fixed d over exact rational
// arithmetic: the d-dimensional facet LP
//
//	minimize  a·q + c   subject to   a·x_i + c ≥ z_i  for all i,
//
// where each point is (x_i, z_i) ∈ R^(d−1) × R — the "upper hull facet
// above the query q" in d dimensions, exactly the probe the paper's
// divide-and-conquer repeats in 2-d and 3-d.

// PointD is a point in R^d, given as base coordinates X (length d−1) and
// height Z.
type PointD struct {
	X []float64
	Z float64
}

// SolutionD is an LP basis: the d points whose common hyperplane supports
// the optimum.
type SolutionD struct {
	Basis []PointD
	// A and C are the hyperplane coefficients (z = A·x + C) as exact
	// rationals.
	A []*big.Rat
	C *big.Rat
}

// ValueAt returns the hyperplane height at q, exactly.
func (s SolutionD) ValueAt(q []float64) *big.Rat {
	v := new(big.Rat).Set(s.C)
	for i, a := range s.A {
		t := new(big.Rat).Mul(a, new(big.Rat).SetFloat64(q[i]))
		v.Add(v, t)
	}
	return v
}

// Violates reports whether point p lies strictly above the hyperplane.
func (s SolutionD) Violates(p PointD) bool {
	h := s.ValueAt(p.X)
	return new(big.Rat).SetFloat64(p.Z).Cmp(h) > 0
}

// BruteForceFacetD solves the d-dimensional facet LP at query q (length
// d−1) over pts by enumerating every d-subset: Observation 2.2 in general
// dimension, executed sequentially with exact arithmetic (the model charge
// is the caller's concern; this is the substrate primitive). Points whose
// base coordinates are affinely dependent are skipped as bases. Returns
// ok = false if no bounded basis exists (q outside the shadow of every
// affinely independent d-subset, or fewer than d points). A mismatched
// query or point dimension is reported as a typed InvalidInput error.
func BruteForceFacetD(pts []PointD, q []float64) (SolutionD, bool, error) {
	if len(pts) == 0 {
		return SolutionD{}, false, nil
	}
	d := len(pts[0].X) + 1
	if len(q) != d-1 {
		return SolutionD{}, false, hullerr.New(hullerr.InvalidInput, "lp.BruteForceFacetD",
			"query has %d coordinates, want %d", len(q), d-1)
	}
	for i, p := range pts {
		if len(p.X) != d-1 {
			return SolutionD{}, false, hullerr.New(hullerr.InvalidInput, "lp.BruteForceFacetD",
				"point %d has %d coordinates, want %d", i, len(p.X), d-1)
		}
	}
	if len(pts) < d {
		return SolutionD{}, false, nil
	}
	idx := make([]int, d)
	for i := range idx {
		idx[i] = i
	}
	var best SolutionD
	haveBest := false
	for {
		basis := make([]PointD, d)
		for i, j := range idx {
			basis[i] = pts[j]
		}
		if a, c, ok := hyperplaneThrough(basis); ok {
			cand := SolutionD{Basis: basis, A: a, C: c}
			feasible := true
			for _, p := range pts {
				if cand.Violates(p) {
					feasible = false
					break
				}
			}
			if feasible {
				if !haveBest || cand.ValueAt(q).Cmp(best.ValueAt(q)) < 0 {
					best = cand
					haveBest = true
				}
			}
		}
		if !nextCombination(idx, len(pts)) {
			break
		}
	}
	return best, haveBest, nil
}

// hyperplaneThrough solves for z = a·x + c through the d given points by
// exact Gaussian elimination; ok = false if their base coordinates are
// affinely dependent.
func hyperplaneThrough(basis []PointD) (a []*big.Rat, c *big.Rat, ok bool) {
	d := len(basis)
	// Unknowns: a_0 … a_(d−2), c — a d×d rational system.
	m := make([][]*big.Rat, d)
	for r, p := range basis {
		row := make([]*big.Rat, d+1)
		for j := 0; j < d-1; j++ {
			row[j] = new(big.Rat).SetFloat64(p.X[j])
		}
		row[d-1] = big.NewRat(1, 1)
		row[d] = new(big.Rat).SetFloat64(p.Z)
		m[r] = row
	}
	// Forward elimination with partial (non-zero) pivoting.
	for col := 0; col < d; col++ {
		piv := -1
		for r := col; r < d; r++ {
			if m[r][col].Sign() != 0 {
				piv = r
				break
			}
		}
		if piv < 0 {
			return nil, nil, false
		}
		m[col], m[piv] = m[piv], m[col]
		for r := col + 1; r < d; r++ {
			if m[r][col].Sign() == 0 {
				continue
			}
			f := new(big.Rat).Quo(m[r][col], m[col][col])
			for j := col; j <= d; j++ {
				t := new(big.Rat).Mul(f, m[col][j])
				m[r][j] = new(big.Rat).Sub(m[r][j], t)
			}
		}
	}
	// Back substitution.
	sol := make([]*big.Rat, d)
	for r := d - 1; r >= 0; r-- {
		v := new(big.Rat).Set(m[r][d])
		for j := r + 1; j < d; j++ {
			t := new(big.Rat).Mul(m[r][j], sol[j])
			v.Sub(v, t)
		}
		sol[r] = v.Quo(v, m[r][r])
	}
	return sol[:d-1], sol[d-1], true
}

// nextCombination advances idx to the next d-combination of [0, n);
// returns false after the last one.
func nextCombination(idx []int, n int) bool {
	d := len(idx)
	for i := d - 1; i >= 0; i-- {
		if idx[i] < n-d+i {
			idx[i]++
			for j := i + 1; j < d; j++ {
				idx[j] = idx[j-1] + 1
			}
			return true
		}
	}
	return false
}
