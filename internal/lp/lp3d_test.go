package lp

import (
	"math"
	"testing"

	"inplacehull/internal/hull3d"

	"inplacehull/internal/geom"
	"inplacehull/internal/pram"
	"inplacehull/internal/rng"
	"inplacehull/internal/workload"
)

// checkCap3 verifies sol is a valid cap for pts: no point strictly above,
// and all basis points are input points.
func checkCap3(t *testing.T, pts []geom.Point3, sol Solution3D) {
	t.Helper()
	in := map[geom.Point3]bool{}
	for _, p := range pts {
		in[p] = true
	}
	if !in[sol.A] || !in[sol.B] || !in[sol.C] {
		t.Fatalf("basis not input points: %+v", sol)
	}
	for _, p := range pts {
		if sol.Violates(p) {
			t.Fatalf("point %v above solution plane %+v", p, sol)
		}
	}
}

func TestSolveBase3DSimple(t *testing.T) {
	// A tetrahedron with an obvious top facet.
	pts := []geom.Point3{
		{X: 0, Y: 0, Z: 1}, {X: 1, Y: 0, Z: 1}, {X: 0, Y: 1, Z: 1},
		{X: 0.3, Y: 0.3, Z: 0},
	}
	sol, ok := solveBase3D(pts, 0.3, 0.3)
	if !ok {
		t.Fatal("failed")
	}
	if sol.Degenerate() {
		t.Fatalf("degenerate: %+v", sol)
	}
	if v := sol.ValueAt(0.3, 0.3); math.Abs(v-1) > 1e-12 {
		t.Fatalf("value at splitter = %v, want 1", v)
	}
	checkCap3(t, pts, sol)
}

func TestSolveBase3DDegenerate(t *testing.T) {
	// All points on one vertical line.
	pts := []geom.Point3{{X: 1, Y: 1, Z: 0}, {X: 1, Y: 1, Z: 5}, {X: 1, Y: 1, Z: 2}}
	sol, ok := solveBase3D(pts, 1, 1)
	if !ok || !sol.Degenerate() {
		t.Fatalf("expected degenerate: %+v ok=%v", sol, ok)
	}
	if sol.ValueAt(1, 1) != 5 {
		t.Fatalf("degenerate top = %v", sol.ValueAt(1, 1))
	}
}

func TestBruteForce3DMatchesFullEnumeration(t *testing.T) {
	for seed := uint64(1); seed <= 5; seed++ {
		pts := workload.Ball(seed, 24)
		sp := pts[0]
		m := pram.New()
		sol, ok := BruteForce3D(m, pts, sp.X, sp.Y)
		if !ok {
			t.Fatal("failed")
		}
		checkCap3(t, pts, sol)
	}
}

func TestBridge3DFindsFacet(t *testing.T) {
	for _, gen := range []func(uint64, int) []geom.Point3{workload.Ball, workload.Sphere} {
		for seed := uint64(1); seed <= 3; seed++ {
			pts := gen(seed, 800)
			n := len(pts)
			sp := pts[rng.New(seed).Intn(n)]
			m := pram.New()
			res := Bridge3D(m, rng.New(seed+33), n,
				func(v int) geom.Point3 { return pts[v] },
				func(v int) bool { return true }, n, sp, 8)
			if !res.OK {
				t.Fatalf("seed %d: facet finding failed", seed)
			}
			checkCap3(t, pts, res.Sol)
			// Compare against the exact upper envelope from the
			// incremental hull: the solution plane must match the
			// envelope height at the splitter (both are supporting
			// structures through input points, so the values coincide).
			h, err := hull3d.Incremental(rng.New(seed), pts)
			if err != nil {
				t.Fatal(err)
			}
			up := h.UpperFaces()
			fi := hull3d.FaceAbove(pts, up, sp.X, sp.Y)
			if fi < 0 {
				t.Fatal("no reference face above splitter")
			}
			f := up[fi]
			rv := geom.PlaneThrough(pts[f.A], pts[f.B], pts[f.C]).Eval(sp.X, sp.Y)
			v := res.Sol.ValueAt(sp.X, sp.Y)
			if v > rv+1e-9*math.Max(1, math.Abs(rv)) {
				t.Fatalf("seed %d: solution value %v above envelope %v", seed, v, rv)
			}
		}
	}
}

func TestBridge3DConstantStepsInN(t *testing.T) {
	steps := func(n int) int64 {
		pts := workload.Ball(5, n)
		m := pram.New()
		res := Bridge3D(m, rng.New(5), n,
			func(v int) geom.Point3 { return pts[v] },
			func(v int) bool { return true }, n, pts[0], 8)
		if !res.OK {
			t.Fatal("bridge failed")
		}
		return m.Time()
	}
	s1, s2 := steps(1<<9), steps(1<<13)
	if s2 > 3*s1 {
		t.Fatalf("3-d bridge steps scaled with n: %d → %d", s1, s2)
	}
}

func TestBatchBridge3DSubsets(t *testing.T) {
	pts := workload.Ball(7, 1200)
	n := len(pts)
	const q = 4
	probOf := func(v int) int { return v % q }
	subs := make([][]geom.Point3, q)
	for v, p := range pts {
		subs[v%q] = append(subs[v%q], p)
	}
	problems := make([]Problem3D, q)
	for j := 0; j < q; j++ {
		problems[j] = Problem3D{Splitter: subs[j][0], K: 6, MLive: len(subs[j])}
	}
	m := pram.New()
	res := BatchBridge3D(m, rng.New(8), n, func(v int) geom.Point3 { return pts[v] }, probOf, problems)
	for j := 0; j < q; j++ {
		if !res[j].OK {
			t.Fatalf("problem %d failed", j)
		}
		checkCap3(t, subs[j], res[j].Sol)
	}
}

func TestSolution3DViolates(t *testing.T) {
	s := Solution3D{
		A: geom.Point3{X: 0, Y: 0, Z: 0},
		B: geom.Point3{X: 1, Y: 0, Z: 0},
		C: geom.Point3{X: 0, Y: 1, Z: 0},
	}
	if !s.Violates(geom.Point3{X: 0.2, Y: 0.2, Z: 1}) {
		t.Fatal("above must violate")
	}
	if s.Violates(geom.Point3{X: 0.2, Y: 0.2, Z: 0}) {
		t.Fatal("on plane must not violate")
	}
	if s.Violates(geom.Point3{X: 0.2, Y: 0.2, Z: -1}) {
		t.Fatal("below must not violate")
	}
	// Swapped orientation must give identical answers.
	s2 := Solution3D{A: s.A, B: s.C, C: s.B}
	if !s2.Violates(geom.Point3{X: 0.2, Y: 0.2, Z: 1}) || s2.Violates(geom.Point3{X: 0.2, Y: 0.2, Z: -1}) {
		t.Fatal("violation must be orientation-independent")
	}
}
