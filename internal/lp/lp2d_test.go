package lp

import (
	"math"
	"testing"
	"testing/quick"

	"inplacehull/internal/geom"
	"inplacehull/internal/hull2d"
	"inplacehull/internal/pram"
	"inplacehull/internal/rng"
	"inplacehull/internal/workload"
)

// refBridge returns the reference bridge over x = a: the upper-hull edge
// (or vertex) of pts whose x-span contains a.
func refBridge(pts []geom.Point, a float64) (geom.Point, geom.Point, bool) {
	uh := hull2d.UpperHull(pts)
	if len(uh) == 0 {
		return geom.Point{}, geom.Point{}, false
	}
	if len(uh) == 1 {
		return uh[0], uh[0], true
	}
	for i := 0; i+1 < len(uh); i++ {
		if uh[i].X <= a && a <= uh[i+1].X {
			return uh[i], uh[i+1], true
		}
	}
	return geom.Point{}, geom.Point{}, false
}

// sameSupport reports whether sol supports the hull at a at the same
// height as the reference bridge (u, w). When a coincides with a hull
// vertex's x, two adjacent edges are both optimal caps, so endpoint
// equality is too strict; the support value is the invariant.
func sameSupport(sol Solution2D, u, w geom.Point, a float64) bool {
	var ref float64
	if u == w || u.X == w.X {
		ref = u.Y
	} else {
		ref = u.Y + (w.Y-u.Y)*(a-u.X)/(w.X-u.X)
	}
	v := sol.ValueAt(a)
	scale := math.Max(1, math.Max(math.Abs(ref), math.Abs(v)))
	return math.Abs(v-ref) <= 1e-9*scale
}

// checkCap verifies that sol is a valid cap over a for pts: no point above
// it, basis points are input points, and a is within the x-span.
func checkCap(t *testing.T, pts []geom.Point, sol Solution2D, a float64) {
	t.Helper()
	if !(sol.U.X <= a && a <= sol.W.X) {
		t.Fatalf("cap [%v, %v] does not straddle a=%v", sol.U, sol.W, a)
	}
	in := map[geom.Point]bool{}
	for _, p := range pts {
		in[p] = true
	}
	if !in[sol.U] || !in[sol.W] {
		t.Fatalf("cap endpoints not input points: %v %v", sol.U, sol.W)
	}
	for _, p := range pts {
		if sol.Violates(p) {
			t.Fatalf("point %v above cap %v-%v", p, sol.U, sol.W)
		}
	}
}

func TestBruteForce2DMatchesReference(t *testing.T) {
	for seed := uint64(1); seed <= 10; seed++ {
		pts := workload.Disk(seed, 40)
		a := pts[0].X
		m := pram.New()
		sol, ok := BruteForce2D(m, pts, a)
		if !ok {
			t.Fatal("brute force failed")
		}
		checkCap(t, pts, sol, a)
		u, w, ok := refBridge(pts, a)
		if !ok {
			t.Fatal("no reference bridge")
		}
		if !sameSupport(sol, u, w, a) {
			t.Fatalf("seed %d: bridge (%v,%v) != reference (%v,%v)", seed, sol.U, sol.W, u, w)
		}
	}
}

func TestBruteForce2DConstantSteps(t *testing.T) {
	steps := func(n int) int64 {
		pts := workload.Disk(3, n)
		m := pram.New()
		BruteForce2D(m, pts, pts[0].X)
		return m.Time()
	}
	if s1, s2 := steps(10), steps(60); s2 != s1 {
		t.Fatalf("brute force steps changed with base size: %d → %d", s1, s2)
	}
}

func TestBruteForce2DDegenerate(t *testing.T) {
	m := pram.New()
	// All points share x: degenerate top-point solution.
	pts := []geom.Point{{X: 1, Y: 0}, {X: 1, Y: 5}, {X: 1, Y: 3}}
	sol, ok := BruteForce2D(m, pts, 1)
	if !ok || !sol.Degenerate() || sol.U != (geom.Point{X: 1, Y: 5}) {
		t.Fatalf("degenerate solution wrong: %+v ok=%v", sol, ok)
	}
	// Single point.
	sol, ok = BruteForce2D(m, pts[:1], 1)
	if !ok || sol.U != pts[0] {
		t.Fatalf("single-point base: %+v", sol)
	}
	// Empty base.
	if _, ok := BruteForce2D(m, nil, 0); ok {
		t.Fatal("empty base must fail")
	}
}

func TestBridge2DFindsHullEdge(t *testing.T) {
	gens := []func(uint64, int) []geom.Point{workload.Disk, workload.Circle, workload.Gaussian}
	for gi, gen := range gens {
		for seed := uint64(1); seed <= 3; seed++ {
			pts := gen(seed, 2000)
			n := len(pts)
			// Splitter: a random point.
			sp := pts[rng.New(seed).Intn(n)]
			m := pram.New()
			res := Bridge2D(m, rng.New(seed+77), n,
				func(v int) geom.Point { return pts[v] },
				func(v int) bool { return true }, n, sp, 13)
			if !res.OK {
				t.Fatalf("gen %d seed %d: bridge finding failed (iters %d)", gi, seed, res.Iterations)
			}
			checkCap(t, pts, res.Sol, sp.X)
			u, w, _ := refBridge(pts, sp.X)
			if !sameSupport(res.Sol, u, w, sp.X) {
				t.Fatalf("gen %d seed %d: bridge (%v,%v) != reference (%v,%v)",
					gi, seed, res.Sol.U, res.Sol.W, u, w)
			}
		}
	}
}

func TestBridge2DConstantStepsInN(t *testing.T) {
	steps := func(n int) int64 {
		pts := workload.Disk(5, n)
		m := pram.New()
		k := 1
		for k*k*k < n {
			k++
		}
		res := Bridge2D(m, rng.New(5), n,
			func(v int) geom.Point { return pts[v] },
			func(v int) bool { return true }, n, pts[0], k)
		if !res.OK {
			t.Fatal("bridge failed")
		}
		return m.Time()
	}
	s1, s2 := steps(1<<10), steps(1<<16)
	// Steps may vary by a few (iteration count is random) but must not
	// scale with n.
	if s2 > 3*s1 {
		t.Fatalf("bridge steps scaled with n: %d → %d", s1, s2)
	}
}

func TestBridge2DOnSubset(t *testing.T) {
	// The in-place property: find the bridge of the odd-indexed points
	// only, without moving anything.
	pts := workload.Disk(9, 3000)
	n := len(pts)
	live := func(v int) bool { return v%2 == 1 }
	var sub []geom.Point
	for v := 1; v < n; v += 2 {
		sub = append(sub, pts[v])
	}
	sp := pts[1001] // odd index
	m := pram.New()
	res := Bridge2D(m, rng.New(10), n, func(v int) geom.Point { return pts[v] }, live, n/2, sp, 11)
	if !res.OK {
		t.Fatal("bridge failed")
	}
	checkCap(t, sub, res.Sol, sp.X)
	u, w, _ := refBridge(sub, sp.X)
	if !sameSupport(res.Sol, u, w, sp.X) {
		t.Fatalf("subset bridge (%v,%v) != reference (%v,%v)", res.Sol.U, res.Sol.W, u, w)
	}
}

func TestBatchBridge2DManyProblems(t *testing.T) {
	// Partition points into 8 scattered problems; all bridges must be
	// found simultaneously and match per-problem references.
	pts := workload.Gaussian(11, 4000)
	n := len(pts)
	const q = 8
	probOf := func(v int) int { return v % q }
	problems := make([]Problem2D, q)
	subs := make([][]geom.Point, q)
	for v, p := range pts {
		subs[v%q] = append(subs[v%q], p)
	}
	for j := 0; j < q; j++ {
		problems[j] = Problem2D{Splitter: subs[j][0], K: 8, MLive: len(subs[j])}
	}
	m := pram.New()
	res := BatchBridge2D(m, rng.New(12), n, func(v int) geom.Point { return pts[v] }, probOf, problems)
	for j := 0; j < q; j++ {
		if !res[j].OK {
			t.Fatalf("problem %d failed", j)
		}
		checkCap(t, subs[j], res[j].Sol, problems[j].Splitter.X)
		u, w, _ := refBridge(subs[j], problems[j].Splitter.X)
		if !sameSupport(res[j].Sol, u, w, problems[j].Splitter.X) {
			t.Fatalf("problem %d: (%v,%v) != (%v,%v)", j, res[j].Sol.U, res[j].Sol.W, u, w)
		}
	}
}

func TestBatchBridge2DSurvivorDecay(t *testing.T) {
	// Lemma 4.1 shape: survivors must collapse to zero within the
	// iteration budget, and the trace must be (weakly) decreasing in the
	// tail.
	Trace = true
	defer func() { Trace = false }()
	pts := workload.Circle(13, 1<<12)
	n := len(pts)
	m := pram.New()
	k := 16
	res := Bridge2D(m, rng.New(13), n, func(v int) geom.Point { return pts[v] },
		func(v int) bool { return true }, n, pts[7], k)
	if !res.OK {
		t.Fatal("bridge failed")
	}
	tr := res.SurvivorTrace
	if len(tr) == 0 || tr[len(tr)-1] != 0 {
		t.Fatalf("survivor trace must end at 0: %v", tr)
	}
	if len(tr) > 1 && tr[len(tr)-2] != 0 && tr[0] < tr[len(tr)-2] {
		t.Fatalf("survivors did not decay: %v", tr)
	}
}

func TestSolution2DViolates(t *testing.T) {
	s := Solution2D{U: geom.Point{X: 0, Y: 0}, W: geom.Point{X: 2, Y: 2}}
	if !s.Violates(geom.Point{X: 1, Y: 2}) {
		t.Fatal("above must violate")
	}
	if s.Violates(geom.Point{X: 1, Y: 1}) {
		t.Fatal("on the line must not violate")
	}
	if s.Violates(geom.Point{X: 1, Y: 0}) {
		t.Fatal("below must not violate")
	}
	d := Solution2D{U: geom.Point{X: 1, Y: 3}, W: geom.Point{X: 1, Y: 3}}
	if !d.Degenerate() || !d.Violates(geom.Point{X: 0, Y: 4}) || d.Violates(geom.Point{X: 0, Y: 3}) {
		t.Fatal("degenerate violation test wrong")
	}
}

func TestBridge2DQuick(t *testing.T) {
	if err := quick.Check(func(seed uint64, nRaw uint8) bool {
		n := int(nRaw)%100 + 4
		s := rng.New(seed)
		pts := make([]geom.Point, n)
		for i := range pts {
			pts[i] = geom.Point{X: s.NormFloat64(), Y: s.NormFloat64()}
		}
		sp := pts[s.Intn(n)]
		m := pram.New()
		res := Bridge2D(m, s, n, func(v int) geom.Point { return pts[v] },
			func(v int) bool { return true }, n, sp, 4)
		if !res.OK {
			return false
		}
		u, w, _ := refBridge(pts, sp.X)
		return sameSupport(res.Sol, u, w, sp.X)
	}, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}
