package lp

import (
	"math"
	"testing"
	"testing/quick"

	"inplacehull/internal/geom"
	"inplacehull/internal/rng"
	"inplacehull/internal/workload"
)

func TestSeidelBridge2DMatchesBruteForce(t *testing.T) {
	for seed := uint64(1); seed <= 20; seed++ {
		pts := workload.Disk(seed, 200)
		a := pts[3].X
		sol, ok := SeidelBridge2D(rng.New(seed), pts, a)
		if !ok {
			t.Fatalf("seed %d: seidel failed", seed)
		}
		ref, ok := solveBase2D(pts, a)
		if !ok {
			t.Fatal("reference failed")
		}
		// Optimal values must coincide (bases may differ on ties).
		v, rv := sol.ValueAt(a), ref.ValueAt(a)
		if math.Abs(v-rv) > 1e-9*math.Max(1, math.Abs(rv)) {
			t.Fatalf("seed %d: seidel value %v != brute value %v", seed, v, rv)
		}
		// And the solution must be feasible.
		for _, p := range pts {
			if sol.Violates(p) {
				t.Fatalf("seed %d: point %v above seidel solution", seed, p)
			}
		}
		if !(sol.U.X <= a && a <= sol.W.X) {
			t.Fatalf("seed %d: solution does not straddle a", seed)
		}
	}
}

func TestSeidelBridge2DRequiresBothSides(t *testing.T) {
	pts := []geom.Point{{X: 1, Y: 0}, {X: 2, Y: 1}, {X: 3, Y: 0}}
	if _, ok := SeidelBridge2D(rng.New(1), pts, 0.5); ok {
		t.Fatal("accepted one-sided input")
	}
	if _, ok := SeidelBridge2D(rng.New(1), pts, 5); ok {
		t.Fatal("accepted one-sided input (right)")
	}
}

func TestSeidelBridge2DQuick(t *testing.T) {
	if err := quick.Check(func(seed uint64, nRaw uint8) bool {
		n := int(nRaw)%80 + 4
		s := rng.New(seed)
		pts := make([]geom.Point, n)
		for i := range pts {
			pts[i] = geom.Point{X: s.NormFloat64(), Y: s.NormFloat64()}
		}
		// Pick a between two existing x's so both sides are non-empty.
		lo, hi := pts[0].X, pts[0].X
		for _, p := range pts {
			lo, hi = math.Min(lo, p.X), math.Max(hi, p.X)
		}
		if lo == hi {
			return true
		}
		a := (lo + hi) / 2
		sol, ok := SeidelBridge2D(s.Split(9), pts, a)
		if !ok {
			return true // one side empty after midpoint rounding
		}
		ref, _ := solveBase2D(pts, a)
		if math.Abs(sol.ValueAt(a)-ref.ValueAt(a)) > 1e-9*math.Max(1, math.Abs(ref.ValueAt(a))) {
			return false
		}
		for _, p := range pts {
			if sol.Violates(p) {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestSeidelBridge2DCollinear(t *testing.T) {
	// All points on one line: the solution must be the line itself.
	pts := make([]geom.Point, 20)
	for i := range pts {
		x := float64(i)
		pts[i] = geom.Point{X: x, Y: 2*x + 1}
	}
	sol, ok := SeidelBridge2D(rng.New(4), pts, 9.5)
	if !ok {
		t.Fatal("failed")
	}
	for _, p := range pts {
		if sol.Violates(p) {
			t.Fatalf("collinear point %v above solution", p)
		}
	}
	if math.Abs(sol.ValueAt(9.5)-20) > 1e-12 {
		t.Fatalf("value %v, want 20", sol.ValueAt(9.5))
	}
}

func TestSeidelBridge2DLargeAgainstHull(t *testing.T) {
	pts := workload.Circle(9, 5000)
	a := 0.1234
	sol, ok := SeidelBridge2D(rng.New(9), pts, a)
	if !ok {
		t.Fatal("failed")
	}
	for _, p := range pts {
		if sol.Violates(p) {
			t.Fatalf("point %v above solution", p)
		}
	}
}
