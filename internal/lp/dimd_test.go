package lp

import (
	"math"
	"math/big"
	"testing"

	"inplacehull/internal/hullerr"
	"inplacehull/internal/rng"
	"inplacehull/internal/workload"
)

func TestBruteForceFacetDMatches2D(t *testing.T) {
	pts2 := workload.Disk(3, 40)
	var pts []PointD
	for _, p := range pts2 {
		pts = append(pts, PointD{X: []float64{p.X}, Z: p.Y})
	}
	a := pts2[0].X
	sol, ok, err := BruteForceFacetD(pts, []float64{a})
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("d=2 failed")
	}
	ref, _ := solveBase2D(pts2, a)
	v, _ := sol.ValueAt([]float64{a}).Float64()
	rv := ref.ValueAt(a)
	if math.Abs(v-rv) > 1e-9*math.Max(1, math.Abs(rv)) {
		t.Fatalf("d=2 value %v != reference %v", v, rv)
	}
}

func TestBruteForceFacetDMatches3D(t *testing.T) {
	pts3 := workload.Ball(5, 25)
	var pts []PointD
	for _, p := range pts3 {
		pts = append(pts, PointD{X: []float64{p.X, p.Y}, Z: p.Z})
	}
	sx, sy := pts3[0].X, pts3[0].Y
	sol, ok, err := BruteForceFacetD(pts, []float64{sx, sy})
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("d=3 failed")
	}
	ref, _ := solveBase3D(pts3, sx, sy)
	v, _ := sol.ValueAt([]float64{sx, sy}).Float64()
	rv := ref.ValueAt(sx, sy)
	if math.Abs(v-rv) > 1e-9*math.Max(1, math.Abs(rv)) {
		t.Fatalf("d=3 value %v != reference %v", v, rv)
	}
}

func TestBruteForceFacetD4(t *testing.T) {
	// Points on the 4-d paraboloid z = |x|²: the facet LP at any interior
	// query must be feasible and support all points from above.
	s := rng.New(7)
	var pts []PointD
	for i := 0; i < 18; i++ {
		x := []float64{s.NormFloat64(), s.NormFloat64(), s.NormFloat64()}
		z := -(x[0]*x[0] + x[1]*x[1] + x[2]*x[2]) // concave: upper hull rich
		pts = append(pts, PointD{X: x, Z: z})
	}
	q := []float64{0, 0, 0}
	sol, ok, err := BruteForceFacetD(pts, q)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("d=4 failed")
	}
	if len(sol.Basis) != 4 {
		t.Fatalf("basis size %d, want 4", len(sol.Basis))
	}
	for _, p := range pts {
		if sol.Violates(p) {
			t.Fatalf("point above the d=4 facet")
		}
	}
}

func TestBruteForceFacetDDegenerate(t *testing.T) {
	// Too few points.
	if _, ok, _ := BruteForceFacetD([]PointD{{X: []float64{0}, Z: 0}}, []float64{0}); ok {
		t.Fatal("single point accepted")
	}
	// All base coordinates equal: no affinely independent basis.
	pts := []PointD{
		{X: []float64{1, 1}, Z: 0},
		{X: []float64{1, 1}, Z: 1},
		{X: []float64{1, 1}, Z: 2},
	}
	if _, ok, _ := BruteForceFacetD(pts, []float64{1, 1}); ok {
		t.Fatal("degenerate base accepted")
	}
}

func TestBruteForceFacetDDimensionMismatch(t *testing.T) {
	pts := []PointD{
		{X: []float64{0, 0}, Z: 0},
		{X: []float64{1, 0}, Z: 1},
		{X: []float64{0, 1}, Z: 2},
	}
	// Query dimension mismatch: typed InvalidInput, not a panic.
	if _, _, err := BruteForceFacetD(pts, []float64{0}); err == nil {
		t.Fatal("query mismatch not reported")
	} else if !hullerr.IsTyped(err) {
		t.Fatalf("query mismatch error not typed: %v", err)
	}
	// Inconsistent point dimensions.
	bad := append(pts, PointD{X: []float64{0}, Z: 3})
	if _, _, err := BruteForceFacetD(bad, []float64{0, 0}); err == nil {
		t.Fatal("inconsistent point dimensions not reported")
	} else if !hullerr.IsTyped(err) {
		t.Fatalf("dimension error not typed: %v", err)
	}
}

func TestHyperplaneThrough(t *testing.T) {
	// z = 2x + 3y + 1 through three of its points.
	basis := []PointD{
		{X: []float64{0, 0}, Z: 1},
		{X: []float64{1, 0}, Z: 3},
		{X: []float64{0, 1}, Z: 4},
	}
	a, c, ok := hyperplaneThrough(basis)
	if !ok {
		t.Fatal("failed")
	}
	if a[0].Cmp(big.NewRat(2, 1)) != 0 || a[1].Cmp(big.NewRat(3, 1)) != 0 || c.Cmp(big.NewRat(1, 1)) != 0 {
		t.Fatalf("plane = %v, %v, %v", a[0], a[1], c)
	}
}

func TestNextCombination(t *testing.T) {
	idx := []int{0, 1}
	var seen [][2]int
	for {
		seen = append(seen, [2]int{idx[0], idx[1]})
		if !nextCombination(idx, 4) {
			break
		}
	}
	want := [][2]int{{0, 1}, {0, 2}, {0, 3}, {1, 2}, {1, 3}, {2, 3}}
	if len(seen) != len(want) {
		t.Fatalf("saw %d combinations, want %d", len(seen), len(want))
	}
	for i := range want {
		if seen[i] != want[i] {
			t.Fatalf("combination %d = %v, want %v", i, seen[i], want[i])
		}
	}
}
