package lp

import (
	"inplacehull/internal/geom"
	"inplacehull/internal/rng"
)

// SeidelBridge2D solves the 2-d bridge LP at abscissa a — minimize the
// height at a of a line lying above every point — by Seidel's randomized
// incremental algorithm: expected O(n) violation tests, each violation
// resolving a one-dimensional LP over the slopes of lines through the
// violating point. All comparisons are exact (SlopeCmp / orientation), so
// the returned basis is the true optimum.
//
// It is the sequential comparator for the parallel in-place procedure of
// §3.3 (the "one processor" end of the spectrum the paper's work bounds
// are measured against) and a fast exact solver for large base problems.
//
// Preconditions: pts must contain at least one point with x < a and one
// with x > a (callers anchor the LP exactly as the parallel procedure
// does); otherwise ok = false.
func SeidelBridge2D(rnd *rng.Stream, pts []geom.Point, a float64) (Solution2D, bool) {
	n := len(pts)
	// Seed the incremental process with one point on each side of a, which
	// keeps every prefix LP bounded.
	l0, r0 := -1, -1
	for i, p := range pts {
		if p.X < a && l0 < 0 {
			l0 = i
		}
		if p.X > a && r0 < 0 {
			r0 = i
		}
	}
	if l0 < 0 || r0 < 0 {
		return Solution2D{}, false
	}
	order := rnd.Perm(n)
	// Move the two seeds to the front, preserving the rest's randomness.
	seedAt(order, l0, 0)
	seedAt(order, r0, 1)

	sol := Solution2D{U: pts[order[0]], W: pts[order[1]]}
	if sol.U.X > sol.W.X {
		sol.U, sol.W = sol.W, sol.U
	}
	for i := 2; i < n; i++ {
		z := pts[order[i]]
		if !sol.Violates(z) {
			continue
		}
		// The optimum of the first i+1 constraints is tight at z: solve
		// the 1-d LP over lines through z against the processed prefix.
		sol = tightAt(z, pts, order[:i+1], a)
	}
	return sol, true
}

// seedAt swaps the element with value idx into position pos (searching
// from pos onward, so earlier placed seeds stay put).
func seedAt(order []int, idx, pos int) {
	for i := pos; i < len(order); i++ {
		if order[i] == idx {
			order[pos], order[i] = order[i], order[pos]
			return
		}
	}
}

// tightAt minimizes the height at a over lines through z that lie above
// every point of pts[order]: a one-dimensional LP over the slope.
//
//   - z.X < a: height = z.Y + m·(a−z.X) with positive coefficient —
//     minimize m; points right of z lower-bound m, so the optimum is the
//     maximum slope(z, w) over w right of z.
//   - z.X > a: symmetric — maximize m; the optimum is the minimum
//     slope(z, w) over w left of z.
//   - z.X == a: the height is z.Y for every slope; any feasible slope
//     works, and the max-right-slope choice keeps the basis a valid cap.
//
// Feasibility of the chosen slope against the opposite side is guaranteed
// by Seidel's invariant (the enlarged LP is feasible and its optimum is
// tight at z). Comparisons are exact via SlopeCmp.
func tightAt(z geom.Point, pts []geom.Point, order []int, a float64) Solution2D {
	var best geom.Point
	haveBest := false
	wantMaxRight := z.X <= a
	for _, oi := range order {
		w := pts[oi]
		if w == z {
			continue
		}
		if wantMaxRight {
			if w.X <= z.X {
				continue
			}
			if !haveBest || geom.SlopeCmp(z, w, z, best) > 0 ||
				(geom.SlopeCmp(z, w, z, best) == 0 && w.X > best.X) {
				best, haveBest = w, true
			}
		} else {
			if w.X >= z.X {
				continue
			}
			if !haveBest || geom.SlopeCmp(w, z, best, z) < 0 ||
				(geom.SlopeCmp(w, z, best, z) == 0 && w.X < best.X) {
				best, haveBest = w, true
			}
		}
	}
	if !haveBest {
		// No point on the constraining side of z within the prefix: the
		// seeds guarantee this cannot happen for z off the line x = a;
		// for z exactly at a fall back to a degenerate cap at z.
		return Solution2D{U: z, W: z}
	}
	if wantMaxRight {
		return Solution2D{U: z, W: best}
	}
	return Solution2D{U: best, W: z}
}
