// Package workload generates the point distributions the experiments run
// on. The paper's bounds are output-size sensitive, so the generators are
// organized by the hull size h they induce:
//
//	Circle      h = n            (every point extreme)
//	Onion       h = n/layers     (controllable, evenly layered)
//	Disk        h ≈ n^(1/3)      (uniform in a disk)
//	Gaussian    h ≈ O(√log n)    (bivariate normal)
//	PolygonFew  h = k exactly    (k hull vertices, rest deep inside)
//	Collinear   degenerate stress (many collinear points)
//
// and in 3-d:
//
//	Ball        h ≈ O(n^(1/2))   (uniform in a ball)
//	Sphere      h ≈ n            (on the sphere)
//	Cap         upper-hemisphere cap, dense upper hull
//	MomentCurve h = n            (points on the 3-d moment curve)
//	BallFew     h = k-ish        (k extreme sites, rest interior)
//
// All generators are deterministic functions of (seed, n) via internal/rng.
package workload

import (
	"math"
	"sort"

	"inplacehull/internal/geom"
	"inplacehull/internal/rng"
)

// Gen2D is a named 2-d point generator.
type Gen2D struct {
	Name string
	// ExpectedH describes the hull-size regime, for reports.
	ExpectedH string
	Gen       func(seed uint64, n int) []geom.Point
}

// Circle places n points on the unit circle: h = n.
func Circle(seed uint64, n int) []geom.Point {
	s := rng.New(seed)
	pts := make([]geom.Point, n)
	for i := range pts {
		// Random angles (not a regular grid) so x-coordinates are distinct
		// with probability 1 and inputs are not accidentally sorted.
		th := s.Float64() * 2 * math.Pi
		pts[i] = geom.Point{X: math.Cos(th), Y: math.Sin(th)}
	}
	return pts
}

// Disk places n points uniformly in the unit disk: E[h] = Θ(n^(1/3)).
func Disk(seed uint64, n int) []geom.Point {
	s := rng.New(seed)
	pts := make([]geom.Point, n)
	for i := range pts {
		r := math.Sqrt(s.Float64())
		th := s.Float64() * 2 * math.Pi
		pts[i] = geom.Point{X: r * math.Cos(th), Y: r * math.Sin(th)}
	}
	return pts
}

// Gaussian places n bivariate normal points: E[h] = Θ(√log n).
func Gaussian(seed uint64, n int) []geom.Point {
	s := rng.New(seed)
	pts := make([]geom.Point, n)
	for i := range pts {
		pts[i] = geom.Point{X: s.NormFloat64(), Y: s.NormFloat64()}
	}
	return pts
}

// PolygonFew places k vertices of a regular-ish convex polygon of radius 1
// (jittered so coordinates are in general position) and n−k points well
// inside (radius ≤ 1/2): the hull has exactly k vertices, the regime where
// output-sensitive algorithms shine.
func PolygonFew(k int) func(seed uint64, n int) []geom.Point {
	return func(seed uint64, n int) []geom.Point {
		s := rng.New(seed)
		if k > n {
			k = n
		}
		pts := make([]geom.Point, n)
		for i := 0; i < k; i++ {
			th := (float64(i) + 0.1*s.Float64()) / float64(k) * 2 * math.Pi
			pts[i] = geom.Point{X: math.Cos(th), Y: math.Sin(th)}
		}
		for i := k; i < n; i++ {
			r := 0.5 * math.Sqrt(s.Float64())
			th := s.Float64() * 2 * math.Pi
			pts[i] = geom.Point{X: r * math.Cos(th), Y: r * math.Sin(th)}
		}
		rng.Shuffle(s, pts)
		return pts
	}
}

// Onion places n points on ⌈n/perLayer⌉ concentric circles, producing a
// layered ("onion") structure that stresses recursive peeling.
func Onion(perLayer int) func(seed uint64, n int) []geom.Point {
	return func(seed uint64, n int) []geom.Point {
		s := rng.New(seed)
		pts := make([]geom.Point, n)
		layers := (n + perLayer - 1) / perLayer
		for i := range pts {
			layer := i / perLayer
			r := 1.0 - float64(layer)/(2*float64(layers))
			th := s.Float64() * 2 * math.Pi
			pts[i] = geom.Point{X: r * math.Cos(th), Y: r * math.Sin(th)}
		}
		rng.Shuffle(s, pts)
		return pts
	}
}

// Clusters places n points in k tight Gaussian blobs whose centers sit
// inside the unit disk: the multi-tenant "hot spots" shape the admission
// culling experiments use. The hull touches only the outermost fringe of
// the outermost blobs, so almost every point is interior.
func Clusters(k int) func(seed uint64, n int) []geom.Point {
	return func(seed uint64, n int) []geom.Point {
		s := rng.New(seed)
		centers := make([]geom.Point, k)
		for i := range centers {
			r := 0.8 * math.Sqrt(s.Float64())
			th := s.Float64() * 2 * math.Pi
			centers[i] = geom.Point{X: r * math.Cos(th), Y: r * math.Sin(th)}
		}
		pts := make([]geom.Point, n)
		for i := range pts {
			c := centers[s.Intn(k)]
			pts[i] = geom.Point{X: c.X + 0.03*s.NormFloat64(), Y: c.Y + 0.03*s.NormFloat64()}
		}
		return pts
	}
}

// Collinear places most points on a line with a few off-line points: a
// degeneracy stress test for the exact predicates.
func Collinear(seed uint64, n int) []geom.Point {
	s := rng.New(seed)
	pts := make([]geom.Point, n)
	for i := range pts {
		x := s.Float64() * 10
		if i%10 == 0 {
			pts[i] = geom.Point{X: x, Y: 2*x + 1 + s.Float64()}
		} else {
			pts[i] = geom.Point{X: x, Y: 2*x + 1}
		}
	}
	return pts
}

// Grid places points on a √n×√n integer grid (duplicates of coordinates,
// many collinear triples).
func Grid(seed uint64, n int) []geom.Point {
	s := rng.New(seed)
	side := int(math.Ceil(math.Sqrt(float64(n))))
	if side < 1 {
		side = 1 // rng.Intn requires a positive bound (n = 0 inputs)
	}
	pts := make([]geom.Point, n)
	for i := range pts {
		pts[i] = geom.Point{X: float64(s.Intn(side)), Y: float64(s.Intn(side))}
	}
	return pts
}

// Sorted returns a copy of pts sorted by increasing x (ties by y) — the
// "pre-sorted input" of Section 2.
func Sorted(pts []geom.Point) []geom.Point {
	s := make([]geom.Point, len(pts))
	copy(s, pts)
	sort.Slice(s, func(i, j int) bool { return geom.LexLess(s[i], s[j]) })
	return s
}

// Gens2D is the registry of 2-d generators used by the experiment harness.
var Gens2D = []Gen2D{
	{Name: "circle", ExpectedH: "h=n", Gen: Circle},
	{Name: "disk", ExpectedH: "h≈n^(1/3)", Gen: Disk},
	{Name: "gauss", ExpectedH: "h≈√log n", Gen: Gaussian},
	{Name: "poly16", ExpectedH: "h=16", Gen: PolygonFew(16)},
	{Name: "poly64", ExpectedH: "h=64", Gen: PolygonFew(64)},
	{Name: "onion64", ExpectedH: "layered", Gen: Onion(64)},
	{Name: "cluster8", ExpectedH: "h≈fringe", Gen: Clusters(8)},
}

// ---- 3-d generators ----

// Gen3D is a named 3-d point generator.
type Gen3D struct {
	Name      string
	ExpectedH string
	Gen       func(seed uint64, n int) []geom.Point3
}

// Ball places n points uniformly in the unit ball: E[h] = Θ(√n)… with the
// hull size growing polynomially but sublinearly.
func Ball(seed uint64, n int) []geom.Point3 {
	s := rng.New(seed)
	pts := make([]geom.Point3, n)
	for i := range pts {
		pts[i] = randBall(s)
	}
	return pts
}

func randBall(s *rng.Stream) geom.Point3 {
	for {
		p := geom.Point3{X: 2*s.Float64() - 1, Y: 2*s.Float64() - 1, Z: 2*s.Float64() - 1}
		if p.Dot(p) <= 1 {
			return p
		}
	}
}

// Sphere places n points on the unit sphere: h = Θ(n).
func Sphere(seed uint64, n int) []geom.Point3 {
	s := rng.New(seed)
	pts := make([]geom.Point3, n)
	for i := range pts {
		pts[i] = randSphere(s)
	}
	return pts
}

func randSphere(s *rng.Stream) geom.Point3 {
	// Marsaglia's method.
	for {
		u := 2*s.Float64() - 1
		v := 2*s.Float64() - 1
		q := u*u + v*v
		if q >= 1 {
			continue
		}
		f := 2 * math.Sqrt(1-q)
		return geom.Point3{X: u * f, Y: v * f, Z: 1 - 2*q}
	}
}

// BallFew places k sites on the sphere and n−k points in the half-radius
// ball: the 3-d small-h regime.
func BallFew(k int) func(seed uint64, n int) []geom.Point3 {
	return func(seed uint64, n int) []geom.Point3 {
		s := rng.New(seed)
		if k > n {
			k = n
		}
		pts := make([]geom.Point3, n)
		for i := 0; i < k; i++ {
			pts[i] = randSphere(s)
		}
		for i := k; i < n; i++ {
			p := randBall(s)
			pts[i] = geom.Point3{X: p.X / 2, Y: p.Y / 2, Z: p.Z / 2}
		}
		rng.Shuffle(s, pts)
		return pts
	}
}

// Cap places points on the upper unit hemisphere: the entire set appears on
// the upper hull, the 3-d analogue of Circle.
func Cap(seed uint64, n int) []geom.Point3 {
	s := rng.New(seed)
	pts := make([]geom.Point3, n)
	for i := range pts {
		p := randSphere(s)
		if p.Z < 0 {
			p.Z = -p.Z
		}
		pts[i] = p
	}
	return pts
}

// MomentCurve places points on the moment curve (t, t², t³), every one of
// which is extreme.
func MomentCurve(seed uint64, n int) []geom.Point3 {
	s := rng.New(seed)
	pts := make([]geom.Point3, n)
	for i := range pts {
		t := 2*s.Float64() - 1
		pts[i] = geom.Point3{X: t, Y: t * t, Z: t * t * t}
	}
	return pts
}

// Gens3D is the registry of 3-d generators used by the experiment harness.
var Gens3D = []Gen3D{
	{Name: "ball", ExpectedH: "h sublinear", Gen: Ball},
	{Name: "sphere", ExpectedH: "h≈n", Gen: Sphere},
	{Name: "ballfew64", ExpectedH: "h small", Gen: BallFew(64)},
	{Name: "cap", ExpectedH: "upper-dense", Gen: Cap},
}
