package workload

import (
	"math"
	"testing"

	"inplacehull/internal/geom"
)

func TestGeneratorsDeterministic(t *testing.T) {
	for _, g := range Gens2D {
		a := g.Gen(7, 100)
		b := g.Gen(7, 100)
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("%s not deterministic at %d", g.Name, i)
			}
		}
		c := g.Gen(8, 100)
		same := 0
		for i := range a {
			if a[i] == c[i] {
				same++
			}
		}
		if same == len(a) {
			t.Fatalf("%s ignores the seed", g.Name)
		}
	}
}

func TestGeneratorsCount(t *testing.T) {
	for _, g := range Gens2D {
		for _, n := range []int{0, 1, 7, 100} {
			if got := len(g.Gen(1, n)); got != n {
				t.Fatalf("%s(n=%d) returned %d points", g.Name, n, got)
			}
		}
	}
	for _, g := range Gens3D {
		if got := len(g.Gen(1, 50)); got != 50 {
			t.Fatalf("%s returned %d points", g.Name, got)
		}
	}
}

func TestCircleOnUnitCircle(t *testing.T) {
	for _, p := range Circle(3, 200) {
		r := p.X*p.X + p.Y*p.Y
		if math.Abs(r-1) > 1e-12 {
			t.Fatalf("point %v off the unit circle (r²=%v)", p, r)
		}
	}
}

func TestDiskInUnitDisk(t *testing.T) {
	for _, p := range Disk(4, 500) {
		if p.X*p.X+p.Y*p.Y > 1+1e-12 {
			t.Fatalf("point %v outside the unit disk", p)
		}
	}
}

func TestPolygonFewInterior(t *testing.T) {
	pts := PolygonFew(16)(5, 1000)
	onRim := 0
	for _, p := range pts {
		r := math.Sqrt(p.X*p.X + p.Y*p.Y)
		switch {
		case math.Abs(r-1) < 1e-9:
			onRim++
		case r <= 0.5+1e-9:
		default:
			t.Fatalf("point %v neither rim nor interior", p)
		}
	}
	if onRim != 16 {
		t.Fatalf("rim points = %d, want 16", onRim)
	}
}

func TestSortedIsSorted(t *testing.T) {
	s := Sorted(Gaussian(9, 300))
	for i := 1; i < len(s); i++ {
		if geom.LexLess(s[i], s[i-1]) {
			t.Fatalf("not sorted at %d", i)
		}
	}
}

func TestSphereOnUnitSphere(t *testing.T) {
	for _, p := range Sphere(2, 300) {
		if math.Abs(p.Dot(p)-1) > 1e-9 {
			t.Fatalf("point %v off the unit sphere", p)
		}
	}
}

func TestBallInUnitBall(t *testing.T) {
	for _, p := range Ball(2, 500) {
		if p.Dot(p) > 1+1e-12 {
			t.Fatalf("point %v outside the unit ball", p)
		}
	}
}

func TestCapUpperHemisphere(t *testing.T) {
	for _, p := range Cap(6, 300) {
		if p.Z < 0 {
			t.Fatalf("cap point %v below equator", p)
		}
	}
}

func TestMomentCurve(t *testing.T) {
	for _, p := range MomentCurve(8, 100) {
		if math.Abs(p.Y-p.X*p.X) > 1e-12 || math.Abs(p.Z-p.X*p.X*p.X) > 1e-12 {
			t.Fatalf("point %v off the moment curve", p)
		}
	}
}

func TestCollinearMostlyOnLine(t *testing.T) {
	pts := Collinear(10, 200)
	onLine := 0
	for _, p := range pts {
		if p.Y == 2*p.X+1 {
			onLine++
		}
	}
	if onLine < len(pts)/2 {
		t.Fatalf("only %d/%d points on the line", onLine, len(pts))
	}
}

func TestOnionLayers(t *testing.T) {
	pts := Onion(50)(11, 200)
	radii := map[float64]int{}
	for _, p := range pts {
		r := math.Round(math.Sqrt(p.X*p.X+p.Y*p.Y)*1e9) / 1e9
		radii[r]++
	}
	if len(radii) < 3 {
		t.Fatalf("expected ≥ 3 distinct layers, got %d", len(radii))
	}
}
