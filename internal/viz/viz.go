// Package viz renders point sets and hulls to standalone SVG — a small
// inspection aid for cmd/hulldemo (-svg flag) and the examples.
package viz

import (
	"fmt"
	"math"
	"strings"

	"inplacehull/internal/geom"
)

// SVG2D renders the points and an upper-hull (or full-hull) chain into an
// SVG document string. The viewport is fitted to the data with a small
// margin; points are dots, the chain is a polyline, chain vertices are
// emphasized.
func SVG2D(pts []geom.Point, chain []geom.Point, closed bool) string {
	const w, h, margin = 800.0, 600.0, 24.0
	minX, minY := math.Inf(1), math.Inf(1)
	maxX, maxY := math.Inf(-1), math.Inf(-1)
	for _, p := range pts {
		minX, maxX = math.Min(minX, p.X), math.Max(maxX, p.X)
		minY, maxY = math.Min(minY, p.Y), math.Max(maxY, p.Y)
	}
	if len(pts) == 0 {
		minX, minY, maxX, maxY = 0, 0, 1, 1
	}
	spanX, spanY := maxX-minX, maxY-minY
	if spanX == 0 {
		spanX = 1
	}
	if spanY == 0 {
		spanY = 1
	}
	// SVG y grows downward: flip.
	tx := func(p geom.Point) (float64, float64) {
		return margin + (p.X-minX)/spanX*(w-2*margin),
			h - margin - (p.Y-minY)/spanY*(h-2*margin)
	}

	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%g" height="%g" viewBox="0 0 %g %g">`+"\n", w, h, w, h)
	b.WriteString(`<rect width="100%" height="100%" fill="white"/>` + "\n")
	for _, p := range pts {
		x, y := tx(p)
		fmt.Fprintf(&b, `<circle cx="%.2f" cy="%.2f" r="1.6" fill="#778"/>`+"\n", x, y)
	}
	if len(chain) > 1 {
		b.WriteString(`<polyline fill="none" stroke="#c33" stroke-width="1.8" points="`)
		for _, p := range chain {
			x, y := tx(p)
			fmt.Fprintf(&b, "%.2f,%.2f ", x, y)
		}
		if closed {
			x, y := tx(chain[0])
			fmt.Fprintf(&b, "%.2f,%.2f", x, y)
		}
		b.WriteString(`"/>` + "\n")
	}
	for _, p := range chain {
		x, y := tx(p)
		fmt.Fprintf(&b, `<circle cx="%.2f" cy="%.2f" r="3.2" fill="#c33"/>`+"\n", x, y)
	}
	b.WriteString("</svg>\n")
	return b.String()
}
