package viz

import (
	"strings"
	"testing"

	"inplacehull/internal/geom"
)

func TestSVG2DBasic(t *testing.T) {
	pts := []geom.Point{{X: 0, Y: 0}, {X: 1, Y: 1}, {X: 2, Y: 0}}
	chain := []geom.Point{{X: 0, Y: 0}, {X: 1, Y: 1}, {X: 2, Y: 0}}
	svg := SVG2D(pts, chain, false)
	if !strings.HasPrefix(svg, "<svg") || !strings.Contains(svg, "</svg>") {
		t.Fatal("not an SVG document")
	}
	if strings.Count(svg, "<circle") != len(pts)+len(chain) {
		t.Fatalf("expected %d circles", len(pts)+len(chain))
	}
	if !strings.Contains(svg, "<polyline") {
		t.Fatal("missing hull polyline")
	}
}

func TestSVG2DClosed(t *testing.T) {
	chain := []geom.Point{{X: 0, Y: 0}, {X: 2, Y: 0}, {X: 1, Y: 2}}
	svg := SVG2D(chain, chain, true)
	// Closing repeats the first vertex in the polyline points list.
	poly := svg[strings.Index(svg, "<polyline"):]
	poly = poly[:strings.Index(poly, "/>")]
	if strings.Count(poly, ",") != 4 {
		t.Fatalf("closed polyline should have 4 coordinate pairs: %s", poly)
	}
}

func TestSVG2DEmpty(t *testing.T) {
	svg := SVG2D(nil, nil, false)
	if !strings.Contains(svg, "</svg>") {
		t.Fatal("empty input must still render a document")
	}
}

func TestSVG2DDegenerateSpan(t *testing.T) {
	pts := []geom.Point{{X: 5, Y: 5}, {X: 5, Y: 5}}
	svg := SVG2D(pts, nil, false)
	if strings.Contains(svg, "NaN") || strings.Contains(svg, "Inf") {
		t.Fatal("degenerate span produced non-finite coordinates")
	}
}
