// Package hullerr defines the library's typed error taxonomy. Every error a
// public algorithm can return is (or wraps) an *Error with a Kind; sentinel
// values allow errors.Is matching without string inspection. The taxonomy is
// the failure-semantics half of the §2.3 confidence story: a randomized
// sub-procedure is allowed to fail, but the failure must either be absorbed
// (failure sweeping, retries) or surface as a classified error — never as a
// panic or a wrong answer.
package hullerr

import (
	"context"
	"errors"
	"fmt"

	"inplacehull/internal/geom"
)

// Kind classifies an Error.
type Kind int

const (
	// InvalidInput: the caller's input violates the API contract (e.g. a
	// NaN or ±Inf coordinate).
	InvalidInput Kind = iota
	// UnsortedInput: a pre-sorted-input algorithm (§2) was handed points
	// that are not strictly increasing in x.
	UnsortedInput
	// BudgetExhausted: a retry or step budget ran out — the escalation
	// policy terminated a run that would otherwise loop (e.g. every vote
	// round poisoned by fault injection).
	BudgetExhausted
	// Internal: a postcondition that should be unreachable failed; a bug,
	// reported instead of panicking.
	Internal
	// Canceled: the caller's context was canceled mid-run; the machine
	// stopped between PRAM steps with its counters consistent.
	Canceled
	// DeadlineExceeded: the caller's context deadline expired mid-run.
	DeadlineExceeded
	// Overloaded: the serving layer shed the request at admission — its
	// bounded queue was full (or the server was shutting down) and
	// queueing further would only convert overload into timeouts. The
	// request was rejected before any PRAM work was charged; retrying
	// after backoff is reasonable, retrying immediately is not.
	Overloaded
	// ApproximateOnly: every exact tier of the degradation ladder failed,
	// a certified ε-approximate answer was available, but the caller
	// demanded exactness (Policy.RequireExact). Relaxing the requirement
	// and re-running would succeed with the approximate tier.
	ApproximateOnly
	// PartialHull: the sharded scatter-gather layer (internal/shard)
	// exhausted its retry/hedge/re-scatter ladder with some shards still
	// unreachable, and answered with the exact hull of the shards it
	// could cover. The result is certified for the covered shards and
	// labeled with the missing ones — it is never presented as the global
	// hull. Retrying once the missing peers recover yields the exact
	// answer.
	PartialHull
)

// String names the kind for error messages.
func (k Kind) String() string {
	switch k {
	case InvalidInput:
		return "invalid input"
	case UnsortedInput:
		return "unsorted input"
	case BudgetExhausted:
		return "budget exhausted"
	case Canceled:
		return "canceled"
	case DeadlineExceeded:
		return "deadline exceeded"
	case Overloaded:
		return "overloaded"
	case ApproximateOnly:
		return "approximate only"
	case PartialHull:
		return "partial hull"
	default:
		return "internal error"
	}
}

// Error is the typed error of the library.
type Error struct {
	// Kind classifies the failure.
	Kind Kind
	// Op is the failing operation ("Hull2D", "presorted.Segmented", …).
	Op string
	// Msg is the human-readable detail.
	Msg string
}

// Error implements the error interface.
func (e *Error) Error() string {
	if e.Op == "" {
		return fmt.Sprintf("%s: %s", e.Kind, e.Msg)
	}
	return fmt.Sprintf("%s: %s: %s", e.Op, e.Kind, e.Msg)
}

// Is matches any *Error of the same Kind, so errors.Is(err, ErrNonFinite)
// works for every invalid-coordinate error regardless of Op and Msg.
func (e *Error) Is(target error) bool {
	t, ok := target.(*Error)
	return ok && t.Kind == e.Kind
}

// Sentinels for errors.Is. Each stands for its whole Kind.
var (
	// ErrNonFinite: an input coordinate is NaN or ±Inf.
	ErrNonFinite = &Error{Kind: InvalidInput, Msg: "non-finite coordinate"}
	// ErrUnsorted: pre-sorted API called with non-strictly-increasing x.
	ErrUnsorted = &Error{Kind: UnsortedInput, Msg: "input not strictly x-sorted"}
	// ErrBudget: a retry/step budget was exhausted.
	ErrBudget = &Error{Kind: BudgetExhausted, Msg: "retry budget exhausted"}
	// ErrCanceled: the run's context was canceled.
	ErrCanceled = &Error{Kind: Canceled, Msg: "run canceled"}
	// ErrDeadline: the run's context deadline expired.
	ErrDeadline = &Error{Kind: DeadlineExceeded, Msg: "run deadline exceeded"}
	// ErrOverload: the serving layer's admission control shed the request.
	ErrOverload = &Error{Kind: Overloaded, Msg: "server overloaded"}
	// ErrApproximateOnly: only the approximate tier survived, but the
	// caller required exactness.
	ErrApproximateOnly = &Error{Kind: ApproximateOnly, Msg: "only an approximate hull is available"}
	// ErrPartialHull: the scatter-gather layer answered with a hull
	// covering only the reachable shards.
	ErrPartialHull = &Error{Kind: PartialHull, Msg: "hull covers only the reachable shards"}
)

// New builds a typed error.
func New(kind Kind, op, format string, args ...any) *Error {
	return &Error{Kind: kind, Op: op, Msg: fmt.Sprintf(format, args...)}
}

// IsTyped reports whether err is (or wraps) an *Error — the contract the
// chaos soak asserts for every non-nil error a public API returns.
func IsTyped(err error) bool {
	var e *Error
	return errors.As(err, &e)
}

// FromContext converts a context error (context.Canceled or
// context.DeadlineExceeded) into the matching typed kind. Any other cause
// is classified Canceled: the run was stopped by its context either way.
func FromContext(op string, cause error) *Error {
	k := Canceled
	if errors.Is(cause, context.DeadlineExceeded) {
		k = DeadlineExceeded
	}
	return New(k, op, "%v", cause)
}

// CheckFinite2D validates that every coordinate is finite; the first
// offending point is named in the error.
func CheckFinite2D(op string, pts []geom.Point) error {
	for i, p := range pts {
		if !p.IsFinite() {
			return New(InvalidInput, op, "point %d has a non-finite coordinate %v", i, p)
		}
	}
	return nil
}

// CheckFinite3D is CheckFinite2D for 3-d points.
func CheckFinite3D(op string, pts []geom.Point3) error {
	for i, p := range pts {
		if !p.IsFinite() {
			return New(InvalidInput, op, "point %d has a non-finite coordinate %v", i, p)
		}
	}
	return nil
}
