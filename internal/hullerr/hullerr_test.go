package hullerr

import (
	"errors"
	"fmt"
	"math"
	"testing"

	"inplacehull/internal/geom"
)

func TestSentinelsMatchByKind(t *testing.T) {
	cases := []struct {
		err      error
		sentinel *Error
	}{
		{New(InvalidInput, "Hull2D", "point %d bad", 3), ErrNonFinite},
		{New(UnsortedInput, "presorted", "x[%d] out of order", 1), ErrUnsorted},
		{New(BudgetExhausted, "unsorted2d.vote", "8 rounds skewed"), ErrBudget},
		{New(Overloaded, "serve.Query2D", "queue full (256 pending)"), ErrOverload},
	}
	for _, c := range cases {
		if !errors.Is(c.err, c.sentinel) {
			t.Fatalf("%v does not match sentinel %v", c.err, c.sentinel)
		}
	}
	// Cross-kind must not match.
	if errors.Is(New(Internal, "x", "y"), ErrBudget) {
		t.Fatal("Internal matched ErrBudget")
	}
	if errors.Is(ErrNonFinite, ErrUnsorted) {
		t.Fatal("sentinels of different kinds matched")
	}
}

func TestIsTypedThroughWrapping(t *testing.T) {
	base := New(BudgetExhausted, "op", "msg")
	wrapped := fmt.Errorf("outer context: %w", base)
	if !IsTyped(base) || !IsTyped(wrapped) {
		t.Fatal("typed error not recognized")
	}
	if !errors.Is(wrapped, ErrBudget) {
		t.Fatal("sentinel match lost through wrapping")
	}
	if IsTyped(errors.New("plain")) || IsTyped(nil) {
		t.Fatal("untyped error misclassified")
	}
}

func TestErrorStringIncludesOpAndKind(t *testing.T) {
	e := New(UnsortedInput, "presorted.ConstantTime", "x[4] = x[5]")
	s := e.Error()
	if s != "presorted.ConstantTime: unsorted input: x[4] = x[5]" {
		t.Fatalf("unexpected error text %q", s)
	}
	if got := (&Error{Kind: Internal, Msg: "m"}).Error(); got != "internal error: m" {
		t.Fatalf("op-less error text %q", got)
	}
}

func TestCheckFinite(t *testing.T) {
	ok2 := []geom.Point{{X: 0, Y: 1}, {X: -2, Y: 3}}
	if err := CheckFinite2D("op", ok2); err != nil {
		t.Fatal(err)
	}
	bad2 := []geom.Point{{X: 0, Y: 1}, {X: math.NaN(), Y: 0}}
	if err := CheckFinite2D("op", bad2); !errors.Is(err, ErrNonFinite) {
		t.Fatalf("NaN not caught: %v", err)
	}
	bad3 := []geom.Point3{{X: 0, Y: 0, Z: math.Inf(1)}}
	if err := CheckFinite3D("op", bad3); !errors.Is(err, ErrNonFinite) {
		t.Fatalf("Inf not caught: %v", err)
	}
	if err := CheckFinite3D("op", nil); err != nil {
		t.Fatal("empty input rejected")
	}
}
