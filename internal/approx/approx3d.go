// The 3-d approximate tier: grid-sampled cap facets with the same
// selection/certification split as the 2-d tier. Candidates are the
// z-maxima of a g×g grid over the xy-bounding box (selected through the
// oracle) plus the exact global top; the sampled upper hull's facets
// become the caps, assigned and certified with exact predicates under the
// library's §4.3 output contract — every point gets a cap facet whose
// plane it does not exceed by more than the measured Eps, and every
// non-degenerate cap is a plane through three input points (hence on or
// below the exact upper hull). Points whose xy-location the sampled hull
// does not cover receive the degenerate global-top cap, exactly the
// representation the exact algorithms use for flat geometry.
package approx

import (
	"math"

	"inplacehull/internal/geom"
	"inplacehull/internal/hull3d"
	"inplacehull/internal/hullerr"
	"inplacehull/internal/lp"
	"inplacehull/internal/rng"
)

// Result3D is a certified approximate 3-d cap answer in the shape of the
// library's Result3D contract.
type Result3D struct {
	// Facets are the cap planes; FacetOf maps each input point to its cap.
	Facets  []lp.Solution3D
	FacetOf []int
	// Eps is the certificate: the measured maximum vertical (z) distance
	// of any input point above its assigned cap plane.
	Eps float64
	// Requested is the relative tolerance asked for; Tol its absolute
	// form (Requested × the xyz bounding-box diagonal).
	Requested, Tol float64
	// Samples is the candidate count of the final round; Rounds the
	// number of refinement rounds executed.
	Samples, Rounds int
}

// Met reports whether the certificate meets the requested tolerance.
func (r Result3D) Met() bool { return r.Eps <= r.Tol }

// Upper3D computes a certified ε-approximate 3-d upper-hull cap cover.
// eps is relative to the bounding-box diagonal; rnd drives the sampled
// hull's randomized incremental construction (the caller controls
// determinism by seeding it). Selection consults o; certification is
// exact. The returned error is always typed and only reports
// input-contract violations.
func Upper3D(pts []geom.Point3, eps float64, o *geom.NoisyOracle, rnd *rng.Stream) (Result3D, error) {
	const op = "approx.Upper3D"
	if err := hullerr.CheckFinite3D(op, pts); err != nil {
		return Result3D{}, err
	}
	if !(eps > 0) {
		return Result3D{}, hullerr.New(hullerr.InvalidInput, op, "epsilon must be positive, got %g", eps)
	}
	n := len(pts)
	res := Result3D{Requested: eps}
	if n == 0 {
		return res, nil
	}
	lo, hi := pts[0], pts[0]
	for _, p := range pts {
		lo.X, hi.X = math.Min(lo.X, p.X), math.Max(hi.X, p.X)
		lo.Y, hi.Y = math.Min(lo.Y, p.Y), math.Max(hi.Y, p.Y)
		lo.Z, hi.Z = math.Min(lo.Z, p.Z), math.Max(hi.Z, p.Z)
	}
	wx, wy, wz := hi.X-lo.X, hi.Y-lo.Y, hi.Z-lo.Z
	res.Tol = eps * math.Sqrt(wx*wx+wy*wy+wz*wz)

	g := int(math.Ceil(2 / math.Sqrt(eps)))
	if g < 4 {
		g = 4
	}
	for round := 1; ; round++ {
		full := g*g >= n || round >= maxRounds
		cand := pts
		if !full {
			cand = cellMaxima(pts, g, lo, hi, o)
		}
		facets, facetOf, excess := buildCaps(pts, cand, rnd.Split(uint64(round)))
		res.Rounds, res.Samples = round, len(cand)
		if excess <= res.Tol || full {
			res.Facets, res.FacetOf, res.Eps = facets, facetOf, excess
			return res, nil
		}
		g *= 2
	}
}

// cellMaxima selects the z-maximum of each occupied cell of a g×g xy-grid
// (through the oracle) plus the exact global top point.
func cellMaxima(pts []geom.Point3, g int, lo, hi geom.Point3, o *geom.NoisyOracle) []geom.Point3 {
	wx, wy := hi.X-lo.X, hi.Y-lo.Y
	cell := func(p geom.Point3) int {
		cx, cy := 0, 0
		if wx > 0 {
			cx = int((p.X - lo.X) / wx * float64(g))
			if cx >= g {
				cx = g - 1
			}
		}
		if wy > 0 {
			cy = int((p.Y - lo.Y) / wy * float64(g))
			if cy >= g {
				cy = g - 1
			}
		}
		return cy*g + cx
	}
	best := make(map[int]int, g*g)
	for i, p := range pts {
		c := cell(p)
		bi, ok := best[c]
		if !ok || o.ZLess(pts[bi], p) {
			best[c] = i
		}
	}
	cand := make([]geom.Point3, 0, len(best)+1)
	// Deterministic order: scan cells, not the map.
	for c := 0; c < g*g; c++ {
		if bi, ok := best[c]; ok {
			cand = append(cand, pts[bi])
		}
	}
	return append(cand, globalTop(pts))
}

// globalTop returns the exact maximum-z input point (first among ties).
func globalTop(pts []geom.Point3) geom.Point3 {
	top := pts[0]
	for _, p := range pts {
		if p.Z > top.Z {
			top = p
		}
	}
	return top
}

// buildCaps constructs the sampled upper hull and assigns every input
// point a cap, measuring the certificate as it goes. A sample the
// incremental construction rejects (degenerate geometry) degrades to the
// single global-top cap, under which no point has positive excess.
func buildCaps(pts, sample []geom.Point3, rnd *rng.Stream) ([]lp.Solution3D, []int, float64) {
	n := len(pts)
	facetOf := make([]int, n)
	topOnly := func() ([]lp.Solution3D, []int, float64) {
		top := globalTop(pts)
		for i := range facetOf {
			facetOf[i] = 0
		}
		return []lp.Solution3D{{A: top, B: top, C: top}}, facetOf, 0
	}
	h, err := hull3d.Incremental(rnd, sample)
	if err != nil {
		return topOnly()
	}
	upper := h.UpperFaces()
	if len(upper) == 0 {
		return topOnly()
	}
	var facets []lp.Solution3D
	facetSlot := make(map[int]int)
	degenerateSlot := -1
	var worst float64
	for i, p := range pts {
		fi := hull3d.FaceAbove(h.Pts, upper, p.X, p.Y)
		if fi < 0 {
			if degenerateSlot < 0 {
				top := globalTop(pts)
				facets = append(facets, lp.Solution3D{A: top, B: top, C: top})
				degenerateSlot = len(facets) - 1
			}
			facetOf[i] = degenerateSlot
			continue
		}
		slot, ok := facetSlot[fi]
		if !ok {
			f := upper[fi]
			facets = append(facets, lp.Solution3D{A: h.Pts[f.A], B: h.Pts[f.B], C: h.Pts[f.C]})
			slot = len(facets) - 1
			facetSlot[fi] = slot
		}
		facetOf[i] = slot
		cap := facets[slot]
		if cap.Violates(p) {
			if d := p.Z - cap.ValueAt(p.X, p.Y); d > worst {
				worst = d
			}
		}
	}
	return facets, facetOf, worst
}

// Check3D re-derives the certificate of a Result3D: every point has a
// valid cap assignment and lies at most Eps above its cap plane (exact
// violation test, measured distance).
func Check3D(pts []geom.Point3, res Result3D) error {
	const op = "approx.Check3D"
	if len(res.FacetOf) != len(pts) {
		return hullerr.New(hullerr.Internal, op, "FacetOf has %d entries for %d points", len(res.FacetOf), len(pts))
	}
	for i, p := range pts {
		fi := res.FacetOf[i]
		if fi < 0 || fi >= len(res.Facets) {
			return hullerr.New(hullerr.Internal, op, "point %d has facet %d of %d", i, fi, len(res.Facets))
		}
		cap := res.Facets[fi]
		if cap.Violates(p) {
			if d := p.Z - cap.ValueAt(p.X, p.Y); d > res.Eps {
				return hullerr.New(hullerr.Internal, op,
					"point %v exceeds its cap by %g > declared eps %g", p, d, res.Eps)
			}
		}
	}
	return nil
}
