// Package approx implements the certified ε-approximate hull tier: a
// coarse sampled hull in the spirit of the paper's Lemma 3.1 (a small
// random/structured sample whose hull already captures most of the input)
// and of Bentley–Faust–Preparata strip approximation, together with an a
// posteriori certificate.
//
// The construction is two-phase. Candidate *selection* — which points
// enter the sampled hull — runs through a geom.NoisyOracle, so under the
// noisy-primitive model the selection may be corrupted and is repaired
// only by the oracle's majority voting. The *certificate* is computed with
// the library's exact predicates (the same trusted-verification licence
// the degradation ladder's oracle gate uses): the returned Eps is the
// measured maximum vertical distance of any input point above the
// returned hull, so the caller holds a proof of quality regardless of how
// noisy the selection was.
//
// For a convex (upper-hull) chain through input points, the certificate
// is a vertical Hausdorff bound against the exact upper hull: the chain
// lies on or below the exact hull (its vertices are input points), and
// every exact hull vertex is an input point, hence at most Eps above the
// chain; by concavity of both chains the gap anywhere in the common span
// is at most Eps. The property tests in this package pin that argument.
//
// Refinement: if the measured excess misses the requested tolerance the
// sample is doubled; the final full-resolution round uses every input
// point, so the loop always terminates with a certified result — possibly
// one whose Eps still exceeds the request (pathologically tight requests
// below float measurement noise). Callers decide with Met().
package approx

import (
	"math"

	"inplacehull/internal/geom"
	"inplacehull/internal/hull2d"
	"inplacehull/internal/hullerr"
)

// maxRounds bounds refinement; the last round always runs at full
// resolution, so the bound never forfeits termination with a certificate.
const maxRounds = 20

// Result2D is a certified approximate upper hull.
type Result2D struct {
	// Chain is the approximate upper-hull vertex sequence in strictly
	// increasing x; every vertex is an input point, so the chain lies on
	// or below the exact upper hull.
	Chain []geom.Point
	// Edges are the consecutive chain edges; EdgeOf maps every input
	// point to the edge covering its abscissa (−1 only when the chain has
	// no edges: empty or single-vertex hulls).
	Edges  []geom.Edge
	EdgeOf []int
	// Eps is the certificate: the measured maximum vertical distance of
	// any input point above the chain. 0 means the chain is an exact
	// upper hull of the input.
	Eps float64
	// Requested is the caller's relative tolerance; Tol is its absolute
	// form (Requested × the bounding-box diagonal).
	Requested, Tol float64
	// Samples is the candidate count of the final round; Rounds the
	// number of refinement rounds executed.
	Samples, Rounds int
}

// Met reports whether the certificate meets the requested tolerance.
func (r Result2D) Met() bool { return r.Eps <= r.Tol }

// Upper2D computes a certified ε-approximate upper hull. eps is relative
// to the bounding-box diagonal and must be positive. Candidate selection
// consults o (nil = exact); the certificate is always exact. The returned
// error is always typed and only reports input-contract violations — the
// construction itself cannot fail.
func Upper2D(pts []geom.Point, eps float64, o *geom.NoisyOracle) (Result2D, error) {
	const op = "approx.Upper2D"
	if err := hullerr.CheckFinite2D(op, pts); err != nil {
		return Result2D{}, err
	}
	if !(eps > 0) {
		return Result2D{}, hullerr.New(hullerr.InvalidInput, op, "epsilon must be positive, got %g", eps)
	}
	n := len(pts)
	res := Result2D{Requested: eps}
	if n == 0 {
		return res, nil
	}
	xmin, xmax := pts[0].X, pts[0].X
	ymin, ymax := pts[0].Y, pts[0].Y
	for _, p := range pts {
		xmin, xmax = math.Min(xmin, p.X), math.Max(xmax, p.X)
		ymin, ymax = math.Min(ymin, p.Y), math.Max(ymax, p.Y)
	}
	res.Tol = eps * math.Hypot(xmax-xmin, ymax-ymin)

	strips := int(math.Ceil(2 / eps))
	if strips < 8 {
		strips = 8
	}
	if strips > n {
		strips = n
	}
	for round := 1; ; round++ {
		full := strips >= n || round >= maxRounds
		cand := pts
		if !full {
			cand = stripMaxima(pts, strips, xmin, xmax, o)
		}
		chain := hull2d.UpperHull(cand)
		edges, edgeOf := edgesFor(pts, chain)
		excess := measure2D(pts, chain, edges, edgeOf)
		res.Rounds, res.Samples = round, len(cand)
		if excess <= res.Tol || full {
			res.Chain, res.Edges, res.EdgeOf, res.Eps = chain, edges, edgeOf, excess
			return res, nil
		}
		strips *= 2
	}
}

// stripMaxima selects the BFP-style candidates: the y-maximum of each of
// k equal-width x-strips, chosen through the (possibly noisy) oracle,
// plus the exact column tops at the extreme abscissae — the anchors that
// keep every input inside the chain's x-span whatever the noise did.
func stripMaxima(pts []geom.Point, k int, xmin, xmax float64, o *geom.NoisyOracle) []geom.Point {
	w := xmax - xmin
	best := make([]int, k)
	for i := range best {
		best[i] = -1
	}
	for i, p := range pts {
		s := 0
		if w > 0 {
			s = int((p.X - xmin) / w * float64(k))
			if s >= k {
				s = k - 1
			}
			if s < 0 {
				s = 0
			}
		}
		if best[s] < 0 || o.YLess(pts[best[s]], p) {
			best[s] = i
		}
	}
	cand := make([]geom.Point, 0, k+2)
	for _, bi := range best {
		if bi >= 0 {
			cand = append(cand, pts[bi])
		}
	}
	left, right := pts[0], pts[0]
	for _, p := range pts {
		if p.X < left.X || (p.X == left.X && p.Y > left.Y) {
			left = p
		}
		if p.X > right.X || (p.X == right.X && p.Y > right.Y) {
			right = p
		}
	}
	return append(cand, left, right)
}

// edgesFor assembles the Result2D edge structure for a chain: consecutive
// chain edges plus the covering-edge pointer per input point.
func edgesFor(pts, chain []geom.Point) ([]geom.Edge, []int) {
	edges := make([]geom.Edge, 0, len(chain))
	for i := 1; i < len(chain); i++ {
		edges = append(edges, geom.Edge{U: chain[i-1], W: chain[i]})
	}
	edgeOf := make([]int, len(pts))
	for i, p := range pts {
		edgeOf[i] = coveringEdge(edges, p.X)
	}
	return edges, edgeOf
}

// coveringEdge returns the index of the x-sorted edge whose span covers x,
// or −1.
func coveringEdge(list []geom.Edge, x float64) int {
	lo, hi := 0, len(list)
	for lo < hi {
		mid := (lo + hi) / 2
		if list[mid].W.X < x {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(list) && list[lo].Covers(x) {
		return lo
	}
	return -1
}

// measure2D computes the certificate: the maximum vertical distance of
// any input point above the chain. The above/below decision is exact
// (orientation predicate); only the distance of genuinely-above points is
// floating-point. Points not covered by any edge of a multi-edge chain
// report +Inf (cannot happen when the extreme anchors were selected
// exactly, but the measurement must stay sound if they were not).
func measure2D(pts, chain []geom.Point, edges []geom.Edge, edgeOf []int) float64 {
	var worst float64
	for i, p := range pts {
		ei := edgeOf[i]
		switch {
		case ei >= 0:
			e := edges[ei]
			if !geom.AboveLine(p, e.U, e.W) {
				continue
			}
			if d := p.Y - e.Line().Eval(p.X); d > worst {
				worst = d
			}
		case len(chain) == 1 && p.X == chain[0].X:
			if d := p.Y - chain[0].Y; d > worst {
				worst = d
			}
		case len(chain) == 0:
			// no chain (empty input handled by caller); nothing to measure
		default:
			return math.Inf(1)
		}
	}
	return worst
}

// Check2D re-derives the certificate of a Result2D and verifies its
// structural invariants: a strictly convex x-increasing chain of input
// points, consistent edges, and a measured excess within the declared
// Eps. It is the validity oracle for the approximate tier (the exact-tier
// oracle rejects any point above its edge, which is precisely what an
// approximate result is allowed to have).
func Check2D(pts []geom.Point, res Result2D) error {
	const op = "approx.Check2D"
	onInput := make(map[geom.Point]bool, len(pts))
	for _, p := range pts {
		onInput[p] = true
	}
	for i, v := range res.Chain {
		if !onInput[v] {
			return hullerr.New(hullerr.Internal, op, "chain vertex %v is not an input point", v)
		}
		if i > 0 && res.Chain[i-1].X >= v.X {
			return hullerr.New(hullerr.Internal, op, "chain not strictly x-increasing at %d", i)
		}
		if i >= 2 && geom.Orientation(res.Chain[i-2], res.Chain[i-1], v) >= 0 {
			return hullerr.New(hullerr.Internal, op, "chain not strictly convex at %d", i)
		}
	}
	if len(res.Edges) != maxInt(0, len(res.Chain)-1) {
		return hullerr.New(hullerr.Internal, op, "edge count %d for chain of %d", len(res.Edges), len(res.Chain))
	}
	for i, e := range res.Edges {
		if e.U != res.Chain[i] || e.W != res.Chain[i+1] {
			return hullerr.New(hullerr.Internal, op, "edge %d does not match chain", i)
		}
	}
	if len(res.EdgeOf) != len(pts) {
		return hullerr.New(hullerr.Internal, op, "EdgeOf has %d entries for %d points", len(res.EdgeOf), len(pts))
	}
	for i, ei := range res.EdgeOf {
		if ei >= 0 && !res.Edges[ei].Covers(pts[i].X) {
			return hullerr.New(hullerr.Internal, op, "point %v not covered by its edge", pts[i])
		}
	}
	if got := measure2D(pts, res.Chain, res.Edges, res.EdgeOf); got > res.Eps {
		return hullerr.New(hullerr.Internal, op, "measured excess %g exceeds declared eps %g", got, res.Eps)
	}
	return nil
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
