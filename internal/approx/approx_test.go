package approx

import (
	"math"
	"testing"

	"inplacehull/internal/geom"
	"inplacehull/internal/hull2d"
	"inplacehull/internal/rng"
	"inplacehull/internal/workload"
)

// flipSource is a deterministic Bernoulli(p) noise source for tests.
func flipSource(seed uint64, p float64) func() bool {
	s := rng.New(seed)
	return func() bool { return s.Float64() < p }
}

// TestUpper2DCertificate: across workloads, sizes, and tolerances, the
// approximate hull certifies, meets its requested tolerance, and is
// within its declared Eps of the exact hull in vertical Hausdorff
// distance (checked at the breakpoints of both chains, which by concavity
// bounds the gap everywhere).
func TestUpper2DCertificate(t *testing.T) {
	for _, g := range workload.Gens2D {
		for _, n := range []int{1, 2, 17, 256, 1024} {
			for _, eps := range []float64{0.2, 0.05, 0.01} {
				pts := g.Gen(11, n)
				res, err := Upper2D(pts, eps, nil)
				if err != nil {
					t.Fatalf("%s/n=%d/eps=%g: %v", g.Name, n, eps, err)
				}
				if err := Check2D(pts, res); err != nil {
					t.Fatalf("%s/n=%d/eps=%g: certificate: %v", g.Name, n, eps, err)
				}
				if !res.Met() {
					t.Fatalf("%s/n=%d/eps=%g: Eps %g > Tol %g after %d rounds",
						g.Name, n, eps, res.Eps, res.Tol, res.Rounds)
				}
				assertHausdorff(t, pts, res)
			}
		}
	}
}

// assertHausdorff checks every exact-hull vertex lies at most Eps above
// the approximate chain (small slack for the float measurement).
func assertHausdorff(t *testing.T, pts []geom.Point, res Result2D) {
	t.Helper()
	exact := hull2d.UpperHull(pts)
	scale := 1.0
	for _, p := range pts {
		scale = math.Max(scale, math.Max(math.Abs(p.X), math.Abs(p.Y)))
	}
	slack := 1e-9 * scale
	for _, v := range exact {
		ei := coveringEdge(res.Edges, v.X)
		var below float64
		switch {
		case ei >= 0:
			below = res.Edges[ei].Line().Eval(v.X)
		case len(res.Chain) == 1 && v.X == res.Chain[0].X:
			below = res.Chain[0].Y
		default:
			t.Fatalf("exact vertex %v outside approximate chain span", v)
		}
		if d := v.Y - below; d > res.Eps+slack {
			t.Fatalf("exact vertex %v is %g above the approximate chain; declared eps %g", v, d, res.Eps)
		}
	}
}

// TestUpper2DExactOracleBitIdentical: a flip-free voted oracle must yield
// the identical result to the nil oracle — the metamorphic anchor.
func TestUpper2DExactOracleBitIdentical(t *testing.T) {
	pts := workload.Gens2D[0].Gen(3, 500)
	a, err := Upper2D(pts, 0.05, nil)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Upper2D(pts, 0.05, &geom.NoisyOracle{Votes: 9})
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Chain) != len(b.Chain) || a.Eps != b.Eps || a.Samples != b.Samples {
		t.Fatalf("flip-free voted oracle diverged: %d/%g vs %d/%g", len(a.Chain), a.Eps, len(b.Chain), b.Eps)
	}
	for i := range a.Chain {
		if a.Chain[i] != b.Chain[i] {
			t.Fatalf("chain vertex %d differs: %v vs %v", i, a.Chain[i], b.Chain[i])
		}
	}
}

// TestUpper2DUnderNoise: with flips at the modeled rates and the
// scheduled vote count, the result still certifies and meets tolerance —
// selection errors are absorbed by voting, refinement, and the exact
// certificate.
func TestUpper2DUnderNoise(t *testing.T) {
	for _, p := range []float64{0.05, 0.1, 0.2} {
		o := &geom.NoisyOracle{Flip: flipSource(77, p), Votes: geom.VotesFor(p, 1e-9)}
		pts := workload.Gens2D[0].Gen(5, 800)
		res, err := Upper2D(pts, 0.05, o)
		if err != nil {
			t.Fatalf("p=%g: %v", p, err)
		}
		if err := Check2D(pts, res); err != nil {
			t.Fatalf("p=%g: certificate: %v", p, err)
		}
		if !res.Met() {
			t.Fatalf("p=%g: Eps %g > Tol %g", p, res.Eps, res.Tol)
		}
		assertHausdorff(t, pts, res)
	}
}

// TestUpper2DInvalidInput: typed errors for non-finite points and
// non-positive epsilon.
func TestUpper2DInvalidInput(t *testing.T) {
	if _, err := Upper2D([]geom.Point{{X: math.NaN()}}, 0.1, nil); err == nil {
		t.Fatal("NaN accepted")
	}
	if _, err := Upper2D([]geom.Point{{X: 1}}, 0, nil); err == nil {
		t.Fatal("zero epsilon accepted")
	}
	if _, err := Upper2D(nil, 0.1, nil); err != nil {
		t.Fatalf("empty input rejected: %v", err)
	}
}

// TestUpper3DCertificate mirrors the 2-d test for the cap contract, and
// additionally verifies every non-degenerate cap is a plane through input
// points (so caps never float above the exact hull).
func TestUpper3DCertificate(t *testing.T) {
	for _, g := range workload.Gens3D {
		for _, n := range []int{1, 4, 64, 256} {
			for _, eps := range []float64{0.2, 0.05} {
				pts := g.Gen(13, n)
				res, err := Upper3D(pts, eps, nil, rng.New(42))
				if err != nil {
					t.Fatalf("%s/n=%d/eps=%g: %v", g.Name, n, eps, err)
				}
				if err := Check3D(pts, res); err != nil {
					t.Fatalf("%s/n=%d/eps=%g: certificate: %v", g.Name, n, eps, err)
				}
				if !res.Met() {
					t.Fatalf("%s/n=%d/eps=%g: Eps %g > Tol %g after %d rounds",
						g.Name, n, eps, res.Eps, res.Tol, res.Rounds)
				}
				onInput := make(map[geom.Point3]bool, len(pts))
				for _, p := range pts {
					onInput[p] = true
				}
				for _, c := range res.Facets {
					if !onInput[c.A] || !onInput[c.B] || !onInput[c.C] {
						t.Fatalf("%s/n=%d: cap %+v uses non-input points", g.Name, n, c)
					}
				}
			}
		}
	}
}

// TestUpper3DUnderNoise: the 3-d tier under modeled noise.
func TestUpper3DUnderNoise(t *testing.T) {
	for _, p := range []float64{0.1, 0.2} {
		o := &geom.NoisyOracle{Flip: flipSource(99, p), Votes: geom.VotesFor(p, 1e-9)}
		pts := workload.Gens3D[0].Gen(7, 256)
		res, err := Upper3D(pts, 0.05, o, rng.New(1))
		if err != nil {
			t.Fatalf("p=%g: %v", p, err)
		}
		if err := Check3D(pts, res); err != nil {
			t.Fatalf("p=%g: certificate: %v", p, err)
		}
		if !res.Met() {
			t.Fatalf("p=%g: Eps %g > Tol %g", p, res.Eps, res.Tol)
		}
	}
}

// TestDeterministic: same inputs and seeds, same outputs.
func TestDeterministic(t *testing.T) {
	pts := workload.Gens2D[0].Gen(21, 300)
	a, _ := Upper2D(pts, 0.05, nil)
	b, _ := Upper2D(pts, 0.05, nil)
	if len(a.Chain) != len(b.Chain) || a.Eps != b.Eps {
		t.Fatal("Upper2D not deterministic")
	}
	p3 := workload.Gens3D[0].Gen(21, 128)
	c, _ := Upper3D(p3, 0.05, nil, rng.New(9))
	d, _ := Upper3D(p3, 0.05, nil, rng.New(9))
	if len(c.Facets) != len(d.Facets) || c.Eps != d.Eps {
		t.Fatal("Upper3D not deterministic")
	}
}
