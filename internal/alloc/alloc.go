// Package alloc implements the §5 processor-allocation analysis (Lemma 7,
// Matias–Vishkin): a program written for n virtual processors, with work w
// and time t, runs on p real processors in
//
//	T = t + w/p + t_c·log t
//
// time, where t_c is the per-reallocation scheduling cost. Given the
// per-step live-processor profile recorded by a pram.Machine created
// WithProfile, SimulatedTime computes the simulated schedule length
// exactly: each step of w_s live processors costs ⌈w_s/p⌉ rounds (Brent),
// plus the Matias–Vishkin reallocation term.
package alloc

import "math"

// DefaultTc is the default per-reallocation cost constant t_c.
const DefaultTc = 1

// SimulatedTime returns the number of rounds a p-processor machine needs
// to execute a program with the given per-step live-processor profile,
// including the t_c·log t reallocation overhead of Lemma 7.
func SimulatedTime(profile []int64, p int, tc int64) int64 {
	if p < 1 {
		p = 1
	}
	var total int64
	for _, live := range profile {
		if live <= 0 {
			total++
			continue
		}
		total += (live + int64(p) - 1) / int64(p)
	}
	t := int64(len(profile))
	if t > 0 {
		total += tc * int64(math.Ceil(math.Log2(float64(t)+1)))
	}
	return total
}

// Bounds returns the Lemma 7 prediction T = t + w/p + t_c·log t for the
// profile's aggregate t and w — the curve the measured schedule is compared
// against in experiment E10.
func Bounds(profile []int64, p int, tc int64) int64 {
	var w int64
	for _, live := range profile {
		w += live
	}
	t := int64(len(profile))
	pred := t + (w+int64(p)-1)/int64(p)
	if t > 0 {
		pred += tc * int64(math.Ceil(math.Log2(float64(t)+1)))
	}
	return pred
}

// Work returns the total work of a profile.
func Work(profile []int64) int64 {
	var w int64
	for _, live := range profile {
		w += live
	}
	return w
}

// Speedup returns T(1)/T(p) for the profile: the strong-scaling curve.
func Speedup(profile []int64, p int, tc int64) float64 {
	t1 := SimulatedTime(profile, 1, tc)
	tp := SimulatedTime(profile, p, tc)
	if tp == 0 {
		return 0
	}
	return float64(t1) / float64(tp)
}
