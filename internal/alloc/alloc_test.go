package alloc_test

import (
	"testing"
	"testing/quick"

	"inplacehull/internal/alloc"

	"inplacehull/internal/pram"
	"inplacehull/internal/rng"
	"inplacehull/internal/unsorted"
	"inplacehull/internal/workload"
)

func TestSimulatedTimeExtremes(t *testing.T) {
	profile := []int64{10, 20, 30}
	// p = 1: T = w + overhead.
	if got := alloc.SimulatedTime(profile, 1, 0); got != 60 {
		t.Fatalf("T(1) = %d, want 60", got)
	}
	// p huge: T = t + overhead.
	if got := alloc.SimulatedTime(profile, 1<<30, 0); got != 3 {
		t.Fatalf("T(∞) = %d, want 3", got)
	}
}

func TestSimulatedTimeBrentBound(t *testing.T) {
	if err := quick.Check(func(seed uint64, pRaw uint8) bool {
		s := rng.New(seed)
		p := int(pRaw)%64 + 1
		profile := make([]int64, s.Intn(50)+1)
		var w int64
		for i := range profile {
			profile[i] = int64(s.Intn(1000))
			w += profile[i]
		}
		tt := int64(len(profile))
		got := alloc.SimulatedTime(profile, p, 0)
		// Brent: t ≤ T ≤ t + w/p.
		return got >= tt && got <= tt+w/int64(p)+tt
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSimulatedTimeMonotoneInP(t *testing.T) {
	profile := []int64{100, 1, 1000, 50, 7}
	prev := alloc.SimulatedTime(profile, 1, alloc.DefaultTc)
	for p := 2; p <= 256; p *= 2 {
		cur := alloc.SimulatedTime(profile, p, alloc.DefaultTc)
		if cur > prev {
			t.Fatalf("T(%d) = %d > T(%d) = %d", p, cur, p/2, prev)
		}
		prev = cur
	}
}

func TestProfileFromRealRun(t *testing.T) {
	// Record a real hull run's profile and verify Lemma 7's shape: the
	// measured schedule is within the t + w/p + tc·log t prediction.
	pts := workload.Disk(3, 2000)
	m := pram.New(pram.WithProfile())
	if _, err := unsorted.Hull2D(m, rng.New(3), pts); err != nil {
		t.Fatal(err)
	}
	profile := m.Profile()
	if len(profile) == 0 {
		t.Fatal("no profile recorded")
	}
	var w int64
	for _, v := range profile {
		w += v
	}
	if w != m.Work() {
		t.Fatalf("profile work %d != machine work %d", w, m.Work())
	}
	if int64(len(profile)) != m.Time() {
		t.Fatalf("profile length %d != machine time %d", len(profile), m.Time())
	}
	for _, p := range []int{1, 4, 16, 64, 256} {
		got := alloc.SimulatedTime(profile, p, alloc.DefaultTc)
		bound := alloc.Bounds(profile, p, alloc.DefaultTc)
		if got > bound {
			t.Fatalf("p=%d: simulated %d exceeds Lemma 7 bound %d", p, got, bound)
		}
	}
}

func TestSpeedupSaturates(t *testing.T) {
	pts := workload.Disk(5, 4000)
	m := pram.New(pram.WithProfile())
	if _, err := unsorted.Hull2D(m, rng.New(5), pts); err != nil {
		t.Fatal(err)
	}
	profile := m.Profile()
	s16 := alloc.Speedup(profile, 16, alloc.DefaultTc)
	s1 := alloc.Speedup(profile, 1, alloc.DefaultTc)
	if s1 != 1 {
		t.Fatalf("speedup at p=1 is %v", s1)
	}
	if s16 < 4 {
		t.Fatalf("speedup at p=16 only %.2f", s16)
	}
	// Beyond the parallelism of the program, speedup must flatten: the
	// ratio of consecutive doublings approaches 1.
	sHuge := alloc.Speedup(profile, 1<<20, alloc.DefaultTc)
	sHuge2 := alloc.Speedup(profile, 1<<21, alloc.DefaultTc)
	if sHuge2 > sHuge*1.01 {
		t.Fatalf("speedup still growing at saturation: %.2f → %.2f", sHuge, sHuge2)
	}
}

func TestWork(t *testing.T) {
	if alloc.Work([]int64{1, 2, 3}) != 6 {
		t.Fatal("Work sum")
	}
	if alloc.Work(nil) != 0 {
		t.Fatal("Work of empty profile")
	}
}
