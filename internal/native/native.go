// Package native is the direct execution backend: the same canonical hull
// answers as the counted PRAM engine, computed at host speed. Where the
// simulator charges every step and processor activation — E17 priced that
// accounting at ~1.1µs per step even on the pooled engine — this package
// runs plain divide-and-conquer Go over a flat structure-of-arrays point
// layout: no step barriers, no work counters, parallelism via the shared
// binary-forking token pool (internal/fork).
//
// The output contract is deliberately the counted backend's canonical
// form. In 2-d the vertex chain and edge list are bit-identical to
// hull2d.UpperHull (the library-wide oracle the counted algorithms also
// canonicalize to); EdgeOf assigns each point the first edge whose x-span
// covers it — the same left-incident rule the resilient ladder uses, which
// can differ from a counted run only at chain-vertex abscissas where two
// edges meet (the parity suite in the root package pins exactly this
// tolerance). In 3-d the cap structure comes from the sequential
// incremental hull, checked against the CheckCaps3D oracle before it is
// returned — the same recipe as the supervisor's sequential rung.
//
// Observability: callers may pass a pram.Sink. The native path has no
// counted work to report, so it emits wall-time spans (native-sort,
// native-chain, native-locate, native-caps) and charges item counts with
// steps == 0 — the Charge(0, w) shape the obs layer must (and does)
// attribute without inventing a phantom step bucket.
package native

import (
	"sort"

	"inplacehull/internal/fork"
	"inplacehull/internal/geom"
	"inplacehull/internal/hullerr"
	"inplacehull/internal/pram"
	"inplacehull/internal/presorted"
	"inplacehull/internal/unsorted"
)

// Fork grains: below these sizes the recursion runs inline. Chosen so a
// leaf is a few microseconds of work — large enough to amortize a
// goroutine handoff, small enough to keep all cores fed at serving sizes.
const (
	sortGrain   = 4096
	chainGrain  = 8192
	locateGrain = 4096
)

// sink wraps an optional pram.Sink with nil-safe span/charge emission.
// Spans carry zero Snapshots (there are no machine counters to attach);
// charges carry steps == 0 and the item count as work.
type sink struct{ s pram.Sink }

func (o sink) span(name string) func() {
	if o.s == nil {
		return func() {}
	}
	o.s.SpanOpenEvent(name, pram.Snapshot{})
	return func() { o.s.SpanCloseEvent(name, pram.Snapshot{}) }
}

func (o sink) charge(items int) {
	if o.s != nil && items > 0 {
		o.s.ChargeEvent(0, int64(items))
	}
}

// soa is the flat structure-of-arrays layout the chain scan and point
// location run over: two dense float64 slabs instead of an array of
// structs, so a scan touches one stream per coordinate.
type soa struct{ xs, ys []float64 }

func soaOf(pts []geom.Point) soa {
	s := soa{xs: make([]float64, len(pts)), ys: make([]float64, len(pts))}
	fork.For(len(pts), sortGrain, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			s.xs[i] = pts[i].X
			s.ys[i] = pts[i].Y
		}
	})
	return s
}

func (s soa) point(i int) geom.Point { return geom.Point{X: s.xs[i], Y: s.ys[i]} }

// Upper2D computes the canonical strict upper hull of unsorted points:
// sort, dedupe, divide-and-conquer monotone chain, point location. The
// Chain/Edges output is bit-identical to hull2d.UpperHull; EdgeOf uses the
// left-incident covering rule (see the package comment). obs may be nil.
func Upper2D(pts []geom.Point, obs pram.Sink) (unsorted.Result2D, error) {
	const op = "native.Upper2D"
	if err := hullerr.CheckFinite2D(op, pts); err != nil {
		return unsorted.Result2D{}, err
	}
	o := sink{obs}
	endSort := o.span("native-sort")
	s := sortedUnique(pts)
	o.charge(len(pts))
	endSort()

	endChain := o.span("native-chain")
	chain := upperOfSorted(s)
	o.charge(len(s.xs))
	endChain()

	res := unsorted.Result2D{Chain: chain}
	for i := 1; i < len(chain); i++ {
		res.Edges = append(res.Edges, geom.Edge{U: chain[i-1], W: chain[i]})
	}
	endLoc := o.span("native-locate")
	res.EdgeOf = Locate(pts, res.Edges)
	o.charge(len(pts))
	endLoc()
	return res, nil
}

// Chain2D computes only the canonical strict upper chain of unsorted
// points — Upper2D without the edge list and point location. The
// streaming subsystem's full-rebuild fallback uses it: a rebuild needs
// the chain to splice into the maintained dataset, and derives edges and
// EdgeOf lazily only when a query asks. Bit-identical to
// hull2d.UpperHull. obs may be nil.
func Chain2D(pts []geom.Point, obs pram.Sink) ([]geom.Point, error) {
	const op = "native.Chain2D"
	if err := hullerr.CheckFinite2D(op, pts); err != nil {
		return nil, err
	}
	o := sink{obs}
	endSort := o.span("native-sort")
	s := sortedUnique(pts)
	o.charge(len(pts))
	endSort()

	endChain := o.span("native-chain")
	chain := upperOfSorted(s)
	o.charge(len(s.xs))
	endChain()
	return chain, nil
}

// Presorted computes the canonical upper hull of points already sorted by
// strictly increasing x — the §2 input contract, enforced with the same
// typed UnsortedInput error as the counted algorithms. obs may be nil.
func Presorted(pts []geom.Point, obs pram.Sink) (presorted.Result, error) {
	const op = "native.Presorted"
	if err := hullerr.CheckFinite2D(op, pts); err != nil {
		return presorted.Result{}, err
	}
	for i := 1; i < len(pts); i++ {
		if pts[i-1].X >= pts[i].X {
			return presorted.Result{}, hullerr.New(hullerr.UnsortedInput, op,
				"input not strictly x-sorted at %d", i)
		}
	}
	o := sink{obs}
	endChain := o.span("native-chain")
	chain := upperOfSorted(soaOf(pts))
	o.charge(len(pts))
	endChain()

	res := presorted.Result{Chain: chain}
	for i := 1; i < len(chain); i++ {
		res.Edges = append(res.Edges, geom.Edge{U: chain[i-1], W: chain[i]})
	}
	endLoc := o.span("native-locate")
	res.EdgeOf = Locate(pts, res.Edges)
	o.charge(len(pts))
	endLoc()
	return res, nil
}

// sortedUnique returns the SoA view of pts sorted lexicographically with
// exact duplicates removed: parallel merge sort on a copy, sequential
// dedupe sweep, then the SoA split.
func sortedUnique(pts []geom.Point) soa {
	s := make([]geom.Point, len(pts))
	copy(s, pts)
	buf := make([]geom.Point, len(s))
	mergeSort(s, buf)
	out := s[:0]
	for i, p := range s {
		if i == 0 || p != s[i-1] {
			out = append(out, p)
		}
	}
	return soaOf(out)
}

// mergeSort sorts s lexicographically using buf as scratch, forking the
// halves through the binary pool.
func mergeSort(s, buf []geom.Point) {
	if len(s) <= sortGrain {
		sort.Slice(s, func(i, j int) bool { return geom.LexLess(s[i], s[j]) })
		return
	}
	mid := len(s) / 2
	fork.Parallel2(
		func() { mergeSort(s[:mid], buf[:mid]) },
		func() { mergeSort(s[mid:], buf[mid:]) },
	)
	copy(buf, s)
	merge(buf[:mid], buf[mid:], s)
}

func merge(a, b, out []geom.Point) {
	i, j, k := 0, 0, 0
	for i < len(a) && j < len(b) {
		if geom.LexLess(b[j], a[i]) {
			out[k] = b[j]
			j++
		} else {
			out[k] = a[i]
			i++
		}
		k++
	}
	copy(out[k:], a[i:])
	copy(out[k+len(a)-i:], b[j:])
}

// upperOfSorted computes the canonical strict upper chain of the sorted,
// duplicate-free SoA: divide-and-conquer block scans whose candidate
// chains merge by rescanning — the monotone scan is confluent once the
// candidate set contains every hull vertex, so the result is identical to
// one flat scan (hull2d.rawUpper) — then the vertical-end dedupe that
// makes the chain strictly x-increasing.
func upperOfSorted(s soa) []geom.Point {
	n := len(s.xs)
	if n == 0 {
		return nil
	}
	idx := chainDC(s, 0, n)
	idx = dedupeVerticalEnds(s, idx)
	chain := make([]geom.Point, len(idx))
	for i, id := range idx {
		chain[i] = s.point(id)
	}
	return chain
}

// chainDC returns the raw monotone-scan chain of s[lo:hi] as indices.
func chainDC(s soa, lo, hi int) []int {
	if hi-lo <= chainGrain {
		return scanRange(s, lo, hi)
	}
	mid := lo + (hi-lo)/2
	var left, right []int
	fork.Parallel2(
		func() { left = chainDC(s, lo, mid) },
		func() { right = chainDC(s, mid, hi) },
	)
	return rescan(s, left, right)
}

// scanRange is the monotone-chain scan over a contiguous index range,
// popping on non-right turns — the same robust Orientation predicate and
// pop rule as hull2d.rawUpper, so pop decisions match the oracle exactly.
func scanRange(s soa, lo, hi int) []int {
	h := make([]int, 0, hi-lo)
	for i := lo; i < hi; i++ {
		for len(h) >= 2 && geom.Orientation(s.point(h[len(h)-2]), s.point(h[len(h)-1]), s.point(i)) >= 0 {
			h = h[:len(h)-1]
		}
		h = append(h, i)
	}
	return h
}

// rescan merges two adjacent candidate chains with the same scan. Every
// hull vertex of the union survives its own block's scan, so scanning the
// concatenation reproduces the flat scan's chain.
func rescan(s soa, left, right []int) []int {
	h := left
	for _, i := range right {
		for len(h) >= 2 && geom.Orientation(s.point(h[len(h)-2]), s.point(h[len(h)-1]), s.point(i)) >= 0 {
			h = h[:len(h)-1]
		}
		h = append(h, i)
	}
	return h
}

// dedupeVerticalEnds collapses a leading or trailing vertical step the raw
// scan retains when several points share an extreme x (hull2d's rule,
// applied to indices).
func dedupeVerticalEnds(s soa, h []int) []int {
	for len(h) >= 2 && s.xs[h[0]] == s.xs[h[1]] {
		if s.ys[h[0]] < s.ys[h[1]] {
			h = h[1:]
		} else {
			h = append(h[:1], h[2:]...)
		}
	}
	for len(h) >= 2 && s.xs[h[len(h)-1]] == s.xs[h[len(h)-2]] {
		if s.ys[h[len(h)-1]] < s.ys[h[len(h)-2]] {
			h = h[:len(h)-1]
		} else {
			h = append(h[:len(h)-2], h[len(h)-1])
		}
	}
	return h
}

// Locate fills EdgeOf: for every input point (duplicates included, in
// input order) the first edge whose x-span covers it, by parallel binary
// search over the x-sorted edge list; −1 where no edge spans the abscissa
// (empty, singleton, single-column inputs). Exported so the serve layer
// can rebuild a full-input EdgeOf after admission-side culling shrank the
// set the backend actually ran on.
func Locate(pts []geom.Point, edges []geom.Edge) []int {
	out := make([]int, len(pts))
	fork.For(len(pts), locateGrain, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			out[i] = coveringEdge(edges, pts[i].X)
		}
	})
	return out
}

// coveringEdge is the left-incident covering rule: the first edge with
// W.X ≥ x, if its span covers x.
func coveringEdge(list []geom.Edge, x float64) int {
	lo, hi := 0, len(list)
	for lo < hi {
		mid := (lo + hi) / 2
		if list[mid].W.X < x {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(list) && list[lo].Covers(x) {
		return lo
	}
	return -1
}
