package native

import (
	"inplacehull/internal/fork"
	"inplacehull/internal/geom"
	"inplacehull/internal/hull3d"
	"inplacehull/internal/hullerr"
	"inplacehull/internal/lp"
	"inplacehull/internal/pram"
	"inplacehull/internal/rng"
	"inplacehull/internal/unsorted"
)

// Hull3D computes the Result3D cap structure directly: the sequential
// randomized incremental hull (expected O(n log n), deterministic given
// seed) lifted into upper-face caps, falling back to the degenerate
// global-top cap for inputs the incremental builder rejects (fewer than
// four points, all collinear/coplanar) — the same recipe as the resilient
// supervisor's sequential rung. The assembled result is checked against
// the CheckCaps3D oracle before it is returned, so the backend keeps the
// library's "a correct hull or a typed error" contract without a
// simulator in the loop. obs may be nil.
func Hull3D(seed uint64, pts []geom.Point3, obs pram.Sink) (unsorted.Result3D, error) {
	return Hull3DFrom(seed, pts, pts, obs)
}

// Hull3DFrom computes the Result3D cap structure for full while running
// the incremental hull only over culled — the serve layer's post-culling
// entry point. culled must satisfy conv(culled) == conv(full) (the
// internal/cull invariant); the cap assignment (capsFromHull), the oracle
// gate (CheckCaps3D) and the degenerate fallback all run over the FULL
// point set, so FacetOf keeps input length and every point's cap is a
// genuine upper facet above it. The GEOMETRIC hull is identical to a
// full-input run; the facet decomposition need not be bit-identical —
// insertion order differs, so coplanar upper faces may triangulate
// differently and tie-broken FaceAbove picks may move, the same
// seed-dependence the 3-d parity suite already tolerates. Correctness is
// what CheckCaps3D proves, over the full input. obs may be nil.
func Hull3DFrom(seed uint64, full, culled []geom.Point3, obs pram.Sink) (unsorted.Result3D, error) {
	const op = "native.Hull3DFrom"
	if err := hullerr.CheckFinite3D(op, full); err != nil {
		return unsorted.Result3D{}, err
	}
	n := len(full)
	res := unsorted.Result3D{FacetOf: make([]int, n)}
	if n == 0 {
		return res, nil
	}
	o := sink{obs}
	endCaps := o.span("native-caps")
	defer endCaps()
	if h, err := hull3d.Incremental(rng.New(seed), culled); err == nil {
		res = capsFromHull(full, h)
		if err := unsorted.CheckCaps3D(full, res); err == nil {
			o.charge(n)
			return res, nil
		}
		res = unsorted.Result3D{FacetOf: make([]int, n)}
	}
	// Degenerate rung: every point receives the horizontal cap through the
	// global top point (no point lies above z = max z).
	res.Facets = []lp.Solution3D{topCap(full)}
	for p := range res.FacetOf {
		res.FacetOf[p] = 0
	}
	if err := unsorted.CheckCaps3D(full, res); err != nil {
		return unsorted.Result3D{}, hullerr.New(hullerr.Internal, op,
			"degenerate cap construction failed the oracle for %d points: %v", n, err)
	}
	o.charge(n)
	return res, nil
}

// capsFromHull lifts a full 3-d hull into the Result3D cap contract: the
// upper faces a point actually uses become its cap; points whose
// xy-location falls on a shadow-boundary fp-sliver (FaceAbove −1) get the
// degenerate global-top cap. FaceAbove lookups run in parallel over the
// points; slot assignment stays a sequential sweep so the facet order is
// deterministic (first-use order, independent of scheduling).
func capsFromHull(pts []geom.Point3, h hull3d.Hull) unsorted.Result3D {
	res := unsorted.Result3D{FacetOf: make([]int, len(pts))}
	upper := h.UpperFaces()
	above := make([]int, len(pts))
	fork.For(len(pts), locateGrain, func(lo, hi int) {
		for p := lo; p < hi; p++ {
			above[p] = hull3d.FaceAbove(h.Pts, upper, pts[p].X, pts[p].Y)
		}
	})
	facetSlot := make(map[int]int) // upper-face index → slot in res.Facets
	degenerateSlot := -1
	for p := range pts {
		fi := above[p]
		if fi < 0 {
			if degenerateSlot < 0 {
				res.Facets = append(res.Facets, topCap(pts))
				degenerateSlot = len(res.Facets) - 1
			}
			res.FacetOf[p] = degenerateSlot
			continue
		}
		slot, ok := facetSlot[fi]
		if !ok {
			f := upper[fi]
			res.Facets = append(res.Facets, lp.Solution3D{A: h.Pts[f.A], B: h.Pts[f.B], C: h.Pts[f.C]})
			slot = len(res.Facets) - 1
			facetSlot[fi] = slot
		}
		res.FacetOf[p] = slot
	}
	return res
}

// topCap is the degenerate cap at the point of maximum z.
func topCap(pts []geom.Point3) lp.Solution3D {
	top := pts[0]
	for _, p := range pts {
		if p.Z > top.Z {
			top = p
		}
	}
	return lp.Solution3D{A: top, B: top, C: top}
}
