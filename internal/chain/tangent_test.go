package chain

import (
	"testing"

	"inplacehull/internal/geom"
	"inplacehull/internal/pram"
)

// Degenerate-input coverage for the common-tangent primitives — the merge
// step of the sharded scatter-gather layer feeds them chains that real
// split plans produce: single-point chains, collinear chains (a shard
// whose points all lie on one line), and shards whose interior holds
// duplicate x-coordinates (collapsed to one vertex per abscissa by the
// hull, but stressing the split/strictness contract around them).

// tangentOK verifies (i, j) is a genuine common tangent of a and b: every
// vertex of both chains lies on or below line(a.V[i], b.V[j]).
func tangentOK(t *testing.T, a, b Chain, i, j int) {
	t.Helper()
	if i < 0 || i >= len(a.V) || j < 0 || j >= len(b.V) {
		t.Fatalf("tangent indices (%d, %d) out of range (|a|=%d, |b|=%d)", i, j, len(a.V), len(b.V))
	}
	u, w := a.V[i], b.V[j]
	for k, v := range a.V {
		if geom.AboveLine(v, u, w) {
			t.Fatalf("a.V[%d]=%v above tangent (%d,%d) = %v–%v", k, v, i, j, u, w)
		}
	}
	for k, v := range b.V {
		if geom.AboveLine(v, u, w) {
			t.Fatalf("b.V[%d]=%v above tangent (%d,%d) = %v–%v", k, v, i, j, u, w)
		}
	}
}

// degenerateTangentCases enumerates x-disjoint chain pairs built from
// degenerate shard shapes.
func degenerateTangentCases() []struct {
	name string
	a, b Chain
} {
	pt := func(x, y float64) geom.Point { return geom.Point{X: x, Y: y} }
	return []struct {
		name string
		a, b Chain
	}{
		{"single-vs-single", Chain{V: []geom.Point{pt(0, 0)}}, Chain{V: []geom.Point{pt(1, 1)}}},
		{"single-vs-chain", Chain{V: []geom.Point{pt(-1, 5)}},
			Chain{V: []geom.Point{pt(0, 0), pt(1, 3), pt(2, 4), pt(3, 3)}}},
		{"chain-vs-single", Chain{V: []geom.Point{pt(0, 0), pt(1, 3), pt(2, 4)}},
			Chain{V: []geom.Point{pt(5, -2)}}},
		// Collinear shards collapse to 2-vertex chains (strict hulls keep
		// only the endpoints); the tangent must still bridge them.
		{"collinear-vs-collinear-same-line", Chain{V: []geom.Point{pt(0, 0), pt(2, 2)}},
			Chain{V: []geom.Point{pt(3, 3), pt(5, 5)}}},
		{"collinear-vs-collinear-crossing-slopes", Chain{V: []geom.Point{pt(0, 0), pt(2, 4)}},
			Chain{V: []geom.Point{pt(3, 4), pt(5, 0)}}},
		{"collinear-vs-convex", Chain{V: []geom.Point{pt(0, 0), pt(3, 0)}},
			Chain{V: []geom.Point{pt(4, 0), pt(5, 2), pt(6, 0)}}},
		{"horizontal-vs-horizontal", Chain{V: []geom.Point{pt(0, 1), pt(1, 1)}},
			Chain{V: []geom.Point{pt(2, 1), pt(3, 1)}}},
		// Duplicate x-coordinates inside each shard: strict hulls keep one
		// vertex per abscissa, so these chains come from columns {0,0.5,1}
		// and {2,2.5,3} with two points per column.
		{"from-duplicate-x-columns",
			FromSorted([]geom.Point{pt(0, 0), pt(0, 2), pt(0.5, 1), pt(0.5, 3), pt(1, 0), pt(1, 2)}),
			FromSorted([]geom.Point{pt(2, 0), pt(2, 1), pt(2.5, 0), pt(2.5, 2), pt(3, 0), pt(3, 1)})},
		{"two-vs-two-steep", Chain{V: []geom.Point{pt(0, 10), pt(1, 0)}},
			Chain{V: []geom.Point{pt(2, 0), pt(3, 10)}}},
	}
}

func TestCommonTangentSeqDegenerate(t *testing.T) {
	for _, tc := range degenerateTangentCases() {
		t.Run(tc.name, func(t *testing.T) {
			if !tc.a.Validate() || !tc.b.Validate() {
				t.Fatal("test case chains must satisfy the strict upper-hull invariants")
			}
			i, j := CommonTangentSeq(tc.a, tc.b)
			tangentOK(t, tc.a, tc.b, i, j)
		})
	}
}

func TestCommonTangentBruteDegenerate(t *testing.T) {
	m := pram.New(pram.WithWorkers(1))
	for _, tc := range degenerateTangentCases() {
		t.Run(tc.name, func(t *testing.T) {
			i, j := CommonTangent(m, tc.a, tc.b)
			tangentOK(t, tc.a, tc.b, i, j)
			// The brute variant prefers the widest tangent; the sequential
			// variant may pick any collinear-equivalent support pair, but
			// the tangent LINE must dominate both chains either way
			// (checked above for both). Cross-check the supports are
			// mutually consistent: the seq pair also supports the brute
			// line and vice versa.
			si, sj := CommonTangentSeq(tc.a, tc.b)
			bu, bw := tc.a.V[i], tc.b.V[j]
			if geom.AboveLine(tc.a.V[si], bu, bw) || geom.AboveLine(tc.b.V[sj], bu, bw) {
				t.Fatalf("seq support (%d,%d) above brute tangent (%d,%d)", si, sj, i, j)
			}
		})
	}
}

func TestCommonTangentSeqEmptyChains(t *testing.T) {
	full := Chain{V: []geom.Point{{X: 0, Y: 0}, {X: 1, Y: 1}}}
	for _, tc := range []struct{ a, b Chain }{
		{Chain{}, full}, {full, Chain{}}, {Chain{}, Chain{}},
	} {
		if i, j := CommonTangentSeq(tc.a, tc.b); i != -1 || j != -1 {
			t.Fatalf("empty chain tangent = (%d, %d), want (-1, -1)", i, j)
		}
	}
}

// TestTangentMergeDegenerateUnions merges degenerate chain pairs the way
// the shard coordinator does (tangent splice + strict re-scan) and checks
// the result against the monotone-chain reference over the union.
func TestTangentMergeDegenerateUnions(t *testing.T) {
	for _, tc := range degenerateTangentCases() {
		t.Run(tc.name, func(t *testing.T) {
			i, j := CommonTangentSeq(tc.a, tc.b)
			spliced := append(append([]geom.Point(nil), tc.a.V[:i+1]...), tc.b.V[j:]...)
			got := FromSorted(spliced)

			union := append(append([]geom.Point(nil), tc.a.V...), tc.b.V...)
			want := FromSorted(union)
			if len(got.V) != len(want.V) {
				t.Fatalf("merged hull has %d vertices, want %d (%v vs %v)", len(got.V), len(want.V), got.V, want.V)
			}
			for k := range want.V {
				if got.V[k] != want.V[k] {
					t.Fatalf("merged vertex %d = %v, want %v", k, got.V[k], want.V[k])
				}
			}
			if !got.Validate() {
				t.Fatal("merged chain violates the strict upper-hull invariants")
			}
		})
	}
}
