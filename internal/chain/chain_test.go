package chain

import (
	"testing"
	"testing/quick"

	"inplacehull/internal/geom"
	"inplacehull/internal/hull2d"
	"inplacehull/internal/pram"
	"inplacehull/internal/rng"
	"inplacehull/internal/workload"
)

func mkChain(seed uint64, n int, gen func(uint64, int) []geom.Point) Chain {
	pts := gen(seed, n)
	return Chain{V: hull2d.UpperHull(pts)}
}

func TestFromSortedMatchesReference(t *testing.T) {
	for seed := uint64(1); seed <= 5; seed++ {
		pts := workload.Sorted(workload.Disk(seed, 500))
		c := FromSorted(pts)
		want := hull2d.UpperHull(pts)
		if len(c.V) != len(want) {
			t.Fatalf("length %d != %d", len(c.V), len(want))
		}
		for i := range want {
			if c.V[i] != want[i] {
				t.Fatalf("vertex %d differs", i)
			}
		}
		if !c.Validate() {
			t.Fatal("invalid chain")
		}
	}
}

func TestHeightAt(t *testing.T) {
	c := Chain{V: []geom.Point{{X: 0, Y: 0}, {X: 2, Y: 2}, {X: 4, Y: 0}}}
	for _, tc := range []struct {
		x    float64
		want float64
		ok   bool
	}{{0, 0, true}, {1, 1, true}, {2, 2, true}, {3, 1, true}, {4, 0, true}, {-1, 0, false}, {5, 0, false}} {
		got, ok := c.HeightAt(tc.x)
		if ok != tc.ok || (ok && got != tc.want) {
			t.Fatalf("HeightAt(%v) = %v,%v want %v,%v", tc.x, got, ok, tc.want, tc.ok)
		}
	}
}

func TestPointBelow(t *testing.T) {
	c := Chain{V: []geom.Point{{X: 0, Y: 0}, {X: 2, Y: 2}, {X: 4, Y: 0}}}
	if !c.PointBelow(geom.Point{X: 1, Y: 0.5}) {
		t.Fatal("below point rejected")
	}
	if !c.PointBelow(geom.Point{X: 1, Y: 1}) {
		t.Fatal("on-chain point rejected")
	}
	if c.PointBelow(geom.Point{X: 1, Y: 1.5}) {
		t.Fatal("above point accepted")
	}
	if c.PointBelow(geom.Point{X: 5, Y: -10}) {
		t.Fatal("out-of-range point accepted")
	}
}

func TestExtremeInDirMatchesBrute(t *testing.T) {
	m := pram.New()
	for seed := uint64(1); seed <= 8; seed++ {
		c := mkChain(seed, 300, workload.Circle)
		u := geom.Point{X: -3, Y: float64(seed) - 4}
		w := geom.Point{X: 3, Y: 4 - float64(seed)}
		i1 := c.ExtremeInDir(u, w)
		i2 := c.ExtremeInDirBrute(m, u, w)
		// Both must be maximal in direction; equal offset allowed.
		if geom.DirCmp(c.V[i1], c.V[i2], u, w) != 0 {
			t.Fatalf("seed %d: extreme %d (%v) vs brute %d (%v)", seed, i1, c.V[i1], i2, c.V[i2])
		}
		for _, v := range c.V {
			if geom.DirCmp(v, c.V[i1], u, w) > 0 {
				t.Fatalf("seed %d: vertex %v beats claimed extreme %v", seed, v, c.V[i1])
			}
		}
	}
}

func TestTangentFromPoint(t *testing.T) {
	for seed := uint64(1); seed <= 6; seed++ {
		c := mkChain(seed, 200, workload.Disk)
		for _, p := range []geom.Point{{X: c.Left().X - 2, Y: 0.3}, {X: c.Right().X + 2, Y: -0.1}} {
			i := c.TangentFromPoint(p)
			if i < 0 {
				t.Fatal("no tangent")
			}
			for _, v := range c.V {
				if geom.AboveLine(v, p, c.V[i]) {
					t.Fatalf("seed %d: vertex %v above tangent line through %v-%v", seed, v, p, c.V[i])
				}
			}
			m := pram.New()
			j := c.TangentFromPointBrute(m, p)
			if geom.Orientation(p, c.V[i], c.V[j]) != 0 {
				t.Fatalf("seed %d: seq tangent %v != brute tangent %v", seed, c.V[i], c.V[j])
			}
		}
	}
}

func TestCommonTangent(t *testing.T) {
	m := pram.New()
	for seed := uint64(1); seed <= 8; seed++ {
		s := rng.New(seed)
		// Two disks side by side.
		mk := func(cx float64) Chain {
			pts := make([]geom.Point, 150)
			for i := range pts {
				pts[i] = geom.Point{X: cx + s.NormFloat64()*0.3, Y: s.NormFloat64() * 0.5}
			}
			return Chain{V: hull2d.UpperHull(pts)}
		}
		a, b := mk(-2), mk(2)
		if a.Right().X >= b.Left().X {
			continue // overlapping x-ranges: precondition violated; skip
		}
		i, j := CommonTangent(m, a, b)
		if i < 0 || j < 0 {
			t.Fatalf("seed %d: no tangent found", seed)
		}
		u, w := a.V[i], b.V[j]
		for _, v := range a.V {
			if geom.AboveLine(v, u, w) {
				t.Fatalf("seed %d: a-vertex %v above tangent", seed, v)
			}
		}
		for _, v := range b.V {
			if geom.AboveLine(v, u, w) {
				t.Fatalf("seed %d: b-vertex %v above tangent", seed, v)
			}
		}
		// Sequential variant must find a supporting line too.
		si, sj := CommonTangentSeq(a, b)
		su, sw := a.V[si], b.V[sj]
		for _, v := range append(append([]geom.Point{}, a.V...), b.V...) {
			if geom.AboveLine(v, su, sw) {
				t.Fatalf("seed %d: vertex %v above sequential tangent", seed, v)
			}
		}
	}
}

func TestCommonTangentMergesHulls(t *testing.T) {
	// The tangent of two x-separated hulls merges them into the hull of
	// the union: verify against the reference.
	m := pram.New()
	s := rng.New(42)
	var left, right []geom.Point
	for i := 0; i < 200; i++ {
		left = append(left, geom.Point{X: s.Float64() - 2, Y: s.NormFloat64()})
		right = append(right, geom.Point{X: s.Float64() + 2, Y: s.NormFloat64()})
	}
	a := Chain{V: hull2d.UpperHull(left)}
	b := Chain{V: hull2d.UpperHull(right)}
	i, j := CommonTangent(m, a, b)
	var merged []geom.Point
	merged = append(merged, a.V[:i+1]...)
	merged = append(merged, b.V[j:]...)
	want := hull2d.UpperHull(append(left, right...))
	if len(merged) != len(want) {
		t.Fatalf("merged %d vertices, want %d", len(merged), len(want))
	}
	for k := range want {
		if merged[k] != want[k] {
			t.Fatalf("vertex %d: %v != %v", k, merged[k], want[k])
		}
	}
}

func TestIntersectLine(t *testing.T) {
	c := Chain{V: []geom.Point{{X: 0, Y: 0}, {X: 2, Y: 2}, {X: 4, Y: 0}}}
	// Horizontal line at y=1 crosses twice: on edge 0 and edge 1.
	u, w := geom.Point{X: -1, Y: 1}, geom.Point{X: 5, Y: 1}
	got := c.IntersectLine(u, w)
	if len(got) != 2 || got[0] != 0 || got[1] != 1 {
		t.Fatalf("IntersectLine = %v, want [0 1]", got)
	}
	// Line above the chain: no crossing.
	if got := c.IntersectLine(geom.Point{X: -1, Y: 5}, geom.Point{X: 5, Y: 5}); len(got) != 0 {
		t.Fatalf("line above chain: %v", got)
	}
	// Line below-left cutting only the right slope.
	got = c.IntersectLine(geom.Point{X: 0, Y: 3}, geom.Point{X: 4, Y: -1})
	if len(got) != 1 {
		t.Fatalf("single crossing expected: %v", got)
	}
}

func TestIntersectLineQuick(t *testing.T) {
	if err := quick.Check(func(seed uint64, m1, b1 int8) bool {
		c := mkChain(seed%16+1, 100, workload.Disk)
		u := geom.Point{X: -2, Y: float64(m1) / 40}
		w := geom.Point{X: 2, Y: float64(b1) / 40}
		edges := c.IntersectLine(u, w)
		if len(edges) > 2 {
			return false
		}
		// Verify each reported edge actually straddles the line.
		for _, e := range edges {
			if e < 0 || e+1 >= len(c.V) {
				return false
			}
			aAbove := geom.AboveLine(c.V[e], u, w)
			bAbove := geom.AboveLine(c.V[e+1], u, w)
			if aAbove == bAbove {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestValidateRejectsBadChains(t *testing.T) {
	bad1 := Chain{V: []geom.Point{{X: 0, Y: 0}, {X: 0, Y: 1}}} // equal x
	if bad1.Validate() {
		t.Fatal("equal-x chain validated")
	}
	bad2 := Chain{V: []geom.Point{{X: 0, Y: 0}, {X: 1, Y: 0}, {X: 2, Y: 1}}} // left turn
	if bad2.Validate() {
		t.Fatal("left-turning chain validated")
	}
	good := Chain{V: []geom.Point{{X: 0, Y: 0}, {X: 1, Y: 1}, {X: 2, Y: 0}}}
	if !good.Validate() {
		t.Fatal("good chain rejected")
	}
}
