package chain

import (
	"inplacehull/internal/geom"
	"inplacehull/internal/pram"
)

// TangentFromPoint returns the index of the vertex of c that supports the
// upper tangent from an external point p lying strictly left or right of
// every chain vertex: the vertex t such that every chain vertex is on or
// below the line through p and t. O(log q) by binary search; ties (p
// collinear with a chain edge) resolve toward the vertex farther from p.
func (c Chain) TangentFromPoint(p geom.Point) int {
	n := len(c.V)
	if n == 0 {
		return -1
	}
	if n == 1 {
		return 0
	}
	left := p.X < c.V[0].X
	// For p left of the chain: slope(p, v_i) is strictly unimodal with a
	// maximum at the tangent vertex; for p right of the chain, the tangent
	// maximizes slope in the reversed traversal (minimizes slope(p, v_i)).
	better := func(i, j int) bool { // vertex i strictly better than j
		o := geom.Orientation(p, c.V[j], c.V[i])
		if left {
			if o != 0 {
				return o > 0
			}
			return c.V[i].X > c.V[j].X
		}
		if o != 0 {
			return o < 0
		}
		return c.V[i].X < c.V[j].X
	}
	lo, hi := 0, n-1
	for hi-lo > 2 {
		m1 := lo + (hi-lo)/3
		m2 := hi - (hi-lo)/3
		if better(m2, m1) {
			lo = m1 + 1
		} else {
			hi = m2 - 1
		}
	}
	best := lo
	for i := lo + 1; i <= hi; i++ {
		if better(i, best) {
			best = i
		}
	}
	return best
}

// TangentFromPointBrute is the q²-processor O(1)-step variant: each vertex
// pair eliminates non-tangent candidates; implemented as each vertex
// checking its two neighbors (O(1) per vertex with q processors, since
// local support implies global support on a convex chain).
func (c Chain) TangentFromPointBrute(m *pram.Machine, p geom.Point) int {
	n := len(c.V)
	if n == 0 {
		return -1
	}
	var win pram.MinCell
	win.InitMax()
	m.StepAll(n, func(i int) {
		ok := true
		if i > 0 && geom.AboveLine(c.V[i-1], p, c.V[i]) {
			ok = false
		}
		if i < n-1 && geom.AboveLine(c.V[i+1], p, c.V[i]) {
			ok = false
		}
		if ok {
			win.Write(int64(i))
		}
	})
	return int(win.Get())
}

// CommonTangent returns indices (i, j) such that the line through a.V[i]
// and b.V[j] is the common upper tangent of chains a and b, where every
// vertex of a lies at x < every vertex of b. O(1) steps with |a|·|b|
// processors: each vertex pair checks local support on both chains — the
// point-hull-invariant primitive of Lemma 2.6 ("finding the line defined
// by two points corresponds to finding the common tangent").
func CommonTangent(m *pram.Machine, a, b Chain) (int, int) {
	na, nb := len(a.V), len(b.V)
	if na == 0 || nb == 0 {
		return -1, -1
	}
	var win pram.MinCell
	win.InitMax()
	m.StepAll(na*nb, func(q int) {
		i, j := q/nb, q%nb
		u, w := a.V[i], b.V[j]
		// Local support: neighbors of u on a, and of w on b, must lie on
		// or below line(u, w). On strictly convex chains local support at
		// both endpoints implies global support.
		if i > 0 && geom.AboveLine(a.V[i-1], u, w) {
			return
		}
		if i < na-1 && geom.AboveLine(a.V[i+1], u, w) {
			return
		}
		if j > 0 && geom.AboveLine(b.V[j-1], u, w) {
			return
		}
		if j < nb-1 && geom.AboveLine(b.V[j+1], u, w) {
			return
		}
		// Prefer the widest tangent (smallest i, largest j) among
		// collinear candidates: encode so MinCell picks it.
		win.Write(int64(i)*int64(nb) + int64(nb-1-j))
	})
	enc, _ := win.Get(), true
	if enc == int64(^uint64(0)>>1) {
		return -1, -1
	}
	return int(enc / int64(nb)), nb - 1 - int(enc%int64(nb))
}

// CommonTangentSeq is the sequential common tangent by nested binary
// search: O(log |a| · log |b|).
func CommonTangentSeq(a, b Chain) (int, int) {
	na, nb := len(a.V), len(b.V)
	if na == 0 || nb == 0 {
		return -1, -1
	}
	// Iterate: from the current candidate on a, find the tangent vertex on
	// b, then re-support on a, until fixed point. Each refinement is a
	// binary search; the loop converges in O(log) refinements on convex
	// chains (in practice a handful).
	i, j := na-1, 0
	for iter := 0; iter < 64; iter++ {
		nj := b.TangentFromPoint(a.V[i])
		ni := a.TangentFromPoint(b.V[nj])
		if ni == i && nj == j {
			break
		}
		i, j = ni, nj
	}
	return i, j
}

// IntersectLine returns the at most two x-intervals' boundary indices where
// the chain crosses the line through u, w — the chain analogue of "the
// intersection of a line with an upper hull". It reports the edges (by
// left-endpoint index) on which the chain crosses the line, at most two of
// them, found by O(log q) binary searches around the extreme vertex.
func (c Chain) IntersectLine(u, w geom.Point) []int {
	n := len(c.V)
	if n == 0 {
		return nil
	}
	ext := c.ExtremeInDir(u, w)
	if !geom.AboveLine(c.V[ext], u, w) {
		return nil // whole chain on or below the line: no crossing
	}
	var out []int
	// Left crossing: the chain rises above the line somewhere in
	// [0, ext]; binary search for the first vertex above the line.
	if !geom.AboveLine(c.V[0], u, w) {
		lo, hi := 0, ext
		for lo < hi {
			mid := (lo + hi) / 2
			if geom.AboveLine(c.V[mid], u, w) {
				hi = mid
			} else {
				lo = mid + 1
			}
		}
		out = append(out, lo-1) // crossing on edge (lo−1, lo)
	}
	// Right crossing: first vertex at or after ext that is back on/below.
	if !geom.AboveLine(c.V[n-1], u, w) {
		lo, hi := ext, n-1
		for lo < hi {
			mid := (lo + hi + 1) / 2
			if geom.AboveLine(c.V[mid], u, w) {
				lo = mid
			} else {
				hi = mid - 1
			}
		}
		out = append(out, lo) // crossing on edge (lo, lo+1)
	}
	return out
}

// IntersectChains returns the crossing between two upper-hull chains that
// intersect exactly once, as the pair of edge indices (ia, ib) such that
// edge ia of a crosses edge ib of b — the third point-hull-invariant
// primitive of §2.4 ("finding the intersection of two lines corresponds to
// finding the intersection of two hulls (assuming, of course, that one
// knows there can be only one intersection)"). The chains must overlap in
// x and a must start above b and end below it (or vice versa) within the
// overlap; returns ok = false when no crossing exists in the common
// x-range. O(log |a| · log |b|) by nested binary search on the height
// difference, which is monotone in sign under the single-crossing
// assumption.
func IntersectChains(a, b Chain) (ia, ib int, ok bool) {
	if a.Len() == 0 || b.Len() == 0 {
		return 0, 0, false
	}
	lo := a.Left().X
	if b.Left().X > lo {
		lo = b.Left().X
	}
	hi := a.Right().X
	if b.Right().X < hi {
		hi = b.Right().X
	}
	if lo > hi {
		return 0, 0, false
	}
	diffSign := func(x float64) int {
		ya, _ := a.HeightAt(x)
		yb, _ := b.HeightAt(x)
		switch {
		case ya > yb:
			return 1
		case ya < yb:
			return -1
		default:
			return 0
		}
	}
	sLo, sHi := diffSign(lo), diffSign(hi)
	if sLo == 0 {
		sLo = -sHi
	}
	if sHi == 0 || sLo == sHi {
		if sLo != sHi {
			sHi = -sLo
		} else {
			return 0, 0, false
		}
	}
	// Bisect on the vertex x-coordinates of both chains merged: the
	// crossing lies between two consecutive breakpoints, where both
	// chains are single segments.
	xs := mergeXs(a, b, lo, hi)
	loI, hiI := 0, len(xs)-1
	for hiI-loI > 1 {
		mid := (loI + hiI) / 2
		s := diffSign(xs[mid])
		if s == 0 {
			loI, hiI = mid, mid+1
			break
		}
		if s == sLo {
			loI = mid
		} else {
			hiI = mid
		}
	}
	ia = edgeAt(a, xs[loI], xs[hiI])
	ib = edgeAt(b, xs[loI], xs[hiI])
	return ia, ib, true
}

// mergeXs collects the breakpoints of both chains within [lo, hi],
// including the interval ends, sorted ascending.
func mergeXs(a, b Chain, lo, hi float64) []float64 {
	var xs []float64
	xs = append(xs, lo)
	for _, v := range a.V {
		if v.X > lo && v.X < hi {
			xs = append(xs, v.X)
		}
	}
	for _, v := range b.V {
		if v.X > lo && v.X < hi {
			xs = append(xs, v.X)
		}
	}
	xs = append(xs, hi)
	sortFloats(xs)
	return xs
}

func sortFloats(xs []float64) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}

// edgeAt returns the index of the edge of c that spans the open interval
// (lo, hi); for a single-vertex chain it returns 0.
func edgeAt(c Chain, lo, hi float64) int {
	x := lo + (hi-lo)/2
	n := len(c.V)
	if n <= 1 {
		return 0
	}
	for i := 0; i+1 < n; i++ {
		if c.V[i].X <= x && x <= c.V[i+1].X {
			return i
		}
	}
	if x < c.V[0].X {
		return 0
	}
	return n - 2
}
