// Package chain implements upper-hull chains and the Atallah–Goodrich [6]
// primitive operations on them that make algorithms *point-hull invariant*
// (§2.4): any algorithm using only
//
//   - point coordinates / which-side-of-a-line tests,
//   - the line through two points, and
//   - the intersection of two lines
//
// can be run with upper hulls in place of points by substituting
//
//   - the intersection of a line with an upper hull,
//   - the common tangent of two upper hulls, and
//   - the intersection of two upper hulls.
//
// Each primitive comes in two variants: a sequential binary search
// (O(log q) time, 1 processor) and a brute-force variant that a PRAM runs
// in O(1) steps with q² processors — the profile the constant-time
// point-hull-invariant hull algorithm (Lemma 2.6) charges.
package chain

import (
	"sort"

	"inplacehull/internal/geom"
	"inplacehull/internal/pram"
)

// Chain is an upper hull: vertices in strictly increasing x, strictly
// right-turning (footnote 3: "curves to the right").
type Chain struct {
	V []geom.Point
}

// FromSorted builds the chain over points already sorted by x (monotone
// scan, used when assembling group hulls sequentially).
func FromSorted(pts []geom.Point) Chain {
	if len(pts) <= 1 {
		return Chain{V: append([]geom.Point(nil), pts...)}
	}
	var h []geom.Point
	for _, p := range pts {
		for len(h) >= 2 && geom.Orientation(h[len(h)-2], h[len(h)-1], p) >= 0 {
			h = h[:len(h)-1]
		}
		h = append(h, p)
	}
	for len(h) >= 2 && h[0].X == h[1].X {
		if h[0].Y < h[1].Y {
			h = h[1:]
		} else {
			h = append(h[:1], h[2:]...)
		}
	}
	return Chain{V: h}
}

// Validate reports whether the chain satisfies the upper-hull invariants.
func (c Chain) Validate() bool {
	for i, v := range c.V {
		if i > 0 && c.V[i-1].X >= v.X {
			return false
		}
		if i >= 2 && geom.Orientation(c.V[i-2], c.V[i-1], v) >= 0 {
			return false
		}
	}
	return true
}

// Len returns the number of vertices.
func (c Chain) Len() int { return len(c.V) }

// Left and Right return the extreme vertices.
func (c Chain) Left() geom.Point  { return c.V[0] }
func (c Chain) Right() geom.Point { return c.V[len(c.V)-1] }

// HeightAt returns the chain's height at abscissa x (−Inf outside the
// x-range) and whether x is within range.
func (c Chain) HeightAt(x float64) (float64, bool) {
	n := len(c.V)
	if n == 0 || x < c.V[0].X || x > c.V[n-1].X {
		return 0, false
	}
	i := sort.Search(n, func(i int) bool { return c.V[i].X >= x })
	if c.V[i].X == x {
		return c.V[i].Y, true
	}
	u, w := c.V[i-1], c.V[i]
	return u.Y + (w.Y-u.Y)*(x-u.X)/(w.X-u.X), true
}

// PointBelow reports whether point p lies on or below the chain: within the
// x-range and not above the covering edge. This is the chain analogue of
// "is the point below the line".
func (c Chain) PointBelow(p geom.Point) bool {
	n := len(c.V)
	if n == 0 || p.X < c.V[0].X || p.X > c.V[n-1].X {
		return false
	}
	i := sort.Search(n, func(i int) bool { return c.V[i].X >= p.X })
	if c.V[i].X == p.X {
		return p.Y <= c.V[i].Y
	}
	return !geom.AboveLine(p, c.V[i-1], c.V[i])
}

// AboveLineCount reports how many chain vertices lie strictly above the
// line through u, w — the chain analogue of the which-side test (its sign
// structure: 0 means the whole hull is below the line). Sequential cost
// O(log q) via the extreme-vertex search; here implemented exactly by
// finding the vertex extreme in the line's normal direction.
func (c Chain) AnyAbove(u, w geom.Point) bool {
	i := c.ExtremeInDir(u, w)
	if i < 0 {
		return false
	}
	return geom.AboveLine(c.V[i], u, w)
}

// ExtremeInDir returns the index of the vertex maximizing the offset above
// the direction of segment (u, w) (u.X < w.X), i.e. maximizing
// y − slope(u,w)·x, by binary search over the chain's slopes: O(log q).
// Returns −1 for an empty chain.
func (c Chain) ExtremeInDir(u, w geom.Point) int {
	n := len(c.V)
	if n == 0 {
		return -1
	}
	// The chain's edge slopes strictly decrease; the extreme vertex is
	// where the edge slope crosses slope(u, w). Binary search the first
	// edge with slope ≤ slope(u,w); its left endpoint is the extreme.
	lo, hi := 0, n-1 // edges are (i, i+1) for i in [0, n-1)
	for lo < hi {
		mid := (lo + hi) / 2
		// Edge (mid, mid+1): slope ≤ slope(u,w)?
		if geom.SlopeCmp(c.V[mid], c.V[mid+1], u, w) <= 0 {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo
}

// ExtremeInDirBrute is the q-processor O(1)-step variant: every vertex
// checks locally whether it is the extreme (both neighbors not better).
func (c Chain) ExtremeInDirBrute(m *pram.Machine, u, w geom.Point) int {
	n := len(c.V)
	if n == 0 {
		return -1
	}
	var win pram.MinCell
	win.InitMax()
	m.StepAll(n, func(i int) {
		better := func(a, b int) bool { // vertex a strictly higher than b in dir
			return geom.DirCmp(c.V[a], c.V[b], u, w) > 0
		}
		if (i == 0 || !better(i-1, i)) && (i == n-1 || !better(i+1, i)) {
			// Local maximum; on a strictly convex chain every local
			// maximum is global (plateaus of two collinear-in-dir vertices
			// resolve to the lower index via the MinCell).
			win.Write(int64(i))
		}
	})
	return int(win.Get())
}
