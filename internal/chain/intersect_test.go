package chain

import (
	"testing"

	"inplacehull/internal/geom"
)

func TestIntersectChainsBasic(t *testing.T) {
	// Chain a descends from high-left; chain b ascends to high-right;
	// they cross once.
	a := Chain{V: []geom.Point{{X: 0, Y: 10}, {X: 5, Y: 8}, {X: 10, Y: 0}}}
	b := Chain{V: []geom.Point{{X: 0, Y: 0}, {X: 6, Y: 6}, {X: 10, Y: 7}}}
	ia, ib, ok := IntersectChains(a, b)
	if !ok {
		t.Fatal("no crossing found")
	}
	// Verify: the reported edges actually straddle each other.
	au, aw := a.V[ia], a.V[ia+1]
	bu, bw := b.V[ib], b.V[ib+1]
	// The crossing x must lie in both spans.
	lo := maxF(au.X, bu.X)
	hi := minF(aw.X, bw.X)
	if lo > hi {
		t.Fatalf("edges (%d,%d) do not overlap in x", ia, ib)
	}
	// Sign of height difference flips across the overlap.
	da, _ := a.HeightAt(lo)
	db, _ := b.HeightAt(lo)
	ea, _ := a.HeightAt(hi)
	eb, _ := b.HeightAt(hi)
	if (da-db)*(ea-eb) > 0 {
		t.Fatalf("no sign flip across reported edges: %v vs %v", da-db, ea-eb)
	}
}

func TestIntersectChainsNoCrossing(t *testing.T) {
	a := Chain{V: []geom.Point{{X: 0, Y: 10}, {X: 10, Y: 9}}}
	b := Chain{V: []geom.Point{{X: 0, Y: 0}, {X: 10, Y: 1}}}
	if _, _, ok := IntersectChains(a, b); ok {
		t.Fatal("disjoint-height chains reported a crossing")
	}
}

func TestIntersectChainsDisjointX(t *testing.T) {
	a := Chain{V: []geom.Point{{X: 0, Y: 0}, {X: 1, Y: 1}}}
	b := Chain{V: []geom.Point{{X: 5, Y: 0}, {X: 6, Y: 1}}}
	if _, _, ok := IntersectChains(a, b); ok {
		t.Fatal("x-disjoint chains reported a crossing")
	}
}

func TestIntersectChainsEmpty(t *testing.T) {
	if _, _, ok := IntersectChains(Chain{}, Chain{V: []geom.Point{{X: 0, Y: 0}}}); ok {
		t.Fatal("empty chain reported a crossing")
	}
}

func maxF(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

func minF(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}
