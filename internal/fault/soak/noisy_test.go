package soak

import (
	"testing"

	"inplacehull/internal/fault"
	"inplacehull/internal/resilient"
)

// TestNoisySoakContract is the E19 smoke: at every flip rate, under both
// the default vote schedule and an under-voted stress policy that forces
// the approximate tier, every response must be an oracle-exact hull, an
// approximate hull within its certified ε, or a typed error.
func TestNoisySoakContract(t *testing.T) {
	n := 60
	if testing.Short() {
		n = 20
	}
	for _, p := range []float64{0.05, 0.1, 0.2} {
		for _, pol := range []resilient.Policy{
			{ApproxEps: 0.05},
			{ApproxEps: 0.05, NoLadder: true, Noisy: &resilient.NoisyPolicy{Votes: 1, Rate: p}},
		} {
			sum := NoisySoak(0xE19, n, p, pol)
			if sum.Scenarios != n {
				t.Fatalf("p=%g: ran %d scenarios, want %d", p, sum.Scenarios, n)
			}
			for _, rec := range sum.Failures {
				t.Errorf("p=%g: scenario %+v: %s (%s)", p, rec.Scenario, rec.Outcome, rec.Detail)
			}
			if sum.ExactOK == 0 {
				t.Fatalf("p=%g: no exact responses — harness broken", p)
			}
		}
	}
}

// TestNoisySoakExercisesTiers: the default batch must recover through the
// noisy tier and the under-voted batch must produce approximate-labeled
// responses, or E19's claims are vacuous.
func TestNoisySoakExercisesTiers(t *testing.T) {
	if testing.Short() {
		t.Skip("needs the full batch to reach the degraded tiers")
	}
	def := NoisySoak(0xE19, 60, 0.2, resilient.Policy{ApproxEps: 0.05})
	if def.ByTier["noisy"] == 0 {
		t.Error("default policy batch never answered from the noisy tier")
	}
	if def.MaxVotes < 3 {
		t.Errorf("max vote schedule %d, want a real repetition schedule", def.MaxVotes)
	}
	uv := NoisySoak(0xE19, 60, 0.2, resilient.Policy{
		ApproxEps: 0.05, NoLadder: true, Noisy: &resilient.NoisyPolicy{Votes: 1, Rate: 0.2},
	})
	if uv.ApproxOK == 0 {
		t.Error("under-voted batch never answered from the approximate tier")
	}
}

// TestNoisyScenariosDeterministic: E19 scenario derivation is a pure
// function of (master, count, p), prefix-stable like the base rotation.
func TestNoisyScenariosDeterministic(t *testing.T) {
	a := NoisyScenarios(7, 40, 0.1)
	long := NoisyScenarios(7, 80, 0.1)
	for i := range a {
		if a[i] != long[i] {
			t.Fatalf("scenario %d not prefix-stable", i)
		}
		if a[i].Plan.Rates[fault.PredicateFlip] != 0.1 {
			t.Fatalf("scenario %d flip rate %g, want pinned 0.1", i, a[i].Plan.Rates[fault.PredicateFlip])
		}
	}
}

// TestBaseScenariosCarryFlipRates: the standard chaos matrix now draws a
// predicate-flip rate too (from the plan seed, so the historical
// main-stream draw order — and with it E14's scenario identities — is
// unchanged), and the menu actually produces non-zero rates.
func TestBaseScenariosCarryFlipRates(t *testing.T) {
	nonzero := 0
	for _, sc := range Scenarios(0xE14, 200) {
		if r := sc.Plan.Rates[fault.PredicateFlip]; r > 0 {
			nonzero++
			if r != 0.05 && r != 0.1 && r != 0.2 {
				t.Fatalf("flip rate %g not on the menu", r)
			}
		}
	}
	if nonzero < 40 { // menu is 3/5 zero, so ~120 of 200 expected
		t.Fatalf("only %d of 200 scenarios drew a non-zero flip rate", nonzero)
	}
}
