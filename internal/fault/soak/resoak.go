// Supervised re-soak: re-running chaos scenarios through the resilient
// supervisor. E14 established that under injected faults the raw
// algorithms surrender with typed errors (80 of 1200 scenarios at the
// default menus). The supervisor's contract upgrades that: with reseeded
// retries and the sequential ladder, every such surrender must recover to
// an oracle-verified hull — zero unrecovered surrenders at the default
// policy (experiment E14c).
package soak

import (
	"context"
	"fmt"

	"inplacehull/internal/fault"
	"inplacehull/internal/hullerr"
	"inplacehull/internal/pram"
	"inplacehull/internal/resilient"
	"inplacehull/internal/rng"
	"inplacehull/internal/unsorted"
)

// RunScenarioSupervised executes one scenario through the resilient
// supervisor (fresh injector from the same plan, one-worker machine for
// the determinism argument of RunScenario) and classifies the result under
// the same contract. The returned report carries the supervisor's attempt
// count and final tier.
func RunScenarioSupervised(sc Scenario, pol resilient.Policy) (rec Record, rep resilient.Report) {
	rec.Scenario = sc
	inj := fault.NewInjector(sc.Plan)
	defer func() {
		rec.Counts = inj.Counts()
		if r := recover(); r != nil {
			rec.Outcome = Panicked
			rec.Detail = fmt.Sprint(r)
		}
	}()
	m := pram.New(pram.WithWorkers(1))
	rnd := fault.Attach(rng.New(sc.Seed), inj)
	ctx := context.Background()
	classify := func(err error, verify func() error) {
		if err != nil {
			rec.Detail = err.Error()
			if hullerr.IsTyped(err) {
				rec.Outcome = TypedError
			} else {
				rec.Outcome = UntypedError
			}
			return
		}
		if verr := verify(); verr != nil {
			rec.Outcome = WrongAnswer
			rec.Detail = verr.Error()
			return
		}
		rec.Outcome = OK
	}
	switch sc.Algo {
	case AlgoHull3D:
		g, ok := gen3D(sc.Gen)
		if !ok {
			rec.Outcome, rec.Detail = UntypedError, "unknown generator "+sc.Gen
			return rec, rep
		}
		pts := g.Gen(sc.Seed, sc.N)
		res, r, err := resilient.Hull3D(ctx, m, rnd, pts, pol)
		rep = r
		classify(err, func() error { return unsorted.CheckCaps3D(pts, res) })
	case AlgoHull2D:
		g, ok := gen2D(sc.Gen)
		if !ok {
			rec.Outcome, rec.Detail = UntypedError, "unknown generator "+sc.Gen
			return rec, rep
		}
		pts := g.Gen(sc.Seed, sc.N)
		res, r, err := resilient.Hull2D(ctx, m, rnd, pts, pol)
		rep = r
		classify(err, func() error { return unsorted.CheckAgainstReference(pts, res) })
	case AlgoPresorted, AlgoLogStar:
		g, ok := gen2D(sc.Gen)
		if !ok {
			rec.Outcome, rec.Detail = UntypedError, "unknown generator "+sc.Gen
			return rec, rep
		}
		pts := prepSorted(g.Gen(sc.Seed, sc.N))
		run := resilient.PresortedHull
		if sc.Algo == AlgoLogStar {
			run = resilient.LogStarHull
		}
		res, r, err := run(ctx, m, rnd, pts, pol)
		rep = r
		classify(err, func() error {
			return unsorted.CheckAgainstReference(pts, unsorted.Result2D{
				Edges: res.Edges, Chain: res.Chain, EdgeOf: res.EdgeOf,
			})
		})
	default:
		rec.Outcome, rec.Detail = UntypedError, "unknown algorithm "+sc.Algo
	}
	return rec, rep
}

// RecoverySummary aggregates a supervised re-soak of the raw soak's
// surrenders.
type RecoverySummary struct {
	// Surrenders is how many raw scenarios ended in a typed error — the
	// population re-run under supervision.
	Surrenders int
	// Recovered counts surrenders the supervisor turned into
	// oracle-verified hulls.
	Recovered int
	// ByTier[tier.String()] counts recoveries per ladder tier.
	ByTier map[string]int
	// ByAttempts[a] counts recoveries that needed exactly a randomized
	// attempts (index 0 collects ladder recoveries whose attempts hit the
	// policy cap).
	ByAttempts map[int]int
	// TotalAttempts sums randomized attempts across all re-runs;
	// MaxAttempts is the largest single re-run's count.
	TotalAttempts, MaxAttempts int
	// Unrecovered holds every re-run that still violated the contract or
	// surrendered — empty iff the supervisor's recovery guarantee holds.
	Unrecovered []Record
}

// Resoak runs the raw soak batch (master, count), collects every typed
// surrender, and re-runs each through the supervisor under pol. The
// acceptance criterion for the resilient layer: Unrecovered is empty at
// the default policy.
func Resoak(master uint64, count int, pol resilient.Policy) RecoverySummary {
	out := RecoverySummary{ByTier: map[string]int{}, ByAttempts: map[int]int{}}
	for _, sc := range Scenarios(master, count) {
		raw := RunScenario(sc)
		if raw.Outcome != TypedError {
			continue
		}
		out.Surrenders++
		rec, rep := RunScenarioSupervised(sc, pol)
		out.TotalAttempts += rep.Attempts
		if rep.Attempts > out.MaxAttempts {
			out.MaxAttempts = rep.Attempts
		}
		if rec.Outcome != OK {
			out.Unrecovered = append(out.Unrecovered, rec)
			continue
		}
		out.Recovered++
		out.ByTier[rep.Tier.String()]++
		if rep.Tier == resilient.TierRandomized {
			out.ByAttempts[rep.Attempts]++
		} else {
			out.ByAttempts[0]++
		}
	}
	return out
}
