// Noisy-primitive soak: experiment E19's harness. The batch pins the
// predicate-flip rate to a chosen p across an otherwise-standard chaos
// batch and runs every scenario through the resilient supervisor with the
// approximate degradation tier armed. The contract under test is the
// ladder's labeling guarantee: every response is an exact hull the oracle
// accepts, a certified ε-approximate hull labeled as such (and actually
// within its declared ε), or a typed error — never a silently wrong
// answer at any tier.
package soak

import (
	"context"
	"fmt"
	"math"

	"inplacehull/internal/fault"
	"inplacehull/internal/geom"
	"inplacehull/internal/hullerr"
	"inplacehull/internal/pram"
	"inplacehull/internal/presorted"
	"inplacehull/internal/resilient"
	"inplacehull/internal/rng"
	"inplacehull/internal/unsorted"
	"inplacehull/internal/workload"
)

// AlgoOptimal extends the soak rotation for E19: the §2.6 schedule runs
// direct-only (no supervised variant), so in the noisy batch it asserts
// the exact half of the contract — flips never corrupt a raw run, because
// the raw algorithms evaluate their predicates exactly and only the
// supervisor's noisy/approximate rungs consult the flip site.
const AlgoOptimal = "optimal"

// NoisyAlgos is the E19 rotation: the four supervised algorithms plus the
// direct-only §2.6 schedule.
var NoisyAlgos = []string{AlgoHull2D, AlgoHull3D, AlgoPresorted, AlgoLogStar, AlgoOptimal}

// NoisySummary aggregates an E19 batch at one flip rate.
type NoisySummary struct {
	FlipProb  float64
	Scenarios int
	// ByTier counts successful responses per degradation-ladder tier
	// ("randomized", "noisy", "approximate", "sequential", "degenerate",
	// and "direct" for the unsupervised optimal runs).
	ByTier map[string]int
	// TypedErrors counts acceptable surrenders; ExactOK and ApproxOK the
	// verified successes by label.
	TypedErrors, ExactOK, ApproxOK int
	// MaxCertEps is the largest certified ε any approximate response
	// carried; MaxVotes the largest per-predicate vote schedule used.
	MaxCertEps float64
	MaxVotes   int
	// Failures holds every contract violation: an exact-labeled response
	// the oracle rejected, an approximate response outside its declared ε,
	// an untyped error, or a panic.
	Failures []Record
}

// Bad reports whether the labeling contract was violated.
func (s *NoisySummary) Bad() bool { return len(s.Failures) > 0 }

// NoisyScenarios derives count E19 scenarios: the standard chaos plans
// (same master-seed derivation as Scenarios, so paper-site poisoning and
// workloads rotate identically) with the flip rate pinned to p and the
// algorithm rotation widened to NoisyAlgos.
func NoisyScenarios(master uint64, count int, p float64) []Scenario {
	out := Scenarios(master, count)
	for i := range out {
		out[i].Algo = NoisyAlgos[i%len(NoisyAlgos)]
		// The widened rotation can land a 3-d slot on a scenario the base
		// rotation drew a 2-d workload for (and vice versa); re-derive the
		// workload from the scenario seed when the dimensions disagree.
		if out[i].Algo == AlgoHull3D {
			if _, ok := gen3D(out[i].Gen); !ok {
				s := rng.New(out[i].Seed ^ 0xE19)
				g := workload.Gens3D[s.Intn(len(workload.Gens3D))]
				out[i].Gen, out[i].N = g.Name, n3DMenu[s.Intn(len(n3DMenu))]
			}
		} else if _, ok := gen2D(out[i].Gen); !ok {
			s := rng.New(out[i].Seed ^ 0xE19)
			g := workload.Gens2D[s.Intn(len(workload.Gens2D))]
			out[i].Gen, out[i].N = g.Name, n2DMenu[s.Intn(len(n2DMenu))]
		}
		out[i].Plan.Rates[fault.PredicateFlip] = p
	}
	return out
}

// RunScenarioNoisy executes one E19 scenario and classifies it under the
// tier-aware contract. Exact-labeled responses must pass the exact
// oracle; approximate-labeled responses must cover every input point
// within the certified ε (the exact hull's vertices are input points, so
// this bounds the vertical Hausdorff distance to the exact hull).
func RunScenarioNoisy(sc Scenario, pol resilient.Policy) (rec Record, rep resilient.Report) {
	rec.Scenario = sc
	inj := fault.NewInjector(sc.Plan)
	defer func() {
		rec.Counts = inj.Counts()
		if r := recover(); r != nil {
			rec.Outcome = Panicked
			rec.Detail = fmt.Sprint(r)
		}
	}()
	m := pram.New(pram.WithWorkers(1))
	rnd := fault.Attach(rng.New(sc.Seed), inj)
	ctx := context.Background()
	classify := func(err error, verify func() error) {
		if err != nil {
			rec.Detail = err.Error()
			if hullerr.IsTyped(err) {
				rec.Outcome = TypedError
			} else {
				rec.Outcome = UntypedError
			}
			return
		}
		if verr := verify(); verr != nil {
			rec.Outcome = WrongAnswer
			rec.Detail = verr.Error()
			return
		}
		rec.Outcome = OK
	}
	switch sc.Algo {
	case AlgoHull3D:
		g, ok := gen3D(sc.Gen)
		if !ok {
			rec.Outcome, rec.Detail = UntypedError, "unknown generator "+sc.Gen
			return rec, rep
		}
		pts := g.Gen(sc.Seed, sc.N)
		res, r, err := resilient.Hull3D(ctx, m, rnd, pts, pol)
		rep = r
		classify(err, func() error {
			if rep.Tier == resilient.TierApproximate {
				return approxCover3D(pts, res, rep.ApproxEps)
			}
			return unsorted.CheckCaps3D(pts, res)
		})
	case AlgoHull2D, AlgoPresorted, AlgoLogStar:
		g, ok := gen2D(sc.Gen)
		if !ok {
			rec.Outcome, rec.Detail = UntypedError, "unknown generator "+sc.Gen
			return rec, rep
		}
		var res unsorted.Result2D
		var err error
		var pts []geom.Point
		if sc.Algo == AlgoHull2D {
			pts = g.Gen(sc.Seed, sc.N)
			res, rep, err = resilient.Hull2D(ctx, m, rnd, pts, pol)
		} else {
			pts = prepSorted(g.Gen(sc.Seed, sc.N))
			run := resilient.PresortedHull
			if sc.Algo == AlgoLogStar {
				run = resilient.LogStarHull
			}
			var pr presorted.Result
			pr, rep, err = run(ctx, m, rnd, pts, pol)
			res = unsorted.Result2D{Edges: pr.Edges, Chain: pr.Chain, EdgeOf: pr.EdgeOf}
		}
		classify(err, func() error {
			if rep.Tier == resilient.TierApproximate {
				return approxCover2D(pts, res.Chain, rep.ApproxEps)
			}
			return unsorted.CheckAgainstReference(pts, res)
		})
	case AlgoOptimal:
		g, ok := gen2D(sc.Gen)
		if !ok {
			rec.Outcome, rec.Detail = UntypedError, "unknown generator "+sc.Gen
			return rec, rep
		}
		pts := prepSorted(g.Gen(sc.Seed, sc.N))
		r, err := presorted.Optimal(m, rnd, pts)
		classify(err, func() error {
			return unsorted.CheckAgainstReference(pts, unsorted.Result2D{
				Edges: r.Result.Edges, Chain: r.Result.Chain, EdgeOf: r.Result.EdgeOf,
			})
		})
	default:
		rec.Outcome, rec.Detail = UntypedError, "unknown algorithm "+sc.Algo
	}
	return rec, rep
}

// approxCover2D checks the declared-ε contract of a 2-d approximate
// answer: every input point lies at most eps (plus float slack) above the
// chain. The chain's vertices are input points, so the chain never rises
// above the exact hull; together the two directions bound the vertical
// Hausdorff distance between approximate and exact hulls by eps.
func approxCover2D(pts, chain []geom.Point, eps float64) error {
	if len(pts) == 0 {
		return nil
	}
	if len(chain) == 0 {
		return fmt.Errorf("approximate answer has an empty chain for %d points", len(pts))
	}
	slack := eps*1e-9 + 1e-12
	for i, p := range pts {
		y, ok := chainYAt(chain, p.X)
		if !ok {
			return fmt.Errorf("point %d (x=%g) outside the chain's x-range", i, p.X)
		}
		if p.Y-y > eps+slack {
			return fmt.Errorf("point %d is %g above the approximate chain, certified eps %g", i, p.Y-y, eps)
		}
	}
	return nil
}

// chainYAt interpolates the chain's height at x (chain sorted by x).
func chainYAt(chain []geom.Point, x float64) (float64, bool) {
	if x < chain[0].X || x > chain[len(chain)-1].X {
		return 0, false
	}
	lo, hi := 0, len(chain)-1
	for hi-lo > 1 {
		mid := (lo + hi) / 2
		if chain[mid].X <= x {
			lo = mid
		} else {
			hi = mid
		}
	}
	a, b := chain[lo], chain[hi]
	if a.X == b.X || x == a.X {
		return math.Max(a.Y, b.Y), true
	}
	t := (x - a.X) / (b.X - a.X)
	return a.Y + t*(b.Y-a.Y), true
}

// approxCover3D checks the declared-ε contract of a 3-d approximate
// answer: every point rises at most eps (plus float slack) above its
// assigned facet plane, i.e. the facet covers it to within eps
// vertically. Exact upper-hull vertices are input points, bounding the
// vertical Hausdorff distance as in 2-d.
func approxCover3D(pts []geom.Point3, res unsorted.Result3D, eps float64) error {
	if len(res.FacetOf) != len(pts) {
		return fmt.Errorf("FacetOf has %d entries for %d points", len(res.FacetOf), len(pts))
	}
	slack := eps*1e-9 + 1e-12
	for i, p := range pts {
		fi := res.FacetOf[i]
		if fi < 0 || fi >= len(res.Facets) {
			return fmt.Errorf("point %d assigned facet %d of %d", i, fi, len(res.Facets))
		}
		if d := p.Z - res.Facets[fi].ValueAt(p.X, p.Y); d > eps+slack {
			return fmt.Errorf("point %d is %g above its facet plane, certified eps %g", i, d, eps)
		}
	}
	return nil
}

// NoisySoak runs count E19 scenarios at flip rate p under pol and
// aggregates the tier-aware classification.
func NoisySoak(master uint64, count int, p float64, pol resilient.Policy) NoisySummary {
	sum := NoisySummary{FlipProb: p, ByTier: map[string]int{}}
	for _, sc := range NoisyScenarios(master, count, p) {
		rec, rep := RunScenarioNoisy(sc, pol)
		sum.Scenarios++
		switch {
		case rec.Outcome == TypedError:
			sum.TypedErrors++
		case rec.Outcome == OK:
			tier := rep.Tier.String()
			if sc.Algo == AlgoOptimal {
				tier = "direct"
			}
			sum.ByTier[tier]++
			if sc.Algo != AlgoOptimal && rep.Tier == resilient.TierApproximate {
				sum.ApproxOK++
				if rep.ApproxEps > sum.MaxCertEps {
					sum.MaxCertEps = rep.ApproxEps
				}
			} else {
				sum.ExactOK++
			}
			if rep.Votes > sum.MaxVotes {
				sum.MaxVotes = rep.Votes
			}
		default:
			sum.Failures = append(sum.Failures, rec)
		}
	}
	return sum
}
