package soak

import (
	"testing"

	"inplacehull/internal/resilient"
)

// TestSoakSmoke runs a small deterministic batch across all four
// algorithms; every run must return a verified hull or a typed error.
func TestSoakSmoke(t *testing.T) {
	n := 48
	if testing.Short() {
		n = 16
	}
	sum := Run(0xE14, n)
	if sum.Scenarios != n {
		t.Fatalf("ran %d scenarios, want %d", sum.Scenarios, n)
	}
	for _, rec := range sum.Failures {
		t.Errorf("scenario %+v: %s (%s)", rec.Scenario, rec.Outcome, rec.Detail)
	}
	if sum.ByOutcome[OK] == 0 {
		t.Fatal("no scenario succeeded — harness or oracle broken")
	}
	var injected int64
	for _, c := range sum.PerSite {
		injected += c.Injected
	}
	if injected == 0 {
		t.Fatal("no faults injected — injection threading broken")
	}
}

// TestScenariosDeterministic: same master seed → identical scenario lists,
// and a prefix of a longer list equals the shorter list.
func TestScenariosDeterministic(t *testing.T) {
	a := Scenarios(7, 40)
	b := Scenarios(7, 40)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("scenario %d differs across derivations", i)
		}
	}
	long := Scenarios(7, 80)
	for i := range a {
		if long[i] != a[i] {
			t.Fatalf("scenario %d not prefix-stable", i)
		}
	}
}

// TestRunScenarioReproducible: re-running a single scenario reproduces the
// outcome and injection counts exactly.
func TestRunScenarioReproducible(t *testing.T) {
	for _, sc := range Scenarios(0xBEEF, 12) {
		r1 := RunScenario(sc)
		r2 := RunScenario(sc)
		if r1.Outcome != r2.Outcome || r1.Detail != r2.Detail || r1.Counts != r2.Counts {
			t.Fatalf("scenario %d not reproducible: %+v vs %+v", sc.ID, r1, r2)
		}
	}
}

// TestResoakRecoversAllSurrenders is the resilient layer's acceptance
// criterion at test scale: every typed surrender of the raw soak must
// recover to an oracle-verified hull under the default supervisor policy.
// (The full-scale E14 batch — 1200 scenarios, 80 surrenders — runs as
// experiment E14c in internal/bench.)
func TestResoakRecoversAllSurrenders(t *testing.T) {
	n := 160
	if testing.Short() {
		n = 48
	}
	rs := Resoak(1, n, resilient.Policy{})
	if rs.Surrenders == 0 {
		t.Fatal("no raw surrenders in the batch — widen it; the recovery claim was not exercised")
	}
	for _, rec := range rs.Unrecovered {
		t.Errorf("scenario %+v unrecovered: %s (%s)", rec.Scenario, rec.Outcome, rec.Detail)
	}
	if rs.Recovered != rs.Surrenders-len(rs.Unrecovered) {
		t.Fatalf("bookkeeping: %d recovered of %d surrenders with %d unrecovered",
			rs.Recovered, rs.Surrenders, len(rs.Unrecovered))
	}
	if rs.MaxAttempts > 3 {
		t.Fatalf("max attempts %d exceeds the default policy cap", rs.MaxAttempts)
	}
}

// TestResoakDeterministic: the supervised re-run is as reproducible as the
// raw one.
func TestResoakDeterministic(t *testing.T) {
	for _, sc := range Scenarios(0xBEEF, 12) {
		r1, rep1 := RunScenarioSupervised(sc, resilient.Policy{})
		r2, rep2 := RunScenarioSupervised(sc, resilient.Policy{})
		if r1.Outcome != r2.Outcome || r1.Detail != r2.Detail || r1.Counts != r2.Counts {
			t.Fatalf("scenario %d not reproducible: %+v vs %+v", sc.ID, r1, r2)
		}
		if rep1.Attempts != rep2.Attempts || rep1.Tier != rep2.Tier {
			t.Fatalf("scenario %d report drifts: %+v vs %+v", sc.ID, rep1, rep2)
		}
	}
}
