package soak

import "testing"

// TestSoakSmoke runs a small deterministic batch across all four
// algorithms; every run must return a verified hull or a typed error.
func TestSoakSmoke(t *testing.T) {
	n := 48
	if testing.Short() {
		n = 16
	}
	sum := Run(0xE14, n)
	if sum.Scenarios != n {
		t.Fatalf("ran %d scenarios, want %d", sum.Scenarios, n)
	}
	for _, rec := range sum.Failures {
		t.Errorf("scenario %+v: %s (%s)", rec.Scenario, rec.Outcome, rec.Detail)
	}
	if sum.ByOutcome[OK] == 0 {
		t.Fatal("no scenario succeeded — harness or oracle broken")
	}
	var injected int64
	for _, c := range sum.PerSite {
		injected += c.Injected
	}
	if injected == 0 {
		t.Fatal("no faults injected — injection threading broken")
	}
}

// TestScenariosDeterministic: same master seed → identical scenario lists,
// and a prefix of a longer list equals the shorter list.
func TestScenariosDeterministic(t *testing.T) {
	a := Scenarios(7, 40)
	b := Scenarios(7, 40)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("scenario %d differs across derivations", i)
		}
	}
	long := Scenarios(7, 80)
	for i := range a {
		if long[i] != a[i] {
			t.Fatalf("scenario %d not prefix-stable", i)
		}
	}
}

// TestRunScenarioReproducible: re-running a single scenario reproduces the
// outcome and injection counts exactly.
func TestRunScenarioReproducible(t *testing.T) {
	for _, sc := range Scenarios(0xBEEF, 12) {
		r1 := RunScenario(sc)
		r2 := RunScenario(sc)
		if r1.Outcome != r2.Outcome || r1.Detail != r2.Detail || r1.Counts != r2.Counts {
			t.Fatalf("scenario %d not reproducible: %+v vs %+v", sc.ID, r1, r2)
		}
	}
}
