// Package soak is the chaos-soak harness behind experiment E14: it runs
// large batches of seeded fault scenarios — an algorithm, a workload, a
// size, and a fault.Plan, all derived deterministically from one master
// seed — and classifies every run. The robustness contract under test:
// under ANY injection plan, every algorithm either returns a hull the
// sequential oracle accepts or a typed *hullerr.Error — never a panic,
// never a wrong answer, never an untyped error, never a hang (all retry
// loops carry explicit budgets).
package soak

import (
	"fmt"

	"inplacehull/internal/fault"
	"inplacehull/internal/geom"
	"inplacehull/internal/hullerr"
	"inplacehull/internal/pram"
	"inplacehull/internal/presorted"
	"inplacehull/internal/rng"
	"inplacehull/internal/unsorted"
	"inplacehull/internal/workload"
)

// Algorithms under soak.
const (
	AlgoHull2D    = "hull2d"
	AlgoHull3D    = "hull3d"
	AlgoPresorted = "presorted"
	AlgoLogStar   = "logstar"
)

// Algos lists the algorithms in scenario-rotation order.
var Algos = []string{AlgoHull2D, AlgoHull3D, AlgoPresorted, AlgoLogStar}

// Scenario is one fully deterministic soak run: everything a re-run needs.
type Scenario struct {
	ID   int
	Algo string
	Gen  string
	N    int
	// Seed drives both the workload generator and the algorithm's random
	// stream.
	Seed uint64
	Plan fault.Plan
}

// Outcome classifies a run.
type Outcome int

const (
	// OK: the algorithm returned and the oracle accepted the hull.
	OK Outcome = iota
	// TypedError: the algorithm returned a typed *hullerr.Error — an
	// acceptable surrender under injected faults.
	TypedError
	// WrongAnswer: the run returned nil error but the oracle rejected the
	// output. A soak failure.
	WrongAnswer
	// UntypedError: a non-nil error that is not a *hullerr.Error. A soak
	// failure.
	UntypedError
	// Panicked: the run panicked. A soak failure.
	Panicked
)

// String names the outcome.
func (o Outcome) String() string {
	switch o {
	case OK:
		return "ok"
	case TypedError:
		return "typed-error"
	case WrongAnswer:
		return "WRONG-ANSWER"
	case UntypedError:
		return "UNTYPED-ERROR"
	case Panicked:
		return "PANIC"
	default:
		return fmt.Sprintf("outcome(%d)", int(o))
	}
}

// Bad reports whether the outcome violates the robustness contract.
func (o Outcome) Bad() bool { return o != OK && o != TypedError }

// Record is the result of one scenario.
type Record struct {
	Scenario Scenario
	Outcome  Outcome
	// Detail holds the error text, oracle complaint, or panic value.
	Detail string
	// Counts are the injector's per-site consultation/injection tallies.
	Counts [fault.NumSites]fault.Count
}

// Summary aggregates a soak batch.
type Summary struct {
	Scenarios int
	ByOutcome [int(Panicked) + 1]int
	// ByAlgo[algo][outcome] counts runs per algorithm.
	ByAlgo map[string]*[int(Panicked) + 1]int
	// PerSite aggregates injector counters across all runs.
	PerSite [fault.NumSites]fault.Count
	// Failures holds every contract-violating record, for reporting.
	Failures []Record
}

// Bad reports whether any scenario violated the contract.
func (s *Summary) Bad() bool { return len(s.Failures) > 0 }

// rate/level/budget menus for plan derivation. Zero entries are
// deliberately frequent: plain runs and single-site plans must both occur.
var (
	rateMenu   = []float64{0, 0, 0.1, 0.5, 1}
	levelMenu  = []int{0, 0, 0, 1, 2}
	budgetMenu = []int{0, 0, 1, 4, 16}
	flipMenu   = []float64{0, 0, 0.05, 0.1, 0.2}
	n2DMenu    = []int{64, 128, 256, 512}
	n3DMenu    = []int{64, 96, 128}
)

// Scenarios derives count scenarios deterministically from the master seed:
// same (master, count) prefix → same scenarios, so any failure reproduces
// from its printed Scenario alone.
func Scenarios(master uint64, count int) []Scenario {
	s := rng.New(master)
	out := make([]Scenario, 0, count)
	for i := 0; i < count; i++ {
		sc := Scenario{ID: i, Algo: Algos[i%len(Algos)], Seed: s.Uint64()}
		var plan fault.Plan
		plan.Seed = s.Uint64()
		for _, site := range fault.PaperSites {
			plan.Rates[site] = rateMenu[s.Intn(len(rateMenu))]
		}
		plan.FallbackLevel = levelMenu[s.Intn(len(levelMenu))]
		plan.MaxPerSite = budgetMenu[s.Intn(len(budgetMenu))]
		// The predicate-flip rate derives from plan.Seed, not the master
		// stream: the five paper-named sites keep their historical draw
		// order, so scenario IDs from earlier soak batches (E14) still name
		// the same plans. The flip site is consulted only by the supervisor's
		// noisy-resilient rung, so raw runs are additionally unaffected.
		plan.Rates[fault.PredicateFlip] = flipMenu[rng.New(plan.Seed^0xF11F).Intn(len(flipMenu))]
		sc.Plan = plan
		if sc.Algo == AlgoHull3D {
			g := workload.Gens3D[s.Intn(len(workload.Gens3D))]
			sc.Gen = g.Name
			sc.N = n3DMenu[s.Intn(len(n3DMenu))]
		} else {
			g := workload.Gens2D[s.Intn(len(workload.Gens2D))]
			sc.Gen = g.Name
			sc.N = n2DMenu[s.Intn(len(n2DMenu))]
		}
		out = append(out, sc)
	}
	return out
}

// gen2D resolves a registered 2-d generator by name.
func gen2D(name string) (workload.Gen2D, bool) {
	for _, g := range workload.Gens2D {
		if g.Name == name {
			return g, true
		}
	}
	return workload.Gen2D{}, false
}

func gen3D(name string) (workload.Gen3D, bool) {
	for _, g := range workload.Gens3D {
		if g.Name == name {
			return g, true
		}
	}
	return workload.Gen3D{}, false
}

// prepSorted strictly x-sorts and deduplicates (keeping the topmost point
// per abscissa) — the input contract of the pre-sorted algorithms.
func prepSorted(pts []geom.Point) []geom.Point {
	s := workload.Sorted(pts)
	out := s[:0]
	for _, p := range s {
		if len(out) > 0 && out[len(out)-1].X == p.X {
			if p.Y > out[len(out)-1].Y {
				out[len(out)-1] = p
			}
			continue
		}
		out = append(out, p)
	}
	return out
}

// RunScenario executes one scenario end to end, converting panics into
// Panicked records.
func RunScenario(sc Scenario) (rec Record) {
	rec.Scenario = sc
	inj := fault.NewInjector(sc.Plan)
	defer func() {
		rec.Counts = inj.Counts()
		if r := recover(); r != nil {
			rec.Outcome = Panicked
			rec.Detail = fmt.Sprint(r)
		}
	}()
	// One worker: with real parallel workers the arbitrary-CRCW claim
	// winner depends on goroutine scheduling, so retry paths — and the
	// injector's occurrence indices — would drift between runs. Sequential
	// execution pins the whole scenario, making Counts and Detail exactly
	// reproducible, not just the outcome.
	m := pram.New(pram.WithWorkers(1))
	rnd := fault.Attach(rng.New(sc.Seed), inj)
	classify := func(err error, verify func() error) {
		if err != nil {
			rec.Detail = err.Error()
			if hullerr.IsTyped(err) {
				rec.Outcome = TypedError
			} else {
				rec.Outcome = UntypedError
			}
			return
		}
		if verr := verify(); verr != nil {
			rec.Outcome = WrongAnswer
			rec.Detail = verr.Error()
			return
		}
		rec.Outcome = OK
	}
	switch sc.Algo {
	case AlgoHull3D:
		g, ok := gen3D(sc.Gen)
		if !ok {
			rec.Outcome, rec.Detail = UntypedError, "unknown generator "+sc.Gen
			return rec
		}
		pts := g.Gen(sc.Seed, sc.N)
		res, err := unsorted.Hull3D(m, rnd, pts)
		classify(err, func() error { return unsorted.CheckCaps3D(pts, res) })
	case AlgoHull2D:
		g, ok := gen2D(sc.Gen)
		if !ok {
			rec.Outcome, rec.Detail = UntypedError, "unknown generator "+sc.Gen
			return rec
		}
		pts := g.Gen(sc.Seed, sc.N)
		res, err := unsorted.Hull2D(m, rnd, pts)
		classify(err, func() error { return unsorted.CheckAgainstReference(pts, res) })
	case AlgoPresorted, AlgoLogStar:
		g, ok := gen2D(sc.Gen)
		if !ok {
			rec.Outcome, rec.Detail = UntypedError, "unknown generator "+sc.Gen
			return rec
		}
		pts := prepSorted(g.Gen(sc.Seed, sc.N))
		var res presorted.Result
		var err error
		if sc.Algo == AlgoPresorted {
			res, err = presorted.ConstantTime(m, rnd, pts)
		} else {
			res, err = presorted.LogStar(m, rnd, pts)
		}
		classify(err, func() error {
			return unsorted.CheckAgainstReference(pts, unsorted.Result2D{
				Edges: res.Edges, Chain: res.Chain, EdgeOf: res.EdgeOf,
			})
		})
	default:
		rec.Outcome, rec.Detail = UntypedError, "unknown algorithm "+sc.Algo
	}
	return rec
}

// Run executes count scenarios derived from master and aggregates them.
func Run(master uint64, count int) Summary {
	sum := Summary{ByAlgo: map[string]*[int(Panicked) + 1]int{}}
	for _, a := range Algos {
		sum.ByAlgo[a] = &[int(Panicked) + 1]int{}
	}
	for _, sc := range Scenarios(master, count) {
		rec := RunScenario(sc)
		sum.Scenarios++
		sum.ByOutcome[rec.Outcome]++
		if by, ok := sum.ByAlgo[sc.Algo]; ok {
			by[rec.Outcome]++
		}
		for s := 0; s < fault.NumSites; s++ {
			sum.PerSite[s].Seen += rec.Counts[s].Seen
			sum.PerSite[s].Injected += rec.Counts[s].Injected
		}
		if rec.Outcome.Bad() {
			sum.Failures = append(sum.Failures, rec)
		}
	}
	return sum
}
