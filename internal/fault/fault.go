// Package fault is a seeded, deterministic fault-injection layer for the
// randomized PRAM hull stack. The paper's §2.3 confidence argument rests on
// every randomized sub-procedure being *allowed* to fail — sampling may come
// back empty, approximate compaction may overflow, the bridge LP may not
// converge within its iteration budget — with failure sweeping and retries
// absorbing the damage. At benchable n those events are astronomically rare,
// so this package forces them: an Injector, derived from a Plan and a seed,
// rides the random stream (rng.Stream payloads) into every randomized
// procedure and deterministically decides, occurrence by occurrence, whether
// the paper-named failure mode fires.
//
// Determinism: the decision for the i-th occurrence of a site is a pure
// function of (plan seed, site, i), and every injection point sits in
// host-side sequential code (between PRAM steps), so a scenario is exactly
// reproducible from its plan — the property the E14 chaos soak depends on.
package fault

import (
	"fmt"
	"sync/atomic"

	"inplacehull/internal/rng"
)

// Site enumerates the injection points — one per failure mode the paper
// names.
type Site int

const (
	// SampleStorm forces a §3.1 claim-collision storm: every write round
	// of an in-place sample collides and the sample comes back empty
	// (Lemma 3.1's failure event). Hits both sample.Random and the
	// per-round sampling inside the batched bridge LP.
	SampleStorm Site = iota
	// CompactOverflow forces approximate compaction (Lemma 2.1/3.2) to
	// report failure, the "k ≥ n^(1/4) detected" outcome. Hits
	// compact.CompactIntoArea and therefore sweeping's own compaction.
	CompactOverflow
	// LPTimeout forces a bridge-finding problem to report non-convergence
	// within the β-iteration budget (Lemmas 4.1/4.2 failure event); the
	// caller's failure sweeping must resolve it.
	LPTimeout
	// VoteSkew forces a splitter-vote round (Corollary 3.1) to produce no
	// uncontested winner, exercising the vote's retry escalation.
	VoteSkew
	// ForceFallback fires the §4.1/§4.3 l ≥ threshold switch to the
	// O(n log n)-work fallback at a chosen recursion level (see
	// Plan.FallbackLevel).
	ForceFallback
	// PredicateFlip corrupts one geometric primitive evaluation — the
	// Goodrich–Sridhar noisy-primitive model, in which every orientation
	// or comparison test errs with constant probability. Unlike the five
	// paper-named sites above, it is consulted not by the PRAM procedures
	// but by geom.NoisyOracle (via Injector.Flipper), once per predicate
	// evaluation of the noisy-resilient and approximate ladder rungs.
	PredicateFlip
	// ShardSlow delays one shard attempt of the scatter-gather layer
	// (internal/shard) past its straggler threshold — the slow-peer mode
	// hedged requests exist for.
	ShardSlow
	// ShardDrop loses one shard request on the wire: the attempt fails
	// with a typed transport error and must be retried or re-scattered.
	ShardDrop
	// ShardCorrupt corrupts one shard response — a flipped chain vertex,
	// a truncated chain, or a mismatched input checksum — exercising the
	// coordinator's merge-integrity verification (a lying shard must be
	// detected, never merged).
	ShardCorrupt
	// PeerDown kills a shard worker for the remainder of the run: every
	// request to it fails fast, exercising the per-peer circuit breaker
	// and the re-scatter path.
	PeerDown
	// StreamSplice forces one mutation of the streaming subsystem
	// (internal/stream) to abandon its incremental maintenance path —
	// tangent splice on appends, bounded strip repair on deletions — as if
	// the retained candidate band had been found insufficient. The dataset
	// must degrade to a full rebuild and still commit a correct hull; the
	// fallback is logged and counted, never silent.
	StreamSplice
	// StreamRebuild forces one full hull rebuild of the streaming
	// subsystem to fail typed (the budget-exhausted outcome of a poisoned
	// rebuild). The mutation that needed the rebuild must roll back
	// atomically: the dataset stays at its previous version with its
	// previous hull and hash, and the caller gets a typed error — the
	// E14/E19 contract (correct hull or typed error, never silently
	// wrong) extended to mutable state.
	StreamRebuild

	// NumSites is the number of injection sites.
	NumSites = int(StreamRebuild) + 1
)

// siteNames is the table-driven site registry: one row per injection
// point. Adding a site means adding a constant above and one row here —
// String, the soak harnesses, and the exporters all read this table
// instead of carrying per-site switch arms.
var siteNames = [NumSites]string{
	SampleStorm:     "sample-storm",
	CompactOverflow: "compact-overflow",
	LPTimeout:       "lp-timeout",
	VoteSkew:        "vote-skew",
	ForceFallback:   "force-fallback",
	PredicateFlip:   "predicate-flip",
	ShardSlow:       "shard-slow",
	ShardDrop:       "shard-drop",
	ShardCorrupt:    "shard-corrupt",
	PeerDown:        "peer-down",
	StreamSplice:    "stream-splice",
	StreamRebuild:   "stream-rebuild",
}

// PaperSites lists the paper-named PRAM failure sites — the ones the E14
// scenario derivation draws rates for, in their historical order (soak
// scenario IDs depend on this order staying fixed).
var PaperSites = []Site{SampleStorm, CompactOverflow, LPTimeout, VoteSkew, ForceFallback}

// NetworkSites lists the distribution-level failure sites consulted by the
// scatter-gather layer (internal/shard), not by the PRAM procedures.
var NetworkSites = []Site{ShardSlow, ShardDrop, ShardCorrupt, PeerDown}

// StreamSites lists the mutation-path failure sites consulted by the
// streaming subsystem (internal/stream) on dataset appends and deletes.
var StreamSites = []Site{StreamSplice, StreamRebuild}

// String names the site from the registry table.
func (s Site) String() string {
	if s >= 0 && int(s) < NumSites {
		return siteNames[s]
	}
	return fmt.Sprintf("site(%d)", int(s))
}

// Plan is an immutable description of which injections fire. The zero value
// injects nothing.
type Plan struct {
	// Seed drives every injection decision.
	Seed uint64
	// Rates[s] is the probability that a given occurrence of site s
	// injects (0 = never, 1 = always).
	Rates [NumSites]float64
	// FallbackLevel, when > 0, makes ForceFallbackAt fire for every
	// recursion level ≥ FallbackLevel (0 disables; level numbering starts
	// at 0, so the switch can always be reached).
	FallbackLevel int
	// MaxPerSite, when > 0, caps the number of injections per site — the
	// escalation-budget knob: a poisoned run stops being poisoned after
	// the budget and must still terminate cleanly.
	MaxPerSite int
}

// Count is the per-site occurrence record.
type Count struct {
	// Seen is how many times the site was consulted.
	Seen int64
	// Injected is how many consultations fired.
	Injected int64
}

// Injector carries a Plan plus per-site counters. A nil *Injector is valid
// and injects nothing, so call sites need no guards.
type Injector struct {
	plan Plan
	seen [NumSites]atomic.Int64
	hits [NumSites]atomic.Int64
}

// NewInjector returns an injector executing plan.
func NewInjector(plan Plan) *Injector { return &Injector{plan: plan} }

// splitmix64 is the seeding mixer of internal/rng, reproduced here so the
// injection decision stream is self-contained.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Hit consumes one occurrence of site s and reports whether it injects. The
// decision depends only on (plan seed, s, occurrence index) — deterministic
// regardless of what other sites did in between.
func (in *Injector) Hit(s Site) bool {
	if in == nil {
		return false
	}
	i := in.seen[s].Add(1)
	return in.decide(s, uint64(i))
}

// HitAt is Hit for callers that own the occurrence numbering: the decision
// is the same pure function of (plan seed, site, key) that Hit applies to
// its internal counter, but the key is supplied by the caller. The shard
// scatter layer keys on (shard, attempt), so concurrent shard goroutines
// reach deterministic decisions regardless of interleaving — the property
// the sequential soaks get from host-side ordering, recovered here for
// parallel consultation.
func (in *Injector) HitAt(s Site, key uint64) bool {
	if in == nil {
		return false
	}
	in.seen[s].Add(1)
	// Offset the caller key so HitAt(s, k) draws the same stream position
	// as Hit's (k+1)-th occurrence; key 0 never degenerates to the
	// constant seed^site draw.
	return in.decide(s, key+1)
}

// decide draws the injection decision for stream position i of site s and
// records a firing. Pure in (plan seed, s, i) apart from the budget cap.
func (in *Injector) decide(s Site, i uint64) bool {
	r := in.plan.Rates[s]
	if r <= 0 {
		return false
	}
	if in.plan.MaxPerSite > 0 && in.hits[s].Load() >= int64(in.plan.MaxPerSite) {
		return false
	}
	v := splitmix64(in.plan.Seed ^ uint64(s+1)*0x9e3779b97f4a7c15 ^ i*0xbf58476d1ce4e5b9)
	if float64(v>>11)/(1<<53) >= r {
		return false
	}
	in.hits[s].Add(1)
	return true
}

// ForceFallbackAt reports whether the fallback switch is forced at the
// given recursion level (Plan.FallbackLevel semantics). A firing counts as
// an injection of the ForceFallback site.
func (in *Injector) ForceFallbackAt(level int) bool {
	if in == nil || in.plan.FallbackLevel <= 0 {
		return false
	}
	in.seen[ForceFallback].Add(1)
	if level < in.plan.FallbackLevel {
		return false
	}
	in.hits[ForceFallback].Add(1)
	return true
}

// Flipper adapts the injector to geom.NoisyOracle's noise-source contract:
// a per-evaluation corruption decision. It returns nil when the injector
// is nil or the plan never flips predicates, so the oracle stays on its
// exact fast path (and pays no consultation) in fault-free runs.
func (in *Injector) Flipper() func() bool {
	if in == nil || in.plan.Rates[PredicateFlip] <= 0 {
		return nil
	}
	return func() bool { return in.Hit(PredicateFlip) }
}

// Rate reports the plan's injection probability for site s — the error
// budget the Goodrich–Sridhar repetition schedule is sized from.
func (in *Injector) Rate(s Site) float64 {
	if in == nil {
		return 0
	}
	return in.plan.Rates[s]
}

// Counts returns the per-site occurrence records.
func (in *Injector) Counts() [NumSites]Count {
	var out [NumSites]Count
	if in == nil {
		return out
	}
	for s := 0; s < NumSites; s++ {
		out[s] = Count{Seen: in.seen[s].Load(), Injected: in.hits[s].Load()}
	}
	return out
}

// TotalInjected sums the injections across sites.
func (in *Injector) TotalInjected() int64 {
	var t int64
	for _, c := range in.Counts() {
		t += c.Injected
	}
	return t
}

// Attach returns the stream with in riding it: every child derived through
// Split carries the same injector, so one Attach at an algorithm's entry
// threads the faults through sample, compact, lp and sweep.
func Attach(s *rng.Stream, in *Injector) *rng.Stream {
	return s.WithPayload(in)
}

// On extracts the injector riding the stream, or nil — so injection points
// read `fault.On(rnd).Hit(site)` with no guard.
func On(s *rng.Stream) *Injector {
	if s == nil {
		return nil
	}
	in, _ := s.Payload().(*Injector)
	return in
}
