package fault

import (
	"testing"

	"inplacehull/internal/rng"
)

func TestZeroPlanInjectsNothing(t *testing.T) {
	in := NewInjector(Plan{})
	for s := 0; s < NumSites; s++ {
		for i := 0; i < 100; i++ {
			if in.Hit(Site(s)) {
				t.Fatalf("zero plan injected at site %v", Site(s))
			}
		}
	}
	for lvl := 0; lvl < 5; lvl++ {
		if in.ForceFallbackAt(lvl) {
			t.Fatalf("zero plan forced fallback at level %d", lvl)
		}
	}
	if in.TotalInjected() != 0 {
		t.Fatalf("zero plan TotalInjected = %d", in.TotalInjected())
	}
	c := in.Counts()
	for s := 0; s < NumSites; s++ {
		if s == int(ForceFallback) {
			continue // ForceFallbackAt with FallbackLevel=0 does not consult
		}
		if c[s].Seen != 100 {
			t.Fatalf("site %v Seen = %d, want 100", Site(s), c[s].Seen)
		}
	}
}

func TestNilInjectorIsSafe(t *testing.T) {
	var in *Injector
	if in.Hit(SampleStorm) || in.ForceFallbackAt(3) || in.TotalInjected() != 0 {
		t.Fatal("nil injector misbehaved")
	}
	if c := in.Counts(); c != ([NumSites]Count{}) {
		t.Fatalf("nil injector Counts = %+v", c)
	}
}

// TestHitDeterministic: the decision for the i-th occurrence of a site is a
// pure function of (seed, site, i) — two injectors with the same plan agree
// occurrence by occurrence, regardless of interleaving with other sites.
func TestHitDeterministic(t *testing.T) {
	plan := Plan{Seed: 99}
	for s := 0; s < NumSites; s++ {
		plan.Rates[s] = 0.5
	}
	a, b := NewInjector(plan), NewInjector(plan)
	// a consults sites round-robin; b consults them site by site. The
	// per-site decision sequences must match.
	const per = 200
	got := make([][]bool, NumSites)
	for i := range got {
		got[i] = make([]bool, per)
	}
	for i := 0; i < per; i++ {
		for s := 0; s < NumSites; s++ {
			got[s][i] = a.Hit(Site(s))
		}
	}
	for s := 0; s < NumSites; s++ {
		for i := 0; i < per; i++ {
			if b.Hit(Site(s)) != got[s][i] {
				t.Fatalf("site %v occurrence %d depends on interleaving", Site(s), i)
			}
		}
	}
}

func TestRateExtremes(t *testing.T) {
	var plan Plan
	plan.Rates[LPTimeout] = 1
	in := NewInjector(plan)
	for i := 0; i < 100; i++ {
		if !in.Hit(LPTimeout) {
			t.Fatalf("rate-1 site missed occurrence %d", i)
		}
		if in.Hit(SampleStorm) {
			t.Fatalf("rate-0 site fired at occurrence %d", i)
		}
	}
}

func TestRateApproximatelyHonored(t *testing.T) {
	var plan Plan
	plan.Seed = 7
	plan.Rates[CompactOverflow] = 0.3
	in := NewInjector(plan)
	const trials = 20000
	for i := 0; i < trials; i++ {
		in.Hit(CompactOverflow)
	}
	c := in.Counts()[CompactOverflow]
	rate := float64(c.Injected) / float64(c.Seen)
	if rate < 0.27 || rate > 0.33 {
		t.Fatalf("empirical rate %.4f for Rates=0.3", rate)
	}
}

func TestMaxPerSiteCapsInjections(t *testing.T) {
	var plan Plan
	plan.Rates[VoteSkew] = 1
	plan.MaxPerSite = 3
	in := NewInjector(plan)
	fired := 0
	for i := 0; i < 50; i++ {
		if in.Hit(VoteSkew) {
			fired++
		}
	}
	if fired != 3 {
		t.Fatalf("MaxPerSite=3 allowed %d injections", fired)
	}
	c := in.Counts()[VoteSkew]
	if c.Seen != 50 || c.Injected != 3 {
		t.Fatalf("counts %+v, want Seen=50 Injected=3", c)
	}
}

func TestForceFallbackAtLevelSemantics(t *testing.T) {
	in := NewInjector(Plan{FallbackLevel: 2})
	for lvl := 0; lvl < 5; lvl++ {
		want := lvl >= 2
		if got := in.ForceFallbackAt(lvl); got != want {
			t.Fatalf("ForceFallbackAt(%d) = %v with FallbackLevel=2", lvl, got)
		}
	}
	c := in.Counts()[ForceFallback]
	if c.Seen != 5 || c.Injected != 3 {
		t.Fatalf("counts %+v, want Seen=5 Injected=3", c)
	}
}

// TestAttachOnRoundTrip: Attach rides the stream, On recovers it, and the
// rider survives arbitrary Split chains — the property that lets one Attach
// at an algorithm's entry reach every sub-procedure.
func TestAttachOnRoundTrip(t *testing.T) {
	in := NewInjector(Plan{Seed: 1})
	s := Attach(rng.New(42), in)
	if On(s) != in {
		t.Fatal("On did not recover the attached injector")
	}
	if On(s.Split(3).Split(9)) != in {
		t.Fatal("injector did not ride Split")
	}
	if On(rng.New(42)) != nil {
		t.Fatal("On invented an injector on a bare stream")
	}
	if On(nil) != nil {
		t.Fatal("On(nil) non-nil")
	}
}

// TestFlipperContract: the noise-source adapter is nil exactly when no
// predicate flips can fire, and otherwise consults the PredicateFlip site
// once per call at the plan's rate.
func TestFlipperContract(t *testing.T) {
	var nilInj *Injector
	if nilInj.Flipper() != nil {
		t.Fatal("nil injector produced a flipper")
	}
	if NewInjector(Plan{Seed: 5}).Flipper() != nil {
		t.Fatal("zero-rate plan produced a flipper")
	}
	var plan Plan
	plan.Seed = 11
	plan.Rates[PredicateFlip] = 0.2
	in := NewInjector(plan)
	flip := in.Flipper()
	if flip == nil {
		t.Fatal("positive-rate plan produced no flipper")
	}
	const trials = 20000
	fired := 0
	for i := 0; i < trials; i++ {
		if flip() {
			fired++
		}
	}
	c := in.Counts()[PredicateFlip]
	if c.Seen != trials || int(c.Injected) != fired {
		t.Fatalf("counts %+v after %d calls (%d fired)", c, trials, fired)
	}
	rate := float64(fired) / trials
	if rate < 0.17 || rate > 0.23 {
		t.Fatalf("empirical flip rate %.4f for Rates=0.2", rate)
	}
}

func TestRateAccessor(t *testing.T) {
	var nilInj *Injector
	if nilInj.Rate(PredicateFlip) != 0 {
		t.Fatal("nil injector reported a rate")
	}
	var plan Plan
	plan.Rates[PredicateFlip] = 0.1
	plan.Rates[LPTimeout] = 0.5
	in := NewInjector(plan)
	if in.Rate(PredicateFlip) != 0.1 || in.Rate(LPTimeout) != 0.5 || in.Rate(SampleStorm) != 0 {
		t.Fatal("Rate accessor disagrees with the plan")
	}
}
