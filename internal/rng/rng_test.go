package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams with same seed diverged at draw %d", i)
		}
	}
}

func TestDistinctSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("streams with different seeds matched %d/100 draws", same)
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := New(7)
	c1, c2 := parent.Split(0), parent.Split(1)
	if c1.Uint64() == c2.Uint64() {
		t.Fatal("adjacent child streams produced identical first draw")
	}
	// Splitting must not advance the parent.
	p1 := New(7)
	p1.Split(0)
	p2 := New(7)
	if p1.Uint64() != p2.Uint64() {
		t.Fatal("Split advanced the parent stream")
	}
}

func TestSplitDeterminism(t *testing.T) {
	a := New(9).Split(123)
	b := New(9).Split(123)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same-id children diverged at draw %d", i)
		}
	}
}

func TestForkIndependenceUnderSplitting(t *testing.T) {
	// The PRAM algorithms fork one stream per virtual processor and consume
	// the children in scheduler-dependent interleavings; determinism demands
	// that each child's draws depend only on its split path, never on how
	// siblings are consumed.
	parent := New(0xF0)
	// (a) A child's sequence is a pure function of the split path.
	want := make([]uint64, 32)
	c := parent.Split(5)
	for i := range want {
		want[i] = c.Uint64()
	}
	// (b) Interleave heavy consumption of siblings between re-derivation and
	// draws; the re-derived child must reproduce the sequence exactly.
	c2 := parent.Split(5)
	for sib := uint64(0); sib < 20; sib++ {
		s := parent.Split(sib * 31)
		for i := 0; i < 100; i++ {
			s.Uint64()
		}
	}
	for i := range want {
		if got := c2.Uint64(); got != want[i] {
			t.Fatalf("sibling consumption perturbed child draw %d", i)
		}
	}
	// (c) Grandchildren on distinct paths decorrelate: no matching draws
	// between any pair of a small fleet.
	const fleet, draws = 8, 200
	seqs := make([][]uint64, fleet)
	for i := range seqs {
		g := parent.Split(uint64(i)).Split(uint64(i) * 7)
		seqs[i] = make([]uint64, draws)
		for j := range seqs[i] {
			seqs[i][j] = g.Uint64()
		}
	}
	for a := 0; a < fleet; a++ {
		for b := a + 1; b < fleet; b++ {
			same := 0
			for j := 0; j < draws; j++ {
				if seqs[a][j] == seqs[b][j] {
					same++
				}
			}
			if same > 0 {
				t.Fatalf("grandchild streams %d and %d matched %d/%d draws", a, b, same, draws)
			}
		}
	}
}

func TestPayloadRidesSplits(t *testing.T) {
	type marker struct{ v int }
	mk := &marker{v: 7}
	s := New(3).WithPayload(mk)
	// Transitive inheritance through arbitrary split depth.
	child := s.Split(1).Split(2).Split(3)
	if got, _ := child.Payload().(*marker); got != mk {
		t.Fatal("payload not inherited through Split chain")
	}
	// Attaching a payload must not change a single random bit.
	a, b := New(17), New(17).WithPayload(mk)
	for i := 0; i < 200; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("payload changed the random sequence at draw %d", i)
		}
	}
	ca, cb := New(17).Split(9), New(17).WithPayload(mk).Split(9)
	for i := 0; i < 200; i++ {
		if ca.Uint64() != cb.Uint64() {
			t.Fatalf("payload changed a child sequence at draw %d", i)
		}
	}
}

func TestIntnRange(t *testing.T) {
	s := New(3)
	for _, n := range []int{1, 2, 3, 7, 100, 1 << 20} {
		for i := 0; i < 200; i++ {
			v := s.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestIntnUniformity(t *testing.T) {
	s := New(11)
	const n, trials = 10, 100000
	counts := make([]int, n)
	for i := 0; i < trials; i++ {
		counts[s.Intn(n)]++
	}
	// Chi-squared with 9 dof; 99.9% critical value ≈ 27.88.
	exp := float64(trials) / n
	chi2 := 0.0
	for _, c := range counts {
		d := float64(c) - exp
		chi2 += d * d / exp
	}
	if chi2 > 27.88 {
		t.Fatalf("Intn uniformity chi2 = %.2f > 27.88", chi2)
	}
}

func TestFloat64Range(t *testing.T) {
	s := New(5)
	for i := 0; i < 10000; i++ {
		f := s.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64() = %v out of [0,1)", f)
		}
	}
}

func TestBernoulliEdges(t *testing.T) {
	s := New(6)
	for i := 0; i < 100; i++ {
		if s.Bernoulli(0) {
			t.Fatal("Bernoulli(0) returned true")
		}
		if !s.Bernoulli(1) {
			t.Fatal("Bernoulli(1) returned false")
		}
	}
}

func TestBernoulliRate(t *testing.T) {
	s := New(8)
	const trials = 200000
	hits := 0
	for i := 0; i < trials; i++ {
		if s.Bernoulli(0.3) {
			hits++
		}
	}
	rate := float64(hits) / trials
	if math.Abs(rate-0.3) > 0.01 {
		t.Fatalf("Bernoulli(0.3) empirical rate %.4f", rate)
	}
}

func TestNormFloat64Moments(t *testing.T) {
	s := New(10)
	const trials = 200000
	var sum, sum2 float64
	for i := 0; i < trials; i++ {
		v := s.NormFloat64()
		sum += v
		sum2 += v * v
	}
	mean := sum / trials
	variance := sum2/trials - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Fatalf("normal mean %.4f", mean)
	}
	if math.Abs(variance-1) > 0.05 {
		t.Fatalf("normal variance %.4f", variance)
	}
}

func TestPermIsPermutation(t *testing.T) {
	if err := quick.Check(func(seed uint64, nRaw uint8) bool {
		n := int(nRaw%64) + 1
		p := New(seed).Perm(n)
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestShufflePreservesMultiset(t *testing.T) {
	s := New(13)
	xs := []int{1, 2, 2, 3, 5, 8, 13, 21}
	orig := map[int]int{}
	for _, x := range xs {
		orig[x]++
	}
	Shuffle(s, xs)
	got := map[int]int{}
	for _, x := range xs {
		got[x]++
	}
	for k, v := range orig {
		if got[k] != v {
			t.Fatalf("shuffle changed multiset: %v", xs)
		}
	}
}

func TestPermUniformityFirstPosition(t *testing.T) {
	// Over many seeds, position 0 of Perm(4) should be ~uniform over 0..3.
	counts := make([]int, 4)
	for seed := uint64(0); seed < 4000; seed++ {
		counts[New(seed).Perm(4)[0]]++
	}
	for i, c := range counts {
		if c < 800 || c > 1200 {
			t.Fatalf("Perm(4)[0]=%d occurred %d/4000 times", i, c)
		}
	}
}
