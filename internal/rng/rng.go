// Package rng provides a deterministic, splittable pseudo-random number
// generator used by every randomized procedure in the library.
//
// The paper's algorithms are analyzed on a randomized CRCW PRAM where each
// processor has an independent source of random bits. We model that with
// splitmix64-seeded xoshiro256** streams: a parent stream can derive an
// arbitrary number of statistically independent child streams, one per
// virtual processor, so whole experiments are reproducible from one seed
// regardless of scheduling order.
package rng

import (
	"math"
	"math/bits"
)

// Stream is a xoshiro256** generator. The zero value is not usable; create
// streams with New or Split.
type Stream struct {
	s0, s1, s2, s3 uint64
	// payload is an opaque rider propagated to every child by Split. The
	// rng package never reads it; it exists so cross-cutting layers (the
	// deterministic fault injector of internal/fault) can travel with the
	// random stream through every randomized procedure without widening a
	// single signature. See WithPayload.
	payload any
}

// splitmix64 advances *x and returns the next splitmix64 output. It is used
// only for seeding, as recommended by the xoshiro authors.
func splitmix64(x *uint64) uint64 {
	*x += 0x9e3779b97f4a7c15
	z := *x
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// New returns a stream seeded deterministically from seed.
func New(seed uint64) *Stream {
	var s Stream
	s.reseed(seed)
	return &s
}

func (s *Stream) reseed(seed uint64) {
	x := seed
	s.s0 = splitmix64(&x)
	s.s1 = splitmix64(&x)
	s.s2 = splitmix64(&x)
	s.s3 = splitmix64(&x)
	// xoshiro must not be seeded with all zeros; splitmix64 of any seed
	// yields that only with negligible probability, but guard anyway.
	if s.s0|s.s1|s.s2|s.s3 == 0 {
		s.s0 = 1
	}
}

// Uint64 returns the next 64 uniformly random bits.
func (s *Stream) Uint64() uint64 {
	r := bits.RotateLeft64(s.s1*5, 7) * 9
	t := s.s1 << 17
	s.s2 ^= s.s0
	s.s3 ^= s.s1
	s.s1 ^= s.s2
	s.s0 ^= s.s3
	s.s2 ^= t
	s.s3 = bits.RotateLeft64(s.s3, 45)
	return r
}

// Split derives an independent child stream identified by id. Distinct ids
// on the same parent give distinct, decorrelated streams; the parent state
// is not advanced, so Split is safe to call concurrently with other Splits
// only if externally synchronized (callers split before going parallel).
func (s *Stream) Split(id uint64) *Stream {
	// Mix the parent's state with the id through splitmix64 so that child
	// streams differ in all state words even for adjacent ids.
	x := s.s0 ^ bits.RotateLeft64(s.s2, 29) ^ (id * 0x9e3779b97f4a7c15)
	var c Stream
	c.reseed(splitmix64(&x) ^ id)
	c.payload = s.payload
	return &c
}

// WithPayload attaches an opaque payload to the stream and returns it. The
// payload is inherited by every stream derived through Split, transitively;
// Uint64 and the other draws are unaffected, so attaching a payload never
// changes a single random bit.
func (s *Stream) WithPayload(p any) *Stream {
	s.payload = p
	return s
}

// Payload returns the payload attached by WithPayload (nil if none).
func (s *Stream) Payload() any { return s.payload }

// Intn returns a uniform integer in [0, n). It panics if n <= 0: a
// non-positive bound is a programmer error, not a data condition — every
// caller whose bound derives from input size must guard before calling
// (the in-tree callers clamp their spaces to positive minima; see e.g.
// compact.CompactIntoArea's size floor and workload.Grid's side guard).
func (s *Stream) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	// Lemire's multiply-shift rejection method: unbiased and fast.
	un := uint64(n)
	v := s.Uint64()
	hi, lo := bits.Mul64(v, un)
	if lo < un {
		thresh := -un % un
		for lo < thresh {
			v = s.Uint64()
			hi, lo = bits.Mul64(v, un)
		}
	}
	return int(hi)
}

// Float64 returns a uniform float64 in [0, 1).
func (s *Stream) Float64() float64 {
	return float64(s.Uint64()>>11) / (1 << 53)
}

// Bernoulli returns true with probability p (clamped to [0,1]).
func (s *Stream) Bernoulli(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return s.Float64() < p
}

// NormFloat64 returns a standard normal variate (Marsaglia polar method).
func (s *Stream) NormFloat64() float64 {
	for {
		u := 2*s.Float64() - 1
		v := 2*s.Float64() - 1
		q := u*u + v*v
		if q > 0 && q < 1 {
			return u * math.Sqrt(-2*math.Log(q)/q)
		}
	}
}

// Perm returns a uniformly random permutation of [0, n) (Fisher–Yates).
func (s *Stream) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := s.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Shuffle permutes xs uniformly at random in place.
func Shuffle[T any](s *Stream, xs []T) {
	for i := len(xs) - 1; i > 0; i-- {
		j := s.Intn(i + 1)
		xs[i], xs[j] = xs[j], xs[i]
	}
}
