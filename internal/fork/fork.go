// Package fork is the process-wide binary-forking token pool the direct
// execution paths share: one fork slot per host processor beyond the
// caller's own. A fork that cannot take a token runs inline, so recursion
// degrades to sequential execution under contention instead of stacking
// goroutines — the binary-forking discipline of the cache-oblivious hull
// literature (Browne et al.): spawn at most one side of each divide,
// never a goroutine per element.
//
// The pool used to live inside internal/native; it moved here so the
// admission-side culling filters (internal/cull) parallelize over the
// same token budget as the native backend they feed, instead of
// oversubscribing the host with a second pool.
package fork

import "runtime"

// tokens is the shared fork budget.
var tokens = make(chan struct{}, width())

func width() int {
	w := runtime.GOMAXPROCS(0) - 1
	if w < 0 {
		w = 0
	}
	return w
}

// Parallel2 runs a and b, forking b onto another goroutine when a token is
// available and inlining both otherwise. A panic on either side is
// re-raised on the caller's goroutine after both complete, so the fork
// tree unwinds like ordinary sequential code.
func Parallel2(a, b func()) {
	select {
	case tokens <- struct{}{}:
		done := make(chan any, 1)
		go func() {
			defer func() {
				<-tokens
				done <- recover()
			}()
			b()
		}()
		a()
		if r := <-done; r != nil {
			panic(r)
		}
	default:
		a()
		b()
	}
}

// For applies fn over [0, n) in binary-forking shape, splitting ranges in
// half until they fit the grain. fn receives disjoint [lo, hi) ranges and
// may run concurrently with itself.
func For(n, grain int, fn func(lo, hi int)) {
	if n <= 0 {
		return
	}
	if grain < 1 {
		grain = 1
	}
	var rec func(lo, hi int)
	rec = func(lo, hi int) {
		if hi-lo <= grain {
			fn(lo, hi)
			return
		}
		mid := lo + (hi-lo)/2
		Parallel2(func() { rec(lo, mid) }, func() { rec(mid, hi) })
	}
	rec(0, n)
}
