package fork

import (
	"sync/atomic"
	"testing"
)

func TestForCoversRangeDisjointly(t *testing.T) {
	for _, n := range []int{0, 1, 5, 100, 4097, 100_000} {
		seen := make([]int32, n)
		For(n, 64, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				atomic.AddInt32(&seen[i], 1)
			}
		})
		for i, c := range seen {
			if c != 1 {
				t.Fatalf("n=%d: index %d visited %d times", n, i, c)
			}
		}
	}
}

func TestForZeroAndNegativeGrain(t *testing.T) {
	var count atomic.Int64
	For(10, 0, func(lo, hi int) { count.Add(int64(hi - lo)) })
	if count.Load() != 10 {
		t.Fatalf("grain 0: covered %d of 10", count.Load())
	}
}

func TestParallel2RunsBoth(t *testing.T) {
	var a, b atomic.Bool
	Parallel2(func() { a.Store(true) }, func() { b.Store(true) })
	if !a.Load() || !b.Load() {
		t.Fatalf("a=%v b=%v, want both true", a.Load(), b.Load())
	}
}

func TestParallel2PanicPropagates(t *testing.T) {
	check := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Fatalf("%s: panic did not propagate", name)
			}
		}()
		f()
	}
	check("left", func() { Parallel2(func() { panic("boom") }, func() {}) })
	check("right", func() { Parallel2(func() {}, func() { panic("boom") }) })
}

// TestParallel2NoTokenLeak exercises the pool deep enough that a leaked
// token would exhaust the budget and serialize everything — the test
// still passes then, but under -race it also checks the recover handoff.
func TestParallel2NoTokenLeak(t *testing.T) {
	for round := 0; round < 100; round++ {
		var sum atomic.Int64
		For(1000, 10, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				sum.Add(int64(i))
			}
		})
		if sum.Load() != 999*1000/2 {
			t.Fatalf("round %d: sum %d", round, sum.Load())
		}
	}
	if len(tokens) != 0 {
		t.Fatalf("%d tokens leaked", len(tokens))
	}
}
