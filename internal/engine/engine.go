// Package engine is the execution-backend seam: one interface over the
// five hull algorithms with two implementations. Counted wraps the
// existing simulated-PRAM path (the resilient supervisor over
// internal/presorted and internal/unsorted — bit-identical semantics,
// kept for experiments and as the parity oracle); Native wraps
// internal/native, the direct host-speed path the serving layer defaults
// to. The root Run2D/Run3D/RunAuto2D/RunAuto3D entry points and
// internal/serve dispatch through this interface, so a backend choice is
// one value (resilient.Backend), not a different call matrix.
package engine

import (
	"context"
	"runtime/debug"

	"inplacehull/internal/geom"
	"inplacehull/internal/hullerr"
	"inplacehull/internal/native"
	"inplacehull/internal/pram"
	"inplacehull/internal/presorted"
	"inplacehull/internal/resilient"
	"inplacehull/internal/rng"
	"inplacehull/internal/unsorted"
)

// Engine executes the paper's five algorithms. Implementations must
// return typed *hullerr.Error failures and reports stamped with their
// backend; the hull outputs of the two implementations are canonical and
// parity-gated against each other (see the root backend parity suite).
type Engine interface {
	// Backend identifies the implementation.
	Backend() resilient.Backend
	// Hull2D is the §4.1 unsorted-input upper hull.
	Hull2D(ctx context.Context, pts []geom.Point, opt unsorted.Options, pol resilient.Policy) (unsorted.Result2D, resilient.Report, error)
	// Presorted is the §2.2 constant-time algorithm (strictly x-sorted input).
	Presorted(ctx context.Context, pts []geom.Point, pol resilient.Policy) (presorted.Result, resilient.Report, error)
	// LogStar is the §2.5 O(log* n)-step algorithm (sorted input).
	LogStar(ctx context.Context, pts []geom.Point, pol resilient.Policy) (presorted.Result, resilient.Report, error)
	// Optimal is the §2.6 processor-optimal schedule. The scheduling
	// numbers (processors, virtual time) are counted-engine constructions;
	// the native engine returns the same hull with a zero schedule.
	Optimal(ctx context.Context, pts []geom.Point) (presorted.OptimalReport, resilient.Report, error)
	// Hull3D is the §4.3 cap structure.
	Hull3D(ctx context.Context, pts []geom.Point3, opt unsorted.Options3D, pol resilient.Policy) (unsorted.Result3D, resilient.Report, error)
}

// Counted returns the simulated-PRAM engine: every call runs on m through
// the resilient supervisor (reseeded retries, degradation ladder) with
// randomness from rnd — exactly the semantics of the pre-backend API.
func Counted(m *pram.Machine, rnd *rng.Stream) Engine { return counted{m: m, rnd: rnd} }

type counted struct {
	m   *pram.Machine
	rnd *rng.Stream
}

func (c counted) Backend() resilient.Backend { return resilient.BackendCounted }

func (c counted) Hull2D(ctx context.Context, pts []geom.Point, opt unsorted.Options, pol resilient.Policy) (unsorted.Result2D, resilient.Report, error) {
	return resilient.Hull2DOpts(ctx, c.m, c.rnd, pts, opt, pol)
}

func (c counted) Presorted(ctx context.Context, pts []geom.Point, pol resilient.Policy) (presorted.Result, resilient.Report, error) {
	return resilient.PresortedHull(ctx, c.m, c.rnd, pts, pol)
}

func (c counted) LogStar(ctx context.Context, pts []geom.Point, pol resilient.Policy) (presorted.Result, resilient.Report, error) {
	return resilient.LogStarHull(ctx, c.m, c.rnd, pts, pol)
}

func (c counted) Optimal(ctx context.Context, pts []geom.Point) (presorted.OptimalReport, resilient.Report, error) {
	const op = "engine.Optimal"
	before := c.m.Snap()
	c.m.SetContext(ctx)
	defer c.m.SetContext(nil)
	r, err := func() (out presorted.OptimalReport, err error) {
		defer func() {
			if rec := recover(); rec != nil {
				if cc, ok := pram.AsCancellation(rec); ok {
					err = hullerr.FromContext(op, cc.Cause)
					return
				}
				panic(rec)
			}
		}()
		return presorted.Optimal(c.m, c.rnd, pts)
	}()
	d := c.m.Delta(before)
	rep := resilient.Report{Attempts: 1, Tier: resilient.TierRandomized,
		TotalSteps: d.Time, TotalWork: d.Work, ExecBackend: resilient.BackendCounted}
	return r, rep, err
}

func (c counted) Hull3D(ctx context.Context, pts []geom.Point3, opt unsorted.Options3D, pol resilient.Policy) (unsorted.Result3D, resilient.Report, error) {
	return resilient.Hull3DOpts(ctx, c.m, c.rnd, pts, opt, pol)
}

// Native returns the direct engine. seed drives the only randomness the
// native path has (the 3-d incremental insertion order); sink, when
// non-nil, receives wall-time spans and steps==0 item charges. The native
// path needs no supervision — its algorithms are deterministic and
// oracle-checked where randomness is involved — so Policy is accepted for
// interface symmetry and ignored, and reports always show one attempt.
// Context is honored at call boundaries (native runs are short; there are
// no step barriers to poll between).
func Native(seed uint64, sink pram.Sink) Engine { return nativeEngine{seed: seed, sink: sink} }

type nativeEngine struct {
	seed uint64
	sink pram.Sink
}

func (nativeEngine) Backend() resilient.Backend { return resilient.BackendNative }

// nativeReport is the direct engine's account: one attempt on the primary
// path, no counted cost (the native backend has no step or work counters —
// wall time flows through the sink instead).
func nativeReport() resilient.Report {
	return resilient.Report{Attempts: 1, Tier: resilient.TierRandomized, ExecBackend: resilient.BackendNative}
}

// run guards one native call: a done context fails typed before compute,
// and a panic becomes a typed Internal error carrying the stack — the same
// "typed error, never a panic" contract the supervisor gives counted runs.
func run[T any](ctx context.Context, op string, fn func() (T, error)) (out T, rep resilient.Report, err error) {
	rep = nativeReport()
	if ctx != nil {
		if cerr := ctx.Err(); cerr != nil {
			err = hullerr.FromContext(op, cerr)
			return
		}
	}
	defer func() {
		if rec := recover(); rec != nil {
			err = hullerr.New(hullerr.Internal, op, "panic: %v\n%s", rec, debug.Stack())
		}
	}()
	out, err = fn()
	return
}

func (e nativeEngine) Hull2D(ctx context.Context, pts []geom.Point, _ unsorted.Options, _ resilient.Policy) (unsorted.Result2D, resilient.Report, error) {
	return run(ctx, "engine.Native.Hull2D", func() (unsorted.Result2D, error) {
		return native.Upper2D(pts, e.sink)
	})
}

func (e nativeEngine) Presorted(ctx context.Context, pts []geom.Point, _ resilient.Policy) (presorted.Result, resilient.Report, error) {
	return run(ctx, "engine.Native.Presorted", func() (presorted.Result, error) {
		return native.Presorted(pts, e.sink)
	})
}

func (e nativeEngine) LogStar(ctx context.Context, pts []geom.Point, pol resilient.Policy) (presorted.Result, resilient.Report, error) {
	// The §2.2 and §2.5 algorithms differ only in how they spend PRAM
	// resources; their canonical outputs coincide, so the native backend
	// shares one implementation.
	return run(ctx, "engine.Native.LogStar", func() (presorted.Result, error) {
		return native.Presorted(pts, e.sink)
	})
}

func (e nativeEngine) Optimal(ctx context.Context, pts []geom.Point) (presorted.OptimalReport, resilient.Report, error) {
	return run(ctx, "engine.Native.Optimal", func() (presorted.OptimalReport, error) {
		r, err := native.Presorted(pts, e.sink)
		return presorted.OptimalReport{Result: r}, err
	})
}

func (e nativeEngine) Hull3D(ctx context.Context, pts []geom.Point3, _ unsorted.Options3D, _ resilient.Policy) (unsorted.Result3D, resilient.Report, error) {
	return run(ctx, "engine.Native.Hull3D", func() (unsorted.Result3D, error) {
		return native.Hull3D(e.seed, pts, e.sink)
	})
}

// NativeHull3DFrom is the culled-admission variant of the native 3-d
// path: the incremental hull runs over culled, caps are assigned and
// oracle-checked over full (see native.Hull3DFrom). It sits outside the
// Engine interface because only the native backend can honor it — counted
// 3-d facet identities are not stable under input subsetting.
func NativeHull3DFrom(ctx context.Context, seed uint64, full, culled []geom.Point3, sink pram.Sink) (unsorted.Result3D, resilient.Report, error) {
	return run(ctx, "engine.Native.Hull3DFrom", func() (unsorted.Result3D, error) {
		return native.Hull3DFrom(seed, full, culled, sink)
	})
}

// NativeChain2D is the chain-only native entry with the engine's guard
// semantics (context check, panic-to-typed-Internal). The streaming
// subsystem's full-rebuild fallback runs through it so a poisoned rebuild
// surfaces as a typed error the mutation path can roll back on.
func NativeChain2D(ctx context.Context, pts []geom.Point, sink pram.Sink) ([]geom.Point, resilient.Report, error) {
	return run(ctx, "engine.Native.Chain2D", func() ([]geom.Point, error) {
		return native.Chain2D(pts, sink)
	})
}
