package shard

import (
	"context"
	"testing"

	"inplacehull/internal/cull"
	"inplacehull/internal/hull2d"
	"inplacehull/internal/obs"
	"inplacehull/internal/workload"
)

// TestPerShardCullKeepsMergeExact: with the opt-in per-shard filter on,
// every workload's merged chain is still bit-identical to the sequential
// oracle — the filter only ever removes points certainly strictly inside
// the shard hull, so each shard's canonical chain (and hence the
// common-tangent merge) is unchanged. The discard counter proves the
// filter actually ran.
func TestPerShardCullKeepsMergeExact(t *testing.T) {
	for _, pol := range []cull.Policy{cull.PolicyQuad, cull.PolicyOctagon, cull.PolicyCoarse} {
		x := obs.NewMetrics()
		coord := New(Config{Workers: newLocalWorkers(t, 3), Cull: pol, Metrics: x})
		for _, g := range workload.Gens2D {
			for _, n := range []int{5, 64, 300, 2000} {
				pts := g.Gen(uint64(n), n)
				res, err := coord.Gather2D(context.Background(), pts, 3, 42)
				if err != nil {
					t.Fatalf("pol=%v gen=%s n=%d: %v", pol, g.Name, n, err)
				}
				if s := sameChain(hull2d.UpperHull(pts), res.Chain); s != "" {
					t.Fatalf("pol=%v gen=%s n=%d: %s", pol, g.Name, n, s)
				}
			}
		}
		if x.ServeCounter("shard_cull_points_total") == 0 {
			t.Fatalf("pol=%v: no points culled across all workloads", pol)
		}
	}
}

// TestPerShardCullDefaultsOff: the zero-value Config never re-filters —
// the serve layer already culls before scattering.
func TestPerShardCullDefaultsOff(t *testing.T) {
	x := obs.NewMetrics()
	coord := New(Config{Workers: newLocalWorkers(t, 2), Metrics: x})
	pts := workload.Disk(9, 1000)
	if _, err := coord.Gather2D(context.Background(), pts, 2, 7); err != nil {
		t.Fatal(err)
	}
	if got := x.ServeCounter("shard_cull_points_total"); got != 0 {
		t.Fatalf("zero-value Config culled %d points", got)
	}
}
