package shard

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"time"

	"inplacehull/internal/geom"
	"inplacehull/internal/hullerr"
	"inplacehull/internal/hullhash"
)

// RequestIDHeader is the tracing header the serving layer propagates:
// inbound requests keep their caller-supplied ID, requests without one get
// a server-minted ID, and scatter fan-out forwards the ID to every peer so
// one query's shard attempts correlate across the cluster.
const RequestIDHeader = "X-Request-ID"

// ridKey is the context key carrying the request ID.
type ridKey struct{}

// WithRequestID returns ctx carrying the request ID.
func WithRequestID(ctx context.Context, id string) context.Context {
	if id == "" {
		return ctx
	}
	return context.WithValue(ctx, ridKey{}, id)
}

// RequestIDFrom extracts the request ID riding ctx ("" if none).
func RequestIDFrom(ctx context.Context) string {
	id, _ := ctx.Value(ridKey{}).(string)
	return id
}

// ScatterPath is the shard-computation endpoint a hullserve peer exposes.
const ScatterPath = "/v1/scatter2d"

// WireRequest is the JSON body of POST /v1/scatter2d. float64 coordinates
// and uint64 checksum halves survive the JSON round trip exactly
// (shortest-representation encoding), so the peer can verify the content
// hash of the bytes it decoded against the coordinator's.
type WireRequest struct {
	Shard   int         `json:"shard"`
	Attempt int         `json:"attempt"`
	Seed    uint64      `json:"seed"`
	SumHi   uint64      `json:"sum_hi"`
	SumLo   uint64      `json:"sum_lo"`
	Points  [][]float64 `json:"points"`
}

// WireResponse is the JSON answer: the canonical strict upper hull of the
// shard plus the checksum of the points the peer actually received.
type WireResponse struct {
	Shard int         `json:"shard"`
	SumHi uint64      `json:"sum_hi"`
	SumLo uint64      `json:"sum_lo"`
	Chain [][]float64 `json:"chain"`
	Tier  string      `json:"tier,omitempty"`
}

// wireError mirrors the serving layer's error envelope.
type wireError struct {
	Error string `json:"error"`
	Kind  string `json:"kind"`
}

// EncodeRequest converts a shard request to its wire form.
func EncodeRequest(req Request) WireRequest {
	w := WireRequest{Shard: req.Shard, Attempt: req.Attempt, Seed: req.Seed,
		SumHi: req.Sum.Hi, SumLo: req.Sum.Lo, Points: make([][]float64, len(req.Points))}
	for i, p := range req.Points {
		w.Points[i] = []float64{p.X, p.Y}
	}
	return w
}

// DecodeRequest converts a wire request back to a shard request. Malformed
// coordinate arity is a typed invalid-input error.
func DecodeRequest(w WireRequest) (Request, error) {
	req := Request{Shard: w.Shard, Attempt: w.Attempt, Seed: w.Seed,
		Sum: hullhash.Sum{Hi: w.SumHi, Lo: w.SumLo}}
	req.Points = make([]geom.Point, len(w.Points))
	for i, c := range w.Points {
		if len(c) != 2 {
			return Request{}, hullerr.New(hullerr.InvalidInput, "shard.DecodeRequest",
				"point %d has %d coordinates, want 2", i, len(c))
		}
		req.Points[i] = geom.Point{X: c[0], Y: c[1]}
	}
	return req, nil
}

// EncodeResponse converts a shard response to its wire form.
func EncodeResponse(resp Response) WireResponse {
	w := WireResponse{Shard: resp.Shard, SumHi: resp.Sum.Hi, SumLo: resp.Sum.Lo,
		Tier: resp.Tier, Chain: make([][]float64, len(resp.Chain))}
	for i, p := range resp.Chain {
		w.Chain[i] = []float64{p.X, p.Y}
	}
	return w
}

// DecodeResponse converts a wire response back to a shard response.
func DecodeResponse(w WireResponse) (Response, error) {
	resp := Response{Shard: w.Shard, Sum: hullhash.Sum{Hi: w.SumHi, Lo: w.SumLo}, Tier: w.Tier}
	resp.Chain = make([]geom.Point, len(w.Chain))
	for i, c := range w.Chain {
		if len(c) != 2 {
			return Response{}, hullerr.New(hullerr.Internal, "shard.DecodeResponse",
				"chain vertex %d has %d coordinates, want 2", i, len(c))
		}
		resp.Chain[i] = geom.Point{X: c[0], Y: c[1]}
	}
	return resp, nil
}

// KindFromName inverts hullerr.Kind.String — the wire carries kinds by
// name, and the coordinator wants its retry/breaker decisions to see the
// peer's typed taxonomy, not a flattened transport error.
func KindFromName(name string) (hullerr.Kind, bool) {
	for k := hullerr.InvalidInput; k <= hullerr.PartialHull; k++ {
		if k.String() == name {
			return k, true
		}
	}
	return hullerr.Internal, false
}

// HTTPWorker computes shards on a remote hullserve peer via POST
// {Base}/v1/scatter2d. Deadlines propagate through the request context;
// typed error kinds survive the wire via the error envelope's kind name.
type HTTPWorker struct {
	// Base is the peer's base URL, e.g. "http://hull-1:8080".
	Base string
	// Client, when nil, defaults to a client with a 30s safety timeout
	// (per-attempt deadlines normally bind first via the context).
	Client *http.Client
}

// Name implements Worker.
func (w *HTTPWorker) Name() string { return w.Base }

func (w *HTTPWorker) client() *http.Client {
	if w.Client != nil {
		return w.Client
	}
	return &http.Client{Timeout: 30 * time.Second}
}

// Partial implements Worker.
func (w *HTTPWorker) Partial(ctx context.Context, req Request) (Response, error) {
	const op = "shard.HTTPWorker"
	body, err := json.Marshal(EncodeRequest(req))
	if err != nil {
		return Response{}, hullerr.New(hullerr.Internal, op, "encode shard %d: %v", req.Shard, err)
	}
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, w.Base+ScatterPath, bytes.NewReader(body))
	if err != nil {
		return Response{}, hullerr.New(hullerr.Internal, op, "build request: %v", err)
	}
	hreq.Header.Set("Content-Type", "application/json")
	if id := RequestIDFrom(ctx); id != "" {
		hreq.Header.Set(RequestIDHeader, id)
	}
	hresp, err := w.client().Do(hreq)
	if err != nil {
		if ctxErr := ctx.Err(); ctxErr != nil {
			return Response{}, hullerr.FromContext(op, ctxErr)
		}
		return Response{}, hullerr.New(hullerr.Internal, op, "peer %s unreachable: %v", w.Base, err)
	}
	defer hresp.Body.Close()
	if hresp.StatusCode != http.StatusOK {
		var we wireError
		_ = json.NewDecoder(hresp.Body).Decode(&we)
		kind, ok := KindFromName(we.Kind)
		if !ok {
			return Response{}, hullerr.New(hullerr.Internal, op,
				"peer %s: HTTP %d: %s", w.Base, hresp.StatusCode, firstNonEmpty(we.Error, hresp.Status))
		}
		return Response{}, hullerr.New(kind, op, "peer %s: %s", w.Base, we.Error)
	}
	var wr WireResponse
	if err := json.NewDecoder(hresp.Body).Decode(&wr); err != nil {
		return Response{}, hullerr.New(hullerr.Internal, op, "peer %s: bad response body: %v", w.Base, err)
	}
	return DecodeResponse(wr)
}

func firstNonEmpty(a, b string) string {
	if a != "" {
		return a
	}
	return b
}
