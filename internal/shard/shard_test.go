package shard

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"inplacehull/internal/chain"
	"inplacehull/internal/fault"
	"inplacehull/internal/geom"
	"inplacehull/internal/hull2d"
	"inplacehull/internal/hullerr"
	"inplacehull/internal/hullhash"
	"inplacehull/internal/pram"
	"inplacehull/internal/workload"
)

// newLocalWorkers builds k LocalWorkers over one fleet; the cleanup closes
// the fleet.
func newLocalWorkers(t *testing.T, k int) []Worker {
	t.Helper()
	fleet := pram.NewFleet(k, pram.WithWorkers(1))
	t.Cleanup(fleet.Close)
	ws := make([]Worker, k)
	for i := range ws {
		ws[i] = &LocalWorker{ID: fmt.Sprintf("local-%d", i), Fleet: fleet}
	}
	return ws
}

func TestSplitXKeepsEqualXRunsTogether(t *testing.T) {
	var pts []geom.Point
	// Ten columns of three points each: any naive n/k cut would split a
	// column.
	for x := 0; x < 10; x++ {
		for y := 0; y < 3; y++ {
			pts = append(pts, geom.Point{X: float64(x), Y: float64(y)})
		}
	}
	for k := 1; k <= 7; k++ {
		p := SplitX(pts, k)
		total := 0
		var prevMax float64 = -1
		for s := 0; s < k; s++ {
			sh := p.Points(s)
			total += len(sh)
			if len(sh) == 0 {
				continue
			}
			if sh[0].X <= prevMax {
				t.Fatalf("k=%d shard %d starts at x=%v, earlier shard ended at x=%v", k, s, sh[0].X, prevMax)
			}
			prevMax = sh[len(sh)-1].X
		}
		if total != len(pts) {
			t.Fatalf("k=%d covers %d points, want %d", k, total, len(pts))
		}
	}
}

func TestMergeChainsMatchesReference(t *testing.T) {
	for _, g := range workload.Gens2D {
		for _, n := range []int{1, 2, 7, 64, 257} {
			for k := 1; k <= 5; k++ {
				pts := g.Gen(uint64(n*31+k), n)
				plan := SplitX(pts, k)
				var chains []chain.Chain
				for _, s := range plan.NonEmpty() {
					sh := plan.Points(s)
					chains = append(chains, chain.FromSorted(sh))
				}
				got := MergeChains(chains).V
				want := hull2d.UpperHull(pts)
				if s := sameChain(want, got); s != "" {
					t.Fatalf("gen=%s n=%d k=%d: %s", g.Name, n, k, s)
				}
			}
		}
	}
}

func TestCanonicalRepairsDeviations(t *testing.T) {
	// A vertical column at the right end plus a collinear top edge: the
	// documented deviations of the parallel algorithms' chains.
	pts := []geom.Point{
		{X: 0, Y: 0}, {X: 1, Y: 1}, {X: 2, Y: 2}, {X: 3, Y: 3},
		{X: 4, Y: 0}, {X: 4, Y: 4}, {X: 4, Y: 2},
	}
	sorted := SplitX(pts, 1).Sorted
	want := hull2d.UpperHull(pts)
	// Simulate a subdivided collinear edge and a missing column top.
	deviant := []geom.Point{{X: 0, Y: 0}, {X: 1, Y: 1}, {X: 2, Y: 2}, {X: 3, Y: 3}}
	if s := sameChain(want, Canonical(sorted, deviant)); s != "" {
		t.Fatalf("canonicalization failed: %s", s)
	}
	// Already-canonical chains pass through unchanged.
	if s := sameChain(want, Canonical(sorted, want)); s != "" {
		t.Fatalf("canonical fixed point violated: %s", s)
	}
}

func TestGather2DExactMatchesSingleNode(t *testing.T) {
	coord := New(Config{Workers: newLocalWorkers(t, 3)})
	for _, g := range workload.Gens2D {
		for _, n := range []int{5, 64, 300} {
			pts := g.Gen(uint64(n), n)
			res, err := coord.Gather2D(context.Background(), pts, 3, 42)
			if err != nil {
				t.Fatalf("gen=%s n=%d: %v", g.Name, n, err)
			}
			if s := sameChain(hull2d.UpperHull(pts), res.Chain); s != "" {
				t.Fatalf("gen=%s n=%d: %s", g.Name, n, s)
			}
		}
	}
}

func TestGather2DEmptyAndTiny(t *testing.T) {
	coord := New(Config{Workers: newLocalWorkers(t, 2)})
	res, err := coord.Gather2D(context.Background(), nil, 2, 1)
	if err != nil || len(res.Chain) != 0 {
		t.Fatalf("empty input: chain=%v err=%v", res.Chain, err)
	}
	one := []geom.Point{{X: 1, Y: 2}}
	res, err = coord.Gather2D(context.Background(), one, 2, 1)
	if err != nil || len(res.Chain) != 1 || res.Chain[0] != one[0] {
		t.Fatalf("single point: chain=%v err=%v", res.Chain, err)
	}
}

func TestGather2DRejectsNonFinite(t *testing.T) {
	coord := New(Config{Workers: newLocalWorkers(t, 2)})
	bad := []geom.Point{{X: 0, Y: 0}, {X: inf(), Y: 1}}
	_, err := coord.Gather2D(context.Background(), bad, 2, 1)
	if !errors.Is(err, hullerr.ErrNonFinite) {
		t.Fatalf("want ErrNonFinite, got %v", err)
	}
}

func inf() float64  { return 1.0 / zero() }
func zero() float64 { return 0 }

// failNWorker fails its first n calls, then delegates.
type failNWorker struct {
	inner Worker
	n     atomic.Int64
	calls atomic.Int64
}

func (w *failNWorker) Name() string { return w.inner.Name() + "+failN" }
func (w *failNWorker) Partial(ctx context.Context, req Request) (Response, error) {
	w.calls.Add(1)
	if w.n.Add(-1) >= 0 {
		return Response{}, hullerr.New(hullerr.Internal, "test", "synthetic failure")
	}
	return w.inner.Partial(ctx, req)
}

func TestRetryRecoversFromTransientFailures(t *testing.T) {
	inner := newLocalWorkers(t, 1)[0]
	fw := &failNWorker{inner: inner}
	fw.n.Store(1) // first attempt fails, retry succeeds
	coord := New(Config{Workers: []Worker{fw}, MaxAttempts: 3, Backoff: time.Microsecond})
	pts := workload.Gens2D[0].Gen(7, 100)
	res, err := coord.Gather2D(context.Background(), pts, 1, 7)
	if err != nil {
		t.Fatalf("retry did not recover: %v", err)
	}
	if res.Retries == 0 {
		t.Fatalf("expected at least one retry, got %d", res.Retries)
	}
	if s := sameChain(hull2d.UpperHull(pts), res.Chain); s != "" {
		t.Fatal(s)
	}
}

func TestCorruptResponsesAreDetectedAndRetried(t *testing.T) {
	inner := newLocalWorkers(t, 1)[0]
	plan := fault.Plan{Seed: 99, MaxPerSite: 1}
	plan.Rates[fault.ShardCorrupt] = 1
	cw := &ChaosWorker{Inner: inner, Inj: fault.NewInjector(plan)}
	coord := New(Config{Workers: []Worker{cw}, MaxAttempts: 3, Backoff: time.Microsecond})
	pts := workload.Gens2D[0].Gen(13, 128)
	res, err := coord.Gather2D(context.Background(), pts, 1, 13)
	if err != nil {
		t.Fatalf("corrupt response was not retried past: %v", err)
	}
	if s := sameChain(hull2d.UpperHull(pts), res.Chain); s != "" {
		t.Fatalf("corrupt response leaked into the answer: %s", s)
	}
	if res.Retries == 0 {
		t.Fatal("corruption did not cost a retry — was it detected at all?")
	}
}

// downWorker always fails — a dead peer.
type downWorker struct{ name string }

func (w *downWorker) Name() string { return w.name }
func (w *downWorker) Partial(ctx context.Context, req Request) (Response, error) {
	return Response{}, hullerr.New(hullerr.Internal, "test", "peer %s is down", w.name)
}

func TestReScatterRoutesAroundDeadPeer(t *testing.T) {
	ws := newLocalWorkers(t, 1)
	coord := New(Config{
		Workers:     []Worker{&downWorker{name: "dead"}, ws[0]},
		MaxAttempts: 3, Backoff: time.Microsecond,
	})
	pts := workload.Gens2D[0].Gen(5, 200)
	res, err := coord.Gather2D(context.Background(), pts, 2, 5)
	if err != nil {
		t.Fatalf("re-scatter did not route around the dead peer: %v", err)
	}
	if s := sameChain(hull2d.UpperHull(pts), res.Chain); s != "" {
		t.Fatal(s)
	}
}

func TestPartialCoverageIsTypedAndExactForCoveredShards(t *testing.T) {
	// Worker 0 is dead; worker 1 works. With 2 shards, MaxAttempts 1 and
	// no rotation room... rotation WOULD save it, so pin MaxAttempts such
	// that shard 0's attempts all land on the dead worker: with 2 workers
	// and attempt rotation (s+a+off), a dead worker plus a live one always
	// recovers. Force partial instead with BOTH workers dead for one shard
	// via a shard-keyed failure.
	live := newLocalWorkers(t, 1)[0]
	shard0Down := &shardDownWorker{inner: live, downShard: 0}
	coord := New(Config{
		Workers:      []Worker{shard0Down},
		MaxAttempts:  2,
		Backoff:      time.Microsecond,
		AllowPartial: true,
		MinCoverage:  0.1,
	})
	pts := workload.Gens2D[0].Gen(11, 300)
	res, err := coord.Gather2D(context.Background(), pts, 3, 11)
	if !errors.Is(err, hullerr.ErrPartialHull) {
		t.Fatalf("want typed PartialHull, got %v", err)
	}
	if len(res.Missing) == 0 {
		t.Fatal("partial result names no missing shards")
	}
	if detail := checkPartial(pts, 3, res); detail != "" {
		t.Fatal(detail)
	}
}

// shardDownWorker fails every request for one shard index.
type shardDownWorker struct {
	inner     Worker
	downShard int
}

func (w *shardDownWorker) Name() string { return w.inner.Name() }
func (w *shardDownWorker) Partial(ctx context.Context, req Request) (Response, error) {
	if req.Shard == w.downShard {
		return Response{}, hullerr.New(hullerr.Internal, "test", "shard %d unservable", req.Shard)
	}
	return w.inner.Partial(ctx, req)
}

func TestPartialBelowMinCoverageFailsTyped(t *testing.T) {
	coord := New(Config{
		Workers:      []Worker{&downWorker{name: "dead"}},
		MaxAttempts:  2,
		Backoff:      time.Microsecond,
		AllowPartial: true,
	})
	pts := workload.Gens2D[0].Gen(3, 100)
	_, err := coord.Gather2D(context.Background(), pts, 2, 3)
	if err == nil || !hullerr.IsTyped(err) {
		t.Fatalf("want typed failure with zero coverage, got %v", err)
	}
	if errors.Is(err, hullerr.ErrPartialHull) {
		t.Fatalf("zero coverage must not be a partial answer: %v", err)
	}
}

// slowWorker delays before delegating.
type slowWorker struct {
	inner Worker
	delay time.Duration
}

func (w *slowWorker) Name() string { return w.inner.Name() + "+slow" }
func (w *slowWorker) Partial(ctx context.Context, req Request) (Response, error) {
	if !sleepCtx(ctx, w.delay) {
		return Response{}, hullerr.FromContext("test.slow", ctx.Err())
	}
	return w.inner.Partial(ctx, req)
}

func TestHedgeBeatsStraggler(t *testing.T) {
	ws := newLocalWorkers(t, 2)
	coord := New(Config{
		Workers:      []Worker{&slowWorker{inner: ws[0], delay: 300 * time.Millisecond}, ws[1]},
		MaxAttempts:  1,
		ShardTimeout: time.Second,
		HedgeAfter:   2 * time.Millisecond,
	})
	pts := workload.Gens2D[0].Gen(17, 100)
	start := time.Now()
	res, err := coord.Gather2D(context.Background(), pts, 1, 17)
	if err != nil {
		t.Fatalf("hedged gather failed: %v", err)
	}
	if res.Hedges == 0 {
		t.Fatal("expected a hedge launch against the straggler")
	}
	if elapsed := time.Since(start); elapsed > 250*time.Millisecond {
		t.Fatalf("hedge did not beat the straggler: %v elapsed", elapsed)
	}
	if s := sameChain(hull2d.UpperHull(pts), res.Chain); s != "" {
		t.Fatal(s)
	}
}

func TestBreakerOpensAndRecovers(t *testing.T) {
	b := newBreaker(2, 10*time.Millisecond)
	now := time.Unix(0, 0)
	b.now = func() time.Time { return now }
	opens := 0
	onOpen := func() { opens++ }
	if !b.allow() {
		t.Fatal("fresh breaker must allow")
	}
	b.report(false, onOpen)
	b.report(false, onOpen)
	if opens != 1 {
		t.Fatalf("breaker opened %d times, want 1", opens)
	}
	if b.allow() {
		t.Fatal("open breaker within cooldown must refuse")
	}
	now = now.Add(11 * time.Millisecond)
	if !b.allow() {
		t.Fatal("cooled-down breaker must admit a half-open probe")
	}
	if b.allow() {
		t.Fatal("only one half-open probe at a time")
	}
	b.report(true, onOpen)
	if !b.allow() {
		t.Fatal("successful probe must re-close the breaker")
	}
	if got := b.snapshot("p").State; got != "closed" {
		t.Fatalf("state %q, want closed", got)
	}
}

func TestVerifyRejectsEveryCorruption(t *testing.T) {
	pts := SplitX(workload.Gens2D[0].Gen(23, 64), 1).Sorted
	h := hullhash.New()
	h.Points2(pts)
	req := Request{Shard: 0, Points: pts, Sum: h.Sum()}
	members := memberSet(pts)
	good := Response{Shard: 0, Chain: hull2d.UpperHull(pts), Sum: req.Sum}
	if err := verify(req, good, members); err != nil {
		t.Fatalf("honest response rejected: %v", err)
	}
	for name, mutate := range map[string]func(Response) Response{
		"wrong shard":    func(r Response) Response { r.Shard = 1; return r },
		"checksum":       func(r Response) Response { r.Sum.Lo ^= 1; return r },
		"lifted vertex":  func(r Response) Response { r = cloneResp(r); r.Chain[0].Y += 1e9; return r },
		"dropped vertex": func(r Response) Response { r = cloneResp(r); r.Chain = r.Chain[:len(r.Chain)-1]; return r },
		"foreign vertex": func(r Response) Response { r = cloneResp(r); r.Chain[0] = geom.Point{X: -1e9, Y: 1e9}; return r },
		"empty chain":    func(r Response) Response { r.Chain = nil; return r },
	} {
		if err := verify(req, mutate(good), members); err == nil {
			t.Fatalf("%s corruption passed verification", name)
		}
	}
}

func cloneResp(r Response) Response {
	r.Chain = append([]geom.Point(nil), r.Chain...)
	return r
}

func TestHTTPWorkerRoundTrip(t *testing.T) {
	// A fake peer implementing the scatter protocol over a real HTTP
	// server: compute the canonical hull, echo the received checksum.
	srv := httptest.NewServer(scatterStub(t))
	defer srv.Close()
	w := &HTTPWorker{Base: srv.URL}
	pts := SplitX(workload.Gens2D[0].Gen(29, 120), 1).Sorted
	h := hullhash.New()
	h.Points2(pts)
	req := Request{Shard: 0, Points: pts, Seed: 29, Sum: h.Sum()}
	resp, err := w.Partial(context.Background(), req)
	if err != nil {
		t.Fatalf("HTTP worker failed: %v", err)
	}
	if err := verify(req, resp, memberSet(pts)); err != nil {
		t.Fatalf("HTTP response failed verification: %v", err)
	}
	coord := New(Config{Workers: []Worker{w}})
	res, err := coord.Gather2D(context.Background(), pts, 1, 29)
	if err != nil {
		t.Fatalf("gather over HTTP failed: %v", err)
	}
	if s := sameChain(hull2d.UpperHull(pts), res.Chain); s != "" {
		t.Fatal(s)
	}
}

func TestHTTPWorkerMapsTransportFailuresTyped(t *testing.T) {
	w := &HTTPWorker{Base: "http://127.0.0.1:1"} // nothing listens here
	_, err := w.Partial(context.Background(), Request{})
	if err == nil || !hullerr.IsTyped(err) {
		t.Fatalf("unreachable peer must fail typed, got %v", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Nanosecond)
	defer cancel()
	time.Sleep(time.Millisecond)
	_, err = w.Partial(ctx, Request{})
	if !errors.Is(err, hullerr.ErrDeadline) && !errors.Is(err, hullerr.ErrCanceled) {
		t.Fatalf("dead context must map to a typed context error, got %v", err)
	}
}

// scatterStub is a minimal peer: decode, compute the canonical hull with
// the reference oracle, echo the checksum of the received bytes.
func scatterStub(t *testing.T) http.Handler {
	t.Helper()
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		var wr WireRequest
		if err := json.NewDecoder(req.Body).Decode(&wr); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		sreq, err := DecodeRequest(wr)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		h := hullhash.New()
		h.Points2(sreq.Points)
		resp := Response{Shard: sreq.Shard, Chain: hull2d.UpperHull(sreq.Points), Sum: h.Sum()}
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(EncodeResponse(resp))
	})
}

func TestSoakSmokeAndGoroutineHygiene(t *testing.T) {
	if testing.Short() {
		t.Skip("soak smoke skipped in -short")
	}
	before := runtime.NumGoroutine()
	sum := RunSoak(0xE20, 60)
	if sum.Bad() {
		for _, f := range sum.Failures {
			t.Errorf("scenario %d (%s, %s, n=%d k=%d seed=%#x): %s: %s",
				f.Scenario.ID, f.Scenario.Mix, f.Scenario.Gen, f.Scenario.N,
				f.Scenario.K, f.Scenario.Seed, f.Outcome, f.Detail)
		}
		t.Fatalf("%d contract violations in %d scenarios", len(sum.Failures), sum.Scenarios)
	}
	if sum.ByOutcome[0] == 0 {
		t.Fatal("soak produced no clean runs — scenarios are over-poisoned")
	}
	// Goroutine hygiene: abandoned hedges and stragglers must all drain.
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > before+2 && time.Now().Before(deadline) {
		time.Sleep(20 * time.Millisecond)
	}
	if after := runtime.NumGoroutine(); after > before+2 {
		t.Fatalf("goroutine leak: %d before soak, %d after", before, after)
	}
}

func TestSoakScenariosAreDeterministic(t *testing.T) {
	a := SoakScenarios(7, 50)
	b := SoakScenarios(7, 50)
	for i := range a {
		if fmt.Sprint(a[i]) != fmt.Sprint(b[i]) {
			t.Fatalf("scenario %d differs between derivations", i)
		}
	}
}
