package shard

import (
	"context"
	"errors"
	"fmt"
	"time"

	"inplacehull/internal/fault"
	"inplacehull/internal/fault/soak"
	"inplacehull/internal/geom"
	"inplacehull/internal/hull2d"
	"inplacehull/internal/hullerr"
	"inplacehull/internal/pram"
	"inplacehull/internal/resilient"
	"inplacehull/internal/rng"
	"inplacehull/internal/workload"
)

// This file is the chaos-soak harness behind experiment E20: large batches
// of seeded scatter-gather scenarios under the four network failure sites
// (shard-slow, shard-drop, shard-corrupt, peer-down), alone and mixed, on
// top of optional PRAM-level faults inside the shard workers. The
// distributed robustness contract under test: under ANY injection mix,
// every Gather2D call ends in exactly one of
//
//   - an exact answer bit-identical to the single-node reference hull,
//   - a partial answer carrying the typed PartialHull error whose chain is
//     bit-identical to the reference hull of the covered shards, or
//   - a typed *hullerr.Error —
//
// never a silently wrong hull, an untyped error, or a panic.
//
// Determinism note: every injection decision is a pure function of
// (per-worker seed, site, shard, retry rung), so WHAT a worker does for a
// given rung never varies. Which worker a hedge lands on — and therefore
// per-run counter values — can vary with goroutine scheduling; outcomes
// cannot, because every worker's verified answer for a shard is the same
// canonical chain.

// Mix names a network-fault site combination a soak batch runs under.
type Mix struct {
	Name  string
	Sites []fault.Site
}

// Mixes are the E20 batches: each network site alone, then all four.
var Mixes = []Mix{
	{Name: "slow", Sites: []fault.Site{fault.ShardSlow}},
	{Name: "drop", Sites: []fault.Site{fault.ShardDrop}},
	{Name: "corrupt", Sites: []fault.Site{fault.ShardCorrupt}},
	{Name: "down", Sites: []fault.Site{fault.PeerDown}},
	{Name: "mixed", Sites: fault.NetworkSites},
}

// SoakScenario is one fully deterministic scatter-gather soak run.
type SoakScenario struct {
	ID  int
	Mix string
	Gen string
	// N points split across K shards on K workers.
	N, K int
	// Seed drives the workload generator and the query seed.
	Seed uint64
	// Plan carries the network-site rates (per the mix) plus occasional
	// low-rate paper-site faults, so PRAM-level and network-level failure
	// handling compose. Each worker w runs an injector seeded
	// Plan.Seed ^ splitmix(w), decorrelating peers deterministically.
	Plan fault.Plan
	// Hedge enables the straggler hedge for this run.
	Hedge bool
	// AllowPartial enables the partial-coverage rung.
	AllowPartial bool
}

// SoakRecord is one scenario's outcome, reusing the E14 classification.
type SoakRecord struct {
	Scenario SoakScenario
	Outcome  soak.Outcome
	Detail   string
	// Retries/Hedges are the coordinator's extra-attempt counts (informational).
	Retries, Hedges int64
	// Partial reports whether the answer was a certified partial hull.
	Partial bool
}

// SoakSummary aggregates a batch.
type SoakSummary struct {
	Scenarios int
	ByOutcome [int(soak.Panicked) + 1]int
	// ByMix[mix][outcome] counts runs per fault mix.
	ByMix    map[string]*[int(soak.Panicked) + 1]int
	Partials int
	Retries  int64
	Hedges   int64
	Failures []SoakRecord
}

// Bad reports whether any scenario violated the contract.
func (s *SoakSummary) Bad() bool { return len(s.Failures) > 0 }

var (
	netRateMenu   = []float64{0, 0.1, 0.3, 1}
	paperRateMenu = []float64{0, 0, 0, 0.1}
	soakNMenu     = []int{64, 128, 256, 512}
	soakKMenu     = []int{2, 3, 4, 5}
	soakBudget    = []int{0, 4, 16}
)

// SoakScenarios derives count scenarios deterministically from the master
// seed, rotating through the mixes so every batch covers all of them.
func SoakScenarios(master uint64, count int) []SoakScenario {
	s := rng.New(master)
	out := make([]SoakScenario, 0, count)
	for i := 0; i < count; i++ {
		mix := Mixes[i%len(Mixes)]
		sc := SoakScenario{ID: i, Mix: mix.Name, Seed: s.Uint64()}
		sc.Plan.Seed = s.Uint64()
		for _, site := range mix.Sites {
			sc.Plan.Rates[site] = netRateMenu[s.Intn(len(netRateMenu))]
		}
		for _, site := range fault.PaperSites {
			sc.Plan.Rates[site] = paperRateMenu[s.Intn(len(paperRateMenu))]
		}
		sc.Plan.MaxPerSite = soakBudget[s.Intn(len(soakBudget))]
		g := workload.Gens2D[s.Intn(len(workload.Gens2D))]
		sc.Gen = g.Name
		sc.N = soakNMenu[s.Intn(len(soakNMenu))]
		sc.K = soakKMenu[s.Intn(len(soakKMenu))]
		sc.Hedge = s.Intn(2) == 0
		sc.AllowPartial = s.Intn(4) != 0 // partial enabled 3/4 of the time
		out = append(out, sc)
	}
	return out
}

// soakGen2D resolves a registered 2-d generator by name.
func soakGen2D(name string) (workload.Gen2D, bool) {
	for _, g := range workload.Gens2D {
		if g.Name == name {
			return g, true
		}
	}
	return workload.Gen2D{}, false
}

// workerSeed decorrelates worker w's injector from the plan seed.
func workerSeed(planSeed uint64, w int) uint64 { return shardSeed(planSeed^0x5EED, w) }

// RunSoakScenario executes one scenario end to end: build a K-worker
// chaos-wrapped coordinator, scatter, and classify the outcome against the
// sequential reference oracle. Panics become Panicked records.
func RunSoakScenario(sc SoakScenario) (rec SoakRecord) {
	rec.Scenario = sc
	defer func() {
		if r := recover(); r != nil {
			rec.Outcome = soak.Panicked
			rec.Detail = fmt.Sprint(r)
		}
	}()
	g, ok := soakGen2D(sc.Gen)
	if !ok {
		rec.Outcome, rec.Detail = soak.UntypedError, "unknown generator "+sc.Gen
		return rec
	}
	pts := g.Gen(sc.Seed, sc.N)

	// One machine per worker, single PRAM worker each: the soak's load is
	// many small shards, not one big one.
	fleet := pram.NewFleet(sc.K, pram.WithWorkers(1))
	defer fleet.Close()
	workers := make([]Worker, sc.K)
	for w := 0; w < sc.K; w++ {
		inj := fault.NewInjector(plainPlanFor(sc.Plan, workerSeed(sc.Plan.Seed, w)))
		workers[w] = &ChaosWorker{
			Inner: &LocalWorker{
				ID:    fmt.Sprintf("local-%d", w),
				Fleet: fleet,
				// Pin the counted backend: the injector payload below rides
				// the counted machine's stream, and the soak is precisely
				// about faults firing at paper sites inside the shard
				// computation — the native engine has no such sites.
				Backend: resilient.BackendCounted,
				// Thread the SAME injector into the worker's PRAM stream,
				// so paper-site faults fire inside the shard computation.
				NewStream: func(seed uint64) *rng.Stream { return fault.Attach(rng.New(seed), inj) },
			},
			Inj:       inj,
			SlowSleep: 200 * time.Millisecond,
		}
	}
	cfg := Config{
		Workers:          workers,
		Shards:           sc.K,
		MaxAttempts:      3,
		ShardTimeout:     80 * time.Millisecond,
		Backoff:          200 * time.Microsecond,
		BreakerThreshold: 3,
		BreakerCooldown:  50 * time.Millisecond,
		AllowPartial:     sc.AllowPartial,
	}
	if sc.Hedge {
		cfg.HedgeAfter = 4 * time.Millisecond
	}
	coord := New(cfg)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	res, err := coord.Gather2D(ctx, pts, sc.K, sc.Seed)
	rec.Retries, rec.Hedges = res.Retries, res.Hedges

	switch {
	case err == nil:
		if detail := checkExact(pts, res); detail != "" {
			rec.Outcome, rec.Detail = soak.WrongAnswer, detail
			return rec
		}
		rec.Outcome = soak.OK
	case errors.Is(err, hullerr.ErrPartialHull):
		rec.Partial = true
		if detail := checkPartial(pts, sc.K, res); detail != "" {
			rec.Outcome, rec.Detail = soak.WrongAnswer, detail
			return rec
		}
		rec.Outcome = soak.OK
	case hullerr.IsTyped(err):
		rec.Outcome, rec.Detail = soak.TypedError, err.Error()
	default:
		rec.Outcome, rec.Detail = soak.UntypedError, err.Error()
	}
	return rec
}

// plainPlanFor rebinds a plan to a per-worker seed (rates and budget
// shared, decisions decorrelated).
func plainPlanFor(p fault.Plan, seed uint64) fault.Plan {
	p.Seed = seed
	return p
}

// checkExact asserts an exact answer is bit-identical to the single-node
// reference hull; "" means it is.
func checkExact(pts []geom.Point, res Result) string {
	want := hull2d.UpperHull(pts)
	if s := sameChain(want, res.Chain); s != "" {
		return "exact answer differs from single-node reference: " + s
	}
	if len(res.Missing) != 0 {
		return fmt.Sprintf("nil error but Missing=%v", res.Missing)
	}
	return ""
}

// checkPartial asserts a partial answer is bit-identical to the reference
// hull of exactly the covered shards of the deterministic split.
func checkPartial(pts []geom.Point, k int, res Result) string {
	if len(res.Missing) == 0 {
		return "PartialHull error but no missing shards"
	}
	plan := SplitX(pts, k)
	live := plan.NonEmpty()
	missing := make(map[int]bool, len(res.Missing))
	for _, s := range res.Missing {
		missing[s] = true
		found := false
		for _, l := range live {
			found = found || l == s
		}
		if !found {
			return fmt.Sprintf("missing shard %d is not a live shard of the plan", s)
		}
	}
	var covered []geom.Point
	for _, s := range live {
		if !missing[s] {
			covered = append(covered, plan.Points(s)...)
		}
	}
	want := hull2d.UpperHull(covered)
	if s := sameChain(want, res.Chain); s != "" {
		return "partial answer differs from covered-shards reference: " + s
	}
	return ""
}

// sameChain compares two chains vertex for vertex; "" means identical.
func sameChain(want, got []geom.Point) string {
	if len(want) != len(got) {
		return fmt.Sprintf("hull size %d, want %d", len(got), len(want))
	}
	for i := range want {
		if want[i] != got[i] {
			return fmt.Sprintf("vertex %d = %v, want %v", i, got[i], want[i])
		}
	}
	return ""
}

// RunSoak executes count scenarios derived from master and aggregates.
func RunSoak(master uint64, count int) SoakSummary {
	sum := SoakSummary{ByMix: map[string]*[int(soak.Panicked) + 1]int{}}
	for _, m := range Mixes {
		sum.ByMix[m.Name] = &[int(soak.Panicked) + 1]int{}
	}
	for _, sc := range SoakScenarios(master, count) {
		rec := RunSoakScenario(sc)
		sum.Scenarios++
		sum.ByOutcome[rec.Outcome]++
		if by, ok := sum.ByMix[sc.Mix]; ok {
			by[rec.Outcome]++
		}
		if rec.Partial {
			sum.Partials++
		}
		sum.Retries += rec.Retries
		sum.Hedges += rec.Hedges
		if rec.Outcome.Bad() {
			sum.Failures = append(sum.Failures, rec)
		}
	}
	return sum
}
