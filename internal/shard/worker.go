package shard

import (
	"context"
	"sort"
	"sync"
	"time"

	"inplacehull/internal/chain"
	"inplacehull/internal/engine"
	"inplacehull/internal/fault"
	"inplacehull/internal/geom"
	"inplacehull/internal/hullerr"
	"inplacehull/internal/hullhash"
	"inplacehull/internal/pram"
	"inplacehull/internal/resilient"
	"inplacehull/internal/rng"
	"inplacehull/internal/unsorted"
)

// Request is one shard's work order.
type Request struct {
	// Shard is the plan index the points came from.
	Shard int
	// Attempt numbers this launch within the shard's ladder (retries and
	// hedges included) — the occurrence key chaos injection is keyed on.
	Attempt int
	// Points is the shard's slice of the (x, y)-sorted input.
	Points []geom.Point
	// Seed drives the worker's random stream (derived per shard from the
	// query seed, so a retry replays the same stream).
	Seed uint64
	// Sum is the coordinator's content checksum of Points; the worker must
	// echo the checksum of the points it actually received, proving the
	// wire carried the right bytes.
	Sum hullhash.Sum
}

// Response is one shard's answer: the canonical strict upper hull of the
// shard input plus the input checksum echo.
type Response struct {
	Shard int
	Chain []geom.Point
	Sum   hullhash.Sum
	// Tier names the degradation-ladder tier that produced the answer
	// ("randomized", "sequential", …) — observability, not contract.
	Tier string
}

// Worker computes one shard's partial hull. Implementations: LocalWorker
// (in-process Fleet machine), HTTPWorker (remote hullserve peer), and
// ChaosWorker (fault-injecting decorator for the E20 soak).
type Worker interface {
	// Name identifies the worker in health snapshots and per-peer metrics.
	Name() string
	// Partial computes the canonical strict upper hull of req.Points under
	// ctx. Errors must be typed (*hullerr.Error) or they are wrapped as
	// Internal by the coordinator.
	Partial(ctx context.Context, req Request) (Response, error)
}

// LocalWorker runs shards on an in-process machine fleet through the
// resilient supervisor — the same exact-or-typed-error stack a single-node
// server uses, per shard.
type LocalWorker struct {
	// ID names the worker ("local-0", …).
	ID string
	// Fleet supplies PRAM machines; Partial checks one out per call.
	Fleet *pram.Fleet
	// Policy tunes the supervisor. RequireExact is forced on: a shard
	// answer feeds the tangent merge, and only exact partial hulls keep
	// the merged result certifiable.
	Policy resilient.Policy
	// NewStream builds the shard's random stream from Request.Seed.
	// Default rng.New. The E20 soak swaps in a fault-attached stream so
	// PRAM-level faults and network-level faults compose. Counted-backend
	// only: the native engine draws no per-step randomness.
	NewStream func(seed uint64) *rng.Stream
	// Backend selects the shard's execution engine. BackendAuto resolves
	// to BackendNative — serving wants host speed, and Canonical()
	// guarantees the merge sees identical chains either way. The E20 soak
	// pins BackendCounted because its fault payloads ride the counted
	// machine's stream.
	Backend resilient.Backend
}

// Name implements Worker.
func (w *LocalWorker) Name() string {
	if w.ID == "" {
		return "local"
	}
	return w.ID
}

// Partial implements Worker: checkout a machine, run the supervisor, then
// canonicalize the chain so the response is the *strict* upper hull of the
// shard bytes — vertical columns collapsed to their top point, collinear
// runs collapsed to their endpoints — regardless of which ladder tier
// answered. Canonical form is what makes "bit-identical to single-node"
// meaningful across shard plans.
func (w *LocalWorker) Partial(ctx context.Context, req Request) (Response, error) {
	const op = "shard.LocalWorker"
	if len(req.Points) == 0 {
		return Response{Shard: req.Shard, Sum: req.Sum}, nil
	}
	pol := w.Policy
	pol.RequireExact = true
	var (
		res unsorted.Result2D
		rep resilient.Report
		err error
	)
	if w.Backend == resilient.BackendCounted {
		var m *pram.Machine
		m, err = w.Fleet.Checkout(ctx)
		if err != nil {
			return Response{}, err
		}
		defer w.Fleet.Return(m)
		ns := w.NewStream
		if ns == nil {
			ns = rng.New
		}
		res, rep, err = resilient.Hull2D(ctx, m, ns(req.Seed), req.Points, pol)
	} else {
		res, rep, err = engine.Native(req.Seed, nil).Hull2D(ctx, req.Points, unsorted.Options{}, pol)
	}
	if err != nil {
		return Response{}, err
	}
	// Echo the checksum of the points actually received — for a local
	// worker this is trivially req.Sum, but computing it keeps the
	// contract honest (and lets ChaosWorker corrupt it meaningfully).
	h := hullhash.New()
	h.Points2(req.Points)
	return Response{
		Shard: req.Shard,
		Chain: Canonical(req.Points, res.Chain),
		Sum:   h.Sum(),
		Tier:  rep.Tier.String(),
	}, nil
}

// Canonical rebuilds the strict upper hull from a computed chain plus the
// shard input it came from. The parallel algorithms' chains deviate from
// canonical form in two documented ways (see unsorted.CheckAgainstReference):
// collinear hull edges may be subdivided, and a vertical column at an
// extreme x may be answered as a "vertex cap" with the column's top point
// absent from the chain. A strict monotone pass over the chain vertices
// plus the extreme columns' top points repairs both, and is exactly
// hull2d.UpperHull restricted to known hull candidates — O(h log h), not
// O(n log n).
func Canonical(pts, computed []geom.Point) []geom.Point {
	if len(pts) == 0 {
		return nil
	}
	cand := append([]geom.Point(nil), computed...)
	// pts is sorted by (x, y): the top of the first x-column is the last
	// point of the leading equal-x run; the top of the last column is the
	// final point.
	i := 1
	for i < len(pts) && pts[i].X == pts[0].X {
		i++
	}
	cand = append(cand, pts[i-1], pts[len(pts)-1])
	sort.Slice(cand, func(a, b int) bool { return geom.LexLess(cand[a], cand[b]) })
	return chain.FromSorted(cand).V
}

// ChaosWorker decorates a Worker with the deterministic network failure
// modes of internal/fault: shard-slow (straggle past the hedge threshold),
// shard-drop (typed transport loss), shard-corrupt (a lying response), and
// peer-down (the worker dies for the rest of the run). Decisions ride the
// injector's HitAt keyed on (shard, attempt), so concurrent shard
// goroutines replay identically regardless of scheduling.
type ChaosWorker struct {
	Inner Worker
	// Inj is this worker's injector (the soak seeds one per worker from
	// plan.Seed ^ worker index, decorrelating peers deterministically).
	Inj *fault.Injector
	// SlowSleep is how long a shard-slow hit straggles (chosen above the
	// coordinator's ShardTimeout so an unhedged slow attempt fails).
	SlowSleep time.Duration

	deadOnce sync.Once
	dead     bool
}

// Name implements Worker, delegating so per-peer metrics and health rows
// name the real peer.
func (w *ChaosWorker) Name() string { return w.Inner.Name() }

// chaosKey packs (shard, attempt) into one occurrence key. Attempts are
// bounded by the coordinator's small ladder, so 16 bits is generous.
func chaosKey(req Request) uint64 { return uint64(req.Shard)<<16 | uint64(req.Attempt&0xFFFF) }

// Partial implements Worker.
func (w *ChaosWorker) Partial(ctx context.Context, req Request) (Response, error) {
	const op = "shard.ChaosWorker"
	w.deadOnce.Do(func() { w.dead = w.Inj.HitAt(fault.PeerDown, 0) })
	if w.dead {
		return Response{}, hullerr.New(hullerr.Internal, op, "peer %s is down", w.Name())
	}
	key := chaosKey(req)
	if w.Inj.HitAt(fault.ShardDrop, key) {
		return Response{}, hullerr.New(hullerr.Internal, op,
			"shard %d attempt %d dropped on the wire", req.Shard, req.Attempt)
	}
	if w.Inj.HitAt(fault.ShardSlow, key) {
		if !sleepCtx(ctx, w.SlowSleep) {
			return Response{}, hullerr.FromContext(op, ctx.Err())
		}
	}
	resp, err := w.Inner.Partial(ctx, req)
	if err != nil {
		return resp, err
	}
	if w.Inj.HitAt(fault.ShardCorrupt, key) {
		resp = corrupt(resp, key)
	}
	return resp, err
}

// corrupt deterministically damages a response — a lifted vertex, a
// truncated chain, or a clobbered checksum — choosing the variant from the
// occurrence key so reruns damage identically. Every variant must be
// caught by the coordinator's verify.
func corrupt(resp Response, key uint64) Response {
	out := resp
	out.Chain = append([]geom.Point(nil), resp.Chain...)
	switch {
	case key%3 == 0 && len(out.Chain) > 0:
		v := out.Chain[int(key/3)%len(out.Chain)]
		v.Y += 1e9
		out.Chain[int(key/3)%len(out.Chain)] = v
	case key%3 == 1 && len(out.Chain) > 1:
		out.Chain = out.Chain[:len(out.Chain)-1]
	default:
		out.Sum.Lo ^= 0xDEADBEEF
		out.Sum.Hi ^= 0xF00D
	}
	return out
}
