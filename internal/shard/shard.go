// Package shard is the sharded scatter-gather layer: it splits a point set
// across k shard workers — in-process Fleet shards or remote hullserve
// peers over HTTP — computes partial upper hulls concurrently, and merges
// them with the common-tangent machinery of internal/chain (Lemma 2.6's
// point-hull-invariant primitive). It is the partial-hulls-then-merge
// structure of the OpenMP exemplar lifted to multiple processes, with the
// single-node failure contract of PRs 1–6 extended across the process
// boundary: a shard may be slow, dead, or lying, and the coordinator must
// still return an exact hull, a certified partial hull labeled as such, or
// a typed error — never a silently wrong answer.
//
// The distributed-robustness layer wraps every shard call:
//
//   - Deadline propagation: each attempt runs under the caller's context,
//     optionally tightened by Config.ShardTimeout; cancellation reaches
//     in-process workers through the PRAM's between-step polling and
//     remote workers through the HTTP request context.
//   - Retry with exponential backoff + deterministic jitter (seeded from
//     the query seed, so soak scenarios replay exactly).
//   - Hedged requests: when an attempt outlives Config.HedgeAfter, a
//     second copy races on another healthy worker; the first verified
//     response wins. Both copies compute the same exact hull, so hedging
//     changes latency, never the answer.
//   - Per-peer health tracking with circuit breaking: consecutive
//     failures open a worker's breaker, routing around it; a half-open
//     probe after Config.BreakerCooldown lets it recover.
//   - Response verification: every shard response must echo the
//     coordinator's content checksum of the shard input (internal/hullhash)
//     and carry a strict convex chain whose vertices are input points and
//     which dominates every shard point. These conditions *prove* the
//     chain is the canonical upper hull of the shard (see verify), so a
//     corrupting shard is detected and retried, not merged.
//
// The degradation ladder: all shards exact → failed shards re-scattered to
// other workers (the retry loop rotates workers) → partial coverage. A
// partial answer carries the exact merged hull of the covered shards, the
// list of missing shards, and the typed hullerr.PartialHull error — the
// distributed analogue of the supervisor's labeled approximate tier.
package shard

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"inplacehull/internal/chain"
	"inplacehull/internal/cull"
	"inplacehull/internal/geom"
	"inplacehull/internal/hullerr"
	"inplacehull/internal/hullhash"
	"inplacehull/internal/obs"
	"inplacehull/internal/rng"
)

// Config tunes the coordinator. The zero value is not servable: at least
// one Worker is required.
type Config struct {
	// Workers are the shard executors. Shard i is first offered to worker
	// i mod len(Workers); retries and hedges rotate from there.
	Workers []Worker
	// Shards is the default split width k when a query does not choose its
	// own. Default len(Workers).
	Shards int
	// MaxAttempts is the per-shard attempt cap, hedges not counted.
	// Attempt a runs on a different worker than attempt a−1 (when more
	// than one worker is healthy) — the re-scatter rung of the ladder.
	// Default 3.
	MaxAttempts int
	// ShardTimeout bounds each attempt; 0 means the caller's context
	// only. Default 2s.
	ShardTimeout time.Duration
	// Backoff is the base of the exponential inter-attempt backoff
	// (Backoff · 2^attempt plus up to 50% deterministic jitter). Default
	// 1ms.
	Backoff time.Duration
	// HedgeAfter launches a racing copy of an attempt that has been
	// outstanding this long. 0 disables hedging.
	HedgeAfter time.Duration
	// BreakerThreshold is the consecutive-failure count that opens a
	// worker's circuit breaker. Default 3.
	BreakerThreshold int
	// BreakerCooldown is how long an open breaker waits before admitting
	// a half-open probe. Default 2s.
	BreakerCooldown time.Duration
	// AllowPartial enables the partial-coverage rung: when some shards
	// stay unreachable, answer with the exact hull of the covered shards
	// plus the typed PartialHull error instead of failing outright.
	AllowPartial bool
	// MinCoverage is the minimum fraction of non-empty shards that must
	// be covered for a partial answer (default 0.5). Below it the
	// coordinator surrenders typed.
	MinCoverage float64
	// Cull re-filters each shard with the admission-side interior-point
	// filter before it is hashed and scattered, shrinking remote wire
	// payloads and worker runs. The zero value (cull.PolicyAuto) means NO
	// per-shard culling — the serve layer already culls once before
	// scattering, and double-filtering buys little; set PolicyQuad /
	// PolicyOctagon / PolicyCoarse explicitly to opt in (PolicyOff likewise
	// disables). Like the serve-level filter it can never change the merged
	// hull: discarded points are certainly strictly inside the convex hull
	// of surviving shard points, so each shard's canonical chain — and
	// therefore the common-tangent merge — is bit-identical.
	Cull cull.Policy
	// Metrics, when non-nil, receives the scatter counters (flat
	// inplacehull_serve_shard_* counters plus per-peer
	// inplacehull_shard_events_total{peer,event} series).
	Metrics *obs.Metrics
}

func (c *Config) fill() {
	if c.Shards <= 0 {
		c.Shards = len(c.Workers)
	}
	if c.MaxAttempts <= 0 {
		c.MaxAttempts = 3
	}
	if c.ShardTimeout == 0 {
		c.ShardTimeout = 2 * time.Second
	}
	if c.Backoff == 0 {
		c.Backoff = time.Millisecond
	}
	if c.BreakerThreshold <= 0 {
		c.BreakerThreshold = 3
	}
	if c.BreakerCooldown <= 0 {
		c.BreakerCooldown = 2 * time.Second
	}
	if c.MinCoverage <= 0 || c.MinCoverage > 1 {
		c.MinCoverage = 0.5
	}
}

// Result is a scatter-gather answer.
type Result struct {
	// Chain is the merged upper hull: global when Missing is empty, the
	// exact hull of the covered shards otherwise.
	Chain []geom.Point
	// Shards is the number of non-empty shards in the plan.
	Shards int
	// Missing lists the shard indices the answer does not cover (sorted;
	// nil for exact answers).
	Missing []int
	// Retries and Hedges count extra attempts across all shards.
	Retries, Hedges int64
	// Elapsed is the scatter-to-merge wall time.
	Elapsed time.Duration
}

// Coordinator runs scatter-gather queries over a fixed worker set. Safe
// for concurrent use.
type Coordinator struct {
	cfg    Config
	health []*breaker
}

// New builds a coordinator over cfg.Workers.
func New(cfg Config) *Coordinator {
	cfg.fill()
	c := &Coordinator{cfg: cfg}
	for range cfg.Workers {
		c.health = append(c.health, newBreaker(cfg.BreakerThreshold, cfg.BreakerCooldown))
	}
	return c
}

// Shards returns the coordinator's default split width.
func (c *Coordinator) Shards() int { return c.cfg.Shards }

// count bumps a flat serving counter on the configured metrics sink.
func (c *Coordinator) count(name string, v int64) { c.cfg.Metrics.ServeCounterAdd(name, v) }

// event records a per-peer scatter event for the labeled exporter series.
func (c *Coordinator) event(widx int, event string) {
	if c.cfg.Metrics == nil {
		return
	}
	c.cfg.Metrics.ShardEventAdd(c.cfg.Workers[widx].Name(), event)
}

// Plan records how a dataset was scattered: an x-sorted copy of the input
// and, for each shard, its half-open index range [Lo[i], Hi[i]). Equal-x
// runs never straddle a boundary, so shard chains are strictly x-disjoint
// — the precondition of the common-tangent merge.
type Plan struct {
	Sorted []geom.Point
	Lo, Hi []int
}

// NonEmpty returns the indices of non-empty shards.
func (p *Plan) NonEmpty() []int {
	var out []int
	for i := range p.Lo {
		if p.Lo[i] < p.Hi[i] {
			out = append(out, i)
		}
	}
	return out
}

// Points returns shard s's slice of the sorted input.
func (p *Plan) Points(s int) []geom.Point { return p.Sorted[p.Lo[s]:p.Hi[s]] }

// SplitX builds the scatter plan: sort by (x, y), cut into k near-equal
// ranges, and push each cut right past its equal-x run. Shards beyond the
// distinct-abscissa count come out empty and are skipped by the scatter.
func SplitX(pts []geom.Point, k int) Plan {
	if k < 1 {
		k = 1
	}
	sorted := append([]geom.Point(nil), pts...)
	sort.Slice(sorted, func(i, j int) bool {
		if sorted[i].X != sorted[j].X {
			return sorted[i].X < sorted[j].X
		}
		return sorted[i].Y < sorted[j].Y
	})
	p := Plan{Sorted: sorted, Lo: make([]int, k), Hi: make([]int, k)}
	n := len(sorted)
	start := 0
	for s := 0; s < k; s++ {
		end := (n * (s + 1)) / k
		if end < start {
			end = start
		}
		// Never split an equal-x run: the merge needs every vertex of the
		// left chain strictly left of every vertex of the right chain.
		for end > start && end < n && sorted[end].X == sorted[end-1].X {
			end++
		}
		if s == k-1 {
			end = n
		}
		p.Lo[s], p.Hi[s] = start, end
		start = end
	}
	return p
}

// MergeChains merges strictly x-disjoint strict upper-hull chains (left to
// right) into one upper hull: pairwise common tangents prune the interior
// (chain.CommonTangentSeq, the Lemma 2.6 primitive), then one strict
// monotone pass collapses collinear junction triples so the output is the
// canonical strict hull — bit-identical to the monotone-chain reference
// over the union of the shard inputs.
func MergeChains(chains []chain.Chain) chain.Chain {
	var acc chain.Chain
	for _, b := range chains {
		if b.Len() == 0 {
			continue
		}
		if acc.Len() == 0 {
			acc = chain.Chain{V: append([]geom.Point(nil), b.V...)}
			continue
		}
		i, j := chain.CommonTangentSeq(acc, b)
		merged := append(append([]geom.Point(nil), acc.V[:i+1]...), b.V[j:]...)
		// Re-strictify immediately: the tangent can touch along an edge,
		// leaving a collinear junction triple; the monotone pass removes it
		// so the next CommonTangentSeq sees a strict chain and any two
		// plans covering the same points produce identical bytes.
		acc = chain.FromSorted(merged)
	}
	return acc
}

// memberSet indexes a shard's points for O(1) vertex-membership checks.
func memberSet(pts []geom.Point) map[geom.Point]struct{} {
	m := make(map[geom.Point]struct{}, len(pts))
	for _, p := range pts {
		m[p] = struct{}{}
	}
	return m
}

// verify proves a shard response correct before it may be merged. The
// three structural conditions — (1) the chain is strict (Validate), (2)
// every chain vertex is a shard input point, (3) every shard input point
// lies on or below the chain and inside its x-range (PointBelow) — jointly
// imply the chain IS the canonical strict upper hull of the shard input:
// by (3) the chain dominates the hull, by (1)+(2) the hull dominates the
// chain, and strictness makes the vertex sequence unique. The checksum
// echo additionally proves the worker computed over the bytes the
// coordinator scattered. Any failure marks the response corrupt; the
// caller retries elsewhere instead of merging it.
func verify(req Request, resp Response, members map[geom.Point]struct{}) error {
	const op = "shard.verify"
	if resp.Shard != req.Shard {
		return hullerr.New(hullerr.Internal, op, "shard %d response labeled %d", req.Shard, resp.Shard)
	}
	if resp.Sum != req.Sum {
		return hullerr.New(hullerr.Internal, op,
			"shard %d input checksum mismatch: scattered %016x%016x, worker echoed %016x%016x",
			req.Shard, req.Sum.Hi, req.Sum.Lo, resp.Sum.Hi, resp.Sum.Lo)
	}
	if len(req.Points) > 0 && len(resp.Chain) == 0 {
		return hullerr.New(hullerr.Internal, op, "shard %d returned an empty chain for %d points", req.Shard, len(req.Points))
	}
	ch := chain.Chain{V: resp.Chain}
	if !ch.Validate() {
		return hullerr.New(hullerr.Internal, op, "shard %d chain violates the strict upper-hull invariants", req.Shard)
	}
	for i, v := range resp.Chain {
		if _, ok := members[v]; !ok {
			return hullerr.New(hullerr.Internal, op, "shard %d chain vertex %d = %v is not a shard input point", req.Shard, i, v)
		}
	}
	for i, p := range req.Points {
		if !ch.PointBelow(p) {
			return hullerr.New(hullerr.Internal, op, "shard %d input point %d = %v is above or outside the returned chain", req.Shard, i, p)
		}
	}
	return nil
}

// Gather2D answers one scatter-gather hull query: split pts into k shards,
// compute partial hulls on the workers under the robustness layer, verify
// and merge. k ≤ 0 selects Config.Shards. On a partial answer the Result
// carries the covered hull and Missing, and err matches
// hullerr.ErrPartialHull — callers that can use partial coverage check for
// that kind; everyone else sees a typed failure.
func (c *Coordinator) Gather2D(ctx context.Context, pts []geom.Point, k int, seed uint64) (Result, error) {
	const op = "shard.Gather2D"
	start := time.Now()
	if len(c.cfg.Workers) == 0 {
		return Result{}, hullerr.New(hullerr.Internal, op, "no shard workers configured")
	}
	if err := hullerr.CheckFinite2D(op, pts); err != nil {
		return Result{}, err
	}
	if err := ctx.Err(); err != nil {
		return Result{}, hullerr.FromContext(op, err)
	}
	if k <= 0 {
		k = c.cfg.Shards
	}
	if k < 1 {
		k = 1
	}
	if k > len(pts) {
		k = len(pts)
	}
	plan := SplitX(pts, k)
	live := plan.NonEmpty()
	c.count("shard_queries_total", 1)

	type shardOut struct {
		resp Response
		err  error
	}
	outs := make([]shardOut, k)
	var retries, hedges atomic.Int64
	var wg sync.WaitGroup
	for _, s := range live {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			resp, err := c.runShard(ctx, &plan, s, seed, &retries, &hedges)
			outs[s] = shardOut{resp: resp, err: err}
		}(s)
	}
	wg.Wait()

	res := Result{Shards: len(live), Retries: retries.Load(), Hedges: hedges.Load()}
	c.count("shard_scatter_retries_total", res.Retries)
	c.count("shard_hedges_total", res.Hedges)

	var chains []chain.Chain
	var missing []int
	var firstErr error
	for _, s := range live {
		if outs[s].err != nil {
			missing = append(missing, s)
			if firstErr == nil {
				firstErr = outs[s].err
			}
			continue
		}
		chains = append(chains, chain.Chain{V: outs[s].resp.Chain})
	}
	if err := ctx.Err(); err != nil {
		return Result{}, hullerr.FromContext(op, err)
	}
	if len(missing) == 0 {
		res.Chain = MergeChains(chains).V
		res.Elapsed = time.Since(start)
		c.count("shard_exact_total", 1)
		return res, nil
	}
	covered := len(live) - len(missing)
	if c.cfg.AllowPartial && covered > 0 && float64(covered) >= c.cfg.MinCoverage*float64(len(live)) {
		res.Chain = MergeChains(chains).V
		res.Missing = missing
		res.Elapsed = time.Since(start)
		c.count("shard_partial_total", 1)
		return res, hullerr.New(hullerr.PartialHull, op,
			"hull covers %d/%d shards; missing %v (first failure: %v)",
			covered, len(live), missing, firstErr)
	}
	c.count("shard_failed_total", 1)
	if hullerr.IsTyped(firstErr) {
		return Result{}, firstErr
	}
	return Result{}, hullerr.New(hullerr.Internal, op, "shards %v failed: %v", missing, firstErr)
}

// runShard drives one shard through the attempt ladder: pick a healthy
// worker (rotating per attempt — the re-scatter rung), run it with a
// per-attempt deadline and an optional hedge, verify the response, back
// off and repeat up to the attempt cap.
func (c *Coordinator) runShard(ctx context.Context, plan *Plan, s int, seed uint64,
	retries, hedges *atomic.Int64) (Response, error) {
	const op = "shard.runShard"
	pts := plan.Points(s)
	if pol := c.cfg.Cull; pol != cull.PolicyAuto && pol != cull.PolicyOff {
		survivors := cull.Points2(pol, shardSeed(seed, s), pts)
		c.count("shard_cull_points_total", int64(len(pts)-len(survivors)))
		pts = survivors // a subsequence of a sorted slice stays sorted
	}
	h := hullhash.New()
	h.Points2(pts)
	req := Request{Shard: s, Points: pts, Seed: shardSeed(seed, s), Sum: h.Sum()}
	members := memberSet(pts)
	jitter := rng.New(shardSeed(seed, s) ^ 0xBACC0FF)
	var lastErr error
	for a := 0; a < c.cfg.MaxAttempts; a++ {
		if err := ctx.Err(); err != nil {
			return Response{}, hullerr.FromContext(op, err)
		}
		if a > 0 {
			retries.Add(1)
			if !sleepCtx(ctx, backoffDelay(c.cfg.Backoff, a, jitter)) {
				return Response{}, hullerr.FromContext(op, ctx.Err())
			}
		}
		widx, ok := c.pickWorker(s, a)
		if !ok {
			lastErr = hullerr.New(hullerr.Overloaded, op, "shard %d: every worker's circuit breaker is open", s)
			continue
		}
		// The hedge copy carries the same Attempt as its primary: the
		// occurrence key chaos injection uses is the retry rung, so a
		// worker's injected behavior for a rung never depends on whether a
		// hedge happened to launch (per-worker injector seeds decorrelate
		// the primary and the hedge worker).
		req.Attempt = a
		resp, err := c.attempt(ctx, widx, req, members, hedges)
		if err == nil {
			return resp, nil
		}
		lastErr = err
	}
	return Response{}, typed(op, lastErr)
}

// attempt runs one (possibly hedged) shard attempt under the per-attempt
// deadline. The response channel is buffered for both racers, so a loser
// finishing after return never blocks — no goroutine outlives its send.
func (c *Coordinator) attempt(ctx context.Context, widx int, req Request,
	members map[geom.Point]struct{}, hedges *atomic.Int64) (Response, error) {
	const op = "shard.attempt"
	began := time.Now()
	actx := ctx
	cancel := func() {}
	if c.cfg.ShardTimeout > 0 {
		actx, cancel = context.WithTimeout(ctx, c.cfg.ShardTimeout)
	}
	defer cancel()

	type racerOut struct {
		resp Response
		err  error
		widx int
	}
	ch := make(chan racerOut, 2)
	launch := func(widx int) {
		c.event(widx, "attempt")
		c.count("shard_attempts_total", 1)
		resp, err := c.cfg.Workers[widx].Partial(actx, req)
		if err == nil {
			if verr := verify(req, resp, members); verr != nil {
				c.event(widx, "corrupt")
				c.count("shard_corrupt_detected_total", 1)
				err = verr
			}
		}
		ch <- racerOut{resp: resp, err: err, widx: widx}
	}
	go launch(widx)
	outstanding := 1
	var hedgeTimer <-chan time.Time
	if c.cfg.HedgeAfter > 0 {
		t := time.NewTimer(c.cfg.HedgeAfter)
		defer t.Stop()
		hedgeTimer = t.C
	}
	var lastErr error
	for outstanding > 0 {
		select {
		case r := <-ch:
			outstanding--
			c.health[r.widx].report(r.err == nil, c.onBreakerOpen(r.widx))
			if r.err == nil {
				c.event(r.widx, "ok")
				c.count("shard_latency_us_total", time.Since(began).Microseconds())
				return r.resp, nil
			}
			c.event(r.widx, "fail")
			lastErr = typed(op, r.err)
		case <-hedgeTimer:
			hedgeTimer = nil
			if hw, ok := c.pickHedge(widx); ok {
				hedges.Add(1)
				c.event(hw, "hedge")
				outstanding++
				go launch(hw)
			}
		case <-actx.Done():
			// Stop waiting; stragglers finish into the buffered channel.
			// Charge the primary worker's breaker with the timeout.
			c.health[widx].report(false, c.onBreakerOpen(widx))
			c.event(widx, "timeout")
			return Response{}, hullerr.FromContext(op, actx.Err())
		}
	}
	return Response{}, lastErr
}

// onBreakerOpen returns the open-transition hook for worker widx's breaker.
func (c *Coordinator) onBreakerOpen(widx int) func() {
	return func() {
		c.event(widx, "breaker_open")
		c.count("shard_breaker_opens_total", 1)
	}
}

// pickWorker chooses the worker for (shard, attempt): rotate from the
// shard's home worker, skipping open breakers. ok is false when every
// breaker refuses.
func (c *Coordinator) pickWorker(s, attempt int) (int, bool) {
	n := len(c.cfg.Workers)
	for off := 0; off < n; off++ {
		w := (s + attempt + off) % n
		if c.health[w].allow() {
			return w, true
		}
	}
	return 0, false
}

// pickHedge chooses a hedge worker distinct from primary when one is
// healthy; with a single worker the hedge re-asks it (a fresh request can
// beat a straggling one even on the same peer).
func (c *Coordinator) pickHedge(primary int) (int, bool) {
	n := len(c.cfg.Workers)
	for off := 1; off < n; off++ {
		w := (primary + off) % n
		if c.health[w].allow() {
			return w, true
		}
	}
	if c.health[primary].allow() {
		return primary, true
	}
	return 0, false
}

// Health reports the per-worker tracker state (for /v1/peers and tests).
func (c *Coordinator) Health() []PeerHealth {
	out := make([]PeerHealth, len(c.cfg.Workers))
	for i, w := range c.cfg.Workers {
		out[i] = c.health[i].snapshot(w.Name())
	}
	return out
}

// shardSeed derives shard s's random-stream seed from the query seed —
// splitmix-style so shards are decorrelated but replayable.
func shardSeed(seed uint64, s int) uint64 {
	x := seed ^ (uint64(s+1) * 0x9e3779b97f4a7c15)
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// backoffDelay is Backoff·2^(a−1) plus up to 50% deterministic jitter.
func backoffDelay(base time.Duration, attempt int, jitter *rng.Stream) time.Duration {
	d := base << (attempt - 1)
	if d <= 0 {
		d = base
	}
	return d + time.Duration(jitter.Float64()*0.5*float64(d))
}

// sleepCtx sleeps d or until ctx is done; reports whether the full sleep
// completed.
func sleepCtx(ctx context.Context, d time.Duration) bool {
	if d <= 0 {
		return ctx.Err() == nil
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-ctx.Done():
		return false
	}
}

// typed wraps any untyped worker error so nothing untyped crosses the
// coordinator boundary.
func typed(op string, err error) error {
	if err == nil || hullerr.IsTyped(err) {
		return err
	}
	return hullerr.New(hullerr.Internal, op, "untyped shard failure: %v", err)
}

// PeerHealth is one worker's tracker snapshot.
type PeerHealth struct {
	Peer        string `json:"peer"`
	State       string `json:"state"` // closed | open | half-open
	Consecutive int    `json:"consecutive_failures"`
	Successes   int64  `json:"successes"`
	Failures    int64  `json:"failures"`
}

func (p PeerHealth) String() string {
	return fmt.Sprintf("%s: %s (%d consecutive failures, %d ok / %d failed)",
		p.Peer, p.State, p.Consecutive, p.Successes, p.Failures)
}
