package shard

import (
	"sync"
	"time"
)

// breaker is a per-worker circuit breaker: closed (healthy), open (refusing
// after BreakerThreshold consecutive failures), half-open (cooldown passed;
// exactly one probe is admitted, and its outcome re-closes or re-opens the
// circuit). It protects the retry ladder from hammering a dead peer — the
// PeerDown failure mode — while the cooldown probe lets a recovered peer
// rejoin without operator action.
type breaker struct {
	mu          sync.Mutex
	threshold   int
	cooldown    time.Duration
	consecutive int
	openedAt    time.Time
	open        bool
	probing     bool
	successes   int64
	failures    int64
	// now is swappable for tests.
	now func() time.Time
}

func newBreaker(threshold int, cooldown time.Duration) *breaker {
	return &breaker{threshold: threshold, cooldown: cooldown, now: time.Now}
}

// allow reports whether a request may be sent to this worker. In the open
// state it admits a single half-open probe once the cooldown has elapsed.
func (b *breaker) allow() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	if !b.open {
		return true
	}
	if b.probing {
		return false
	}
	if b.now().Sub(b.openedAt) >= b.cooldown {
		b.probing = true
		return true
	}
	return false
}

// report records a request outcome. onOpen fires (outside no locks other
// than b's) exactly on closed→open transitions, so callers can count them.
func (b *breaker) report(ok bool, onOpen func()) {
	b.mu.Lock()
	opened := false
	if ok {
		b.successes++
		b.consecutive = 0
		b.open = false
		b.probing = false
	} else {
		b.failures++
		b.consecutive++
		b.probing = false
		if b.consecutive >= b.threshold {
			if !b.open {
				opened = true
			}
			b.open = true
			b.openedAt = b.now()
		}
	}
	b.mu.Unlock()
	if opened && onOpen != nil {
		onOpen()
	}
}

// snapshot captures the tracker state for Coordinator.Health.
func (b *breaker) snapshot(peer string) PeerHealth {
	b.mu.Lock()
	defer b.mu.Unlock()
	state := "closed"
	if b.open {
		state = "open"
		if b.probing || b.now().Sub(b.openedAt) >= b.cooldown {
			state = "half-open"
		}
	}
	return PeerHealth{
		Peer:        peer,
		State:       state,
		Consecutive: b.consecutive,
		Successes:   b.successes,
		Failures:    b.failures,
	}
}
