package compact

import (
	"testing"
	"testing/quick"

	"inplacehull/internal/pram"
	"inplacehull/internal/rng"
)

func TestApproxCompactBasic(t *testing.T) {
	m := pram.New()
	rnd := rng.New(1)
	marked := map[int]bool{3: true, 77: true, 500: true}
	area, ok := ApproxCompact(m, rnd, 1000, 4, func(p int) bool { return marked[p] })
	if !ok {
		t.Fatal("compaction failed")
	}
	got := map[int]bool{}
	for _, v := range area {
		if v >= 0 {
			if got[int(v)] {
				t.Fatalf("index %d appears twice", v)
			}
			got[int(v)] = true
		}
	}
	if len(got) != len(marked) {
		t.Fatalf("got %d indices, want %d", len(got), len(marked))
	}
	for p := range marked {
		if !got[p] {
			t.Fatalf("marked index %d missing", p)
		}
	}
}

func TestApproxCompactEmpty(t *testing.T) {
	m := pram.New()
	area, ok := ApproxCompact(m, rng.New(2), 100, 3, func(p int) bool { return false })
	if !ok {
		t.Fatal("empty compaction must succeed")
	}
	for _, v := range area {
		if v != -1 {
			t.Fatalf("spurious entry %d", v)
		}
	}
}

func TestApproxCompactOverflowDetected(t *testing.T) {
	// Mark far more than k elements: must report failure (Lemma 2.1's
	// detection outcome), not return a partial area.
	m := pram.New()
	_, ok := ApproxCompact(m, rng.New(3), 1000, 2, func(p int) bool { return p < 500 })
	if ok {
		t.Fatal("overflow not detected")
	}
}

func TestApproxCompactAreaSize(t *testing.T) {
	m := pram.New()
	area, ok := ApproxCompact(m, rng.New(4), 10000, 7, func(p int) bool { return p%1500 == 0 })
	if !ok {
		t.Fatal("failed")
	}
	if len(area) != AreaSize(7) {
		t.Fatalf("area size %d, want %d", len(area), AreaSize(7))
	}
	if AreaSize(7) != 7*7*7*7 {
		t.Fatalf("AreaSize(7) = %d", AreaSize(7))
	}
}

func TestApproxCompactConstantSteps(t *testing.T) {
	steps := func(n int) int64 {
		m := pram.New()
		_, ok := ApproxCompact(m, rng.New(5), n, 8, func(p int) bool { return p%(n/8) == 0 })
		if !ok {
			t.Fatal("failed")
		}
		return m.Time()
	}
	if s1, s2 := steps(1<<10), steps(1<<18); s2 > s1 {
		t.Fatalf("steps grew with n: %d → %d", s1, s2)
	}
}

func TestApproxCompactQuick(t *testing.T) {
	if err := quick.Check(func(seed uint64, nRaw uint16, kRaw uint8) bool {
		n := int(nRaw)%5000 + 10
		k := int(kRaw)%20 + 1
		s := rng.New(seed)
		marked := map[int]bool{}
		for i := 0; i < k; i++ {
			marked[s.Intn(n)] = true
		}
		m := pram.New()
		area, ok := ApproxCompact(m, s, n, k, func(p int) bool { return marked[p] })
		if !ok {
			// Allowed only with the tiny dart-throw failure probability;
			// with load factor k/k⁴ it would indicate a bug.
			return k <= 2 // k=1,2 areas are small; accept rare failure
		}
		got := map[int]bool{}
		for _, v := range area {
			if v >= 0 {
				if got[int(v)] {
					return false
				}
				got[int(v)] = true
			}
		}
		if len(got) != len(marked) {
			return false
		}
		for p := range marked {
			if !got[p] {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestInPlaceCompactBasic(t *testing.T) {
	m := pram.New()
	marked := map[int]bool{0: true, 999: true, 512: true, 513: true}
	got, ok := InPlaceCompact(m, rng.New(7), 1000, 5, 0.25, func(p int) bool { return marked[p] })
	if !ok {
		t.Fatal("in-place compaction failed")
	}
	if len(got) != len(marked) {
		t.Fatalf("got %v, want the %d marked positions", got, len(marked))
	}
	for _, p := range got {
		if !marked[p] {
			t.Fatalf("returned unmarked position %d", p)
		}
	}
}

func TestInPlaceCompactEmpty(t *testing.T) {
	m := pram.New()
	got, ok := InPlaceCompact(m, rng.New(8), 500, 4, 0.5, func(p int) bool { return false })
	if !ok || len(got) != 0 {
		t.Fatalf("empty in-place compaction: got %v ok=%v", got, ok)
	}
}

func TestInPlaceCompactOverflow(t *testing.T) {
	m := pram.New()
	_, ok := InPlaceCompact(m, rng.New(9), 1000, 3, 0.5, func(p int) bool { return p%5 == 0 })
	if ok {
		t.Fatal("overflow (200 marked, k=3) not detected")
	}
}

func TestInPlaceCompactStepsConstant(t *testing.T) {
	steps := func(size int) int64 {
		m := pram.New()
		_, ok := InPlaceCompact(m, rng.New(10), size, 6, 0.25, func(p int) bool {
			return p == 1 || p == size/2 || p == size-1
		})
		if !ok {
			t.Fatal("failed")
		}
		return m.Time()
	}
	s1, s2 := steps(1<<10), steps(1<<16)
	// Rounds scale with 1/δ, not with size; allow a small additive slack
	// because the split factor is size^δ and the group-depth rounding can
	// add a round or two.
	if s2 > s1+2*s1 {
		t.Fatalf("in-place compaction steps grew too fast: %d → %d", s1, s2)
	}
}

func TestInPlaceCompactQuick(t *testing.T) {
	if err := quick.Check(func(seed uint64, sizeRaw uint16, kRaw uint8) bool {
		size := int(sizeRaw)%3000 + 20
		k := int(kRaw)%10 + 3
		s := rng.New(seed)
		marked := map[int]bool{}
		for i := 0; i < k; i++ {
			marked[s.Intn(size)] = true
		}
		m := pram.New()
		got, ok := InPlaceCompact(m, s, size, k, 0.34, func(p int) bool { return marked[p] })
		if !ok {
			return false
		}
		if len(got) != len(marked) {
			return false
		}
		for _, p := range got {
			if !marked[p] {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestFindSub(t *testing.T) {
	starts := []int{0, 10, 20, 35}
	for _, tc := range []struct{ p, want int }{
		{0, 0}, {9, 0}, {10, 1}, {19, 1}, {20, 2}, {34, 2}, {35, 3}, {100, 3},
	} {
		if got := findSub(starts, tc.p); got != tc.want {
			t.Fatalf("findSub(%d) = %d, want %d", tc.p, got, tc.want)
		}
	}
	if findSub([]int{5}, 3) != -1 {
		t.Fatal("below first start must be −1")
	}
}

func TestIntPow(t *testing.T) {
	if intPow(100, 0.5) != 10 {
		t.Fatalf("intPow(100, .5) = %d", intPow(100, 0.5))
	}
	if intPow(1, 0.5) != 1 || intPow(0, 0.9) != 1 {
		t.Fatal("tiny cases")
	}
	if intPow(1000, 1.0/3) != 10 {
		t.Fatalf("intPow(1000, 1/3) = %d", intPow(1000, 1.0/3))
	}
}
