package compact

import (
	"math"
	"sort"

	"inplacehull/internal/pram"
	"inplacehull/internal/rng"
)

// InPlaceCompact is the paper's Lemma 3.2: compact the at most k marked
// positions of a virtual array of size size into a small output area
// *without moving any input element* — only group occupancy bits and group
// ids pass through the (o(size)) work space.
//
// Structure, following the proof of Lemma 3.2: split the array into groups;
// each marked element raises its group's occupancy bit (one concurrent
// write); the occupied group ids are approximately compacted (Lemma 2.1 /
// ApproxCompact); every occupied group is then split into sub-groups and
// the process repeats, ignoring groups found empty. After O(1/δ) rounds the
// groups are single cells and the compacted "group ids" are the marked
// positions themselves.
//
// The δ parameter trades rounds for work space exactly as in the lemma:
// each round splits occupied groups by a factor of about size^δ. It returns
// the marked positions (in arbitrary order) and ok = true, or ok = false if
// more than k positions are marked (detection, as in the lemma) or a
// compaction round fails.
//
// Cost: O(1/δ) = O(1) steps; work space Θ(k⁴ + size^δ·k).
func InPlaceCompact(m *pram.Machine, rnd *rng.Stream, size, k int, delta float64, bit func(p int) bool) ([]int, bool) {
	return InPlaceCompactArea(m, rnd, size, k, AreaSize(k), delta, bit)
}

// InPlaceCompactArea is InPlaceCompact with an explicit per-round output
// area (see CompactIntoArea): at most `outArea` cells of work space are used
// per compaction round instead of the lemma's k⁴, trading failure
// probability for space. The bridge-finding step 4 uses this to compact
// survivors into its 16k-cell base area.
func InPlaceCompactArea(m *pram.Machine, rnd *rng.Stream, size, k, outArea int, delta float64, bit func(p int) bool) ([]int, bool) {
	if size <= 0 {
		return nil, true
	}
	if delta <= 0 || delta > 1 {
		delta = 0.5
	}
	// Split factor per round: size^δ, at least 2.
	split := intPow(size, delta)
	if split < 2 {
		split = 2
	}

	type group struct{ start, length int }
	groups := []group{{0, size}}
	round := 0
	for {
		round++
		allUnit := true
		for _, g := range groups {
			if g.length > 1 {
				allUnit = false
				break
			}
		}
		if allUnit {
			out := make([]int, 0, len(groups))
			for _, g := range groups {
				out = append(out, g.start)
			}
			if len(out) > k {
				// Threshold detection, as in Lemma 3.2: "one can determine
				// whether k < m^ε".
				return nil, false
			}
			return out, true
		}
		if round > 64 {
			// Termination guard; with split ≥ 2 the group length halves
			// every round, so 64 rounds always suffice for any int size.
			return nil, false
		}

		// Sub-divide every occupied group and mark occupancy bits with one
		// synchronous step over all member positions (each element's
		// standing-by processor writes its sub-group's bit).
		type sub struct{ start, length int }
		subs := make([]sub, 0, len(groups)*split)
		for _, g := range groups {
			if g.length <= 1 {
				subs = append(subs, sub{g.start, g.length})
				continue
			}
			per := (g.length + split - 1) / split
			for s := g.start; s < g.start+g.length; s += per {
				l := per
				if s+l > g.start+g.length {
					l = g.start + g.length - s
				}
				subs = append(subs, sub{s, l})
			}
		}
		release := m.AllocScratch(int64(len(subs)))
		occ := make([]pram.OrCell, len(subs))
		// Map position → sub-group index for the scatter step. Sub-groups
		// are contiguous runs; precompute a lookup by binary search per
		// element (O(1)-ish; charged as one step, as the model's processors
		// know their group id).
		starts := make([]int, len(subs))
		for i, sg := range subs {
			starts[i] = sg.start
		}
		m.Step(size, func(p int) bool {
			if !bit(p) {
				return false
			}
			i := findSub(starts, p)
			if i >= 0 && p < subs[i].start+subs[i].length {
				occ[i].Set()
			}
			return true
		})

		// Approximately compact the occupied sub-group ids (at most k of
		// them, since every occupied sub-group holds a marked element).
		area, ok := CompactIntoArea(m, rnd.Split(uint64(round)), len(subs), outArea, func(i int) bool {
			return occ[i].Get()
		})
		release()
		if !ok {
			return nil, false
		}
		groups = groups[:0]
		for _, v := range area {
			if v >= 0 {
				groups = append(groups, group{subs[v].start, subs[v].length})
			}
		}
		// The compacted area lists occupied groups in arbitrary (dart)
		// order; keep the group table sorted by start so the next round's
		// position→sub-group lookup can binary-search it. (In the model
		// each element's processor knows its group id directly; the sort
		// is an implementation artifact over ≤ k⁴ bookkeeping records.)
		sort.Slice(groups, func(i, j int) bool { return groups[i].start < groups[j].start })
	}
}

// findSub returns the index i with starts[i] ≤ p < starts[i+1] (or the last
// index), assuming starts is sorted ascending; −1 if p < starts[0].
func findSub(starts []int, p int) int {
	lo, hi := 0, len(starts)
	for lo < hi {
		mid := (lo + hi) / 2
		if starts[mid] <= p {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo - 1
}

// intPow returns ⌈n^e⌉ for 0 < e ≤ 1 computed in floating point.
func intPow(n int, e float64) int {
	if n <= 1 {
		return 1
	}
	v := math.Pow(float64(n), e)
	r := int(v)
	if float64(r) < v {
		r++
	}
	return r
}
