// Package compact implements approximate compaction (the interface of
// Ragde's Lemma 2.1) and the paper's in-place approximate compaction built
// on top of it (Lemma 3.2).
//
// Ragde's original technique is deterministic, via perfect hash functions
// found by number theory. We substitute a randomized dart-throwing
// compactor with the same interface and O(1) step cost: each of at most k
// marked elements claims a uniformly random cell of an output area of size
// k⁴ through a CRCW claim-write; collisions retry for a constant number of
// rounds. With k elements and k⁴ cells, a fixed element collides in one
// round with probability < k/k⁴ = k⁻³, so all elements place within d
// rounds except with probability ≤ k·k^(−3d) — far below the e^(−Ω(k^r))
// failure terms the paper's analysis already absorbs (see DESIGN.md,
// substitution table). Overflow (more than k marked elements) surfaces as a
// placement failure, which callers treat exactly as Lemma 2.1's "k ≥ n^(1/4)
// detected" outcome.
package compact

import (
	"inplacehull/internal/fault"
	"inplacehull/internal/pram"
	"inplacehull/internal/rng"
)

// Rounds is the constant number of dart-throwing rounds d. Each round is
// O(1) PRAM steps.
const Rounds = 6

// AreaSize returns the output-area size Ragde's lemma guarantees for bound
// k: k⁴, never less than 16 so tiny bounds keep a comfortable load factor.
func AreaSize(k int) int {
	if k < 2 {
		return 16
	}
	a := k * k
	a *= a
	if a < 16 {
		a = 16
	}
	return a
}

// ApproxCompact compresses the marked indices of a virtual array into a
// small area. ids enumerates the n candidate positions; bit(p) reports
// whether position p is marked. On success it returns an output area of
// size AreaSize(k) in which every marked index appears exactly once (empty
// cells hold −1) and ok = true. If more than k positions are marked — or
// the dart throwing fails, which has probability ≤ k^(1−3·Rounds) — it
// returns ok = false, the analogue of Lemma 2.1 detecting k ≥ n^(1/4).
//
// Cost: O(Rounds) = O(1) steps with n processors, Θ(k⁴) work space.
func ApproxCompact(m *pram.Machine, rnd *rng.Stream, n int, k int, bit func(p int) bool) (area []int32, ok bool) {
	size := AreaSize(k)
	// The lemma's regime is k < n^(1/4), where k⁴ < n; outside it an area
	// larger than the input is pointless — cap at n (never below a small
	// floor so tiny inputs keep a workable load factor).
	if size > n && n >= 64 {
		size = n
	}
	area, ok = CompactIntoArea(m, rnd, n, size, bit)
	if !ok {
		return nil, false
	}
	// Threshold detection (the "determine whether k < n^(1/4)" half of
	// Lemma 2.1): more than k placed elements is a detected overflow. One
	// counting step over the area in the model.
	m.Charge(1, int64(len(area)))
	placed := 0
	for _, v := range area {
		if v >= 0 {
			placed++
		}
	}
	if placed > k {
		return nil, false
	}
	return area, true
}

// CompactIntoArea is ApproxCompact with an explicit output-area size, for
// callers that compact into a fixed work space (the bridge-finding step 4
// compacts survivors into its 16k-cell base area). The success probability
// degrades gracefully with the load factor: an element collides in one
// round with probability below (marked count)/size.
func CompactIntoArea(m *pram.Machine, rnd *rng.Stream, n int, size int, bit func(p int) bool) (area []int32, ok bool) {
	if size < 4 {
		size = 4
	}
	if fault.On(rnd).Hit(fault.CompactOverflow) {
		// Injected Lemma 2.1 failure: the dart throwing "detects overflow"
		// regardless of the true marked count. Callers must take the same
		// recovery path as for a genuine k ≥ n^(1/4) detection.
		m.Charge(2*Rounds+1, int64(Rounds)*int64(n))
		return nil, false
	}
	release := m.AllocScratch(int64(size))
	defer release()

	cells := make([]pram.ClaimCell, size)
	pram.ResetClaims(cells)
	placed := make([]bool, n)
	frozen := make([]bool, size) // finalized cells; no further claims allowed
	// Per-processor random streams, split deterministically by id.
	base := rnd.Split(0xc0)

	for round := 0; round < Rounds; round++ {
		r := uint64(round)
		// §3.1 step 2: each unplaced marked element attempts to write its
		// id to a random unoccupied cell. Picking an occupied (frozen) cell
		// counts as a failed attempt; the element retries next round.
		m.Step(n, func(p int) bool {
			if !bit(p) || placed[p] {
				return false
			}
			slot := base.Split(uint64(p)*Rounds + r).Intn(size)
			if !frozen[slot] {
				cells[slot].Claim(int64(p))
			}
			return true
		})
		// §3.1 steps 3–4: uncontested writers keep their cell (frozen);
		// contested cells are released and all their claimants retry.
		m.Step(size, func(s int) bool {
			if frozen[s] {
				return false
			}
			owner := cells[s].Owner()
			if owner < 0 {
				return false
			}
			if cells[s].Contested() {
				cells[s].Reset()
			} else {
				frozen[s] = true
				placed[owner] = true
			}
			return true
		})
	}
	// Check for stragglers with one OR step.
	var unplaced pram.OrCell
	m.Step(n, func(p int) bool {
		if bit(p) && !placed[p] {
			unplaced.Set()
			return true
		}
		return false
	})
	if unplaced.Get() {
		return nil, false
	}
	area = make([]int32, size)
	m.StepAll(size, func(s int) {
		if frozen[s] {
			area[s] = int32(cells[s].Owner())
		} else {
			area[s] = -1
		}
	})
	return area, true
}
