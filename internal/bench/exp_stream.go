package bench

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	"inplacehull/internal/engine"
	"inplacehull/internal/geom"
	"inplacehull/internal/rng"
	"inplacehull/internal/stream"
	"inplacehull/internal/workload"
)

// Experiment E23 prices the streaming subsystem's reason to exist: under
// a sustained low-churn update stream, incremental hull maintenance
// (internal/stream — tangent-splice inserts, bounded strip-rebuild
// deletes) against the naive alternative of rebuilding the hull from
// scratch after every mutation with the same native chain producer the
// fallback path uses. Both arms consume the identical update tape — a 1%
// churn of paired append+delete over a fixed-size multiset — so the only
// difference is maintenance strategy.
//
// Two workloads bracket the regimes:
//
//   - disk: E[h]=Θ(n^(1/3)) — almost every update touches only interior
//     points and the incremental arm does O(log n) membership work; this
//     is the headline row.
//   - circle: every point is a hull vertex, so every delete splices the
//     chain and every append extends it — the adversarial regime where
//     incremental maintenance earns the least.
//
// Acceptance: on disk at n ≥ 65536 the incremental arm sustains at least
// 5x the rebuild-per-update throughput, AND the two arms' final chains
// are bit-identical (parity is a gate condition, not a note — a fast
// wrong hull is worthless).

// StreamBenchRow is one row of E23 in BENCH_serve.json.
type StreamBenchRow struct {
	Workload string `json:"workload"`
	N        int    `json:"n"`
	// Updates counts paired append+delete mutations (2 commits each).
	Updates  int     `json:"updates"`
	ChurnPct float64 `json:"churn_pct"`
	// IncUPS / RebuildUPS are updates per second for the incremental and
	// rebuild-per-update arms; Speedup is their ratio.
	IncUPS     float64 `json:"inc_ups"`
	RebuildUPS float64 `json:"rebuild_ups"`
	Speedup    float64 `json:"speedup"`
	// ParityOK records that the two arms' final chains are bit-identical.
	ParityOK   bool `json:"parity_ok"`
	GOMAXPROCS int  `json:"gomaxprocs,omitempty"`
}

// churnTape is the shared update schedule: adds[i] replaces the live
// point at victim[i] (an index into the evolving multiset, mirrored
// identically by both arms).
type churnTape struct {
	adds    []geom.Point
	victims []int
}

func makeTape(seed uint64, gen func(uint64, int) []geom.Point, n, updates int) ([]geom.Point, churnTape) {
	pts := gen(seed, n)
	fresh := gen(seed+1000, updates)
	s := rng.New(seed + 23)
	tape := churnTape{adds: fresh, victims: make([]int, updates)}
	for i := range tape.victims {
		tape.victims[i] = s.Intn(n)
	}
	return pts, tape
}

func measureStreamChurn(cfg Config) ([]StreamBenchRow, []string) {
	type wl struct {
		name string
		gen  func(uint64, int) []geom.Point
		n    int
	}
	wls := []wl{
		{"disk", workload.Disk, 65536},
		{"circle", workload.Circle, 16384},
	}
	updatesFor := func(n int) int { return n / 100 } // 1% churn
	if cfg.Quick {
		// Same n (the acceptance is pinned at n ≥ 65536) but a shorter
		// tape: the rebuild arm pays a full O(n log n) pass per update.
		updatesFor = func(n int) int {
			u := n / 400
			if u < 64 {
				u = 64
			}
			return u
		}
		wls[1].n = 8192
	}

	ctx := context.Background()
	var rows []StreamBenchRow
	for _, w := range wls {
		updates := updatesFor(w.n)
		pts, tape := makeTape(cfg.Seed+23, w.gen, w.n, updates)

		// Incremental arm: one dataset, mutations flow through the
		// maintained chain (splice repair, churn-threshold fallback).
		st := stream.NewStore(stream.Config{Seed: cfg.Seed})
		d, _, err := st.Register2("bench", pts)
		if err != nil {
			return rows, []string{"ERROR registering bench dataset: " + err.Error()}
		}
		live := append([]geom.Point(nil), pts...)
		start := time.Now()
		for i := 0; i < updates; i++ {
			p, v := tape.adds[i], tape.victims[i]
			if _, err := d.Append2(ctx, []geom.Point{p}); err != nil {
				return rows, []string{fmt.Sprintf("ERROR incremental append %d: %v", i, err)}
			}
			if _, err := d.Delete2(ctx, []geom.Point{live[v]}); err != nil {
				return rows, []string{fmt.Sprintf("ERROR incremental delete %d: %v", i, err)}
			}
			live[v] = p // the appended point replaces the victim in the mirror
		}
		incSec := time.Since(start).Seconds()
		incChain, _, _, err := d.Hull2()
		if err != nil {
			return rows, []string{"ERROR reading incremental hull: " + err.Error()}
		}

		// Rebuild arm: identical tape, from-scratch native chain after
		// every mutation pair — the strategy the subsystem replaces.
		live2 := append([]geom.Point(nil), pts...)
		var rebChain []geom.Point
		start = time.Now()
		for i := 0; i < updates; i++ {
			live2[tape.victims[i]] = tape.adds[i]
			work := append([]geom.Point(nil), live2...)
			rebChain, _, err = engine.NativeChain2D(ctx, work, nil)
			if err != nil {
				return rows, []string{fmt.Sprintf("ERROR rebuild %d: %v", i, err)}
			}
		}
		rebSec := time.Since(start).Seconds()

		parity := len(incChain) == len(rebChain)
		for i := 0; parity && i < len(incChain); i++ {
			parity = incChain[i] == rebChain[i]
		}
		incUPS, rebUPS := float64(updates)/incSec, float64(updates)/rebSec
		rows = append(rows, StreamBenchRow{
			Workload: w.name, N: w.n, Updates: updates,
			ChurnPct: 100 * float64(updates) / float64(w.n),
			IncUPS:   incUPS, RebuildUPS: rebUPS, Speedup: incUPS / rebUPS,
			ParityOK:   parity,
			GOMAXPROCS: runtime.GOMAXPROCS(0),
		})
	}
	notes := []string{
		"both arms replay the identical 1%-churn tape (paired append+delete, constant multiset size); the rebuild arm recomputes the chain with the same native producer the stream fallback uses",
		"disk is the headline regime (tiny hull, updates mostly interior); circle is adversarial — every update touches the chain",
		"parity_ok asserts the arms' final chains are bit-identical and is a gate condition",
		"acceptance: disk at n ≥ 65536 sustains ≥5x rebuild-per-update throughput",
	}
	return rows, notes
}

// gateStream checks E23's acceptance contract and, when a baseline is
// given, drift against the committed BENCH_serve.json stream rows.
func gateStream(rows []StreamBenchRow, basePath string) ([]string, error) {
	var fails []string
	headline := false
	for _, r := range rows {
		if !r.ParityOK {
			fails = append(fails, fmt.Sprintf(
				"%s n=%d: incremental and rebuild chains diverged — parity is a gate condition", r.Workload, r.N))
		}
		if r.Workload == "disk" && r.N >= 65536 {
			headline = true
			if r.Speedup < 5 {
				fails = append(fails, fmt.Sprintf(
					"disk n=%d: incremental is %.2fx rebuild-per-update, acceptance is 5x", r.N, r.Speedup))
			}
		}
	}
	if !headline {
		fails = append(fails, "report is missing the disk n≥65536 headline row")
	}
	if basePath == "" {
		return fails, nil
	}
	base, err := readServeReport(basePath)
	if err != nil {
		return fails, err
	}
	type key struct {
		w string
		n int
	}
	baseRows := map[key]StreamBenchRow{}
	for _, r := range base.Stream {
		baseRows[key{r.Workload, r.N}] = r
	}
	for _, r := range rows {
		br, ok := baseRows[key{r.Workload, r.N}]
		if !ok || br.Updates != r.Updates || br.GOMAXPROCS != r.GOMAXPROCS {
			continue
		}
		if r.Speedup < br.Speedup*0.5 {
			fails = append(fails, fmt.Sprintf(
				"%s n=%d: speedup %.2fx is less than half the baseline's %.2fx",
				r.Workload, r.N, r.Speedup, br.Speedup))
		}
	}
	return fails, nil
}

func init() {
	Register(Experiment{
		ID:    "E23",
		Claim: "incremental hull maintenance sustains ≥5x rebuild-per-update throughput under 1% churn at n ≥ 65536, with the final chain bit-identical to from-scratch",
		Run: func(cfg Config) []Table {
			rows, notes := measureStreamChurn(cfg)

			t := Table{
				Title:   "E23 — streaming churn: incremental maintenance vs rebuild-per-update",
				Columns: []string{"workload", "n", "updates", "churn %", "inc up/s", "rebuild up/s", "speedup", "parity"},
				Notes:   notes,
			}
			for _, r := range rows {
				t.Add(r.Workload, r.N, r.Updates, r.ChurnPct, r.IncUPS, r.RebuildUPS, r.Speedup, r.ParityOK)
			}

			if cfg.ServeJSON != "" {
				// Merge into the shared report rather than clobbering it.
				rep, err := readServeReport(cfg.ServeJSON)
				if err != nil {
					rep = ServeReport{
						Experiment: "E23",
						GOMAXPROCS: runtime.GOMAXPROCS(0),
						FleetSize:  serveFleet,
						Workers:    serveWorkers,
						Quick:      cfg.Quick,
					}
				}
				rep.Stream = rows
				buf, err := json.MarshalIndent(rep, "", "  ")
				if err == nil {
					err = os.WriteFile(cfg.ServeJSON, append(buf, '\n'), 0o644)
				}
				if err != nil {
					t.Notes = append(t.Notes, "ERROR writing "+cfg.ServeJSON+": "+err.Error())
				} else {
					t.Notes = append(t.Notes, "stream rows merged into "+cfg.ServeJSON)
				}
			}
			if cfg.ServeBaseline != "" || cfg.Gate != nil {
				fails, err := gateStream(rows, cfg.ServeBaseline)
				if err != nil {
					fails = append(fails, "baseline unreadable: "+err.Error())
				}
				for _, f := range fails {
					t.Notes = append(t.Notes, "GATE FAIL: "+f)
					if cfg.Gate != nil {
						cfg.Gate(f)
					}
				}
				if len(fails) == 0 {
					t.Notes = append(t.Notes, "gate: acceptance contract holds (disk headline ≥5x, chains bit-identical)")
				}
			}
			return []Table{t}
		},
	})
}
