package bench

import (
	"strconv"
	"time"

	"inplacehull/internal/lp"
	"inplacehull/internal/pram"
	"inplacehull/internal/rng"
	"inplacehull/internal/unsorted"
	"inplacehull/internal/workload"
)

func init() {
	Register(Experiment{
		ID:    "E13",
		Claim: "Ablations of the design choices DESIGN.md calls out (base size k, phase length, fallback switch, base-solver)",
		Run: func(cfg Config) []Table {
			n := 1 << 13
			if cfg.Quick {
				n = 1 << 11
			}
			pts := workload.Disk(cfg.Seed, n)

			// (a) Base-problem size k = s^(1/3) capped at MaxK: larger
			// bases shorten the survivor schedule (fewer steps) but pay
			// k³-scale brute-force work per base.
			ta := Table{
				Title:   "E13a — base-size cap (MaxK) ablation, unsorted 2-d, disk n=" + strconv.Itoa(n),
				Columns: []string{"MaxK", "steps", "work", "levels", "swept"},
			}
			maxKs := []int{4, 8, 16, 32, 64}
			if cfg.Quick {
				maxKs = []int{4, 16, 32}
			}
			for _, k := range maxKs {
				m := pram.New()
				res, err := unsorted.Hull2DOpts(m, rng.New(cfg.Seed+2), pts, unsorted.Options{MaxK: k})
				if err != nil {
					ta.Notes = append(ta.Notes, "ERROR: "+err.Error())
					continue
				}
				ta.Add(k, m.Time(), m.Work(), res.Stats.Levels, res.Stats.BridgeFailures)
			}
			ta.Notes = append(ta.Notes,
				"the paper's k = s^(1/3) balances sample-convergence against the k³ brute-force base cost")

			// (b) Phase length: how often the problem numbering is
			// compacted (§4.1 step 3).
			tb := Table{
				Title:   "E13b — phase-length ablation",
				Columns: []string{"PhaseIters", "steps", "work", "phases"},
			}
			for _, ph := range []int{1, 2, 4, 8, 1 << 20} {
				m := pram.New()
				res, err := unsorted.Hull2DOpts(m, rng.New(cfg.Seed+3), pts, unsorted.Options{PhaseIters: ph})
				if err != nil {
					tb.Notes = append(tb.Notes, "ERROR: "+err.Error())
					continue
				}
				tb.Add(ph, m.Time(), m.Work(), res.Stats.Phases)
			}

			// (c) Fallback switch on an h = n workload: the O(n log n)
			// path (sort + segmented pre-sorted hull) versus riding the
			// recursion to the end.
			tc := Table{
				Title:   "E13c — fallback-switch ablation, circle (h = n)",
				Columns: []string{"threshold", "fell back", "steps", "work"},
			}
			circ := workload.Circle(cfg.Seed, n)
			for _, th := range []int{4, n / 8, n + 1} {
				m := pram.New()
				res, err := unsorted.Hull2DOpts(m, rng.New(cfg.Seed+4), circ, unsorted.Options{FallbackThreshold: th, PhaseIters: 2})
				if err != nil {
					tc.Notes = append(tc.Notes, "ERROR: "+err.Error())
					continue
				}
				tc.Add(th, res.Stats.FellBack, m.Time(), m.Work())
			}
			tc.Notes = append(tc.Notes,
				"threshold 4 switches almost immediately (the paper's l ≥ n^(1/32) regime); n+1 never switches")

			// (d) Base-solver ablation: the sequential comparators for one
			// bridge — Seidel's randomized LP (expected O(n)) vs the
			// O(n³)-processor brute force executed sequentially.
			td := Table{
				Title:   "E13d — sequential bridge solvers (wall clock)",
				Columns: []string{"n", "seidel", "brute force"},
			}
			for _, bn := range sizes(cfg, []int{128, 512}, []int{64, 256, 512}) {
				bpts := workload.Disk(cfg.Seed, bn)
				a := bpts[0].X
				t0 := time.Now()
				if _, ok := lp.SeidelBridge2D(rng.New(cfg.Seed), bpts, a); !ok {
					td.Notes = append(td.Notes, "seidel failed")
					continue
				}
				seidelD := time.Since(t0)
				t0 = time.Now()
				mm := pram.New()
				lp.BruteForce2D(mm, bpts, a)
				bruteD := time.Since(t0)
				td.Add(bn, seidelD.String(), bruteD.String())
			}
			td.Notes = append(td.Notes,
				"Seidel scales linearly, brute force cubically: why §3.3 keeps base problems at Θ(k) = Θ(p^(1/3))")
			return []Table{ta, tb, tc, td}
		},
	})
}
