package bench

import (
	"math"

	"inplacehull/internal/geom"
	"inplacehull/internal/pram"
	"inplacehull/internal/presorted"
	"inplacehull/internal/rng"
	"inplacehull/internal/workload"
)

// prepSorted sorts and deduplicates by x: the Section 2 input contract.
func prepSorted(pts []geom.Point) []geom.Point {
	s := workload.Sorted(pts)
	out := s[:0]
	for i, p := range s {
		if i > 0 && p.X == out[len(out)-1].X {
			if p.Y > out[len(out)-1].Y {
				out[len(out)-1] = p
			}
			continue
		}
		out = append(out, p)
	}
	return out
}

func sizes(cfg Config, quick, full []int) []int {
	if cfg.Quick {
		return quick
	}
	return full
}

func init() {
	Register(Experiment{
		ID:    "E1",
		Claim: "Lemma 2.5: pre-sorted 2-d hull in O(1) steps with O(n log n) processors, almost surely",
		Run: func(cfg Config) []Table {
			t := Table{
				Title:   "E1 — pre-sorted constant-time hull (steps must stay flat)",
				Columns: []string{"workload", "n", "h", "steps", "work", "work/(n·lg n)", "peak procs", "swept"},
			}
			ns := sizes(cfg, []int{1 << 10, 1 << 12}, []int{1 << 10, 1 << 12, 1 << 14, 1 << 16, 1 << 18})
			for _, g := range []workload.Gen2D{{Name: "disk", Gen: workload.Disk}, {Name: "circle", Gen: workload.Circle}} {
				for _, n := range ns {
					pts := prepSorted(g.Gen(cfg.Seed, n))
					m := pram.New()
					res, err := presorted.ConstantTime(m, rng.New(cfg.Seed+7), pts)
					if err != nil {
						t.Notes = append(t.Notes, "ERROR: "+err.Error())
						continue
					}
					nn := float64(len(pts))
					t.Add(g.Name, len(pts), len(res.Chain)-1, m.Time(), m.Work(),
						float64(m.Work())/(nn*math.Log2(nn)), m.PeakProcessors(), res.SweptNodes)
				}
			}
			t.Notes = append(t.Notes,
				"paper: steps O(1), work/(n·lg n) O(1); failures swept per §2.3")
			return []Table{t}
		},
	})

	Register(Experiment{
		ID:    "E2",
		Claim: "Theorem 2: pre-sorted 2-d hull in O(log* n) steps with O(n) processors",
		Run: func(cfg Config) []Table {
			t := Table{
				Title:   "E2 — pre-sorted log* hull (steps ~ log* n, work ~ n)",
				Columns: []string{"n", "steps", "work", "work/n", "peak procs", "peak/n"},
			}
			ns := sizes(cfg, []int{1 << 10, 1 << 13}, []int{1 << 10, 1 << 12, 1 << 14, 1 << 16, 1 << 18})
			for _, n := range ns {
				pts := prepSorted(workload.Disk(cfg.Seed, n))
				m := pram.New()
				_, err := presorted.LogStar(m, rng.New(cfg.Seed+9), pts)
				if err != nil {
					t.Notes = append(t.Notes, "ERROR: "+err.Error())
					continue
				}
				nn := float64(len(pts))
				t.Add(len(pts), m.Time(), m.Work(), float64(m.Work())/nn,
					m.PeakProcessors(), float64(m.PeakProcessors())/nn)
			}
			t.Notes = append(t.Notes,
				"paper: steps O(log* n) (≈3–4 at these n), work/n near-constant",
				"the §2.6 optimal-processor variant is LogStar under the Lemma 7 simulation (see E10)")
			return []Table{t}
		},
	})
}
