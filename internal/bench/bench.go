// Package bench is the experiment harness: it turns each quantitative
// claim of the paper (DESIGN.md §6, experiments E1–E12) into a runnable
// parameter sweep that prints the table the paper would have contained.
// Every experiment is reachable from `go test -bench` (bench_test.go at
// the repository root) and from the cmd/hullbench CLI.
package bench

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"inplacehull/internal/obs"
)

// Table is one result table of an experiment.
type Table struct {
	Title   string
	Columns []string
	Rows    [][]string
	// Notes are printed under the table (paper-vs-measured commentary).
	Notes []string
}

// Add appends a row, formatting each value.
func (t *Table) Add(vals ...any) {
	row := make([]string, len(vals))
	for i, v := range vals {
		switch x := v.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.3g", x)
		case string:
			row[i] = x
		default:
			row[i] = fmt.Sprint(v)
		}
	}
	t.Rows = append(t.Rows, row)
}

// Fprint renders the table with aligned columns.
func (t *Table) Fprint(w io.Writer) {
	fmt.Fprintf(w, "\n== %s ==\n", t.Title)
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, r := range t.Rows {
		for i, v := range r {
			if i < len(widths) && len(v) > widths[i] {
				widths[i] = len(v)
			}
		}
	}
	line := func(vals []string) {
		var b strings.Builder
		for i, v := range vals {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(v)
			for pad := len(v); pad < widths[i]; pad++ {
				b.WriteByte(' ')
			}
		}
		fmt.Fprintln(w, strings.TrimRight(b.String(), " "))
	}
	line(t.Columns)
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, r := range t.Rows {
		line(r)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "  note: %s\n", n)
	}
}

// CSV renders the table as RFC-4180-ish CSV with a leading title comment,
// for downstream plotting.
func (t *Table) CSV(w io.Writer) {
	fmt.Fprintf(w, "# %s\n", t.Title)
	writeCSVRow(w, t.Columns)
	for _, r := range t.Rows {
		writeCSVRow(w, r)
	}
}

func writeCSVRow(w io.Writer, vals []string) {
	for i, v := range vals {
		if i > 0 {
			io.WriteString(w, ",")
		}
		if strings.ContainsAny(v, ",\"\n") {
			io.WriteString(w, `"`+strings.ReplaceAll(v, `"`, `""`)+`"`)
		} else {
			io.WriteString(w, v)
		}
	}
	io.WriteString(w, "\n")
}

// Config selects the sweep scale.
type Config struct {
	// Seed drives every randomized component.
	Seed uint64
	// Quick shrinks the sweeps for tests and smoke runs.
	Quick bool
	// Metrics, when non-nil, aggregates the per-phase collectors of
	// observability-instrumented experiments (E16) for the cmd/hullbench
	// -metrics Prometheus endpoint.
	Metrics *obs.Metrics
	// PramJSON, when non-empty, makes E17 write its machine-readable
	// engine report (the BENCH_pram.json schema) to this path.
	PramJSON string
	// PramBaseline, when non-empty, makes E17 load a committed
	// BENCH_pram.json and check the current run against it; regressions
	// beyond the 10% contract are appended to the table notes and
	// delivered through Gate.
	PramBaseline string
	// ServeJSON, when non-empty, makes E18 write its machine-readable
	// serving report (the BENCH_serve.json schema) to this path.
	ServeJSON string
	// ServeBaseline, when non-empty, makes E18 additionally compare
	// against a committed BENCH_serve.json (E18's absolute acceptance
	// contract is checked whenever Gate is set, baseline or not).
	ServeBaseline string
	// Gate receives regression-gate failure messages from experiments
	// that support baseline comparison (E17, E18). cmd/hullbench uses it
	// to exit non-zero; a nil Gate means failures are notes only.
	Gate func(msg string)
}

// Experiment is one entry of the registry.
type Experiment struct {
	// ID is the experiment identifier from DESIGN.md §6 (e.g. "E3").
	ID string
	// Claim is the paper statement under test.
	Claim string
	// Run executes the sweep and returns its tables.
	Run func(cfg Config) []Table
}

var registry = map[string]Experiment{}

// Register adds an experiment; called from init functions.
func Register(e Experiment) {
	registry[e.ID] = e
}

// Get returns the experiment with the given ID.
func Get(id string) (Experiment, bool) {
	e, ok := registry[id]
	return e, ok
}

// All returns the experiments sorted by ID.
func All() []Experiment {
	var out []Experiment
	for _, e := range registry {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool {
		// E1 < E2 < … < E10 < E11: numeric-aware compare.
		return expNum(out[i].ID) < expNum(out[j].ID)
	})
	return out
}

func expNum(id string) int {
	n := 0
	for _, c := range id {
		if c >= '0' && c <= '9' {
			n = n*10 + int(c-'0')
		}
	}
	return n
}
