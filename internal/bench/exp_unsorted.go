package bench

import (
	"math"

	"inplacehull/internal/pram"
	"inplacehull/internal/rng"
	"inplacehull/internal/unsorted"
	"inplacehull/internal/workload"
)

func init() {
	Register(Experiment{
		ID:    "E3",
		Claim: "Theorem 5: unsorted 2-d hull in O(log n) time, O(n log h) work, w.v.h.p.",
		Run: func(cfg Config) []Table {
			t := Table{
				Title:   "E3 — unsorted 2-d hull across the h spectrum",
				Columns: []string{"workload", "n", "h", "steps", "steps/lg n", "work", "work/(n·lg h)", "levels", "swept"},
			}
			ns := sizes(cfg, []int{1 << 11}, []int{1 << 11, 1 << 13, 1 << 15, 1 << 17})
			for _, g := range workload.Gens2D {
				for _, n := range ns {
					pts := g.Gen(cfg.Seed, n)
					m := pram.New()
					res, err := unsorted.Hull2D(m, rng.New(cfg.Seed+3), pts)
					if err != nil {
						t.Notes = append(t.Notes, g.Name+" ERROR: "+err.Error())
						continue
					}
					h := len(res.Chain)
					lgh := math.Log2(float64(h) + 2)
					lgn := math.Log2(float64(n))
					t.Add(g.Name, n, h, m.Time(), float64(m.Time())/lgn,
						m.Work(), float64(m.Work())/(float64(n)*lgh),
						res.Stats.Levels, res.Stats.BridgeFailures)
				}
			}
			t.Notes = append(t.Notes,
				"paper: steps/lg n and work/(n·lg h) are the O(1) ratios of Theorem 5",
				"h here is the size of the *upper* hull the algorithm builds")
			return []Table{t}
		},
	})

	Register(Experiment{
		ID:    "E4",
		Claim: "Theorem 6: unsorted 3-d hull in O(log² n) time, O(min{n log² h, n log n}) work",
		Run: func(cfg Config) []Table {
			t := Table{
				Title:   "E4 — unsorted 3-d hull across the h spectrum",
				Columns: []string{"workload", "n", "facets", "steps", "steps/lg² n", "work", "work/bound", "depth", "swept"},
			}
			ns := sizes(cfg, []int{1 << 9}, []int{1 << 9, 1 << 11, 1 << 13})
			for _, g := range workload.Gens3D {
				for _, n := range ns {
					pts := g.Gen(cfg.Seed, n)
					m := pram.New()
					res, err := unsorted.Hull3D(m, rng.New(cfg.Seed+5), pts)
					if err != nil {
						t.Notes = append(t.Notes, g.Name+" ERROR: "+err.Error())
						continue
					}
					h := float64(len(res.Facets)) + 2
					nn := float64(n)
					lgn := math.Log2(nn)
					bound := math.Min(nn*math.Log2(h)*math.Log2(h), nn*lgn)
					t.Add(g.Name, n, len(res.Facets), m.Time(),
						float64(m.Time())/(lgn*lgn), m.Work(),
						float64(m.Work())/bound, res.Stats.TotalDepth, res.Stats.BridgeFailures)
				}
			}
			t.Notes = append(t.Notes,
				"paper: steps/lg² n and work/min{n·lg² h, n·lg n} are the O(1) ratios of Theorem 6",
				"facet count is the cap-facet output size (≈ upper-hull facets; see DESIGN.md §5)")
			return []Table{t}
		},
	})

	Register(Experiment{
		ID:    "E8",
		Claim: "Lemmas 5.1/6.1: subproblem size < (15/16)^i·n whp at level i",
		Run: func(cfg Config) []Table {
			t2 := Table{
				Title:   "E8a — 2-d max subproblem size per level vs (15/16)^i·n",
				Columns: []string{"level", "max size", "(15/16)^i·n", "within bound"},
			}
			n := 1 << 13
			if cfg.Quick {
				n = 1 << 11
			}
			pts := workload.Circle(cfg.Seed, n)
			m := pram.New()
			res, err := unsorted.Hull2D(m, rng.New(cfg.Seed+8), pts)
			if err == nil {
				for i, sz := range res.Stats.MaxProblemSize {
					bound := math.Pow(15.0/16, float64(i)) * float64(n)
					t2.Add(i, sz, bound, sz <= int(bound)+1)
				}
			}
			t3 := Table{
				Title:   "E8b — 3-d max subproblem size per level",
				Columns: []string{"level", "max size", "(15/16)^i·n", "within bound"},
			}
			pts3 := workload.Ball(cfg.Seed, n/4)
			m3 := pram.New()
			res3, err := unsorted.Hull3D(m3, rng.New(cfg.Seed+9), pts3)
			if err == nil {
				for i, sz := range res3.Stats.MaxProblemSize {
					bound := math.Pow(15.0/16, float64(i)) * float64(n/4)
					t3.Add(i, sz, bound, sz <= int(bound)+1)
				}
			}
			t2.Notes = append(t2.Notes,
				"paper: P[max > (15/16)^i·n] ≤ 2^−2i (2-d), ≤ 2^−4i (3-d); random splitters usually decay much faster")
			return []Table{t2, t3}
		},
	})
}
