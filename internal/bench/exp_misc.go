package bench

import (
	"math"

	"inplacehull/internal/alloc"
	"inplacehull/internal/hull2d"
	"inplacehull/internal/lp"
	"inplacehull/internal/par"
	"inplacehull/internal/pram"
	"inplacehull/internal/rng"
	"inplacehull/internal/unsorted"
	"inplacehull/internal/workload"
)

func init() {
	Register(Experiment{
		ID:    "E10",
		Claim: "Lemma 7 (Matias–Vishkin): p-processor simulation in T = t + w/p + t_c·log t",
		Run: func(cfg Config) []Table {
			t := Table{
				Title:   "E10 — processor-allocation simulation of the unsorted 2-d hull",
				Columns: []string{"p", "simulated T", "Lemma 7 bound", "within", "speedup"},
			}
			n := 1 << 14
			if cfg.Quick {
				n = 1 << 11
			}
			pts := workload.Disk(cfg.Seed, n)
			m := pram.New(pram.WithProfile())
			if _, err := unsorted.Hull2D(m, rng.New(cfg.Seed+10), pts); err != nil {
				t.Notes = append(t.Notes, "ERROR: "+err.Error())
				return []Table{t}
			}
			profile := m.Profile()
			for _, p := range []int{1, 2, 4, 8, 16, 64, 256, 1024, 1 << 20} {
				sim := alloc.SimulatedTime(profile, p, alloc.DefaultTc)
				bound := alloc.Bounds(profile, p, alloc.DefaultTc)
				t.Add(p, sim, bound, sim <= bound, alloc.Speedup(profile, p, alloc.DefaultTc))
			}
			t.Notes = append(t.Notes,
				"profile: t = steps, w = work of one Hull2D run; T(1) ≈ w, T(∞) ≈ t — the Brent/Lemma 7 envelope")
			return []Table{t}
		},
	})

	Register(Experiment{
		ID:    "E11",
		Claim: "Theorem 5 matches the sequential output-sensitive work of Kirkpatrick–Seidel [21]",
		Run: func(cfg Config) []Table {
			t := Table{
				Title:   "E11 — parallel work vs sequential output-sensitive baselines",
				Columns: []string{"workload", "n", "h", "PRAM work", "KS ops", "Chan ops", "work/KS", "n·lg h"},
			}
			ns := sizes(cfg, []int{1 << 11}, []int{1 << 12, 1 << 14, 1 << 16})
			for _, g := range workload.Gens2D {
				for _, n := range ns {
					pts := g.Gen(cfg.Seed, n)
					m := pram.New()
					res, err := unsorted.Hull2D(m, rng.New(cfg.Seed+11), pts)
					if err != nil {
						t.Notes = append(t.Notes, g.Name+" ERROR: "+err.Error())
						continue
					}
					_, ksOps := hull2d.KirkpatrickSeidelOps(pts)
					_, chanOps, chanErr := hull2d.ChanUpperOps(pts)
					if chanErr != nil {
						t.Notes = append(t.Notes, g.Name+" CHAN ERROR: "+chanErr.Error())
						continue
					}
					h := len(res.Chain)
					t.Add(g.Name, n, h, m.Work(), ksOps, chanOps,
						float64(m.Work())/float64(ksOps+1),
						float64(n)*math.Log2(float64(h)+2))
				}
			}
			t.Notes = append(t.Notes,
				"the paper's claim is an asymptotic *work-bound match*: work/KS should stay bounded across n and h regimes")
			return []Table{t}
		},
	})

	Register(Experiment{
		ID:    "E12",
		Claim: "Observations 2.1–2.3, Lemma 2.4: the constant-time CRCW primitives",
		Run: func(cfg Config) []Table {
			t := Table{
				Title:   "E12 — primitive micro-measurements (steps must not scale with n)",
				Columns: []string{"primitive", "n", "steps", "work"},
			}
			ns := sizes(cfg, []int{1 << 10, 1 << 14}, []int{1 << 10, 1 << 14, 1 << 18})
			for _, n := range ns {
				m := pram.New()
				par.FirstOne(m, n, func(p int) bool { return p == n-1 })
				t.Add("first-one (Obs 2.1)", n, m.Time(), m.Work())
			}
			for _, b := range []int{8, 16, 32} {
				pts := workload.Disk(cfg.Seed, b)
				m := pram.New()
				lp.BruteForce2D(m, pts, pts[0].X)
				t.Add("brute LP d=2 (Obs 2.2)", b, m.Time(), m.Work())
			}
			for _, n := range ns {
				m := pram.New()
				xs := make([]int64, n)
				for i := range xs {
					xs[i] = int64(i % 7)
				}
				par.PrefixSum(m, xs)
				t.Add("prefix sum (lg n steps)", n, m.Time(), m.Work())
			}
			t.Notes = append(t.Notes,
				"first-one and brute-force LP are O(1)-step CRCW primitives; prefix sum is the O(log n) comparator")
			return []Table{t}
		},
	})
}
