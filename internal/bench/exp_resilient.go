package bench

import (
	"context"
	"fmt"

	"inplacehull/internal/fault"
	"inplacehull/internal/pram"
	"inplacehull/internal/resilient"
	"inplacehull/internal/rng"
	"inplacehull/internal/workload"
)

// E15 measures what resilience costs: the supervisor's retry and ladder
// machinery under single-site injection-rate sweeps, reported as attempt
// distributions, tier usage, and PRAM-work overhead relative to the
// clean (rate-0) supervised run. Complements E14c, which certifies the
// recovery contract on the mixed-plan chaos population.
func init() {
	Register(Experiment{
		ID: "E15",
		Claim: "Resilience overhead: a clean supervised run costs what the raw algorithm costs; " +
			"under rising fault rates the reseed-retry/ladder recovery multiplies PRAM work by " +
			"small bounded factors while keeping every answer oracle-verified",
		Run: func(cfg Config) []Table {
			runs, n2, n3 := 40, 512, 96
			if cfg.Quick {
				runs, n2, n3 = 8, 128, 48
			}
			rates := []float64{0, 0.25, 0.5, 1}
			sites := []fault.Site{fault.VoteSkew, fault.LPTimeout}

			type cell struct {
				attempts            []int
				tiers               map[resilient.Tier]int
				work                int64
				failures, surrender int
			}
			sweep := func(algo string) *Table {
				t := &Table{
					Title: fmt.Sprintf("E15 — supervised %s, %d runs per cell (seed %d)", algo, runs, cfg.Seed),
					Columns: []string{"site", "rate", "avg attempts", "max attempts",
						"randomized", "sequential", "degenerate", "work ×clean", "errors"},
				}
				var clean int64 // avg work of the rate-0 cell, the overhead denominator
				for _, site := range sites {
					for _, rate := range rates {
						c := cell{tiers: map[resilient.Tier]int{}}
						for i := 0; i < runs; i++ {
							var plan fault.Plan
							plan.Seed = cfg.Seed + uint64(i)*7919
							plan.Rates[site] = rate
							rnd := fault.Attach(rng.New(plan.Seed), fault.NewInjector(plan))
							m := pram.New(pram.WithWorkers(1))
							var rep resilient.Report
							var err error
							if algo == "hull3d" {
								pts := workload.Ball(plan.Seed, n3)
								_, rep, err = resilient.Hull3D(context.Background(), m, rnd, pts, resilient.Policy{})
							} else {
								pts := workload.Disk(plan.Seed, n2)
								_, rep, err = resilient.Hull2D(context.Background(), m, rnd, pts, resilient.Policy{})
							}
							if err != nil {
								c.failures++
								continue
							}
							c.attempts = append(c.attempts, rep.Attempts)
							c.tiers[rep.Tier]++
							c.work += rep.TotalWork
						}
						nOK := len(c.attempts)
						sumA, maxA := 0, 0
						for _, a := range c.attempts {
							sumA += a
							if a > maxA {
								maxA = a
							}
						}
						avgA, avgW := 0.0, int64(0)
						if nOK > 0 {
							avgA = float64(sumA) / float64(nOK)
							avgW = c.work / int64(nOK)
						}
						if rate == 0 && clean == 0 {
							clean = avgW
						}
						over := 0.0
						if clean > 0 {
							over = float64(avgW) / float64(clean)
						}
						t.Add(site.String(), rate, fmt.Sprintf("%.2f", avgA), maxA,
							c.tiers[resilient.TierRandomized], c.tiers[resilient.TierSequential],
							c.tiers[resilient.TierDegenerate], fmt.Sprintf("%.2f", over), c.failures)
					}
				}
				t.Notes = append(t.Notes,
					"rate 0 is the clean supervised baseline; 'work ×clean' is total PRAM work across attempts relative to it",
					"'errors' must be 0: the supervisor returns a verified hull at every rate (the ladder absorbs rate-1 poison)")
				return t
			}
			t2 := sweep("hull2d")
			t3 := sweep("hull3d")
			return []Table{*t2, *t3}
		},
	})
}
