package bench

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	"inplacehull/internal/serve"
)

// Experiment E21 prices the native execution backend against the counted
// (simulated-PRAM) engine on the serving path, extending BENCH_serve.json
// with backend comparison rows.
//
// E18 established where the serving layer's win comes from: on repeated
// queries the cache supplies the speedup, and on cache misses the counted
// rows track the per-machine baseline because the simulated engine's
// compute dominates either way. E21 measures what the engine swap is
// worth on exactly those cache-miss queries: the same closed-loop
// request stream is replayed twice against one server — once with every
// query pinned to `"backend": "counted"`, once pinned to
// `"backend": "native"` — with the result cache disabled so every
// request pays full compute. The acceptance criterion is a ≥10x
// throughput gap on the headline row (the native row with the widest
// same-n gap): the counted engine spends its time maintaining step
// barriers and work counters that the native backend simply does not
// have. Where the headline lands depends on the host: on a single-core
// runner the large-n rows converge to the per-primitive simulation cost
// ratio and the small-n rows carry the full fixed-overhead gap, while
// multi-core hosts widen the large-n rows through the native backend's
// binary forking (the counted engine simulates its parallelism on a
// fixed worker pool either way).
//
// Both streams run through the full request path (admission, batching,
// machine checkout) on the same serve.Config; only the per-query wire
// string differs, which is precisely the knob a production client has.

// NativeServeRow is one backend-comparison row in BENCH_serve.json.
type NativeServeRow struct {
	Backend string  `json:"backend"`
	N       int     `json:"n"`
	Conc    int     `json:"conc"`
	Total   int     `json:"total"`
	OK      int     `json:"ok"`
	Shed    int     `json:"shed"`
	QPS     float64 `json:"qps"`
	P50us   float64 `json:"p50_us"`
	P95us   float64 `json:"p95_us"`
	// Speedup = this row's QPS / the same-n counted QPS, same run
	// (1 on the counted rows themselves).
	Speedup float64 `json:"speedup_vs_counted"`
	// GOMAXPROCS stamps the core count the row was measured at: the
	// backend gap is strongly core-count dependent (see gateNative), so
	// drift is only compared between matching stamps.
	GOMAXPROCS int `json:"gomaxprocs,omitempty"`
}

func measureNativeServe(cfg Config) ([]NativeServeRow, []string) {
	// The headline size stays in quick mode: the ≥10x acceptance gap is a
	// large-n claim (the counted engine's per-primitive overhead dominates
	// there), so the CI gate must measure it even when the totals shrink.
	ns := []int{64, 256, 1024}
	conc, total := 32, 2000
	if cfg.Quick {
		conc, total = 16, 600
	}

	var rows []NativeServeRow
	for _, n := range ns {
		qs := serveStream(cfg.Seed+21, n)
		s := serve.NewServer(serve.Config{
			FleetSize: serveFleet, Workers: serveWorkers,
			MaxQueue: conc * 2, MaxBatch: 16,
			BatchWindow: 200 * time.Microsecond,
			CacheSize:   0, // cache-miss serving is the point
		})
		run := func(backend string) serve.LoadResult {
			return serve.RunClosedLoop(conc, total, func(i int) error {
				q := qs[i%len(qs)]
				// Culling is pinned off: the default admission filter would
				// shrink both streams' inputs (flattering the counted engine
				// most) and confound the backend gap. E22 prices the filter;
				// E21 prices the engines.
				_, err := s.Query2D(context.Background(), serve.Query{
					Points2: q.pts, Seed: q.seed, NoCache: true,
					Backend: backend, Cull: "off",
				})
				return err
			})
		}
		counted := run("counted")
		native := run("native")
		s.Close()

		add := func(backend string, lr serve.LoadResult, speedup float64) {
			rows = append(rows, NativeServeRow{
				Backend: backend, N: n, Conc: conc, Total: total,
				OK: lr.OK, Shed: lr.Overloads,
				QPS:   lr.Throughput,
				P50us: float64(lr.P50.Microseconds()), P95us: float64(lr.P95.Microseconds()),
				Speedup:    speedup,
				GOMAXPROCS: runtime.GOMAXPROCS(0),
			})
		}
		add("counted", counted, 1)
		add("native", native, native.Throughput/counted.Throughput)
	}
	notes := []string{
		"one server, cache disabled; the two streams differ only in the per-query backend wire string",
		"speedup is same-run QPS over the counted row at the same n; the counted engine pays step barriers and work counters on every primitive, the native backend does not",
		"acceptance: the widest same-n gap must clear 10x, every native row 2x (single-core hosts peak at small n, multi-core hosts at large n)",
	}
	return rows, notes
}

// gateNative checks the backend rows against the acceptance contract and,
// when a baseline is given, against the committed BENCH_serve.json's
// native rows for drift. The contract is core-count aware: the ≥10x
// headline was measured on a single-core runner, where the counted
// engine's fixed simulation overhead is fully exposed; on multi-core
// hosts the counted engine's worker pool soaks up real cores and the gap
// legitimately narrows, so the headline floor there is 4x. The 2x
// every-row floor holds everywhere — the native backend never pays step
// barriers or work counters, whatever the core count. Drift is compared
// only between rows with matching (n, conc, total, gomaxprocs): a
// baseline recorded at one core count says nothing about another.
func gateNative(rows []NativeServeRow, basePath string) ([]string, error) {
	var fails []string
	native := map[int]NativeServeRow{}
	var best NativeServeRow
	for _, r := range rows {
		if r.Shed > 0 {
			fails = append(fails, fmt.Sprintf(
				"%s n=%d: %d requests shed with queue 2×conc", r.Backend, r.N, r.Shed))
		}
		if r.Backend != "native" {
			continue
		}
		native[r.N] = r
		if r.Speedup > best.Speedup {
			best = r
		}
		if r.Speedup < 2 {
			fails = append(fails, fmt.Sprintf(
				"native n=%d: %.2fx counted throughput, acceptance floor is 2x", r.N, r.Speedup))
		}
	}
	headline := 10.0
	if runtime.GOMAXPROCS(0) > 1 {
		headline = 4.0
	}
	if len(native) == 0 {
		fails = append(fails, "report has no native rows")
	} else if best.Speedup < headline {
		fails = append(fails, fmt.Sprintf(
			"headline: widest native-vs-counted gap is %.2fx (n=%d) on cache misses, acceptance is %.0fx at %d cores",
			best.Speedup, best.N, headline, runtime.GOMAXPROCS(0)))
	}

	if basePath == "" {
		return fails, nil
	}
	base, err := readServeReport(basePath)
	if err != nil {
		return fails, err
	}
	// Drift check only against configuration-matched baseline rows (a
	// -quick run against a full-scale baseline, or a run on a host with a
	// different core count, relies on the absolute contract above).
	baseNative := map[[2]int]NativeServeRow{}
	for _, r := range base.Native {
		if r.Backend == "native" {
			baseNative[[2]int{r.N, r.Conc}] = r
		}
	}
	for n, r := range native {
		br, ok := baseNative[[2]int{n, r.Conc}]
		if !ok || br.Total != r.Total || br.GOMAXPROCS != r.GOMAXPROCS {
			continue
		}
		if r.Speedup < br.Speedup*0.5 {
			fails = append(fails, fmt.Sprintf(
				"native n=%d: speedup %.2fx is less than half the baseline's %.2fx", n, r.Speedup, br.Speedup))
		}
	}
	return fails, nil
}

// readServeReport loads a BENCH_serve.json.
func readServeReport(path string) (ServeReport, error) {
	var rep ServeReport
	raw, err := os.ReadFile(path)
	if err != nil {
		return rep, err
	}
	if err := json.Unmarshal(raw, &rep); err != nil {
		return rep, fmt.Errorf("%s: %w", path, err)
	}
	return rep, nil
}

func init() {
	Register(Experiment{
		ID:    "E21",
		Claim: "native backend serves cache-miss queries ≥10x the counted engine's throughput at the headline size (≥2x at every size)",
		Run: func(cfg Config) []Table {
			rows, notes := measureNativeServe(cfg)

			t := Table{
				Title:   "E21 — serving backends on cache-miss queries: counted PRAM vs native",
				Columns: []string{"backend", "n", "conc", "q/s", "p50 µs", "p95 µs", "vs counted"},
				Notes:   notes,
			}
			for _, r := range rows {
				t.Add(r.Backend, r.N, r.Conc, r.QPS, r.P50us, r.P95us, r.Speedup)
			}

			if cfg.ServeJSON != "" {
				// Merge into the E18 report rather than clobbering it: the
				// two experiments share BENCH_serve.json.
				rep, err := readServeReport(cfg.ServeJSON)
				if err != nil {
					rep = ServeReport{
						Experiment: "E21",
						GOMAXPROCS: runtime.GOMAXPROCS(0),
						FleetSize:  serveFleet,
						Workers:    serveWorkers,
						Quick:      cfg.Quick,
					}
				}
				rep.Native = rows
				buf, err := json.MarshalIndent(rep, "", "  ")
				if err == nil {
					err = os.WriteFile(cfg.ServeJSON, append(buf, '\n'), 0o644)
				}
				if err != nil {
					t.Notes = append(t.Notes, "ERROR writing "+cfg.ServeJSON+": "+err.Error())
				} else {
					t.Notes = append(t.Notes, "native rows merged into "+cfg.ServeJSON)
				}
			}
			if cfg.ServeBaseline != "" || cfg.Gate != nil {
				fails, err := gateNative(rows, cfg.ServeBaseline)
				if err != nil {
					fails = append(fails, "baseline unreadable: "+err.Error())
				}
				for _, f := range fails {
					t.Notes = append(t.Notes, "GATE FAIL: "+f)
					if cfg.Gate != nil {
						cfg.Gate(f)
					}
				}
				if len(fails) == 0 {
					t.Notes = append(t.Notes, "gate: acceptance contract holds (native ≥10x counted at the headline size, ≥2x at every size, no shedding)")
				}
			}
			return []Table{t}
		},
	})
}
