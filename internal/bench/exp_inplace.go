package bench

import (
	"math"
	"strconv"
	"strings"

	"inplacehull/internal/compact"
	"inplacehull/internal/geom"
	"inplacehull/internal/lp"
	"inplacehull/internal/pram"
	"inplacehull/internal/rng"
	"inplacehull/internal/sample"
	"inplacehull/internal/sweep"
	"inplacehull/internal/workload"
)

func init() {
	Register(Experiment{
		ID:    "E5",
		Claim: "Lemma 3.1/Corollary 3.1: in-place sample of Θ(k) in O(1) steps, uniform w.p. ≥ 1 − 2(e/2)^−k",
		Run: func(cfg Config) []Table {
			t := Table{
				Title:   "E5a — in-place random sample: size distribution vs k",
				Columns: []string{"k", "trials", "mean size", "P[size < k/2]", "bound 2(e/2)^-k", "mean writers", "steps"},
			}
			trials := 400
			if cfg.Quick {
				trials = 60
			}
			n := 1 << 12
			for _, k := range []int{4, 8, 16, 32, 64, 128} {
				under, sizes, writers := 0, 0, 0
				var steps int64
				for i := 0; i < trials; i++ {
					m := pram.New()
					res := sample.Sized(m, rng.New(cfg.Seed+uint64(k*trials+i)), n, k, n, func(p int) bool { return true })
					sizes += len(res.Members)
					writers += res.Writers
					if len(res.Members) < k/2 {
						under++
					}
					steps = m.Time()
				}
				bound := 2 * math.Pow(math.E/2, -float64(k))
				t.Add(k, trials, float64(sizes)/float64(trials),
					float64(under)/float64(trials), bound,
					float64(writers)/float64(trials), steps)
			}

			// Vote uniformity: chi-squared over 8 live positions.
			tv := Table{
				Title:   "E5b — random vote uniformity (8 live positions)",
				Columns: []string{"trials", "chi2 (7 dof)", "99% crit", "uniform?"},
			}
			voteTrials := 4000
			if cfg.Quick {
				voteTrials = 800
			}
			counts := map[int]int{}
			total := 0
			for i := 0; i < voteTrials; i++ {
				m := pram.New()
				v := sample.Vote(m, rng.New(cfg.Seed+uint64(900000+i)), 64, 8, 8, func(p int) bool { return p%8 == 0 })
				if v >= 0 {
					counts[v]++
					total++
				}
			}
			chi2 := 0.0
			exp := float64(total) / 8
			for p := 0; p < 64; p += 8 {
				d := float64(counts[p]) - exp
				chi2 += d * d / exp
			}
			tv.Add(total, chi2, 18.48, chi2 <= 18.48)
			tv.Notes = append(tv.Notes, "paper: the vote is uniformly random w.p. ≥ 1 − 2(e/2)^−k")
			return []Table{t, tv}
		},
	})

	Register(Experiment{
		ID:    "E6",
		Claim: "Lemma 3.2: in-place approximate compaction in O(1) steps with o(m) work space",
		Run: func(cfg Config) []Table {
			t := Table{
				Title:   "E6 — in-place approximate compaction",
				Columns: []string{"m", "marked k", "steps", "ok", "overflow detected"},
			}
			ms := sizes(cfg, []int{1 << 10, 1 << 14}, []int{1 << 10, 1 << 12, 1 << 14, 1 << 16, 1 << 18})
			for _, mm := range ms {
				for _, k := range []int{4, 16, 32} {
					mach := pram.New()
					s := rng.New(cfg.Seed + uint64(mm+k))
					marked := map[int]bool{}
					for len(marked) < k {
						marked[s.Intn(mm)] = true
					}
					ids, ok := compact.InPlaceCompact(mach, s, mm, k, 0.34, func(p int) bool { return marked[p] })
					t.Add(mm, k, mach.Time(), ok && len(ids) == k, "-")
				}
				// Overflow: mark k² elements with bound k — must detect.
				mach := pram.New()
				s := rng.New(cfg.Seed + uint64(mm) + 1)
				_, ok := compact.InPlaceCompact(mach, s, mm, 8, 0.34, func(p int) bool { return p%4 == 0 })
				t.Add(mm, mm/4, mach.Time(), "-", !ok)
			}
			t.Notes = append(t.Notes,
				"paper: O(1/δ) steps independent of m; over-threshold marking must be detected (Lemma 2.1 semantics)")
			return []Table{t}
		},
	})

	Register(Experiment{
		ID:    "E7",
		Claim: "Lemmas 4.1/4.2: bridge-finding survivors collapse within constant iterations, failure e^−Ω(k^r)",
		Run: func(cfg Config) []Table {
			t := Table{
				Title:   "E7 — in-place bridge finding: survivor decay",
				Columns: []string{"m", "k", "iters", "survivor trace", "steps", "ok"},
			}
			lp.Trace = true
			defer func() { lp.Trace = false }()
			ms := sizes(cfg, []int{1 << 10}, []int{1 << 8, 1 << 12, 1 << 16, 1 << 20})
			for _, mm := range ms {
				pts := workload.Disk(cfg.Seed, mm)
				k := int(math.Cbrt(float64(mm))) + 1
				if k > 24 {
					k = 24
				}
				m := pram.New()
				res := lp.Bridge2D(m, rng.New(cfg.Seed+uint64(mm)), mm,
					func(v int) geom.Point { return pts[v] },
					func(v int) bool { return true }, mm, pts[0], k)
				t.Add(mm, k, res.Iterations, fmtTrace(res.SurvivorTrace), m.Time(), res.OK)
			}
			t.Notes = append(t.Notes,
				"paper: survivors shrink below k^(1/5) within β iterations, then one compaction finishes")
			return []Table{t}
		},
	})

	Register(Experiment{
		ID:    "E9",
		Claim: "§2.3: failure sweeping lifts confidence from p(m) to p(n)",
		Run: func(cfg Config) []Table {
			t := Table{
				Title:   "E9 — failure sweeping under injected failures",
				Columns: []string{"problems q", "injected failures", "compaction ok", "resolved", "sweep steps", "naive steps"},
			}
			n := 1 << 16
			qs := sizes(cfg, []int{256}, []int{64, 1024, 16384})
			for _, q := range qs {
				for _, failRate := range []float64{0.001, 0.01} {
					s := rng.New(cfg.Seed + uint64(q))
					failed := make([]bool, q)
					injected := 0
					for j := range failed {
						if s.Bernoulli(failRate) {
							failed[j] = true
							injected++
						}
					}
					resolved := 0
					m := pram.New()
					rep := sweep.Sweep(m, s, n, q,
						func(j int) bool { return failed[j] },
						func(sub *pram.Machine, j int) {
							resolved++
							sub.Charge(1, int64(math.Ceil(math.Pow(float64(n), 0.75))))
						})
					// Naive ablation: resolving failures one after another
					// costs one step each instead of the swept O(1).
					naive := int64(injected) + 1
					t.Add(q, injected, rep.CompactionOK, resolved, m.Time(), naive)
				}
			}
			t.Notes = append(t.Notes,
				"sweeping compacts failures into an n^(1/4) area and re-solves them all at once: steps stay O(1) while the naive path scales with the failure count")
			return []Table{t}
		},
	})
}

func fmtTrace(tr []int) string {
	if len(tr) == 0 {
		return "-"
	}
	parts := make([]string, len(tr))
	for i, v := range tr {
		parts[i] = strconv.Itoa(v)
	}
	return strings.Join(parts, "→")
}
