package bench

import (
	"fmt"

	"inplacehull/internal/fault/soak"
	"inplacehull/internal/resilient"
)

func init() {
	Register(Experiment{
		ID: "E19",
		Claim: "Noisy primitives: at predicate-flip rates p ∈ {0.05, 0.1, 0.2} every " +
			"response is an oracle-exact hull, a certified ε-approximate hull labeled " +
			"as such, or a typed error — never a silently wrong answer",
		Run: func(cfg Config) []Table {
			count := 600
			if cfg.Quick {
				count = 60
			}
			rates := []float64{0.05, 0.1, 0.2}

			// E19a: default policy — the supervisor derives the vote
			// schedule from the injected flip rate (Hoeffding, δ = 1e-9);
			// degraded scenarios recover through the voted noisy tier.
			ta := Table{
				Title: fmt.Sprintf("E19a — noisy-primitive soak, %d scenarios per rate, default vote schedule (master seed %d)",
					count, cfg.Seed),
				Columns: []string{"flip p", "runs", "exact-ok", "via noisy", "approx-ok", "typed-error", "violations", "max votes"},
			}
			for _, p := range rates {
				sum := soak.NoisySoak(cfg.Seed, count, p, resilient.Policy{ApproxEps: 0.05})
				ta.Add(p, sum.Scenarios, sum.ExactOK, sum.ByTier["noisy"], sum.ApproxOK,
					sum.TypedErrors, len(sum.Failures), sum.MaxVotes)
				noteFailures(&ta, sum.Failures)
			}
			ta.Notes = append(ta.Notes,
				"exact-ok responses are checked against the sequential oracle; the flip site only feeds the supervisor's voted rungs, so raw randomized runs stay exact",
				"vote schedules follow k ≥ ln(1/δ)/(2(1/2−p)²) with δ = 1e-9, capped odd")

			// E19b: under-voted stress — a deliberately broken schedule
			// (one vote per predicate) makes the noisy tier fail its exact
			// gate, forcing the certified approximate tier to answer.
			tb := Table{
				Title:   fmt.Sprintf("E19b — under-voted stress (1 vote per predicate), %d scenarios per rate, approximate tier armed at ε = 0.05·diag", count),
				Columns: []string{"flip p", "runs", "exact-ok", "approx-ok", "max certified ε", "typed-error", "violations"},
			}
			for _, p := range rates {
				pol := resilient.Policy{
					ApproxEps: 0.05, NoLadder: true,
					Noisy: &resilient.NoisyPolicy{Votes: 1, Rate: p},
				}
				sum := soak.NoisySoak(cfg.Seed, count, p, pol)
				tb.Add(p, sum.Scenarios, sum.ExactOK, sum.ApproxOK, sum.MaxCertEps,
					sum.TypedErrors, len(sum.Failures))
				noteFailures(&tb, sum.Failures)
			}
			tb.Notes = append(tb.Notes,
				"every approximate response re-verified: all input points (hence all exact hull vertices) within the certified ε above the returned surface",
				"certified ε is an a-posteriori exact measurement, independent of the noisy selection that proposed the hull")
			return []Table{ta, tb}
		},
	})
}

// noteFailures appends up to 5 contract violations to the table notes.
func noteFailures(t *Table, fails []soak.Record) {
	for i, rec := range fails {
		if i >= 5 {
			t.Notes = append(t.Notes, fmt.Sprintf("… %d more violations", len(fails)-5))
			return
		}
		t.Notes = append(t.Notes, fmt.Sprintf("VIOLATION %s: scenario %+v — %s", rec.Outcome, rec.Scenario, rec.Detail))
	}
}
