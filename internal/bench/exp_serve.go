package bench

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	"inplacehull/internal/geom"
	"inplacehull/internal/pram"
	"inplacehull/internal/resilient"
	"inplacehull/internal/rng"
	"inplacehull/internal/serve"
	"inplacehull/internal/workload"
)

// Experiment E18 measures the serving layer (internal/serve) under
// closed-loop load and emits the machine-readable BENCH_serve.json report
// CI gates on.
//
// E18a compares three ways of answering the same multi-tenant request
// stream — serveDistinct distinct (points, seed) queries drawn round-robin
// by serveConc closed-loop clients, the repeated-identical-query shape the
// read-only serving setting of De–Nandy–Roy motivates:
//
//   - "permachine": no serving layer; every request builds its own
//     pram.Machine, runs supervised, and tears it down. The naive
//     baseline the acceptance criterion prices the server against.
//   - "fleet" / "batched": the server with coalescing disabled
//     (MaxBatch 1) vs enabled, full request path including the result
//     cache.
//   - "...(nocache)" rows rerun both server modes with the cache
//     bypassed, isolating where the win comes from: on a single-core
//     host all-miss serving tracks the per-machine baseline (compute
//     dominates and is identical), the cache supplies the headline
//     speedup, and the micro-batcher's dispatch amortization shows up
//     as mean batch size and pays off with core count.
//
// E18b prices the cache-hit path itself across input sizes: computed
// latency vs a cached hit with inline points (the client resends the
// slice; the server must re-validate and re-hash it — O(n)) vs a cached
// hit against a named dataset (hash precomputed at registration — O(1),
// independent of n).
//
// Both measurements use the closed-loop generator (serve.RunClosedLoop)
// the `hullbench -serve` harness exposes.

// ServeRow is one load-sweep row in BENCH_serve.json.
type ServeRow struct {
	Mode     string  `json:"mode"`
	N        int     `json:"n"`
	Conc     int     `json:"conc"`
	Total    int     `json:"total"`
	Distinct int     `json:"distinct"`
	OK       int     `json:"ok"`
	Shed     int     `json:"shed"`
	QPS      float64 `json:"qps"`
	P50us    float64 `json:"p50_us"`
	P95us    float64 `json:"p95_us"`
	P99us    float64 `json:"p99_us"`
	// MeanBatch is batched_queries/batches for server modes (0 for
	// permachine).
	MeanBatch float64 `json:"mean_batch"`
	// CacheHits for server modes (0 when the cache is bypassed).
	CacheHits int64 `json:"cache_hits"`
	// Speedup = this row's QPS / the same-n permachine QPS, same run.
	Speedup float64 `json:"speedup_vs_permachine"`
}

// ServeCacheRow is one cache-path row in BENCH_serve.json.
type ServeCacheRow struct {
	N            int     `json:"n"`
	ComputeUs    float64 `json:"compute_us"`
	InlineHitUs  float64 `json:"inline_hit_us"`
	DatasetHitUs float64 `json:"dataset_hit_us"`
	// DatasetSpeedup = ComputeUs / DatasetHitUs.
	DatasetSpeedup float64 `json:"dataset_speedup"`
}

// ServeReport is the BENCH_serve.json schema. Rows and Cache are E18's;
// Native is E21's backend comparison; Cull is E22's admission-culling
// sweep; Stream is E23's incremental-maintenance churn sweep — each
// experiment rewrites only its own section and preserves the others'.
type ServeReport struct {
	Experiment string           `json:"experiment"`
	GOMAXPROCS int              `json:"gomaxprocs"`
	FleetSize  int              `json:"fleet_size"`
	Workers    int              `json:"workers"`
	Quick      bool             `json:"quick"`
	Rows       []ServeRow       `json:"rows"`
	Cache      []ServeCacheRow  `json:"cache"`
	Native     []NativeServeRow `json:"native,omitempty"`
	Cull       []CullServeRow   `json:"cull,omitempty"`
	Stream     []StreamBenchRow `json:"stream,omitempty"`
}

const (
	serveFleet    = 2
	serveWorkers  = 2
	serveDistinct = 16
)

// serveQueries builds the request stream: serveDistinct distinct
// (points, seed) combinations over a handful of point sets.
type serveQuery struct {
	pts  []geom.Point
	seed uint64
}

func serveStream(seed uint64, n int) []serveQuery {
	qs := make([]serveQuery, serveDistinct)
	for i := range qs {
		qs[i] = serveQuery{
			pts:  workload.Disk(seed+uint64(i%4), n),
			seed: seed + uint64(i),
		}
	}
	return qs
}

func measureServeLoad(cfg Config) ([]ServeRow, []string) {
	ns := []int{64, 256, 1024}
	conc, total := 32, 2000
	if cfg.Quick {
		ns = []int{64, 256}
		conc, total = 16, 600
	}

	var rows []ServeRow
	for _, n := range ns {
		qs := serveStream(cfg.Seed, n)

		permachine := func() serve.LoadResult {
			return serve.RunClosedLoop(conc, total, func(i int) error {
				q := qs[i%len(qs)]
				m := pram.New(pram.WithWorkers(serveWorkers))
				defer m.Close()
				_, _, err := resilient.Hull2D(context.Background(), m, rng.New(q.seed), q.pts, resilient.Policy{})
				return err
			})
		}
		server := func(maxBatch, cacheSize int, noCache bool) (serve.LoadResult, serve.Stats) {
			s := serve.NewServer(serve.Config{
				FleetSize: serveFleet, Workers: serveWorkers,
				MaxQueue: conc * 2, MaxBatch: maxBatch,
				BatchWindow: 200 * time.Microsecond,
				CacheSize:   cacheSize,
			})
			defer s.Close()
			lr := serve.RunClosedLoop(conc, total, func(i int) error {
				q := qs[i%len(qs)]
				_, err := s.Query2D(context.Background(), serve.Query{
					Points2: q.pts, Seed: q.seed, NoCache: noCache,
				})
				return err
			})
			return lr, s.Stats()
		}

		perm := permachine()
		add := func(mode string, lr serve.LoadResult, st serve.Stats) {
			mb := 0.0
			if st.Batches > 0 {
				mb = float64(st.BatchedQueries) / float64(st.Batches)
			}
			rows = append(rows, ServeRow{
				Mode: mode, N: n, Conc: conc, Total: total, Distinct: serveDistinct,
				OK: lr.OK, Shed: lr.Overloads,
				QPS:   lr.Throughput,
				P50us: float64(lr.P50.Microseconds()), P95us: float64(lr.P95.Microseconds()),
				P99us:     float64(lr.P99.Microseconds()),
				MeanBatch: mb, CacheHits: st.CacheHits,
				Speedup: lr.Throughput / perm.Throughput,
			})
		}
		add("permachine", perm, serve.Stats{})
		lr, st := server(1, 64, false)
		add("fleet", lr, st)
		lr, st = server(16, 64, false)
		add("batched", lr, st)
		lr, st = server(1, 0, true)
		add("fleet(nocache)", lr, st)
		lr, st = server(16, 0, true)
		add("batched(nocache)", lr, st)
	}
	notes := []string{
		fmt.Sprintf("closed loop: %d clients, %d distinct (points,seed) queries per n, queue %s, fleet %d×%d workers",
			serveDistinct, serveDistinct, "2×conc (no shedding expected)", serveFleet, serveWorkers),
		"speedup is same-run QPS over the permachine baseline at the same n",
		"on a single-core host the (nocache) rows track permachine (identical compute); the cache supplies the serving win, and mean batch size shows the coalescing that pays off with core count",
	}
	return rows, notes
}

func measureServeCache(cfg Config) ([]ServeCacheRow, []string) {
	ns := []int{256, 4096, 65536}
	hits := 400
	if cfg.Quick {
		ns = []int{256, 4096}
		hits = 120
	}
	var rows []ServeCacheRow
	for _, n := range ns {
		pts := workload.Disk(cfg.Seed+9, n)
		s := serve.NewServer(serve.Config{
			FleetSize: serveFleet, Workers: serveWorkers,
			MaxQueue: 8, MaxBatch: 1, CacheSize: 8,
			Datasets: map[string]serve.Dataset{"bench": {Points2: pts}},
		})
		// Computed latency: median of a few uncached runs.
		var computed []float64
		for r := 0; r < 5; r++ {
			t0 := time.Now()
			if _, err := s.Query2D(context.Background(), serve.Query{Points2: pts, Seed: 1, NoCache: true}); err != nil {
				s.Close()
				return rows, []string{"ERROR computing n=" + fmt.Sprint(n) + ": " + err.Error()}
			}
			computed = append(computed, float64(time.Since(t0).Nanoseconds()))
		}
		// Warm both cache entries (inline and dataset forms share a key,
		// so one warm run covers both).
		if _, err := s.Query2D(context.Background(), serve.Query{Dataset: "bench", Seed: 1}); err != nil {
			s.Close()
			return rows, []string{"ERROR warming n=" + fmt.Sprint(n) + ": " + err.Error()}
		}
		inline := serve.RunClosedLoop(1, hits, func(i int) error {
			_, err := s.Query2D(context.Background(), serve.Query{Points2: pts, Seed: 1})
			return err
		})
		dataset := serve.RunClosedLoop(1, hits, func(i int) error {
			_, err := s.Query2D(context.Background(), serve.Query{Dataset: "bench", Seed: 1})
			return err
		})
		s.Close()
		compUs := median(computed) / 1e3
		row := ServeCacheRow{
			N:            n,
			ComputeUs:    compUs,
			InlineHitUs:  float64(inline.P50.Nanoseconds()) / 1e3,
			DatasetHitUs: float64(dataset.P50.Nanoseconds()) / 1e3,
		}
		if row.DatasetHitUs > 0 {
			row.DatasetSpeedup = row.ComputeUs / row.DatasetHitUs
		}
		rows = append(rows, row)
	}
	notes := []string{
		"inline hits revalidate and rehash the resent points (O(n)); dataset hits reuse the registration-time hash (O(1), size-independent)",
		"p50 over single-client hit loops; compute is the median of 5 uncached runs",
	}
	return rows, notes
}

// gateServe checks the current report against the acceptance contract and
// a committed baseline. The absolute contracts are the load-bearing
// checks; the baseline comparison catches drift.
func gateServe(cur ServeReport, basePath string) ([]string, error) {
	var fails []string
	batched := map[int]ServeRow{}
	byMode := map[string]map[int]ServeRow{}
	for _, r := range cur.Rows {
		if byMode[r.Mode] == nil {
			byMode[r.Mode] = map[int]ServeRow{}
		}
		byMode[r.Mode][r.N] = r
		if r.Mode == "batched" {
			batched[r.N] = r
		}
	}
	for n, b := range batched {
		if b.Speedup < 1.5 {
			fails = append(fails, fmt.Sprintf(
				"batched n=%d: throughput %.2fx permachine, acceptance floor is 1.5x", n, b.Speedup))
		}
		if b.CacheHits == 0 {
			fails = append(fails, fmt.Sprintf("batched n=%d: cache never hit", n))
		}
		if b.Shed > 0 {
			fails = append(fails, fmt.Sprintf("batched n=%d: %d requests shed with queue 2×conc", n, b.Shed))
		}
	}
	if len(batched) == 0 {
		fails = append(fails, "report has no batched rows")
	}
	// Shape check on the cache-bypassed rows, where the batcher is in the
	// request path for every query: coalescing must not tax throughput
	// (generous allowance — these rows are compute-saturated and noisy).
	for n, b := range byMode["batched(nocache)"] {
		if f, ok := byMode["fleet(nocache)"][n]; ok && b.QPS < f.QPS*0.7 {
			fails = append(fails, fmt.Sprintf(
				"batched(nocache) n=%d: %.0f q/s vs unbatched %.0f q/s — coalescing should not cost >30%%", n, b.QPS, f.QPS))
		}
	}
	for _, c := range cur.Cache {
		if c.DatasetHitUs > 0 && c.ComputeUs/c.DatasetHitUs < 2 {
			fails = append(fails, fmt.Sprintf(
				"cache n=%d: dataset hit (%.1fµs) is not at least 2x cheaper than compute (%.1fµs)",
				c.N, c.DatasetHitUs, c.ComputeUs))
		}
	}
	if len(cur.Cache) >= 2 {
		first, last := cur.Cache[0], cur.Cache[len(cur.Cache)-1]
		// O(1) shape: dataset-hit latency must not scale with n the way
		// compute does (generous 10x allowance over the smallest size for
		// scheduler noise; compute grows far more).
		if first.DatasetHitUs > 0 && last.DatasetHitUs > first.DatasetHitUs*10 {
			fails = append(fails, fmt.Sprintf(
				"cache: dataset hit latency scales with n (%.1fµs at n=%d vs %.1fµs at n=%d)",
				last.DatasetHitUs, last.N, first.DatasetHitUs, first.N))
		}
	}

	if basePath == "" {
		return fails, nil
	}
	raw, err := os.ReadFile(basePath)
	if err != nil {
		return fails, err
	}
	var base ServeReport
	if err := json.Unmarshal(raw, &base); err != nil {
		return fails, fmt.Errorf("%s: %w", basePath, err)
	}
	// Drift check only against configuration-matched baseline rows: a
	// -quick run (smaller conc/total) against a full-scale baseline has
	// no comparable rows and relies on the absolute contract above.
	baseBatched := map[[2]int]ServeRow{}
	for _, r := range base.Rows {
		if r.Mode == "batched" {
			baseBatched[[2]int{r.N, r.Conc}] = r
		}
	}
	for n, b := range batched {
		bb, ok := baseBatched[[2]int{n, b.Conc}]
		if !ok || bb.Total != b.Total {
			continue
		}
		if b.Speedup < bb.Speedup*0.5 {
			fails = append(fails, fmt.Sprintf(
				"batched n=%d: speedup %.2fx is less than half the baseline's %.2fx", n, b.Speedup, bb.Speedup))
		}
	}
	return fails, nil
}

func init() {
	Register(Experiment{
		ID:    "E18",
		Claim: "serving layer: batched+cached fleet beats one-machine-per-request ≥1.5x on repeated small queries; dataset cache hits are O(1)",
		Run: func(cfg Config) []Table {
			rep := ServeReport{
				Experiment: "E18",
				GOMAXPROCS: runtime.GOMAXPROCS(0),
				FleetSize:  serveFleet,
				Workers:    serveWorkers,
				Quick:      cfg.Quick,
			}
			var lNotes, cNotes []string
			rep.Rows, lNotes = measureServeLoad(cfg)
			rep.Cache, cNotes = measureServeCache(cfg)

			lt := Table{
				Title:   "E18a — closed-loop throughput: permachine vs fleet vs batched (16 distinct queries)",
				Columns: []string{"mode", "n", "conc", "q/s", "p50 µs", "p95 µs", "mean batch", "cache hits", "vs permachine"},
				Notes:   lNotes,
			}
			for _, r := range rep.Rows {
				lt.Add(r.Mode, r.N, r.Conc, r.QPS, r.P50us, r.P95us, r.MeanBatch, r.CacheHits, r.Speedup)
			}
			ct := Table{
				Title:   "E18b — cache-hit path: computed vs inline hit vs dataset hit",
				Columns: []string{"n", "compute µs", "inline hit µs", "dataset hit µs", "dataset speedup"},
				Notes:   cNotes,
			}
			for _, c := range rep.Cache {
				ct.Add(c.N, c.ComputeUs, c.InlineHitUs, c.DatasetHitUs, c.DatasetSpeedup)
			}

			if cfg.ServeJSON != "" {
				// Preserve E21's backend rows and E22's culling rows if the
				// file already has them.
				if old, err := readServeReport(cfg.ServeJSON); err == nil {
					rep.Native = old.Native
					rep.Cull = old.Cull
				}
				buf, err := json.MarshalIndent(rep, "", "  ")
				if err == nil {
					err = os.WriteFile(cfg.ServeJSON, append(buf, '\n'), 0o644)
				}
				if err != nil {
					lt.Notes = append(lt.Notes, "ERROR writing "+cfg.ServeJSON+": "+err.Error())
				} else {
					lt.Notes = append(lt.Notes, "report written to "+cfg.ServeJSON)
				}
			}
			if cfg.ServeBaseline != "" || cfg.Gate != nil {
				fails, err := gateServe(rep, cfg.ServeBaseline)
				if err != nil {
					fails = append(fails, "baseline unreadable: "+err.Error())
				}
				for _, f := range fails {
					lt.Notes = append(lt.Notes, "GATE FAIL: "+f)
					if cfg.Gate != nil {
						cfg.Gate(f)
					}
				}
				if len(fails) == 0 {
					lt.Notes = append(lt.Notes, "gate: acceptance contract holds (batched ≥1.5x permachine, cache hits observed, dataset hits O(1))")
				}
			}
			return []Table{lt, ct}
		},
	})
}
