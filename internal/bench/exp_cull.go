package bench

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sync/atomic"
	"time"

	"inplacehull/internal/serve"
	"inplacehull/internal/workload"
)

// Experiment E22 prices admission-side interior-point culling
// (internal/cull) on the serving path, extending BENCH_serve.json with
// culling rows.
//
// The filter's bargain: an O(n) conservative pre-pass (a handful of float
// comparisons per point against an octagon / quadrilateral / sampled
// coarse hull of extreme candidates) discards points that are certainly
// strictly interior, so the O(n log n) backend runs on the survivors
// only. The answer is proven unchanged (the parity suite and
// FuzzCullParity2D gate that); E22 measures what the shrinkage is worth
// end to end — full request path, cache disabled so every query pays
// compute, native backend so the filter competes against the fastest
// engine rather than flattering itself against the simulated PRAM.
//
// Three workloads span the culling regimes:
//
//   - disk: uniform in a disk, E[h]=Θ(n^(1/3)) — almost everything is
//     interior and the filter should discard the bulk.
//   - cluster8: tight Gaussian blobs — the multi-tenant "hot spots"
//     shape; interior-heavy with adversarial clumping.
//   - circle: every point on the unit circle — the adversarial case.
//     NOTHING is strictly interior, the filter can discard nothing, and
//     the row prices its pure overhead.
//
// Acceptance: on at least one interior-heavy workload the octagon or
// coarse policy must at least double end-to-end throughput versus the
// same stream with culling off, with the measured cull ratio recorded in
// the row; on circle the ratio must stay ~0 (conservatism: the filter
// must not discard extreme points) and throughput must not collapse.

// CullServeRow is one culling row in BENCH_serve.json.
type CullServeRow struct {
	Workload string  `json:"workload"`
	Policy   string  `json:"policy"`
	N        int     `json:"n"`
	Conc     int     `json:"conc"`
	Total    int     `json:"total"`
	OK       int     `json:"ok"`
	Shed     int     `json:"shed"`
	QPS      float64 `json:"qps"`
	P50us    float64 `json:"p50_us"`
	P95us    float64 `json:"p95_us"`
	// CullRatio is the measured fraction of input points the filter
	// discarded, averaged over every answered query (0 on the "off" rows).
	CullRatio float64 `json:"cull_ratio"`
	// Speedup = this row's QPS / the same-(workload,n) "off" QPS, same
	// run (1 on the off rows themselves).
	Speedup float64 `json:"speedup_vs_off"`
	// GOMAXPROCS stamps the core count (drift compares matching stamps
	// only, as in the E21 rows).
	GOMAXPROCS int `json:"gomaxprocs,omitempty"`
}

// cullGens are E22's workload generators (see the experiment comment).
func cullGens() []workload.Gen2D {
	return []workload.Gen2D{
		{Name: "disk", Gen: workload.Disk},
		{Name: "cluster8", Gen: workload.Clusters(8)},
		{Name: "circle", Gen: workload.Circle},
	}
}

func measureCullServe(cfg Config) ([]CullServeRow, []string) {
	ns := []int{1024, 4096, 16384}
	conc, total := 16, 400
	if cfg.Quick {
		ns = []int{1024, 4096}
		conc, total = 8, 200
	}

	var rows []CullServeRow
	for _, g := range cullGens() {
		for _, n := range ns {
			qs := make([]serveQuery, serveDistinct)
			for i := range qs {
				qs[i] = serveQuery{
					pts:  g.Gen(cfg.Seed+22+uint64(i%4), n),
					seed: cfg.Seed + uint64(i),
				}
			}
			s := serve.NewServer(serve.Config{
				FleetSize: serveFleet, Workers: serveWorkers,
				MaxQueue: conc * 2, MaxBatch: 16,
				BatchWindow: 200 * time.Microsecond,
				CacheSize:   0, // cache-miss serving: every query pays compute
			})
			run := func(policy string) (serve.LoadResult, float64) {
				var culled, points atomic.Int64
				lr := serve.RunClosedLoop(conc, total, func(i int) error {
					q := qs[i%len(qs)]
					res, err := s.Query2D(context.Background(), serve.Query{
						Points2: q.pts, Seed: q.seed, NoCache: true,
						Backend: "native", Cull: policy,
					})
					if err == nil {
						culled.Add(int64(res.Culled))
						points.Add(int64(res.N))
					}
					return err
				})
				ratio := 0.0
				if points.Load() > 0 {
					ratio = float64(culled.Load()) / float64(points.Load())
				}
				return lr, ratio
			}
			add := func(policy string, lr serve.LoadResult, ratio, speedup float64) {
				rows = append(rows, CullServeRow{
					Workload: g.Name, Policy: policy, N: n, Conc: conc, Total: total,
					OK: lr.OK, Shed: lr.Overloads,
					QPS:   lr.Throughput,
					P50us: float64(lr.P50.Microseconds()), P95us: float64(lr.P95.Microseconds()),
					CullRatio: ratio, Speedup: speedup,
					GOMAXPROCS: runtime.GOMAXPROCS(0),
				})
			}
			off, _ := run("off")
			add("off", off, 0, 1)
			for _, pol := range []string{"octagon", "coarse"} {
				lr, ratio := run(pol)
				add(pol, lr, ratio, lr.Throughput/off.Throughput)
			}
			s.Close()
		}
	}
	notes := []string{
		"one server per (workload, n), cache disabled, native backend; the streams differ only in the per-query cull wire string",
		"cull ratio is discarded/submitted points averaged over all answered queries; speedup is same-run QPS over the culling-off row",
		"disk and cluster8 are interior-heavy (the filter earns its keep); circle is adversarial — nothing is strictly interior, the row prices pure filter overhead",
		"acceptance: best interior-heavy speedup ≥2x with its cull ratio recorded; circle ratio ~0 (conservatism) without collapsing throughput",
	}
	return rows, notes
}

// gateCull checks the culling rows against the acceptance contract and,
// when a baseline is given, against the committed BENCH_serve.json's cull
// rows for drift.
func gateCull(rows []CullServeRow, basePath string) ([]string, error) {
	var fails []string
	var best CullServeRow
	sawInterior, sawCircle := false, false
	for _, r := range rows {
		if r.Shed > 0 {
			fails = append(fails, fmt.Sprintf(
				"%s/%s n=%d: %d requests shed with queue 2×conc", r.Workload, r.Policy, r.N, r.Shed))
		}
		if r.Policy == "off" {
			continue
		}
		if r.Workload == "circle" {
			sawCircle = true
			// Conservatism: on-hull points must never be discarded. A tiny
			// allowance covers duplicate coordinates from the generator.
			if r.CullRatio > 0.01 {
				fails = append(fails, fmt.Sprintf(
					"circle/%s n=%d: cull ratio %.3f — the filter discarded extreme points", r.Policy, r.N, r.CullRatio))
			}
			// Overhead bound: a filter that finds nothing must not halve
			// throughput (one cheap pass over the points).
			if r.Speedup < 0.5 {
				fails = append(fails, fmt.Sprintf(
					"circle/%s n=%d: %.2fx of culling-off throughput — filter overhead out of bounds", r.Policy, r.N, r.Speedup))
			}
			continue
		}
		sawInterior = true
		if r.CullRatio < 0.25 {
			fails = append(fails, fmt.Sprintf(
				"%s/%s n=%d: cull ratio %.3f, want ≥0.25 on an interior-heavy workload", r.Workload, r.Policy, r.N, r.CullRatio))
		}
		if r.Speedup > best.Speedup {
			best = r
		}
	}
	if !sawInterior || !sawCircle {
		fails = append(fails, "report is missing interior-heavy or adversarial cull rows")
	} else if best.Speedup < 2 {
		fails = append(fails, fmt.Sprintf(
			"headline: best interior-heavy culling speedup is %.2fx (%s/%s n=%d, ratio %.2f), acceptance is 2x",
			best.Speedup, best.Workload, best.Policy, best.N, best.CullRatio))
	}

	if basePath == "" {
		return fails, nil
	}
	base, err := readServeReport(basePath)
	if err != nil {
		return fails, err
	}
	// Drift only between configuration-matched rows (workload, policy, n,
	// conc, total, core count); everything else relies on the absolute
	// contract above.
	type key struct {
		w, p    string
		n, conc int
	}
	baseRows := map[key]CullServeRow{}
	for _, r := range base.Cull {
		baseRows[key{r.Workload, r.Policy, r.N, r.Conc}] = r
	}
	for _, r := range rows {
		if r.Policy == "off" {
			continue
		}
		br, ok := baseRows[key{r.Workload, r.Policy, r.N, r.Conc}]
		if !ok || br.Total != r.Total || br.GOMAXPROCS != r.GOMAXPROCS {
			continue
		}
		if r.Speedup < br.Speedup*0.5 {
			fails = append(fails, fmt.Sprintf(
				"%s/%s n=%d: speedup %.2fx is less than half the baseline's %.2fx",
				r.Workload, r.Policy, r.N, r.Speedup, br.Speedup))
		}
	}
	return fails, nil
}

func init() {
	Register(Experiment{
		ID:    "E22",
		Claim: "admission-side culling at least doubles cache-miss serving throughput on an interior-heavy workload without ever changing an answer (circle: ratio 0, bounded overhead)",
		Run: func(cfg Config) []Table {
			rows, notes := measureCullServe(cfg)

			t := Table{
				Title:   "E22 — admission culling on cache-miss native serving: off vs octagon vs coarse",
				Columns: []string{"workload", "policy", "n", "conc", "q/s", "p50 µs", "p95 µs", "cull ratio", "vs off"},
				Notes:   notes,
			}
			for _, r := range rows {
				t.Add(r.Workload, r.Policy, r.N, r.Conc, r.QPS, r.P50us, r.P95us, r.CullRatio, r.Speedup)
			}

			if cfg.ServeJSON != "" {
				// Merge into the shared report rather than clobbering it.
				rep, err := readServeReport(cfg.ServeJSON)
				if err != nil {
					rep = ServeReport{
						Experiment: "E22",
						GOMAXPROCS: runtime.GOMAXPROCS(0),
						FleetSize:  serveFleet,
						Workers:    serveWorkers,
						Quick:      cfg.Quick,
					}
				}
				rep.Cull = rows
				buf, err := json.MarshalIndent(rep, "", "  ")
				if err == nil {
					err = os.WriteFile(cfg.ServeJSON, append(buf, '\n'), 0o644)
				}
				if err != nil {
					t.Notes = append(t.Notes, "ERROR writing "+cfg.ServeJSON+": "+err.Error())
				} else {
					t.Notes = append(t.Notes, "cull rows merged into "+cfg.ServeJSON)
				}
			}
			if cfg.ServeBaseline != "" || cfg.Gate != nil {
				fails, err := gateCull(rows, cfg.ServeBaseline)
				if err != nil {
					fails = append(fails, "baseline unreadable: "+err.Error())
				}
				for _, f := range fails {
					t.Notes = append(t.Notes, "GATE FAIL: "+f)
					if cfg.Gate != nil {
						cfg.Gate(f)
					}
				}
				if len(fails) == 0 {
					t.Notes = append(t.Notes, "gate: acceptance contract holds (interior-heavy headline ≥2x, circle ratio ~0 with bounded overhead, no shedding)")
				}
			}
			return []Table{t}
		},
	})
}
