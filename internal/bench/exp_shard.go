package bench

import (
	"fmt"

	"inplacehull/internal/fault/soak"
	"inplacehull/internal/shard"
)

func init() {
	Register(Experiment{
		ID: "E20",
		Claim: "Distributed robustness: under every network-fault mix (slow/drop/corrupt/down), " +
			"scatter-gather answers are bit-identical to single-node, certified partial, or typed — never silently wrong",
		Run: func(cfg Config) []Table {
			count := 1250
			if cfg.Quick {
				count = 150
			}
			sum := shard.RunSoak(cfg.Seed, count)

			t := Table{
				Title:   fmt.Sprintf("E20a — scatter-gather chaos soak, %d scenarios (master seed %d)", sum.Scenarios, cfg.Seed),
				Columns: []string{"fault mix", "runs", "ok", "typed-error", "wrong", "untyped", "panic"},
			}
			for _, m := range shard.Mixes {
				by := sum.ByMix[m.Name]
				runs := 0
				for _, c := range by {
					runs += c
				}
				t.Add(m.Name, runs, by[soak.OK], by[soak.TypedError],
					by[soak.WrongAnswer], by[soak.UntypedError], by[soak.Panicked])
			}
			t.Add("TOTAL", sum.Scenarios, sum.ByOutcome[soak.OK], sum.ByOutcome[soak.TypedError],
				sum.ByOutcome[soak.WrongAnswer], sum.ByOutcome[soak.UntypedError],
				sum.ByOutcome[soak.Panicked])

			a := Table{
				Title:   "E20b — degradation-ladder activity across the soak",
				Columns: []string{"mechanism", "count"},
			}
			a.Add("certified partial answers", sum.Partials)
			a.Add("retries / re-scatters", sum.Retries)
			a.Add("hedged requests", sum.Hedges)
			a.Notes = append(a.Notes,
				"an 'ok' run is bit-identical to the single-node reference hull (exact) or to the reference hull of exactly the covered shards (partial, typed PartialHull)")

			if sum.Bad() {
				for i, rec := range sum.Failures {
					if i >= 10 {
						t.Notes = append(t.Notes, fmt.Sprintf("… %d more failures", len(sum.Failures)-10))
						break
					}
					t.Notes = append(t.Notes, fmt.Sprintf("FAIL %s: scenario %+v — %s", rec.Outcome, rec.Scenario, rec.Detail))
				}
				if cfg.Gate != nil {
					cfg.Gate(fmt.Sprintf("E20: %d contract violations in %d scatter-gather scenarios", len(sum.Failures), sum.Scenarios))
				}
			} else {
				t.Notes = append(t.Notes, "contract held: 0 violations — every answer exact, certified partial, or typed")
			}
			t.Notes = append(t.Notes, "scenarios derive from the master seed; injected behavior per (worker, shard, retry rung) is a pure function of the scenario")
			return []Table{t, a}
		},
	})
}
