package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sort"
	"time"

	"inplacehull/internal/pram"
	"inplacehull/internal/presorted"
	"inplacehull/internal/rng"
	"inplacehull/internal/unsorted"
	"inplacehull/internal/workload"
)

// Experiment E17 measures what the persistent worker-pool engine
// (internal/pram/engine.go) buys over the frozen pre-engine dispatch —
// a fresh goroutine batch and WaitGroup per step (WithSpawnDispatch) —
// and emits the machine-readable BENCH_pram.json report CI gates on.
//
// Two quantities, measured differently because they live at different
// scales:
//
//   - Per-step dispatch overhead (machinery only). The machinery cost
//     of a step depends on its dispatch *structure* — how many chunks
//     the claim loop covers, how many peers the fanout clamp wakes, how
//     many goroutines the spawn path creates — not on n itself: chunk
//     geometry is clamped so every step from 8·minChunk·workers up to
//     maxChunk·workers·chunksPerWorker items decomposes into the same
//     chunk count, and the spawn path always creates `workers`
//     goroutines. The overhead is therefore probed at the largest
//     structure-matched step size whose total step time still resolves
//     a microsecond-level difference (dispatchProbeCap); at n = 1e6 the
//     step body costs milliseconds and a direct subtraction of two
//     noisy milliseconds cannot certify a microsecond machinery gap.
//     Each row records the probe size used.
//
//   - End-to-end ns/step and ns/op. Raw medians under rotated
//     interleaving (each round measures the configurations in rotated
//     order, so slow drift of the host hits all of them equally).
//
// Counted semantics are identical across all configurations by
// construction (proved by TestCountedSemanticsEquivalence); E17 is
// purely about wall-clock.

// PramDispatch is one row of the dispatch sweep in BENCH_pram.json.
type PramDispatch struct {
	N            int     `json:"n"`
	SeqNsStep    float64 `json:"seq_ns_step"`
	SpawnNsStep  float64 `json:"spawn_ns_step"`
	EngineNsStep float64 `json:"engine_ns_step"`
	// ProbeN is the structure-matched step size the machinery overheads
	// below were measured at (see the package comment above).
	ProbeN           int     `json:"probe_n"`
	SpawnOverheadNs  float64 `json:"spawn_overhead_ns"`
	EngineOverheadNs float64 `json:"engine_overhead_ns"`
	// OverheadRatio = spawn overhead / engine overhead; > 1 means the
	// engine dispatches cheaper than the frozen spawn baseline.
	OverheadRatio float64 `json:"overhead_ratio"`
	// SpawnRel / EngineRel normalize ns/step by the same-run sequential
	// ns/step — the machine-independent quantities the CI gate compares.
	SpawnRel  float64 `json:"spawn_rel"`
	EngineRel float64 `json:"engine_rel"`
}

// PramAlgo is one algorithm row in BENCH_pram.json.
type PramAlgo struct {
	Algo       string  `json:"algo"`
	N          int     `json:"n"`
	SeqNsOp    float64 `json:"seq_ns_op"`
	SpawnNsOp  float64 `json:"spawn_ns_op"`
	EngineNsOp float64 `json:"engine_ns_op"`
	// EngineVsSpawn = engine ns/op / spawn ns/op; < 1 means the engine
	// machine runs the whole algorithm faster than the spawn machine.
	EngineVsSpawn float64 `json:"engine_vs_spawn"`
}

// PramReport is the BENCH_pram.json schema.
type PramReport struct {
	Experiment string         `json:"experiment"`
	GOMAXPROCS int            `json:"gomaxprocs"`
	Workers    int            `json:"workers"`
	Quick      bool           `json:"quick"`
	Dispatch   []PramDispatch `json:"dispatch"`
	Algorithms []PramAlgo     `json:"algorithms"`
}

const (
	// pramWorkers is the simulated pool width for E17: fixed (not
	// GOMAXPROCS-derived) so the spawn-vs-engine comparison exercises the
	// same dispatch structure on every host.
	pramWorkers = 8
	// dispatchProbeCap is the largest structure-matched probe size; steps
	// this big still complete in tens of microseconds, so a paired
	// subtraction resolves the machinery.
	dispatchProbeCap = 16384
)

func median(xs []float64) float64 {
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	return s[len(s)/2]
}

// rotated runs each of fns once per round, rotating the starting position
// so position-in-round drift bias cancels, and returns per-fn samples.
func rotated(rounds int, fns []func() float64) [][]float64 {
	out := make([][]float64, len(fns))
	for r := 0; r < rounds; r++ {
		for k := range fns {
			i := (r + k) % len(fns)
			out[i] = append(out[i], fns[i]())
		}
	}
	return out
}

// stepSampler returns a closure timing stepsPer steps of size n on m,
// reporting ns per step.
func stepSampler(m *pram.Machine, n, stepsPer int, f func(int) bool) func() float64 {
	return func() float64 {
		t0 := time.Now()
		for k := 0; k < stepsPer; k++ {
			m.Step(n, f)
		}
		return float64(time.Since(t0).Nanoseconds()) / float64(stepsPer)
	}
}

func measureDispatch(cfg Config) ([]PramDispatch, []string) {
	f := func(p int) bool { return p&1 == 0 }
	seq := pram.New(pram.WithWorkers(1))
	spawn := pram.New(pram.WithWorkers(pramWorkers), pram.WithSpawnDispatch())
	eng := pram.New(pram.WithWorkers(pramWorkers), pram.WithParallelThreshold(1))
	defer eng.Close()

	ns := []int{1 << 12, 1 << 14, 1 << 16, 1 << 18, 1 << 20}
	stepRounds, ovhRounds := 60, 240
	if cfg.Quick {
		ns = []int{1 << 12, 1 << 16}
		stepRounds, ovhRounds = 16, 60
	}

	// Machinery probe, once per distinct structure-matched size.
	type ovh struct{ spawn, engine float64 }
	probed := map[int]ovh{}
	probe := func(pn int) ovh {
		if o, ok := probed[pn]; ok {
			return o
		}
		stepsPer := 1
		if sp := (1 << 15) / pn; sp > stepsPer {
			stepsPer = sp
		}
		samples := rotated(ovhRounds, []func() float64{
			stepSampler(seq, pn, stepsPer, f),
			stepSampler(spawn, pn, stepsPer, f),
			stepSampler(eng, pn, stepsPer, f),
		})
		var dSpawn, dEng []float64
		for i := range samples[0] {
			dSpawn = append(dSpawn, samples[1][i]-samples[0][i])
			dEng = append(dEng, samples[2][i]-samples[0][i])
		}
		o := ovh{spawn: median(dSpawn), engine: median(dEng)}
		probed[pn] = o
		return o
	}

	var rows []PramDispatch
	var notes []string
	for _, n := range ns {
		stepsPer := 1
		if sp := (1 << 18) / n; sp > stepsPer {
			stepsPer = sp
		}
		if stepsPer > 64 {
			stepsPer = 64
		}
		samples := rotated(stepRounds, []func() float64{
			stepSampler(seq, n, stepsPer, f),
			stepSampler(spawn, n, stepsPer, f),
			stepSampler(eng, n, stepsPer, f),
		})
		seqNs, spawnNs, engNs := median(samples[0]), median(samples[1]), median(samples[2])

		pn := n
		if pn > dispatchProbeCap {
			pn = dispatchProbeCap
		}
		o := probe(pn)
		spawnOvh, engOvh := o.spawn, o.engine
		if spawnOvh < 0 {
			spawnOvh = 0
		}
		// Floor the engine overhead at the measurement's resolution so the
		// ratio stays finite and conservative when the engine's machinery
		// is below what this host can resolve.
		engFloor := 100.0
		if s := spawnOvh / 100; s > engFloor {
			engFloor = s
		}
		if engOvh < engFloor {
			engOvh = engFloor
		}
		rows = append(rows, PramDispatch{
			N: n, SeqNsStep: seqNs, SpawnNsStep: spawnNs, EngineNsStep: engNs,
			ProbeN: pn, SpawnOverheadNs: spawnOvh, EngineOverheadNs: engOvh,
			OverheadRatio: spawnOvh / engOvh,
			SpawnRel:      spawnNs / seqNs, EngineRel: engNs / seqNs,
		})
	}
	notes = append(notes,
		"overheads are dispatch machinery only, measured at the structure-matched probe_n (same chunk count, fanout and goroutine count as n); see exp_engine.go",
		"ratio > 1: engine dispatch is cheaper than the frozen spawn-per-step baseline",
		fmt.Sprintf("engine forced to dispatch every step (threshold 1); the shipped default additionally runs steps below the calibrated threshold sequentially; workers=%d, GOMAXPROCS=%d", pramWorkers, runtime.GOMAXPROCS(0)))
	return rows, notes
}

func measureAlgorithms(cfg Config) ([]PramAlgo, []string) {
	n2, n3, reps := 30000, 2500, 7
	if cfg.Quick {
		n2, n3, reps = 4000, 600, 5
	}
	seed := cfg.Seed

	type algoCase struct {
		name string
		n    int
		run  func(m *pram.Machine) error
	}
	pts2 := workload.Disk(seed, n2)
	sorted2 := prepSorted(workload.Disk(seed+1, n2))
	pts3 := workload.Ball(seed+2, n3)
	cases := []algoCase{
		{"presorted-const", len(sorted2), func(m *pram.Machine) error {
			_, err := presorted.ConstantTime(m, rng.New(seed+7), sorted2)
			return err
		}},
		{"presorted-logstar", len(sorted2), func(m *pram.Machine) error {
			_, err := presorted.LogStar(m, rng.New(seed+8), sorted2)
			return err
		}},
		{"presorted-optimal", len(sorted2), func(m *pram.Machine) error {
			_, err := presorted.Optimal(m, rng.New(seed+9), sorted2)
			return err
		}},
		{"hull2d", n2, func(m *pram.Machine) error {
			_, err := unsorted.Hull2D(m, rng.New(seed+10), pts2)
			return err
		}},
		{"hull3d", n3, func(m *pram.Machine) error {
			_, err := unsorted.Hull3D(m, rng.New(seed+11), pts3)
			return err
		}},
	}

	var rows []PramAlgo
	var notes []string
	for _, c := range cases {
		seq := pram.New(pram.WithWorkers(1))
		spawn := pram.New(pram.WithWorkers(pramWorkers), pram.WithSpawnDispatch())
		eng := pram.New(pram.WithWorkers(pramWorkers))
		var failed error
		timeRun := func(m *pram.Machine) func() float64 {
			return func() float64 {
				t0 := time.Now()
				if err := c.run(m); err != nil && failed == nil {
					failed = err
				}
				return float64(time.Since(t0).Nanoseconds())
			}
		}
		samples := rotated(reps, []func() float64{timeRun(seq), timeRun(spawn), timeRun(eng)})
		eng.Close()
		if failed != nil {
			notes = append(notes, fmt.Sprintf("ERROR %s: %v", c.name, failed))
			continue
		}
		s, sp, en := median(samples[0]), median(samples[1]), median(samples[2])
		rows = append(rows, PramAlgo{
			Algo: c.name, N: c.n, SeqNsOp: s, SpawnNsOp: sp, EngineNsOp: en,
			EngineVsSpawn: en / sp,
		})
	}
	notes = append(notes,
		"spawn/engine machines use the shipped defaults of their era: spawn = fixed 4096 threshold + per-step goroutine batch; engine = calibrated threshold + persistent pool + fanout clamp",
		"engine_vs_spawn < 1: the whole algorithm runs faster on the engine machine")
	return rows, notes
}

// gatePram compares the current report against a committed baseline and
// returns human-readable regression failures. All comparisons are between
// same-run-normalized quantities (rel = ns/step over sequential ns/step of
// the same run; engine_vs_spawn likewise), so a faster or slower host
// cancels out and only genuine relative regressions fire.
func gatePram(cur PramReport, basePath string) ([]string, error) {
	raw, err := os.ReadFile(basePath)
	if err != nil {
		return nil, err
	}
	var base PramReport
	if err := json.Unmarshal(raw, &base); err != nil {
		return nil, fmt.Errorf("%s: %w", basePath, err)
	}
	const slack = 1.10 // the ">10% regression fails" contract
	// Absolute allowances on top of the 10%: dispatch rows are medians of
	// hundreds of interleaved samples and need only timer-noise headroom;
	// algorithm rows are medians of a handful of whole-algorithm runs
	// (seconds of budget, especially under -quick) and carry run-to-run
	// wall-clock noise of tens of percent, so their gate is tuned to catch
	// systematic regressions — an engine twice as slow — not scheduler
	// weather.
	const dispatchAbs = 0.05
	const algoAbs = 0.25
	var fails []string

	baseDispatch := map[int]PramDispatch{}
	for _, d := range base.Dispatch {
		baseDispatch[d.N] = d
	}
	largest := 0
	for _, d := range cur.Dispatch {
		b, ok := baseDispatch[d.N]
		if !ok {
			continue
		}
		if d.N > largest {
			largest = d.N
		}
		if d.EngineRel > b.EngineRel*slack+dispatchAbs {
			fails = append(fails, fmt.Sprintf(
				"dispatch n=%d: engine ns/step regressed >10%% vs baseline (rel %.3f, baseline %.3f)",
				d.N, d.EngineRel, b.EngineRel))
		}
	}
	for _, d := range cur.Dispatch {
		if d.N == largest && d.OverheadRatio < 1.0 {
			fails = append(fails, fmt.Sprintf(
				"dispatch n=%d: engine machinery costs more than the frozen spawn baseline (ratio %.2f < 1)",
				d.N, d.OverheadRatio))
		}
	}
	baseAlgo := map[string]PramAlgo{}
	for _, a := range base.Algorithms {
		baseAlgo[a.Algo] = a
	}
	for _, a := range cur.Algorithms {
		b, ok := baseAlgo[a.Algo]
		if !ok {
			continue
		}
		if a.EngineVsSpawn > b.EngineVsSpawn*slack+algoAbs {
			fails = append(fails, fmt.Sprintf(
				"algorithm %s: engine ns/op regressed >10%% vs baseline (engine/spawn %.3f, baseline %.3f)",
				a.Algo, a.EngineVsSpawn, b.EngineVsSpawn))
		}
	}
	return fails, nil
}

func init() {
	Register(Experiment{
		ID:    "E17",
		Claim: "engine substrate: persistent-pool dispatch beats spawn-per-step ≥3x on machinery with identical counted semantics",
		Run: func(cfg Config) []Table {
			rep := PramReport{
				Experiment: "E17",
				GOMAXPROCS: runtime.GOMAXPROCS(0),
				Workers:    pramWorkers,
				Quick:      cfg.Quick,
			}
			var dNotes, aNotes []string
			rep.Dispatch, dNotes = measureDispatch(cfg)
			rep.Algorithms, aNotes = measureAlgorithms(cfg)

			dt := Table{
				Title:   "E17a — per-step dispatch: seq vs spawn-per-step vs persistent engine",
				Columns: []string{"n", "seq ns/step", "spawn ns/step", "engine ns/step", "probe n", "spawn ovh ns", "engine ovh ns", "ovh ratio"},
				Notes:   dNotes,
			}
			for _, d := range rep.Dispatch {
				dt.Add(d.N, d.SeqNsStep, d.SpawnNsStep, d.EngineNsStep,
					d.ProbeN, d.SpawnOverheadNs, d.EngineOverheadNs, d.OverheadRatio)
			}
			at := Table{
				Title:   "E17b — whole-algorithm ns/op: spawn machine vs engine machine",
				Columns: []string{"algorithm", "n", "seq ns/op", "spawn ns/op", "engine ns/op", "engine/spawn"},
				Notes:   aNotes,
			}
			for _, a := range rep.Algorithms {
				at.Add(a.Algo, a.N, a.SeqNsOp, a.SpawnNsOp, a.EngineNsOp, a.EngineVsSpawn)
			}

			if cfg.PramJSON != "" {
				buf, err := json.MarshalIndent(rep, "", "  ")
				if err == nil {
					err = os.WriteFile(cfg.PramJSON, append(buf, '\n'), 0o644)
				}
				if err != nil {
					dt.Notes = append(dt.Notes, "ERROR writing "+cfg.PramJSON+": "+err.Error())
				} else {
					dt.Notes = append(dt.Notes, "report written to "+cfg.PramJSON)
				}
			}
			if cfg.PramBaseline != "" {
				fails, err := gatePram(rep, cfg.PramBaseline)
				if err != nil {
					fails = []string{"baseline unreadable: " + err.Error()}
				}
				for _, f := range fails {
					dt.Notes = append(dt.Notes, "GATE FAIL: "+f)
					if cfg.Gate != nil {
						cfg.Gate(f)
					}
				}
				if len(fails) == 0 {
					dt.Notes = append(dt.Notes, "gate vs "+cfg.PramBaseline+": no regression >10%")
				}
			}
			return []Table{dt, at}
		},
	})
}
