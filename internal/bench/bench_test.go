package bench

import (
	"bytes"
	"strings"
	"testing"
)

func TestAllExperimentsRunQuick(t *testing.T) {
	exps := All()
	if len(exps) < 12 {
		t.Fatalf("registry has %d experiments, want ≥ 12", len(exps))
	}
	for _, e := range exps {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			tables := e.Run(Config{Seed: 1, Quick: true})
			if len(tables) == 0 {
				t.Fatalf("%s produced no tables", e.ID)
			}
			for _, tb := range tables {
				if len(tb.Rows) == 0 {
					t.Fatalf("%s table %q has no rows", e.ID, tb.Title)
				}
				for _, note := range tb.Notes {
					if strings.Contains(note, "ERROR") {
						t.Fatalf("%s reported %s", e.ID, note)
					}
				}
				var buf bytes.Buffer
				tb.Fprint(&buf)
				if !strings.Contains(buf.String(), tb.Title) {
					t.Fatal("printed table missing title")
				}
			}
		})
	}
}

func TestRegistryLookup(t *testing.T) {
	if _, ok := Get("E1"); !ok {
		t.Fatal("E1 missing")
	}
	if _, ok := Get("E99"); ok {
		t.Fatal("phantom experiment")
	}
	ids := All()
	for i := 1; i < len(ids); i++ {
		if expNum(ids[i-1].ID) > expNum(ids[i].ID) {
			t.Fatal("registry not sorted")
		}
	}
}

func TestTableFormatting(t *testing.T) {
	tb := Table{Title: "T", Columns: []string{"a", "long-column"}}
	tb.Add(1, 2.5)
	tb.Add("xyz", "w")
	var buf bytes.Buffer
	tb.Fprint(&buf)
	out := buf.String()
	if !strings.Contains(out, "long-column") || !strings.Contains(out, "xyz") {
		t.Fatalf("bad table output:\n%s", out)
	}
}

func TestTableCSV(t *testing.T) {
	tb := Table{Title: "T", Columns: []string{"a", "b"}}
	tb.Add(1, `x,"y`)
	var buf bytes.Buffer
	tb.CSV(&buf)
	out := buf.String()
	if !strings.Contains(out, "# T\n") || !strings.Contains(out, "a,b\n") {
		t.Fatalf("csv header wrong:\n%s", out)
	}
	if !strings.Contains(out, `1,"x,""y"`) {
		t.Fatalf("csv quoting wrong:\n%s", out)
	}
}
