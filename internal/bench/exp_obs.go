package bench

import (
	"fmt"
	"time"

	"inplacehull/internal/lp"
	"inplacehull/internal/obs"
	"inplacehull/internal/pram"
	"inplacehull/internal/presorted"
	"inplacehull/internal/rng"
	"inplacehull/internal/unsorted"
	"inplacehull/internal/workload"
)

// E16 certifies the observability layer itself rather than a theorem of
// the paper: (1) the Collector's per-phase Work column sums *exactly* to
// Machine.Work on every run of every algorithm — attribution is an
// accounting identity, not a sample; (2) the number of LP rounds
// ("lp-iter" spans) per bridge-finding invocation stays within Lemma
// 4.2's constant bound (lp.MaxRoundsPerBridge); and (3) with no sink
// installed the instrumented Step path costs within a few percent of
// the frozen pre-observability baseline.
func init() {
	Register(Experiment{
		ID: "E16",
		Claim: "Phase attribution is exact (per-phase work sums to Machine.Work on every run), " +
			"LP rounds per bridge stay within Lemma 4.2's constant bound, " +
			"and the disabled observability path costs ≈1× the pre-instrumentation Step",
		Run: func(cfg Config) []Table {
			return []Table{obsAttribution(cfg), obsOverhead(cfg)}
		},
	})
}

// obsRun is one observed execution: the machine delta, the collector
// that watched it, and the error (observed runs must still succeed).
type obsRun struct {
	algo  string
	c     *obs.Collector
	steps int64
	work  int64
	err   error
}

// observe runs fn on a fresh machine with a fresh Collector installed
// and returns the account. Fresh machine per run keeps the identity
// under test sharp: collector total must equal the machine's counters.
func observe(algo string, fn func(m *pram.Machine) error) obsRun {
	m := pram.New(pram.WithWorkers(1))
	c := obs.NewCollector()
	m.SetSink(c)
	err := fn(m)
	m.SetSink(nil)
	return obsRun{algo: algo, c: c, steps: m.Time(), work: m.Work(), err: err}
}

// obsAttribution drives every algorithm over several seeds and sizes,
// checking the exact-work identity and the Lemma 4.2 round bound on
// each individual run (not on averages).
func obsAttribution(cfg Config) Table {
	runs, n2, n3 := 12, 1024, 192
	if cfg.Quick {
		runs, n2, n3 = 4, 256, 64
	}
	t := Table{
		Title: fmt.Sprintf("E16 — exact phase attribution, %d runs per algorithm (seed %d)", runs, cfg.Seed),
		Columns: []string{"algorithm", "runs", "phases", "machine work", "attributed work",
			"exact", "lp rounds", "round bound", "within"},
	}

	type algoCase struct {
		name string
		run  func(seed uint64, m *pram.Machine) error
	}
	cases := []algoCase{
		{"presorted", func(seed uint64, m *pram.Machine) error {
			pts := prepSorted(workload.Disk(seed, n2))
			_, err := presorted.ConstantTime(m, rng.New(seed), pts)
			return err
		}},
		{"logstar", func(seed uint64, m *pram.Machine) error {
			pts := prepSorted(workload.Gaussian(seed, n2))
			_, err := presorted.LogStar(m, rng.New(seed), pts)
			return err
		}},
		{"optimal", func(seed uint64, m *pram.Machine) error {
			pts := prepSorted(workload.Disk(seed, n2))
			_, err := presorted.Optimal(m, rng.New(seed), pts)
			return err
		}},
		{"hull2d", func(seed uint64, m *pram.Machine) error {
			pts := workload.Disk(seed, n2)
			_, err := unsorted.Hull2D(m, rng.New(seed), pts)
			return err
		}},
		{"hull3d", func(seed uint64, m *pram.Machine) error {
			pts := workload.Ball(seed, n3)
			_, err := unsorted.Hull3D(m, rng.New(seed), pts)
			return err
		}},
	}

	for _, ac := range cases {
		var (
			machWork, attrWork int64
			lpRounds, bound    int64
			phases             int
			exact, within      = true, true
		)
		for i := 0; i < runs; i++ {
			seed := cfg.Seed + uint64(i)*1009
			r := observe(ac.name, func(m *pram.Machine) error { return ac.run(seed, m) })
			if r.err != nil {
				t.Notes = append(t.Notes, fmt.Sprintf("%s seed %d failed: %v", ac.name, seed, r.err))
				continue
			}
			total := r.c.Total()
			machWork += r.work
			attrWork += total.Work
			if total.Work != r.work {
				exact = false
			}
			if n := len(r.c.Phases()); n > phases {
				phases = n
			}
			// Lemma 4.2: each bridge-finding invocation runs at most
			// MaxRoundsPerBridge LP rounds, so the run-wide "lp-iter"
			// span count is bounded by invocations × the constant.
			iters := r.c.SpanCount("lp-iter")
			bridges := r.c.SpanCount("bridge-lp") + r.c.SpanCount("facet-lp") + r.c.SpanCount("tree-lp")
			lpRounds += iters
			bound += bridges * lp.MaxRoundsPerBridge
			if iters > bridges*lp.MaxRoundsPerBridge {
				within = false
			}
			if cfg.Metrics != nil {
				cfg.Metrics.Observe(ac.name, r.c)
			}
		}
		t.Add(ac.name, runs, phases, machWork, attrWork, yes(exact), lpRounds, bound, yes(within))
	}
	t.Notes = append(t.Notes,
		"exact: collector per-phase work summed to Machine.Work on every individual run",
		fmt.Sprintf("round bound: bridge invocations × %d (β=%d + 2 rounds per terminal attempt, Lemma 4.2)",
			lp.MaxRoundsPerBridge, lp.DefaultBeta))
	return t
}

// obsOverhead times the instrumented Step path with no sink installed
// against StepBaseline, the pre-observability implementation kept
// verbatim for exactly this comparison. The acceptance bar is ≤1.05×;
// the table reports the measured ratio (best of several trials, to
// shed scheduler noise).
func obsOverhead(cfg Config) Table {
	reps, width, trials := 4000, 256, 5
	if cfg.Quick {
		reps, trials = 800, 3
	}
	t := Table{
		Title:   "E16 — disabled-path overhead: Step (nil sink) vs pre-observability baseline",
		Columns: []string{"variant", "steps", "width", "best ns/step", "ratio"},
	}
	m := pram.New(pram.WithWorkers(1))
	body := func(p int) bool { return p%7 == 0 }
	time2 := func(step func(int, func(int) bool)) time.Duration {
		best := time.Duration(1<<63 - 1)
		for trial := 0; trial < trials; trial++ {
			start := time.Now()
			for i := 0; i < reps; i++ {
				step(width, body)
			}
			if d := time.Since(start); d < best {
				best = d
			}
		}
		return best
	}
	base := time2(m.StepBaseline)
	inst := time2(m.Step)
	ratio := float64(inst) / float64(base)
	t.Add("baseline (frozen)", reps, width, float64(base.Nanoseconds())/float64(reps), 1.0)
	t.Add("instrumented, no sink", reps, width, float64(inst.Nanoseconds())/float64(reps), ratio)
	t.Notes = append(t.Notes, fmt.Sprintf("acceptance: ratio ≤ 1.05 (measured %.3f)", ratio))
	return t
}

func yes(b bool) string {
	if b {
		return "yes"
	}
	return "NO"
}
