package bench

import (
	"fmt"

	"inplacehull/internal/fault"
	"inplacehull/internal/fault/soak"
	"inplacehull/internal/resilient"
)

func init() {
	Register(Experiment{
		ID: "E14",
		Claim: "Robustness: under seeded fault injection every algorithm returns a " +
			"verified hull or a typed error — never a panic, wrong answer, or hang",
		Run: func(cfg Config) []Table {
			count := 1200
			if cfg.Quick {
				count = 120
			}
			sum := soak.Run(cfg.Seed, count)

			t := Table{
				Title:   fmt.Sprintf("E14a — chaos soak, %d scenarios (master seed %d)", sum.Scenarios, cfg.Seed),
				Columns: []string{"algorithm", "runs", "ok", "typed-error", "wrong", "untyped", "panic"},
			}
			for _, a := range soak.Algos {
				by := sum.ByAlgo[a]
				runs := 0
				for _, c := range by {
					runs += c
				}
				t.Add(a, runs, by[soak.OK], by[soak.TypedError],
					by[soak.WrongAnswer], by[soak.UntypedError], by[soak.Panicked])
			}
			t.Add("TOTAL", sum.Scenarios, sum.ByOutcome[soak.OK], sum.ByOutcome[soak.TypedError],
				sum.ByOutcome[soak.WrongAnswer], sum.ByOutcome[soak.UntypedError],
				sum.ByOutcome[soak.Panicked])
			if sum.Bad() {
				for i, rec := range sum.Failures {
					if i >= 10 {
						t.Notes = append(t.Notes, fmt.Sprintf("… %d more failures", len(sum.Failures)-10))
						break
					}
					t.Notes = append(t.Notes, fmt.Sprintf("FAIL %s: scenario %+v — %s", rec.Outcome, rec.Scenario, rec.Detail))
				}
			} else {
				t.Notes = append(t.Notes, "contract held: every run returned a verified hull or a typed error")
			}
			t.Notes = append(t.Notes, "scenarios are pure functions of the master seed; any failure reproduces from its printed Scenario")

			ti := Table{
				Title:   "E14b — injection-site activity across the soak",
				Columns: []string{"site", "consulted", "injected"},
			}
			for s := 0; s < fault.NumSites; s++ {
				ti.Add(fault.Site(s).String(), sum.PerSite[s].Seen, sum.PerSite[s].Injected)
			}
			ti.Notes = append(ti.Notes,
				"every paper-named failure mode (sampling storm, compaction overflow, LP non-convergence, vote skew, forced fallback) must show non-zero injections")

			// E14c: re-run every typed surrender through the resilient
			// supervisor at the default policy. The recovery contract:
			// zero unrecovered surrenders.
			rs := soak.Resoak(cfg.Seed, count, resilient.Policy{})
			tr := Table{
				Title:   fmt.Sprintf("E14c — supervised recovery of the %d typed surrenders (default policy)", rs.Surrenders),
				Columns: []string{"population", "count"},
			}
			tr.Add("surrenders (raw soak)", rs.Surrenders)
			tr.Add("recovered", rs.Recovered)
			tr.Add("unrecovered", len(rs.Unrecovered))
			for _, tier := range []string{"randomized", "sequential", "degenerate"} {
				tr.Add("recovered via "+tier, rs.ByTier[tier])
			}
			tr.Add("max attempts in a re-run", rs.MaxAttempts)
			tr.Add("total randomized attempts", rs.TotalAttempts)
			if len(rs.Unrecovered) == 0 {
				tr.Notes = append(tr.Notes, "recovery contract held: every surrender became an oracle-verified hull")
			} else {
				for i, rec := range rs.Unrecovered {
					if i >= 10 {
						tr.Notes = append(tr.Notes, fmt.Sprintf("… %d more", len(rs.Unrecovered)-10))
						break
					}
					tr.Notes = append(tr.Notes, fmt.Sprintf("UNRECOVERED %s: scenario %+v — %s", rec.Outcome, rec.Scenario, rec.Detail))
				}
			}
			return []Table{t, ti, tr}
		},
	})
}
