// Package sample implements the in-place random sample and random vote
// procedures of §3.1. Both operate on an arbitrary *subset* of positions of
// an input array — the members need not be contiguous, no element is moved,
// and only Θ(k) work space is used; this is the in-place property the
// paper's unsorted-input algorithms depend on.
package sample

import (
	"sync/atomic"

	"inplacehull/internal/fault"
	"inplacehull/internal/pram"
	"inplacehull/internal/rng"
)

// Attempts is the constant d of §3.1 step 4: how many write rounds each
// colliding processor retries.
const Attempts = 4

// SpaceFactor: the work space for a sample of Θ(k) is 16k, as in the paper.
const SpaceFactor = 16

// Result is the outcome of a sampling round.
type Result struct {
	// Members are the sampled positions: a uniformly random subset of the
	// live positions of expected size ≈ 2k (at least k/2 with probability
	// ≥ 1 − 2(e/2)^−k, Lemma 3.1). Ordered by the work-space cell each
	// member landed in.
	Members []int
	// Writers is how many processors attempted a write (the paper's m′).
	Writers int
	// Collisions counts claim attempts that hit an occupied or contested
	// cell, across all rounds. Both fields feed experiment E5.
	Collisions int
}

// Random draws an in-place random sample from the live positions of an
// n-cell array. live(p) reports membership — the processor "standing by"
// position p knows whether its element belongs to the current subproblem.
// prob is the per-processor write probability (§3.1 step 1); use Sized for
// the standard 2k/m schedule.
//
// Cost: O(Attempts) = O(1) steps with n processors, 16k work space.
func Random(m *pram.Machine, rnd *rng.Stream, n, k int, prob float64, live func(p int) bool) Result {
	if k < 1 {
		k = 1
	}
	if fault.On(rnd).Hit(fault.SampleStorm) {
		// Injected claim-collision storm (Lemma 3.1's failure event):
		// every write round collides, the sample comes back empty and the
		// caller's retry path must absorb it. The charge mirrors a real
		// all-colliding run.
		m.Charge(2*Attempts+1, int64(Attempts)*int64(n))
		return Result{Collisions: n * Attempts}
	}
	space := SpaceFactor * k
	release := m.AllocScratch(int64(space))
	defer release()

	cells := make([]pram.ClaimCell, space)
	pram.ResetClaims(cells)
	frozen := make([]bool, space)
	placed := make([]bool, n)
	var writers, collisions atomic.Int64

	base := rnd.Split(0x5a)
	// Step 1: each live processor decides whether to attempt a write.
	attempting := make([]bool, n)
	m.Step(n, func(p int) bool {
		if !live(p) {
			return false
		}
		if base.Split(uint64(p)).Bernoulli(prob) {
			attempting[p] = true
			writers.Add(1)
		}
		return true
	})

	for round := 0; round < Attempts; round++ {
		r := uint64(round)
		// Step 2: each attempting processor claims a random cell. Claiming
		// an occupied (frozen) cell is a collision; retry next round.
		m.Step(n, func(p int) bool {
			if !attempting[p] || placed[p] {
				return false
			}
			slot := base.Split(uint64(p)*Attempts + r + 0x1000).Intn(space)
			if frozen[slot] {
				collisions.Add(1)
				return true
			}
			cells[slot].Claim(int64(p))
			return true
		})
		// Step 3: uncontested writers keep their cell; contested cells are
		// released and all their claimants retry (§3.1 steps 3–4).
		m.Step(space, func(s int) bool {
			if frozen[s] {
				return false
			}
			owner := cells[s].Owner()
			if owner < 0 {
				return false
			}
			if cells[s].Contested() {
				collisions.Add(1)
				cells[s].Reset()
			} else {
				frozen[s] = true
				placed[owner] = true
			}
			return true
		})
	}

	members := make([]int, 0, 2*k)
	for s := range cells {
		if frozen[s] {
			members = append(members, int(cells[s].Owner()))
		}
	}
	// Reading the sample out of the work space is one step of `space`
	// processors in the model.
	m.Charge(1, int64(space))
	return Result{
		Members:    members,
		Writers:    int(writers.Load()),
		Collisions: int(collisions.Load()),
	}
}

// Sized draws a sample of expected size ~2k from the live positions, where
// mLive is the number of live positions (§3.1's write probability 2k/m).
func Sized(m *pram.Machine, rnd *rng.Stream, n, k, mLive int, live func(p int) bool) Result {
	if mLive < 1 {
		mLive = 1
	}
	prob := 2 * float64(k) / float64(mLive)
	if prob > 1 {
		prob = 1
	}
	return Random(m, rnd, n, k, prob, live)
}

// Vote picks one live position uniformly at random (Corollary 3.1): draw a
// sample, then take the occupant of the first occupied work-space cell —
// the paper's selection rule. The result is exactly uniform among live
// positions: cell choices are uniform and independent of identity, and
// contested cells are discarded entirely, so no identity-dependent
// tie-break ever selects a winner. Finding the first occupied cell is
// Observation 2.1 (constant time, charged accordingly inside Random).
//
// Returns −1 if the sample came back empty (probability ≤ (e/2)^−k over
// the write lottery; callers retry with a fresh stream).
func Vote(m *pram.Machine, rnd *rng.Stream, n, k, mLive int, live func(p int) bool) int {
	res := Sized(m, rnd, n, k, mLive, live)
	if len(res.Members) == 0 {
		return -1
	}
	return res.Members[0]
}
