package sample

import (
	"math"
	"testing"

	"inplacehull/internal/pram"
	"inplacehull/internal/rng"
)

func TestRandomSampleMembersAreLive(t *testing.T) {
	m := pram.New()
	n := 10000
	live := func(p int) bool { return p%3 == 0 }
	res := Sized(m, rng.New(1), n, 32, n/3, live)
	if len(res.Members) == 0 {
		t.Fatal("empty sample")
	}
	seen := map[int]bool{}
	for _, p := range res.Members {
		if !live(p) {
			t.Fatalf("sampled dead position %d", p)
		}
		if seen[p] {
			t.Fatalf("position %d sampled twice", p)
		}
		seen[p] = true
	}
}

func TestRandomSampleSize(t *testing.T) {
	// Lemma 3.1: the sample has size ≥ k/2 w.p. ≥ 1 − 2(e/2)^−k and the
	// number of writers is ≤ 4k w.h.p. Check over many trials.
	m := pram.New()
	n, k := 20000, 64
	small, big := 0, 0
	const trials = 50
	for i := 0; i < trials; i++ {
		res := Sized(m, rng.New(uint64(i)), n, k, n, func(p int) bool { return true })
		if len(res.Members) < k/2 {
			small++
		}
		if res.Writers > 4*k {
			big++
		}
	}
	if small > 1 {
		t.Fatalf("%d/%d trials under k/2 members", small, trials)
	}
	if big > 1 {
		t.Fatalf("%d/%d trials over 4k writers", big, trials)
	}
}

func TestRandomSampleConstantSteps(t *testing.T) {
	steps := func(n int) int64 {
		m := pram.New()
		Sized(m, rng.New(3), n, 16, n, func(p int) bool { return true })
		return m.Time()
	}
	if s1, s2 := steps(1<<10), steps(1<<18); s2 != s1 {
		t.Fatalf("sample steps changed with n: %d → %d", s1, s2)
	}
}

func TestRandomSampleWorkspace(t *testing.T) {
	m := pram.New()
	k := 16
	Sized(m, rng.New(4), 1<<14, k, 1<<14, func(p int) bool { return true })
	if m.PeakSpace() != int64(SpaceFactor*k) {
		t.Fatalf("work space %d, want %d", m.PeakSpace(), SpaceFactor*k)
	}
}

func TestVoteUniformity(t *testing.T) {
	// Chi-squared test: votes over 8 live positions must be uniform.
	// 8000 trials, 7 dof, 99.9% critical value ≈ 24.32.
	n := 64
	live := func(p int) bool { return p%8 == 0 } // positions 0,8,…,56
	counts := map[int]int{}
	m := pram.New()
	const trials = 8000
	for i := 0; i < trials; i++ {
		v := Vote(m, rng.New(uint64(i)+1000), n, 8, 8, live)
		if v < 0 {
			continue // empty-sample retry case; rare
		}
		if !live(v) {
			t.Fatalf("vote for dead position %d", v)
		}
		counts[v]++
	}
	total := 0
	for _, c := range counts {
		total += c
	}
	if total < trials*9/10 {
		t.Fatalf("too many empty samples: %d/%d", trials-total, trials)
	}
	exp := float64(total) / 8
	chi2 := 0.0
	for p := 0; p < n; p += 8 {
		d := float64(counts[p]) - exp
		chi2 += d * d / exp
	}
	if chi2 > 24.32 {
		t.Fatalf("vote not uniform: chi2 = %.2f (counts %v)", chi2, counts)
	}
}

func TestVoteSingleLive(t *testing.T) {
	m := pram.New()
	for i := 0; i < 20; i++ {
		v := Vote(m, rng.New(uint64(i)), 100, 4, 1, func(p int) bool { return p == 42 })
		if v != 42 && v != -1 {
			t.Fatalf("vote = %d, want 42", v)
		}
	}
}

func TestVoteAllDead(t *testing.T) {
	m := pram.New()
	if v := Vote(m, rng.New(9), 100, 4, 1, func(p int) bool { return false }); v != -1 {
		t.Fatalf("vote among dead = %d", v)
	}
}

func TestSizedClampsProbability(t *testing.T) {
	// k much larger than the live count: probability clamps to 1 and the
	// sample contains every live element that won a cell.
	m := pram.New()
	res := Sized(m, rng.New(10), 100, 64, 4, func(p int) bool { return p < 4 })
	if len(res.Members) != 4 {
		t.Fatalf("with p=1 and 1024 cells all 4 live elements should place; got %v", res.Members)
	}
}

func TestSampleFailureProbabilityDecays(t *testing.T) {
	// Empirical check of the Lemma 3.1 shape: failure (sample < k/2)
	// rate at k=4 should exceed the rate at k=64.
	rate := func(k int) float64 {
		m := pram.New()
		fail := 0
		const trials = 200
		for i := 0; i < trials; i++ {
			res := Sized(m, rng.New(uint64(k*1000+i)), 4096, k, 4096, func(p int) bool { return true })
			if len(res.Members) < k/2 {
				fail++
			}
		}
		return float64(fail) / trials
	}
	r4, r64 := rate(4), rate(64)
	if r64 > r4 && r64 > 0.02 {
		t.Fatalf("failure rate did not decay with k: k=4→%.3f k=64→%.3f", r4, r64)
	}
	if !(math.IsNaN(r4)) && r64 > 0.05 {
		t.Fatalf("failure rate at k=64 too high: %.3f", r64)
	}
}
