package sweep

import (
	"testing"

	"inplacehull/internal/pram"
	"inplacehull/internal/rng"
)

func TestSweepResolvesAllFailures(t *testing.T) {
	m := pram.New()
	failedSet := map[int]bool{3: true, 99: true, 512: true}
	resolved := map[int]int{}
	rep := Sweep(m, rng.New(1), 1<<16, 1000,
		func(j int) bool { return failedSet[j] },
		func(sub *pram.Machine, j int) { resolved[j]++ })
	if rep.Failures != len(failedSet) {
		t.Fatalf("Failures = %d, want %d", rep.Failures, len(failedSet))
	}
	if !rep.CompactionOK {
		t.Fatal("compaction should succeed for 3 failures")
	}
	for j := range failedSet {
		if resolved[j] != 1 {
			t.Fatalf("failure %d resolved %d times", j, resolved[j])
		}
	}
	if len(resolved) != len(failedSet) {
		t.Fatalf("spurious resolutions: %v", resolved)
	}
}

func TestSweepNoFailures(t *testing.T) {
	m := pram.New()
	rep := Sweep(m, rng.New(2), 1024, 100,
		func(j int) bool { return false },
		func(sub *pram.Machine, j int) { t.Fatal("resolve called with no failures") })
	if rep.Failures != 0 || !rep.CompactionOK {
		t.Fatalf("unexpected report %+v", rep)
	}
}

func TestSweepOverflowFallsBack(t *testing.T) {
	// More failures than the n^(1/4) area tolerates: the fallback must
	// still resolve every failure (the theoretical event has probability
	// 2^−n^(1/16); the implementation stays correct).
	m := pram.New()
	n, q := 256, 4096 // area ≈ 8·…; mark half of all problems failed
	resolved := 0
	rep := Sweep(m, rng.New(3), n, q,
		func(j int) bool { return j%2 == 0 },
		func(sub *pram.Machine, j int) { resolved++ })
	if rep.CompactionOK {
		t.Fatal("compaction should overflow")
	}
	if resolved != q/2 || rep.Failures != q/2 {
		t.Fatalf("resolved %d failures, want %d", resolved, q/2)
	}
}

func TestSweepConstantSteps(t *testing.T) {
	steps := func(q int) int64 {
		m := pram.New()
		Sweep(m, rng.New(4), 1<<20, q,
			func(j int) bool { return j == q/2 },
			func(sub *pram.Machine, j int) {})
		return m.Time()
	}
	if s1, s2 := steps(1<<8), steps(1<<16); s2 > s1 {
		t.Fatalf("sweep steps grew with q: %d → %d", s1, s2)
	}
}

func TestArea(t *testing.T) {
	if Area(1<<16) != 16 {
		t.Fatalf("Area(2^16) = %d, want 16", Area(1<<16))
	}
	if Area(10) != 8 {
		t.Fatalf("Area floor: %d", Area(10))
	}
}
