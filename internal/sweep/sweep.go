// Package sweep implements failure sweeping (§2.3): "a technique for
// improving the confidence bounds of an iterative or recursive randomized
// algorithm". A randomized solver is run for its budgeted constant time on
// n/m subproblems; the (whp ≤ n^(1/16)) subproblems that have not finished
// are *swept* — their ids approximately compacted into an area of size
// n^(1/4) (Lemma 2.1) — and each is then re-solved by a brute-force method
// that may use n^(3/4) processors, which is affordable precisely because so
// few problems failed.
//
// The package is generic over the problem kind: the hull algorithms pass
// closures that re-solve a swept subproblem by brute force (Observation
// 2.2/2.3 or Lemma 2.4).
package sweep

import (
	"math"

	"inplacehull/internal/compact"
	"inplacehull/internal/pram"
	"inplacehull/internal/rng"
)

// Report is the instrumentation record of one sweeping pass, consumed by
// experiment E9.
type Report struct {
	// Problems is the number of subproblems q under watch.
	Problems int
	// Failures is how many had failed and were swept.
	Failures int
	// CompactionOK reports whether the approximate compaction of failure
	// ids succeeded (it fails only if failures exceeded the area bound,
	// probability ≤ 2^−n^(1/16) by the Chernoff argument of §2.3).
	CompactionOK bool
}

// Area returns the sweep area for an instance of total size n: n^(1/4),
// never below a small constant floor so tiny instances remain sweepable.
func Area(n int) int {
	a := int(math.Ceil(math.Pow(float64(n), 0.25)))
	if a < 8 {
		a = 8
	}
	return a
}

// Sweep compacts the ids j ∈ [0, q) with failed(j) into an area of size
// Area(n) and invokes resolve(j) for each — resolve is expected to use its
// n^(3/4)-processor brute-force budget and must not fail. Returns the
// instrumentation report; if the compaction itself fails (more failures
// than the area can hold) the caller falls back to resolving every failed
// problem directly, which Sweep performs too (the confidence experiment
// records the event).
func Sweep(m *pram.Machine, rnd *rng.Stream, n, q int, failed func(j int) bool, resolve func(sub *pram.Machine, j int)) Report {
	rep := Report{Problems: q}
	area, ok := compact.CompactIntoArea(m, rnd.Split(0x57EE9), q, Area(n), failed)
	rep.CompactionOK = ok
	var fns []func(*pram.Machine)
	if ok {
		for _, j := range area {
			if j >= 0 {
				rep.Failures++
				jj := int(j)
				fns = append(fns, func(sub *pram.Machine) { resolve(sub, jj) })
			}
		}
	} else {
		// Compaction overflow: resolve everything that failed (the
		// theoretical event has probability ≤ 2^−n^(1/16); the
		// implementation stays correct regardless).
		for j := 0; j < q; j++ {
			if failed(j) {
				rep.Failures++
				jj := j
				fns = append(fns, func(sub *pram.Machine) { resolve(sub, jj) })
			}
		}
	}
	// The swept problems are re-solved simultaneously, each with its own
	// n^(3/4)-processor brute-force budget: concurrent composition.
	m.Concurrent(fns...)
	return rep
}
