package pram

import (
	"math"
	"sync/atomic"
)

// Combining cells implement the concurrent-write resolutions of the CRCW
// model. All of them are safe for any number of writers within a step and
// produce schedule-independent results, so simulated runs are reproducible.

// OrCell is a Common/collision CRCW cell holding a boolean OR of all writes.
type OrCell struct{ v atomic.Bool }

// Set writes true to the cell (concurrent writers all write the same value,
// as in the Common CRCW model).
func (c *OrCell) Set() { c.v.Store(true) }

// Get reads the cell. Must only be called after the barrier of the step
// that wrote it.
func (c *OrCell) Get() bool { return c.v.Load() }

// Reset clears the cell.
func (c *OrCell) Reset() { c.v.Store(false) }

// MaxCell resolves concurrent writes by keeping the maximum value written.
type MaxCell struct{ v atomic.Int64 }

// Init sets the cell to the given value (call before the writing step).
func (c *MaxCell) Init(v int64) { c.v.Store(v) }

// Write offers v; the cell retains the maximum across all writers.
func (c *MaxCell) Write(v int64) {
	for {
		cur := c.v.Load()
		if v <= cur || c.v.CompareAndSwap(cur, v) {
			return
		}
	}
}

// Get reads the resolved value after the barrier.
func (c *MaxCell) Get() int64 { return c.v.Load() }

// MinCell resolves concurrent writes by keeping the minimum value written.
type MinCell struct{ v atomic.Int64 }

// Init sets the cell to the given value (typically math.MaxInt64).
func (c *MinCell) Init(v int64) { c.v.Store(v) }

// InitMax sets the cell to MaxInt64, the identity for Min.
func (c *MinCell) InitMax() { c.v.Store(math.MaxInt64) }

// Write offers v; the cell retains the minimum across all writers.
func (c *MinCell) Write(v int64) {
	for {
		cur := c.v.Load()
		if v >= cur || c.v.CompareAndSwap(cur, v) {
			return
		}
	}
}

// Get reads the resolved value after the barrier.
func (c *MinCell) Get() int64 { return c.v.Load() }

// PriorityCell resolves concurrent writes in favor of the lowest-numbered
// processor, the Priority CRCW rule (also a deterministic implementation of
// the Arbitrary rule). Each write carries the writer's processor id and a
// payload value.
type PriorityCell struct {
	v atomic.Uint64 // high 32 bits: proc id; low 32 bits: payload index
}

const priorityEmpty = ^uint64(0)

// Reset empties the cell.
func (c *PriorityCell) Reset() { c.v.Store(priorityEmpty) }

// Write offers payload from processor proc (both must fit in 32 bits). The
// write from the lowest proc wins.
func (c *PriorityCell) Write(proc, payload int) {
	enc := uint64(proc)<<32 | uint64(uint32(payload))
	for {
		cur := c.v.Load()
		if enc >= cur || c.v.CompareAndSwap(cur, enc) {
			return
		}
	}
}

// Get returns the winning payload and whether any write occurred.
func (c *PriorityCell) Get() (payload int, ok bool) {
	cur := c.v.Load()
	if cur == priorityEmpty {
		return 0, false
	}
	return int(uint32(cur)), true
}

// Winner returns the winning processor id and whether any write occurred.
func (c *PriorityCell) Winner() (proc int, ok bool) {
	cur := c.v.Load()
	if cur == priorityEmpty {
		return 0, false
	}
	return int(cur >> 32), true
}

// ClaimCell is the cell type used by the paper's random-sample procedure
// (§3.1): several processors attempt to claim the cell by writing their id;
// exactly one wins, and — crucially — every processor can afterwards detect
// whether the cell it claimed was also attempted by someone else (a
// "collision"), mirroring steps 2–3 of the procedure.
type ClaimCell struct {
	owner    atomic.Int64 // −1 when unclaimed; else winning id
	attempts atomic.Int64 // number of claim attempts this round
}

// Reset returns the cell to the unclaimed state.
func (c *ClaimCell) Reset() {
	c.owner.Store(-1)
	c.attempts.Store(0)
}

// Claim attempts to claim the cell for id. The lowest id among concurrent
// claimants wins deterministically.
func (c *ClaimCell) Claim(id int64) {
	c.attempts.Add(1)
	for {
		cur := c.owner.Load()
		if cur != -1 && cur <= id {
			return
		}
		if c.owner.CompareAndSwap(cur, id) {
			return
		}
	}
}

// Owner returns the claiming id, or −1 if unclaimed.
func (c *ClaimCell) Owner() int64 { return c.owner.Load() }

// Contested reports whether more than one processor attempted this cell —
// the collision test of §3.1 step 3.
func (c *ClaimCell) Contested() bool { return c.attempts.Load() > 1 }

// ResetClaims resets a slice of claim cells (helper for per-round reuse).
func ResetClaims(cells []ClaimCell) {
	for i := range cells {
		cells[i].Reset()
	}
}
