package pram

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// This file is the persistent worker-pool engine behind runChunks. The
// previous substrate spawned a fresh batch of goroutines and a new
// sync.WaitGroup for every step above the sequential threshold; for the
// paper's O(1)- and O(log* n)-time algorithms (Theorems 2 and 5) that
// per-step spawn/join cost is the dominant real-time term — the steps are
// many and individually cheap. The engine replaces it with
//
//   - long-lived workers per Machine, started lazily on the first step big
//     enough to dispatch and torn down by Close (or a finalizer, so an
//     abandoned machine cannot leak parked goroutines);
//   - a reusable two-phase barrier (per-worker wake channels as the release
//     phase, an atomic arrival countdown plus one done channel as the join
//     phase) instead of a per-step WaitGroup allocation;
//   - dynamic chunking — workers claim fixed-size chunks off an atomic
//     cursor — so live-skewed steps (the survivor sets of Lemmas 4.1/5.1
//     decay like (15/16)^i, leaving most of the index range dead) cannot
//     straggle on one statically assigned chunk;
//   - a sequential threshold calibrated once at pool start from the
//     measured dispatch cost, instead of a hard-coded constant;
//   - a per-round fanout clamp: a round wakes at most
//     min(workers, GOMAXPROCS, chunks) - 1 peers. Virtual-processor width
//     (workers) is a simulation parameter and routinely exceeds the real
//     parallelism of the host; waking workers the scheduler cannot run
//     buys nothing and costs a futile wake/park context switch each. The
//     frozen spawn path has no such clamp — it pays one goroutine per
//     worker per step regardless — and the gap is most of what E17
//     measures on small hosts.
//
// None of this is visible to the counted semantics: Time, Work,
// PeakProcessors, profiles and sink events depend only on the step
// structure and the live-count sum, which are preserved exactly (the
// equivalence suite in parity_test.go proves it algorithm by algorithm).
// The old spawn-per-step dispatch is kept verbatim as runChunksSpawn — it
// is the frozen comparison baseline of StepBaseline, WithSpawnDispatch and
// the E17 engine benchmarks.

const (
	// minDispatchProbe is the step size below which a machine does not even
	// start its pool: dispatching can never pay for steps this small, so a
	// machine that only ever runs tiny steps stays goroutine-free.
	minDispatchProbe = 1024

	// Chunk geometry for the dynamic-chunking cursor. chunksPerWorker
	// over-decomposes the range so a worker whose chunks happen to be all
	// live (or all dead) rebalances against its peers; the clamps keep
	// cursor traffic negligible at both extremes.
	chunksPerWorker = 8
	minChunk        = 128
	maxChunk        = 1 << 16

	// Calibration bounds for the adaptive threshold (see calibrate).
	minThreshold = 1024
	maxThreshold = 1 << 16
	// grainFactor: dispatch only when the estimated loop body is at least
	// this multiple of the measured dispatch round-trip.
	grainFactor = 4
)

// engine is the persistent pool. It deliberately holds no reference back to
// its Machine so the machine stays collectable while workers are parked —
// the machine's finalizer is what reaps the pool.
type engine struct {
	workers   int // pool size, counting the dispatching host goroutine
	threshold int // dispatch only when n >= threshold
	// procs is the scheduler parallelism snapshot (GOMAXPROCS at pool
	// start); a round wakes at most procs-1 peers. Tests that must exercise
	// the full barrier on a small host raise it to workers.
	procs int

	// Round state: written by the host goroutine before the release phase,
	// read by workers after their wake receive (the channel pair carries
	// the happens-before edge).
	f     func(p int) bool
	n     int
	chunk int

	cursor  atomic.Int64 // next unclaimed index (dynamic chunking)
	live    atomic.Int64 // live-count accumulator for the round
	pending atomic.Int32 // arrival countdown of the join phase

	// First panic recovered from a worker's (or the host's) chunk loop; the
	// host rethrows it after the join so a panicking step unwinds on the
	// program thread with the pool back in its parked, reusable state.
	panicked atomic.Bool
	panicMu  sync.Mutex
	panicVal any

	// busy guards against re-entrant dispatch (an f that itself drives the
	// machine); the nested step falls back to the sequential loop instead
	// of deadlocking on the barrier.
	busy atomic.Bool

	wake []chan struct{} // release phase: one parked worker per channel
	done chan struct{}   // join phase: signaled by the last arriver

	// closed marks a retired pool. It is set by close while holding the
	// busy slot, so it can never race a round's wake sends; dispatchers
	// holding a stale reference to a closed engine fail the busy CAS and
	// fall back to the sequential path.
	closed atomic.Bool
}

// newEngine starts workers-1 parked goroutines and calibrates the
// sequential threshold (unless the caller pinned one).
func newEngine(workers, threshold int) *engine {
	return newEngineFanout(workers, threshold, runtime.GOMAXPROCS(0))
}

// newEngineFanout is newEngine with an explicit procs snapshot, so the
// test suite can force the full barrier fanout on a small host; procs is
// set before calibration so the probe measures the same fanout real
// rounds will use.
func newEngineFanout(workers, threshold, procs int) *engine {
	e := &engine{
		workers: workers,
		procs:   procs,
		done:    make(chan struct{}, 1),
	}
	e.wake = make([]chan struct{}, workers-1)
	for i := range e.wake {
		e.wake[i] = make(chan struct{}, 1)
		go e.workerLoop(e.wake[i])
	}
	if threshold > 0 {
		e.threshold = threshold
	} else {
		e.threshold = e.calibrate()
	}
	return e
}

// workerLoop parks on the wake channel between rounds; closing the channel
// retires the worker.
func (e *engine) workerLoop(wake chan struct{}) {
	for range wake {
		e.runRound()
		if e.pending.Add(-1) == 0 {
			e.done <- struct{}{}
		}
	}
}

// dispatch executes one parallel round over [0, n) and returns the live
// count. It must only be called from the machine's host goroutine; a panic
// raised by f on any worker is rethrown here after every worker has arrived
// at the join barrier, leaving the pool parked and reusable.
func (e *engine) dispatch(n int, f func(p int) bool) int64 {
	e.f, e.n = f, n
	e.chunk = chunkFor(n, e.workers)
	e.cursor.Store(0)
	e.live.Store(0)
	e.panicked.Store(false)
	// Fanout clamp: there is no point waking more peers than the scheduler
	// can run (procs-1, beyond the host) or than there are chunks to claim.
	peers := len(e.wake)
	if p := e.procs - 1; p < peers {
		peers = p
	}
	if c := (n+e.chunk-1)/e.chunk - 1; c < peers {
		peers = c
	}
	if peers < 0 {
		peers = 0
	}
	e.pending.Store(int32(peers + 1))
	for _, w := range e.wake[:peers] {
		w <- struct{}{}
	}
	e.runRound()
	if e.pending.Add(-1) > 0 {
		<-e.done
	}
	e.f = nil // do not pin the closure across the idle period
	if e.panicked.Load() {
		e.panicMu.Lock()
		r := e.panicVal
		e.panicVal = nil
		e.panicMu.Unlock()
		panic(r)
	}
	return e.live.Load()
}

// runRound claims chunks off the cursor until the range is exhausted. A
// panic from f is captured (first wins) rather than propagated so the
// goroutine still arrives at the join barrier; peers stop claiming new
// chunks as soon as they observe the flag.
func (e *engine) runRound() {
	defer func() {
		if r := recover(); r != nil {
			e.panicMu.Lock()
			if !e.panicked.Load() {
				e.panicVal = r
				e.panicked.Store(true)
			}
			e.panicMu.Unlock()
		}
	}()
	n, chunk, f := e.n, e.chunk, e.f
	var l int64
	for !e.panicked.Load() {
		lo := int(e.cursor.Add(int64(chunk))) - chunk
		if lo >= n {
			break
		}
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		l += runRange(lo, hi, f)
	}
	e.live.Add(l)
}

// chunkFor picks the dynamic-chunk size for a round: enough chunks that
// live-skew rebalances, few enough that cursor traffic stays negligible.
func chunkFor(n, workers int) int {
	c := n / (workers * chunksPerWorker)
	if c < minChunk {
		c = minChunk
	}
	if c > maxChunk {
		c = maxChunk
	}
	return c
}

// calibrationSink defeats dead-code elimination of the calibration loops.
var calibrationSink atomic.Int64

// calibrate measures, once at pool start, (i) the per-item cost of the
// cheapest conceivable step body and (ii) the round-trip cost of an
// (almost) empty dispatch through the barrier, and places the sequential
// threshold where the loop body outweighs the dispatch by grainFactor.
// The result only steers execution strategy — counted semantics do not
// depend on it — so the measurement can be rough; it is clamped to
// [minThreshold, maxThreshold] regardless.
func (e *engine) calibrate() int {
	f := func(p int) bool { return p&1 == 0 }

	const items = 1 << 15
	t0 := time.Now()
	var l int64
	for p := 0; p < items; p++ {
		if f(p) {
			l++
		}
	}
	perItem := float64(time.Since(t0)) / items
	calibrationSink.Add(l)

	// Probe with enough chunks (one per worker) that the round wakes the
	// same fanout a real dispatch would — a single-chunk probe would
	// measure a host-only round and undercount the barrier.
	probe := minChunk * e.workers
	const rounds = 32
	t1 := time.Now()
	for r := 0; r < rounds; r++ {
		calibrationSink.Add(e.dispatch(probe, f))
	}
	perDispatch := float64(time.Since(t1)) / rounds
	// The probe round still executes probe items; subtract their cost to
	// isolate the barrier round-trip.
	perDispatch -= float64(probe) * perItem
	if perItem <= 0 || perDispatch <= 0 {
		return minThreshold
	}
	thr := int(grainFactor * perDispatch / perItem)
	if thr < minThreshold {
		thr = minThreshold
	}
	if thr > maxThreshold {
		thr = maxThreshold
	}
	return thr
}

// close retires the workers. Idempotent and safe against a concurrent
// in-flight round: it first acquires the dispatch slot (the same busy flag
// runChunks claims before a round), so the wake channels are only ever
// closed while every worker is parked — a fleet-return path double-Close,
// or a Close racing a step on another goroutine, waits for the round to
// join instead of panicking with a send on a closed channel. The slot is
// deliberately never released: any dispatcher still holding a reference to
// this engine fails its busy CAS and runs its step sequentially, which is
// always a correct execution.
func (e *engine) close() {
	for {
		if e.closed.Load() {
			return
		}
		if e.busy.CompareAndSwap(false, true) {
			break
		}
		runtime.Gosched()
	}
	if !e.closed.Swap(true) {
		for _, w := range e.wake {
			close(w)
		}
	}
}
