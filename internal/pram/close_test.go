package pram

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
)

// TestCloseIdempotent: Close on an owned pool is repeatable — twice from
// the same goroutine, again after the machine restarted a fresh pool —
// and the machine stays usable with exact counters throughout. This is
// the regression test for the fleet return path, which may Close a
// machine that a shutdown path already Closed.
func TestCloseIdempotent(t *testing.T) {
	m := poolMachine(4, 1)
	const n = 4 * minChunk
	m.StepAll(n, func(p int) {})
	m.Close()
	m.Close() // double Close must be a no-op, not a panic

	// The machine stays usable: the next big step starts a fresh pool.
	m.StepAll(n, func(p int) {})
	if m.Time() != 2 || m.Work() != int64(2*n) {
		t.Fatalf("after Close+reuse: time=%d work=%d, want 2, %d", m.Time(), m.Work(), 2*n)
	}
	m.Close()
	m.Close()
}

// TestCloseConcurrent: many goroutines Closing the same machine at once —
// the exact shape of a fleet teardown racing per-request returns — must
// neither panic nor leave workers parked forever.
func TestCloseConcurrent(t *testing.T) {
	for round := 0; round < 50; round++ {
		m := poolMachine(4, 1)
		m.StepAll(4*minChunk, func(p int) {})
		var wg sync.WaitGroup
		for g := 0; g < 8; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				m.Close()
			}()
		}
		wg.Wait()
	}
}

// TestCloseRacingDispatch: Close from one goroutine while another is
// driving steps through the pool. Before engine.close acquired the
// dispatch slot, this could close a wake channel mid-round and panic the
// dispatcher with a send on a closed channel; now the Close waits for the
// round to join, and later steps fall back to sequential execution or a
// fresh pool. Counters must stay exact either way.
func TestCloseRacingDispatch(t *testing.T) {
	const steps = 200
	const n = 4 * minChunk
	m := poolMachine(4, 1)
	defer m.Close()

	doneStepping := make(chan struct{})
	done := make(chan struct{})
	var closes atomic.Int64
	go func() {
		defer close(done)
		for {
			select {
			case <-doneStepping:
				return
			default:
				m.Close()
				closes.Add(1)
				runtime.Gosched()
			}
		}
	}()

	for i := 0; i < steps; i++ {
		m.StepAll(n, func(p int) {})
	}
	close(doneStepping)
	<-done

	if m.Time() != steps || m.Work() != int64(steps)*int64(n) {
		t.Fatalf("time=%d work=%d, want %d, %d (closes=%d)",
			m.Time(), m.Work(), steps, int64(steps)*int64(n), closes.Load())
	}
}

// TestCloseReleasesWorkers: after a concurrent Close storm the pool's
// goroutines are gone (no leaked parked workers).
func TestCloseReleasesWorkers(t *testing.T) {
	baseline := runtime.NumGoroutine()
	m := poolMachine(8, 1)
	m.StepAll(8*minChunk, func(p int) {})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			m.Close()
		}()
	}
	wg.Wait()
	for i := 0; i < 200; i++ {
		if runtime.NumGoroutine() <= baseline {
			return
		}
		runtime.Gosched()
	}
	if g := runtime.NumGoroutine(); g > baseline+1 {
		t.Fatalf("workers leaked after concurrent Close: %d goroutines, baseline %d", g, baseline)
	}
}
