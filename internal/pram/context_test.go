package pram

import (
	"context"
	"errors"
	"testing"
	"time"
)

// runCanceled runs f expecting it to panic with a *Cancellation and
// returns the cause.
func runCanceled(t *testing.T, f func()) error {
	t.Helper()
	var cause error
	func() {
		defer func() {
			c, ok := AsCancellation(recover())
			if !ok {
				t.Fatalf("program did not abort with *Cancellation")
			}
			cause = c.Cause
		}()
		f()
		t.Fatalf("program ran to completion despite canceled context")
	}()
	return cause
}

// TestStepAbortsOnCanceledContext: a done context makes Step panic with
// *Cancellation before any counter moves.
func TestStepAbortsOnCanceledContext(t *testing.T) {
	m := New(WithWorkers(1))
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	m.SetContext(ctx)
	cause := runCanceled(t, func() {
		m.Step(8, func(i int) bool { t.Errorf("processor body %d ran after cancel", i); return true })
	})
	if !errors.Is(cause, context.Canceled) {
		t.Fatalf("cause = %v, want context.Canceled", cause)
	}
	if m.Time() != 0 || m.Work() != 0 {
		t.Fatalf("canceled step charged counters: time=%d work=%d", m.Time(), m.Work())
	}
}

// TestChargeAndStepsAbort: the sequential-substitute and multi-step paths
// poll too.
func TestChargeAndStepsAbort(t *testing.T) {
	m := New(WithWorkers(1))
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	m.SetContext(ctx)
	runCanceled(t, func() { m.Charge(3, 300) })
	runCanceled(t, func() { m.Steps(3, 4, func(i int) bool { return true }) })
	if m.Time() != 0 || m.Work() != 0 {
		t.Fatalf("canceled charge moved counters: time=%d work=%d", m.Time(), m.Work())
	}
}

// TestDeadlineCause: an expired deadline reports context.DeadlineExceeded.
func TestDeadlineCause(t *testing.T) {
	m := New(WithWorkers(1))
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	m.SetContext(ctx)
	cause := runCanceled(t, func() { m.Step(1, func(i int) bool { return true }) })
	if !errors.Is(cause, context.DeadlineExceeded) {
		t.Fatalf("cause = %v, want context.DeadlineExceeded", cause)
	}
}

// TestMachineReusableAfterCancel: detaching the context (or attaching a
// live one) makes the same machine fully usable again, with counters
// resuming from their pre-cancel values.
func TestMachineReusableAfterCancel(t *testing.T) {
	m := New(WithWorkers(1))
	m.Step(4, func(i int) bool { return true })
	before := m.Time()

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	m.SetContext(ctx)
	runCanceled(t, func() { m.Step(4, func(i int) bool { return true }) })

	m.SetContext(nil)
	if m.Context() != nil {
		t.Fatalf("SetContext(nil) did not detach")
	}
	m.Step(4, func(i int) bool { return true })
	if m.Time() != before+1 {
		t.Fatalf("time = %d after reuse, want %d", m.Time(), before+1)
	}
}

// TestConcurrentInheritsContext: sub-machines of a Concurrent composition
// observe the parent's context.
func TestConcurrentInheritsContext(t *testing.T) {
	m := New(WithWorkers(1))
	ctx, cancel := context.WithCancel(context.Background())
	m.SetContext(ctx)

	// Live context: sub-machines run and inherit ctx.
	m.Concurrent(func(sub *Machine) {
		if sub.Context() != ctx {
			t.Errorf("sub-machine did not inherit the parent context")
		}
		sub.Step(2, func(i int) bool { return true })
	})

	// Done context: the composition aborts before running branches.
	cancel()
	runCanceled(t, func() {
		m.Concurrent(func(sub *Machine) { t.Errorf("branch ran after cancel") })
	})
}

// countdownCtx is a context whose Err flips to context.Canceled after a
// fixed number of Err() polls — a deterministic mid-run cancel.
type countdownCtx struct {
	context.Context
	remaining int
}

func (c *countdownCtx) Err() error {
	if c.remaining <= 0 {
		return context.Canceled
	}
	c.remaining--
	return nil
}

// TestMidProgramCancelConsistency: cancel partway through a multi-step
// program; exactly the steps that polled successfully are charged.
func TestMidProgramCancelConsistency(t *testing.T) {
	m := New(WithWorkers(1))
	m.SetContext(&countdownCtx{Context: context.Background(), remaining: 3})
	ran := 0
	runCanceled(t, func() {
		for i := 0; i < 10; i++ {
			m.Step(5, func(int) bool { return true })
			ran++
		}
	})
	if ran != 3 {
		t.Fatalf("%d steps ran before the countdown cancel, want 3", ran)
	}
	if m.Time() != 3 || m.Work() != 15 {
		t.Fatalf("counters time=%d work=%d, want exactly the 3 completed steps (work 15)",
			m.Time(), m.Work())
	}
}
