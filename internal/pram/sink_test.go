package pram

import (
	"fmt"
	"testing"
)

// logSink records every event as a formatted line.
type logSink struct {
	lines              []string
	stepWork, chgWork  int64
	subWork, noteCount int64
}

func (s *logSink) StepEvent(k, live int64) {
	s.lines = append(s.lines, fmt.Sprintf("step k=%d live=%d", k, live))
	s.stepWork += k * live
}
func (s *logSink) ChargeEvent(steps, work int64) {
	s.lines = append(s.lines, fmt.Sprintf("charge s=%d w=%d", steps, work))
	s.chgWork += work
}
func (s *logSink) SpanOpenEvent(name string, at Snapshot)  { s.lines = append(s.lines, "open "+name) }
func (s *logSink) SpanCloseEvent(name string, at Snapshot) { s.lines = append(s.lines, "close "+name) }
func (s *logSink) SubOpenEvent(at Snapshot)                { s.lines = append(s.lines, "subopen") }
func (s *logSink) SubCloseEvent(sub Snapshot) {
	s.lines = append(s.lines, "subclose")
	s.subWork += sub.Work
}
func (s *logSink) NoteEvent(event, detail string) {
	s.lines = append(s.lines, "note "+event)
	s.noteCount++
}

func TestSinkEventWorkAccountsExactly(t *testing.T) {
	m := New(WithWorkers(1))
	s := &logSink{}
	m.SetSink(s)
	m.StepAll(100, func(p int) {})
	m.Steps(3, 50, func(p int) bool { return p < 10 })
	m.Charge(2, 40)
	m.Concurrent(
		func(sub *Machine) { sub.StepAll(7, func(p int) {}) },
		func(sub *Machine) { sub.Charge(1, 5) },
	)
	// Total work by events: every step and charge event, from the parent
	// and from Concurrent sub-machines alike, counted once — the merge
	// charge is sink-silent by design, so nothing is double-counted.
	got := s.stepWork + s.chgWork
	if got != m.Work() {
		t.Fatalf("event work %d != machine work %d\n%v", got, m.Work(), s.lines)
	}
	// The SubCloseEvent totals equal exactly what the silent merge folded
	// into the parent: the sum of the sub-machines' works.
	if s.subWork != 7+5 {
		t.Fatalf("sub work %d, want 12", s.subWork)
	}
}

func TestSinkSubEventsBracketSpans(t *testing.T) {
	m := New(WithWorkers(1))
	s := &logSink{}
	m.SetSink(s)
	m.SpanOpen("outer")
	m.Concurrent(func(sub *Machine) {
		sub.SpanOpen("inner")
		sub.StepAll(4, func(p int) {})
		sub.SpanClose("inner")
	})
	m.SpanClose("outer")
	want := []string{"open outer", "subopen", "open inner", "step k=1 live=4", "close inner", "subclose", "close outer"}
	if len(s.lines) != len(want) {
		t.Fatalf("lines = %v, want %v", s.lines, want)
	}
	for i := range want {
		if s.lines[i] != want[i] {
			t.Fatalf("line %d = %q, want %q (all: %v)", i, s.lines[i], want[i], s.lines)
		}
	}
}

func TestSinkNilIsNoop(t *testing.T) {
	m := New(WithWorkers(1))
	m.SpanOpen("x")
	m.SpanClose("x")
	m.Note("retry", "1")
	m.StepAll(10, func(p int) {})
	if m.Work() != 10 {
		t.Fatalf("work = %d, want 10", m.Work())
	}
}

// Regression for the Charge(steps == 0) profile bug: work charged before
// any step exists must not create a phantom profile bucket (which would
// desynchronize len(profile) from Time()); it attaches to the first real
// step instead.
func TestChargeZeroStepsEmptyProfile(t *testing.T) {
	m := New(WithProfile(), WithWorkers(1))
	m.Charge(0, 100)
	if got := m.Profile(); len(got) != 0 {
		t.Fatalf("profile after step-less charge = %v, want empty", got)
	}
	if m.Time() != 0 || m.Work() != 100 {
		t.Fatalf("Time=%d Work=%d, want 0/100", m.Time(), m.Work())
	}
	m.StepAll(10, func(p int) {})
	prof := m.Profile()
	if len(prof) != 1 || prof[0] != 110 {
		t.Fatalf("profile = %v, want [110]", prof)
	}
	if int64(len(prof)) != m.Time() {
		t.Fatalf("len(profile)=%d != Time()=%d", len(prof), m.Time())
	}
	// Later step-less charges still fold into the previous bucket.
	m.Charge(0, 5)
	prof = m.Profile()
	if len(prof) != 1 || prof[0] != 115 {
		t.Fatalf("profile = %v, want [115]", prof)
	}
	// Reset clears the pending accumulator too.
	m.ResetCounters()
	m.Charge(0, 7)
	m.ResetCounters()
	m.StepAll(3, func(p int) {})
	prof = m.Profile()
	if len(prof) != 1 || prof[0] != 3 {
		t.Fatalf("profile after reset = %v, want [3]", prof)
	}
}

// The profile-length invariant the §5 allocation analysis depends on:
// len(profile) == Time() across every charge shape.
func TestProfileLengthMatchesTime(t *testing.T) {
	m := New(WithProfile(), WithWorkers(1))
	m.Charge(0, 9)
	m.Charge(3, 12)
	m.StepAll(4, func(p int) {})
	m.Steps(2, 8, func(p int) bool { return true })
	m.Charge(0, 1)
	if int64(len(m.Profile())) != m.Time() {
		t.Fatalf("len(profile)=%d != Time()=%d", len(m.Profile()), m.Time())
	}
	var sum int64
	for _, v := range m.Profile() {
		sum += v
	}
	if sum != m.Work() {
		t.Fatalf("profile sum %d != Work %d", sum, m.Work())
	}
}
