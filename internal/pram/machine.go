// Package pram simulates a synchronous CRCW PRAM, the machine model all of
// the paper's algorithms are stated in.
//
// The paper's theorems are claims about two quantities the real hardware of
// 1991 never existed to measure: parallel time (the number of synchronous
// steps) and work (the total number of live processor activations). This
// package makes both measurable. A Machine executes programs as a sequence
// of Steps; each Step runs one instruction for every virtual processor in a
// range, with a barrier between steps. Underneath, a pool of goroutine
// workers executes the virtual processors in coarse-grained chunks — the
// goroutines provide real concurrency but never change the counted
// semantics, which depend only on the step structure.
//
// Concurrent-write semantics are provided by combining cells (OrCell,
// MaxCell, PriorityCell, ClaimCell): within a step, any number of
// processors may write to the same cell, and the value visible after the
// barrier is deterministic (Priority resolution — the lowest-numbered
// processor wins — which is a valid implementation of the Arbitrary CRCW
// model the paper assumes, and makes every run reproducible). Programs must
// not read a plain memory cell in the same step that writes it; the
// algorithms in this library are structured so reads always precede writes
// across a barrier, as in the model.
package pram

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
)

// Machine is a simulated CRCW PRAM with instrumentation.
type Machine struct {
	workers int
	// threshold, when > 0, pins the engine's parallel threshold instead of
	// calibrating it at pool start (WithParallelThreshold).
	threshold int
	// spawnDispatch freezes the pre-engine per-step goroutine-spawn
	// dispatch (WithSpawnDispatch) — the E17 comparison baseline.
	spawnDispatch bool
	// fanout, when > 0, overrides the engine's GOMAXPROCS snapshot (its
	// per-round fanout clamp). Test-only knob: the stress suite raises it
	// to the worker count so the full wake/join barrier is exercised even
	// on a single-core host.
	fanout int

	// eng is the persistent worker pool (engine.go), started lazily on the
	// first step large enough to dispatch. engOwned marks this machine as
	// the pool's owner (Close tears it down); sub-machines of Concurrent
	// and Adopt borrow the parent's pool through poolParent instead of
	// starting their own.
	engMu      sync.Mutex
	eng        *engine
	engOwned   bool
	poolParent *Machine

	// ctx, when non-nil, is polled at the start of every Step/Steps/Charge
	// and of every Concurrent composition; see SetContext.
	ctx context.Context

	steps     atomic.Int64 // parallel time: number of synchronous steps
	work      atomic.Int64 // total live processor activations
	peakProcs atomic.Int64 // max processors live in any single step
	scratch   atomic.Int64 // currently allocated scratch cells
	peakSpace atomic.Int64 // peak scratch allocation ("o(n) work space")

	profileMu sync.Mutex
	profile   []int64 // live processors per step, when profiling is on
	// pendingWork holds work charged before any step exists (Charge with
	// steps == 0 on an empty profile); it folds into the first real step's
	// bucket so len(profile) always equals Time().
	pendingWork int64
	profiling   bool

	// sink, when non-nil, observes step/charge/span events (see sink.go).
	// Every emission site nil-checks it so the disabled path costs one
	// predictable branch.
	sink Sink
}

// Option configures a Machine.
type Option func(*Machine)

// WithWorkers sets the number of real goroutine workers used to execute the
// virtual processors of each step. The default is runtime.GOMAXPROCS(0).
func WithWorkers(w int) Option {
	return func(m *Machine) {
		if w > 0 {
			m.workers = w
		}
	}
}

// WithProfile records the live-processor count of every step, enabling the
// Matias–Vishkin simulation analysis of internal/alloc (§5).
func WithProfile() Option {
	return func(m *Machine) { m.profiling = true }
}

// WithParallelThreshold pins the step size at which the machine dispatches
// to its worker pool, bypassing the calibration that normally runs at pool
// start. Counted semantics do not depend on the threshold; the option
// exists so tests and benchmarks can force (or forbid) the pooled path
// deterministically.
func WithParallelThreshold(n int) Option {
	return func(m *Machine) {
		if n > 0 {
			m.threshold = n
		}
	}
}

// WithSpawnDispatch freezes the pre-engine dispatch strategy — a fresh
// goroutine batch and WaitGroup per step — verbatim. It exists solely as
// the comparison baseline for the E17 engine benchmarks and must not be
// used by algorithms.
func WithSpawnDispatch() Option {
	return func(m *Machine) { m.spawnDispatch = true }
}

// New returns a fresh machine with zeroed counters.
func New(opts ...Option) *Machine {
	m := &Machine{workers: runtime.GOMAXPROCS(0)}
	for _, o := range opts {
		o(m)
	}
	return m
}

// Cancellation is the panic value with which a Machine aborts a program
// once its attached context is done. It unwinds the (host-side, strictly
// sequential) program between two PRAM steps: worker goroutines of the
// previous step have already joined, counters reflect exactly the steps
// that completed, and every deferred scratch release runs during the
// unwind, so the machine stays consistent and reusable. A supervision
// boundary (internal/resilient) recovers it and converts the cause into
// the typed Canceled/DeadlineExceeded error kinds.
type Cancellation struct {
	// Cause is the context's error: context.Canceled or
	// context.DeadlineExceeded.
	Cause error
}

// AsCancellation extracts a *Cancellation from a recover() value.
func AsCancellation(r any) (*Cancellation, bool) {
	c, ok := r.(*Cancellation)
	return c, ok
}

// SetContext attaches ctx to the machine: subsequent steps first poll ctx
// and, once it is done, abort the program by panicking with a
// *Cancellation (see that type for the unwind contract). Pass nil to
// detach. Callers attaching a context must run the program under a
// recovery boundary — the resilient supervisor is the library's; raw
// algorithm entry points assume the default nil context and never panic.
func (m *Machine) SetContext(ctx context.Context) { m.ctx = ctx }

// Context returns the context attached with SetContext (nil if none).
func (m *Machine) Context() context.Context { return m.ctx }

// poll aborts the program if the attached context is done. It is called
// before any counter mutation so a canceled step is never half-charged.
func (m *Machine) poll() {
	if m.ctx == nil {
		return
	}
	if err := m.ctx.Err(); err != nil {
		panic(&Cancellation{Cause: err})
	}
}

// Time returns the number of synchronous PRAM steps executed so far.
func (m *Machine) Time() int64 { return m.steps.Load() }

// Work returns the total number of live processor activations so far.
func (m *Machine) Work() int64 { return m.work.Load() }

// PeakProcessors returns the largest number of processors that were live in
// any single step — the machine-size requirement of the program.
func (m *Machine) PeakProcessors() int64 { return m.peakProcs.Load() }

// PeakSpace returns the peak number of scratch cells allocated at once.
func (m *Machine) PeakSpace() int64 { return m.peakSpace.Load() }

// ResetCounters zeroes all instrumentation counters.
func (m *Machine) ResetCounters() {
	m.steps.Store(0)
	m.work.Store(0)
	m.peakProcs.Store(0)
	m.scratch.Store(0)
	m.peakSpace.Store(0)
	m.profileMu.Lock()
	m.profile = nil
	m.pendingWork = 0
	m.profileMu.Unlock()
}

// Snapshot is a point-in-time copy of the machine's counters.
type Snapshot struct {
	Time, Work, PeakProcessors, PeakSpace int64
}

// Snap returns the current counters.
func (m *Machine) Snap() Snapshot {
	return Snapshot{
		Time:           m.Time(),
		Work:           m.Work(),
		PeakProcessors: m.PeakProcessors(),
		PeakSpace:      m.PeakSpace(),
	}
}

// Delta returns the counter increases since an earlier snapshot.
func (m *Machine) Delta(since Snapshot) Snapshot {
	now := m.Snap()
	return Snapshot{
		Time:           now.Time - since.Time,
		Work:           now.Work - since.Work,
		PeakProcessors: now.PeakProcessors, // peaks are absolute, not differential
		PeakSpace:      now.PeakSpace,
	}
}

// seqThreshold is the fixed virtual-processor count below which the frozen
// spawn dispatch (runChunksSpawn, the pre-engine strategy) runs a step on
// the calling goroutine. The engine path replaces this constant with a
// threshold calibrated at pool start (engine.calibrate).
const seqThreshold = 4096

// Step executes one synchronous PRAM step over virtual processors
// [0, n). f(p) performs processor p's instruction and reports whether the
// processor was live (performed work). Time increases by one; work
// increases by the number of live processors. f must follow the CRCW
// discipline described in the package comment.
func (m *Machine) Step(n int, f func(p int) bool) {
	if n <= 0 {
		return
	}
	m.poll()
	m.steps.Add(1)
	live := m.runChunks(n, f)
	m.work.Add(live)
	m.bumpPeak(live)
	m.record(live, 1)
	if m.sink != nil {
		m.sink.StepEvent(1, live)
	}
}

// record appends per-step live counts to the profile when enabled. Work
// charged before the first step (pendingWork) folds into the first bucket.
func (m *Machine) record(live, steps int64) {
	if !m.profiling || steps <= 0 {
		return
	}
	m.profileMu.Lock()
	first := live
	if len(m.profile) == 0 && m.pendingWork > 0 {
		first += m.pendingWork
		m.pendingWork = 0
	}
	m.profile = append(m.profile, first)
	for i := int64(1); i < steps; i++ {
		m.profile = append(m.profile, live)
	}
	m.profileMu.Unlock()
}

// Profile returns a copy of the per-step live-processor counts recorded so
// far (empty unless the machine was created WithProfile).
func (m *Machine) Profile() []int64 {
	m.profileMu.Lock()
	defer m.profileMu.Unlock()
	out := make([]int64, len(m.profile))
	copy(out, m.profile)
	return out
}

// StepAll is Step for programs in which every processor in [0, n) is live.
func (m *Machine) StepAll(n int, f func(p int)) {
	m.Step(n, func(p int) bool { f(p); return true })
}

// Steps executes k identical-shape synchronous steps at once: f(p) is
// invoked once per processor but is charged as k steps of n processors.
// It exists for primitives whose per-processor code is a short sequential
// loop of known length k (e.g. a processor walking its O(log n) ancestors);
// running it as one Go-level pass with honest accounting avoids k separate
// barrier sweeps without changing any counted quantity.
func (m *Machine) Steps(k int64, n int, f func(p int) bool) {
	if n <= 0 || k <= 0 {
		return
	}
	m.poll()
	m.steps.Add(k)
	live := m.runChunks(n, f)
	m.work.Add(live * k)
	m.bumpPeak(live)
	m.record(live, k)
	if m.sink != nil {
		m.sink.StepEvent(k, live)
	}
}

// Charge adds steps time and work to the counters without executing
// anything. It is used when a sub-computation was executed outside the
// machine (e.g. by a documented sequential substitute) and its PRAM cost is
// charged explicitly; every use site documents the charge.
func (m *Machine) Charge(steps, work int64) {
	m.charge(steps, work)
	if m.sink != nil {
		m.sink.ChargeEvent(steps, work)
	}
}

// charge is Charge without the sink event — the Concurrent merge path uses
// it so sub-machine events (already emitted) are not double-counted.
func (m *Machine) charge(steps, work int64) {
	m.poll()
	m.steps.Add(steps)
	m.work.Add(work)
	if steps > 0 && work > 0 {
		// A charge of w work over s steps implies w/s simultaneous
		// processors.
		m.bumpPeak((work + steps - 1) / steps)
	}
	if steps > 0 {
		per := work / steps
		m.record(per, steps-1)
		m.record(work-per*(steps-1), 1)
	} else if work > 0 {
		// Work with no step: fold into the previous step's profile bucket.
		// Before any step exists there is no bucket to fold into — a
		// phantom entry here would desynchronize len(profile) from Time()
		// (the §5 schedule analysis relies on their equality), so the work
		// is held pending and attached to the first real step instead.
		if m.profiling {
			m.profileMu.Lock()
			if len(m.profile) > 0 {
				m.profile[len(m.profile)-1] += work
			} else {
				m.pendingWork += work
			}
			m.profileMu.Unlock()
		}
	}
}

func (m *Machine) bumpPeak(live int64) {
	for {
		cur := m.peakProcs.Load()
		if live <= cur || m.peakProcs.CompareAndSwap(cur, live) {
			return
		}
	}
}

// Concurrent composes subprograms that run side by side on disjoint data
// (e.g. per-problem compactions, each in its own work space): the composite
// costs the *maximum* of the subprograms' times — they share the machine's
// steps — while work and space add up. Each fn receives a fresh sub-machine
// whose counters are merged into m afterwards. The fns themselves are
// executed one after another host-side; only the accounting is concurrent,
// which is sound because the subprograms touch disjoint state.
func (m *Machine) Concurrent(fns ...func(sub *Machine)) {
	var maxTime, sumWork, sumSpace, maxProcs int64
	for _, fn := range fns {
		m.poll()
		sub := New(WithWorkers(m.workers))
		sub.threshold = m.threshold
		sub.spawnDispatch = m.spawnDispatch
		sub.poolParent = m // sub-machines borrow the parent's worker pool
		sub.ctx = m.ctx    // cancellation reaches concurrently composed subprograms
		sub.sink = m.sink  // so do span/step observations (folded by the collector)
		if m.sink != nil {
			m.sink.SubOpenEvent(m.Snap())
		}
		fn(sub)
		if m.sink != nil {
			m.sink.SubCloseEvent(sub.Snap())
		}
		if t := sub.Time(); t > maxTime {
			maxTime = t
		}
		sumWork += sub.Work()
		sumSpace += sub.PeakSpace()
		maxProcs += sub.PeakProcessors()
	}
	// The merge is charged through the sink-silent path: the sub-machines'
	// own events already carry exactly this cost.
	m.charge(maxTime, sumWork)
	if sumSpace > 0 {
		release := m.AllocScratch(sumSpace)
		release()
	}
	m.bumpPeak(maxProcs)
}

// AllocScratch records the allocation of n scratch cells and returns a
// release function; pairing Alloc/release tracks the peak "work space" the
// in-place techniques are allowed (o(n)).
func (m *Machine) AllocScratch(n int64) (release func()) {
	cur := m.scratch.Add(n)
	for {
		pk := m.peakSpace.Load()
		if cur <= pk || m.peakSpace.CompareAndSwap(pk, cur) {
			break
		}
	}
	var once sync.Once
	return func() { once.Do(func() { m.scratch.Add(-n) }) }
}

// runChunks executes f for p in [0, n) and returns the number of live
// processors: sequentially for small steps or single-worker machines,
// through the persistent worker-pool engine otherwise. A panic raised by f
// propagates from here on the host goroutine with the pool back in its
// parked state (see engine.dispatch), matching the sequential path's
// unwind point: Time already counts the step, Work does not.
func (m *Machine) runChunks(n int, f func(p int) bool) int64 {
	if m.workers <= 1 {
		return runSeq(n, f)
	}
	if m.spawnDispatch {
		return m.runChunksSpawn(n, f)
	}
	if m.threshold == 0 && n < minDispatchProbe {
		// Too small for dispatch under any calibration — skip the pool
		// entirely so tiny-step machines never start one.
		return runSeq(n, f)
	}
	e := m.engine()
	if n < e.threshold {
		return runSeq(n, f)
	}
	if !e.busy.CompareAndSwap(false, true) {
		// Re-entrant step (f itself drives the machine) or a pool retired
		// by a concurrent Close, which holds the busy slot forever: run
		// inline rather than deadlocking on the barrier or waking retired
		// workers.
		return runSeq(n, f)
	}
	defer e.busy.Store(false)
	return e.dispatch(n, f)
}

// runSeq is the sequential execution of one step.
func runSeq(n int, f func(p int) bool) int64 {
	return runRange(0, n, f)
}

// runRange executes f for p in [lo, hi) and returns the live count. It is
// the one loop body shared by the sequential path and the engine's chunk
// claims. The noinline directive is load-bearing: inlined copies of this
// loop pick up the register pressure of their surrounding function (the
// engine's claim loop keeps cursor/panic state live), which measurably
// slows the per-item path; one outlined body gives every dispatch
// strategy the identical hot loop, and its call cost is per-chunk, not
// per-item.
//
//go:noinline
func runRange(lo, hi int, f func(p int) bool) int64 {
	var live int64
	for p := lo; p < hi; p++ {
		if f(p) {
			live++
		}
	}
	return live
}

// engine returns the machine's worker pool, starting it (or borrowing the
// pool parent's, when the worker counts match) on first use.
func (m *Machine) engine() *engine {
	m.engMu.Lock()
	defer m.engMu.Unlock()
	if m.eng == nil {
		if p := m.poolParent; p != nil && p.workers == m.workers {
			m.eng = p.engine()
		} else {
			if m.fanout > 0 {
				m.eng = newEngineFanout(m.workers, m.threshold, m.fanout)
			} else {
				m.eng = newEngine(m.workers, m.threshold)
			}
			m.engOwned = true
			runtime.SetFinalizer(m, (*Machine).Close)
		}
	}
	return m.eng
}

// Close retires the machine's persistent worker pool, if it owns one.
// Idempotent and safe to call concurrently from multiple goroutines — a
// double Close from a fleet return path is a no-op, and a Close that races
// a step in flight on another goroutine waits for that step's round to
// join before retiring the pool (see engine.close). The machine stays
// usable — a later large step lazily starts a fresh pool. Machines that
// never ran a step big enough to dispatch own no pool and Close is a
// no-op; abandoned machines are also reaped by a finalizer, so Close is an
// optimization (prompt teardown, deterministic goroutine accounting in
// tests), not an obligation.
func (m *Machine) Close() {
	m.engMu.Lock()
	eng, owned := m.eng, m.engOwned
	m.eng = nil
	m.engOwned = false
	m.engMu.Unlock()
	if owned && eng != nil {
		runtime.SetFinalizer(m, nil)
		eng.close()
	}
}

// runChunksSpawn is the pre-engine dispatch, frozen verbatim: a fresh
// goroutine batch and WaitGroup per step, one static chunk per worker. It
// backs StepBaseline and WithSpawnDispatch machines — the comparison
// baseline the E17 benchmarks and BENCH_pram.json measure the engine
// against — and must not change.
func (m *Machine) runChunksSpawn(n int, f func(p int) bool) int64 {
	if n < seqThreshold || m.workers <= 1 {
		return runSeq(n, f)
	}
	workers := m.workers
	if workers > n {
		workers = n
	}
	chunk := (n + workers - 1) / workers
	var wg sync.WaitGroup
	var live atomic.Int64
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			var l int64
			for p := lo; p < hi; p++ {
				if f(p) {
					l++
				}
			}
			live.Add(l)
		}(lo, hi)
	}
	wg.Wait()
	return live.Load()
}
