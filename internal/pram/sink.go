package pram

// Sink observes the machine's execution events. It is the hook the
// observability layer (internal/obs) installs to attribute PRAM cost to
// the paper-named phase that incurred it; the machine itself stays
// policy-free. All methods are invoked from the host-side program between
// PRAM steps (the sequential thread that drives the machine), never from
// worker goroutines, so a sink sees a strictly ordered event stream.
//
// The nil case is the fast path: every emission site checks `m.sink != nil`
// first, so a machine without a sink pays one predictable branch per
// Step/Steps/Charge — the ≤5% overhead contract benchmarked by
// BenchmarkStepDisabledVsBaseline and recorded by experiment E16.
type Sink interface {
	// StepEvent fires after a Step (k = 1) or Steps (k > 1) completes:
	// k synchronous steps of `live` simultaneous processors each, adding
	// k·live to Work.
	StepEvent(k, live int64)
	// ChargeEvent fires after an explicit Charge(steps, work). The merge
	// charge of a Concurrent composition does NOT emit this event — the
	// sub-machines' own events already account for that cost (see
	// SubCloseEvent), and emitting both would double-count work.
	ChargeEvent(steps, work int64)
	// SpanOpenEvent/SpanCloseEvent bracket a named phase region opened by
	// obs.Span. `at` is the emitting machine's counters at the boundary;
	// spans nest, and spans opened on a Concurrent sub-machine arrive
	// between the enclosing SubOpenEvent/SubCloseEvent pair.
	SpanOpenEvent(name string, at Snapshot)
	SpanCloseEvent(name string, at Snapshot)
	// SubOpenEvent fires when a Concurrent composition is about to run one
	// subprogram on a fresh sub-machine (which inherits this sink);
	// SubCloseEvent fires after it returns, carrying the sub-machine's
	// final counters — exactly the quantities the parent's merge charge
	// folds in.
	SubOpenEvent(at Snapshot)
	SubCloseEvent(sub Snapshot)
	// NoteEvent carries host-level annotations that are not PRAM cost:
	// the resilient supervisor's retry/ladder transitions ("retry",
	// "ladder", "tier"), exporters render them as instants.
	NoteEvent(event, detail string)
}

// SetSink installs (or, with nil, removes) the machine's event sink.
// Concurrent sub-machines inherit the sink at composition time.
func (m *Machine) SetSink(s Sink) { m.sink = s }

// Sink returns the installed sink (nil if none).
func (m *Machine) Sink() Sink { return m.sink }

// SpanOpen emits a span-open event when a sink is installed; no-op
// otherwise. Algorithms use obs.Span rather than calling this directly.
func (m *Machine) SpanOpen(name string) {
	if m.sink != nil {
		m.sink.SpanOpenEvent(name, m.Snap())
	}
}

// SpanClose emits the matching span-close event.
func (m *Machine) SpanClose(name string) {
	if m.sink != nil {
		m.sink.SpanCloseEvent(name, m.Snap())
	}
}

// Note emits a host-level annotation event when a sink is installed.
func (m *Machine) Note(event, detail string) {
	if m.sink != nil {
		m.sink.NoteEvent(event, detail)
	}
}

// Adopt runs fn on a caller-supplied sub-machine with the composition
// semantics of Concurrent: the sub-machine inherits m's sink, its run is
// bracketed by SubOpen/SubClose events, and its final Time/Work fold into
// m with a sink-silent charge (the sub-machine's own events already
// carried that cost). It exists for callers that need a specially
// configured sub-machine — presorted.Optimal profiles its log* run on a
// WithProfile machine and must still account it on the caller's.
func (m *Machine) Adopt(sub *Machine, fn func(*Machine)) {
	sub.sink = m.sink
	if sub.eng == nil && sub.poolParent == nil {
		// Borrow the adopter's worker pool (engine() checks the worker
		// counts match) instead of starting a second one.
		sub.poolParent = m
	}
	if m.sink != nil {
		m.sink.SubOpenEvent(m.Snap())
	}
	fn(sub)
	if m.sink != nil {
		m.sink.SubCloseEvent(sub.Snap())
	}
	m.charge(sub.Time(), sub.Work())
}

// StepBaseline is the pre-observability, pre-engine Step implementation,
// frozen verbatim: poll, count, spawn-dispatch run, no sink branch. It
// exists solely as the comparison baseline for the disabled-path overhead
// contract (experiment E16 and BenchmarkStepDisabledVsBaseline) and the
// E17 engine benchmarks, and must not be used by algorithms.
func (m *Machine) StepBaseline(n int, f func(p int) bool) {
	if n <= 0 {
		return
	}
	m.poll()
	m.steps.Add(1)
	live := m.runChunksSpawn(n, f)
	m.work.Add(live)
	m.bumpPeak(live)
	m.record(live, 1)
}
