package pram

import (
	"sync/atomic"
	"testing"
)

func TestStepCountsTimeAndWork(t *testing.T) {
	m := New()
	m.Step(100, func(p int) bool { return p%2 == 0 })
	if m.Time() != 1 {
		t.Fatalf("Time = %d, want 1", m.Time())
	}
	if m.Work() != 50 {
		t.Fatalf("Work = %d, want 50 (only live processors count)", m.Work())
	}
}

func TestStepAllCountsEveryProcessor(t *testing.T) {
	m := New()
	m.StepAll(1000, func(p int) {})
	if m.Work() != 1000 || m.Time() != 1 {
		t.Fatalf("Work=%d Time=%d", m.Work(), m.Time())
	}
}

func TestStepExecutesEveryProcessorExactlyOnce(t *testing.T) {
	for _, n := range []int{1, 7, seqThreshold - 1, seqThreshold, seqThreshold * 3, 100000} {
		m := New()
		hits := make([]int32, n)
		m.StepAll(n, func(p int) { atomic.AddInt32(&hits[p], 1) })
		for p, h := range hits {
			if h != 1 {
				t.Fatalf("n=%d: processor %d executed %d times", n, p, h)
			}
		}
	}
}

func TestStepsChargesMultiplier(t *testing.T) {
	m := New()
	m.Steps(5, 100, func(p int) bool { return true })
	if m.Time() != 5 {
		t.Fatalf("Time = %d, want 5", m.Time())
	}
	if m.Work() != 500 {
		t.Fatalf("Work = %d, want 500", m.Work())
	}
}

func TestZeroAndNegativeSteps(t *testing.T) {
	m := New()
	m.Step(0, func(p int) bool { t.Fatal("must not run"); return true })
	m.Step(-5, func(p int) bool { t.Fatal("must not run"); return true })
	m.Steps(0, 10, func(p int) bool { t.Fatal("must not run"); return true })
	if m.Time() != 0 || m.Work() != 0 {
		t.Fatal("empty steps must not charge")
	}
}

func TestPeakProcessors(t *testing.T) {
	m := New()
	m.StepAll(10, func(p int) {})
	m.StepAll(500, func(p int) {})
	m.StepAll(20, func(p int) {})
	if m.PeakProcessors() != 500 {
		t.Fatalf("PeakProcessors = %d, want 500", m.PeakProcessors())
	}
}

func TestCharge(t *testing.T) {
	m := New()
	m.Charge(3, 42)
	if m.Time() != 3 || m.Work() != 42 {
		t.Fatalf("Charge misapplied: Time=%d Work=%d", m.Time(), m.Work())
	}
}

func TestResetCounters(t *testing.T) {
	m := New()
	m.StepAll(10, func(p int) {})
	m.ResetCounters()
	if m.Time() != 0 || m.Work() != 0 || m.PeakProcessors() != 0 {
		t.Fatal("ResetCounters left residue")
	}
}

func TestSnapshotDelta(t *testing.T) {
	m := New()
	m.StepAll(10, func(p int) {})
	s := m.Snap()
	m.StepAll(20, func(p int) {})
	m.StepAll(20, func(p int) {})
	d := m.Delta(s)
	if d.Time != 2 || d.Work != 40 {
		t.Fatalf("Delta = %+v", d)
	}
}

func TestScratchTracking(t *testing.T) {
	m := New()
	rel1 := m.AllocScratch(100)
	rel2 := m.AllocScratch(50)
	rel1()
	rel3 := m.AllocScratch(30)
	rel2()
	rel3()
	if m.PeakSpace() != 150 {
		t.Fatalf("PeakSpace = %d, want 150", m.PeakSpace())
	}
	// Double release must be a no-op.
	rel1()
	rel4 := m.AllocScratch(10)
	defer rel4()
	if m.PeakSpace() != 150 {
		t.Fatalf("double release corrupted accounting: peak %d", m.PeakSpace())
	}
}

func TestWithWorkers(t *testing.T) {
	m := New(WithWorkers(2))
	if m.workers != 2 {
		t.Fatalf("workers = %d", m.workers)
	}
	// Still executes everything exactly once.
	n := 50000
	hits := make([]int32, n)
	m.StepAll(n, func(p int) { atomic.AddInt32(&hits[p], 1) })
	for p, h := range hits {
		if h != 1 {
			t.Fatalf("processor %d executed %d times", p, h)
		}
	}
}

func TestParallelLiveCount(t *testing.T) {
	m := New()
	n := 100000
	m.Step(n, func(p int) bool { return p < 12345 })
	if m.Work() != 12345 {
		t.Fatalf("parallel live count = %d, want 12345", m.Work())
	}
}
