package pram

import (
	"context"
	"errors"
	"sync/atomic"
)

// Fleet is a bounded pool of Machines shared by concurrent callers — the
// substrate of the serving layer (internal/serve). A simulated PRAM is a
// single-program device: its host-side driver must be one goroutine at a
// time, so a service multiplexing many requests checks a machine out,
// runs one program, and returns it. Checked-in machines keep their worker
// pools warm, which is the point: the per-request alternative re-pays pool
// start (goroutine spawn + threshold calibration) on every query.
//
// Checkout/Return pairs are the only synchronization; the fleet never
// inspects a machine mid-program.
type Fleet struct {
	idle    chan *Machine
	size    int
	closed  atomic.Bool
	closeCh chan struct{} // closed by Close so blocked Checkouts wake
}

// ErrFleetClosed is returned by Checkout after Close.
var ErrFleetClosed = errors.New("pram: fleet closed")

// NewFleet builds size machines with the given options and parks them all
// as idle. Size is clamped to at least 1.
func NewFleet(size int, opts ...Option) *Fleet {
	if size < 1 {
		size = 1
	}
	f := &Fleet{idle: make(chan *Machine, size), size: size, closeCh: make(chan struct{})}
	for i := 0; i < size; i++ {
		f.idle <- New(opts...)
	}
	return f
}

// Size returns the number of machines the fleet owns.
func (f *Fleet) Size() int { return f.size }

// Checkout hands the caller an idle machine, blocking until one is
// returned or ctx is done. The caller owns the machine exclusively until
// Return.
func (f *Fleet) Checkout(ctx context.Context) (*Machine, error) {
	if f.closed.Load() {
		return nil, ErrFleetClosed
	}
	select {
	case m := <-f.idle:
		return m, nil
	default:
	}
	if ctx == nil {
		ctx = context.Background()
	}
	select {
	case m := <-f.idle:
		return m, nil
	case <-f.closeCh:
		// Drain race: a machine may have been parked between the closed
		// check above and Close; prefer handing it out over an error.
		select {
		case m := <-f.idle:
			return m, nil
		default:
			return nil, ErrFleetClosed
		}
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// TryCheckout is Checkout without blocking: ok is false when every machine
// is busy (or the fleet is closed).
func (f *Fleet) TryCheckout() (*Machine, bool) {
	if f.closed.Load() {
		return nil, false
	}
	select {
	case m := <-f.idle:
		return m, true
	default:
		return nil, false
	}
}

// Return parks a checked-out machine as idle again. Returning to a closed
// fleet retires the machine instead (Machine.Close is idempotent and
// concurrency-safe, so a return racing the fleet's own Close is fine).
func (f *Fleet) Return(m *Machine) {
	if m == nil {
		return
	}
	if f.closed.Load() {
		m.Close()
		return
	}
	select {
	case f.idle <- m:
	default:
		// More returns than checkouts — a caller bug, but absorb it by
		// retiring the surplus machine rather than blocking forever.
		m.Close()
	}
}

// Close retires the fleet: idle machines are closed immediately, and
// machines still checked out are closed as they are returned. Close does
// not wait for outstanding checkouts; callers that need a drained fleet
// sequence their own shutdown first (internal/serve does). Idempotent.
func (f *Fleet) Close() {
	if f.closed.Swap(true) {
		return
	}
	close(f.closeCh)
	for {
		select {
		case m := <-f.idle:
			m.Close()
		default:
			return
		}
	}
}
