package pram

import (
	"context"
	"sync"
	"testing"
	"time"
)

// TestFleetCheckoutReturn: machines cycle through checkout/return and every
// checkout sees a usable machine with warm counters.
func TestFleetCheckoutReturn(t *testing.T) {
	f := NewFleet(2, WithWorkers(2), WithParallelThreshold(1))
	defer f.Close()
	for i := 0; i < 10; i++ {
		m, err := f.Checkout(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		before := m.Snap()
		m.StepAll(minChunk*2, func(p int) {})
		if d := m.Delta(before); d.Time != 1 {
			t.Fatalf("checkout %d: delta time %d, want 1", i, d.Time)
		}
		f.Return(m)
	}
}

// TestFleetCheckoutBlocksUntilReturn: an exhausted fleet parks the caller
// until a peer returns a machine, and honors context cancellation.
func TestFleetCheckoutBlocksUntilReturn(t *testing.T) {
	f := NewFleet(1)
	defer f.Close()
	m, err := f.Checkout(context.Background())
	if err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if _, err := f.Checkout(ctx); err != context.DeadlineExceeded {
		t.Fatalf("checkout on exhausted fleet: err=%v, want DeadlineExceeded", err)
	}
	if _, ok := f.TryCheckout(); ok {
		t.Fatal("TryCheckout succeeded on exhausted fleet")
	}

	got := make(chan *Machine)
	go func() {
		m2, err := f.Checkout(context.Background())
		if err != nil {
			t.Error(err)
		}
		got <- m2
	}()
	f.Return(m)
	select {
	case m2 := <-got:
		if m2 != m {
			t.Fatal("blocked checkout received a different machine")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("blocked checkout never woke after Return")
	}
}

// TestFleetCloseWithOutstanding: Close while machines are checked out must
// not panic, must reject further checkouts, and the straggler return path
// (which double-Closes through the fleet) must be safe — this is the
// regression pairing for Machine.Close's idempotency fix.
func TestFleetCloseWithOutstanding(t *testing.T) {
	f := NewFleet(2, WithWorkers(2), WithParallelThreshold(1))
	m, err := f.Checkout(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	m.StepAll(minChunk*2, func(p int) {}) // start the pool so Close has work to do
	f.Close()
	f.Close() // idempotent
	if _, err := f.Checkout(context.Background()); err != ErrFleetClosed {
		t.Fatalf("checkout after Close: err=%v, want ErrFleetClosed", err)
	}
	f.Return(m) // straggler return retires the machine
	m.Close()   // and an extra direct Close is still safe
}

// TestFleetConcurrentChurn: many goroutines checking out, running a step,
// and returning, with a Close racing the tail — exercised under -race in
// CI.
func TestFleetConcurrentChurn(t *testing.T) {
	f := NewFleet(4, WithWorkers(2), WithParallelThreshold(1))
	var wg sync.WaitGroup
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				m, err := f.Checkout(context.Background())
				if err != nil {
					return // closed under us: fine
				}
				m.StepAll(minChunk, func(p int) {})
				f.Return(m)
			}
		}()
	}
	wg.Wait()
	f.Close()
}
