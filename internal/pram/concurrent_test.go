package pram

import "testing"

func TestConcurrentTimeIsMax(t *testing.T) {
	m := New()
	m.Concurrent(
		func(sub *Machine) { sub.Charge(10, 100) },
		func(sub *Machine) { sub.Charge(3, 50) },
		func(sub *Machine) { sub.Charge(7, 10) },
	)
	if m.Time() != 10 {
		t.Fatalf("Time = %d, want max(10,3,7) = 10", m.Time())
	}
	if m.Work() != 160 {
		t.Fatalf("Work = %d, want 100+50+10 = 160", m.Work())
	}
}

func TestConcurrentEmpty(t *testing.T) {
	m := New()
	m.Concurrent()
	if m.Time() != 0 || m.Work() != 0 {
		t.Fatal("empty Concurrent must be free")
	}
}

func TestConcurrentRealSteps(t *testing.T) {
	m := New()
	m.Concurrent(
		func(sub *Machine) {
			for i := 0; i < 5; i++ {
				sub.StepAll(100, func(p int) {})
			}
		},
		func(sub *Machine) {
			sub.StepAll(1000, func(p int) {})
		},
	)
	if m.Time() != 5 {
		t.Fatalf("Time = %d, want 5", m.Time())
	}
	if m.Work() != 1500 {
		t.Fatalf("Work = %d, want 1500", m.Work())
	}
}

func TestConcurrentNested(t *testing.T) {
	m := New()
	m.Concurrent(func(sub *Machine) {
		sub.Concurrent(
			func(s2 *Machine) { s2.Charge(4, 40) },
			func(s2 *Machine) { s2.Charge(6, 60) },
		)
		sub.Charge(1, 1)
	})
	if m.Time() != 7 {
		t.Fatalf("nested Time = %d, want 6+1", m.Time())
	}
	if m.Work() != 101 {
		t.Fatalf("nested Work = %d, want 101", m.Work())
	}
}

func TestConcurrentSpaceSums(t *testing.T) {
	m := New()
	m.Concurrent(
		func(sub *Machine) { sub.AllocScratch(100)() },
		func(sub *Machine) { sub.AllocScratch(50)() },
	)
	if m.PeakSpace() != 150 {
		t.Fatalf("PeakSpace = %d, want 150 (concurrent spaces add)", m.PeakSpace())
	}
}

func TestProfileRecording(t *testing.T) {
	m := New(WithProfile())
	m.StepAll(10, func(p int) {})
	m.Steps(3, 5, func(p int) bool { return true })
	m.Charge(2, 8)
	prof := m.Profile()
	if len(prof) != 6 {
		t.Fatalf("profile length %d, want 6", len(prof))
	}
	var w int64
	for _, v := range prof {
		w += v
	}
	if w != m.Work() {
		t.Fatalf("profile work %d != %d", w, m.Work())
	}
	m.ResetCounters()
	if len(m.Profile()) != 0 {
		t.Fatal("profile not reset")
	}
}

func TestProfileOffByDefault(t *testing.T) {
	m := New()
	m.StepAll(10, func(p int) {})
	if len(m.Profile()) != 0 {
		t.Fatal("profile recorded without WithProfile")
	}
}
