package pram

import (
	"math"
	"testing"
)

func TestOrCell(t *testing.T) {
	var c OrCell
	if c.Get() {
		t.Fatal("zero value must be false")
	}
	m := New()
	m.StepAll(1000, func(p int) {
		if p == 777 {
			c.Set()
		}
	})
	if !c.Get() {
		t.Fatal("Set lost")
	}
	c.Reset()
	if c.Get() {
		t.Fatal("Reset failed")
	}
}

func TestMaxCellConcurrent(t *testing.T) {
	var c MaxCell
	c.Init(math.MinInt64)
	m := New()
	m.StepAll(100000, func(p int) { c.Write(int64(p * 3)) })
	if c.Get() != 99999*3 {
		t.Fatalf("MaxCell = %d", c.Get())
	}
}

func TestMinCellConcurrent(t *testing.T) {
	var c MinCell
	c.InitMax()
	m := New()
	m.StepAll(100000, func(p int) { c.Write(int64(p + 7)) })
	if c.Get() != 7 {
		t.Fatalf("MinCell = %d", c.Get())
	}
}

func TestPriorityCellLowestWriterWins(t *testing.T) {
	var c PriorityCell
	c.Reset()
	m := New()
	m.StepAll(100000, func(p int) {
		if p >= 500 {
			c.Write(p, p*2)
		}
	})
	payload, ok := c.Get()
	if !ok || payload != 1000 {
		t.Fatalf("priority payload = %d ok=%v, want 1000", payload, ok)
	}
	proc, ok := c.Winner()
	if !ok || proc != 500 {
		t.Fatalf("priority winner = %d, want 500", proc)
	}
}

func TestPriorityCellEmpty(t *testing.T) {
	var c PriorityCell
	c.Reset()
	if _, ok := c.Get(); ok {
		t.Fatal("empty cell reported a value")
	}
	if _, ok := c.Winner(); ok {
		t.Fatal("empty cell reported a winner")
	}
}

func TestClaimCellSingleClaimant(t *testing.T) {
	var c ClaimCell
	c.Reset()
	c.Claim(42)
	if c.Owner() != 42 {
		t.Fatalf("owner = %d", c.Owner())
	}
	if c.Contested() {
		t.Fatal("single claimant must not be contested")
	}
}

func TestClaimCellContention(t *testing.T) {
	var c ClaimCell
	c.Reset()
	m := New()
	m.StepAll(100000, func(p int) {
		if p == 10 || p == 20 {
			c.Claim(int64(p))
		}
	})
	if c.Owner() != 10 {
		t.Fatalf("lowest claimant must win, got %d", c.Owner())
	}
	if !c.Contested() {
		t.Fatal("two claimants must be contested")
	}
}

func TestClaimCellUnclaimed(t *testing.T) {
	var c ClaimCell
	c.Reset()
	if c.Owner() != -1 {
		t.Fatal("unclaimed cell must report −1")
	}
}

func TestResetClaims(t *testing.T) {
	cells := make([]ClaimCell, 10)
	for i := range cells {
		cells[i].Claim(int64(i))
	}
	ResetClaims(cells)
	for i := range cells {
		if cells[i].Owner() != -1 || cells[i].Contested() {
			t.Fatalf("cell %d not reset", i)
		}
	}
}
