package pram

import "testing"

func BenchmarkStepOverheadSequential(b *testing.B) {
	m := New(WithWorkers(1))
	for i := 0; i < b.N; i++ {
		m.StepAll(1024, func(p int) {})
	}
}

func BenchmarkStepOverheadParallel(b *testing.B) {
	m := New()
	for i := 0; i < b.N; i++ {
		m.StepAll(1<<16, func(p int) {})
	}
}

func BenchmarkClaimCellContention(b *testing.B) {
	var c ClaimCell
	m := New()
	for i := 0; i < b.N; i++ {
		c.Reset()
		m.StepAll(1<<14, func(p int) { c.Claim(int64(p)) })
	}
}
