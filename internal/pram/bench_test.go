package pram

import "testing"

func BenchmarkStepOverheadSequential(b *testing.B) {
	m := New(WithWorkers(1))
	for i := 0; i < b.N; i++ {
		m.StepAll(1024, func(p int) {})
	}
}

func BenchmarkStepOverheadParallel(b *testing.B) {
	m := New()
	for i := 0; i < b.N; i++ {
		m.StepAll(1<<16, func(p int) {})
	}
}

func BenchmarkClaimCellContention(b *testing.B) {
	var c ClaimCell
	m := New()
	for i := 0; i < b.N; i++ {
		c.Reset()
		m.StepAll(1<<14, func(p int) { c.Claim(int64(p)) })
	}
}

// BenchmarkStepDisabledVsBaseline is the disabled-path overhead contract
// of the observability layer (E16): Step with no sink installed (current
// code, one nil-check branch per step) versus StepBaseline (the
// pre-observability Step, frozen verbatim in sink.go). The acceptance
// bound is ≤1.05x; measured ratios are recorded in EXPERIMENTS.md.
func BenchmarkStepDisabledVsBaseline(b *testing.B) {
	f := func(p int) bool { return p&1 == 0 }
	b.Run("nosink", func(b *testing.B) {
		m := New(WithWorkers(1))
		for i := 0; i < b.N; i++ {
			m.Step(256, f)
		}
	})
	b.Run("baseline", func(b *testing.B) {
		m := New(WithWorkers(1))
		for i := 0; i < b.N; i++ {
			m.StepBaseline(256, f)
		}
	})
}
