package pram

import (
	"fmt"
	"testing"
)

func BenchmarkStepOverheadSequential(b *testing.B) {
	m := New(WithWorkers(1))
	for i := 0; i < b.N; i++ {
		m.StepAll(1024, func(p int) {})
	}
}

func BenchmarkStepOverheadParallel(b *testing.B) {
	m := New()
	for i := 0; i < b.N; i++ {
		m.StepAll(1<<16, func(p int) {})
	}
}

func BenchmarkClaimCellContention(b *testing.B) {
	var c ClaimCell
	m := New()
	for i := 0; i < b.N; i++ {
		c.Reset()
		m.StepAll(1<<14, func(p int) { c.Claim(int64(p)) })
	}
}

// BenchmarkDispatch compares the per-step cost of the three dispatch
// strategies — sequential (workers=1), the frozen pre-engine spawn path
// (a fresh goroutine batch + WaitGroup per step), and the persistent
// worker-pool engine — across step sizes. The spawn-vs-engine gap is the
// dispatch overhead the engine exists to eliminate; experiment E17
// records it in BENCH_pram.json and CI gates on the overhead ratio.
func BenchmarkDispatch(b *testing.B) {
	f := func(p int) bool { return p&1 == 0 }
	for _, n := range []int{1 << 12, 1 << 16, 1 << 20} {
		b.Run(fmt.Sprintf("seq/n=%d", n), func(b *testing.B) {
			m := New(WithWorkers(1))
			for i := 0; i < b.N; i++ {
				m.Step(n, f)
			}
		})
		b.Run(fmt.Sprintf("spawn/n=%d", n), func(b *testing.B) {
			m := New(WithWorkers(4), WithSpawnDispatch())
			for i := 0; i < b.N; i++ {
				m.Step(n, f)
			}
		})
		b.Run(fmt.Sprintf("engine/n=%d", n), func(b *testing.B) {
			m := New(WithWorkers(4), WithParallelThreshold(1))
			defer m.Close()
			m.Step(n, f) // start the pool outside the timed region
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				m.Step(n, f)
			}
		})
	}
}

// BenchmarkStepDisabledVsBaseline is the disabled-path overhead contract
// of the observability layer (E16): Step with no sink installed (current
// code, one nil-check branch per step) versus StepBaseline (the
// pre-observability Step, frozen verbatim in sink.go). The acceptance
// bound is ≤1.05x; measured ratios are recorded in EXPERIMENTS.md.
func BenchmarkStepDisabledVsBaseline(b *testing.B) {
	f := func(p int) bool { return p&1 == 0 }
	b.Run("nosink", func(b *testing.B) {
		m := New(WithWorkers(1))
		for i := 0; i < b.N; i++ {
			m.Step(256, f)
		}
	})
	b.Run("baseline", func(b *testing.B) {
		m := New(WithWorkers(1))
		for i := 0; i < b.N; i++ {
			m.StepBaseline(256, f)
		}
	})
}
