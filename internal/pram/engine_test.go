package pram

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"
	"time"
)

// poolMachine returns a machine whose steps of n >= grain dispatch to the
// persistent pool regardless of what calibration would decide, with the
// fanout clamp raised to the full worker count — the configuration every
// engine test uses to guarantee the pooled path and the complete
// wake/join barrier run even on a single-core host.
func poolMachine(workers, grain int, opts ...Option) *Machine {
	m := New(append([]Option{WithWorkers(workers), WithParallelThreshold(grain)}, opts...)...)
	m.fanout = workers
	return m
}

// TestEngineExecutesEveryProcessorExactlyOnce: dynamic chunking covers the
// whole range exactly once, across chunk-boundary shapes (n below one
// chunk, exact multiples, stragglers) and worker counts.
func TestEngineExecutesEveryProcessorExactlyOnce(t *testing.T) {
	for _, workers := range []int{2, 3, 4, 8} {
		for _, n := range []int{1, minChunk - 1, minChunk, minChunk + 1, minChunk*workers*chunksPerWorker + 17, 100000} {
			m := poolMachine(workers, 1)
			defer m.Close()
			hits := make([]int32, n)
			m.StepAll(n, func(p int) { atomic.AddInt32(&hits[p], 1) })
			for p, h := range hits {
				if h != 1 {
					t.Fatalf("workers=%d n=%d: processor %d executed %d times", workers, n, p, h)
				}
			}
			if m.Work() != int64(n) || m.Time() != 1 {
				t.Fatalf("workers=%d n=%d: work=%d time=%d", workers, n, m.Work(), m.Time())
			}
		}
	}
}

// TestEngineLiveSkewCount: the live count is exact when liveness is skewed
// into one corner of the range — the Lemma 4.1/5.1 survivor-set shape the
// dynamic chunking exists for.
func TestEngineLiveSkewCount(t *testing.T) {
	m := poolMachine(4, 1)
	defer m.Close()
	n := 200000
	m.Step(n, func(p int) bool { return p < 777 })
	if m.Work() != 777 {
		t.Fatalf("skewed live count = %d, want 777", m.Work())
	}
}

// TestEnginePanicLeavesPoolReusable: a step whose f panics rethrows on the
// host goroutine with every worker back at the barrier; the next step on
// the same machine must execute normally (the satellite regression for the
// fault-injection sites, whose forced failure paths may panic through
// algorithm code running on the pool).
func TestEnginePanicLeavesPoolReusable(t *testing.T) {
	m := poolMachine(4, 1)
	defer m.Close()
	n := 100000
	for round := 0; round < 3; round++ {
		func() {
			defer func() {
				r := recover()
				if r == nil {
					t.Fatalf("round %d: panic did not propagate", round)
				}
				if s, ok := r.(string); !ok || s != "boom" {
					t.Fatalf("round %d: panic value = %v, want \"boom\"", round, r)
				}
			}()
			m.Step(n, func(p int) bool {
				if p == 54321 {
					panic("boom")
				}
				return true
			})
		}()
		// Pool must be parked and fully reusable: exactly-once execution.
		hits := make([]int32, n)
		m.StepAll(n, func(p int) { atomic.AddInt32(&hits[p], 1) })
		for p, h := range hits {
			if h != 1 {
				t.Fatalf("round %d after panic: processor %d executed %d times", round, p, h)
			}
		}
	}
	// Counted semantics across the panics: each panicking step charged Time
	// (the step started) but no Work (it never completed), matching the
	// sequential path's unwind point.
	if m.Time() != 6 {
		t.Fatalf("Time = %d, want 6 (3 panicked + 3 completed steps)", m.Time())
	}
	if m.Work() != 3*int64(n) {
		t.Fatalf("Work = %d, want %d (only completed steps charge work)", m.Work(), 3*n)
	}
}

// TestEnginePanicConcurrentWorkers: panics racing on several workers at
// once surface exactly one value and still leave the pool reusable.
func TestEnginePanicEveryProcessor(t *testing.T) {
	m := poolMachine(4, 1)
	defer m.Close()
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("panic did not propagate")
			}
		}()
		m.Step(100000, func(p int) bool { panic(p) })
	}()
	m.StepAll(100000, func(p int) {})
	if m.Work() != 100000 {
		t.Fatalf("pool unusable after mass panic: work=%d", m.Work())
	}
}

// TestEngineCancellationMidProgram: cancel partway through a pooled
// multi-step program; the unwind happens between steps with exactly the
// completed steps charged, and the pool keeps working after the context is
// detached (the ResetCounters+reuse cycle of the resilient supervisor).
func TestEngineCancellationMidProgram(t *testing.T) {
	m := poolMachine(4, 1)
	defer m.Close()
	m.SetContext(&countdownCtx{Context: context.Background(), remaining: 3})
	ran := 0
	cause := runCanceled(t, func() {
		for i := 0; i < 10; i++ {
			m.Step(50000, func(int) bool { return true })
			ran++
		}
	})
	if !errors.Is(cause, context.Canceled) {
		t.Fatalf("cause = %v", cause)
	}
	if ran != 3 || m.Time() != 3 || m.Work() != 150000 {
		t.Fatalf("ran=%d time=%d work=%d, want exactly the 3 completed steps", ran, m.Time(), m.Work())
	}

	// ResetCounters + reuse after the Cancellation unwind.
	m.SetContext(nil)
	m.ResetCounters()
	m.StepAll(50000, func(p int) {})
	if m.Time() != 1 || m.Work() != 50000 {
		t.Fatalf("reuse after cancel: time=%d work=%d", m.Time(), m.Work())
	}
}

// TestEngineConcurrentBorrowsPool: Concurrent (and nested Concurrent)
// sub-machines dispatch through the parent's engine instead of starting
// their own, and the counted composition semantics are unchanged.
func TestEngineConcurrentBorrowsPool(t *testing.T) {
	m := poolMachine(4, 1)
	defer m.Close()
	parent := m.engine()
	var inner, outer *engine
	m.Concurrent(
		func(sub *Machine) {
			sub.StepAll(50000, func(p int) {})
			outer = sub.engine()
			sub.Concurrent(func(s2 *Machine) {
				s2.StepAll(50000, func(p int) {})
				inner = s2.engine()
			})
		},
		func(sub *Machine) { sub.StepAll(20000, func(p int) {}) },
	)
	if outer != parent || inner != parent {
		t.Fatalf("sub-machines did not borrow the parent pool: parent=%p outer=%p inner=%p", parent, outer, inner)
	}
	if m.Time() != 2 {
		t.Fatalf("Time = %d, want max(1+1, 1) = 2", m.Time())
	}
	if m.Work() != 120000 {
		t.Fatalf("Work = %d, want 120000", m.Work())
	}
}

// TestEngineAdoptBorrowsPool: Adopt with a like-configured sub-machine
// borrows; a sub-machine with a different worker count starts its own.
func TestEngineAdoptBorrowsPool(t *testing.T) {
	m := poolMachine(4, 1)
	defer m.Close()
	sub := poolMachine(4, 1)
	defer sub.Close()
	m.Adopt(sub, func(s *Machine) { s.StepAll(50000, func(p int) {}) })
	if sub.engine() != m.engine() {
		t.Fatal("Adopt did not borrow the adopter's pool")
	}

	other := poolMachine(2, 1)
	defer other.Close()
	m.Adopt(other, func(s *Machine) { s.StepAll(50000, func(p int) {}) })
	if other.engine() == m.engine() {
		t.Fatal("worker-count mismatch must not share a pool")
	}
	if m.Work() != 100000 {
		t.Fatalf("adopted work not folded: %d", m.Work())
	}
}

// TestEngineReentrantStepFallsBack: an f that itself drives the machine
// (a programming error the old spawn path happened to tolerate) must not
// deadlock the barrier; the nested step runs sequentially.
func TestEngineReentrantStepFallsBack(t *testing.T) {
	m := poolMachine(2, 1)
	defer m.Close()
	done := make(chan struct{})
	go func() {
		defer close(done)
		m.Step(2000, func(p int) bool {
			if p == 0 {
				m.Step(2000, func(q int) bool { return true })
			}
			return true
		})
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("re-entrant step deadlocked the pool")
	}
	if m.Time() != 2 || m.Work() != 4000 {
		t.Fatalf("time=%d work=%d", m.Time(), m.Work())
	}
}

// TestEngineGoroutineLeak: runtime.NumGoroutine settles back to its
// baseline after Close — the pool neither leaks workers nor leaves any
// behind across repeated start/stop cycles.
func TestEngineGoroutineLeak(t *testing.T) {
	settle := func() int {
		best := runtime.NumGoroutine()
		for i := 0; i < 50; i++ {
			runtime.Gosched()
			if g := runtime.NumGoroutine(); g < best {
				best = g
			}
		}
		return best
	}
	before := settle()
	for cycle := 0; cycle < 5; cycle++ {
		m := poolMachine(8, 1)
		m.StepAll(50000, func(p int) {})
		if g := runtime.NumGoroutine(); g < before+7 {
			t.Fatalf("cycle %d: pool not running (%d goroutines, baseline %d)", cycle, g, before)
		}
		m.Close()
		m.Close() // idempotent
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		if g := settle(); g <= before {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines did not settle after Close: %d, baseline %d", settle(), before)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestEngineFinalizerReapsAbandonedPool: a machine dropped without Close
// has its workers reaped by the finalizer, so abandoned machines cannot
// leak parked goroutines.
func TestEngineFinalizerReapsAbandonedPool(t *testing.T) {
	before := runtime.NumGoroutine()
	func() {
		m := poolMachine(8, 1)
		m.StepAll(50000, func(p int) {})
	}()
	deadline := time.Now().Add(10 * time.Second)
	for {
		runtime.GC()
		if runtime.NumGoroutine() <= before {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("abandoned pool not reaped: %d goroutines, baseline %d", runtime.NumGoroutine(), before)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestEngineCloseRestarts: Close is not terminal — a later large step
// starts a fresh pool with identical counted semantics.
func TestEngineCloseRestarts(t *testing.T) {
	m := poolMachine(4, 1)
	m.StepAll(50000, func(p int) {})
	m.Close()
	m.StepAll(50000, func(p int) {})
	defer m.Close()
	if m.Time() != 2 || m.Work() != 100000 {
		t.Fatalf("time=%d work=%d after restart", m.Time(), m.Work())
	}
}

// TestEngineCalibratedThresholdBounds: the adaptive threshold always lands
// in its documented clamp range.
func TestEngineCalibratedThresholdBounds(t *testing.T) {
	m := New(WithWorkers(2))
	defer m.Close()
	m.StepAll(minDispatchProbe, func(p int) {}) // force pool start + calibration
	e := m.engine()
	if e.threshold < minThreshold || e.threshold > maxThreshold {
		t.Fatalf("calibrated threshold %d outside [%d, %d]", e.threshold, minThreshold, maxThreshold)
	}
}

// TestEngineSemanticsMatchSequential: pooled execution reproduces the
// sequential path's counters bit for bit on a mixed program — the package-
// level core of the counted-semantics equivalence the root suite proves
// per algorithm.
func TestEngineSemanticsMatchSequential(t *testing.T) {
	program := func(m *Machine) {
		m.Step(100000, func(p int) bool { return p%3 == 0 })
		m.Steps(4, 60000, func(p int) bool { return p%5 != 0 })
		m.Concurrent(
			func(sub *Machine) { sub.StepAll(30000, func(p int) {}) },
			func(sub *Machine) { sub.Step(70000, func(p int) bool { return p < 100 }) },
		)
		m.Charge(2, 123)
	}
	seq := New(WithWorkers(1), WithProfile())
	program(seq)
	pool := poolMachine(4, 1, WithProfile())
	defer pool.Close()
	program(pool)
	if seq.Snap() != pool.Snap() {
		t.Fatalf("snapshots diverge:\nseq  %+v\npool %+v", seq.Snap(), pool.Snap())
	}
	sp, pp := seq.Profile(), pool.Profile()
	if fmt.Sprint(sp) != fmt.Sprint(pp) {
		t.Fatalf("profiles diverge:\nseq  %v\npool %v", sp, pp)
	}
}
