package presorted

import (
	"testing"

	"inplacehull/internal/pram"
	"inplacehull/internal/rng"
	"inplacehull/internal/workload"
)

func TestOptimalMatchesLogStar(t *testing.T) {
	pts := prep(workload.Disk(3, 4000))
	m := pram.New()
	rep, err := Optimal(m, rng.New(5), pts)
	if err != nil {
		t.Fatal(err)
	}
	verify(t, pts, rep.Result)
	if rep.Processors >= len(pts) {
		t.Fatalf("processors %d not sub-linear", rep.Processors)
	}
	// The §2.6 claim: the schedule on n/log* n processors stays within a
	// constant of the virtual time (here: a generous 64× bound — the work
	// is ~10n, so w/p ≈ 10·log* n ≈ 30-40 rounds plus t).
	if rep.ScheduledTime > 64*rep.VirtualTime {
		t.Fatalf("scheduled %d ≫ virtual %d", rep.ScheduledTime, rep.VirtualTime)
	}
	if m.Time() != rep.VirtualTime || m.Work() != rep.Work {
		t.Fatal("caller machine not charged")
	}
}

func TestLogStarOf(t *testing.T) {
	for _, tc := range []struct{ n, want int }{
		{2, 1}, {4, 2}, {16, 3}, {65536, 4}, {1 << 20, 5},
	} {
		if got := logStarOf(tc.n); got != tc.want {
			t.Fatalf("logStarOf(%d) = %d, want %d", tc.n, got, tc.want)
		}
	}
}
