package presorted

import (
	"math/bits"
	"sort"

	"inplacehull/internal/chain"
	"inplacehull/internal/geom"
	"inplacehull/internal/hullerr"
	"inplacehull/internal/lp"
	"inplacehull/internal/pram"
	"inplacehull/internal/rng"
)

// mergeHulls is the Lemma 2.6 step of §2.5: run the constant-time
// tree-of-bridges algorithm with *group hulls* as the primitive objects.
// Each tree node over the groups holds a bridge LP whose constraints are
// whole hulls; sampling picks violator hulls, the base problem is solved
// by the brute-force hull primitive on the sampled hulls' vertices
// (Atallah–Goodrich operations, O(1) steps with polynomially many
// processors — charged as executed), and the violation test is the
// extreme-vertex query of the chain package. Coverage filtering and
// per-point assignment then proceed exactly as in the point case.
func mergeHulls(m *pram.Machine, rnd *rng.Stream, pts []geom.Point, g int, hulls []chain.Chain, groupRes []Result) (Result, error) {
	n := len(pts)
	nGroups := len(hulls)
	res := Result{EdgeOf: make([]int, n)}

	logM := bits.Len(uint(nGroups - 1))
	if nGroups == 1 {
		logM = 0
	}
	M := 1 << logM

	// Tree nodes over groups; node at level l, slot j covers groups
	// [j·span, (j+1)·span) with boundary at j·span + span/2.
	type mnode struct {
		glo, ghi, gmid int
		level          int
	}
	var nodes []mnode
	heapOf := map[int]int{} // heap index → node index
	for l := 0; l < logM; l++ {
		span := M >> l
		for j := 0; j < (1 << l); j++ {
			glo := j * span
			if glo >= nGroups {
				break
			}
			gmid := glo + span/2
			if gmid >= nGroups {
				continue
			}
			ghi := glo + span
			if ghi > nGroups {
				ghi = nGroups
			}
			heapOf[(1<<l)+j] = len(nodes)
			nodes = append(nodes, mnode{glo: glo, ghi: ghi, gmid: gmid, level: l})
		}
	}
	q := len(nodes)

	// Per-node gap geometry: the bridge must cross the boundary between
	// groups gmid−1 and gmid.
	gapOf := make([]float64, q)
	for i, nd := range nodes {
		leftLast := pts[min(nd.gmid*g, n)-1]
		rightFirst := pts[nd.gmid*g]
		gapOf[i] = gapAbscissa(leftLast.X, rightFirst.X)
	}

	// Lockstep LP rounds over all nodes (the constant-time algorithm on
	// hulls). Basis hulls persist across rounds; two anchor groups always
	// join the base so the solution straddles the gap.
	sols := make([]lp.Solution2D, q)
	have := make([]bool, q)
	done := make([]bool, q)
	basis := make([][]int, q)
	swept := 0
	const maxRounds = 8
	for round := 0; round < maxRounds; round++ {
		var work int64
		remaining := false
		for i := range nodes {
			if done[i] {
				continue
			}
			nd := nodes[i]
			// Violation test: hulls with a vertex strictly above the
			// current solution (all hulls violate before the first round).
			var violators []int
			for gi := nd.glo; gi < nd.ghi; gi++ {
				work += int64(hulls[gi].Len())
				if !have[i] {
					violators = append(violators, gi)
					continue
				}
				if hulls[gi].Len() > 0 && hulls[gi].AnyAbove(sols[i].U, sols[i].W) {
					violators = append(violators, gi)
				}
			}
			if have[i] && len(violators) == 0 {
				done[i] = true
				continue
			}
			remaining = true
			// Sample a constant number of violator hulls.
			sample := violators
			if len(sample) > 4 {
				idx := rnd.Split(uint64(round)<<16 | uint64(i)).Perm(len(violators))[:4]
				sample = []int{violators[idx[0]], violators[idx[1]], violators[idx[2]], violators[idx[3]]}
			}
			baseGroups := map[int]bool{nd.gmid - 1: true, nd.gmid: true}
			for _, gi := range basis[i] {
				baseGroups[gi] = true
			}
			for _, gi := range sample {
				baseGroups[gi] = true
			}
			// Base problem: the union of the base hulls' vertices, solved
			// by the brute-force hull primitive (the hulls are x-disjoint
			// and ordered, so the union is sorted by construction).
			var gids []int
			for gi := range baseGroups {
				gids = append(gids, gi)
			}
			sort.Ints(gids)
			var verts []geom.Point
			vertGroup := map[geom.Point]int{}
			for _, gi := range gids {
				for _, v := range hulls[gi].V {
					verts = append(verts, v)
					vertGroup[v] = gi
				}
			}
			work += int64(len(verts))
			u, w := exactBridge(verts, gapOf[i])
			sols[i] = lp.Solution2D{U: u, W: w}
			have[i] = true
			basis[i] = []int{vertGroup[u], vertGroup[w]}
		}
		m.Charge(3, work)
		if !remaining {
			break
		}
	}
	// Failure sweeping: any node still unfinished is solved exactly over
	// all its hulls' vertices (concurrently composed).
	var fns []func(*pram.Machine)
	for i := range nodes {
		if done[i] {
			continue
		}
		swept++
		i := i
		fns = append(fns, func(sub *pram.Machine) {
			nd := nodes[i]
			var verts []geom.Point
			for gi := nd.glo; gi < nd.ghi; gi++ {
				verts = append(verts, hulls[gi].V...)
			}
			sub.Charge(1, int64(len(verts)))
			u, w := exactBridge(verts, gapOf[i])
			sols[i] = lp.Solution2D{U: u, W: w}
			done[i] = true
		})
	}
	m.Concurrent(fns...)
	res.SweptNodes = swept

	// Canonicalize ties, as in the point algorithm (Segmented): a sampled
	// base problem can return any of the optimal segments on a collinear
	// support line, but coverage filtering needs equal support lines to
	// yield equal segments. Extend every bridge to the extreme on-line
	// hull vertices of its node — one step, work linear in the hulls
	// consulted (the violation test's own rate).
	{
		var work int64
		for i := range nodes {
			s := sols[i]
			if s.Degenerate() {
				continue
			}
			nd := nodes[i]
			u, w := s.U, s.W
			for gi := nd.glo; gi < nd.ghi; gi++ {
				work += int64(hulls[gi].Len())
				for _, v := range hulls[gi].V {
					if geom.Orientation(s.U, s.W, v) != 0 {
						continue
					}
					if v.X < u.X {
						u = v
					}
					if v.X > w.X {
						w = v
					}
				}
			}
			sols[i] = lp.Solution2D{U: u, W: w}
		}
		m.Charge(1, work)
	}

	// Coverage filtering among tree bridges, as in the point algorithm.
	covered := make([]bool, q)
	levels := logM
	if levels == 0 {
		levels = 1
	}
	m.StepAll(q*levels, func(t int) {
		j, dl := t%q, t/q+1
		nd := nodes[j]
		if dl > nd.level {
			return
		}
		// Heap index of node j is recoverable from its slot; recompute.
		heap := (1 << nd.level) + nd.glo/(M>>nd.level)
		aj, ok := heapOf[heap>>dl]
		if !ok {
			return
		}
		b, ab := sols[j], sols[aj]
		if b == ab {
			covered[j] = true
			return
		}
		if b.W.X > ab.U.X && b.U.X < ab.W.X {
			covered[j] = true
		}
	})

	// Assemble the global edge list: uncovered tree bridges plus the
	// group-local edges not covered by any tree bridge on the group's
	// root path. Work O(n): each group merges its (sorted) local edges
	// against its (≤ log) ancestor bridge spans.
	m.Charge(2, int64(n))
	type span struct{ lo, hi float64 }
	var globalEdges []geom.Edge
	edgeIdx := map[geom.Edge]int{}
	addEdge := func(e geom.Edge) {
		if _, ok := edgeIdx[e]; !ok {
			edgeIdx[e] = -2 // placeholder; indices assigned after sorting
			globalEdges = append(globalEdges, e)
		}
	}
	for j := range nodes {
		if !covered[j] && !sols[j].Degenerate() {
			addEdge(geom.Edge{U: sols[j].U, W: sols[j].W})
		}
	}
	ancestorSpans := make([][]span, nGroups)
	for gi := 0; gi < nGroups; gi++ {
		heap := M + gi // leaf heap index in the group tree
		for h := heap >> 1; h >= 1; h >>= 1 {
			if j, ok := heapOf[h]; ok {
				ancestorSpans[gi] = append(ancestorSpans[gi], span{sols[j].U.X, sols[j].W.X})
			}
		}
	}
	localGlobal := make([][]bool, nGroups)
	for gi := 0; gi < nGroups; gi++ {
		lg := make([]bool, len(groupRes[gi].Edges))
		for ei, e := range groupRes[gi].Edges {
			ok := true
			for _, sp := range ancestorSpans[gi] {
				if e.W.X > sp.lo && e.U.X < sp.hi {
					ok = false
					break
				}
			}
			lg[ei] = ok
			if ok {
				addEdge(e)
			}
		}
		localGlobal[gi] = lg
	}
	sort.Slice(globalEdges, func(a, b int) bool { return globalEdges[a].U.X < globalEdges[b].U.X })
	for i, e := range globalEdges {
		edgeIdx[e] = i
	}
	res.Edges = globalEdges
	if len(globalEdges) > 0 {
		res.Chain = append(res.Chain, globalEdges[0].U)
		for _, e := range globalEdges {
			res.Chain = append(res.Chain, e.W)
		}
	} else if n > 0 {
		res.Chain = []geom.Point{pts[0]}
	}

	// Per-point assignment: the group-local edge if it survived, else the
	// unique global edge covering the point's x (binary search; charged
	// as the constant-time per-point location with the group's pointer
	// structure).
	m.Charge(2, int64(n))
	for p := 0; p < n; p++ {
		gi := p / g
		res.EdgeOf[p] = -1
		if le := groupRes[gi].EdgeOf[p-gi*g]; le >= 0 && localGlobal[gi][le] {
			res.EdgeOf[p] = edgeIdx[groupRes[gi].Edges[le]]
			continue
		}
		x := pts[p].X
		lo, hi := 0, len(globalEdges)
		for lo < hi {
			mid := (lo + hi) / 2
			if globalEdges[mid].W.X < x {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		if lo < len(globalEdges) && globalEdges[lo].Covers(x) {
			res.EdgeOf[p] = lo
			continue
		}
		return res, hullerr.New(hullerr.Internal, "presorted.logstar",
			"point %d (%v) found no edge", p, pts[p])
	}
	return res, nil
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
