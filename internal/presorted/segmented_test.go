package presorted

import (
	"testing"

	"inplacehull/internal/geom"
	"inplacehull/internal/hull2d"
	"inplacehull/internal/pram"
	"inplacehull/internal/rng"
	"inplacehull/internal/workload"
)

func TestSegmentedMatchesPerSegmentReference(t *testing.T) {
	pts := prep(workload.Disk(21, 2000))
	n := len(pts)
	segs := []Segment{{0, n / 4}, {n / 4, n / 2}, {n / 2, n/2 + 1}, {n/2 + 1, n}}
	m := pram.New()
	res, err := Segmented(m, rng.New(5), pts, segs)
	if err != nil {
		t.Fatal(err)
	}
	// Every segment's hull edges must appear in res.Edges, and every point
	// must reference an edge of its own segment's hull.
	edgeSet := map[geom.Edge]bool{}
	for _, e := range res.Edges {
		edgeSet[e] = true
	}
	total := 0
	for _, sg := range segs {
		want := hull2d.UpperHull(pts[sg.Lo:sg.Hi])
		for i := 0; i+1 < len(want); i++ {
			e := geom.Edge{U: want[i], W: want[i+1]}
			if !edgeSet[e] {
				t.Fatalf("segment [%d,%d): missing hull edge %v", sg.Lo, sg.Hi, e)
			}
			total++
		}
	}
	if total != len(res.Edges) {
		t.Fatalf("edge count %d != sum of segment hulls %d", len(res.Edges), total)
	}
	for p := 0; p < n; p++ {
		ei := res.EdgeOf[p]
		if segs[2].Lo <= p && p < segs[2].Hi {
			if ei != -1 {
				t.Fatalf("singleton segment point %d has edge %d", p, ei)
			}
			continue
		}
		if ei < 0 {
			t.Fatalf("point %d has no edge", p)
		}
		e := res.Edges[ei]
		if !e.Covers(pts[p].X) || geom.AboveLine(pts[p], e.U, e.W) {
			t.Fatalf("point %d (%v) not under its edge %v", p, pts[p], e)
		}
	}
}

func TestSegmentedRejectsOverlap(t *testing.T) {
	pts := prep(workload.Disk(1, 50))
	m := pram.New()
	if _, err := Segmented(m, rng.New(1), pts, []Segment{{0, 30}, {20, 50}}); err == nil {
		t.Fatal("overlapping segments accepted")
	}
	if _, err := Segmented(m, rng.New(1), pts, []Segment{{10, 5}}); err == nil {
		t.Fatal("inverted segment accepted")
	}
}

func TestSegmentedConstantStepsInSegmentCount(t *testing.T) {
	// Steps must not scale with the number of segments — all segments'
	// trees share the same batch.
	pts := prep(workload.Disk(9, 4096))
	steps := func(nseg int) int64 {
		n := len(pts)
		var segs []Segment
		per := n / nseg
		for i := 0; i < nseg; i++ {
			hi := (i + 1) * per
			if i == nseg-1 {
				hi = n
			}
			segs = append(segs, Segment{i * per, hi})
		}
		m := pram.New()
		if _, err := Segmented(m, rng.New(3), pts, segs); err != nil {
			t.Fatal(err)
		}
		return m.Time()
	}
	s1, s64 := steps(1), steps(64)
	if float64(s64) > 2.0*float64(s1) {
		t.Fatalf("steps scaled with segment count: %d → %d", s1, s64)
	}
}
