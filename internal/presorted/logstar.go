package presorted

import (
	"math"

	"inplacehull/internal/chain"
	"inplacehull/internal/geom"
	"inplacehull/internal/hullerr"
	"inplacehull/internal/obs"
	"inplacehull/internal/pram"
	"inplacehull/internal/rng"
)

// LogStar computes the upper hull of pre-sorted points in O(log* n)
// measured PRAM steps with O(n) processors per step (§2.5):
//
//  1. split the input into contiguous groups of ⌈log^b n⌉ points (b = 2),
//  2. solve every group recursively — the groups run *concurrently*, so
//     the recursion contributes max-depth, not sum, to the step count;
//     the recursion bottoms out at a constant size solved by brute force
//     (Observation 2.3, O(1) steps with g³ processors),
//  3. merge the group hulls with the constant-time algorithm run
//     point-hull invariantly (Lemma 2.6): the tree-of-bridges of §2.2 is
//     solved again, but each constraint is now a whole group hull and the
//     primitive operations are the Atallah–Goodrich hull operations
//     (extreme vertex in a direction, tangents) instead of point
//     predicates.
//
// The recursion depth obeys T(n) = T(log² n) + O(1) = O(log* n).
func LogStar(m *pram.Machine, rnd *rng.Stream, pts []geom.Point) (Result, error) {
	if err := hullerr.CheckFinite2D("LogStar", pts); err != nil {
		return Result{}, err
	}
	if err := checkSorted(pts); err != nil {
		return Result{}, err
	}
	return logStar(m, rnd, pts, 0)
}

// baseSize is the recursion floor: inputs this small are solved by the
// brute-force hull of Observation 2.3 (O(1) steps, n³ processors; we
// charge the folklore O(k)-time n^(1+1/k) variant of Lemma 2.4 with k=3).
const baseSize = 64

func logStar(m *pram.Machine, rnd *rng.Stream, pts []geom.Point, depth int) (Result, error) {
	n := len(pts)
	if depth > 8 {
		return Result{}, hullerr.New(hullerr.BudgetExhausted, "presorted.logstar",
			"log* recursion too deep (%d)", depth)
	}
	if n <= baseSize {
		return baseHull(m, pts), nil
	}
	lg := math.Log2(float64(n))
	g := int(math.Ceil(lg * lg))
	if g >= n {
		g = n/2 + 1
	}
	nGroups := (n + g - 1) / g

	// Step 1+2: recurse on the groups, concurrently composed.
	groupRes := make([]Result, nGroups)
	groupErr := make([]error, nGroups)
	fns := make([]func(*pram.Machine), nGroups)
	for gi := 0; gi < nGroups; gi++ {
		gi := gi
		lo, hi := gi*g, (gi+1)*g
		if hi > n {
			hi = n
		}
		fns[gi] = func(sub *pram.Machine) {
			groupRes[gi], groupErr[gi] = logStar(sub, rnd.Split(uint64(gi)+0x10), pts[lo:hi], depth+1)
		}
	}
	endGroups := obs.Span(m, "groups")
	m.Concurrent(fns...)
	endGroups()
	for gi := range groupErr {
		if groupErr[gi] != nil {
			return Result{}, groupErr[gi]
		}
	}
	hulls := make([]chain.Chain, nGroups)
	offsets := make([]int, nGroups)
	for gi := range hulls {
		hulls[gi] = chain.Chain{V: groupRes[gi].Chain}
		offsets[gi] = gi * g
	}

	// Step 3: the point-hull-invariant constant-time merge.
	defer obs.Span(m, "merge")()
	return mergeHulls(m, rnd.Split(0x3E), pts, g, hulls, groupRes)
}

// baseHull solves a constant-size input directly: the chain via a scan and
// every point's covering edge, charged as the brute-force constant-time
// hull (Lemma 2.4 with k = 3: O(3) steps, n^(4/3) processors).
func baseHull(m *pram.Machine, pts []geom.Point) Result {
	n := len(pts)
	m.Charge(3, int64(math.Ceil(math.Pow(float64(n+1), 4.0/3))))
	res := Result{EdgeOf: make([]int, n)}
	if n == 0 {
		return res
	}
	var h []geom.Point
	for _, p := range pts {
		for len(h) >= 2 && geom.Orientation(h[len(h)-2], h[len(h)-1], p) >= 0 {
			h = h[:len(h)-1]
		}
		h = append(h, p)
	}
	res.Chain = h
	for i := 0; i+1 < len(h); i++ {
		res.Edges = append(res.Edges, geom.Edge{U: h[i], W: h[i+1]})
	}
	for p := 0; p < n; p++ {
		res.EdgeOf[p] = -1
		for i, e := range res.Edges {
			if e.Covers(pts[p].X) && !geom.AboveLine(pts[p], e.U, e.W) {
				res.EdgeOf[p] = i
				break
			}
		}
	}
	return res
}
