package presorted

import (
	"testing"

	"inplacehull/internal/pram"
	"inplacehull/internal/rng"
	"inplacehull/internal/workload"
)

func TestLogStarSmall(t *testing.T) {
	pts := prep(workload.Disk(1, 40)) // below baseSize: direct path
	m := pram.New()
	res, err := LogStar(m, rng.New(1), pts)
	if err != nil {
		t.Fatal(err)
	}
	verify(t, pts, res)
}

func TestLogStarWorkloads(t *testing.T) {
	for _, g := range workload.Gens2D {
		for seed := uint64(1); seed <= 2; seed++ {
			pts := prep(g.Gen(seed, 3000))
			m := pram.New()
			res, err := LogStar(m, rng.New(seed*3+5), pts)
			if err != nil {
				t.Fatalf("%s seed %d: %v", g.Name, seed, err)
			}
			verify(t, pts, res)
		}
	}
}

func TestLogStarStepsNearFlat(t *testing.T) {
	// Theorem 2's measurable content: steps grow like log* n — going from
	// 2^10 to 2^16 should barely move the count.
	steps := func(n int) int64 {
		pts := prep(workload.Disk(7, n))
		m := pram.New()
		if _, err := LogStar(m, rng.New(7), pts); err != nil {
			t.Fatal(err)
		}
		return m.Time()
	}
	s1, s2 := steps(1<<10), steps(1<<16)
	if float64(s2) > 2.5*float64(s1) {
		t.Fatalf("log* steps scaled: %d → %d", s1, s2)
	}
}

func TestLogStarWorkNearLinear(t *testing.T) {
	// O(n) processors per step and O(log* n) steps: work/n must grow very
	// slowly (quadrupling n should grow work by ≈ 4, far from 4·log 4).
	work := func(n int) int64 {
		pts := prep(workload.Disk(9, n))
		m := pram.New()
		if _, err := LogStar(m, rng.New(9), pts); err != nil {
			t.Fatal(err)
		}
		return m.Work()
	}
	w1, w2 := work(1<<12), work(1<<14)
	if ratio := float64(w2) / float64(w1); ratio > 6 {
		t.Fatalf("log* work ratio %.2f for 4× n (w1=%d w2=%d)", ratio, w1, w2)
	}
}

func TestLogStarVsConstantTime(t *testing.T) {
	pts := prep(workload.Gaussian(11, 5000))
	m1, m2 := pram.New(), pram.New()
	r1, e1 := LogStar(m1, rng.New(3), pts)
	r2, e2 := ConstantTime(m2, rng.New(3), pts)
	if e1 != nil || e2 != nil {
		t.Fatal(e1, e2)
	}
	if len(r1.Chain) != len(r2.Chain) {
		t.Fatalf("log* chain %d vs constant-time chain %d", len(r1.Chain), len(r2.Chain))
	}
	for i := range r1.Chain {
		if r1.Chain[i] != r2.Chain[i] {
			t.Fatalf("chains differ at %d", i)
		}
	}
	// log* must use fewer processors (peak) than the n log n algorithm at
	// this size.
	if m1.PeakProcessors() >= m2.PeakProcessors() {
		t.Fatalf("log* peak %d ≥ constant-time peak %d", m1.PeakProcessors(), m2.PeakProcessors())
	}
}
