package presorted

import (
	"math"

	"inplacehull/internal/alloc"
	"inplacehull/internal/geom"
	"inplacehull/internal/obs"
	"inplacehull/internal/pram"
	"inplacehull/internal/rng"
)

// OptimalReport augments a log* run with the §2.6 processor-reduction
// accounting: the paper's optimal algorithm runs the O(log* n)-time,
// O(n)-processor algorithm with p = n/log* n processors ("two-level
// arrays and halting the recursion early — details in the full version",
// which never appeared). This reproduction realizes the same bound
// through Lemma 7 (§5): the recorded profile of the log* run is scheduled
// on p processors, giving T = t + w/p + t_c·log t = O(log* n) when
// p = n/log* n and w = O(n).
type OptimalReport struct {
	Result Result
	// Processors is the p = ⌈n/log*(n)⌉ the schedule uses.
	Processors int
	// VirtualTime is the log* run's step count t.
	VirtualTime int64
	// Work is the run's total work w.
	Work int64
	// ScheduledTime is the Lemma 7 schedule length on Processors.
	ScheduledTime int64
}

// Optimal computes the upper hull of pre-sorted points with the §2.6
// processor budget: Theorem 2's O(log* n) time on n/log* n processors.
func Optimal(m *pram.Machine, rnd *rng.Stream, pts []geom.Point) (OptimalReport, error) {
	prof := pram.New(pram.WithProfile(), pram.WithWorkers(1))
	var res Result
	var err error
	// Adopt mirrors the profiled run's cost onto the caller's machine with
	// Concurrent's composition semantics, so an installed observer sees the
	// log* run's spans without double-counting its work.
	m.Adopt(prof, func(sub *pram.Machine) {
		res, err = LogStar(sub, rnd, pts)
	})
	if err != nil {
		return OptimalReport{}, err
	}

	n := len(pts)
	p := n / logStarOf(n)
	if p < 1 {
		p = 1
	}
	profile := prof.Profile()
	endAlloc := obs.Span(m, "alloc")
	st := alloc.SimulatedTime(profile, p, alloc.DefaultTc)
	endAlloc()
	return OptimalReport{
		Result:        res,
		Processors:    p,
		VirtualTime:   prof.Time(),
		Work:          prof.Work(),
		ScheduledTime: st,
	}, nil
}

// logStarOf returns log*(n): the number of times log₂ must be applied
// before the value drops to at most 1.
func logStarOf(n int) int {
	c := 0
	v := float64(n)
	for v > 1 {
		v = math.Log2(v)
		c++
		if c > 8 {
			break
		}
	}
	if c < 1 {
		c = 1
	}
	return c
}
