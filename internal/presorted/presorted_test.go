package presorted

import (
	"testing"

	"inplacehull/internal/geom"
	"inplacehull/internal/hull2d"
	"inplacehull/internal/pram"
	"inplacehull/internal/rng"
	"inplacehull/internal/workload"
)

// prep sorts and deduplicates by x (strictly increasing x contract).
func prep(pts []geom.Point) []geom.Point {
	s := workload.Sorted(pts)
	out := s[:0]
	for i, p := range s {
		if i > 0 && p.X == out[len(out)-1].X {
			// Keep the higher point on equal x: the lower can never be on
			// the upper hull.
			if p.Y > out[len(out)-1].Y {
				out[len(out)-1] = p
			}
			continue
		}
		out = append(out, p)
	}
	return out
}

// verify checks the full output contract: the chain matches the reference
// upper hull and every point's edge pointer is a hull edge above it.
func verify(t *testing.T, pts []geom.Point, res Result) {
	t.Helper()
	want := hull2d.UpperHull(pts)
	if len(res.Chain) != len(want) {
		t.Fatalf("chain has %d vertices, want %d\n got  %v\n want %v", len(res.Chain), len(want), res.Chain, want)
	}
	for i := range want {
		if res.Chain[i] != want[i] {
			t.Fatalf("chain vertex %d: %v != %v", i, res.Chain[i], want[i])
		}
	}
	if len(res.EdgeOf) != len(pts) {
		t.Fatalf("EdgeOf has %d entries", len(res.EdgeOf))
	}
	for p, ei := range res.EdgeOf {
		if len(res.Edges) == 0 {
			if ei != -1 {
				t.Fatalf("single-point hull: EdgeOf[%d]=%d", p, ei)
			}
			continue
		}
		if ei < 0 || ei >= len(res.Edges) {
			t.Fatalf("EdgeOf[%d] = %d out of range", p, ei)
		}
		e := res.Edges[ei]
		if !e.Covers(pts[p].X) {
			t.Fatalf("point %d (%v) not covered by its edge %v", p, pts[p], e)
		}
		if geom.AboveLine(pts[p], e.U, e.W) {
			t.Fatalf("point %d (%v) above its edge %v", p, pts[p], e)
		}
	}
}

func TestConstantTimeSmall(t *testing.T) {
	pts := prep([]geom.Point{{X: 0, Y: 0}, {X: 1, Y: 2}, {X: 2, Y: 1}, {X: 3, Y: 3}, {X: 4, Y: 0}})
	m := pram.New()
	res, err := ConstantTime(m, rng.New(1), pts)
	if err != nil {
		t.Fatal(err)
	}
	verify(t, pts, res)
}

func TestConstantTimeWorkloads(t *testing.T) {
	for _, g := range workload.Gens2D {
		for seed := uint64(1); seed <= 2; seed++ {
			pts := prep(g.Gen(seed, 1000))
			m := pram.New()
			res, err := ConstantTime(m, rng.New(seed*7+1), pts)
			if err != nil {
				t.Fatalf("%s seed %d: %v", g.Name, seed, err)
			}
			verify(t, pts, res)
		}
	}
}

func TestConstantTimeTiny(t *testing.T) {
	m := pram.New()
	if res, err := ConstantTime(m, rng.New(1), nil); err != nil || len(res.Chain) != 0 {
		t.Fatalf("empty input: %v %v", res, err)
	}
	one := []geom.Point{{X: 1, Y: 1}}
	res, err := ConstantTime(m, rng.New(1), one)
	if err != nil || len(res.Chain) != 1 || res.EdgeOf[0] != -1 {
		t.Fatalf("single input: %+v %v", res, err)
	}
	two := []geom.Point{{X: 0, Y: 0}, {X: 1, Y: 1}}
	res, err = ConstantTime(m, rng.New(1), two)
	if err != nil {
		t.Fatal(err)
	}
	verify(t, two, res)
}

func TestConstantTimeRejectsUnsorted(t *testing.T) {
	m := pram.New()
	if _, err := ConstantTime(m, rng.New(1), []geom.Point{{X: 2, Y: 0}, {X: 1, Y: 0}}); err == nil {
		t.Fatal("unsorted input accepted")
	}
	if _, err := ConstantTime(m, rng.New(1), []geom.Point{{X: 1, Y: 0}, {X: 1, Y: 1}}); err == nil {
		t.Fatal("duplicate x accepted")
	}
}

func TestConstantTimeStepsFlat(t *testing.T) {
	// Lemma 2.5's measurable content: the number of PRAM steps must not
	// grow with n (almost surely). Allow small wobble from the random
	// iteration counts and sweeping.
	steps := func(n int) int64 {
		pts := prep(workload.Disk(3, n))
		m := pram.New()
		if _, err := ConstantTime(m, rng.New(9), pts); err != nil {
			t.Fatal(err)
		}
		return m.Time()
	}
	s1, s2 := steps(1<<10), steps(1<<15)
	if float64(s2) > 2.0*float64(s1) {
		t.Fatalf("presorted steps scaled with n: %d → %d", s1, s2)
	}
}

func TestConstantTimeWorkNLogN(t *testing.T) {
	// Work should scale near n log n: quadrupling n from 2^12 to 2^14
	// must grow work by ≲ 4·(14/12)·slack.
	work := func(n int) int64 {
		pts := prep(workload.Disk(5, n))
		m := pram.New()
		if _, err := ConstantTime(m, rng.New(11), pts); err != nil {
			t.Fatal(err)
		}
		return m.Work()
	}
	w1, w2 := work(1<<12), work(1<<14)
	ratio := float64(w2) / float64(w1)
	if ratio > 8 {
		t.Fatalf("work ratio %0.1f for 4× n: super n-log-n growth (w1=%d w2=%d)", ratio, w1, w2)
	}
}

func TestConstantTimeCircle(t *testing.T) {
	// h = n stress: every point is a hull vertex; every tree node's bridge
	// is a distinct hull edge.
	pts := prep(workload.Circle(8, 512))
	m := pram.New()
	res, err := ConstantTime(m, rng.New(2), pts)
	if err != nil {
		t.Fatal(err)
	}
	verify(t, pts, res)
	if len(res.Edges) != len(res.Chain)-1 {
		t.Fatalf("edges %d != chain %d − 1", len(res.Edges), len(res.Chain))
	}
	// The upper hull of circle points contains roughly the upper
	// semicircle: a large fraction of n.
	if len(res.Chain) < len(pts)/3 {
		t.Fatalf("circle upper hull too small: %d of %d", len(res.Chain), len(pts))
	}
}

func TestConstantTimeDeterministicSeed(t *testing.T) {
	pts := prep(workload.Gaussian(4, 800))
	m1, m2 := pram.New(), pram.New()
	r1, err1 := ConstantTime(m1, rng.New(33), pts)
	r2, err2 := ConstantTime(m2, rng.New(33), pts)
	if err1 != nil || err2 != nil {
		t.Fatal(err1, err2)
	}
	if len(r1.Edges) != len(r2.Edges) {
		t.Fatal("same seed, different results")
	}
	if m1.Time() != m2.Time() || m1.Work() != m2.Work() {
		t.Fatalf("same seed, different accounting: (%d,%d) vs (%d,%d)",
			m1.Time(), m1.Work(), m2.Time(), m2.Work())
	}
}

func TestConstantTimeOddSizes(t *testing.T) {
	// Non-power-of-two sizes exercise the padded-tree clamping (empty
	// right halves, ragged levels).
	for _, n := range []int{2, 3, 4, 5, 7, 9, 17, 33, 100, 127, 129} {
		pts := prep(workload.Gaussian(uint64(n), n+5))
		m := pram.New()
		res, err := ConstantTime(m, rng.New(uint64(n)*3+1), pts)
		if err != nil {
			t.Fatalf("n=%d: %v", len(pts), err)
		}
		verify(t, pts, res)
	}
}

func TestLogStarOddSizes(t *testing.T) {
	for _, n := range []int{65, 100, 257, 1000} {
		pts := prep(workload.Disk(uint64(n), n))
		m := pram.New()
		res, err := LogStar(m, rng.New(uint64(n)+9), pts)
		if err != nil {
			t.Fatalf("n=%d: %v", len(pts), err)
		}
		verify(t, pts, res)
	}
}
