// Package presorted implements the Section 2 algorithms: the upper hull of
// n points pre-sorted by x,
//
//   - in O(1) PRAM steps with O(n log n) processors almost surely
//     (§2.2/Lemma 2.5): a complete binary tree is built "on top" of the
//     points; the bridge over every node's median is one linear program
//     (Observation 2.4), all of them solved simultaneously by the in-place
//     batch procedure of §3.3; nodes that the randomized LP leaves
//     unsolved are failure-swept (§2.3); bridges covered by an ancestor's
//     bridge are filtered out; every leaf then locates the lowest
//     uncovered ancestor bridge above it.
//   - in O(log* n) steps with O(n) processors (§2.5): split into groups of
//     polylog size, recurse, then run one constant-time round
//     *point-hull-invariantly* on the group hulls (Lemma 2.6).
//
// The output gives every input point a pointer to the hull edge above it
// ("one edge may occur in this list many times, as it will be stored by
// every point below it"), exactly the output contract of Section 2.
//
// The constant-time algorithm also comes in a *segmented* form, computing
// the hulls of many disjoint x-ranges simultaneously in the same constant
// number of steps — the form the unsorted algorithm's fallback path (§4.1
// step 3) consumes.
package presorted

import (
	"math"
	"math/bits"
	"sort"

	"inplacehull/internal/geom"
	"inplacehull/internal/hullerr"
	"inplacehull/internal/lp"
	"inplacehull/internal/obs"
	"inplacehull/internal/pram"
	"inplacehull/internal/rng"
	"inplacehull/internal/sweep"
)

// Result is the output of the pre-sorted hull algorithms.
type Result struct {
	// Edges are the upper-hull edges in increasing x (across all segments
	// for the segmented form; segments have disjoint x-ranges).
	Edges []geom.Edge
	// Chain is the upper-hull vertex sequence in increasing x (of the
	// single segment; empty for multi-segment calls — use Edges).
	Chain []geom.Point
	// EdgeOf maps each input point to the index in Edges of the hull edge
	// above (or through) it; −1 for points outside every segment and for
	// points that are their segment's only point.
	EdgeOf []int
	// SweptNodes counts tree nodes whose bridge LP failed and was resolved
	// by failure sweeping (§2.3) — the paper's "expected number of
	// failures ≤ 1" quantity, measured.
	SweptNodes int
}

// Segment is a half-open index range [Lo, Hi) of the sorted point array.
type Segment struct{ Lo, Hi int }

// node is one internal node of a segment's (power-of-two padded) tree.
type node struct {
	seg    int // segment index
	heap   int // heap index within the segment's padded tree
	lo, hi int // absolute point range [lo, hi), non-empty both sides of mid
	mid    int // absolute splitter index: lo < mid < hi
	level  int
	size   int
}

// ConstantTime computes the upper hull of points pre-sorted by strictly
// increasing x, per §2.2. It runs a constant number of PRAM steps
// (measured by m) with O(n log n) processor activations per step.
func ConstantTime(m *pram.Machine, rnd *rng.Stream, pts []geom.Point) (Result, error) {
	if err := hullerr.CheckFinite2D("ConstantTime", pts); err != nil {
		return Result{}, err
	}
	if err := checkSorted(pts); err != nil {
		return Result{}, err
	}
	if len(pts) == 0 {
		return Result{}, nil
	}
	res, err := Segmented(m, rnd, pts, []Segment{{0, len(pts)}})
	if err != nil {
		return res, err
	}
	// Single segment: expose the chain.
	if len(res.Edges) > 0 {
		res.Chain = append(res.Chain, res.Edges[0].U)
		for _, e := range res.Edges {
			res.Chain = append(res.Chain, e.W)
		}
	} else if len(pts) == 1 {
		res.Chain = []geom.Point{pts[0]}
	}
	return res, nil
}

// Segmented computes the upper hull of every segment simultaneously: all
// segments' tree nodes join one batch of bridge LPs, so the step count is
// the same constant as for a single segment. Points must be strictly
// x-sorted within each segment and segments must be disjoint.
func Segmented(m *pram.Machine, rnd *rng.Stream, pts []geom.Point, segs []Segment) (Result, error) {
	n := len(pts)
	res := Result{EdgeOf: make([]int, n)}
	for i := range res.EdgeOf {
		res.EdgeOf[i] = -1
	}
	if n == 0 || len(segs) == 0 {
		return res, nil
	}

	// Per-point segment lookup and per-segment tree geometry.
	segOf := make([]int, n)
	for i := range segOf {
		segOf[i] = -1
	}
	logN := make([]int, len(segs))
	maxLevels := 0
	for s, sg := range segs {
		if sg.Lo < 0 || sg.Hi > n || sg.Lo >= sg.Hi {
			return res, hullerr.New(hullerr.InvalidInput, "presorted",
				"bad segment %d: [%d,%d)", s, sg.Lo, sg.Hi)
		}
		for i := sg.Lo; i < sg.Hi; i++ {
			if segOf[i] != -1 {
				return res, hullerr.New(hullerr.InvalidInput, "presorted",
					"segments overlap at %d", i)
			}
			segOf[i] = s
			if i > sg.Lo && pts[i-1].X >= pts[i].X {
				return res, hullerr.New(hullerr.UnsortedInput, "presorted",
					"segment %d not strictly x-sorted at %d", s, i)
			}
		}
		sz := sg.Hi - sg.Lo
		l := 0
		if sz > 1 {
			l = bits.Len(uint(sz - 1))
		}
		logN[s] = l
		if l > maxLevels {
			maxLevels = l
		}
	}
	if maxLevels == 0 {
		return res, nil // all segments singletons
	}

	// Enumerate active nodes across all segments.
	var nodes []node
	probOf := make(map[int64]int) // (seg, heap) key → problem index
	key := func(seg, heap int) int64 { return int64(seg)<<36 | int64(heap) }
	for s, sg := range segs {
		L := logN[s]
		N := 1 << L
		for l := 0; l < L; l++ {
			span := N >> l
			for j := 0; j < (1 << l); j++ {
				lo := sg.Lo + j*span
				if lo >= sg.Hi {
					break
				}
				hi := lo + span
				mid := lo + span/2
				if mid >= sg.Hi {
					continue
				}
				if hi > sg.Hi {
					hi = sg.Hi
				}
				nd := node{seg: s, heap: (1 << l) + j, lo: lo, hi: hi, mid: mid, level: l, size: hi - lo}
				probOf[key(s, nd.heap)] = len(nodes)
				nodes = append(nodes, nd)
			}
		}
	}
	q := len(nodes)
	if q == 0 {
		return res, nil
	}

	// One batch of bridge LPs over n·maxLevels virtual processors: virtual
	// processor (level, point) stands by its point in the problem of its
	// level-l ancestor within its segment. This is the paper's "n log n
	// processors".
	problems := make([]lp.Problem2D, q)
	for i, nd := range nodes {
		k := int(math.Cbrt(float64(nd.size))) + 1
		problems[i] = lp.Problem2D{
			Splitter:  pts[nd.mid],
			A:         gapAbscissa(pts[nd.mid-1].X, pts[nd.mid].X),
			HasA:      true,
			Anchor:    pts[nd.mid-1],
			HasAnchor: true,
			K:         k,
			MLive:     nd.size,
		}
	}
	nVirt := n * maxLevels
	heapAt := func(p, l int) (seg, heap int, ok bool) {
		s := segOf[p]
		if s < 0 || l >= logN[s] {
			return 0, 0, false
		}
		local := p - segs[s].Lo
		return s, (1 << l) + (local >> (logN[s] - l)), true
	}
	pt := func(v int) geom.Point { return pts[v%n] }
	probID := func(v int) int {
		p, l := v%n, v/n
		s, heap, ok := heapAt(p, l)
		if !ok {
			return -1
		}
		if j, ok := probOf[key(s, heap)]; ok {
			return j
		}
		return -1
	}
	endLP := obs.Span(m, "tree-lp")
	results := lp.BatchBridge2D(m, rnd.Split(1), nVirt, pt, probID, problems)
	endLP()

	// Failure sweeping (§2.3).
	endSweep := obs.Span(m, "sweep")
	rep := sweep.Sweep(m, rnd.Split(2), n, q,
		func(j int) bool { return !results[j].OK },
		func(sub *pram.Machine, j int) {
			nd := nodes[j]
			u, w := exactBridge(pts[nd.lo:nd.hi], gapAbscissa(pts[nd.mid-1].X, pts[nd.mid].X))
			results[j].Sol = lp.Solution2D{U: u, W: w}
			results[j].OK = true
			sub.Charge(1, int64(math.Ceil(math.Pow(float64(n), 0.75))))
		})
	endSweep()
	res.SweptNodes = rep.Failures

	endCanon := obs.Span(m, "canonicalize")
	// Canonicalize ties: under collinear degeneracies the bridge LP has
	// many optimal segments on one support line, and which one comes back
	// depends on the sample. Coverage filtering and chain assembly need
	// equal support lines to yield equal segments, so every bridge is
	// extended to the extreme on-line points of its node: one step of
	// n·maxLevels processors finding, per problem, the leftmost and
	// rightmost point on the bridge's line (min/max-combining writes),
	// then one step of q processors snapping the endpoints.
	lmost := make([]pram.MinCell, q)
	rmost := make([]pram.MaxCell, q)
	for j := range lmost {
		lmost[j].InitMax()
		rmost[j].Init(math.MinInt64)
	}
	m.StepAll(nVirt, func(v int) {
		j := probID(v)
		if j < 0 {
			return
		}
		s := results[j].Sol
		if s.Degenerate() {
			return
		}
		p := v % n
		if geom.Orientation(s.U, s.W, pts[p]) == 0 {
			lmost[j].Write(int64(p))
			rmost[j].Write(int64(p))
		}
	})
	m.StepAll(q, func(j int) {
		if results[j].Sol.Degenerate() {
			return
		}
		if l := lmost[j].Get(); l != math.MaxInt64 {
			results[j].Sol.U = pts[l]
			results[j].Sol.W = pts[rmost[j].Get()]
		}
	})
	endCanon()

	endCover := obs.Span(m, "coverage")
	// Coverage filtering: node j's bridge is a global (segment-)hull edge
	// iff no proper ancestor in its segment holds a *different* bridge
	// whose open x-span overlaps it; equal bridges keep only the
	// shallowest holder. One step of q·maxLevels processors (the paper's
	// "log n processors per node performing an OR").
	covered := make([]pram.OrCell, q)
	m.StepAll(q*maxLevels, func(t int) {
		j, dl := t%q, t/q+1
		nd := nodes[j]
		if dl > nd.level {
			return
		}
		aj, ok := probOf[key(nd.seg, nd.heap>>dl)]
		if !ok {
			return
		}
		b, ab := results[j].Sol, results[aj].Sol
		if b == ab {
			// Deeper duplicate of an ancestor's bridge: the shallower
			// holder reports it.
			covered[j].Set()
			return
		}
		if b.W.X > ab.U.X && b.U.X < ab.W.X {
			covered[j].Set()
		}
	})
	endCover()

	endLocate := obs.Span(m, "locate")
	// Per-leaf location: each leaf finds, among its segment-tree ancestors
	// holding an uncovered bridge spanning its x, the hull edge above it.
	// One step of n·maxLevels processors with a min-combining write.
	choice := make([]pram.MinCell, n)
	for i := range choice {
		choice[i].InitMax()
	}
	m.StepAll(nVirt, func(v int) {
		p, l := v%n, v/n
		s, heap, ok := heapAt(p, l)
		if !ok {
			return
		}
		j, ok2 := probOf[key(s, heap)]
		if !ok2 || covered[j].Get() {
			return
		}
		b := results[j].Sol
		x := pts[p].X
		if b.U.X <= x && x <= b.W.X {
			choice[p].Write(int64(j))
		}
	})
	endLocate()

	// Assemble output (host-side; one step of q processors in the model).
	m.Charge(1, int64(q))
	type ej struct {
		e geom.Edge
		j int
	}
	var globals []ej
	edgeIndexOfProblem := make([]int, q)
	for i := range edgeIndexOfProblem {
		edgeIndexOfProblem[i] = -1
	}
	for j := range nodes {
		if covered[j].Get() {
			continue
		}
		s := results[j].Sol
		if s.Degenerate() {
			continue
		}
		globals = append(globals, ej{geom.Edge{U: s.U, W: s.W}, j})
	}
	sort.Slice(globals, func(a, b int) bool { return globals[a].e.U.X < globals[b].e.U.X })
	for i, g := range globals {
		res.Edges = append(res.Edges, g.e)
		edgeIndexOfProblem[g.j] = i
	}
	for p := 0; p < n; p++ {
		s := segOf[p]
		if s < 0 || segs[s].Hi-segs[s].Lo == 1 {
			continue // outside segments, or singleton segment: no edges
		}
		j := choice[p].Get()
		if j == math.MaxInt64 {
			return res, hullerr.New(hullerr.Internal, "presorted",
				"point %d (%v) found no covering bridge", p, pts[p])
		}
		res.EdgeOf[p] = edgeIndexOfProblem[int(j)]
		if res.EdgeOf[p] < 0 {
			return res, hullerr.New(hullerr.Internal, "presorted",
				"point %d chose covered bridge %d", p, j)
		}
	}
	return res, nil
}

// gapAbscissa returns an abscissa strictly between xl and xr (adjacent
// point x-coordinates, xl < xr): the bridge LP aimed here has a *unique*
// optimum — the hull edge crossing the gap — which is exactly the edge the
// LCA/coverage argument of §2.2 needs each node to report. For adjacent
// floats whose midpoint rounds onto an endpoint, fall back to xr (the tie
// is then unavoidable and benign at that scale).
func gapAbscissa(xl, xr float64) float64 {
	a := xl + (xr-xl)/2
	if a <= xl || a >= xr {
		return xr
	}
	return a
}

// exactBridge computes the bridge of sorted points over x = a by a
// monotone-chain scan: the sequential fallback used by failure sweeping.
func exactBridge(sorted []geom.Point, a float64) (geom.Point, geom.Point) {
	var h []geom.Point
	for _, p := range sorted {
		for len(h) >= 2 && geom.Orientation(h[len(h)-2], h[len(h)-1], p) >= 0 {
			h = h[:len(h)-1]
		}
		h = append(h, p)
	}
	for i := 0; i+1 < len(h); i++ {
		if h[i].X <= a && a <= h[i+1].X {
			return h[i], h[i+1]
		}
	}
	return h[0], h[0]
}

// checkSorted validates the pre-sorted input contract: strictly increasing
// x (the Section 2 algorithms assume points in general position sorted by
// x; use workload.Sorted plus deduplication to prepare inputs).
func checkSorted(pts []geom.Point) error {
	for i := 1; i < len(pts); i++ {
		if pts[i-1].X >= pts[i].X {
			return hullerr.New(hullerr.UnsortedInput, "presorted",
				"input not strictly x-sorted at %d", i)
		}
	}
	return nil
}
