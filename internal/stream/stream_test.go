package stream

import (
	"context"
	"testing"

	"inplacehull/internal/fault"
	"inplacehull/internal/geom"
	"inplacehull/internal/hull2d"
	"inplacehull/internal/obs"
	"inplacehull/internal/rng"
	"inplacehull/internal/unsorted"
	"inplacehull/internal/workload"
)

// chainsEqual is bit-identical chain comparison.
func chainsEqual(a, b []geom.Point) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// checkParity2 asserts the maintained chain is bit-identical to the
// reference oracle over the live multiset.
func checkParity2(t *testing.T, d *Dataset, ctx string) {
	t.Helper()
	snap, err := d.Snapshot2()
	if err != nil {
		t.Fatalf("%s: snapshot: %v", ctx, err)
	}
	want := hull2d.UpperHull(snap.Points)
	if !chainsEqual(snap.Chain, want) {
		t.Fatalf("%s: chain diverged from oracle\n got: %v\nwant: %v\nlive: %d points",
			ctx, snap.Chain, want, len(snap.Points))
	}
}

// mutator drives a deterministic append/delete mix over a dataset while
// mirroring the surviving multiset.
type mirror2 struct {
	live []geom.Point
	s    *rng.Stream
}

func (m *mirror2) pick() (geom.Point, int) {
	i := m.s.Intn(len(m.live))
	return m.live[i], i
}

func (m *mirror2) drop(i int) {
	m.live[i] = m.live[len(m.live)-1]
	m.live = m.live[:len(m.live)-1]
}

func TestIncrementalParity2D(t *testing.T) {
	gens := []workload.Gen2D{
		{Name: "disk", Gen: workload.Disk},
		{Name: "circle", Gen: workload.Circle},
		{Name: "grid", Gen: workload.Grid},
		{Name: "collinear", Gen: workload.Collinear},
		{Name: "gaussian", Gen: workload.Gaussian},
	}
	ctx := context.Background()
	for _, g := range gens {
		g := g
		t.Run(g.Name, func(t *testing.T) {
			pts := g.Gen(7, 256)
			// Low churn thresholds so the fallback path also exercises.
			st := NewStore(Config{MinChurn: 8, ChurnFrac: 0.05})
			d, delta, err := st.Register2(g.Name, pts)
			if err != nil {
				t.Fatalf("register: %v", err)
			}
			if delta.Version != 1 || len(delta.Added) == 0 {
				t.Fatalf("registration delta: %+v", delta)
			}
			checkParity2(t, d, "after register")

			m := &mirror2{live: append([]geom.Point(nil), pts...), s: rng.New(11)}
			fresh := g.Gen(99, 512)
			fi := 0
			prevV := uint64(1)
			for step := 0; step < 400; step++ {
				var err error
				var delta Delta
				switch {
				case len(m.live) == 0 || (m.s.Intn(2) == 0 && fi < len(fresh)):
					p := fresh[fi]
					fi++
					m.live = append(m.live, p)
					delta, err = d.Append2(ctx, []geom.Point{p})
				default:
					p, i := m.pick()
					m.drop(i)
					delta, err = d.Delete2(ctx, []geom.Point{p})
				}
				if err != nil {
					t.Fatalf("step %d: %v", step, err)
				}
				if delta.Version != prevV+1 {
					t.Fatalf("step %d: version %d, want %d", step, delta.Version, prevV+1)
				}
				prevV = delta.Version
				checkParity2(t, d, g.Name)
			}
			if fi == 0 {
				t.Fatal("mutator never appended")
			}
		})
	}
}

// TestDuplicatesAndRevival pins the multiset edge cases: duplicate
// appends leave the hull alone, deleting one of two copies of a hull
// vertex keeps it, and a deleted point can be re-appended.
func TestDuplicatesAndRevival(t *testing.T) {
	ctx := context.Background()
	st := NewStore(Config{})
	sq := []geom.Point{{X: 0, Y: 0}, {X: 1, Y: 2}, {X: 2, Y: 0}}
	d, _, err := st.Register2("sq", sq)
	if err != nil {
		t.Fatal(err)
	}
	top := geom.Point{X: 1, Y: 2}
	if _, err := d.Append2(ctx, []geom.Point{top}); err != nil { // now count 2
		t.Fatal(err)
	}
	checkParity2(t, d, "dup append")
	if _, err := d.Delete2(ctx, []geom.Point{top}); err != nil { // count 1: still a vertex
		t.Fatal(err)
	}
	snap, _ := d.Snapshot2()
	if len(snap.Chain) != 3 {
		t.Fatalf("vertex with remaining multiplicity dropped: chain %v", snap.Chain)
	}
	delta, err := d.Delete2(ctx, []geom.Point{top}) // count 0: vertex leaves
	if err != nil {
		t.Fatal(err)
	}
	if len(delta.Removed) != 1 || delta.Removed[0] != top {
		t.Fatalf("delete delta: %+v", delta)
	}
	checkParity2(t, d, "vertex delete")
	if _, err := d.Append2(ctx, []geom.Point{top}); err != nil { // revival
		t.Fatal(err)
	}
	checkParity2(t, d, "revival")
	// Deleting an absent point fails typed with no state change.
	v0, h0 := d.Version()
	if _, err := d.Delete2(ctx, []geom.Point{{X: 99, Y: 99}}); err == nil {
		t.Fatal("deleting an absent point succeeded")
	}
	if v1, h1 := d.Version(); v1 != v0 || h1 != h0 {
		t.Fatal("failed delete changed state")
	}
}

// TestEndpointDeletes drains a dataset vertex-first down to empty — the
// half-open-strip and empty-chain edge cases.
func TestEndpointDeletes(t *testing.T) {
	ctx := context.Background()
	st := NewStore(Config{})
	pts := workload.Circle(3, 24)
	d, _, err := st.Register2("c", pts)
	if err != nil {
		t.Fatal(err)
	}
	for len(pts) > 0 {
		snap, _ := d.Snapshot2()
		// Always delete the current leftmost chain vertex.
		p := snap.Chain[0]
		if _, err := d.Delete2(ctx, []geom.Point{p}); err != nil {
			t.Fatal(err)
		}
		for i, q := range pts {
			if q == p {
				pts = append(pts[:i], pts[i+1:]...)
				break
			}
		}
		checkParity2(t, d, "endpoint delete")
	}
	snap, _ := d.Snapshot2()
	if len(snap.Chain) != 0 || len(snap.Points) != 0 {
		t.Fatalf("drained dataset not empty: %v", snap)
	}
}

// TestChaosSoak2D is the mutation-path chaos soak: with StreamSplice and
// StreamRebuild firing, every mutation must either commit a chain
// bit-identical to the oracle or fail typed with version, hash, and chain
// unchanged — never silently wrong.
func TestChaosSoak2D(t *testing.T) {
	ctx := context.Background()
	met := obs.NewMetrics()
	var plan fault.Plan
	plan.Seed = 0xfeed
	plan.Rates[fault.StreamSplice] = 0.3
	plan.Rates[fault.StreamRebuild] = 0.4
	inj := fault.NewInjector(plan)
	st := NewStore(Config{Injector: inj, Metrics: met, MinChurn: 8, ChurnFrac: 0.02})
	d, _, err := st.Register2("soak", workload.Disk(21, 512))
	if err != nil {
		t.Fatal(err)
	}
	s := rng.New(5)
	fresh := workload.Disk(77, 2048)
	fi := 0
	m := &mirror2{live: append([]geom.Point(nil), workload.Disk(21, 512)...), s: rng.New(13)}
	violations := 0
	typed := 0
	for step := 0; step < 600; step++ {
		v0, h0 := d.Version()
		snap0, _ := d.Snapshot2()
		var err error
		if len(m.live) == 0 || (s.Intn(2) == 0 && fi < len(fresh)) {
			p := fresh[fi]
			fi++
			if _, err = d.Append2(ctx, []geom.Point{p}); err == nil {
				m.live = append(m.live, p)
			}
		} else {
			p, i := m.pick()
			if _, err = d.Delete2(ctx, []geom.Point{p}); err == nil {
				m.drop(i)
			}
		}
		if err != nil {
			typed++
			// Typed failure: state must be exactly the previous version.
			if v1, h1 := d.Version(); v1 != v0 || h1 != h0 {
				t.Errorf("step %d: failed mutation moved state v%d→v%d", step, v0, v1)
				violations++
			}
			snap1, _ := d.Snapshot2()
			if !chainsEqual(snap0.Chain, snap1.Chain) {
				t.Errorf("step %d: failed mutation changed chain", step)
				violations++
			}
			continue
		}
		checkParity2(t, d, "soak commit")
	}
	if typed == 0 {
		t.Fatal("soak never exercised the typed-failure path; raise rates")
	}
	if met.StreamCounter("rollbacks_total") == 0 {
		t.Fatal("no rollbacks counted")
	}
	if met.StreamCounter("fallbacks_total") == 0 {
		t.Fatal("no fallbacks counted")
	}
	if violations != 0 {
		t.Fatalf("%d contract violations", violations)
	}
}

// TestIncrementalParity3D oracle-gates the maintained 3-d caps after
// every mutation: CheckCaps3D must hold over the live multiset. (3-d
// facet decomposition is seed/order-dependent repo-wide, so the oracle —
// not bit-identity — is the 3-d parity contract.)
func TestIncrementalParity3D(t *testing.T) {
	ctx := context.Background()
	st := NewStore(Config{})
	pts := workload.Ball(9, 128)
	d, delta, err := st.Register3("ball", pts)
	if err != nil {
		t.Fatal(err)
	}
	if delta.Version != 1 || len(delta.Added3) == 0 {
		t.Fatalf("registration delta: %+v", delta)
	}
	live := append([]geom.Point3(nil), pts...)
	fresh := workload.Sphere(31, 256)
	fi := 0
	s := rng.New(17)
	for step := 0; step < 120; step++ {
		if len(live) == 0 || (s.Intn(2) == 0 && fi < len(fresh)) {
			p := fresh[fi]
			fi++
			live = append(live, p)
			if _, err := d.Append3(ctx, []geom.Point3{p}); err != nil {
				t.Fatalf("step %d append: %v", step, err)
			}
		} else {
			i := s.Intn(len(live))
			p := live[i]
			live[i] = live[len(live)-1]
			live = live[:len(live)-1]
			if _, err := d.Delete3(ctx, []geom.Point3{p}); err != nil {
				t.Fatalf("step %d delete: %v", step, err)
			}
		}
		snap, err := d.Snapshot3()
		if err != nil {
			t.Fatal(err)
		}
		if len(snap.Points) != len(live) {
			t.Fatalf("step %d: snapshot %d points, mirror %d", step, len(snap.Points), len(live))
		}
		if len(snap.Points) > 0 {
			if err := unsorted.CheckCaps3D(snap.Points, snap.Res); err != nil {
				t.Fatalf("step %d: maintained caps failed oracle: %v", step, err)
			}
		}
	}
}

// TestSubscriptions pins delta fan-out: version order, hash continuity,
// and channel close on dataset delete.
func TestSubscriptions(t *testing.T) {
	ctx := context.Background()
	st := NewStore(Config{})
	d, reg, err := st.Register2("sub", workload.Disk(1, 64))
	if err != nil {
		t.Fatal(err)
	}
	sub := d.Subscribe()
	p := geom.Point{X: 50, Y: 50} // far outside: certainly a new hull vertex
	delta, err := d.Append2(ctx, []geom.Point{p})
	if err != nil {
		t.Fatal(err)
	}
	got := <-sub.C
	if got.Version != reg.Version+1 || got.Hash != delta.Hash || got.PrevHash != reg.Hash {
		t.Fatalf("subscriber delta %+v, want version %d hash %v", got, reg.Version+1, delta.Hash)
	}
	found := false
	for _, q := range got.Added {
		if q == p {
			found = true
		}
	}
	if !found {
		t.Fatalf("outlier append not in Added: %+v", got)
	}
	// Since() replays the same delta.
	ds, ok := d.Since(reg.Version)
	if !ok || len(ds) != 1 || ds[0].Version != got.Version {
		t.Fatalf("Since: %v %v", ds, ok)
	}
	if _, ok := st.Delete("sub"); !ok {
		t.Fatal("delete failed")
	}
	if _, open := <-sub.C; open {
		t.Fatal("subscription channel not closed on dataset delete")
	}
	// Deleted dataset: mutations fail typed; re-registration works.
	if _, err := d.Append2(ctx, []geom.Point{p}); err == nil {
		t.Fatal("mutation on deleted dataset succeeded")
	}
	if _, _, err := st.Register2("sub", []geom.Point{{X: 1, Y: 1}}); err != nil {
		t.Fatalf("re-registration after delete: %v", err)
	}
}

// TestRegisterIdempotent pins registration semantics: identical content
// is a no-op, different content a typed error.
func TestRegisterIdempotent(t *testing.T) {
	st := NewStore(Config{})
	pts := workload.Disk(4, 32)
	d1, _, err := st.Register2("x", pts)
	if err != nil {
		t.Fatal(err)
	}
	d2, _, err := st.Register2("x", pts)
	if err != nil || d2 != d1 {
		t.Fatalf("idempotent re-register: %v (same=%v)", err, d2 == d1)
	}
	if _, _, err := st.Register2("x", workload.Disk(5, 32)); err == nil {
		t.Fatal("conflicting re-register succeeded")
	}
}

// TestMultisetHashIncremental pins that the incrementally maintained hash
// equals a from-scratch multiset hash of the surviving points.
func TestMultisetHashIncremental(t *testing.T) {
	ctx := context.Background()
	st := NewStore(Config{})
	pts := workload.Grid(8, 64)
	d, _, err := st.Register2("h", pts)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.Append2(ctx, pts[:4]); err != nil { // duplicates
		t.Fatal(err)
	}
	if _, err := d.Delete2(ctx, pts[8:12]); err != nil {
		t.Fatal(err)
	}
	snap, _ := d.Snapshot2()
	fromScratch := NewStore(Config{})
	d2, _, err := fromScratch.Register2("h2", snap.Points)
	if err != nil {
		t.Fatal(err)
	}
	_, h2 := d2.Version()
	if snap.Hash != h2 {
		t.Fatalf("incremental hash %v != from-scratch %v", snap.Hash, h2)
	}
}
