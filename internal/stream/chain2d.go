package stream

// 2-d incremental hull maintenance. The committed chain is always the
// canonical strict upper chain of the live distinct points — bit-identical
// to hull2d.UpperHull — maintained by three moves:
//
//   - append: binary-search the x-position, and if the point rises above
//     the chain, splice it in with Graham-style pops to both tangent
//     points. Correct because a point above the chain is a hull vertex of
//     the new set and the pops find exactly its tangent contacts; a point
//     on or below the chain cannot change it.
//   - delete of a non-vertex: the chain is unchanged (hull vertices of S
//     other than a deleted interior point remain hull vertices).
//   - delete of a vertex v: the chain can change only between v's chain
//     neighbors prev and next, because every other vertex stays extreme.
//     Rehulling the live points of the closed strip [prev.X, next.X]
//     yields a sub-chain that provably starts at prev and ends at next
//     (each is the top of its column and extreme within the strip), so
//     splicing it between them reproduces the canonical chain exactly —
//     no seam rescan. Endpoint deletions use a half-open strip.
//
// The strip gather is the bounded-workspace pass: it reads the x-sorted
// retained band plus the pending buffer and stops at the churn limit,
// past which the mutation falls back to a full native rebuild.

import (
	"context"
	"fmt"

	"inplacehull/internal/engine"
	"inplacehull/internal/fault"
	"inplacehull/internal/geom"
	"inplacehull/internal/hull2d"
	"inplacehull/internal/hullerr"
	"inplacehull/internal/hullhash"
)

// newDataset2 builds a registered 2-d dataset: membership structures plus
// a direct full chain build (registration is one rebuild, not n splices).
func newDataset2(name string, cfg Config, pts []geom.Point) (*Dataset, Delta, error) {
	d := &Dataset{
		name:   name,
		dim:    2,
		cfg:    cfg,
		subs:   make(map[int]*Sub),
		counts: make(map[geom.Point]int, len(pts)),
		ms:     hullhash.NewMultiset2(),
	}
	for _, p := range pts {
		if d.counts[p] == 0 {
			d.order = append(d.order, p)
			d.distin++
		}
		d.counts[p]++
		d.liveN++
	}
	sortLex(d.order)
	chain, _, err := engine.NativeChain2D(context.Background(), pts, cfg.Sink)
	if err != nil {
		return nil, Delta{}, err
	}
	d.chain = chain
	delta := d.commit(Delta{Added: append([]geom.Point(nil), chain...)}, pts, nil, nil, nil)
	return d, delta, nil
}

// Append2 adds points to a 2-d dataset and commits one new version.
func (d *Dataset) Append2(ctx context.Context, pts []geom.Point) (Delta, error) {
	return d.mutate2(ctx, "stream.Append2", pts, nil)
}

// Delete2 removes points (one multiset occurrence each) and commits one
// new version. Every point must be present, or the whole mutation fails
// typed with no state change.
func (d *Dataset) Delete2(ctx context.Context, pts []geom.Point) (Delta, error) {
	return d.mutate2(ctx, "stream.Delete2", nil, pts)
}

// mut2 carries the in-flight state of one 2-d mutation batch.
type mut2 struct {
	work        []geom.Point // chain under construction (fresh slices; d.chain untouched)
	incremental bool
	reason      string // fallback reason once incremental is false
	splices     int
	repairs     int
	maxStrip    int
}

func (d *Dataset) mutate2(ctx context.Context, op string, add, del []geom.Point) (Delta, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if err := d.usable(2, op); err != nil {
		return Delta{}, err
	}
	if err := hullerr.CheckFinite2D(op, add); err != nil {
		return Delta{}, err
	}
	if len(add)+len(del) == 0 {
		return Delta{Name: d.name, Dim: 2, Version: d.version, Hash: d.hash, PrevHash: d.hash}, nil
	}
	// Deletability pre-pass: the batch is all-or-nothing, so a missing
	// point rejects it before any state changes.
	if len(del) > 0 {
		need := make(map[geom.Point]int, len(del))
		for _, p := range del {
			need[p]++
			if d.counts[p] < need[p] {
				return Delta{}, hullerr.New(hullerr.InvalidInput, op,
					"point (%g, %g) not in dataset %q", p.X, p.Y, d.name)
			}
		}
	}

	st := mut2{work: d.chain, incremental: true}
	if d.cfg.Injector.Hit(fault.StreamSplice) {
		st.incremental = false
		st.reason = "injected splice fault"
	}
	var j journal
	if st.incremental && len(del) > 0 {
		end := d.cfg.span("stream-repair")
		for _, p := range del {
			d.remove2(p, &st, &j)
		}
		d.cfg.charge(len(del))
		end()
	} else {
		for _, p := range del {
			d.remove2(p, &st, &j)
		}
	}
	if st.incremental && len(add) > 0 {
		end := d.cfg.span("stream-splice")
		for _, p := range add {
			d.insert2(p, &st, &j)
		}
		d.cfg.charge(len(add))
		end()
	} else {
		for _, p := range add {
			d.insert2(p, &st, &j)
		}
	}

	if !st.incremental {
		d.cfg.count("fallbacks_total", 1)
		if d.cfg.Injector.Hit(fault.StreamRebuild) {
			j.rollback()
			d.cfg.count("rollbacks_total", 1)
			d.cfg.logf("stream %s: %s rolled back at v%d (injected rebuild failure after %s)",
				d.name, op, d.version, st.reason)
			return Delta{}, fallbackErr(op, d.name)
		}
		end := d.cfg.span("stream-rebuild")
		live := d.liveDistinct2()
		chain, _, err := engine.NativeChain2D(ctx, live, d.cfg.Sink)
		d.cfg.charge(len(live))
		end()
		if err != nil {
			j.rollback()
			d.cfg.count("rollbacks_total", 1)
			return Delta{}, err
		}
		st.work = chain
		d.cfg.count("rebuilds_total", 1)
		d.cfg.logf("stream %s: %s fell back to full rebuild at v%d (%s); n=%d",
			d.name, op, d.version+1, st.reason, len(live))
	}

	endDelta := d.cfg.span("stream-delta")
	added, removed := diffChains(d.chain, st.work)
	d.chain = st.work
	d.cfg.count("splices_total", int64(st.splices))
	d.cfg.count("repairs_total", int64(st.repairs))
	if len(add) > 0 {
		d.cfg.count("appends_total", 1)
		d.cfg.count("points_added_total", int64(len(add)))
	}
	if len(del) > 0 {
		d.cfg.count("deletes_total", 1)
		d.cfg.count("points_removed_total", int64(len(del)))
	}
	delta := d.commit(Delta{Added: added, Removed: removed, Fallback: st.reason}, add, del, nil, nil)
	d.housekeep2()
	d.cfg.charge(len(added) + len(removed))
	endDelta()
	return delta, nil
}

// remove2 removes one occurrence of p from the membership structures and,
// on the incremental path, repairs the chain if p was a hull vertex.
func (d *Dataset) remove2(p geom.Point, st *mut2, j *journal) {
	d.liveN--
	d.counts[p]--
	j.add(func() { d.liveN++; d.counts[p]++ })
	if d.counts[p] > 0 {
		return // multiplicity remains; the distinct point set is unchanged
	}
	d.dead++
	d.distin--
	j.add(func() { d.dead--; d.distin++ })
	if !st.incremental {
		return
	}
	idx := chainIndexOf(st.work, p)
	if idx < 0 {
		return // interior point: every chain vertex stays extreme
	}
	hasLo, hasHi := idx > 0, idx < len(st.work)-1
	var lox, hix float64
	if hasLo {
		lox = st.work[idx-1].X
	}
	if hasHi {
		hix = st.work[idx+1].X
	}
	limit := d.churnLimit()
	strip, ok := d.gatherStrip(lox, hix, hasLo, hasHi, limit)
	if !ok {
		st.incremental = false
		st.reason = fmt.Sprintf("churn: delete strip exceeds %d live points", limit)
		return
	}
	if len(strip) > st.maxStrip {
		st.maxStrip = len(strip)
	}
	sub := hull2d.UpperHull(strip)
	start, end := idx, idx+1
	if hasLo {
		start = idx - 1
	}
	if hasHi {
		end = idx + 2
	}
	st.work = spliceChain(st.work, start, end, sub)
	st.repairs++
}

// insert2 adds one occurrence of p and, on the incremental path, splices
// it into the chain if it rises above it.
func (d *Dataset) insert2(p geom.Point, st *mut2, j *journal) {
	d.liveN++
	old := d.counts[p]
	d.counts[p] = old + 1
	j.add(func() { d.liveN--; d.counts[p] = old })
	if old > 0 {
		return // duplicate occurrence: distinct set unchanged
	}
	d.distin++
	j.add(func() { d.distin-- })
	if d.inOrder(p) || d.inPending(p) {
		d.dead-- // tombstone revival
		j.add(func() { d.dead++ })
	} else {
		d.pending = append(d.pending, p)
		j.add(func() { d.pending = d.pending[:len(d.pending)-1] })
	}
	if !st.incremental {
		return
	}
	if work, changed := insertChain(st.work, p); changed {
		st.work = work
		st.splices++
	}
}

// insertChain splices p into the canonical chain, returning a fresh slice
// when the chain changes (the input is never mutated).
func insertChain(chain []geom.Point, p geom.Point) ([]geom.Point, bool) {
	n := len(chain)
	if n == 0 {
		return []geom.Point{p}, true
	}
	k := searchChainX(chain, p.X)
	var left, right []geom.Point
	switch {
	case k < n && chain[k].X == p.X:
		if p.Y <= chain[k].Y {
			return chain, false // the column top stays
		}
		left, right = chain[:k], chain[k+1:]
	case k == n:
		left, right = chain, nil // strictly rightmost live point
	case k == 0:
		left, right = nil, chain // strictly leftmost live point
	default:
		if geom.Orientation(chain[k-1], chain[k], p) <= 0 {
			return chain, false // on or below the covering edge
		}
		left, right = chain[:k], chain[k:]
	}
	nl := len(left)
	for nl >= 2 && geom.Orientation(left[nl-2], left[nl-1], p) >= 0 {
		nl--
	}
	r0 := 0
	for len(right)-r0 >= 2 && geom.Orientation(p, right[r0], right[r0+1]) >= 0 {
		r0++
	}
	out := make([]geom.Point, 0, nl+1+len(right)-r0)
	out = append(out, left[:nl]...)
	out = append(out, p)
	out = append(out, right[r0:]...)
	return out, true
}

// spliceChain replaces chain[start:end] with sub in a fresh slice.
func spliceChain(chain []geom.Point, start, end int, sub []geom.Point) []geom.Point {
	out := make([]geom.Point, 0, start+len(sub)+len(chain)-end)
	out = append(out, chain[:start]...)
	out = append(out, sub...)
	out = append(out, chain[end:]...)
	return out
}

// searchChainX is the lower bound of x in the strictly x-increasing chain.
func searchChainX(chain []geom.Point, x float64) int {
	lo, hi := 0, len(chain)
	for lo < hi {
		mid := (lo + hi) / 2
		if chain[mid].X < x {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// chainIndexOf returns p's index in the chain, or −1 when p is not a
// chain vertex (a chain vertex is the unique top of its column, so an
// x match with a different y is not a vertex).
func chainIndexOf(chain []geom.Point, p geom.Point) int {
	k := searchChainX(chain, p.X)
	if k < len(chain) && chain[k] == p {
		return k
	}
	return -1
}

// churnLimit is the delete-repair fallback threshold.
func (d *Dataset) churnLimit() int {
	frac := int(d.cfg.churnFrac() * float64(d.distin))
	if m := d.cfg.minChurn(); frac < m {
		return m
	}
	return frac
}

// gatherStrip collects the live distinct points with x in the (half-)open
// strip, reading the sorted band plus the pending buffer, stopping once
// the count exceeds limit (ok false: churn fallback).
func (d *Dataset) gatherStrip(lox, hix float64, hasLo, hasHi bool, limit int) ([]geom.Point, bool) {
	var strip []geom.Point
	i := 0
	if hasLo {
		i = searchPointsX(d.order, lox)
	}
	for ; i < len(d.order); i++ {
		p := d.order[i]
		if hasHi && p.X > hix {
			break
		}
		if d.counts[p] > 0 {
			if strip = append(strip, p); len(strip) > limit {
				return nil, false
			}
		}
	}
	for _, p := range d.pending {
		if d.counts[p] <= 0 || (hasLo && p.X < lox) || (hasHi && p.X > hix) {
			continue
		}
		if strip = append(strip, p); len(strip) > limit {
			return nil, false
		}
	}
	return strip, true
}

// searchPointsX is the lower bound of x in the lex-sorted order band.
func searchPointsX(pts []geom.Point, x float64) int {
	lo, hi := 0, len(pts)
	for lo < hi {
		mid := (lo + hi) / 2
		if pts[mid].X < x {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// inOrder reports whether p has an entry (live or tombstone) in the
// sorted band.
func (d *Dataset) inOrder(p geom.Point) bool {
	i := searchPointsX(d.order, p.X)
	for ; i < len(d.order) && d.order[i].X == p.X; i++ {
		if d.order[i] == p {
			return true
		}
	}
	return false
}

// inPending reports whether p has an entry in the pending buffer (a
// linear scan; the buffer is bounded by the flush threshold).
func (d *Dataset) inPending(p geom.Point) bool {
	for _, q := range d.pending {
		if q == p {
			return true
		}
	}
	return false
}

// liveDistinct2 returns the live distinct points, sorted lexicographically.
func (d *Dataset) liveDistinct2() []geom.Point {
	pend := make([]geom.Point, 0, len(d.pending))
	for _, p := range d.pending {
		if d.counts[p] > 0 {
			pend = append(pend, p)
		}
	}
	sortLex(pend)
	out := make([]geom.Point, 0, d.distin)
	i, k := 0, 0
	for i < len(d.order) || k < len(pend) {
		switch {
		case i == len(d.order):
			out = append(out, pend[k])
			k++
		case k == len(pend) || geom.LexLess(d.order[i], pend[k]):
			if d.counts[d.order[i]] > 0 {
				out = append(out, d.order[i])
			}
			i++
		default:
			out = append(out, pend[k])
			k++
		}
	}
	return out
}

// livePoints2 expands the live distinct points by multiplicity (the
// snapshot multiset, sorted lexicographically).
func (d *Dataset) livePoints2() []geom.Point {
	out := make([]geom.Point, 0, d.liveN)
	for _, p := range d.liveDistinct2() {
		for c := d.counts[p]; c > 0; c-- {
			out = append(out, p)
		}
	}
	return out
}

// housekeep2 runs post-commit maintenance: merge the pending buffer into
// the sorted band past √n, and compact tombstones past 50% dead. Only on
// committed state — never mid-batch — so it needs no undo.
func (d *Dataset) housekeep2() {
	total := len(d.order) + len(d.pending)
	pendingCap := 64
	if s := isqrt(total); s > pendingCap {
		pendingCap = s
	}
	if len(d.pending) <= pendingCap && d.dead <= total/2 {
		return
	}
	d.order = d.liveDistinct2()
	d.pending = d.pending[:0]
	d.dead = 0
	for p, c := range d.counts {
		if c == 0 {
			delete(d.counts, p)
		}
	}
}

func isqrt(n int) int {
	x := 0
	for (x+1)*(x+1) <= n {
		x++
	}
	return x
}

// diffChains diffs two canonical chains (both strictly x-increasing) into
// added and removed vertex lists, each sorted.
func diffChains(old, cur []geom.Point) (added, removed []geom.Point) {
	i, k := 0, 0
	for i < len(old) || k < len(cur) {
		switch {
		case i == len(old):
			added = append(added, cur[k])
			k++
		case k == len(cur):
			removed = append(removed, old[i])
			i++
		case old[i] == cur[k]:
			i++
			k++
		case geom.LexLess(old[i], cur[k]):
			removed = append(removed, old[i])
			i++
		default:
			added = append(added, cur[k])
			k++
		}
	}
	return added, removed
}
