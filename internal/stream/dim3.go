package stream

// 3-d incremental hull maintenance: candidate replay through the existing
// incremental builder (native.Hull3DFrom). The retained candidate set is
// the previous hull's vertex set; appends extend it with the new points
// (conv(verts ∪ appended) == conv(live), the invariant Hull3DFrom
// requires), so the builder's insertion work shrinks from n to h+k.
// Deleting a hull vertex invalidates the candidate set and forces a full
// replay over the live points — counted and logged as a fallback, the 3-d
// analogue of the 2-d churn threshold. Cap assignment and the CheckCaps3D
// oracle always run over the full live multiset, so a commit stays O(n)
// and the answer is oracle-gated exactly like every other 3-d path in the
// repo. Facet decomposition is seed-and-order dependent (the repo-wide
// 3-d stance), so the store fixes one seed and feeds candidates in sorted
// order: identical candidate sets replay to identical facets.

import (
	"context"
	"sort"

	"inplacehull/internal/engine"
	"inplacehull/internal/fault"
	"inplacehull/internal/geom"
	"inplacehull/internal/hullerr"
	"inplacehull/internal/hullhash"
	"inplacehull/internal/unsorted"
)

// newDataset3 builds a registered 3-d dataset with one full replay.
func newDataset3(name string, cfg Config, pts []geom.Point3) (*Dataset, Delta, error) {
	d := &Dataset{
		name:    name,
		dim:     3,
		cfg:     cfg,
		subs:    make(map[int]*Sub),
		counts3: make(map[geom.Point3]int, len(pts)),
		hullV3:  map[geom.Point3]bool{},
		ms:      hullhash.NewMultiset3(),
	}
	for _, p := range pts {
		if d.counts3[p] == 0 {
			d.all3 = append(d.all3, p)
			d.distin3++
		}
		d.counts3[p]++
		d.liveN3++
	}
	full := d.livePoints3()
	res, _, err := engine.NativeHull3DFrom(context.Background(), cfg.seed(), full, d.liveDistinct3(), cfg.Sink)
	if err != nil {
		return nil, Delta{}, err
	}
	d.installCaps3(full, res)
	delta := d.commit(Delta{Added3: append([]geom.Point3(nil), d.verts3...)}, nil, nil, pts, nil)
	return d, delta, nil
}

// Append3 adds points to a 3-d dataset and commits one new version.
func (d *Dataset) Append3(ctx context.Context, pts []geom.Point3) (Delta, error) {
	return d.mutate3(ctx, "stream.Append3", pts, nil)
}

// Delete3 removes points (one multiset occurrence each) and commits one
// new version; a missing point rejects the whole batch typed.
func (d *Dataset) Delete3(ctx context.Context, pts []geom.Point3) (Delta, error) {
	return d.mutate3(ctx, "stream.Delete3", nil, pts)
}

func (d *Dataset) mutate3(ctx context.Context, op string, add, del []geom.Point3) (Delta, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if err := d.usable(3, op); err != nil {
		return Delta{}, err
	}
	if err := hullerr.CheckFinite3D(op, add); err != nil {
		return Delta{}, err
	}
	if len(add)+len(del) == 0 {
		return Delta{Name: d.name, Dim: 3, Version: d.version, Hash: d.hash, PrevHash: d.hash}, nil
	}
	if len(del) > 0 {
		need := make(map[geom.Point3]int, len(del))
		for _, p := range del {
			need[p]++
			if d.counts3[p] < need[p] {
				return Delta{}, hullerr.New(hullerr.InvalidInput, op,
					"point (%g, %g, %g) not in dataset %q", p.X, p.Y, p.Z, d.name)
			}
		}
	}

	var j journal
	vertexDeleted := false
	for _, p := range del {
		d.liveN3--
		d.counts3[p]--
		j.add(func() { d.liveN3++; d.counts3[p]++ })
		if d.counts3[p] == 0 {
			d.dead3++
			d.distin3--
			j.add(func() { d.dead3--; d.distin3++ })
			if d.hullV3[p] {
				vertexDeleted = true
			}
		}
	}
	for _, p := range add {
		d.liveN3++
		// Key presence distinguishes a tombstone (still indexed in all3)
		// from a brand-new point, so the rollback must erase keys it
		// created — a stray zero-count key without an all3 entry would
		// corrupt the index.
		old, existed := d.counts3[p]
		d.counts3[p] = old + 1
		j.add(func() {
			d.liveN3--
			if existed {
				d.counts3[p] = old
			} else {
				delete(d.counts3, p)
			}
		})
		if old == 0 {
			d.distin3++
			j.add(func() { d.distin3-- })
			if existed {
				d.dead3-- // tombstone revival
				j.add(func() { d.dead3++ })
			} else {
				d.all3 = append(d.all3, p)
				j.add(func() { d.all3 = d.all3[:len(d.all3)-1] })
			}
		}
	}

	// Candidate selection: the incremental path replays verts (∪ appended);
	// a hull-vertex deletion or an injected splice fault forces the full
	// live set — the rebuild analogue.
	reason := ""
	if vertexDeleted {
		reason = "hull-vertex delete"
	}
	if d.cfg.Injector.Hit(fault.StreamSplice) {
		reason = "injected splice fault"
	}
	var culled []geom.Point3
	if reason != "" {
		d.cfg.count("fallbacks_total", 1)
		if d.cfg.Injector.Hit(fault.StreamRebuild) {
			j.rollback()
			d.cfg.count("rollbacks_total", 1)
			d.cfg.logf("stream %s: %s rolled back at v%d (injected rebuild failure after %s)",
				d.name, op, d.version, reason)
			return Delta{}, fallbackErr(op, d.name)
		}
		culled = d.liveDistinct3()
		d.cfg.count("rebuilds_total", 1)
		d.cfg.logf("stream %s: %s fell back to full 3-d replay at v%d (%s); n=%d",
			d.name, op, d.version+1, reason, len(culled))
	} else {
		culled = make([]geom.Point3, 0, len(d.verts3)+len(add))
		for _, p := range d.verts3 {
			if d.counts3[p] > 0 {
				culled = append(culled, p)
			}
		}
		for _, p := range add {
			if !d.hullV3[p] {
				culled = append(culled, p)
			}
		}
		sort.Slice(culled, func(i, k int) bool { return lexLess3(culled[i], culled[k]) })
		culled = dedupe3(culled)
		d.cfg.count("splices_total", int64(len(add)))
	}

	end := d.cfg.span("stream-caps")
	full := d.livePoints3()
	res, _, err := engine.NativeHull3DFrom(ctx, d.cfg.seed(), full, culled, d.cfg.Sink)
	if err == nil && reason == "" && degenerate3(res) && len(culled) < d.distin3 {
		// The candidate replay surrendered to the degenerate rung while a
		// richer answer may exist over the full set — retry full, counted.
		d.cfg.count("rebuilds_total", 1)
		d.cfg.logf("stream %s: %s candidate replay degenerate at v%d; retrying over full set",
			d.name, op, d.version+1)
		res, _, err = engine.NativeHull3DFrom(ctx, d.cfg.seed(), full, d.liveDistinct3(), d.cfg.Sink)
	}
	d.cfg.charge(len(full))
	end()
	if err != nil {
		j.rollback()
		d.cfg.count("rollbacks_total", 1)
		return Delta{}, err
	}

	endDelta := d.cfg.span("stream-delta")
	oldVerts := d.verts3
	d.installCaps3(full, res)
	added, removed := diffVerts3(oldVerts, d.verts3)
	if len(add) > 0 {
		d.cfg.count("appends_total", 1)
		d.cfg.count("points_added_total", int64(len(add)))
	}
	if len(del) > 0 {
		d.cfg.count("deletes_total", 1)
		d.cfg.count("points_removed_total", int64(len(del)))
	}
	delta := d.commit(Delta{Added3: added, Removed3: removed, Fallback: reason}, nil, nil, add, del)
	d.housekeep3()
	d.cfg.charge(len(added) + len(removed))
	endDelta()
	return delta, nil
}

// installCaps3 commits a replay result: snapshot, caps, sorted vertex set.
func (d *Dataset) installCaps3(full []geom.Point3, res unsorted.Result3D) {
	d.snap3, d.res3 = full, res
	set := map[geom.Point3]bool{}
	for _, f := range res.Facets {
		set[f.A], set[f.B], set[f.C] = true, true, true
	}
	verts := make([]geom.Point3, 0, len(set))
	for p := range set {
		if d.counts3[p] > 0 { // a degenerate cap can reference the global top only
			verts = append(verts, p)
		}
	}
	sort.Slice(verts, func(i, k int) bool { return lexLess3(verts[i], verts[k]) })
	d.verts3 = verts
	d.hullV3 = set
}

// liveDistinct3 returns the live distinct points in lex order.
func (d *Dataset) liveDistinct3() []geom.Point3 {
	out := make([]geom.Point3, 0, d.distin3)
	for _, p := range d.all3 {
		if d.counts3[p] > 0 {
			out = append(out, p)
		}
	}
	sort.Slice(out, func(i, k int) bool { return lexLess3(out[i], out[k]) })
	return out
}

// livePoints3 expands the live multiset in retained (first-seen) order —
// the deterministic alignment for FacetOf.
func (d *Dataset) livePoints3() []geom.Point3 {
	out := make([]geom.Point3, 0, d.liveN3)
	for _, p := range d.all3 {
		for c := d.counts3[p]; c > 0; c-- {
			out = append(out, p)
		}
	}
	return out
}

// housekeep3 prunes tombstones past 50% dead (post-commit only).
func (d *Dataset) housekeep3() {
	if d.dead3 <= len(d.all3)/2 {
		return
	}
	live := d.all3[:0:0]
	for _, p := range d.all3 {
		if d.counts3[p] > 0 {
			live = append(live, p)
		}
	}
	d.all3 = live
	d.dead3 = 0
	for p, c := range d.counts3 {
		if c == 0 {
			delete(d.counts3, p)
		}
	}
}

// degenerate3 reports the single-degenerate-cap surrender shape.
func degenerate3(res unsorted.Result3D) bool {
	return len(res.Facets) == 1 && res.Facets[0].Degenerate()
}

// dedupe3 removes adjacent duplicates from a lex-sorted slice.
func dedupe3(pts []geom.Point3) []geom.Point3 {
	out := pts[:0]
	for i, p := range pts {
		if i == 0 || p != pts[i-1] {
			out = append(out, p)
		}
	}
	return out
}

// diffVerts3 diffs two lex-sorted vertex sets.
func diffVerts3(old, cur []geom.Point3) (added, removed []geom.Point3) {
	i, k := 0, 0
	for i < len(old) || k < len(cur) {
		switch {
		case i == len(old):
			added = append(added, cur[k])
			k++
		case k == len(cur):
			removed = append(removed, old[i])
			i++
		case old[i] == cur[k]:
			i++
			k++
		case lexLess3(old[i], cur[k]):
			removed = append(removed, old[i])
			i++
		default:
			added = append(added, cur[k])
			k++
		}
	}
	return added, removed
}
