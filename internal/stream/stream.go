// Package stream is the stateful mutable-dataset subsystem behind
// internal/serve: named datasets gain Append/Delete/Snapshot operations
// with a monotonically versioned hull maintained incrementally instead of
// rebuilt from scratch per update.
//
// 2-d maintenance is monotone-chain insertion with tangent-splice repair:
// an appended point binary-searches its x-position in the canonical upper
// chain and, if it rises above the chain, splices in with Graham-style
// pops to both tangent points — O(log h + pops) against the O(n log n)
// rebuild every client pays today. Deleting a hull vertex triggers a
// bounded local rebuild over the retained candidate band: the dataset
// keeps all live points x-sorted (plus a small unsorted pending buffer,
// the bounded-workspace shape of De/Nandy/Roy's read-only hull pass), so
// the repair gathers only the strip between the deleted vertex's chain
// neighbors — provably the only region the chain can change in — and
// re-hulls it with the reference oracle. Past a churn threshold the
// repair abandons the strip and falls back to a full native rebuild;
// every fallback decision is logged and counted, never silent.
//
// 3-d maintenance replays mutations through the existing incremental
// builder via native.Hull3DFrom: the candidate set is the previous hull's
// vertex set plus the appended points (their convex hull equals the full
// hull, the invariant Hull3DFrom requires), so insertion work shrinks
// from n to h+k; deleting a hull vertex forces a full replay, counted as
// a fallback. Cap assignment and the CheckCaps3D oracle still run over
// the full live set — 3-d commits stay O(n), with the incremental win
// confined to the builder.
//
// Every committed version carries a content hash (an incrementally
// updatable hullhash.Multiset sum, O(k) per mutation batch), so the
// serving layer invalidates or patches cache entries by hash rather than
// recomputing. Subscribers get hull-delta notifications — added/removed
// hull vertices, version, hash — over buffered channels that the SSE and
// long-poll endpoints of cmd/hullserve drain; a slow subscriber is never
// blocked on, it observes a version gap and resyncs.
//
// Failure semantics extend the E14/E19 contract — correct hull or typed
// error, never silently wrong — to mutable state: the fault sites
// StreamSplice (incremental path abandoned, degrade to a rebuild) and
// StreamRebuild (rebuild fails typed) are consulted on every mutation,
// and a failed rebuild rolls the mutation back atomically: the dataset
// stays at its previous version, hull, and hash.
package stream

import (
	"sort"
	"sync"

	"inplacehull/internal/fault"
	"inplacehull/internal/geom"
	"inplacehull/internal/hullerr"
	"inplacehull/internal/hullhash"
	"inplacehull/internal/obs"
	"inplacehull/internal/pram"
	"inplacehull/internal/unsorted"
)

// Config shapes a Store. The zero value is usable: no metrics, no spans,
// no faults, default thresholds.
type Config struct {
	// Metrics receives inplacehull_stream_* counters (may be nil).
	Metrics *obs.Metrics
	// Sink receives per-mutation phase spans (stream-splice,
	// stream-repair, stream-rebuild, stream-caps, stream-delta); may be
	// nil. Wall-time spans with item-count charges, the native shape.
	Sink pram.Sink
	// Injector supplies the mutation-path fault sites (StreamSplice,
	// StreamRebuild); nil injects nothing.
	Injector *fault.Injector
	// Seed drives the 3-d incremental builder's insertion order
	// (0 = default). One fixed seed per store keeps replays
	// deterministic: the same candidate set always rebuilds the same
	// facet decomposition.
	Seed uint64
	// MinChurn and ChurnFrac size the delete-repair churn threshold: a
	// strip repair touching more than max(MinChurn, ChurnFrac·distinct)
	// live points falls back to a full rebuild. Zero values default to
	// 256 and 0.125.
	MinChurn  int
	ChurnFrac float64
	// History is how many hull deltas each dataset retains for
	// since-version catch-up (default 128). A subscriber further behind
	// resyncs from a full snapshot.
	History int
	// Logf receives fallback-decision log lines (nil discards).
	Logf func(format string, args ...any)
	// OnCommit, when non-nil, observes every committed delta (including
	// registration and the tombstone delta of a dataset deletion) —
	// the serving layer's cache-invalidation hook. Called synchronously
	// under the dataset lock; keep it cheap.
	OnCommit func(Delta)
}

func (c Config) minChurn() int { return defInt(c.MinChurn, 256) }
func (c Config) churnFrac() float64 {
	if c.ChurnFrac <= 0 {
		return 0.125
	}
	return c.ChurnFrac
}
func (c Config) history() int  { return defInt(c.History, 128) }
func (c Config) seed() uint64  { return c.Seed ^ 0x51e4a11ed }
func defInt(v, d int) int {
	if v <= 0 {
		return d
	}
	return v
}

func (c Config) logf(format string, args ...any) {
	if c.Logf != nil {
		c.Logf(format, args...)
	}
}

func (c Config) count(name string, v int64) { c.Metrics.StreamCounterAdd(name, v) }

// Delta is one committed hull change — what subscribers receive and what
// GET hull?since= replays. Tombstone deltas (dataset deletion) carry
// Deleted=true and the final hash, so cache eviction keys on it.
type Delta struct {
	// Name and Dim identify the dataset.
	Name string
	Dim  int
	// Version is the committed monotone version (1 = registration).
	Version uint64
	// Hash is the content hash of the dataset at Version; PrevHash the
	// hash at Version−1 — the key the serving layer invalidates.
	Hash     hullhash.Sum
	PrevHash hullhash.Sum
	// Added/Removed are the hull vertices that entered/left the 2-d
	// chain at this version; Added3/Removed3 the 3-d hull vertex set
	// changes. Sorted lexicographically.
	Added    []geom.Point
	Removed  []geom.Point
	Added3   []geom.Point3
	Removed3 []geom.Point3
	// Fallback is "" when the version committed on the incremental
	// path, else the logged reason the mutation degraded to a full
	// rebuild ("churn: …", "injected splice fault", "hull-vertex
	// delete", …).
	Fallback string
	// Deleted marks the tombstone delta of a dataset deletion.
	Deleted bool
}

// Snapshot2 is a consistent view of a 2-d dataset: the live point
// multiset sorted lexicographically (multiplicities expanded) plus the
// canonical upper chain. Slices are immutable once returned.
type Snapshot2 struct {
	Points  []geom.Point
	Chain   []geom.Point
	Version uint64
	Hash    hullhash.Sum
}

// Snapshot3 is the 3-d twin: the live multiset in retained order and the
// cap structure aligned with it (FacetOf[i] caps Points[i]).
type Snapshot3 struct {
	Points  []geom.Point3
	Res     unsorted.Result3D
	Version uint64
	Hash    hullhash.Sum
}

// Sub is a hull-delta subscription. Receive from C; a slow subscriber's
// channel is never blocked on — dropped deltas surface as a version gap,
// after which the subscriber resyncs via Since or a snapshot. C is
// closed when the subscription is closed or the dataset deleted.
type Sub struct {
	// C delivers committed deltas in version order (possibly with gaps).
	C      <-chan Delta
	ch     chan Delta
	id     int
	d      *Dataset
	closed bool
}

// Close detaches the subscription and closes C. Safe to call twice.
func (s *Sub) Close() {
	if s == nil {
		return
	}
	s.d.mu.Lock()
	defer s.d.mu.Unlock()
	if !s.closed {
		s.closed = true
		delete(s.d.subs, s.id)
		close(s.ch)
	}
}

// Dataset is one named mutable point set with its maintained hull. All
// methods are safe for concurrent use; mutations serialize.
type Dataset struct {
	name  string
	dim   int
	cfg   Config
	store *Store // nil for datasets outside a store; Watch fanout target

	mu     sync.RWMutex
	closed bool

	version uint64
	ms      hullhash.Multiset
	hash    hullhash.Sum
	history []Delta
	subs    map[int]*Sub
	nextSub int

	// 2-d state: counts is the live multiset (zero-valued entries are
	// tombstones still present in order/pending); order holds the
	// distinct points sorted lexicographically, pending the unsorted
	// not-yet-merged tail; chain is the canonical upper chain,
	// immutable once committed.
	counts  map[geom.Point]int
	order   []geom.Point
	pending []geom.Point
	dead    int
	liveN   int // multiplicity-weighted live count
	distin  int // distinct live count
	chain   []geom.Point

	// 3-d state: counts3/all3 mirror counts/order (all3 is first-seen
	// order, not sorted); snap3+res3 are the last committed cap
	// structure; verts3 the sorted hull vertex set; hullV3 its set form.
	counts3 map[geom.Point3]int
	all3    []geom.Point3
	dead3   int
	liveN3  int
	distin3 int
	snap3   []geom.Point3
	res3    unsorted.Result3D
	verts3  []geom.Point3
	hullV3  map[geom.Point3]bool
}

// Name returns the dataset name.
func (d *Dataset) Name() string { return d.name }

// Dim returns 2 or 3.
func (d *Dataset) Dim() int { return d.dim }

// Version returns the committed version and content hash.
func (d *Dataset) Version() (uint64, hullhash.Sum) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return d.version, d.hash
}

// Hull2 returns the canonical upper chain with its version and hash. The
// chain is immutable once returned.
func (d *Dataset) Hull2() ([]geom.Point, uint64, hullhash.Sum, error) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	if err := d.usable(2, "stream.Hull2"); err != nil {
		return nil, 0, hullhash.Sum{}, err
	}
	return d.chain, d.version, d.hash, nil
}

// Hull3 returns the sorted 3-d hull vertex set with version and hash.
func (d *Dataset) Hull3() ([]geom.Point3, uint64, hullhash.Sum, error) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	if err := d.usable(3, "stream.Hull3"); err != nil {
		return nil, 0, hullhash.Sum{}, err
	}
	return d.verts3, d.version, d.hash, nil
}

// usable gates method dimension and liveness; callers hold d.mu.
func (d *Dataset) usable(dim int, op string) error {
	if d.closed {
		return hullerr.New(hullerr.InvalidInput, op, "dataset %q deleted", d.name)
	}
	if d.dim != dim {
		return hullerr.New(hullerr.InvalidInput, op, "dataset %q is %d-d, not %d-d", d.name, d.dim, dim)
	}
	return nil
}

// Snapshot2 returns a consistent 2-d view (see Snapshot2 type).
func (d *Dataset) Snapshot2() (Snapshot2, error) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	if err := d.usable(2, "stream.Snapshot2"); err != nil {
		return Snapshot2{}, err
	}
	return Snapshot2{
		Points:  d.livePoints2(),
		Chain:   d.chain,
		Version: d.version,
		Hash:    d.hash,
	}, nil
}

// Snapshot3 returns a consistent 3-d view (see Snapshot3 type).
func (d *Dataset) Snapshot3() (Snapshot3, error) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	if err := d.usable(3, "stream.Snapshot3"); err != nil {
		return Snapshot3{}, err
	}
	return Snapshot3{
		Points:  d.snap3,
		Res:     d.res3,
		Version: d.version,
		Hash:    d.hash,
	}, nil
}

// Since returns the deltas with version > v in order. ok is false when v
// predates the retained history — the caller must resync from a
// snapshot. v ≥ current returns an empty slice with ok true.
func (d *Dataset) Since(v uint64) ([]Delta, bool) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	if v >= d.version {
		return nil, true
	}
	if len(d.history) == 0 || d.history[0].Version > v+1 {
		return nil, false
	}
	i := sort.Search(len(d.history), func(i int) bool { return d.history[i].Version > v })
	out := make([]Delta, len(d.history)-i)
	copy(out, d.history[i:])
	return out, true
}

// Subscribe attaches a hull-delta subscription.
func (d *Dataset) Subscribe() *Sub {
	d.mu.Lock()
	defer d.mu.Unlock()
	ch := make(chan Delta, 32)
	s := &Sub{C: ch, ch: ch, id: d.nextSub, d: d}
	d.nextSub++
	if d.closed {
		// A subscription to a deleted dataset closes immediately; the
		// caller observes EOF rather than a hang.
		close(ch)
		s.closed = true
		return s
	}
	d.subs[s.id] = s
	return s
}

// commit finalizes a successful mutation under d.mu: bump version, update
// the incremental hash, record history, notify subscribers.
func (d *Dataset) commit(delta Delta, add2, del2 []geom.Point, add3, del3 []geom.Point3) Delta {
	for _, p := range add2 {
		d.ms.Add2(p)
	}
	for _, p := range del2 {
		d.ms.Remove2(p)
	}
	for _, p := range add3 {
		d.ms.Add3(p)
	}
	for _, p := range del3 {
		d.ms.Remove3(p)
	}
	d.version++
	delta.Name, delta.Dim = d.name, d.dim
	delta.PrevHash = d.hash
	d.hash = d.ms.Sum()
	delta.Version, delta.Hash = d.version, d.hash
	d.history = append(d.history, delta)
	if h := d.cfg.history(); len(d.history) > h {
		d.history = append(d.history[:0], d.history[len(d.history)-h:]...)
	}
	d.notify(delta)
	if d.cfg.OnCommit != nil {
		d.cfg.OnCommit(delta)
	}
	if d.store != nil {
		d.store.fanout(delta)
	}
	return delta
}

// notify fans the delta out without ever blocking on a subscriber.
func (d *Dataset) notify(delta Delta) {
	for _, s := range d.subs {
		select {
		case s.ch <- delta:
			d.cfg.count("deltas_total", 1)
		default:
			d.cfg.count("lagged_total", 1)
		}
	}
}

// journal is the undo log of one mutation batch: membership changes are
// recorded as they apply, and a typed rebuild failure unwinds them in
// reverse so the dataset lands exactly on its previous version.
type journal struct{ undo []func() }

func (j *journal) add(fn func()) { j.undo = append(j.undo, fn) }

func (j *journal) rollback() {
	for i := len(j.undo) - 1; i >= 0; i-- {
		j.undo[i]()
	}
}

// span opens a named phase span on the config sink (nil-safe).
func (c Config) span(name string) func() {
	if c.Sink == nil {
		return func() {}
	}
	c.Sink.SpanOpenEvent(name, pram.Snapshot{})
	return func() { c.Sink.SpanCloseEvent(name, pram.Snapshot{}) }
}

// charge charges an item count to the open span (nil-safe).
func (c Config) charge(items int) {
	if c.Sink != nil && items > 0 {
		c.Sink.ChargeEvent(0, int64(items))
	}
}

// Store is the named-dataset registry the serving layer mounts.
type Store struct {
	mu  sync.RWMutex
	cfg Config
	ds  map[string]*Dataset

	// hooks are store-wide delta observers (Watch). Guarded by their own
	// leaf mutex: commit runs under a dataset lock and Delete under the
	// store lock, and both fan out here.
	hooksMu sync.Mutex
	hooks   []func(Delta)
}

// Watch registers fn to observe every delta committed store-wide after
// the call — mutations and tombstones, after the dataset's own
// Config.OnCommit. This is the serving layer's cache-invalidation seam,
// kept outside Config so a server can attach to a store it did not
// build. Hooks run synchronously under the dataset lock; keep them
// cheap. Registration deltas of datasets created before Watch are not
// replayed.
func (s *Store) Watch(fn func(Delta)) {
	s.hooksMu.Lock()
	defer s.hooksMu.Unlock()
	s.hooks = append(s.hooks, fn)
}

// fanout delivers delta to the store-wide observers.
func (s *Store) fanout(delta Delta) {
	s.hooksMu.Lock()
	hooks := s.hooks
	s.hooksMu.Unlock()
	for _, fn := range hooks {
		fn(delta)
	}
}

// NewStore returns an empty store.
func NewStore(cfg Config) *Store {
	return &Store{cfg: cfg, ds: make(map[string]*Dataset)}
}

// Get returns the named dataset.
func (s *Store) Get(name string) (*Dataset, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	d, ok := s.ds[name]
	return d, ok
}

// Names lists the registered dataset names, sorted.
func (s *Store) Names() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]string, 0, len(s.ds))
	for n := range s.ds {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Register2 creates a named 2-d dataset from pts (the initial hull is a
// direct full build, not n splices). Re-registering a live name with
// identical content is an idempotent no-op returning the existing
// dataset; different content is a typed error — Delete first. After a
// Delete the name registers fresh.
func (s *Store) Register2(name string, pts []geom.Point) (*Dataset, Delta, error) {
	const op = "stream.Register2"
	if err := hullerr.CheckFinite2D(op, pts); err != nil {
		return nil, Delta{}, err
	}
	// probe is a throwaway multiset: the dataset's own hash accrues via
	// commit, so registration content is compared, never double-hashed.
	probe := hullhash.NewMultiset2()
	for _, p := range pts {
		probe.Add2(p)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if old, ok := s.ds[name]; ok {
		oldV, oldH := old.Version()
		if old.Dim() == 2 && oldH == probe.Sum() && oldV == 1 {
			return old, old.lastDelta(), nil
		}
		return nil, Delta{}, hullerr.New(hullerr.InvalidInput, op,
			"dataset %q already registered with different content; delete it first", name)
	}
	d, delta, err := newDataset2(name, s.cfg, pts)
	if err != nil {
		return nil, Delta{}, err
	}
	d.store = s
	s.ds[name] = d
	return d, delta, nil
}

// Register3 is Register2 for 3-d datasets.
func (s *Store) Register3(name string, pts []geom.Point3) (*Dataset, Delta, error) {
	const op = "stream.Register3"
	if err := hullerr.CheckFinite3D(op, pts); err != nil {
		return nil, Delta{}, err
	}
	probe := hullhash.NewMultiset3()
	for _, p := range pts {
		probe.Add3(p)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if old, ok := s.ds[name]; ok {
		oldV, oldH := old.Version()
		if old.Dim() == 3 && oldH == probe.Sum() && oldV == 1 {
			return old, old.lastDelta(), nil
		}
		return nil, Delta{}, hullerr.New(hullerr.InvalidInput, op,
			"dataset %q already registered with different content; delete it first", name)
	}
	d, delta, err := newDataset3(name, s.cfg, pts)
	if err != nil {
		return nil, Delta{}, err
	}
	d.store = s
	s.ds[name] = d
	return d, delta, nil
}

// lastDelta returns the most recent committed delta (registration for a
// fresh dataset).
func (d *Dataset) lastDelta() Delta {
	d.mu.RLock()
	defer d.mu.RUnlock()
	if len(d.history) == 0 {
		return Delta{Name: d.name, Dim: d.dim, Version: d.version, Hash: d.hash}
	}
	return d.history[len(d.history)-1]
}

// Delete removes the named dataset: subscribers' channels close, pending
// mutations fail typed, and the returned tombstone delta carries the
// final content hash so the serving layer evicts by it. ok is false when
// the name is unknown (the HTTP layer's 404).
func (s *Store) Delete(name string) (Delta, bool) {
	s.mu.Lock()
	d, ok := s.ds[name]
	if ok {
		delete(s.ds, name)
	}
	s.mu.Unlock()
	if !ok {
		return Delta{}, false
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	d.closed = true
	tomb := Delta{Name: d.name, Dim: d.dim, Version: d.version, Hash: d.hash, PrevHash: d.hash, Deleted: true}
	for _, sub := range d.subs {
		sub.closed = true
		close(sub.ch)
	}
	d.subs = map[int]*Sub{}
	if d.cfg.OnCommit != nil {
		d.cfg.OnCommit(tomb)
	}
	s.fanout(tomb)
	return tomb, true
}

// sortLex sorts 2-d points lexicographically in place.
func sortLex(pts []geom.Point) {
	sort.Slice(pts, func(i, j int) bool { return geom.LexLess(pts[i], pts[j]) })
}

// lexLess3 orders 3-d points lexicographically.
func lexLess3(p, q geom.Point3) bool {
	if p.X != q.X {
		return p.X < q.X
	}
	if p.Y != q.Y {
		return p.Y < q.Y
	}
	return p.Z < q.Z
}

// fallbackErr is the typed outcome of a poisoned rebuild.
func fallbackErr(op, name string) error {
	return hullerr.New(hullerr.BudgetExhausted, op,
		"injected rebuild failure on dataset %q; mutation rolled back", name)
}
