package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sort"
	"sync/atomic"
	"time"

	"inplacehull/internal/geom"
	"inplacehull/internal/hullerr"
	"inplacehull/internal/shard"
)

// httpQuery is the JSON request body of POST /v1/hull2d and /v1/hull3d.
type httpQuery struct {
	// Points: [[x,y],…] for 2-d, [[x,y,z],…] for 3-d. Mutually exclusive
	// with Dataset.
	Points [][]float64 `json:"points,omitempty"`
	// Dataset names a preloaded point set (GET /v1/datasets lists them).
	Dataset string `json:"dataset,omitempty"`
	// Algorithm: "hull2d" (default), "presorted", "logstar" (2-d only).
	Algorithm string `json:"algorithm,omitempty"`
	Seed      uint64 `json:"seed,omitempty"`
	// DeadlineMS bounds the query's service time; 0 means the request's
	// own context only.
	DeadlineMS int  `json:"deadline_ms,omitempty"`
	NoCache    bool `json:"no_cache,omitempty"`
	// RequireExact refuses a degraded approximate answer: if only the
	// approximate tier survives, the query fails with kind
	// "approximate only" (HTTP 422).
	RequireExact bool `json:"require_exact,omitempty"`
	// ApproxEps overrides the server's approximate-tier tolerance for
	// this query (relative to the bounding-box diagonal; > 0 enables).
	ApproxEps float64 `json:"approx_eps,omitempty"`
	// Shards routes the query through the scatter-gather coordinator
	// split k ways (-1 = the coordinator's default width). Requires the
	// server to be started with peers/shards configured; 2-d hull2d only.
	Shards int `json:"shards,omitempty"`
	// Backend: "" or "auto" (server default, native unless configured
	// otherwise), "counted" (the simulated PRAM), "native" (the direct
	// engine). The answer is canonical either way; the backends differ in
	// speed and in what their reports can say.
	Backend string `json:"backend,omitempty"`
	// Cull: "" or "auto" (server default, octagon unless configured
	// otherwise), "off", "quad", "octagon", "coarse" — the admission-side
	// interior-point filter (see internal/cull). Never changes the answer;
	// the discard count is echoed as the X-Hull-Culled response header.
	Cull string `json:"cull,omitempty"`
}

// httpResult is the JSON response body.
type httpResult struct {
	N        int         `json:"n"`
	HullSize int         `json:"hull_size"`
	Chain    [][]float64 `json:"chain,omitempty"`
	Facets   int         `json:"facets,omitempty"`
	Cached   bool        `json:"cached"`
	Tier     string      `json:"tier"`
	// Backend names the engine that computed the answer ("counted" or
	// "native"); also echoed as the X-Hull-Backend response header.
	Backend string `json:"backend"`
	// ApproxEps is the certified ε of an approximate-tier answer (absolute
	// vertical distance); 0 for exact tiers.
	ApproxEps float64 `json:"approx_eps,omitempty"`
	Attempts  int     `json:"attempts"`
	Elapsed   float64 `json:"elapsed_us"`
	// Shards/MissingShards describe a scattered answer: how many shards
	// the query split into, and — on an HTTP 206 partial answer — which of
	// them the hull does not cover.
	Shards        int   `json:"shards,omitempty"`
	MissingShards []int `json:"missing_shards,omitempty"`
	// Culled is how many input points the admission filter discarded before
	// the backend ran (0 when culling was off or found nothing); also echoed
	// as X-Hull-Culled ("culled/n"). N always counts the full input.
	Culled    int    `json:"culled,omitempty"`
	RequestID string `json:"request_id,omitempty"`
}

type httpError struct {
	Error     string `json:"error"`
	Kind      string `json:"kind"`
	RequestID string `json:"request_id,omitempty"`
}

// statusOf maps the typed error taxonomy onto HTTP statuses. Untyped
// errors cannot reach here (the supervisor's contract), but map
// defensively: a raw context deadline is still a timeout (504), anything
// else a 500.
func statusOf(err error) int {
	var e *hullerr.Error
	if !errors.As(err, &e) {
		if errors.Is(err, context.DeadlineExceeded) {
			return http.StatusGatewayTimeout
		}
		return http.StatusInternalServerError
	}
	switch e.Kind {
	case hullerr.InvalidInput, hullerr.UnsortedInput:
		return http.StatusBadRequest
	case hullerr.Overloaded:
		// 503, not 429: the server as a whole is saturated or closing —
		// the client did nothing wrong, the capacity is simply not there
		// right now. Retry-After tells it when to come back.
		return http.StatusServiceUnavailable
	case hullerr.ApproximateOnly:
		// The request as stated (exact) is unsatisfiable, but a relaxed
		// retry (require_exact=false) would succeed.
		return http.StatusUnprocessableEntity
	case hullerr.PartialHull:
		// Scattered answers with unreachable shards carry their covered
		// hull; serveHull answers 206 with the body, this arm only backs
		// writeErr up if one escapes to the generic path.
		return http.StatusPartialContent
	case hullerr.DeadlineExceeded:
		return http.StatusGatewayTimeout
	case hullerr.Canceled:
		return 499 // client closed request (nginx convention)
	default: // BudgetExhausted, Internal
		return http.StatusInternalServerError
	}
}

func kindName(err error) string {
	var e *hullerr.Error
	if errors.As(err, &e) {
		return e.Kind.String()
	}
	return "untyped"
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeErr(w http.ResponseWriter, ctx context.Context, err error) {
	status := statusOf(err)
	if status == http.StatusServiceUnavailable {
		w.Header().Set("Retry-After", "1")
	}
	writeJSON(w, status, httpError{Error: err.Error(), Kind: kindName(err),
		RequestID: shard.RequestIDFrom(ctx)})
}

// Handler returns the HTTP front end:
//
//	POST /v1/hull2d    {"points":[[x,y],…]|"dataset":name, "algorithm":…, "seed":…, "deadline_ms":…, "shards":…}
//	POST /v1/hull3d    {"points":[[x,y,z],…]|"dataset":name, …}
//	POST /v1/scatter2d one shard of a peer coordinator's scatter (internal/shard wire format)
//	GET  /v1/datasets  registered dataset names
//	GET  /v1/peers     per-peer health of the scatter coordinator (when configured)
//	GET  /healthz      liveness
//	GET  /metrics      Prometheus exposition (when Config.Metrics is set)
//
// With Config.Streams mounted, the mutable-dataset endpoints join them:
//
//	PUT    /v1/datasets/{name}        register a mutable dataset ({"points":[[…]…]}; idempotent for identical content)
//	DELETE /v1/datasets/{name}        delete it (404 unknown); evicts its cached answers
//	POST   /v1/datasets/{name}/append append points; answers the committed hull delta
//	POST   /v1/datasets/{name}/delete remove points (one multiset occurrence each; all-or-nothing)
//	GET    /v1/datasets/{name}/hull   current hull; ?since=V replays deltas, &wait_ms=D long-polls for the next commit
//	GET    /v1/datasets/{name}/watch  hull-delta push over SSE (events: hull, delta, deleted)
//
// Every request runs under an X-Request-ID: a caller-supplied one is
// propagated (to the response, error bodies, and scatter fan-out to
// peers), otherwise the server mints one.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/hull2d", func(w http.ResponseWriter, req *http.Request) { s.serveHull(w, req, 2) })
	mux.HandleFunc("/v1/hull3d", func(w http.ResponseWriter, req *http.Request) { s.serveHull(w, req, 3) })
	mux.HandleFunc(shard.ScatterPath, s.serveScatter)
	mux.HandleFunc("/v1/datasets", func(w http.ResponseWriter, req *http.Request) {
		names := s.Datasets()
		sort.Strings(names)
		writeJSON(w, http.StatusOK, map[string][]string{"datasets": names})
	})
	if s.cfg.Streams != nil {
		mux.HandleFunc("PUT /v1/datasets/{name}", s.serveStreamRegister)
		mux.HandleFunc("DELETE /v1/datasets/{name}", s.serveStreamDelete)
		mux.HandleFunc("POST /v1/datasets/{name}/append", func(w http.ResponseWriter, req *http.Request) {
			s.serveStreamMutate(w, req, false)
		})
		mux.HandleFunc("POST /v1/datasets/{name}/delete", func(w http.ResponseWriter, req *http.Request) {
			s.serveStreamMutate(w, req, true)
		})
		mux.HandleFunc("GET /v1/datasets/{name}/hull", s.serveStreamHull)
		mux.HandleFunc("GET /v1/datasets/{name}/watch", s.serveStreamWatch)
	}
	mux.HandleFunc("/v1/peers", func(w http.ResponseWriter, req *http.Request) {
		if s.cfg.Sharder == nil {
			writeJSON(w, http.StatusOK, map[string]any{"peers": []any{}})
			return
		}
		writeJSON(w, http.StatusOK, map[string]any{"peers": s.cfg.Sharder.Health()})
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, req *http.Request) {
		w.WriteHeader(http.StatusOK)
		_, _ = w.Write([]byte("ok\n"))
	})
	if s.cfg.Metrics != nil {
		mux.Handle("/metrics", s.cfg.Metrics)
	}
	return s.withRequestID(mux)
}

// ridCounter backs server-minted request IDs.
var ridCounter atomic.Uint64

// withRequestID is the tracing middleware: propagate the caller's
// X-Request-ID or mint one, thread it through the request context (where
// typed-error bodies and scatter fan-out pick it up), and echo it on the
// response.
func (s *Server) withRequestID(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		id := req.Header.Get(shard.RequestIDHeader)
		if id != "" {
			s.cfg.Metrics.ServeCounterAdd("request_id_propagated_total", 1)
		} else {
			id = fmt.Sprintf("hull-%x-%x", time.Now().UnixNano(), ridCounter.Add(1))
			s.cfg.Metrics.ServeCounterAdd("request_id_generated_total", 1)
		}
		w.Header().Set(shard.RequestIDHeader, id)
		next.ServeHTTP(w, req.WithContext(shard.WithRequestID(req.Context(), id)))
	})
}

// serveScatter answers one shard of a remote coordinator's scatter: decode
// the wire request, compute the canonical shard hull through the full
// serving path, echo the content checksum of the received bytes.
func (s *Server) serveScatter(w http.ResponseWriter, req *http.Request) {
	if req.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	var wr shard.WireRequest
	if err := json.NewDecoder(req.Body).Decode(&wr); err != nil {
		writeJSON(w, http.StatusBadRequest, httpError{Error: "bad JSON: " + err.Error(),
			Kind: "invalid input", RequestID: shard.RequestIDFrom(req.Context())})
		return
	}
	sreq, err := shard.DecodeRequest(wr)
	if err != nil {
		writeErr(w, req.Context(), err)
		return
	}
	resp, err := s.Scatter2D(req.Context(), sreq)
	if err != nil {
		writeErr(w, req.Context(), err)
		return
	}
	writeJSON(w, http.StatusOK, shard.EncodeResponse(resp))
}

func (s *Server) serveHull(w http.ResponseWriter, req *http.Request, dim int) {
	if req.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	var hq httpQuery
	if err := json.NewDecoder(req.Body).Decode(&hq); err != nil {
		writeJSON(w, http.StatusBadRequest, httpError{Error: "bad JSON: " + err.Error(), Kind: "invalid input"})
		return
	}
	q := Query{Dataset: hq.Dataset, Seed: hq.Seed, NoCache: hq.NoCache,
		RequireExact: hq.RequireExact, ApproxEps: hq.ApproxEps, Shards: hq.Shards,
		Backend: hq.Backend, Cull: hq.Cull}
	switch hq.Algorithm {
	case "", "hull2d":
		q.Algo = AlgoHull2D
	case "presorted":
		q.Algo = AlgoPresorted
	case "logstar":
		q.Algo = AlgoLogStar
	default:
		writeJSON(w, http.StatusBadRequest, httpError{Error: "unknown algorithm " + hq.Algorithm, Kind: "invalid input"})
		return
	}
	for i, c := range hq.Points {
		if len(c) != dim {
			writeJSON(w, http.StatusBadRequest, httpError{
				Error: "point " + itoa(i) + " has " + itoa(len(c)) + " coordinates, want " + itoa(dim),
				Kind:  "invalid input"})
			return
		}
		if dim == 3 {
			q.Points3 = append(q.Points3, geom.Point3{X: c[0], Y: c[1], Z: c[2]})
		} else {
			q.Points2 = append(q.Points2, geom.Point{X: c[0], Y: c[1]})
		}
	}

	ctx := req.Context()
	if hq.DeadlineMS > 0 {
		var cancel func()
		ctx, cancel = context.WithTimeout(ctx, time.Duration(hq.DeadlineMS)*time.Millisecond)
		defer cancel()
	}
	var res Result
	var err error
	if dim == 3 {
		res, err = s.Query3D(ctx, q)
	} else {
		res, err = s.Query2D(ctx, q)
	}
	partial := err != nil && errors.Is(err, hullerr.ErrPartialHull)
	if err != nil && !partial {
		writeErr(w, ctx, err)
		return
	}
	out := httpResult{
		N:             res.N,
		Cached:        res.Cached,
		Tier:          res.Report.Tier.String(),
		Backend:       res.Report.Backend().String(),
		ApproxEps:     res.Report.ApproxEps,
		Attempts:      res.Report.Attempts,
		Elapsed:       float64(res.Elapsed.Microseconds()),
		Shards:        res.Shards,
		MissingShards: res.Missing,
		Culled:        res.Culled,
		RequestID:     shard.RequestIDFrom(ctx),
	}
	w.Header().Set("X-Hull-Tier", out.Tier)
	w.Header().Set("X-Hull-Backend", out.Backend)
	w.Header().Set("X-Hull-Culled", itoa(res.Culled)+"/"+itoa(res.N))
	if dim == 3 {
		out.HullSize = res.Facets
		out.Facets = res.Facets
	} else {
		out.HullSize = len(res.Chain)
		out.Chain = make([][]float64, len(res.Chain))
		for i, p := range res.Chain {
			out.Chain[i] = []float64{p.X, p.Y}
		}
	}
	status := http.StatusOK
	if partial {
		// 206: the body carries the exact hull of the covered shards and
		// names the missing ones — a labeled degradation, never presented
		// as the global hull.
		status = http.StatusPartialContent
		w.Header().Set("X-Hull-Partial", "true")
	}
	writeJSON(w, status, out)
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	neg := n < 0
	if neg {
		n = -n
	}
	var b []byte
	for n > 0 {
		b = append([]byte{byte('0' + n%10)}, b...)
		n /= 10
	}
	if neg {
		return "-" + string(b)
	}
	return string(b)
}
