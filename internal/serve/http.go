package serve

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"sort"
	"time"

	"inplacehull/internal/geom"
	"inplacehull/internal/hullerr"
)

// httpQuery is the JSON request body of POST /v1/hull2d and /v1/hull3d.
type httpQuery struct {
	// Points: [[x,y],…] for 2-d, [[x,y,z],…] for 3-d. Mutually exclusive
	// with Dataset.
	Points [][]float64 `json:"points,omitempty"`
	// Dataset names a preloaded point set (GET /v1/datasets lists them).
	Dataset string `json:"dataset,omitempty"`
	// Algorithm: "hull2d" (default), "presorted", "logstar" (2-d only).
	Algorithm string `json:"algorithm,omitempty"`
	Seed      uint64 `json:"seed,omitempty"`
	// DeadlineMS bounds the query's service time; 0 means the request's
	// own context only.
	DeadlineMS int  `json:"deadline_ms,omitempty"`
	NoCache    bool `json:"no_cache,omitempty"`
	// RequireExact refuses a degraded approximate answer: if only the
	// approximate tier survives, the query fails with kind
	// "approximate only" (HTTP 422).
	RequireExact bool `json:"require_exact,omitempty"`
	// ApproxEps overrides the server's approximate-tier tolerance for
	// this query (relative to the bounding-box diagonal; > 0 enables).
	ApproxEps float64 `json:"approx_eps,omitempty"`
}

// httpResult is the JSON response body.
type httpResult struct {
	N        int         `json:"n"`
	HullSize int         `json:"hull_size"`
	Chain    [][]float64 `json:"chain,omitempty"`
	Facets   int         `json:"facets,omitempty"`
	Cached   bool        `json:"cached"`
	Tier     string      `json:"tier"`
	// ApproxEps is the certified ε of an approximate-tier answer (absolute
	// vertical distance); 0 for exact tiers.
	ApproxEps float64 `json:"approx_eps,omitempty"`
	Attempts  int     `json:"attempts"`
	Elapsed   float64 `json:"elapsed_us"`
}

type httpError struct {
	Error string `json:"error"`
	Kind  string `json:"kind"`
}

// statusOf maps the typed error taxonomy onto HTTP statuses. Untyped
// errors cannot reach here (the supervisor's contract), but map to 500
// defensively.
func statusOf(err error) int {
	var e *hullerr.Error
	if !errors.As(err, &e) {
		return http.StatusInternalServerError
	}
	switch e.Kind {
	case hullerr.InvalidInput, hullerr.UnsortedInput:
		return http.StatusBadRequest
	case hullerr.Overloaded:
		return http.StatusTooManyRequests
	case hullerr.ApproximateOnly:
		// The request as stated (exact) is unsatisfiable, but a relaxed
		// retry (require_exact=false) would succeed.
		return http.StatusUnprocessableEntity
	case hullerr.DeadlineExceeded:
		return http.StatusGatewayTimeout
	case hullerr.Canceled:
		return 499 // client closed request (nginx convention)
	default: // BudgetExhausted, Internal
		return http.StatusInternalServerError
	}
}

func kindName(err error) string {
	var e *hullerr.Error
	if errors.As(err, &e) {
		return e.Kind.String()
	}
	return "untyped"
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeErr(w http.ResponseWriter, err error) {
	status := statusOf(err)
	if status == http.StatusTooManyRequests {
		w.Header().Set("Retry-After", "1")
	}
	writeJSON(w, status, httpError{Error: err.Error(), Kind: kindName(err)})
}

// Handler returns the HTTP front end:
//
//	POST /v1/hull2d   {"points":[[x,y],…]|"dataset":name, "algorithm":…, "seed":…, "deadline_ms":…}
//	POST /v1/hull3d   {"points":[[x,y,z],…]|"dataset":name, …}
//	GET  /v1/datasets registered dataset names
//	GET  /healthz     liveness
//	GET  /metrics     Prometheus exposition (when Config.Metrics is set)
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/hull2d", func(w http.ResponseWriter, req *http.Request) { s.serveHull(w, req, 2) })
	mux.HandleFunc("/v1/hull3d", func(w http.ResponseWriter, req *http.Request) { s.serveHull(w, req, 3) })
	mux.HandleFunc("/v1/datasets", func(w http.ResponseWriter, req *http.Request) {
		names := s.Datasets()
		sort.Strings(names)
		writeJSON(w, http.StatusOK, map[string][]string{"datasets": names})
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, req *http.Request) {
		w.WriteHeader(http.StatusOK)
		_, _ = w.Write([]byte("ok\n"))
	})
	if s.cfg.Metrics != nil {
		mux.Handle("/metrics", s.cfg.Metrics)
	}
	return mux
}

func (s *Server) serveHull(w http.ResponseWriter, req *http.Request, dim int) {
	if req.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	var hq httpQuery
	if err := json.NewDecoder(req.Body).Decode(&hq); err != nil {
		writeJSON(w, http.StatusBadRequest, httpError{Error: "bad JSON: " + err.Error(), Kind: "invalid input"})
		return
	}
	q := Query{Dataset: hq.Dataset, Seed: hq.Seed, NoCache: hq.NoCache,
		RequireExact: hq.RequireExact, ApproxEps: hq.ApproxEps}
	switch hq.Algorithm {
	case "", "hull2d":
		q.Algo = AlgoHull2D
	case "presorted":
		q.Algo = AlgoPresorted
	case "logstar":
		q.Algo = AlgoLogStar
	default:
		writeJSON(w, http.StatusBadRequest, httpError{Error: "unknown algorithm " + hq.Algorithm, Kind: "invalid input"})
		return
	}
	for i, c := range hq.Points {
		if len(c) != dim {
			writeJSON(w, http.StatusBadRequest, httpError{
				Error: "point " + itoa(i) + " has " + itoa(len(c)) + " coordinates, want " + itoa(dim),
				Kind:  "invalid input"})
			return
		}
		if dim == 3 {
			q.Points3 = append(q.Points3, geom.Point3{X: c[0], Y: c[1], Z: c[2]})
		} else {
			q.Points2 = append(q.Points2, geom.Point{X: c[0], Y: c[1]})
		}
	}

	ctx := req.Context()
	if hq.DeadlineMS > 0 {
		var cancel func()
		ctx, cancel = context.WithTimeout(ctx, time.Duration(hq.DeadlineMS)*time.Millisecond)
		defer cancel()
	}
	var res Result
	var err error
	if dim == 3 {
		res, err = s.Query3D(ctx, q)
	} else {
		res, err = s.Query2D(ctx, q)
	}
	if err != nil {
		writeErr(w, err)
		return
	}
	out := httpResult{
		N:         res.N,
		Cached:    res.Cached,
		Tier:      res.Report.Tier.String(),
		ApproxEps: res.Report.ApproxEps,
		Attempts:  res.Report.Attempts,
		Elapsed:   float64(res.Elapsed.Microseconds()),
	}
	w.Header().Set("X-Hull-Tier", out.Tier)
	if dim == 3 {
		out.HullSize = res.Facets
		out.Facets = res.Facets
	} else {
		out.HullSize = len(res.Chain)
		out.Chain = make([][]float64, len(res.Chain))
		for i, p := range res.Chain {
			out.Chain[i] = []float64{p.X, p.Y}
		}
	}
	writeJSON(w, http.StatusOK, out)
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	neg := n < 0
	if neg {
		n = -n
	}
	var b []byte
	for n > 0 {
		b = append([]byte{byte('0' + n%10)}, b...)
		n /= 10
	}
	if neg {
		return "-" + string(b)
	}
	return string(b)
}
