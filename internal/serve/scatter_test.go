package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"

	"inplacehull/internal/geom"
	"inplacehull/internal/hull2d"
	"inplacehull/internal/hullerr"
	"inplacehull/internal/obs"
	"inplacehull/internal/pram"
	"inplacehull/internal/shard"
	"inplacehull/internal/workload"
)

// localSharder builds a scatter coordinator over n in-process workers
// sharing one small dedicated fleet, mirroring what hullserve -shards does.
func localSharder(t *testing.T, n int, metrics *obs.Metrics, cfg shard.Config) *shard.Coordinator {
	t.Helper()
	fleet := pram.NewFleet(n, pram.WithWorkers(1))
	t.Cleanup(fleet.Close)
	for i := 0; i < n; i++ {
		cfg.Workers = append(cfg.Workers, &shard.LocalWorker{ID: fmt.Sprintf("local-%d", i), Fleet: fleet})
	}
	cfg.Shards = n
	cfg.Metrics = metrics
	return shard.New(cfg)
}

// TestShardedQueryMatchesSingleNode: a Query with Shards set routes through
// the coordinator and still answers the exact single-node hull; the result
// lands in the shared cache under a shard-aware key.
func TestShardedQueryMatchesSingleNode(t *testing.T) {
	x := obs.NewMetrics()
	s := small(t, Config{CacheSize: 8, Metrics: x, Sharder: localSharder(t, 3, x, shard.Config{})})
	pts := workload.Disk(7, 1500)
	want := hull2d.UpperHull(pts)

	for _, k := range []int{-1, 2, 3} {
		res, err := s.Query2D(context.Background(), Query{Points2: pts, Seed: 1, Shards: k})
		if err != nil {
			t.Fatalf("shards=%d: %v", k, err)
		}
		if !sameChain(res.Chain, want) {
			t.Fatalf("shards=%d: scattered hull differs from single-node reference", k)
		}
		if res.Shards < 2 {
			t.Fatalf("shards=%d: result reports %d shards", k, res.Shards)
		}
	}

	// Same query again: the sharded path shares the result cache.
	res, err := s.Query2D(context.Background(), Query{Points2: pts, Seed: 1, Shards: 3})
	if err != nil || !res.Cached {
		t.Fatalf("repeat scattered query not cached: %v err=%v", res.Cached, err)
	}
	// A different width is a different cache key, not a stale hit.
	res, err = s.Query2D(context.Background(), Query{Points2: pts, Seed: 1, Shards: 2})
	if err != nil || !res.Cached {
		t.Fatalf("width-2 repeat should hit its own earlier entry: cached=%v err=%v", res.Cached, err)
	}
}

// TestScatterAcrossTwoServers wires a real two-process topology in-process:
// a peer server answers /v1/scatter2d, a front server's coordinator mixes a
// local worker with an HTTPWorker pointed at the peer, and the merged hull
// is bit-identical to the single-node reference.
func TestScatterAcrossTwoServers(t *testing.T) {
	peer := small(t, Config{CacheSize: 8, Metrics: obs.NewMetrics()})
	pts2 := httptest.NewServer(peer.Handler())
	defer pts2.Close()

	fleet := pram.NewFleet(1, pram.WithWorkers(1))
	t.Cleanup(fleet.Close)
	x := obs.NewMetrics()
	coord := shard.New(shard.Config{
		Workers: []shard.Worker{
			&shard.LocalWorker{ID: "local-0", Fleet: fleet},
			&shard.HTTPWorker{Base: pts2.URL},
		},
		Shards:  2,
		Metrics: x,
	})
	front := small(t, Config{CacheSize: 8, Metrics: x, Sharder: coord})
	fts := httptest.NewServer(front.Handler())
	defer fts.Close()

	pts := workload.Circle(11, 600)
	want := hull2d.UpperHull(pts)

	body, _ := json.Marshal(map[string]any{"points": toWire(pts), "shards": 2, "seed": 3})
	resp, err := http.Post(fts.URL+"/v1/hull2d", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("scattered query over HTTP: status %d", resp.StatusCode)
	}
	var out httpResult
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if out.Shards != 2 || len(out.MissingShards) != 0 {
		t.Fatalf("shards=%d missing=%v, want a full 2-way answer", out.Shards, out.MissingShards)
	}
	if len(out.Chain) != len(want) {
		t.Fatalf("hull size %d, want %d", len(out.Chain), len(want))
	}
	for i, c := range out.Chain {
		if c[0] != want[i].X || c[1] != want[i].Y {
			t.Fatalf("vertex %d = %v, want %v", i, c, want[i])
		}
	}

	// The peer actually served shards (its own counters moved).
	if peer.cfg.Metrics.ServeCounter("queries_total") == 0 {
		t.Fatal("peer served no queries — scatter never reached it")
	}
	// The coordinator recorded per-peer activity.
	if x.ShardEvent(pts2.URL, "ok") == 0 {
		t.Fatalf("no ok events recorded for peer %s", pts2.URL)
	}
}

func toWire(pts []geom.Point) [][]float64 {
	out := make([][]float64, len(pts))
	for i, p := range pts {
		out[i] = []float64{p.X, p.Y}
	}
	return out
}

// failShard0 wraps a worker and hard-fails shard 0, forcing the partial
// rung when it is the only worker.
type failShard0 struct{ inner shard.Worker }

func (f *failShard0) Name() string { return "flaky" }
func (f *failShard0) Partial(ctx context.Context, req shard.Request) (shard.Response, error) {
	if req.Shard == 0 {
		return shard.Response{}, hullerr.New(hullerr.Internal, "test", "shard 0 is cursed")
	}
	return f.inner.Partial(ctx, req)
}

// TestPartialAnswerHTTP206: when a shard stays unreachable and partials are
// allowed, the HTTP layer answers 206 with X-Hull-Partial, the covered hull,
// and the missing shard list — and never caches the degraded answer.
func TestPartialAnswerHTTP206(t *testing.T) {
	fleet := pram.NewFleet(1, pram.WithWorkers(1))
	t.Cleanup(fleet.Close)
	x := obs.NewMetrics()
	coord := shard.New(shard.Config{
		Workers:      []shard.Worker{&failShard0{inner: &shard.LocalWorker{ID: "local-0", Fleet: fleet}}},
		Shards:       3,
		MaxAttempts:  2,
		AllowPartial: true,
		Metrics:      x,
	})
	s := small(t, Config{CacheSize: 8, Metrics: x, Sharder: coord})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	pts := workload.Grid(5, 300)
	body, _ := json.Marshal(map[string]any{"points": toWire(pts), "shards": 3, "seed": 9})

	for pass := 0; pass < 2; pass++ {
		resp, err := http.Post(ts.URL+"/v1/hull2d", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		var out httpResult
		err = json.NewDecoder(resp.Body).Decode(&out)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusPartialContent {
			t.Fatalf("pass %d: status %d, want 206", pass, resp.StatusCode)
		}
		if resp.Header.Get("X-Hull-Partial") != "true" {
			t.Fatalf("pass %d: missing X-Hull-Partial header", pass)
		}
		if len(out.MissingShards) == 0 {
			t.Fatalf("pass %d: 206 without missing_shards", pass)
		}
		for _, m := range out.MissingShards {
			if m != 0 {
				t.Fatalf("pass %d: unexpected missing shard %d", pass, m)
			}
		}
		if out.Cached {
			t.Fatalf("pass %d: partial answer served from cache", pass)
		}
		if len(out.Chain) == 0 {
			t.Fatalf("pass %d: partial answer carries no covered hull", pass)
		}
	}

	// The direct API surfaces the same state as a typed error plus result.
	res, err := s.Query2D(context.Background(), Query{Points2: pts, Seed: 9, Shards: 3})
	if !errors.Is(err, hullerr.ErrPartialHull) {
		t.Fatalf("Query2D partial err = %v, want ErrPartialHull", err)
	}
	if len(res.Missing) == 0 || len(res.Chain) == 0 {
		t.Fatalf("partial Result incomplete: missing=%v hull=%d", res.Missing, len(res.Chain))
	}
}

// TestOverloadMapsTo503WithRetryAfter: shedding is a 503 whose Retry-After
// tells the client when to come back; a raw context deadline maps to 504.
func TestOverloadMapsTo503WithRetryAfter(t *testing.T) {
	rec := httptest.NewRecorder()
	writeErr(rec, context.Background(), hullerr.New(hullerr.Overloaded, "serve", "queue full"))
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("overload status %d, want 503", rec.Code)
	}
	if rec.Header().Get("Retry-After") == "" {
		t.Fatal("503 without Retry-After")
	}
	var he httpError
	if err := json.Unmarshal(rec.Body.Bytes(), &he); err != nil || he.Kind != hullerr.Overloaded.String() {
		t.Fatalf("overload body: %s (err %v)", rec.Body.String(), err)
	}

	rec = httptest.NewRecorder()
	writeErr(rec, context.Background(), context.DeadlineExceeded)
	if rec.Code != http.StatusGatewayTimeout {
		t.Fatalf("raw deadline status %d, want 504", rec.Code)
	}
	if rec.Header().Get("Retry-After") != "" {
		t.Fatal("504 should not promise a retry window")
	}
}

// TestRequestIDPropagation: a caller-supplied X-Request-ID is echoed on the
// response and body; without one the server mints an id. Both paths move
// their counters.
func TestRequestIDPropagation(t *testing.T) {
	x := obs.NewMetrics()
	s := small(t, Config{Metrics: x})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	req, _ := http.NewRequest(http.MethodPost, ts.URL+"/v1/hull2d",
		bytes.NewBufferString(`{"points":[[0,0],[1,2],[2,0]]}`))
	req.Header.Set(shard.RequestIDHeader, "trace-abc-123")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	var out httpResult
	_ = json.NewDecoder(resp.Body).Decode(&out)
	resp.Body.Close()
	if got := resp.Header.Get(shard.RequestIDHeader); got != "trace-abc-123" {
		t.Fatalf("propagated header = %q", got)
	}
	if out.RequestID != "trace-abc-123" {
		t.Fatalf("propagated body id = %q", out.RequestID)
	}
	if x.ServeCounter("request_id_propagated_total") != 1 {
		t.Fatal("propagated counter did not move")
	}

	// No header: the server mints one and says so.
	resp, err = http.Post(ts.URL+"/v1/hull2d", "application/json",
		bytes.NewBufferString(`{"points":[[0,0],[1,2],[2,0]]}`))
	if err != nil {
		t.Fatal(err)
	}
	minted := resp.Header.Get(shard.RequestIDHeader)
	resp.Body.Close()
	if minted == "" || minted == "trace-abc-123" {
		t.Fatalf("minted id = %q", minted)
	}
	if x.ServeCounter("request_id_generated_total") == 0 {
		t.Fatal("generated counter did not move")
	}

	// Error bodies carry the id too.
	req, _ = http.NewRequest(http.MethodPost, ts.URL+"/v1/hull2d",
		bytes.NewBufferString(`{"dataset":"nope"}`))
	req.Header.Set(shard.RequestIDHeader, "trace-err-9")
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	var he httpError
	_ = json.NewDecoder(resp.Body).Decode(&he)
	resp.Body.Close()
	if he.RequestID != "trace-err-9" {
		t.Fatalf("error body id = %q", he.RequestID)
	}
}

// TestScatterWithoutSharderIsTyped: asking for shards on a server with no
// coordinator is an invalid-input error, not a panic or a silent fallback.
func TestScatterWithoutSharderIsTyped(t *testing.T) {
	s := small(t, Config{})
	_, err := s.Query2D(context.Background(), Query{
		Points2: []geom.Point{{X: 0, Y: 0}, {X: 1, Y: 1}}, Shards: 2})
	var e *hullerr.Error
	if !errors.As(err, &e) || e.Kind != hullerr.InvalidInput {
		t.Fatalf("err = %v, want typed invalid input", err)
	}
}
